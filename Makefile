# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race check bench experiments examples fig4 clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detect the concurrent machinery: the hardened seed-sweep runner
# and the fault-injection framework it drives.
race:
	$(GO) test -race ./internal/sim/... ./internal/faults/...

# The full pre-merge gate: build, vet, tests, race tests.
check: build vet test race

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments all

# Full-scale (Table I) headline numbers; slow.
experiments-paper:
	$(GO) run ./cmd/experiments -paper -windows 1 -seeds 3 table3

fig4:
	$(GO) run ./cmd/experiments -svg fig4.svg fig4

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/attack_defense
	$(GO) run ./examples/policy_comparison
	$(GO) run ./examples/flooding
	$(GO) run ./examples/corruption
	$(GO) run ./examples/custom_mitigation

clean:
	$(GO) clean ./...
	rm -f fig4.svg

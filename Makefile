# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short test-debugasserts race check chaos serve-chaos bench bench-campaign bench-hotpath bench-scale experiments examples fig4 serve serve-smoke obs-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Exercise the debug-build weight assertions (release builds return 0 on a
# negative weight; -tags tivadebug panics instead).
test-debugasserts:
	$(GO) test -tags tivadebug ./internal/core/...

# Race-detect the concurrent machinery: the hardened seed-sweep runner,
# the fault-injection framework it drives, the campaign scheduler, the
# chaos I/O seam and torture harness, the multi-tenant campaign server
# and its serving torture harness, and the hot-path structures the
# parallel campaign touches.
race:
	$(GO) test -race ./internal/sim/... ./internal/faults/... ./internal/campaign/... ./internal/iofault/... ./internal/chaostest/... ./internal/serve/... ./internal/servetest/... ./internal/hotpath/... ./internal/bitset/... ./internal/obs/...

# The full pre-merge gate: build, vet, tests (both assertion modes), race
# tests.
check: build vet test test-debugasserts race

# Crash-consistency torture: kill a live campaign at checkpoint-commit
# boundaries under injected I/O faults, corrupt the checkpoint, resume,
# and require the final report to be byte-identical to an undisturbed
# run. CHAOS_SEED selects the torture schedule.
CHAOS_SEED ?= 1
chaos:
	$(GO) run ./cmd/experiments -chaos-seed $(CHAOS_SEED) -progress chaos

# Crash-durability torture for the serving layer: a journaled server is
# hard-killed at a seeded journal-commit ordinal, its journal tail torn,
# then restarted — every accepted job must be re-admitted from the
# write-ahead journal and re-rendered byte-identically, duplicate
# Idempotency-Key POSTs answered with the original id and zero
# re-executions, pre-crash SSE resume tokens refused with a snapshot,
# and quarantine corpses bounded. CHAOS_SEED selects the kill placement.
serve-chaos:
	$(GO) run ./cmd/experiments -chaos-seed $(CHAOS_SEED) -progress serve-chaos

bench:
	$(GO) test -bench=. -benchmem ./...

# Serial-vs-parallel campaign timing: runs the whole evaluation at
# -workers 1 and -workers N, verifies the bytes match, and writes
# BENCH_campaign.json (cpus, sections, wall-clock, speedup). Set
# BENCH_MIN_SPEEDUP to fail the run when a multi-core host shows no
# parallel speedup at all (CI uses 1.0).
BENCH_MIN_SPEEDUP ?= 0
bench-campaign:
	$(GO) run ./cmd/experiments -seeds 2 -windows 2 -trials 5 -bench-min-speedup $(BENCH_MIN_SPEEDUP) bench

# Scale-out gate: simulate the full-DIMM geometry (32 banks, 2M rows)
# with the sparse per-row state and assert the memory bounds (state <=
# dense/8, live-heap growth <= dense/2), then time a multi-worker seed
# sweep serial vs parallel with a byte-identity check. Both measurements
# fold into BENCH_campaign.json under "scale". A single-CPU host cannot
# substantiate a speedup claim, so the run refuses unless
# ALLOW_SINGLE_CPU=1 records the timings with speedup_claimed=false.
ALLOW_SINGLE_CPU ?=
bench-scale:
	$(GO) run ./cmd/experiments $(if $(ALLOW_SINGLE_CPU),-allow-single-cpu) -windows 8 -bench-min-speedup $(BENCH_MIN_SPEEDUP) scale

# Hot-path benchmark harness: per-technique activation-path ns/act and
# allocs/act (with the serial-LFSR "before" reference), plus the full
# pipeline per stage — generation, reference, block, bank-sharded — with
# result-equality checks, written to BENCH_hotpath.json. Fails if any
# act path allocates or if block dispatch is a net loss against the
# reference driver. Set PERF_BASELINE to a committed BENCH_hotpath.json
# to additionally fail on a >15% regression against it (CI gates against
# the repository copy).
PERF_BASELINE ?=
bench-hotpath:
	$(GO) run ./cmd/experiments $(if $(PERF_BASELINE),-perf-baseline $(PERF_BASELINE)) profile

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments all

# Full-scale (Table I) headline numbers; slow.
experiments-paper:
	$(GO) run ./cmd/experiments -paper -windows 1 -seeds 3 table3

fig4:
	$(GO) run ./cmd/experiments -svg fig4.svg fig4

# Long-running multi-tenant campaign server: POST campaign specs, stream
# progress over SSE, share results cross-tenant through the checkpoint
# cache, drain gracefully on SIGINT/SIGTERM. See EXPERIMENTS.md for the
# HTTP API walkthrough.
serve:
	$(GO) run ./cmd/experiments -checkpoint serve-cache.json serve

# Serving-layer smoke: race-built server, two tenants with overlapping
# campaigns, dedup hits asserted, clean drain on SIGTERM within a
# deadline — plus a /metrics scrape (admitted jobs and dedup hits
# nonzero, gauges back to zero after the queue drains).
serve-smoke:
	bash scripts/serve_smoke.sh

# Observability smoke: run a small real campaign with the flight
# recorder armed (-metrics-out, -trace-out), then validate both
# artifacts with scripts/obscheck — the metrics dump must be well-formed
# Prometheus text exposition carrying the act-path and campaign
# families, and the trace must be Chrome trace-event JSON (Perfetto-
# loadable) containing cell and run-attempt spans.
obs-smoke:
	$(GO) run ./cmd/experiments -seeds 1 -windows 1 -trials 2 \
	  -metrics-out obs-metrics.txt -trace-out obs-trace.json flooding >/dev/null
	$(GO) run ./scripts/obscheck -metrics obs-metrics.txt -trace obs-trace.json \
	  -require-metrics tivapromi_accesses_total,tivapromi_acts_total,tivapromi_cells_completed_total,tivapromi_run_attempts_total,tivapromi_dedup_hits_total \
	  -require-spans cell,run-attempt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/attack_defense
	$(GO) run ./examples/policy_comparison
	$(GO) run ./examples/flooding
	$(GO) run ./examples/corruption
	$(GO) run ./examples/custom_mitigation

clean:
	$(GO) clean ./...
	rm -f fig4.svg obs-metrics.txt obs-trace.json

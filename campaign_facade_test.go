package tivapromi

import (
	"context"
	"testing"
)

// TestRunCampaignFacade drives the campaign engine through the façade:
// one sweep cell and one probe cell, merged from two studies.
func TestRunCampaignFacade(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Windows = 1

	var sweep Campaign
	sweep.Name = "sweep-study"
	sweep.AddSweep("sweep/PARA", cfg, "PARA", Seeds(1, 2))

	var probe Campaign
	probe.Name = "probe-study"
	probe.AddProbe("probe/const",
		func() any { return new(int) },
		func(ctx context.Context, v any) error { *v.(*int) = 7; return nil })

	var events int
	merged := MergeCampaigns("merged", sweep, probe)
	rs, err := RunCampaign(context.Background(), merged, CampaignOptions{
		Workers:    2,
		OnProgress: func(CampaignProgress) { events++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Err(); err != nil {
		t.Fatal(err)
	}
	if events != 2 {
		t.Fatalf("got %d progress events, want 2", events)
	}
	sum, err := rs.Summary("sweep/PARA")
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Runs) != 2 {
		t.Fatalf("sweep aggregated %d runs, want 2", len(sum.Runs))
	}
	v, err := rs.Value("probe/const")
	if err != nil {
		t.Fatal(err)
	}
	if *v.(*int) != 7 {
		t.Fatalf("probe value = %d, want 7", *v.(*int))
	}
}

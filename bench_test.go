package tivapromi

// One benchmark per table and figure of the paper's evaluation, plus
// per-activation micro-benchmarks of every mitigation's decision path.
// The macro benches report the paper's metrics (overhead %, FPR %, cycle
// counts, LUTs, flood medians) via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the numbers alongside the
// usual time/op costs. cmd/experiments renders the same data as the
// paper's tables.

import (
	"fmt"
	"testing"

	"tivapromi/internal/dram"
	"tivapromi/internal/fsm"
	"tivapromi/internal/hwmodel"
	"tivapromi/internal/mitigation"
	"tivapromi/internal/sim"
)

// benchConfig is the shared simulation configuration for the macro
// benches: one scaled refresh window of mixed load plus attacker.
func benchConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Windows = 1
	return cfg
}

// BenchmarkTableI_TraceGeneration measures the workload/attacker/device
// substrate producing the Table I trace and reports its statistics
// (average activations per bank-interval ≈ 40 in the paper).
func BenchmarkTableI_TraceGeneration(b *testing.B) {
	cfg := benchConfig()
	var r sim.Result
	var err error
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		r, err = sim.Run(cfg, "")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AvgActsPerInterval, "acts/interval")
	b.ReportMetric(float64(r.MaxActsPerInterval), "max-acts/interval")
	b.ReportMetric(float64(r.TotalActs)/float64(b.Elapsed().Seconds()+1e-9), "acts/s")
}

// BenchmarkTableII_FSMCycles runs the structural worst-case analysis of
// the Fig. 2/3 state machines and reports the Table II cycle counts.
func BenchmarkTableII_FSMCycles(b *testing.B) {
	machines := map[string]*fsm.Machine{
		"CaPRoMi":   fsm.Fig3("CaPRoMi", fsm.DefaultCounterConfig()),
		"LoLiPRoMi": fsm.Fig2("LoLiPRoMi", fsm.LinearConfig{HistoryEntries: 32, OverlappedUpdate: true}),
		"LoPRoMi":   fsm.Fig2("LoPRoMi", fsm.LinearConfig{HistoryEntries: 32}),
		"LiPRoMi":   fsm.Fig2("LiPRoMi", fsm.LinearConfig{HistoryEntries: 32}),
	}
	for name, m := range machines {
		b.Run(name, func(b *testing.B) {
			var act, ref int
			for i := 0; i < b.N; i++ {
				var err error
				act, _, err = m.WorstCase("act")
				if err != nil {
					b.Fatal(err)
				}
				ref, _, err = m.WorstCase("ref")
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(act), "act-cycles")
			b.ReportMetric(float64(ref), "ref-cycles")
		})
	}
}

// BenchmarkTableIII runs the full comparison per technique: activation
// overhead, FPR and flips from simulation, LUTs from the cost model.
func BenchmarkTableIII(b *testing.B) {
	cfg := benchConfig()
	geo := hwmodel.PaperGeometry()
	model := hwmodel.DefaultCostModel()
	resources := map[string]hwmodel.Resources{}
	for _, r := range hwmodel.AllResources(geo) {
		resources[r.Name] = r
	}
	for _, name := range sim.TechniqueNames() {
		b.Run(name, func(b *testing.B) {
			var res sim.Result
			var err error
			flips := 0
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				res, err = sim.Run(cfg, name)
				if err != nil {
					b.Fatal(err)
				}
				flips += res.Flips
			}
			b.ReportMetric(res.OverheadPct, "overhead-%")
			b.ReportMetric(res.FPRPct, "FPR-%")
			b.ReportMetric(float64(flips), "flips")
			b.ReportMetric(float64(model.Estimate(resources[name], hwmodel.DDR4Target()).LUTs), "LUTs-DDR4")
			b.ReportMetric(float64(model.Estimate(resources[name], hwmodel.DDR3Target()).LUTs), "LUTs-DDR3")
		})
	}
}

// BenchmarkFig4_TradeOff produces the Fig. 4 data points: per-bank table
// storage (at paper scale) against measured activation overhead.
func BenchmarkFig4_TradeOff(b *testing.B) {
	cfg := benchConfig()
	paperTarget := mitigation.Target{
		Banks: 16, RowsPerBank: 131072, RefInt: 8192, FlipThreshold: 139000,
	}
	for _, name := range sim.TechniqueNames() {
		b.Run(name, func(b *testing.B) {
			factory, err := mitigation.Lookup(name)
			if err != nil {
				b.Fatal(err)
			}
			bytes := factory(paperTarget, 1).TableBytesPerBank()
			var res sim.Result
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				res, err = sim.Run(cfg, name)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(bytes), "table-B")
			b.ReportMetric(res.OverheadPct, "overhead-%")
		})
	}
}

// BenchmarkFlooding reproduces the Section IV flooding experiment per
// TiVaPRoMi variant and reports the acts-to-first-protection median.
func BenchmarkFlooding(b *testing.B) {
	p := dram.PaperParams()
	for _, name := range []string{"LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"} {
		b.Run(name, func(b *testing.B) {
			var res sim.FloodResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = sim.Flood(name, p, p.MaxActsPerRI, 5, uint64(i+1))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MedianActs, "median-acts")
			b.ReportMetric(float64(res.Unprotected), "unprotected")
		})
	}
}

// BenchmarkRefreshPolicies runs LoLiPRoMi under the four refresh-address
// policies of Section IV; the overhead metric should barely move.
func BenchmarkRefreshPolicies(b *testing.B) {
	for _, pol := range sim.Policies() {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Policy = pol
			var res sim.Result
			var err error
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				res, err = sim.Run(cfg, "LoLiPRoMi")
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.OverheadPct, "overhead-%")
			b.ReportMetric(float64(res.Flips), "flips")
		})
	}
}

// BenchmarkAggressorSweep runs the 1→20 aggressors-per-bank campaign at
// fixed counts, reporting unmitigated flips vs. LoLiPRoMi flips.
func BenchmarkAggressorSweep(b *testing.B) {
	for _, k := range []int{1, 2, 8, 20} {
		b.Run(fmt.Sprintf("aggressors-%d", k), func(b *testing.B) {
			cfg := benchConfig()
			cfg.MinAggressors, cfg.MaxAggressors = k, k
			var unmitigated, mitigated int
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				r0, err := sim.Run(cfg, "")
				if err != nil {
					b.Fatal(err)
				}
				r1, err := sim.Run(cfg, "LoLiPRoMi")
				if err != nil {
					b.Fatal(err)
				}
				unmitigated += r0.Flips
				mitigated += r1.Flips
			}
			b.ReportMetric(float64(unmitigated), "flips-unmitigated")
			b.ReportMetric(float64(mitigated), "flips-mitigated")
		})
	}
}

// BenchmarkMitigationDecision measures the per-activation software cost
// of each technique's decision path (the hot loop of the whole simulator).
func BenchmarkMitigationDecision(b *testing.B) {
	target := mitigation.Target{
		Banks: 4, RowsPerBank: 16384, RefInt: 1024, FlipThreshold: 16384,
	}
	for _, name := range sim.TechniqueNames() {
		b.Run(name, func(b *testing.B) {
			factory, err := mitigation.Lookup(name)
			if err != nil {
				b.Fatal(err)
			}
			m := factory(target, 1)
			var cmds []mitigation.Command
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cmds = m.OnActivate(i&3, i&16383, i&1023, cmds[:0])
			}
			_ = cmds
		})
	}
}

// Package tivapromi is a simulation library for DRAM Row-Hammer
// mitigation research, built around a from-scratch reproduction of
// "TiVaPRoMi: Time-Varying Probabilistic Row-Hammer Mitigation"
// (Nassar, Bauer, Henkel — DATE 2021).
//
// The library bundles:
//
//   - a DDR4-parameterized DRAM device model with refresh windows,
//     refresh-address policies, and a neighbor-disturbance (bit-flip)
//     model;
//   - an open-page memory-controller model with the Row-Hammer interrupt
//     path of the paper's Fig. 1;
//   - nine mitigation techniques: the four TiVaPRoMi variants (LiPRoMi,
//     LoPRoMi, LoLiPRoMi, CaPRoMi) and five baselines from the literature
//     (PARA, ProHit, MRLoc, TWiCe, CRA);
//   - SPEC-like synthetic workloads plus a cache-flush Row-Hammer
//     attacker;
//   - an experiment harness measuring activation overhead,
//     false-positive rate, flips, flooding resistance, and vulnerability,
//     plus an FPGA LUT cost model — everything needed to regenerate the
//     paper's tables and figures (see cmd/experiments).
//
// Quick start:
//
//	cfg := tivapromi.DefaultSimConfig()
//	res, err := tivapromi.RunSimulation(cfg, "LoLiPRoMi")
//	fmt.Printf("overhead %.4f%%, flips %d\n", res.OverheadPct, res.Flips)
//
// Everything here is a façade over the internal packages; the types are
// aliases, so values flow freely between the two layers.
package tivapromi

import (
	"context"
	"io"

	"tivapromi/internal/campaign"
	"tivapromi/internal/core"
	"tivapromi/internal/dram"
	"tivapromi/internal/faults"
	"tivapromi/internal/iofault"
	"tivapromi/internal/memctrl"
	"tivapromi/internal/mitigation"
	_ "tivapromi/internal/mitigation/all" // register every technique
	"tivapromi/internal/obs"
	"tivapromi/internal/serve"
	"tivapromi/internal/sim"
	"tivapromi/internal/stats"
	"tivapromi/internal/workload"
)

// Device-side types.
type (
	// Params describes the simulated DRAM device (Table I).
	Params = dram.Params
	// Device is the simulated DRAM.
	Device = dram.Device
	// FlipEvent records a successful Row-Hammer bit flip.
	FlipEvent = dram.FlipEvent
	// RefreshPolicy decides which rows an auto-refresh interval restores.
	RefreshPolicy = dram.RefreshPolicy
	// Controller is the memory-controller model (Fig. 1).
	Controller = memctrl.Controller
	// ControllerConfig sets the controller's service times.
	ControllerConfig = memctrl.Config
)

// Mitigation-side types.
type (
	// Mitigator is the interface all Row-Hammer mitigations implement.
	Mitigator = mitigation.Mitigator
	// Target describes the protected device to a mitigation factory.
	Target = mitigation.Target
	// Command is a maintenance command emitted by a mitigation.
	Command = mitigation.Command
	// Variant selects a purely probabilistic TiVaPRoMi weighting scheme.
	Variant = core.Variant
	// CoreConfig parameterizes LiPRoMi/LoPRoMi/LoLiPRoMi.
	CoreConfig = core.Config
	// CaConfig parameterizes CaPRoMi.
	CaConfig = core.CaConfig
)

// Harness types.
type (
	// SimConfig describes one simulation run.
	SimConfig = sim.Config
	// SimResult is the outcome of one run.
	SimResult = sim.Result
	// SimSummary aggregates runs across seeds (µ±σ).
	SimSummary = sim.Summary
	// FloodResult reports the Section IV flooding experiment.
	FloodResult = sim.FloodResult
	// VulnReport reproduces Table III's vulnerability column.
	VulnReport = sim.VulnReport
	// Workload generates DRAM access streams.
	Workload = workload.Generator
	// Attacker is the cache-flush Row-Hammer attacker.
	Attacker = workload.Attacker
)

// Hardened-runner and fault-injection types.
type (
	// RunnerConfig tunes the hardened seed-sweep pool (workers, per-run
	// deadline, retries).
	RunnerConfig = sim.RunnerConfig
	// Runner combines the hardened pool with an optional checkpoint.
	Runner = sim.Runner
	// Checkpoint is the JSON store behind resumable sweeps.
	Checkpoint = sim.Checkpoint
	// RunError records one seed's failure inside a sweep.
	RunError = sim.RunError
	// FaultModel identifies one hardware fault mechanism.
	FaultModel = faults.Model
	// FaultPlan describes one fault campaign (model, rate, seed).
	FaultPlan = faults.Plan
	// FaultHarness wraps a Mitigator with seed-driven fault injection.
	FaultHarness = faults.Harness
	// FaultPoint is one cell of a degradation table.
	FaultPoint = sim.FaultPoint
	// FaultSweepConfig describes a techniques × models × rates campaign.
	FaultSweepConfig = sim.FaultSweepConfig
)

// Crash-consistency types: the checkpoint store writes through an
// injectable filesystem seam (FS), so fault injection reaches the I/O
// layer too. OSFS is the passthrough; ChaosFS injects seed-deterministic
// torn writes, rename failures, fsync loss, and bit flips for torture
// testing (see internal/iofault and internal/chaostest).
type (
	// FS is the filesystem seam the checkpoint writes through.
	FS = iofault.FS
	// OSFS is the real-filesystem passthrough.
	OSFS = iofault.OS
	// ChaosFS injects seed-deterministic I/O faults beneath an FS.
	ChaosFS = iofault.Chaos
	// ChaosFSConfig sets per-operation fault probabilities and the seed.
	ChaosFSConfig = iofault.ChaosConfig
	// ChaosFSStats tallies the faults a ChaosFS injected.
	ChaosFSStats = iofault.ChaosStats
	// CheckpointLoadReport describes what loading a checkpoint found:
	// entries kept, corrupt entries dropped, v1 migration, quarantine.
	CheckpointLoadReport = sim.LoadReport
)

// Robustness sentinels, matchable with errors.Is.
var (
	// ErrStalled marks a run cancelled by the stall watchdog (no
	// heartbeat progress within RunnerConfig.StallTimeout); it classifies
	// as transient and is retried.
	ErrStalled = sim.ErrStalled
	// ErrCheckpointCorrupt marks checkpoint bytes that failed
	// checksum/structure verification (the file is quarantined and every
	// verifiable entry salvaged).
	ErrCheckpointCorrupt = sim.ErrCheckpointCorrupt
	// ErrCheckpointVersion marks a checkpoint from an unknown future
	// format version.
	ErrCheckpointVersion = sim.ErrCheckpointVersion
	// ErrCampaignCellSkipped marks a campaign cell parked by the retry
	// circuit breaker; the root cause stays wrapped underneath.
	ErrCampaignCellSkipped = campaign.ErrCellSkipped
)

// Fault models (see internal/faults for the scenario each one realizes).
const (
	FaultNone        = faults.None
	FaultStateSEU    = faults.StateSEU
	FaultStuckRNG    = faults.StuckRNG
	FaultBiasedRNG   = faults.BiasedRNG
	FaultPeriodicRNG = faults.PeriodicRNG
	FaultDropActN    = faults.DropActN
	FaultDelayActN   = faults.DelayActN
	FaultWeakCells   = faults.WeakCells
)

// TiVaPRoMi variants.
const (
	LiPRoMi   = core.LiPRoMi
	LoPRoMi   = core.LoPRoMi
	LoLiPRoMi = core.LoLiPRoMi
)

// Maintenance-command kinds, for implementing custom mitigations against
// the Mitigator interface (see examples/custom_mitigation).
const (
	ActN       = mitigation.ActN
	ActNOne    = mitigation.ActNOne
	RefreshRow = mitigation.RefreshRow
)

// MitigationFactory builds a Mitigator for a target device; assign one to
// SimConfig.Factory to run a custom technique through the harness.
type MitigationFactory = mitigation.Factory

// PaperParams returns the paper's full Table I device configuration.
func PaperParams() Params { return dram.PaperParams() }

// ScaledParams returns the fast structure-preserving configuration used
// by default in tests and examples.
func ScaledParams() Params { return dram.ScaledParams() }

// FullDIMMParams returns the whole-DIMM population preset: 1 rank × 8
// DDR4 bank groups × 4 banks × 64 K rows (32 banks, 2 M rows). At this
// scale StateAuto selects the lazily-paged sparse per-row state, so
// heap stays proportional to the rows the workload touches.
func FullDIMMParams() Params { return dram.FullDIMMParams() }

// Per-row state representations (Params.State): auto resolves dense for
// small populations and sparse for full-DIMM-scale ones.
const (
	StateAuto   = dram.StateAuto
	StateDense  = dram.StateDense
	StateSparse = dram.StateSparse
)

// StateMode selects the device's per-row state representation.
type StateMode = dram.StateMode

// DefaultSimConfig returns the standard mixed-load-plus-attacker setup.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// Techniques returns the names of all registered mitigation techniques.
func Techniques() []string { return mitigation.Names() }

// PaperTechniques returns the paper's nine techniques in Table III order.
func PaperTechniques() []string { return sim.TechniqueNames() }

// ExtensionTechniques returns the techniques implemented beyond the
// paper: CAT (adaptive counter tree), TRR (commodity in-DRAM sampler)
// and QuaPRoMi (quadratic weighting).
func ExtensionTechniques() []string { return sim.ExtensionTechniques() }

// NewMitigation builds a registered technique by name for a target
// device.
func NewMitigation(name string, t Target, seed uint64) (Mitigator, error) {
	f, err := mitigation.Lookup(name)
	if err != nil {
		return nil, err
	}
	return f(t, seed), nil
}

// NewTiVaPRoMi builds one of the purely probabilistic variants directly,
// exposing the concrete type for white-box use.
func NewTiVaPRoMi(v Variant, banks int, cfg CoreConfig, seed uint64) (*core.TiVaPRoMi, error) {
	return core.New(v, banks, cfg, seed)
}

// NewCaPRoMi builds the counter-assisted variant directly.
func NewCaPRoMi(banks int, cfg CaConfig, seed uint64) (*core.CaPRoMi, error) {
	return core.NewCa(banks, cfg, seed)
}

// NewDevice builds a DRAM device; a nil policy defaults to the
// contiguous-block ("neighbors") refresh policy.
func NewDevice(p Params, policy RefreshPolicy) (*Device, error) {
	return dram.New(p, policy)
}

// NewController builds a memory controller over dev with the given
// mitigation (nil for an unprotected system).
func NewController(dev *Device, mit Mitigator) (*Controller, error) {
	return memctrl.New(memctrl.DefaultConfig(), dev, mit)
}

// SPECMix returns the default SPEC-like mixed workload.
func SPECMix(banks, rowsPerBank int, seed uint64) Workload {
	return workload.SPECMix(banks, rowsPerBank, seed)
}

// NewAttacker builds the ramping cache-flush attacker.
func NewAttacker(cfg workload.AttackerConfig) (*Attacker, error) {
	return workload.NewAttacker(cfg)
}

// AttackerConfig describes an attack campaign.
type AttackerConfig = workload.AttackerConfig

// RunSimulation executes one simulation of a technique ("" for an
// unprotected system). Accesses are dispatched in batches (see
// RunSimulationBatch); the result is identical at any batch size.
func RunSimulation(cfg SimConfig, technique string) (SimResult, error) {
	return sim.Run(cfg, technique)
}

// RunSimulationBatch is RunSimulation with cancellation and an explicit
// access-batch size (batch <= 0 selects the default). The batch size only
// amortizes per-access dispatch overhead; the simulated behavior — every
// RNG draw, every mitigation command — is byte-identical at any value.
func RunSimulationBatch(ctx context.Context, cfg SimConfig, technique string, batch int) (SimResult, error) {
	return sim.RunCtxBatch(ctx, cfg, technique, batch)
}

// RunSimulationSharded is RunSimulation with the per-bank lane servicing
// fanned out over `shards` goroutines (clamped to the bank count; <= 1
// runs serial). Sharding is purely a latency knob: the simulated
// behavior is byte-identical at any shard count.
func RunSimulationSharded(ctx context.Context, cfg SimConfig, technique string, shards int) (SimResult, error) {
	return sim.RunShardedCtx(ctx, cfg, technique, shards)
}

// RunSeeds executes RunSimulation across seeds in parallel and aggregates
// mean ± stddev.
func RunSeeds(cfg SimConfig, technique string, seeds []uint64) (SimSummary, error) {
	return sim.RunSeeds(cfg, technique, seeds)
}

// RunSeedsCtx is the hardened sweep: bounded worker pool, panic
// recovery, retries, per-run deadlines, and partial results under
// cancellation. Per-seed failures are returned alongside the summary of
// the seeds that completed.
func RunSeedsCtx(ctx context.Context, rc RunnerConfig, cfg SimConfig, technique string, seeds []uint64) (SimSummary, []*RunError, error) {
	return sim.RunSeedsCtx(ctx, rc, cfg, technique, seeds)
}

// DefaultRunnerConfig returns the standard hardened-pool sizing.
func DefaultRunnerConfig() RunnerConfig { return sim.DefaultRunnerConfig() }

// LoadCheckpoint opens or creates a resumable-sweep checkpoint; assign
// it to a Runner to make killed sweeps continue where they stopped.
// Corrupt files are quarantined and every verifiable entry salvaged; the
// LoadReport on the returned Checkpoint says what happened.
func LoadCheckpoint(path string) (*Checkpoint, error) { return sim.LoadCheckpoint(path) }

// LoadCheckpointFS is LoadCheckpoint writing through an explicit
// filesystem seam (nil = the real filesystem); pass a ChaosFS to torture
// the crash-consistency machinery.
func LoadCheckpointFS(path string, fsys FS) (*Checkpoint, error) {
	return sim.LoadCheckpointFS(path, fsys)
}

// LoadShardedCheckpoint opens or creates a sharded checkpoint: dir holds
// one v2 checkpoint file per cell-group shard, and a flush rewrites only
// the shards that changed — the layout for campaigns whose state is too
// large to re-serialize monolithically. An existing directory's on-disk
// shard count wins over the argument. Kill/resume semantics (atomic
// writes, salvage, quarantine, byte-identical convergence) match the
// single-file format shard by shard.
func LoadShardedCheckpoint(dir string, shards int) (*Checkpoint, error) {
	return sim.LoadShardedCheckpoint(dir, shards)
}

// LoadShardedCheckpointFS is LoadShardedCheckpoint through an explicit
// filesystem seam (nil = the real filesystem).
func LoadShardedCheckpointFS(dir string, shards int, fsys FS) (*Checkpoint, error) {
	return sim.LoadShardedCheckpointFS(dir, shards, fsys)
}

// ScaleSmokeReport carries the measurements of one full-geometry scale
// smoke run: touched rows, sparse-state and dense-baseline bytes, and
// the live-heap growth across the run.
type ScaleSmokeReport = sim.ScaleSmokeReport

// ScaleSmoke runs cfg once and measures the memory the simulation
// retained; Check on the report asserts the population-scale bounds
// (sparse state ≤ dense/8, heap growth ≤ dense/2).
func ScaleSmoke(ctx context.Context, cfg SimConfig, technique string) (ScaleSmokeReport, error) {
	return sim.ScaleSmoke(ctx, cfg, technique)
}

// ScaleSmokeConfig returns the attacker-dominated workload the scale
// smoke uses on params p.
func ScaleSmokeConfig(p Params) SimConfig { return sim.ScaleSmokeConfig(p) }

// Streaming statistics: single-pass, constant-memory accumulators for
// population-scale sweeps (see internal/stats).
type (
	// StreamMoments accumulates mean/variance/skewness/kurtosis in one
	// pass with exact pairwise merging.
	StreamMoments = stats.Moments
	// StreamQuantile is the P² single-pass quantile sketch.
	StreamQuantile = stats.P2Quantile
	// StreamSummary composes moments with p50/p99 sketches.
	StreamSummary = stats.StreamSummary
)

// NewStreamQuantile returns a P² sketch tracking quantile q ∈ (0, 1).
func NewStreamQuantile(q float64) *StreamQuantile { return stats.NewP2Quantile(q) }

// NewStreamSummary returns a constant-memory moments + p50/p99 summary.
func NewStreamSummary() *StreamSummary { return stats.NewStreamSummary() }

// NewRunner returns a hardened sweep runner with default pool sizing and
// no checkpoint.
func NewRunner() *Runner { return sim.NewRunner() }

// WrapWithFaults wraps a mitigation with a seed-driven fault-injection
// harness realizing the plan's state and RNG faults (see SimConfig.Fault
// to run whole fault campaigns through the harness instead).
func WrapWithFaults(m Mitigator, plan FaultPlan) *FaultHarness { return faults.Wrap(m, plan) }

// FaultModels returns every injecting fault model in presentation order.
func FaultModels() []FaultModel { return faults.Models() }

// FaultSweep runs a techniques × models × rates degradation campaign
// under the hardened runner (nil for defaults).
func FaultSweep(ctx context.Context, r *Runner, sc FaultSweepConfig) ([]FaultPoint, error) {
	return sim.FaultSweep(ctx, r, sc)
}

// Seeds returns n deterministic seeds derived from base.
func Seeds(base uint64, n int) []uint64 { return sim.Seeds(base, n) }

// Flood runs the Section IV flooding experiment for one technique.
func Flood(technique string, p Params, rate, trials int, seed uint64) (FloodResult, error) {
	return sim.Flood(technique, p, rate, trials, seed)
}

// AnalyzeVulnerability runs the Table III vulnerability probes for one
// technique.
func AnalyzeVulnerability(technique string, p Params, seed uint64) (VulnReport, error) {
	return sim.AnalyzeVulnerability(technique, p, seed)
}

// Campaign-engine types: declare a study as a Campaign — a named grid of
// seed-sweep and probe cells — and execute every cell through the
// hardened runner with bounded cross-cell parallelism and checkpoint
// resume. Results land in a CampaignResults keyed by cell, so rendering
// is byte-identical whatever the worker count (see internal/campaign).
type (
	// Campaign is a named, ordered grid of cells (one study).
	Campaign = campaign.Spec
	// CampaignCell is one schedulable unit (a seed sweep or a probe).
	CampaignCell = campaign.Cell
	// CampaignOptions tunes one campaign execution (workers, runner,
	// progress sink).
	CampaignOptions = campaign.Options
	// CampaignProgress is one scheduler event (cell done, ETA).
	CampaignProgress = campaign.Progress
	// CampaignResults holds every executed cell's result, keyed by cell.
	CampaignResults = campaign.ResultSet
	// CampaignEval carries the evaluation-wide knobs shared by the
	// built-in section builders.
	CampaignEval = campaign.Eval
)

// RunCampaign executes every cell of a campaign through the hardened
// runner with bounded cross-cell parallelism.
func RunCampaign(ctx context.Context, c Campaign, opts CampaignOptions) (*CampaignResults, error) {
	return campaign.Run(ctx, c, opts)
}

// MergeCampaigns concatenates campaigns into one, deduplicating cells by
// key, so studies sharing a sweep run it once.
func MergeCampaigns(name string, cs ...Campaign) Campaign {
	return campaign.Merge(name, cs...)
}

// DefaultCampaignEval mirrors the cmd/experiments flag defaults.
func DefaultCampaignEval() CampaignEval { return campaign.DefaultEval() }

// Serving-layer types: run campaigns as a long-running multi-tenant
// HTTP service — per-tenant fair queuing over one shared worker pool,
// admission control with 429 + Retry-After load shedding, cross-tenant
// dedup through the shared checkpoint cache, SSE progress streams with
// crash-safe resume, idempotent submission and restart recovery through
// a write-ahead job journal, and graceful drain (see internal/serve and
// DESIGN.md §11 and §14).
type (
	// CampaignServer is the multi-tenant campaign server. Mount
	// Handler() on an http.Server; call Drain then Close on shutdown.
	CampaignServer = serve.Server
	// ServeConfig tunes one CampaignServer. JournalPath arms the
	// write-ahead job journal: accepted submissions are fsync'd before
	// the 202 answers, duplicate Idempotency-Key POSTs replay the
	// original job, and a restarted server re-admits interrupted jobs.
	ServeConfig = serve.Config
	// ServeLimits bounds what one campaign submission may ask for.
	ServeLimits = serve.Limits
	// ServeRequest is the wire form of one campaign submission.
	ServeRequest = serve.Request
	// ServeJournalReport summarizes a journal replay: entries kept,
	// unverifiable records dropped, orphans ignored, quarantined files.
	ServeJournalReport = serve.JournalLoadReport
)

// NewCampaignServer builds a CampaignServer, loading (or creating) the
// shared cross-tenant result cache when ServeConfig.CheckpointPath is
// set and replaying the write-ahead job journal when
// ServeConfig.JournalPath is set.
func NewCampaignServer(cfg ServeConfig) (*CampaignServer, error) { return serve.New(cfg) }

// Observability types: the dependency-free flight recorder (see
// internal/obs and DESIGN.md §13). Metrics are process-wide atomics
// rendered in Prometheus text exposition; spans record campaign cells,
// run attempts, checkpoint flushes and serve jobs as Chrome trace-event
// JSON. Instrumentation is strictly write-only — simulation results are
// byte-identical with it on or off — and the hot activation path stays
// allocation-free with metrics enabled (sampled flushes, no per-act
// atomics).
type (
	// MetricsRegistry holds named counter/gauge/histogram families.
	MetricsRegistry = obs.Registry
	// MetricCounter is a monotonically increasing atomic counter.
	MetricCounter = obs.Counter
	// MetricGauge is an atomic instantaneous value.
	MetricGauge = obs.Gauge
	// MetricHistogram is a fixed-bucket atomic histogram.
	MetricHistogram = obs.Histogram
	// Tracer records spans into a bounded in-memory buffer.
	Tracer = obs.Tracer
	// TraceSpan is one in-flight span; its zero value is a valid no-op.
	TraceSpan = obs.Span
)

// DefaultMetrics returns the process-wide metric registry every
// instrumented seam writes into; the serve layer exposes it at
// GET /metrics and cmd/experiments dumps it with -metrics-out.
func DefaultMetrics() *MetricsRegistry { return obs.Default }

// WriteMetrics renders the default registry in Prometheus text
// exposition format (version 0.0.4).
func WriteMetrics(w io.Writer) error { return obs.Default.WritePrometheus(w) }

// SetMetricsEnabled toggles the sampled hot-path metric flushes.
// Disabling never changes simulation results — instrumentation is
// write-only either way — it only silences the counters.
func SetMetricsEnabled(on bool) { obs.SetMetricsEnabled(on) }

// MetricsEnabled reports whether the sampled metric flushes are on.
func MetricsEnabled() bool { return obs.MetricsEnabled() }

// NewTracer returns an empty span tracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// SetTracer installs t as the process-wide tracer (nil disables span
// recording; spans become free no-ops).
func SetTracer(t *Tracer) { obs.SetTracer(t) }

// CurrentTracer returns the installed tracer, or nil when tracing is
// off.
func CurrentTracer() *Tracer { return obs.CurrentTracer() }

// StartSpan opens a span on the installed tracer (a no-op Span when
// tracing is off). End it to record the duration.
func StartSpan(name, category string, kv ...string) TraceSpan {
	return obs.StartSpan(name, category, kv...)
}

// SetObsEventSink directs the structured key=value event log
// (retry/breaker/DEGRADED/quarantine transitions) to w; nil disables
// it.
func SetObsEventSink(w io.Writer) { obs.SetEventSink(w) }

module tivapromi

go 1.22

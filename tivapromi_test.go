package tivapromi

import (
	"context"
	"path/filepath"
	"testing"
)

func TestFacadeParams(t *testing.T) {
	p := PaperParams()
	if p.RefInt != 8192 || p.FlipThreshold != 139000 {
		t.Fatalf("paper params wrong: %+v", p)
	}
	s := ScaledParams()
	if s.RefInt != 1024 {
		t.Fatalf("scaled params wrong: %+v", s)
	}
	if err := DefaultSimConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeTechniquesRegistered(t *testing.T) {
	names := Techniques()
	if len(names) < 9 {
		t.Fatalf("only %d techniques registered: %v", len(names), names)
	}
	if got := len(PaperTechniques()); got != 9 {
		t.Fatalf("paper techniques = %d", got)
	}
	for _, name := range PaperTechniques() {
		m, err := NewMitigation(name, Target{
			Banks: 2, RowsPerBank: 16384, RefInt: 1024, FlipThreshold: 16384,
		}, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("%s built %s", name, m.Name())
		}
	}
}

func TestFacadeDirectConstructors(t *testing.T) {
	cfg := CoreConfig{RowsPerBank: 16384, RefInt: 1024, HistoryEntries: 32, RowBits: 14}
	m, err := NewTiVaPRoMi(LoLiPRoMi, 2, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Variant() != LoLiPRoMi {
		t.Fatal("variant lost")
	}
	ca, err := NewCaPRoMi(2, CaConfig{
		Config:         cfg,
		CounterEntries: 64, LockThreshold: 32, MaxActsPerInterval: 165,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ca.Name() != "CaPRoMi" {
		t.Fatal("wrong name")
	}
}

func TestFacadeDeviceAndController(t *testing.T) {
	dev, err := NewDevice(ScaledParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctl.AccessRow(0, 100, false)
	if dev.Stats().Activates != 1 {
		t.Fatal("controller did not drive the device")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Windows = 1
	cfg.MinAggressors, cfg.MaxAggressors = 2, 2
	res, err := RunSimulation(cfg, "CaPRoMi")
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips != 0 {
		t.Fatalf("CaPRoMi flipped %d", res.Flips)
	}
	sum, err := RunSeeds(cfg, "PARA", Seeds(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Overhead.N() != 2 {
		t.Fatal("seed sweep incomplete")
	}
}

func TestFacadeWorkloadAndAttacker(t *testing.T) {
	w := SPECMix(4, 16384, 1)
	for i := 0; i < 1000; i++ {
		a := w.Next()
		if a.Bank < 0 || a.Bank >= 4 || a.Row < 0 || a.Row >= 16384 {
			t.Fatalf("bad access %+v", a)
		}
	}
	att, err := NewAttacker(AttackerConfig{
		TargetBanks: []int{0}, RowsPerBank: 16384,
		MinAggressors: 1, MaxAggressors: 20, PlannedAccesses: 1000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if att.Next().Bank != 0 {
		t.Fatal("attacker missed its bank")
	}
}

func TestFacadeHardenedRunnerAndFaults(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Windows = 1

	// Hardened sweep through the façade.
	sum, runErrs, err := RunSeedsCtx(context.Background(), DefaultRunnerConfig(), cfg, "PARA", Seeds(1, 2))
	if err != nil || len(runErrs) != 0 {
		t.Fatalf("err=%v runErrs=%v", err, runErrs)
	}
	if len(sum.Runs) != 2 {
		t.Fatalf("completed %d runs, want 2", len(sum.Runs))
	}

	// Fault campaign through SimConfig.Fault: the Loaded Dice case —
	// PARA with a stuck LFSR loses its protection entirely.
	cfg.Fault = FaultPlan{Model: FaultStuckRNG, Rate: 1, Seed: 3}
	res, err := RunSimulation(cfg, "PARA")
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtraActs != 0 {
		t.Fatalf("stuck-RNG PARA still issued %d maintenance commands", res.ExtraActs)
	}

	// Checkpointed runner through the façade.
	ck, err := LoadCheckpoint(filepath.Join(t.TempDir(), "ck.json"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner()
	r.Checkpoint = ck
	cfg.Fault = FaultPlan{}
	a, _, err := r.RunSeeds(context.Background(), cfg, "PARA", Seeds(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := r.RunSeeds(context.Background(), cfg, "PARA", Seeds(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Overhead.Mean() != b.Overhead.Mean() || a.TotalFlips != b.TotalFlips {
		t.Fatal("checkpointed re-run diverged")
	}

	// Harness wrap + fault model enumeration.
	m, err := NewMitigation("LoLiPRoMi", Target{Banks: 2, RowsPerBank: 1024, RefInt: 512, FlipThreshold: 4096}, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := WrapWithFaults(m, FaultPlan{Model: FaultStateSEU, Rate: 0.5, Seed: 9})
	if h.Name() != m.Name() {
		t.Fatal("harness does not delegate Name")
	}
	if len(FaultModels()) < 4 {
		t.Fatalf("%d fault models, want >= 4", len(FaultModels()))
	}
}

package tivapromi

// End-to-end integration tests across every substrate: synthetic CPU
// programs execute through the cache hierarchy, surviving DRAM operations
// are decoded by the address mapper and served by the memory controller,
// activations feed the mitigation, and its act_n commands restore victim
// charge in the device — the complete Fig. 1 pipeline.

import (
	"testing"

	"tivapromi/internal/addr"
	"tivapromi/internal/cache"
	"tivapromi/internal/cpu"
	"tivapromi/internal/dram"
	"tivapromi/internal/memctrl"
	"tivapromi/internal/mitigation"
)

// e2eSystem wires the full pipeline and runs nops instruction-level
// operations of three workload cores plus one flush+reload attacker core
// hammering a double-sided pair in bank 1.
func e2eSystem(t *testing.T, technique string, nops uint64) (*dram.Device, *memctrl.Controller) {
	t.Helper()
	p := dram.ScaledParams()
	p.FlipThreshold = 6000 // scaled to the shorter e2e run

	g := addr.Geometry{
		Channels: 1, Ranks: 1, Banks: p.Banks,
		Rows: p.RowsPerBank, Cols: p.RowBytes / 64, BusBytes: 64,
	}
	mapper, err := addr.NewMapper(g, addr.RowBankCol)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := dram.New(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	var mit mitigation.Mitigator
	if technique != "" {
		factory, err := mitigation.Lookup(technique)
		if err != nil {
			t.Fatal(err)
		}
		mit = factory(mitigation.Target{
			Banks: p.Banks, RowsPerBank: p.RowsPerBank, RefInt: p.RefInt,
			FlipThreshold: p.FlipThreshold,
		}, 42)
	}
	ctl, err := memctrl.New(memctrl.DefaultConfig(), dev, mit)
	if err != nil {
		t.Fatal(err)
	}

	victim := 5001
	aggressors := []uint64{
		mapper.RowAddress(1, victim-1),
		mapper.RowAddress(1, victim+1),
	}
	programs := []cpu.Program{
		cpu.NewStreamProgram(0, 8<<20, 64, 1),
		cpu.NewHammerProgram(aggressors),
		cpu.NewChaseProgram(1<<28, 4<<20, 2),
		cpu.NewHammerProgram(aggressors),
	}
	sys, err := cpu.NewSystem(programs, cpu.DefaultL1(), cpu.DefaultL2(), func(m cache.MemOp) {
		ctl.AccessAddr(mapper, m.Addr, m.Write)
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(nops)
	return dev, ctl
}

func TestEndToEndUnprotectedFlips(t *testing.T) {
	dev, ctl := e2eSystem(t, "", 60_000)
	if ctl.Stats().RowMisses == 0 {
		t.Fatal("no DRAM activations reached the device")
	}
	flips := dev.Flips()
	if len(flips) == 0 {
		t.Fatal("flush+reload hammering through the full pipeline did not flip")
	}
	// The flipped rows must be the attacker's victims (5000/5001/5002
	// ring around the aggressor pair).
	for _, f := range flips {
		if f.Bank != 1 || f.Row < 4999 || f.Row > 5003 {
			t.Fatalf("unexpected flip %+v", f)
		}
	}
}

func TestEndToEndEveryTechniqueProtects(t *testing.T) {
	// Deterministic counter-based techniques must stop every flip in this
	// scenario. The probabilistic techniques cannot promise that at the
	// scaled-down threshold: each refresh window has a small but real
	// chance that no trigger lands on a hammered victim in time, so a
	// fixed-seed run sits a coin-flip away from a single flip (sweeping
	// the mitigation seed shows ~1 in 5 seeds produce one). Their rate
	// guarantee is owned by the statistical-envelope tests in
	// internal/sim; here they get a one-flip allowance so this smoke test
	// asserts the pipeline wiring, not a zero-failure property the
	// techniques do not have.
	budget := map[string]int{
		"LiPRoMi": 1, "LoPRoMi": 1, "LoLiPRoMi": 1, "CaPRoMi": 1, "PARA": 1,
	}
	for _, technique := range append([]string{"LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"},
		"PARA", "TWiCe", "CRA", "CAT") {
		technique := technique
		t.Run(technique, func(t *testing.T) {
			t.Parallel()
			dev, ctl := e2eSystem(t, technique, 60_000)
			if n := len(dev.Flips()); n > budget[technique] {
				t.Fatalf("%s: %d flips through the full pipeline (budget %d)",
					technique, n, budget[technique])
			}
			s := ctl.Stats()
			if s.ActN+s.ActNOne+s.RefreshRow == 0 {
				t.Fatalf("%s idle during an end-to-end attack", technique)
			}
		})
	}
}

func TestEndToEndCacheFiltering(t *testing.T) {
	// The workload cores' accesses must be mostly absorbed by the
	// caches; the attacker's flush+reload traffic dominates DRAM.
	dev, _ := e2eSystem(t, "", 40_000)
	stats := dev.Stats()
	// 20k attacker ops → ~10k loads reach DRAM; workload adds a little.
	if stats.Activates < 8_000 {
		t.Fatalf("only %d activations; the attack is being cached", stats.Activates)
	}
	if stats.Activates > 30_000 {
		t.Fatalf("%d activations from 40k ops; caches not filtering", stats.Activates)
	}
}

func TestEndToEndRefreshKeepsPace(t *testing.T) {
	dev, ctl := e2eSystem(t, "", 50_000)
	if dev.Interval() == 0 {
		t.Fatal("no refresh intervals elapsed")
	}
	// The controller clock and the device interval counter agree.
	wantIntervals := ctl.TimeNs() / 7800
	got := uint64(dev.Interval())
	if got < wantIntervals-1 || got > wantIntervals+1 {
		t.Fatalf("device saw %d intervals, clock implies %d", got, wantIntervals)
	}
}

#!/usr/bin/env bash
# Serving-layer smoke: build the campaign server with the race detector,
# boot it on a local port, drive two overlapping campaigns from two
# tenants, require a cross-tenant shared-cache dedup hit, then SIGTERM
# the process and require a clean graceful drain within a deadline.
#
# Environment:
#   GO                 go binary (default: go)
#   SERVE_SMOKE_PORT   listen port (default: random high port)
#   SERVE_SMOKE_SCALE  extra scale flags (default: tiny CI scale)
set -euo pipefail

GO=${GO:-go}
PORT=${SERVE_SMOKE_PORT:-$((20000 + RANDOM % 20000))}
ADDR="127.0.0.1:$PORT"
BASE="http://$ADDR"
WORK=$(mktemp -d)
SRV=""
cleanup() {
  [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "serve-smoke: FAIL: $*" >&2
  echo "--- server log ---" >&2
  cat "$WORK/serve.log" >&2 || true
  exit 1
}

# Pull one integer field out of a pretty-printed JSON response.
jfield() { grep -o "\"$2\":[^,}]*" <<<"$1" | head -1 | tr -dc '0-9-'; }
jstr()   { grep -o "\"$2\": *\"[^\"]*\"" <<<"$1" | head -1 | sed 's/.*: *"\(.*\)"/\1/'; }

echo "serve-smoke: building with -race"
$GO build -race -o "$WORK/experiments" ./cmd/experiments

echo "serve-smoke: starting server on $ADDR"
"$WORK/experiments" -addr "$ADDR" -checkpoint "$WORK/cache.json" \
  -seeds 1 -windows 1 -trials 2 ${SERVE_SMOKE_SCALE:-} \
  serve >"$WORK/serve.log" 2>&1 &
SRV=$!

for i in $(seq 1 100); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  kill -0 "$SRV" 2>/dev/null || fail "server died during startup"
  sleep 0.2
  [ "$i" -eq 100 ] && fail "server never became healthy"
done
echo "serve-smoke: healthy"

# submit TENANT BODY -> prints job id
submit() {
  local resp
  resp=$(curl -fsS -X POST -H "X-Tenant: $1" -d "$2" "$BASE/v1/campaigns") \
    || fail "$1: submission rejected"
  jstr "$resp" id
}

# await TENANT ID: poll to the terminal state, require "done", echo status
await() {
  local resp state
  for i in $(seq 1 600); do
    resp=$(curl -fsS -H "X-Tenant: $1" "$BASE/v1/campaigns/$2") \
      || fail "$1/$2: status poll failed"
    state=$(jstr "$resp" state)
    case "$state" in
      done) echo "$resp"; return 0 ;;
      failed|canceled) fail "$1/$2: job $state: $resp" ;;
    esac
    sleep 0.2
  done
  fail "$1/$2: job never finished"
}

# Two tenants, overlapping grids: beta's campaign shares every flooding
# cell with alpha's, so beta must hit the shared cache.
BODY_A='{"sections":["table2","flooding"]}'
BODY_B='{"sections":["flooding"]}'

echo "serve-smoke: tenant alpha submits $BODY_A"
ID_A=$(submit alpha "$BODY_A")
ST_A=$(await alpha "$ID_A")
echo "serve-smoke: alpha job $ID_A done"

echo "serve-smoke: tenant beta submits $BODY_B (overlaps alpha)"
ID_B=$(submit beta "$BODY_B")
ST_B=$(await beta "$ID_B")
HITS=$(jfield "$ST_B" dedup_hits)
echo "serve-smoke: beta job $ID_B done, dedup_hits=$HITS"
[ "${HITS:-0}" -gt 0 ] || fail "beta's overlapping campaign recorded no dedup hits"

# Mid-run observability: /metrics must serve Prometheus text with live
# serve counters — admitted jobs and shared-cache dedup hits both nonzero.
# metric NAME -> prints the (first) sample value for that family
metric() {
  grep "^$1" "$WORK/metrics.txt" | head -1 | awk '{print $2}' | cut -d. -f1
}
curl -fsS "$BASE/metrics" >"$WORK/metrics.txt" || fail "/metrics scrape failed"
grep -q '^# TYPE tivapromi_jobs_admitted_total counter' "$WORK/metrics.txt" \
  || fail "/metrics lacks the jobs_admitted family"
ADMITTED=$(metric tivapromi_jobs_admitted_total)
DEDUP=$(metric tivapromi_dedup_hits_total)
echo "serve-smoke: /metrics: jobs_admitted=$ADMITTED dedup_hits=$DEDUP"
[ "${ADMITTED:-0}" -gt 0 ] || fail "/metrics reports no admitted jobs after two completions"
[ "${DEDUP:-0}" -gt 0 ] || fail "/metrics reports no dedup hits despite beta's cache hits"

# Clean scrape once the work has drained: the queue/active gauges must be
# back to zero and every exposition line well-formed (NAME VALUE pairs) —
# one malformed line poisons a real Prometheus scrape.
QD=$(metric tivapromi_queue_depth)
ACTIVE=$(metric tivapromi_active_jobs)
[ "${QD:-1}" -eq 0 ] || fail "queue_depth gauge is ${QD:-?} after all jobs completed, want 0"
[ "${ACTIVE:-1}" -eq 0 ] || fail "active_jobs gauge is ${ACTIVE:-?} after all jobs completed, want 0"
BAD=$(grep -v '^#' "$WORK/metrics.txt" | awk 'NF != 2 {print; exit}')
[ -z "$BAD" ] || fail "malformed exposition line: $BAD"
echo "serve-smoke: /metrics clean after drain (queue_depth=0, active_jobs=0)"

STATS=$(curl -fsS "$BASE/v1/stats")
SWEEP_HITS=$(jfield "$STATS" sweep_hits)
PROBE_HITS=$(jfield "$STATS" probe_hits)
echo "serve-smoke: cache stats: sweep_hits=$SWEEP_HITS probe_hits=$PROBE_HITS"
[ $(( ${SWEEP_HITS:-0} + ${PROBE_HITS:-0} )) -gt 0 ] || fail "server cache census shows no hits"

# Tenant isolation spot check: beta's job must be invisible to alpha.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H "X-Tenant: alpha" "$BASE/v1/campaigns/$ID_B")
[ "$CODE" = 404 ] || fail "cross-tenant job read answered $CODE, want 404"

echo "serve-smoke: sending SIGTERM, expecting a clean drain"
kill -TERM "$SRV"
for i in $(seq 1 60); do
  kill -0 "$SRV" 2>/dev/null || break
  sleep 0.5
  [ "$i" -eq 60 ] && fail "server still alive 30s after SIGTERM"
done
RC=0
wait "$SRV" || RC=$?
SRV=""
[ "$RC" -eq 0 ] || fail "server exited $RC after SIGTERM, want 0"
grep -q "drained cleanly" "$WORK/serve.log" || fail "server log lacks the clean-drain line"

echo "serve-smoke: PASS (dedup_hits=$HITS, clean drain on SIGTERM)"

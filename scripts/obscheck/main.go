// Command obscheck validates the observability artifacts a run writes:
//
//	obscheck -metrics PATH [-require-metrics fam1,fam2,...]
//	obscheck -trace PATH   [-require-spans name1,name2,...]
//
// The metrics file must be well-formed Prometheus text exposition —
// every data line a NAME{labels} VALUE pair under a # TYPE header —
// and the trace file valid Chrome trace-event JSON (the format
// Perfetto and chrome://tracing load): a traceEvents array whose
// entries carry name/ph/ts, complete events with a non-negative dur.
// Required metric families and span names, when given, must appear.
//
// It is the machine half of the obs-smoke gate: `make obs-smoke` runs
// a small campaign with -metrics-out/-trace-out and then this
// validator, so a malformed exposition line or a trace Perfetto would
// reject fails CI, not an operator's debugging session.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

var (
	metricsPath = flag.String("metrics", "", "Prometheus text exposition file to validate")
	tracePath   = flag.String("trace", "", "Chrome trace-event JSON file to validate")
	reqMetrics  = flag.String("require-metrics", "", "comma-separated metric families that must be present")
	reqSpans    = flag.String("require-spans", "", "comma-separated span names that must appear in the trace")
)

func main() {
	flag.Parse()
	if *metricsPath == "" && *tracePath == "" {
		fmt.Fprintln(os.Stderr, "obscheck: nothing to check; pass -metrics and/or -trace")
		os.Exit(2)
	}
	ok := true
	if *metricsPath != "" {
		if err := checkMetrics(*metricsPath, splitList(*reqMetrics)); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: metrics: %v\n", err)
			ok = false
		} else {
			fmt.Printf("obscheck: metrics %s OK\n", *metricsPath)
		}
	}
	if *tracePath != "" {
		if err := checkTrace(*tracePath, splitList(*reqSpans)); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: trace: %v\n", err)
			ok = false
		} else {
			fmt.Printf("obscheck: trace %s OK\n", *tracePath)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// checkMetrics validates the exposition line by line: # TYPE headers
// declare families, every data line is NAME{labels} VALUE with a
// parseable value, and every required family was declared.
func checkMetrics(path string, required []string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	families := map[string]bool{}
	samples := 0
	for i, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 3 && (f[1] == "TYPE" || f[1] == "HELP") {
				families[f[2]] = true
				continue
			}
			return fmt.Errorf("%s:%d: malformed comment %q", path, i+1, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 1 {
			return fmt.Errorf("%s:%d: not a NAME VALUE pair: %q", path, i+1, line)
		}
		name, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil && val != "+Inf" && val != "-Inf" && val != "NaN" {
			return fmt.Errorf("%s:%d: unparseable sample value %q", path, i+1, val)
		}
		base := name
		if b := strings.IndexByte(base, '{'); b >= 0 {
			if !strings.HasSuffix(name, "}") {
				return fmt.Errorf("%s:%d: unterminated label block in %q", path, i+1, name)
			}
			base = base[:b]
		}
		// Histogram series hang off their family name with a suffix.
		trimmed := base
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if cut, ok := strings.CutSuffix(base, suf); ok {
				trimmed = cut
				break
			}
		}
		if !families[base] && !families[trimmed] {
			return fmt.Errorf("%s:%d: sample %q has no # TYPE header", path, i+1, base)
		}
		samples++
	}
	if samples == 0 {
		return fmt.Errorf("%s: no samples at all", path)
	}
	for _, fam := range required {
		if !families[fam] {
			return fmt.Errorf("%s: required family %q missing", path, fam)
		}
	}
	return nil
}

// chromeTrace is the subset of the trace-event format the validator
// inspects.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int64   `json:"pid"`
		Tid  int64   `json:"tid"`
	} `json:"traceEvents"`
}

// checkTrace validates the trace JSON structurally — parseable, every
// event named and phased, complete events with non-negative durations —
// and requires the named spans to appear.
func checkTrace(path string, required []string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc chromeTrace
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: not valid trace JSON: %w", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("%s: traceEvents is empty", path)
	}
	seen := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("%s: event %d has no name", path, i)
		}
		if ev.Ph == "" {
			return fmt.Errorf("%s: event %d (%s) has no phase", path, i, ev.Name)
		}
		if ev.Ts < 0 {
			return fmt.Errorf("%s: event %d (%s) has negative ts", path, i, ev.Name)
		}
		if ev.Ph == "X" && ev.Dur <= 0 {
			return fmt.Errorf("%s: complete event %d (%s) has non-positive dur", path, i, ev.Name)
		}
		seen[ev.Name] = true
	}
	for _, name := range required {
		if !seen[name] {
			return fmt.Errorf("%s: required span %q missing (%d events present)", path, name, len(doc.TraceEvents))
		}
	}
	fmt.Printf("obscheck: %d trace event(s), %d distinct name(s)\n", len(doc.TraceEvents), len(seen))
	return nil
}

// Quickstart: simulate a Row-Hammer attack on a DDR4 system twice — once
// unprotected, once protected by LoLiPRoMi (the paper's area-optimal
// variant) — and compare bit flips and activation overhead.
package main

import (
	"fmt"
	"log"

	"tivapromi"
)

func main() {
	cfg := tivapromi.DefaultSimConfig()
	cfg.Windows = 2
	// A focused double-sided attack (two aggressor rows per targeted
	// bank, sustained) — the classic Row-Hammer pattern, guaranteed to
	// flip on an unprotected device.
	cfg.MinAggressors, cfg.MaxAggressors = 2, 2

	unprotected, err := tivapromi.RunSimulation(cfg, "")
	if err != nil {
		log.Fatal(err)
	}
	protected, err := tivapromi.RunSimulation(cfg, "LoLiPRoMi")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Row-Hammer attack, mixed workload + ramping aggressors:")
	fmt.Printf("  unprotected: %8d activations, %d bit flips\n",
		unprotected.TotalActs, unprotected.Flips)
	fmt.Printf("  LoLiPRoMi:   %8d activations, %d bit flips, %.4f%% extra activations, %d B table per bank\n",
		protected.TotalActs, protected.Flips, protected.OverheadPct, protected.TableBytes)

	if unprotected.Flips == 0 {
		log.Fatal("expected the unprotected system to flip bits")
	}
	if protected.Flips != 0 {
		log.Fatal("expected LoLiPRoMi to prevent every flip")
	}
	fmt.Println("LoLiPRoMi stopped the attack.")
}

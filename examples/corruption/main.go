// corruption shows the attack at the data level — the reason Row-Hammer
// matters at all (Flip Feng Shui [15]): a victim row stores a value the
// attacker must not control (think: a page-table entry or an RSA
// modulus), the attacker hammers the two adjacent rows, and the stored
// bits change without the victim row ever being addressed. With a
// mitigation attached, the same hammering leaves the data intact.
package main

import (
	"bytes"
	"fmt"
	"log"

	"tivapromi"
)

func main() {
	params := tivapromi.ScaledParams()
	secret := []byte("page-table-entry: r/o 0x00007f3a")

	for _, technique := range []string{"none", "LoLiPRoMi"} {
		corrupted := runAttack(params, secret, technique)
		fmt.Printf("%-10s stored data corrupted: %v\n", technique, corrupted)
		if technique == "none" && !corrupted {
			log.Fatal("expected corruption without mitigation")
		}
		if technique != "none" && corrupted {
			log.Fatal("mitigation failed to protect the data")
		}
	}
	fmt.Println("\nthe victim row was never addressed by the attacker — only its neighbors.")
}

func runAttack(params tivapromi.Params, secret []byte, technique string) bool {
	dev, err := tivapromi.NewDevice(params, nil)
	if err != nil {
		log.Fatal(err)
	}
	dev.EnableDataStore(42)

	var mit tivapromi.Mitigator
	if technique != "none" {
		mit, err = tivapromi.NewMitigation(technique, tivapromi.Target{
			Banks:         params.Banks,
			RowsPerBank:   params.RowsPerBank,
			RefInt:        params.RefInt,
			FlipThreshold: params.FlipThreshold,
		}, 7)
		if err != nil {
			log.Fatal(err)
		}
	}
	ctl, err := tivapromi.NewController(dev, mit)
	if err != nil {
		log.Fatal(err)
	}

	// The victim's data lives in bank 0; the attacker knows only that it
	// is adjacent to rows it can reach.
	const bank, victim = 0, 9000
	dev.WriteData(bank, victim, 128, secret)

	// Hammer for one full refresh window.
	for dev.Window() < 1 {
		ctl.AccessRow(bank, victim-1, false)
		ctl.AccessRow(bank, victim+1, false)
	}
	return !bytes.Equal(dev.ReadData(bank, victim, 128, len(secret)), secret) ||
		dev.Corruptions() > 0
}

// flooding reproduces the Section IV flooding experiment as a runnable
// demo: an attacker floods act commands to one row at the maximum DDR4
// rate starting right after the row's refresh (the adversarial phase for
// time-varying weights), and we measure how many activations pass before
// each TiVaPRoMi variant first protects the neighbors. The paper's
// finding: the logarithmic variants react early, LiPRoMi significantly
// later — its Table III vulnerability.
package main

import (
	"fmt"
	"log"

	"tivapromi"
)

func main() {
	p := tivapromi.PaperParams()
	fmt.Printf("flooding one row at %d activations per refresh interval (paper scale)\n",
		p.MaxActsPerRI)
	fmt.Printf("safe bound: %d activations (half the %d flip threshold)\n\n",
		p.FlipThreshold/2, p.FlipThreshold)

	for _, technique := range []string{"LoPRoMi", "LoLiPRoMi", "CaPRoMi", "LiPRoMi"} {
		res, err := tivapromi.Flood(technique, p, p.MaxActsPerRI, 15, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s first protection: median %6.0f acts, p90 %6.0f\n",
			technique, res.MedianActs, res.P90Acts)
	}

	// Medians from a handful of trials are noisy; the decisive metric is
	// the exact survival probability of the flood reaching the full flip
	// threshold, which the vulnerability analyzer computes from each
	// variant's decision law.
	fmt.Println("\nvulnerability classification (Table III column):")
	for _, technique := range []string{"LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"} {
		rep, err := tivapromi.AnalyzeVulnerability(technique, p, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s flood survival %.2e  vulnerable=%v (%s)\n",
			technique, rep.FloodSurvival, rep.Vulnerable, rep.Reason)
	}
}

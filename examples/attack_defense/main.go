// attack_defense walks through a double-sided Row-Hammer attack at the
// device level: it hammers both neighbors of a victim row at full rate
// and reports, window by window, how far the victim's disturbance climbs
// under each TiVaPRoMi variant — and how quickly it climbs to a bit flip
// with no mitigation. This is the microscope view of what the harness
// measures in aggregate.
package main

import (
	"fmt"
	"log"

	"tivapromi"
)

func main() {
	params := tivapromi.ScaledParams()
	victim := params.RowsPerBank / 2
	fmt.Printf("double-sided attack on victim row %d (flip threshold %d, %d intervals per window)\n\n",
		victim, params.FlipThreshold, params.RefInt)

	for _, technique := range []string{"none", "LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"} {
		runAttack(params, victim, technique)
	}
}

func runAttack(params tivapromi.Params, victim int, technique string) {
	dev, err := tivapromi.NewDevice(params, nil)
	if err != nil {
		log.Fatal(err)
	}
	var mit tivapromi.Mitigator
	if technique != "none" {
		mit, err = tivapromi.NewMitigation(technique, tivapromi.Target{
			Banks:         params.Banks,
			RowsPerBank:   params.RowsPerBank,
			RefInt:        params.RefInt,
			FlipThreshold: params.FlipThreshold,
		}, 42)
		if err != nil {
			log.Fatal(err)
		}
	}
	ctl, err := tivapromi.NewController(dev, mit)
	if err != nil {
		log.Fatal(err)
	}

	// Hammer loop: alternate the two aggressors as fast as the bank
	// timing allows; the controller clock fires refresh intervals.
	const bank = 0
	aggressors := [2]int{victim - 1, victim + 1}
	peak := uint32(0)
	for i := 0; dev.Window() < 1; i++ {
		ctl.AccessRow(bank, aggressors[i&1], false)
		if d := dev.Disturbance(bank, victim); d > peak {
			peak = d
		}
	}

	extra := ctl.Stats().ActN + ctl.Stats().ActNOne + ctl.Stats().RefreshRow
	fmt.Printf("%-10s peak victim disturbance %6d (%.0f%% of threshold), extra activation commands %3d, flips %d\n",
		technique, peak, 100*float64(peak)/float64(params.FlipThreshold),
		extra, len(dev.Flips()))
}

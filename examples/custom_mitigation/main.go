// custom_mitigation is the extensibility tutorial: it implements a new
// Row-Hammer mitigation from scratch against the library's Mitigator
// interface and runs it through the full experiment harness next to the
// paper's techniques — using only the public façade.
//
// The technique here ("SampledPARA") is deliberately simple: PARA's
// static probabilistic refresh, but evaluated only on every Nth
// activation with an N-times-higher probability. Same expected overhead,
// 1/Nth the random-number draws — the kind of micro-variant a hardware
// team might prototype. The harness tells us whether it still protects.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tivapromi"
)

// SampledPARA evaluates PARA's coin only on every Nth activation, with
// the probability scaled by N to keep the expected refresh rate.
type SampledPARA struct {
	every int
	p     float64
	count int
	src   *rand.Rand
	seed  uint64
}

// NewSampledPARA builds the technique; every is the sampling period. The
// base probability is PARA's 9.77e-4 (RefInt * Pbase), scaled by the
// sampling period to keep the expected refresh rate.
func NewSampledPARA(every, refInt int, seed uint64) *SampledPARA {
	_ = refInt // the effective probability is tied to PARA's, not RefInt
	s := &SampledPARA{
		every: every,
		p:     float64(every) * 9.77e-4,
		seed:  seed,
	}
	s.Reset()
	return s
}

// The Mitigator contract: observe act/ref commands, emit maintenance
// commands, clear per-window state, reproduce from a seed.

func (s *SampledPARA) Name() string { return "SampledPARA" }

func (s *SampledPARA) OnActivate(bank, row, _ int, cmds []tivapromi.Command) []tivapromi.Command {
	s.count++
	if s.count%s.every != 0 {
		return cmds
	}
	if s.src.Float64() >= s.p {
		return cmds
	}
	side := int8(1)
	if s.src.Intn(2) == 0 {
		side = -1
	}
	return append(cmds, tivapromi.Command{
		Kind: tivapromi.ActNOne, Bank: bank, Row: row, Side: side,
	})
}

func (s *SampledPARA) OnRefreshInterval(_ int, cmds []tivapromi.Command) []tivapromi.Command {
	return cmds
}

func (s *SampledPARA) OnNewWindow() {}

func (s *SampledPARA) Reset() {
	s.count = 0
	s.src = rand.New(rand.NewSource(int64(s.seed)))
}

func (s *SampledPARA) TableBytesPerBank() int { return 0 }

func main() {
	cfg := tivapromi.DefaultSimConfig()
	cfg.Windows = 2
	cfg.MinAggressors, cfg.MaxAggressors = 2, 2

	fmt.Println("SampledPARA (every Nth activation, N-times probability) vs PARA:")
	for _, every := range []int{1, 4, 16, 64} {
		every := every
		cfg.Factory = func(t tivapromi.Target, seed uint64) tivapromi.Mitigator {
			return NewSampledPARA(every, t.RefInt, seed)
		}
		sum, err := tivapromi.RunSeeds(cfg, "custom", tivapromi.Seeds(3, 3))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  N=%-3d overhead %.4f%%  flips %d\n",
			every, sum.Overhead.Mean(), sum.TotalFlips)
	}
	fmt.Println()
	fmt.Println("the harness answers the design question directly: sampling keeps the")
	fmt.Println("expected overhead constant while the flips column shows where (or")
	fmt.Println("whether) protection breaks as the coin flips get coarser.")
}

// policy_comparison runs every mitigation technique on the same mixed
// workload + attacker and prints the storage/overhead trade-off the
// paper's Fig. 4 visualizes: TiVaPRoMi sits between the cheap-but-noisy
// probabilistic schemes and the accurate-but-huge tabled counters.
package main

import (
	"fmt"
	"log"
	"sort"

	"tivapromi"
)

func main() {
	cfg := tivapromi.DefaultSimConfig()
	seeds := tivapromi.Seeds(7, 3)

	type row struct {
		name     string
		overhead float64
		fpr      float64
		table    int
		flips    int
	}
	var rows []row
	for _, name := range tivapromi.PaperTechniques() {
		sum, err := tivapromi.RunSeeds(cfg, name, seeds)
		if err != nil {
			log.Fatal(err)
		}
		// Report storage at full paper scale (1 GB banks), like Fig. 4.
		m, err := tivapromi.NewMitigation(name, tivapromi.Target{
			Banks: 16, RowsPerBank: 131072, RefInt: 8192, FlipThreshold: 139000,
		}, 1)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{
			name:     name,
			overhead: sum.Overhead.Mean(),
			fpr:      sum.FPR.Mean(),
			table:    m.TableBytesPerBank(),
			flips:    sum.TotalFlips,
		})
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].overhead < rows[j].overhead })
	fmt.Println("technique   table/bank   overhead    FPR       flips")
	for _, r := range rows {
		fmt.Printf("%-10s  %8d B   %.4f%%   %.4f%%   %d\n",
			r.name, r.table, r.overhead, r.fpr, r.flips)
	}

	// The Pareto check the paper's Fig. 4 makes visually: no technique
	// from the literature dominates a TiVaPRoMi variant in BOTH table
	// size and overhead — the family is the compromise between cheap,
	// noisy probabilistic schemes and accurate, huge tabled counters.
	fmt.Println()
	family := map[string]bool{"LiPRoMi": true, "LoPRoMi": true, "LoLiPRoMi": true, "CaPRoMi": true}
	for _, tiva := range []string{"LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"} {
		dominated := false
		var ti row
		for _, r := range rows {
			if r.name == tiva {
				ti = r
			}
		}
		for _, r := range rows {
			if !family[r.name] && r.table <= ti.table && r.overhead <= ti.overhead {
				dominated = true
				fmt.Printf("%s is dominated by %s\n", tiva, r.name)
			}
		}
		if !dominated {
			fmt.Printf("%s: no prior technique beats it on both table size and overhead\n", tiva)
		}
	}
}

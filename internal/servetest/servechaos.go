// servechaos.go is the crash-durability torture protocol: where Run
// (servetest.go) kills the server at a checkpoint-commit ordinal and
// only demands convergence of *resubmitted* work, RunServeChaos kills it
// at a seeded journal-commit ordinal and demands the server itself
// remember — every accepted job re-admitted from the write-ahead
// journal, re-rendered byte-identically through the shared cache,
// duplicate Idempotency-Key POSTs answered with the original id and
// zero re-executions, and pre-crash SSE resume tokens refused with a
// snapshot instead of silently aliased into the new incarnation.
package servetest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"tivapromi/internal/campaign"
	"tivapromi/internal/chaostest"
	"tivapromi/internal/iofault"
	"tivapromi/internal/rng"
	"tivapromi/internal/serve"
	"tivapromi/internal/sim"
)

// ChaosConfig tunes one crash-durability run.
type ChaosConfig struct {
	// Seed drives the kill ordinal (and nothing else: the filesystem
	// injects no write faults — the crash itself is the fault).
	Seed uint64
	// Tenants is the number of concurrent clients (≤ 0 means 4), one
	// journaled job each.
	Tenants int
	// Workers bounds the server's simulation pool (≤ 0 means 4).
	Workers int
	// Variants are the section sets tenants cycle through (empty = a
	// default mix whose first entry has real cells, so the SSE watcher
	// sees progress events).
	Variants [][]string
	// Eval is the evaluation scale (zero = chaostest.TestScaleEval()).
	Eval campaign.Eval
	// Dir is the working directory for the journal and checkpoint ("" =
	// the caller must supply one; the harness does not clean up).
	Dir string
	// Log, when non-nil, receives the harness's progress narration.
	Log io.Writer
}

// ChaosReport summarizes one crash-durability run.
type ChaosReport struct {
	// Golden is the number of distinct golden reports computed.
	Golden int
	// Submitted counts life-A submissions the server accepted (and
	// therefore journaled — a 202 is the durability promise).
	Submitted int
	// Killed reports whether the seeded power-off actually fired;
	// KillOrdinal is the journal-commit count it was armed at.
	Killed      bool
	KillOrdinal int
	// Tampered reports that a torn tail was appended to the journal
	// between lives (the restart must salvage, not refuse).
	Tampered bool
	// Recovered counts life-B jobs re-admitted from the journal (every
	// accepted job, in a fault-free life A, since outputs die with the
	// process); Tombstones counts terminal failed/canceled replays.
	Recovered  int
	Tombstones int
	// IdempotentReplays counts duplicate POSTs answered with the original
	// job id; ReExecutions is the admitted-counter movement during that
	// sweep (must be 0 — a replay is an answer, not a job).
	IdempotentReplays int
	ReExecutions      int64
	// PreKillEventID is the last SSE id the life-A watcher saw ("" if the
	// kill beat the first progress event). SnapshotFallback reports that
	// replaying it at the recovered incarnation drew a snapshot frame,
	// never a silent continuation; ResumeChecked that a current-epoch
	// caught-up reconnect skipped the snapshot.
	PreKillEventID   string
	SnapshotFallback bool
	ResumeChecked    bool
	// Compared counts report byte-comparisons; Identical is true only if
	// every recovered job's report matched its golden bytes.
	Compared  int
	Identical bool
	// Corpses is the number of quarantine files beside the journal after
	// the run (bounded by sim.QuarantineKeep).
	Corpses int
	// LeakedGoroutines counts serve-owned goroutines alive after the
	// final drain (must be 0).
	LeakedGoroutines int
	// Faults aggregates the chaos filesystem's injected faults (the
	// power-off's refused writes land here).
	Faults iofault.ChaosStats
}

// Check asserts the crash-durability contract on a finished report.
func (r ChaosReport) Check() error {
	switch {
	case r.Submitted == 0:
		return fmt.Errorf("servetest: chaos life accepted no submissions")
	case !r.Killed:
		return fmt.Errorf("servetest: the kill at journal commit %d never fired", r.KillOrdinal)
	case r.Recovered != r.Submitted:
		return fmt.Errorf("servetest: %d of %d accepted jobs re-admitted from the journal", r.Recovered, r.Submitted)
	case r.Compared != r.Submitted || !r.Identical:
		return fmt.Errorf("servetest: %d/%d recovered reports compared, identical=%v", r.Compared, r.Submitted, r.Identical)
	case r.IdempotentReplays != r.Submitted:
		return fmt.Errorf("servetest: %d of %d duplicate POSTs replayed the original job", r.IdempotentReplays, r.Submitted)
	case r.ReExecutions != 0:
		return fmt.Errorf("servetest: idempotent sweep admitted %d new executions, want 0", r.ReExecutions)
	case r.PreKillEventID != "" && !r.SnapshotFallback:
		return fmt.Errorf("servetest: pre-kill SSE id %q resumed without a snapshot — cross-incarnation aliasing", r.PreKillEventID)
	case !r.ResumeChecked:
		return fmt.Errorf("servetest: the current-epoch SSE resume path was never exercised")
	case r.Corpses > sim.QuarantineKeep:
		return fmt.Errorf("servetest: %d quarantine corpses beside the journal, bound is %d", r.Corpses, sim.QuarantineKeep)
	case r.LeakedGoroutines != 0:
		return fmt.Errorf("servetest: %d serve goroutine(s) leaked", r.LeakedGoroutines)
	}
	return nil
}

// chaosVariants is DefaultVariants reordered so tenant 0 — the SSE
// watcher's tenant — always runs a campaign with real cells (table2
// alone is an empty spec and would emit no progress events to resume).
func chaosVariants() [][]string {
	return [][]string{
		{"flooding"},
		{"table2", "flooding"},
		{"table3"},
		{"table2"},
	}
}

// submission is one life-A accepted job, remembered across the kill.
type submission struct {
	tenant string
	id     string
	key    string // Idempotency-Key
	body   []byte // exact submitted bytes (fingerprint-identical re-POST)
	names  []string
}

// submitIdem POSTs with an Idempotency-Key and returns the decoded
// status, HTTP code, and whether the server marked the answer a replay.
func submitIdem(hc *http.Client, base, tenant, key string, body []byte) (serve.Status, int, bool, error) {
	req, err := http.NewRequest("POST", base+"/v1/campaigns", bytes.NewReader(body))
	if err != nil {
		return serve.Status{}, 0, false, err
	}
	req.Header.Set("X-Tenant", tenant)
	req.Header.Set("Idempotency-Key", key)
	resp, err := hc.Do(req)
	if err != nil {
		return serve.Status{}, 0, false, err
	}
	defer resp.Body.Close()
	replay := resp.Header.Get("Idempotent-Replay") == "true"
	var st serve.Status
	if resp.StatusCode == http.StatusAccepted {
		err = json.NewDecoder(resp.Body).Decode(&st)
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp.StatusCode, replay, err
}

// sseFirstFrame opens a job's event stream (optionally resuming from
// lastEventID) and returns the event name of the first frame.
func sseFirstFrame(hc *http.Client, base, tenant, id, lastEventID string) (string, error) {
	req, err := http.NewRequest("GET", base+"/v1/campaigns/"+id+"/events", nil)
	if err != nil {
		return "", err
	}
	req.Header.Set("X-Tenant", tenant)
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("events stream: HTTP %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return "", err
		}
		if strings.HasPrefix(line, "event: ") {
			return strings.TrimSpace(line[len("event: "):]), nil
		}
	}
}

// RunServeChaos executes the crash-durability protocol:
//
//  1. golden: render each variant serially and undisturbed;
//  2. life A: a journaled server on a power-off-capable filesystem, one
//     keyed job per tenant, an SSE watcher recording resume tokens —
//     hard-killed at a seeded journal-commit ordinal (the power-off
//     refuses every later write, exactly like yanked power);
//  3. the corpse is desecrated: a torn half-record is appended to the
//     journal, so the restart must salvage, not merely reopen;
//  4. life B: a plain-filesystem server on the same journal and
//     checkpoint paths. Every accepted job must be re-admitted and
//     re-rendered byte-identically; duplicate keyed POSTs must replay
//     the original id with zero new executions; the pre-kill SSE token
//     must draw a snapshot (cross-incarnation ids never alias) while a
//     current-epoch token resumes without one; quarantine stays bounded,
//     the drain terminates, and no serve goroutine survives.
func RunServeChaos(ctx context.Context, cfg ChaosConfig) (ChaosReport, error) {
	var rep ChaosReport
	if ctx == nil {
		ctx = context.Background()
	}
	tenants := cfg.Tenants
	if tenants <= 0 {
		tenants = 4
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	variants := cfg.Variants
	if len(variants) == 0 {
		variants = chaosVariants()
	}
	ev := cfg.Eval
	if ev.SeedsPerPoint == 0 {
		ev = chaostest.TestScaleEval()
	}
	if cfg.Dir == "" {
		return rep, fmt.Errorf("servetest: ChaosConfig.Dir is required")
	}
	jpath := filepath.Join(cfg.Dir, "serve-jobs.journal")
	ckpt := filepath.Join(cfg.Dir, "serve-chaos-cache.json")
	master := rng.NewXorShift64Star(cfg.Seed ^ 0xc4a5d0)

	// Phase 1: golden bytes per variant.
	golden := make(map[string][]byte, len(variants))
	for _, names := range variants[:min(len(variants), tenants)] {
		key := strings.Join(names, "+")
		if _, ok := golden[key]; ok {
			continue
		}
		spec, gev, err := serve.BuildCampaign(serve.Request{Sections: names}, ev, serve.Limits{})
		if err != nil {
			return rep, fmt.Errorf("servetest: golden %s: %w", key, err)
		}
		rs, err := campaign.Run(ctx, spec, campaign.Options{Workers: 1})
		if err != nil {
			return rep, fmt.Errorf("servetest: golden %s: %w", key, err)
		}
		text, _, err := serve.RenderReport(gev, rs, names)
		if err != nil {
			return rep, fmt.Errorf("servetest: golden %s render: %w", key, err)
		}
		golden[key] = text
		rep.Golden++
	}
	logf(cfg.Log, "servetest: serve-chaos: %d golden variant(s)", rep.Golden)

	// Phase 2, life A: journaled server on a power-off filesystem. No
	// probabilistic faults — the kill is the fault, and its placement
	// (a journal append-commit ordinal) is the only randomness.
	fsys := iofault.NewChaos(nil, iofault.ChaosConfig{Seed: master.Uint64()})
	// The journal commits once for the header, once per accepted submit,
	// and once per state transition; an ordinal inside [2, tenants+2]
	// lands the kill between the first admission (commit 2 — its sync
	// completes before the hook fires, so at least one 202 is durable)
	// and the last terminal record, where recovery has real work.
	killAt := 2 + rng.Intn(master, tenants+1)
	rep.KillOrdinal = killAt
	killCh := make(chan struct{})
	var killOnce sync.Once
	fsys.OnAppend = func(_ string, n int) {
		if n >= killAt {
			// The hook runs without the chaos lock held, so the power-off
			// is safe to pull from here — this commit is the last write
			// that survives.
			killOnce.Do(func() { fsys.PowerOff(); close(killCh) })
		}
	}
	srv, err := serve.New(serve.Config{
		Workers:        workers,
		BaseEval:       ev,
		JournalPath:    jpath,
		CheckpointPath: ckpt,
		FS:             fsys,
		DrainTimeout:   time.Second,
		Log:            cfg.Log,
	})
	if err != nil {
		return rep, fmt.Errorf("servetest: life A server: %w", err)
	}
	hs := httptest.NewServer(srv.Handler())

	var mu sync.Mutex
	var subs []submission
	var preKillID string
	var wg sync.WaitGroup
	clientCtx, stopClients := context.WithCancel(ctx)
	defer stopClients()
	for i := 0; i < tenants; i++ {
		names := variants[i%len(variants)]
		tenant := fmt.Sprintf("tenant-%d", i)
		key := fmt.Sprintf("ik-%d", i)
		body, _ := json.Marshal(serve.Request{Sections: names})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, code, _, err := submitIdem(hs.Client(), hs.URL, tenant, key, body)
			if err != nil || code != http.StatusAccepted {
				return // killed mid-admission: the 202 never happened, so nothing was promised
			}
			mu.Lock()
			subs = append(subs, submission{tenant: tenant, id: st.ID, key: key, body: body, names: names})
			mu.Unlock()
			if i == 0 {
				// The watcher: stream tenant-0's events and remember the
				// last id seen — the resume token a real client would
				// replay after the crash.
				req, _ := http.NewRequest("GET", hs.URL+"/v1/campaigns/"+st.ID+"/events", nil)
				req.Header.Set("X-Tenant", tenant)
				if resp, err := hs.Client().Do(req.WithContext(clientCtx)); err == nil {
					br := bufio.NewReader(resp.Body)
					for {
						line, err := br.ReadString('\n')
						if err != nil {
							break // the kill, or job completion closing the stream
						}
						if strings.HasPrefix(line, "id: ") {
							mu.Lock()
							preKillID = strings.TrimSpace(line[len("id: "):])
							mu.Unlock()
						}
					}
					resp.Body.Close()
				}
				return
			}
			c := &client{base: hs.URL, tenant: tenant, hc: hs.Client()}
			c.awaitTerminal(clientCtx, st.ID)
		}(i)
	}
	clientsDone := make(chan struct{})
	go func() { wg.Wait(); close(clientsDone) }()
	select {
	case <-killCh:
		rep.Killed = true
	case <-clientsDone:
	case <-ctx.Done():
		stopClients()
		hs.Close()
		srv.Close()
		return rep, ctx.Err()
	}
	// The crash: no drain, no flush. Close only reaps goroutines — the
	// power-off already made every further write fail, so the on-disk
	// journal is exactly what a SIGKILL would have left.
	stopClients()
	srv.Close()
	hs.Close()
	wg.Wait()
	rep.Submitted = len(subs)
	if rep.Submitted == 0 {
		return rep, fmt.Errorf("servetest: the kill beat every admission; nothing to recover (killAt=%d)", killAt)
	}
	rep.PreKillEventID = preKillID
	rep.Faults = fsys.Stats()
	logf(cfg.Log, "servetest: life A: %d accepted, killAt=%d killed=%v, pre-kill SSE id %q",
		rep.Submitted, killAt, rep.Killed, preKillID)

	// Phase 3: desecrate the corpse — a torn half-record with no newline,
	// as if the process died mid-append with the page cache half-flushed.
	if f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644); err == nil {
		if _, err := f.WriteString(`{"kind":"state","id":"j9`); err == nil {
			rep.Tampered = true
		}
		f.Close()
	}

	// Phase 4, life B: plain filesystem, same journal, same checkpoint.
	srv2, err := serve.New(serve.Config{
		Workers:         workers,
		BaseEval:        ev,
		JournalPath:     jpath,
		CheckpointPath:  ckpt,
		RecoveryTimeout: 2 * time.Minute,
		DrainTimeout:    30 * time.Second,
		Log:             cfg.Log,
	})
	if err != nil {
		return rep, fmt.Errorf("servetest: life B server: %w", err)
	}
	hs2 := httptest.NewServer(srv2.Handler())
	defer func() {
		hs2.Close()
		srv2.Close()
	}()
	if note := srv2.JournalReport().Note(); note != "" {
		logf(cfg.Log, "servetest: life B journal load: %s", note)
	}

	rep.Identical = true
	for _, sub := range subs {
		c := &client{base: hs2.URL, tenant: sub.tenant, hc: hs2.Client()}
		st, err := c.status(sub.id)
		if err != nil {
			return rep, fmt.Errorf("servetest: life B status %s: %w", sub.id, err)
		}
		if st.ID != sub.id {
			return rep, fmt.Errorf("servetest: job %s (tenant %s) did not survive the restart", sub.id, sub.tenant)
		}
		if st.Recovered {
			rep.Recovered++
		}
		final, err := c.awaitTerminal(ctx, sub.id)
		if err != nil {
			return rep, fmt.Errorf("servetest: life B await %s: %w", sub.id, err)
		}
		if final.State != serve.StateDone {
			if final.State.Terminal() && !final.Recovered {
				rep.Tombstones++
				continue
			}
			return rep, fmt.Errorf("servetest: recovered job %s: %s (%s)", sub.id, final.State, final.Error)
		}
		text, err := c.report(sub.id)
		if err != nil {
			return rep, fmt.Errorf("servetest: life B report %s: %w", sub.id, err)
		}
		rep.Compared++
		if !bytes.Equal(text, golden[strings.Join(sub.names, "+")]) {
			rep.Identical = false
			logf(cfg.Log, "servetest: job %s report differs from golden (%d vs %d bytes)",
				sub.id, len(text), len(golden[strings.Join(sub.names, "+")]))
		}
	}
	logf(cfg.Log, "servetest: life B: %d recovered, %d compared, identical=%v",
		rep.Recovered, rep.Compared, rep.Identical)

	// Idempotent sweep: every life-A key re-POSTed verbatim must be
	// answered with the original job id, marked as a replay, and admit
	// nothing new.
	admittedBefore, _, _, _, _, _ := srv2.CountersSnapshot()
	for _, sub := range subs {
		st, code, replay, err := submitIdem(hs2.Client(), hs2.URL, sub.tenant, sub.key, sub.body)
		if err != nil || code != http.StatusAccepted {
			return rep, fmt.Errorf("servetest: idempotent re-POST %s: HTTP %d err %v", sub.key, code, err)
		}
		if replay && st.ID == sub.id {
			rep.IdempotentReplays++
		}
	}
	admittedAfter, _, _, _, _, _ := srv2.CountersSnapshot()
	rep.ReExecutions = admittedAfter - admittedBefore

	// SSE resume discipline. The pre-kill token carries the dead
	// incarnation's epoch: replaying it against tenant-0's recovered job
	// must draw a snapshot, because a seq-only continuation would alias
	// two different event histories. When the kill beat the watcher's
	// first frame, a bare epoch-0 seq stands in — that is exactly the
	// token a pre-crash client would hold.
	var watched *submission
	for i := range subs {
		if subs[i].tenant == "tenant-0" {
			watched = &subs[i]
			break
		}
	}
	if preKillID != "" && watched == nil {
		return rep, fmt.Errorf("servetest: pre-kill SSE id %q recorded but tenant-0 never admitted", preKillID)
	}
	if watched != nil {
		token := preKillID
		if token == "" {
			token = "1"
		}
		rep.PreKillEventID = token
		first, err := sseFirstFrame(hs2.Client(), hs2.URL, watched.tenant, watched.id, token)
		if err != nil {
			return rep, fmt.Errorf("servetest: pre-kill SSE replay: %w", err)
		}
		rep.SnapshotFallback = first == "snapshot"
	}
	// A current-epoch caught-up token resumes without a snapshot: the
	// stream goes straight to the terminal frame. Any recovered job with
	// events will do; if every survivor ran an empty campaign, a fresh
	// life-B job supplies the stream instead.
	resumeTarget := func() (tenant, id string, epoch, seq uint64, err error) {
		for _, sub := range subs {
			st, err := (&client{base: hs2.URL, tenant: sub.tenant, hc: hs2.Client()}).status(sub.id)
			if err == nil && st.State == serve.StateDone && st.Seq > 0 {
				return sub.tenant, sub.id, st.Epoch, st.Seq, nil
			}
		}
		body, _ := json.Marshal(serve.Request{Sections: []string{"flooding"}})
		st, code, _, err := submitIdem(hs2.Client(), hs2.URL, "tenant-0", "ik-resume-probe", body)
		if err != nil || code != http.StatusAccepted {
			return "", "", 0, 0, fmt.Errorf("servetest: resume probe submit: HTTP %d err %v", code, err)
		}
		c := &client{base: hs2.URL, tenant: "tenant-0", hc: hs2.Client()}
		final, err := c.awaitTerminal(ctx, st.ID)
		if err != nil || final.State != serve.StateDone || final.Seq == 0 {
			return "", "", 0, 0, fmt.Errorf("servetest: resume probe: %s seq=%d err %v", final.State, final.Seq, err)
		}
		return "tenant-0", st.ID, final.Epoch, final.Seq, nil
	}
	tenant, id, epoch, seq, err := resumeTarget()
	if err != nil {
		return rep, err
	}
	token := fmt.Sprintf("%d", seq)
	if epoch > 0 {
		token = fmt.Sprintf("%d.%d", epoch, seq)
	}
	first, err := sseFirstFrame(hs2.Client(), hs2.URL, tenant, id, token)
	if err != nil {
		return rep, fmt.Errorf("servetest: current-epoch SSE resume: %w", err)
	}
	if first == "snapshot" {
		return rep, fmt.Errorf("servetest: caught-up token %s drew a snapshot; resume is broken", token)
	}
	rep.ResumeChecked = true

	// Drain, then the post-mortem: goroutines and quarantine bound.
	drainCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if err := srv2.Drain(drainCtx); err != nil {
		return rep, fmt.Errorf("servetest: life B drain: %w", err)
	}
	rep.LeakedGoroutines = serveGoroutines()
	for wait := 0; rep.LeakedGoroutines > 0 && wait < 100; wait++ {
		time.Sleep(10 * time.Millisecond)
		rep.LeakedGoroutines = serveGoroutines()
	}
	matches, _ := filepath.Glob(jpath + ".corrupt-*")
	rep.Corpses = len(matches)
	logf(cfg.Log, "servetest: post-mortem: %d idempotent replays, re-exec=%d, snapshotFallback=%v, resumeChecked=%v, %d corpse(s), %d leaked",
		rep.IdempotentReplays, rep.ReExecutions, rep.SnapshotFallback, rep.ResumeChecked, rep.Corpses, rep.LeakedGoroutines)
	return rep, nil
}

package servetest

import (
	"context"
	"testing"
)

// TestServeChaosCrashDurable is the acceptance test for the durable
// serving core: a journaled server hard-killed at a seeded
// journal-commit ordinal (with a torn tail appended for good measure)
// must come back remembering everything — every accepted job
// re-admitted and re-rendered byte-identically, duplicate
// Idempotency-Key POSTs answered with the original id and zero new
// executions, pre-crash SSE resume tokens refused with a snapshot,
// current-epoch tokens resumed without one, quarantine bounded, and no
// goroutine left behind.
func TestServeChaosCrashDurable(t *testing.T) {
	if testing.Short() {
		t.Skip("serve-chaos torture run in -short mode")
	}
	rep, err := RunServeChaos(context.Background(), ChaosConfig{
		Seed: 7,
		Dir:  t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	if !rep.Tampered {
		t.Error("the torn-tail tamper never landed; salvage went unexercised")
	}
}

// Package servetest is the serving-layer torture harness: it stands a
// real campaign server (internal/serve) on the fault-injecting
// filesystem of internal/iofault, drives it with concurrent tenants over
// real HTTP, hard-kills the server mid-flight at a seeded
// checkpoint-commit ordinal, restarts it on the same checkpoint path,
// and verifies the restarted server converges: every tenant's report
// byte-identical to an undisturbed serial run, admission overload shed
// with 429 + Retry-After, a graceful drain that terminates, zero serve
// goroutines left behind, and bounded heap.
//
// It is to the serving layer what internal/chaostest is to the
// persistence layer — the same discipline (golden run, chaos cycle,
// clean convergence, byte identity), one layer up the stack.
package servetest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"tivapromi/internal/campaign"
	"tivapromi/internal/chaostest"
	"tivapromi/internal/iofault"
	"tivapromi/internal/rng"
	"tivapromi/internal/serve"
)

// Config tunes one serving torture run.
type Config struct {
	// Seed drives the chaos fault schedule and the kill ordinal.
	Seed uint64
	// Tenants is the number of concurrent clients (≤ 0 means 4).
	Tenants int
	// Workers bounds the server's shared simulation pool (≤ 0 means 4).
	Workers int
	// QueueDepth is the per-tenant admission bound (≤ 0 means 2); the
	// overflow probe submits past it and expects 429s.
	QueueDepth int
	// Variants are the campaign section sets tenants cycle through
	// (empty = a default overlapping mix, so cross-tenant dedup is
	// guaranteed work to find).
	Variants [][]string
	// Eval is the evaluation scale (zero = chaostest.TestScaleEval()).
	Eval campaign.Eval
	// Dir is the working directory for the shared checkpoint ("" = the
	// caller must supply one; the harness does not clean up).
	Dir string
	// Log, when non-nil, receives the harness's progress narration.
	Log io.Writer
}

// Report summarizes one serving torture run.
type Report struct {
	// Variants is the number of distinct golden reports computed.
	Variants int
	// SubmittedChaos / SubmittedClean count accepted submissions per phase.
	SubmittedChaos, SubmittedClean int
	// Killed reports whether the mid-flight kill actually fired (a chaos
	// phase that finishes before its kill ordinal survives instead).
	Killed bool
	// Faults aggregates every fault the chaos filesystem injected.
	Faults iofault.ChaosStats
	// Rejected429 counts overflow submissions shed with 429.
	Rejected429 int
	// RetryAfterSeen reports whether every observed 429 carried a
	// Retry-After header.
	RetryAfterSeen bool
	// DedupHits is the clean server's shared-cache hit count attributed
	// to tenant jobs.
	DedupHits int64
	// Compared counts report byte-comparisons performed; Identical is
	// true only if every one matched its golden bytes.
	Compared  int
	Identical bool
	// LeakedGoroutines counts serve-owned goroutines still alive after
	// the final drain (must be 0).
	LeakedGoroutines int
	// HeapAllocBytes is the post-GC heap after the run (the bounded-
	// memory assertion's input).
	HeapAllocBytes uint64
}

// DefaultVariants is the overlapping campaign mix: tenants 0 and 3 share
// table2 cells, tenants 2 and 3 share flooding cells, and phase-B
// resubmission repeats every grid — cross-tenant and cross-phase dedup
// both have guaranteed work.
func DefaultVariants() [][]string {
	return [][]string{
		{"table2"},
		{"table3"},
		{"flooding"},
		{"table2", "flooding"},
	}
}

// client is one tenant's HTTP-side view of the server.
type client struct {
	base   string
	tenant string
	hc     *http.Client
}

func (c *client) submit(body []byte) (serve.Status, int, string, error) {
	req, err := http.NewRequest("POST", c.base+"/v1/campaigns", bytes.NewReader(body))
	if err != nil {
		return serve.Status{}, 0, "", err
	}
	req.Header.Set("X-Tenant", c.tenant)
	resp, err := c.hc.Do(req)
	if err != nil {
		return serve.Status{}, 0, "", err
	}
	defer resp.Body.Close()
	retryAfter := resp.Header.Get("Retry-After")
	var st serve.Status
	if resp.StatusCode == http.StatusAccepted {
		err = json.NewDecoder(resp.Body).Decode(&st)
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp.StatusCode, retryAfter, err
}

func (c *client) status(id string) (serve.Status, error) {
	req, err := http.NewRequest("GET", c.base+"/v1/campaigns/"+id, nil)
	if err != nil {
		return serve.Status{}, err
	}
	req.Header.Set("X-Tenant", c.tenant)
	resp, err := c.hc.Do(req)
	if err != nil {
		return serve.Status{}, err
	}
	defer resp.Body.Close()
	var st serve.Status
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func (c *client) report(id string) ([]byte, error) {
	req, err := http.NewRequest("GET", c.base+"/v1/campaigns/"+id+"/report", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-Tenant", c.tenant)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("servetest: report fetch for %s: HTTP %d", id, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// awaitTerminal polls a job to a terminal state. A transport error means
// the server died under the caller's feet (the chaos phase's kill); it
// is returned for the caller to classify.
func (c *client) awaitTerminal(ctx context.Context, id string) (serve.Status, error) {
	for {
		st, err := c.status(id)
		if err != nil {
			return serve.Status{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Run executes the serving torture protocol:
//
//  1. golden: run each campaign variant once, serially and undisturbed
//     (no server, no checkpoint), and render it exactly as the server
//     would — the per-variant golden bytes;
//  2. chaos: start a server whose shared cache lives on the chaos
//     filesystem, drive it with Tenants concurrent clients, and
//     hard-kill it at a seeded checkpoint-commit ordinal;
//  3. restart: start a fresh server on a clean filesystem over the same
//     checkpoint path (salvage happens at load), have every tenant
//     resubmit twice, and require every finished report byte-identical
//     to its golden — plus shared-cache dedup hits, since phase 2's
//     surviving cells and the repeated grids overlap;
//  4. overflow: one flood tenant bursts past its queue depth and must
//     be shed with 429 + Retry-After, never an error or a hang;
//  5. drain: gracefully drain the clean server, then assert no serve
//     goroutine survived and the heap stayed bounded.
func Run(ctx context.Context, cfg Config) (Report, error) {
	var rep Report
	if ctx == nil {
		ctx = context.Background()
	}
	tenants := cfg.Tenants
	if tenants <= 0 {
		tenants = 4
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	queueDepth := cfg.QueueDepth
	if queueDepth <= 0 {
		queueDepth = 2
	}
	variants := cfg.Variants
	if len(variants) == 0 {
		variants = DefaultVariants()
	}
	ev := cfg.Eval
	if ev.SeedsPerPoint == 0 {
		ev = chaostest.TestScaleEval()
	}
	if cfg.Dir == "" {
		return rep, fmt.Errorf("servetest: Config.Dir is required")
	}
	ckpt := filepath.Join(cfg.Dir, "serve-cache.json")
	master := rng.NewXorShift64Star(cfg.Seed ^ 0x5e47e57)

	// Phase 1: golden bytes per variant, computed the way the server
	// computes them (same spec expansion, same renderer) but serially,
	// with no checkpoint and no faults.
	golden := make(map[string][]byte, len(variants))
	for _, names := range variants {
		key := strings.Join(names, "+")
		if _, ok := golden[key]; ok {
			continue
		}
		spec, gev, err := serve.BuildCampaign(serve.Request{Sections: names}, ev, serve.Limits{})
		if err != nil {
			return rep, fmt.Errorf("servetest: golden %s: %w", key, err)
		}
		rs, err := campaign.Run(ctx, spec, campaign.Options{Workers: 1})
		if err != nil {
			return rep, fmt.Errorf("servetest: golden %s: %w", key, err)
		}
		text, _, err := serve.RenderReport(gev, rs, names)
		if err != nil {
			return rep, fmt.Errorf("servetest: golden %s render: %w", key, err)
		}
		golden[key] = text
		rep.Variants++
	}
	logf(cfg.Log, "servetest: %d golden variant(s) computed", rep.Variants)

	// Phase 2: chaos server, concurrent tenants, mid-flight kill.
	if err := runChaosPhase(ctx, cfg, &rep, tenants, workers, queueDepth, variants, ev, ckpt, master); err != nil {
		return rep, err
	}

	// Phase 3–5: clean restart, convergence, overflow, drain.
	if err := runCleanPhase(ctx, cfg, &rep, tenants, workers, queueDepth, variants, ev, ckpt, golden); err != nil {
		return rep, err
	}

	// Post-mortem: serve goroutines and heap.
	rep.LeakedGoroutines = serveGoroutines()
	for wait := 0; rep.LeakedGoroutines > 0 && wait < 100; wait++ {
		time.Sleep(10 * time.Millisecond)
		rep.LeakedGoroutines = serveGoroutines()
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rep.HeapAllocBytes = ms.HeapAlloc
	logf(cfg.Log, "servetest: post-mortem: %d leaked goroutine(s), %d KiB heap",
		rep.LeakedGoroutines, rep.HeapAllocBytes/1024)
	return rep, nil
}

// chaosOdds mirrors the chaostest fault mix: high enough to draw real
// faults every phase, low enough that checkpoints make progress.
func chaosOdds(seed uint64) iofault.ChaosConfig {
	return iofault.ChaosConfig{
		Seed:       seed,
		TornWrite:  0.04,
		ShortWrite: 0.03,
		WriteErr:   0.03,
		NoSpace:    0.02,
		RenameFail: 0.03,
		FsyncLoss:  0.03,
		BitFlip:    0.02,
	}
}

// runChaosPhase drives the chaos server with concurrent tenants until
// either every submitted job settles or the seeded kill lands. Nothing
// about the jobs' outcomes is asserted here — under injected faults a
// job may fail or be skipped — only that the server survives to be
// killed and its checkpoint writes happened through the chaos FS.
func runChaosPhase(ctx context.Context, cfg Config, rep *Report, tenants, workers, queueDepth int, variants [][]string, ev campaign.Eval, ckpt string, master *rng.XorShift64Star) error {
	fsys := iofault.NewChaos(nil, chaosOdds(master.Uint64()))
	killAt := 1 + rng.Intn(master, 12)
	killCh := make(chan struct{})
	var killOnce sync.Once
	fsys.OnCommit = func(_ string, n int) {
		if n >= killAt {
			killOnce.Do(func() { close(killCh) })
		}
	}
	srv, err := serve.New(serve.Config{
		Workers:        workers,
		QueueDepth:     queueDepth,
		RetryBudget:    64, // generous: write faults surface as retryable cell errors
		BaseEval:       ev,
		CheckpointPath: ckpt,
		FS:             fsys,
		DrainTimeout:   time.Second,
		Log:            cfg.Log,
	})
	if err != nil {
		return fmt.Errorf("servetest: chaos server: %w", err)
	}
	hs := httptest.NewServer(srv.Handler())

	var wg sync.WaitGroup
	clientCtx, stopClients := context.WithCancel(ctx)
	defer stopClients()
	var mu sync.Mutex
	for i := 0; i < tenants; i++ {
		names := variants[i%len(variants)]
		c := &client{base: hs.URL, tenant: fmt.Sprintf("tenant-%d", i), hc: hs.Client()}
		wg.Add(1)
		go func() {
			defer wg.Done()
			raw, _ := json.Marshal(serve.Request{Sections: names})
			st, code, _, err := c.submit(raw)
			if err != nil || code != http.StatusAccepted {
				return // server already dead or shedding; the phase only needs traffic
			}
			mu.Lock()
			rep.SubmittedChaos++
			mu.Unlock()
			c.awaitTerminal(clientCtx, st.ID)
		}()
	}

	clientsDone := make(chan struct{})
	go func() { wg.Wait(); close(clientsDone) }()
	select {
	case <-killCh:
		rep.Killed = true
	case <-clientsDone:
	case <-ctx.Done():
		stopClients()
		hs.Close()
		srv.Close()
		return ctx.Err()
	}
	// The kill: no drain, no flush — the server dies where it stands,
	// exactly like a SIGKILL'd process. Whatever reached the checkpoint
	// through the chaos FS is what the restart inherits.
	stopClients()
	srv.Close()
	hs.Close()
	wg.Wait()
	rep.Faults = fsys.Stats()
	logf(cfg.Log, "servetest: chaos phase: %d submitted, killAt=%d killed=%v, %d fault(s), %d commit(s)",
		rep.SubmittedChaos, killAt, rep.Killed, rep.Faults.Total(), rep.Faults.Commits)
	return nil
}

// runCleanPhase restarts on a clean filesystem over the surviving
// checkpoint and requires full convergence: every tenant's resubmitted
// campaigns finish and render byte-identically to golden, dedup hits
// land, the overflow burst is shed politely, and the drain terminates.
func runCleanPhase(ctx context.Context, cfg Config, rep *Report, tenants, workers, queueDepth int, variants [][]string, ev campaign.Eval, ckpt string, golden map[string][]byte) error {
	srv, err := serve.New(serve.Config{
		Workers:        workers,
		QueueDepth:     queueDepth,
		RetryBudget:    64,
		BaseEval:       ev,
		CheckpointPath: ckpt, // salvage of chaos-phase damage happens here
		DrainTimeout:   30 * time.Second,
		Log:            cfg.Log,
	})
	if err != nil {
		return fmt.Errorf("servetest: clean server: %w", err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		srv.Close()
	}()

	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := make(chan error, 2*tenants+2)
	allMatch := true
	for i := 0; i < tenants; i++ {
		names := variants[i%len(variants)]
		key := strings.Join(names, "+")
		c := &client{base: hs.URL, tenant: fmt.Sprintf("tenant-%d", i), hc: hs.Client()}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Twice: the second submission repeats a grid the shared cache
			// now holds in full, so it must be pure dedup — and still
			// byte-identical.
			for round := 0; round < 2; round++ {
				raw, _ := json.Marshal(serve.Request{Sections: names})
				st, code, retryAfter, err := c.submit(raw)
				for code == http.StatusTooManyRequests {
					// A full queue on the clean server is legal backpressure;
					// honor the Retry-After and resubmit.
					if retryAfter == "" {
						errs <- fmt.Errorf("servetest: %s: 429 without Retry-After", c.tenant)
						return
					}
					select {
					case <-ctx.Done():
						errs <- ctx.Err()
						return
					case <-time.After(20 * time.Millisecond):
					}
					st, code, retryAfter, err = c.submit(raw)
				}
				if err != nil || code != http.StatusAccepted {
					errs <- fmt.Errorf("servetest: %s round %d: submit HTTP %d err %v", c.tenant, round, code, err)
					return
				}
				mu.Lock()
				rep.SubmittedClean++
				mu.Unlock()
				final, err := c.awaitTerminal(ctx, st.ID)
				if err != nil {
					errs <- fmt.Errorf("servetest: %s round %d: %w", c.tenant, round, err)
					return
				}
				if final.State != serve.StateDone {
					errs <- fmt.Errorf("servetest: %s round %d: job %s on a clean filesystem: %s (%s)",
						c.tenant, round, st.ID, final.State, final.Error)
					return
				}
				text, err := c.report(st.ID)
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				rep.Compared++
				rep.DedupHits += final.DedupHits
				if !bytes.Equal(text, golden[key]) {
					allMatch = false
					errs <- fmt.Errorf("servetest: %s round %d: report for %s differs from golden (%d vs %d bytes)",
						c.tenant, round, key, len(text), len(golden[key]))
				}
				mu.Unlock()
			}
		}()
	}

	// Overflow probe: while the tenants above hold the shared pool busy,
	// one flood tenant bursts past its queue depth with deliberately
	// slow, uncached work (the windows/seeds overrides change every
	// fingerprint and multiply the simulated work, so the active job
	// outlives the whole burst) and must draw 429 + Retry-After — load
	// shedding, not queueing forever.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := &client{base: hs.URL, tenant: "flood", hc: hs.Client()}
		raw, _ := json.Marshal(serve.Request{Sections: []string{"table3"}, Windows: 8, Seeds: 4})
		sawRetryAfter := true
		rejected := 0
		for i := 0; i < queueDepth+6; i++ {
			_, code, retryAfter, err := c.submit(raw)
			if err != nil {
				errs <- fmt.Errorf("servetest: flood submit: %w", err)
				return
			}
			if code == http.StatusTooManyRequests {
				rejected++
				if retryAfter == "" {
					sawRetryAfter = false
				}
			}
		}
		mu.Lock()
		rep.Rejected429 += rejected
		rep.RetryAfterSeen = sawRetryAfter && rejected > 0
		mu.Unlock()
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	rep.Identical = allMatch && rep.Compared > 0

	// Graceful drain: admission must close, in-flight (there is none
	// left, but queued flood jobs may remain) must settle, and the call
	// must return promptly.
	drainCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		return fmt.Errorf("servetest: drain: %w", err)
	}
	logf(cfg.Log, "servetest: clean phase: %d submitted, %d compared, identical=%v, dedup=%d, 429s=%d",
		rep.SubmittedClean, rep.Compared, rep.Identical, rep.DedupHits, rep.Rejected429)
	return nil
}

// serveGoroutines counts goroutines currently executing serve job or
// drain machinery.
func serveGoroutines() int {
	buf := make([]byte, 1<<20)
	stacks := string(buf[:runtime.Stack(buf, true)])
	n := 0
	for _, g := range strings.Split(stacks, "\n\n") {
		if strings.Contains(g, "serve.(*Server).runJob") ||
			strings.Contains(g, "serve.(*Server).executeJob") ||
			strings.Contains(g, "serve.(*Server).Drain") {
			n++
		}
	}
	return n
}

// logf writes one narration line when a log sink is configured.
func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}

package servetest

import (
	"context"
	"testing"
)

// TestServingTortureByteIdentical is the acceptance test for the whole
// serving stack: four concurrent tenants with overlapping campaigns, a
// chaos filesystem under the shared cache, one hard kill/restart cycle,
// then full convergence — every report byte-identical to its serial
// golden run, dedup hits on the shared cache, overflow shed with 429 +
// Retry-After, a drain that terminates, zero leaked serve goroutines,
// and bounded heap.
func TestServingTortureByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("serving torture run in -short mode")
	}
	rep, err := Run(context.Background(), Config{
		Seed: 11,
		Dir:  t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Variants == 0 {
		t.Fatal("no golden variants computed")
	}
	if !rep.Identical || rep.Compared == 0 {
		t.Fatalf("served reports not byte-identical to serial golden runs (%d compared)", rep.Compared)
	}
	if rep.SubmittedClean != 2*4 {
		t.Errorf("clean-phase submissions = %d, want 8 (4 tenants x 2 rounds)", rep.SubmittedClean)
	}
	if rep.DedupHits == 0 {
		t.Error("overlapping campaigns produced zero shared-cache dedup hits")
	}
	if rep.Rejected429 == 0 {
		t.Error("overflow burst past the queue depth drew no 429")
	}
	if !rep.RetryAfterSeen {
		t.Error("a 429 rejection arrived without a Retry-After header")
	}
	if rep.LeakedGoroutines != 0 {
		t.Errorf("%d serve goroutine(s) survived the drain", rep.LeakedGoroutines)
	}
	// Bounded memory: the whole torture run — every tenant, both phases,
	// all reports — fits comfortably in a fixed budget.
	const heapBudget = 512 << 20
	if rep.HeapAllocBytes > heapBudget {
		t.Errorf("post-run heap %d bytes exceeds the %d budget", rep.HeapAllocBytes, heapBudget)
	}
	// The seeded kill must land mid-flight for the CI seed — a chaos
	// phase that finishes peacefully leaves the restart path untested.
	if !rep.Killed {
		t.Error("kill ordinal never fired; pick a seed whose kill lands mid-campaign")
	}
	if rep.Faults.Total() == 0 {
		t.Error("chaos phase injected no faults")
	}
}

package addr

import "testing"

// geometries spanning the shapes the simulator cares about: the original
// test shape, a flattened full-DIMM population (32 banks of 64K rows),
// and a dual-channel dual-rank server shape.
func pinGeometries() []Geometry {
	return []Geometry{
		{Channels: 1, Ranks: 1, Banks: 8, Rows: 1 << 12, Cols: 1 << 7, BusBytes: 64},
		{Channels: 1, Ranks: 1, Banks: 32, Rows: 1 << 16, Cols: 1 << 7, BusBytes: 64},
		{Channels: 2, Ranks: 2, Banks: 16, Rows: 1 << 14, Cols: 1 << 7, BusBytes: 64},
	}
}

// TestRowDecompositionAcrossGeometries pins that a physical row address
// decomposes back to exactly the (flat bank, row) it was built from, for
// every scheme, across geometries up to full-DIMM scale. This is the
// contract the sparse full-DIMM simulation leans on: workload generators
// think in (flat bank, row) and the mapping must be stable whatever the
// interleave.
func TestRowDecompositionAcrossGeometries(t *testing.T) {
	for _, g := range pinGeometries() {
		for _, s := range []Scheme{RowBankCol, BankInterleaved, PermutedBank} {
			m, err := NewMapper(g, s)
			if err != nil {
				t.Fatal(err)
			}
			tb := g.TotalBanks()
			for _, fb := range []int{0, 1, tb / 2, tb - 1} {
				for _, row := range []int{0, 1, g.Rows / 3, g.Rows - 1} {
					pa := m.RowAddress(fb, row)
					c := m.Decode(pa)
					if got := c.FlatBank(g); got != fb || c.Row != row || c.Col != 0 {
						t.Errorf("%v/%v: RowAddress(%d,%d) → bank %d row %d col %d",
							g, s, fb, row, got, c.Row, c.Col)
					}
					if back := m.Encode(c); back != pa {
						t.Errorf("%v/%v: Encode(Decode(%#x)) = %#x", g, s, pa, back)
					}
				}
			}
		}
	}
}

// TestDecodePinnedAddresses pins literal physical addresses for each
// scheme on a fixed geometry. The bit layout is part of the on-trace
// format (trace files store physical addresses), so a silent reordering
// of the decomposition must fail here even if it stays self-consistent.
func TestDecodePinnedAddresses(t *testing.T) {
	g := Geometry{Channels: 1, Ranks: 1, Banks: 8, Rows: 1 << 12, Cols: 1 << 7, BusBytes: 64}
	cases := []struct {
		scheme Scheme
		coord  Coord
		pa     uint64
	}{
		// row-bank-col: ((row<<3 | bank)<<7 | col) << 6
		{RowBankCol, Coord{Bank: 5, Row: 1000, Col: 3}, 65577152},
		// bank-interleaved: ((bank<<12 | row)<<7 | col) << 6
		{BankInterleaved, Coord{Bank: 5, Row: 1000, Col: 3}, 175964352},
		// permuted-bank: bank XORed with low row bits (1001&7 = 1, 5^1 = 4)
		{PermutedBank, Coord{Bank: 5, Row: 1001, Col: 3}, 65634496},
	}
	for _, tc := range cases {
		m, err := NewMapper(g, tc.scheme)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Encode(tc.coord); got != tc.pa {
			t.Errorf("%v: Encode(%+v) = %d, want %d", tc.scheme, tc.coord, got, tc.pa)
		}
		c := m.Decode(tc.pa)
		if c.Bank != tc.coord.Bank || c.Row != tc.coord.Row || c.Col != tc.coord.Col {
			t.Errorf("%v: Decode(%d) = %+v, want %+v", tc.scheme, tc.pa, c, tc.coord)
		}
	}
}

// Package addr maps physical byte addresses to DRAM coordinates
// (channel, rank, bank, row, column) and back.
//
// The mitigation techniques operate on (bank, row) pairs; the CPU/cache
// substrate produces physical addresses. This package is the bridge and
// supports the interleaving schemes a DDR4 controller would offer, so
// experiments can check that mitigation quality does not depend on a
// particular mapping.
package addr

import (
	"fmt"
	"math/bits"
)

// Scheme selects the bit order of the physical-address decomposition.
type Scheme int

const (
	// RowBankCol is the classic open-page mapping: low bits column,
	// middle bits bank (and rank/channel), high bits row. Consecutive
	// addresses stay in one row.
	RowBankCol Scheme = iota
	// BankInterleaved ("close-page"): low bits column, then row, then
	// bank, so consecutive rows map to the same bank. Used to stress
	// per-bank mitigation tables.
	BankInterleaved
	// PermutedBank XORs row bits into the bank index
	// (Zhang et al. style permutation) to spread row conflicts.
	PermutedBank
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case RowBankCol:
		return "row-bank-col"
	case BankInterleaved:
		return "bank-interleaved"
	case PermutedBank:
		return "permuted-bank"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Geometry describes the DRAM organization. All counts must be powers of
// two; Validate reports violations.
type Geometry struct {
	Channels int // number of memory channels
	Ranks    int // ranks per channel
	Banks    int // banks per rank
	Rows     int // rows per bank
	Cols     int // column addresses per row
	BusBytes int // bytes per column access (bus width * burst), e.g. 64
}

// Validate checks that every dimension is a positive power of two.
func (g Geometry) Validate() error {
	for _, d := range []struct {
		name string
		v    int
	}{
		{"Channels", g.Channels}, {"Ranks", g.Ranks}, {"Banks", g.Banks},
		{"Rows", g.Rows}, {"Cols", g.Cols}, {"BusBytes", g.BusBytes},
	} {
		if d.v <= 0 || d.v&(d.v-1) != 0 {
			return fmt.Errorf("addr: %s = %d is not a positive power of two", d.name, d.v)
		}
	}
	return nil
}

// Capacity returns the total byte capacity described by the geometry.
func (g Geometry) Capacity() uint64 {
	return uint64(g.Channels) * uint64(g.Ranks) * uint64(g.Banks) *
		uint64(g.Rows) * uint64(g.Cols) * uint64(g.BusBytes)
}

// TotalBanks returns channels*ranks*banks, the number of independently
// attackable banks.
func (g Geometry) TotalBanks() int { return g.Channels * g.Ranks * g.Banks }

// Coord is a fully decoded DRAM coordinate.
type Coord struct {
	Channel int
	Rank    int
	Bank    int
	Row     int
	Col     int
}

// FlatBank returns a single index in [0, TotalBanks) identifying the bank
// across channels and ranks. Mitigation state is instantiated per flat bank.
func (c Coord) FlatBank(g Geometry) int {
	return (c.Channel*g.Ranks+c.Rank)*g.Banks + c.Bank
}

// Mapper decodes physical addresses for a fixed geometry and scheme.
type Mapper struct {
	g      Geometry
	scheme Scheme

	colBits, bankBits, rankBits, chBits, rowBits, busBits uint
}

// NewMapper builds a Mapper. It returns an error if the geometry is
// invalid.
func NewMapper(g Geometry, scheme Scheme) (*Mapper, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Mapper{
		g:        g,
		scheme:   scheme,
		busBits:  log2(g.BusBytes),
		colBits:  log2(g.Cols),
		bankBits: log2(g.Banks),
		rankBits: log2(g.Ranks),
		chBits:   log2(g.Channels),
		rowBits:  log2(g.Rows),
	}, nil
}

func log2(v int) uint { return uint(bits.TrailingZeros64(uint64(v))) }

// Geometry returns the mapper's geometry.
func (m *Mapper) Geometry() Geometry { return m.g }

// Scheme returns the mapper's interleaving scheme.
func (m *Mapper) Scheme() Scheme { return m.scheme }

// Decode maps a physical byte address to a DRAM coordinate. Addresses
// beyond the capacity wrap (the top bits are ignored), matching what a
// hardware decoder does.
func (m *Mapper) Decode(pa uint64) Coord {
	a := pa >> m.busBits
	take := func(bits uint) int {
		v := int(a & ((1 << bits) - 1))
		a >>= bits
		return v
	}
	var c Coord
	switch m.scheme {
	case RowBankCol:
		c.Col = take(m.colBits)
		c.Channel = take(m.chBits)
		c.Bank = take(m.bankBits)
		c.Rank = take(m.rankBits)
		c.Row = take(m.rowBits)
	case BankInterleaved:
		c.Col = take(m.colBits)
		c.Channel = take(m.chBits)
		c.Row = take(m.rowBits)
		c.Rank = take(m.rankBits)
		c.Bank = take(m.bankBits)
	case PermutedBank:
		c.Col = take(m.colBits)
		c.Channel = take(m.chBits)
		c.Bank = take(m.bankBits)
		c.Rank = take(m.rankBits)
		c.Row = take(m.rowBits)
		// XOR the low row bits into the bank index. The inverse mapping
		// applies the same XOR, so Encode(Decode(pa)) == pa still holds.
		c.Bank ^= c.Row & (m.g.Banks - 1)
	default:
		panic(fmt.Sprintf("addr: unknown scheme %v", m.scheme))
	}
	return c
}

// Encode maps a DRAM coordinate back to the physical byte address of its
// first byte. It is the exact inverse of Decode for in-range coordinates.
func (m *Mapper) Encode(c Coord) uint64 {
	var a uint64
	put := func(v int, bits uint) {
		a = a<<bits | uint64(v)&((1<<bits)-1)
	}
	switch m.scheme {
	case RowBankCol:
		put(c.Row, m.rowBits)
		put(c.Rank, m.rankBits)
		put(c.Bank, m.bankBits)
		put(c.Channel, m.chBits)
		put(c.Col, m.colBits)
	case BankInterleaved:
		put(c.Bank, m.bankBits)
		put(c.Rank, m.rankBits)
		put(c.Row, m.rowBits)
		put(c.Channel, m.chBits)
		put(c.Col, m.colBits)
	case PermutedBank:
		bank := c.Bank ^ (c.Row & (m.g.Banks - 1))
		put(c.Row, m.rowBits)
		put(c.Rank, m.rankBits)
		put(bank, m.bankBits)
		put(c.Channel, m.chBits)
		put(c.Col, m.colBits)
	default:
		panic(fmt.Sprintf("addr: unknown scheme %v", m.scheme))
	}
	return a << m.busBits
}

// RowAddress returns the physical byte address of (flat bank, row, col 0),
// convenient for workload generators that think in rows.
func (m *Mapper) RowAddress(flatBank, row int) uint64 {
	tb := m.g.TotalBanks()
	fb := ((flatBank % tb) + tb) % tb
	bank := fb % m.g.Banks
	rank := (fb / m.g.Banks) % m.g.Ranks
	ch := fb / (m.g.Banks * m.g.Ranks)
	return m.Encode(Coord{Channel: ch, Rank: rank, Bank: bank, Row: row & (m.g.Rows - 1)})
}

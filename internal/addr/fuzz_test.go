package addr

import "testing"

// FuzzRoundTrip checks Decode/Encode inversion for arbitrary addresses
// and scheme/geometry combinations.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(0))
	f.Add(uint64(0xdeadbeef), uint8(1))
	f.Add(uint64(1)<<40, uint8(2))
	f.Fuzz(func(t *testing.T, pa uint64, schemeRaw uint8) {
		g := Geometry{Channels: 2, Ranks: 2, Banks: 8, Rows: 1 << 12, Cols: 1 << 7, BusBytes: 64}
		scheme := Scheme(int(schemeRaw) % 3)
		m, err := NewMapper(g, scheme)
		if err != nil {
			t.Fatal(err)
		}
		in := (pa % g.Capacity()) &^ uint64(g.BusBytes-1)
		c := m.Decode(in)
		if out := m.Encode(c); out != in {
			t.Fatalf("scheme %v: %x -> %+v -> %x", scheme, in, c, out)
		}
	})
}

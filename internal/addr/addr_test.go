package addr

import (
	"testing"
	"testing/quick"
)

func testGeometry() Geometry {
	return Geometry{Channels: 2, Ranks: 2, Banks: 8, Rows: 1 << 12, Cols: 1 << 7, BusBytes: 64}
}

func TestGeometryValidate(t *testing.T) {
	if err := testGeometry().Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := testGeometry()
	bad.Rows = 3000
	if bad.Validate() == nil {
		t.Fatal("non-power-of-two rows accepted")
	}
	bad = testGeometry()
	bad.Banks = 0
	if bad.Validate() == nil {
		t.Fatal("zero banks accepted")
	}
}

func TestGeometryCapacity(t *testing.T) {
	g := testGeometry()
	want := uint64(2*2*8) * uint64(1<<12) * uint64(1<<7) * 64
	if g.Capacity() != want {
		t.Fatalf("capacity = %d, want %d", g.Capacity(), want)
	}
	if g.TotalBanks() != 32 {
		t.Fatalf("total banks = %d, want 32", g.TotalBanks())
	}
}

func TestRoundTripAllSchemes(t *testing.T) {
	g := testGeometry()
	for _, scheme := range []Scheme{RowBankCol, BankInterleaved, PermutedBank} {
		m, err := NewMapper(g, scheme)
		if err != nil {
			t.Fatal(err)
		}
		f := func(raw uint64) bool {
			pa := (raw % g.Capacity()) &^ uint64(g.BusBytes-1)
			c := m.Decode(pa)
			return m.Encode(c) == pa
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("scheme %v: %v", scheme, err)
		}
	}
}

func TestDecodeInRange(t *testing.T) {
	g := testGeometry()
	for _, scheme := range []Scheme{RowBankCol, BankInterleaved, PermutedBank} {
		m, _ := NewMapper(g, scheme)
		f := func(raw uint64) bool {
			c := m.Decode(raw % g.Capacity())
			return c.Channel >= 0 && c.Channel < g.Channels &&
				c.Rank >= 0 && c.Rank < g.Ranks &&
				c.Bank >= 0 && c.Bank < g.Banks &&
				c.Row >= 0 && c.Row < g.Rows &&
				c.Col >= 0 && c.Col < g.Cols
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("scheme %v: %v", scheme, err)
		}
	}
}

func TestConsecutiveAddressesStayInRow(t *testing.T) {
	g := testGeometry()
	m, _ := NewMapper(g, RowBankCol)
	base := m.Decode(0)
	for off := uint64(64); off < uint64(g.Cols*g.BusBytes); off += 64 {
		c := m.Decode(off)
		if c.Row != base.Row || c.Bank != base.Bank {
			t.Fatalf("offset %d left the row: %+v vs %+v", off, c, base)
		}
	}
}

func TestBankInterleavedConsecutiveRowsSameBank(t *testing.T) {
	g := testGeometry()
	m, _ := NewMapper(g, BankInterleaved)
	// With bank bits above row bits, incrementing the row index while
	// keeping everything else fixed must not change the bank.
	c0 := Coord{Row: 10}
	c1 := Coord{Row: 11}
	d0 := m.Decode(m.Encode(c0))
	d1 := m.Decode(m.Encode(c1))
	if d0.Bank != d1.Bank {
		t.Fatalf("adjacent rows in different banks: %d vs %d", d0.Bank, d1.Bank)
	}
	if d1.Row != 11 || d0.Row != 10 {
		t.Fatalf("rows corrupted: %d, %d", d0.Row, d1.Row)
	}
}

func TestPermutedBankSpreadsRows(t *testing.T) {
	g := testGeometry()
	m, _ := NewMapper(g, PermutedBank)
	// Physical addresses with an identical raw bank field but consecutive
	// rows must decode to different banks (the row bits are XORed in).
	// Row bits sit above bus+col+channel+bank+rank bits.
	rowShift := uint(6 + 7 + 1 + 3 + 1)
	banks := map[int]bool{}
	for row := 0; row < g.Banks; row++ {
		banks[m.Decode(uint64(row)<<rowShift).Bank] = true
	}
	if len(banks) < 2 {
		t.Fatal("permutation did not spread banks")
	}
}

func TestFlatBankBijective(t *testing.T) {
	g := testGeometry()
	seen := map[int]bool{}
	for ch := 0; ch < g.Channels; ch++ {
		for rk := 0; rk < g.Ranks; rk++ {
			for b := 0; b < g.Banks; b++ {
				fb := Coord{Channel: ch, Rank: rk, Bank: b}.FlatBank(g)
				if fb < 0 || fb >= g.TotalBanks() {
					t.Fatalf("flat bank %d out of range", fb)
				}
				if seen[fb] {
					t.Fatalf("flat bank %d duplicated", fb)
				}
				seen[fb] = true
			}
		}
	}
}

func TestRowAddressRoundTrip(t *testing.T) {
	g := testGeometry()
	for _, scheme := range []Scheme{RowBankCol, BankInterleaved, PermutedBank} {
		m, _ := NewMapper(g, scheme)
		for fb := 0; fb < g.TotalBanks(); fb++ {
			for _, row := range []int{0, 1, 17, g.Rows - 1} {
				pa := m.RowAddress(fb, row)
				c := m.Decode(pa)
				if c.Row != row {
					t.Fatalf("scheme %v fb %d: row %d decoded as %d", scheme, fb, row, c.Row)
				}
				if got := c.FlatBank(g); got != fb {
					t.Fatalf("scheme %v: flat bank %d decoded as %d", scheme, fb, got)
				}
				if c.Col != 0 {
					t.Fatalf("RowAddress col = %d, want 0", c.Col)
				}
			}
		}
	}
}

func TestNewMapperRejectsBadGeometry(t *testing.T) {
	bad := testGeometry()
	bad.Cols = 100
	if _, err := NewMapper(bad, RowBankCol); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

func TestSchemeString(t *testing.T) {
	for _, tc := range []struct {
		s    Scheme
		want string
	}{
		{RowBankCol, "row-bank-col"},
		{BankInterleaved, "bank-interleaved"},
		{PermutedBank, "permuted-bank"},
		{Scheme(99), "Scheme(99)"},
	} {
		if tc.s.String() != tc.want {
			t.Errorf("String() = %q, want %q", tc.s.String(), tc.want)
		}
	}
}

package sim

import (
	"testing"

	"tivapromi/internal/core"
)

func TestAblateHistorySize(t *testing.T) {
	cfg := fastConfig()
	pts, err := AblateHistorySize(cfg, core.LoLiPRoMi, []int{4, 32}, Seeds(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Storage grows linearly with entries (at paper scale: 30 bits each).
	if pts[0].TableBytes != 15 || pts[1].TableBytes != 120 {
		t.Fatalf("storage = %d/%d, want 15/120", pts[0].TableBytes, pts[1].TableBytes)
	}
	for _, p := range pts {
		if p.Flips != 0 {
			t.Errorf("%s: flips under mitigation", p.Label)
		}
		if p.OverheadMean <= 0 {
			t.Errorf("%s: no overhead measured", p.Label)
		}
	}
}

func TestAblateCounterSize(t *testing.T) {
	cfg := fastConfig()
	pts, err := AblateCounterSize(cfg, []int{16, 64}, Seeds(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatal("points missing")
	}
	if pts[0].TableBytes >= pts[1].TableBytes {
		t.Fatal("storage not growing with counter entries")
	}
}

func TestAblatePbaseMonotone(t *testing.T) {
	cfg := fastConfig()
	pts, err := AblatePbase(cfg, core.LoLiPRoMi, []int{-1, 0, 1}, Seeds(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Higher Pbase (negative delta) means more overhead and faster
	// flooding reaction; the sweep must be monotone in both.
	for i := 1; i < len(pts); i++ {
		if pts[i].OverheadMean >= pts[i-1].OverheadMean {
			t.Errorf("overhead not decreasing with smaller Pbase: %+v", pts)
		}
		if pts[i].FloodMedian <= pts[i-1].FloodMedian {
			t.Errorf("flood reaction not slowing with smaller Pbase: %+v", pts)
		}
	}
}

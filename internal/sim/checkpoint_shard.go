package sim

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"tivapromi/internal/iofault"
	"tivapromi/internal/obs"
)

// Sharded checkpoints. A campaign at population scale carries far more
// state than a single JSONL file can rewrite per flush: with one
// monolithic file, every completed seed re-serializes every entry ever
// recorded. Sharded mode turns the checkpoint path into a directory of
// shard files, each a complete v2 checkpoint (header, checksummed
// entries, whole-file digest) holding the entries whose cell-group key
// hashes to it, and a flush rewrites only the shards that changed since
// the last one. Kill/resume semantics are unchanged — each shard is
// individually atomic (temp + fsync + rename), individually salvageable,
// and marshaled in sorted-key order, so identical state produces
// identical bytes shard by shard no matter where a kill landed.
//
// Entries shard by cell group, not by entry: a sweep's seeds all hash
// with the sweep fingerprint, so one completed seed dirties exactly one
// shard, and the whole sweep resurrects from one file. The shard count
// is fixed at directory creation; reopening with a different count
// adopts the on-disk count (the header of shard 0 records it), so a
// misconfigured resume can never scatter entries across two layouts.

// shardFile names the i-th shard file inside the checkpoint directory.
func shardFile(i int) string { return fmt.Sprintf("shard-%04d.jsonl", i) }

// shardOf assigns a cell-group key to a shard (FNV-1a, the stdlib's
// stable non-cryptographic hash — the assignment is part of the on-disk
// layout and must never change between versions).
func shardOf(key string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(shards))
}

// LoadShardedCheckpoint opens or creates a sharded checkpoint rooted at
// dir through the real filesystem. shards is the shard count for a fresh
// directory; an existing directory's recorded count wins.
func LoadShardedCheckpoint(dir string, shards int) (*Checkpoint, error) {
	return LoadShardedCheckpointFS(dir, shards, nil)
}

// LoadShardedCheckpointFS is LoadShardedCheckpoint with an explicit
// filesystem seam (nil means the passthrough iofault.OS). Damage is
// handled per shard: each shard file salvages and quarantines
// independently, and the aggregated LoadReport counts every salvaged and
// dropped entry across shards.
func LoadShardedCheckpointFS(dir string, shards int, fsys iofault.FS) (*Checkpoint, error) {
	if dir == "" {
		return nil, fmt.Errorf("sim: empty checkpoint path")
	}
	if shards < 1 {
		return nil, fmt.Errorf("sim: shard count %d, must be at least 1", shards)
	}
	if shards > maxCheckpointShards {
		return nil, fmt.Errorf("sim: shard count %d exceeds the %d cap", shards, maxCheckpointShards)
	}
	if fsys == nil {
		fsys = iofault.OS{}
	}
	c := &Checkpoint{path: dir, fs: fsys, FlushEvery: 1, data: newCheckpointState()}
	// The on-disk layout wins over the configured count: shard 0's header
	// records how many shards the directory was created with.
	if raw, err := fsys.ReadFile(filepath.Join(dir, shardFile(0))); err == nil {
		if n := headerShards(raw); n > 0 && n <= maxCheckpointShards {
			shards = n
		}
	} else if !isNotExist(err) {
		return nil, fmt.Errorf("sim: read checkpoint shard: %w", err)
	}
	c.shardN = shards
	c.dirtyShards = make([]bool, shards)

	var rep LoadReport
	var quarantined []string
	for i := 0; i < shards; i++ {
		p := filepath.Join(dir, shardFile(i))
		raw, err := fsys.ReadFile(p)
		if err != nil {
			if isNotExist(err) {
				continue
			}
			return nil, fmt.Errorf("sim: read checkpoint shard: %w", err)
		}
		srep := c.load(raw)
		rep.Dropped += srep.Dropped
		rep.Migrated = rep.Migrated || srep.Migrated
		if srep.Err != nil {
			if rep.Err == nil {
				rep.Err = fmt.Errorf("shard %d: %w", i, srep.Err)
			}
			q := fmt.Sprintf("%s.corrupt-%d", p, time.Now().UnixNano())
			if renameErr := fsys.Rename(p, q); renameErr == nil {
				quarantined = append(quarantined, q)
				obs.CheckpointQuarantines.Inc()
				PruneQuarantine(fsys, p, QuarantineKeep)
			}
			obs.CheckpointSalvages.Inc()
			obs.Emit("checkpoint-quarantine",
				"path", p,
				"shard", strconv.Itoa(i),
				"dropped", strconv.Itoa(srep.Dropped),
				"err", srep.Err.Error())
			obs.Instant("checkpoint-quarantine", "checkpoint",
				"path", p, "shard", strconv.Itoa(i))
			// Rewrite the salvaged remainder of this shard immediately so a
			// crash before the next organic flush cannot lose it again.
			c.dirtyShards[i] = true
		} else if srep.Migrated {
			c.dirtyShards[i] = true
		}
	}
	rep.Entries = c.data.entries()
	rep.Quarantined = strings.Join(quarantined, ", ")
	c.report = rep

	dirty := false
	for _, d := range c.dirtyShards {
		dirty = dirty || d
	}
	if dirty {
		c.mu.Lock()
		err := c.flushLocked()
		c.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// maxCheckpointShards bounds the shard fan-out (and with it the files a
// load opens). 4096 shards at the multi-GB scale the sharding targets
// keeps individual shard files around a megabyte.
const maxCheckpointShards = 4096

// headerShards extracts the shard count a v2 header line records (0 when
// the bytes are not a parseable sharded header — damage is dealt with by
// the per-shard load, not here).
func headerShards(raw []byte) int {
	hdr, _, ok := splitLine(raw)
	if !ok {
		return 0
	}
	var h ckptLine
	if json.Unmarshal(hdr, &h) != nil || h.Format != checkpointFormat {
		return 0
	}
	return h.Shards
}

// Sharded reports whether the checkpoint writes the sharded directory
// layout (false for a nil checkpoint or the single-file format).
func (c *Checkpoint) Sharded() bool { return c != nil && c.shardN > 0 }

// ShardCount returns the shard count (0 in single-file mode).
func (c *Checkpoint) ShardCount() int {
	if c == nil {
		return 0
	}
	return c.shardN
}

// markDirty records that key's shard changed. Requires c.mu held; a
// no-op in single-file mode (c.dirty alone drives those flushes).
func (c *Checkpoint) markDirty(key string) {
	if c.shardN > 0 {
		c.dirtyShards[shardOf(key, c.shardN)] = true
	}
}

// flushShardsLocked writes every dirty shard atomically and clears its
// flag on success. Requires c.mu held.
func (c *Checkpoint) flushShardsLocked() error {
	fsys := c.fs
	if fsys == nil {
		fsys = iofault.OS{}
	}
	if err := fsys.MkdirAll(c.path); err != nil {
		return fmt.Errorf("sim: checkpoint dir: %w", err)
	}
	for i := 0; i < c.shardN; i++ {
		if !c.dirtyShards[i] {
			continue
		}
		raw, err := c.marshalShardLocked(i)
		if err != nil {
			return fmt.Errorf("sim: marshal checkpoint shard %d: %w", i, err)
		}
		span := obs.StartSpan("checkpoint-shard-flush", "checkpoint",
			"shard", strconv.Itoa(i))
		if err := atomicWrite(fsys, c.path, filepath.Join(c.path, shardFile(i)), raw); err != nil {
			span.End("outcome", "err")
			return err
		}
		span.End("outcome", "ok")
		obs.CheckpointFlushes.Inc()
		c.dirtyShards[i] = false
	}
	c.dirty = 0
	return nil
}

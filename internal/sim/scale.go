package sim

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"tivapromi/internal/dram"
)

// Scale smoke: prove that a full-DIMM geometry simulates with heap
// proportional to the rows the workload touches, not the row population.
// The run is driven through the normal prepareRun/runBlocks pipeline, but
// the environment is kept reachable across a forced GC so the live-heap
// delta actually reflects the retained simulation state, and the per-lane
// device accounting (StateBytes, TouchedRows) is read before teardown.

// ScaleSmokeReport carries the measurements of one full-geometry smoke
// run, ready to serialize into the campaign benchmark report.
type ScaleSmokeReport struct {
	// Geometry is ranks x bank-groups x banks x rows-per-bank.
	Geometry   string `json:"geometry"`
	TotalBanks int    `json:"total_banks"`
	TotalRows  int    `json:"total_rows"`
	// Sparse records which state representation the run resolved to.
	Sparse bool `json:"sparse"`

	// TouchedRows is the row population backed by allocated pages across
	// all lanes; StateBytes is their accounted heap footprint.
	TouchedRows int `json:"touched_rows"`
	StateBytes  int `json:"state_bytes"`
	// DenseBytes is what the dense layout would have allocated for the
	// same geometry — the baseline both gates compare against.
	DenseBytes int `json:"dense_state_bytes"`
	// HeapGrowth is the post-GC live-heap delta across the run, measured
	// with the simulation state still reachable.
	HeapGrowth uint64 `json:"heap_growth_bytes"`

	Flips     int     `json:"flips"`
	TotalActs uint64  `json:"total_acts"`
	ExtraActs uint64  `json:"extra_acts"`
	Seconds   float64 `json:"seconds"`
}

// GeometryString formats p's geometry as ranks x groups x banks x rows.
func GeometryString(p dram.Params) string {
	ranks, groups := p.Ranks, p.BankGroups
	if ranks < 1 {
		ranks = 1
	}
	if groups < 1 {
		groups = 1
	}
	return fmt.Sprintf("%dx%dx%dx%d", ranks, groups, p.Banks, p.RowsPerBank)
}

// ScaleSmokeConfig returns the attacker-dominated workload the smoke run
// uses on params p: the entire access stream hammers two banks, so a
// sparse device's touched pages stay far below the population. (A mixed
// workload's uniform component would spray one page per background
// access and defeat the point of the measurement.)
func ScaleSmokeConfig(p dram.Params) Config {
	banks := p.TotalBanks()
	attack := []int{0}
	if banks > 1 {
		// Two banks in different bank groups when the geometry has them.
		other := banks / 2
		attack = append(attack, other)
	}
	return Config{
		Params:        p,
		Policy:        PolicyNeighbors,
		Windows:       1,
		AttackBanks:   attack,
		MinAggressors: 1,
		MaxAggressors: 8,
		AttackShare:   1.0,
		Seed:          1,
	}
}

// ScaleSmoke runs cfg once and measures the memory the simulation
// actually retained. The heap delta is taken across a forced GC with the
// run environment still live, so it bounds the real footprint of the
// per-lane devices, controllers, and stream rather than transient
// garbage.
func ScaleSmoke(ctx context.Context, cfg Config, technique string) (ScaleSmokeReport, error) {
	rep := ScaleSmokeReport{
		Geometry:   GeometryString(cfg.Params),
		TotalBanks: cfg.Params.TotalBanks(),
		TotalRows:  cfg.Params.TotalRows(),
		Sparse:     cfg.Params.Sparse(),
		DenseBytes: dram.DenseStateBytes(cfg.Params),
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	start := time.Now()
	env, err := prepareRun(cfg, technique)
	if err != nil {
		return rep, err
	}
	if err := env.runBlocks(ctx, 0); err != nil {
		return rep, err
	}
	res := env.collect()
	rep.Seconds = time.Since(start).Seconds()

	// Live-heap high water: GC first so the delta excludes dead block
	// buffers, then read with env still reachable below.
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	for _, l := range env.lanes {
		rep.TouchedRows += l.Device().TouchedRows()
		rep.StateBytes += l.Device().StateBytes()
	}
	runtime.KeepAlive(env)

	if after.HeapAlloc > before.HeapAlloc {
		rep.HeapGrowth = after.HeapAlloc - before.HeapAlloc
	}
	rep.Flips = res.Flips
	rep.TotalActs = res.TotalActs
	rep.ExtraActs = res.ExtraActs
	return rep, nil
}

// Check asserts the population-scale memory bounds the scale gate
// enforces: the sparse representation must be at least 8x smaller than
// the dense layout it replaces, and the whole simulation's live-heap
// growth must stay under half the dense per-row state alone. A dense run
// trivially violates the first bound, so Check also guards against a
// geometry that silently resolved dense.
func (r ScaleSmokeReport) Check() error {
	if !r.Sparse {
		return fmt.Errorf("sim: scale smoke ran dense (%s resolves %d rows; sparse needs >= %d)",
			r.Geometry, r.TotalRows, 1<<21)
	}
	if r.StateBytes*8 > r.DenseBytes {
		return fmt.Errorf("sim: sparse state %d B exceeds 1/8 of dense %d B (touched %d of %d rows)",
			r.StateBytes, r.DenseBytes, r.TouchedRows, r.TotalRows)
	}
	if r.HeapGrowth > uint64(r.DenseBytes)/2 {
		return fmt.Errorf("sim: live heap grew %d B, over half the dense footprint %d B",
			r.HeapGrowth, r.DenseBytes)
	}
	return nil
}

// Package sim is the experiment harness: it wires workload, attacker,
// memory controller, DRAM device and a mitigation together and measures
// the quantities the paper reports — activation overhead, false-positive
// rate, bit flips, table storage — plus the flooding and vulnerability
// probes of Section IV.
package sim

import (
	"context"
	"fmt"

	"tivapromi/internal/bitset"
	"tivapromi/internal/dram"
	"tivapromi/internal/faults"
	"tivapromi/internal/memctrl"
	"tivapromi/internal/mitigation"
	_ "tivapromi/internal/mitigation/all" // register all techniques
	"tivapromi/internal/rng"
	"tivapromi/internal/stats"
	"tivapromi/internal/workload"
)

// PolicyKind selects the device refresh-address policy (Section IV
// evaluates all four).
type PolicyKind int

const (
	// PolicyNeighbors refreshes contiguous address blocks (the paper's
	// assumption).
	PolicyNeighbors PolicyKind = iota
	// PolicyRemapped is neighbors with a few spare-row replacements.
	PolicyRemapped
	// PolicyRandom refreshes a fresh random permutation every window.
	PolicyRandom
	// PolicyMaskedCounter XORs the interval counter with a mask.
	PolicyMaskedCounter
)

// String implements fmt.Stringer.
func (p PolicyKind) String() string {
	switch p {
	case PolicyNeighbors:
		return "neighbors"
	case PolicyRemapped:
		return "neighbors-remapped"
	case PolicyRandom:
		return "random"
	case PolicyMaskedCounter:
		return "counter+mask"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(p))
	}
}

// Policies lists all refresh policies for sweep experiments.
func Policies() []PolicyKind {
	return []PolicyKind{PolicyNeighbors, PolicyRemapped, PolicyRandom, PolicyMaskedCounter}
}

// Config describes one simulation run.
type Config struct {
	// Params is the device configuration.
	Params dram.Params
	// Policy selects the refresh-address policy.
	Policy PolicyKind
	// Windows is the number of refresh windows to simulate.
	Windows int
	// AttackBanks are the banks under attack (empty disables the
	// attacker).
	AttackBanks []int
	// MinAggressors/MaxAggressors set the attacker's ramp (1→20 in the
	// paper).
	MinAggressors int
	MaxAggressors int
	// AttackShare is the attacker's fraction of the memory access stream
	// (its cache-flushing core competes with three workload cores).
	AttackShare float64
	// RemapSwaps > 0 installs that many random logical→physical spare-row
	// swaps on the device, the scenario that defeats victim-addressed
	// refreshes.
	RemapSwaps int
	// Seed drives all randomness (workload, attacker, mitigation, policy).
	Seed uint64
	// Factory, when non-nil, overrides the registry lookup — used by
	// ablation studies to run techniques with non-default table sizes or
	// probabilities. It is excluded from checkpoint fingerprints; set
	// FactoryLabel when a factory-driven sweep should be resumable.
	Factory mitigation.Factory `json:"-"`
	// FactoryLabel names a custom Factory for checkpoint fingerprinting.
	// Configs with a Factory but no label are never served from a
	// checkpoint (the runner cannot know two closures are equal).
	FactoryLabel string
	// Fault optionally injects hardware faults into the run (mitigation
	// SRAM upsets, RNG degradation, command-path losses, weak cells).
	// The zero value injects nothing.
	Fault faults.Plan
}

// DefaultConfig returns the standard mixed-load-plus-attacker setup on the
// scaled device.
func DefaultConfig() Config {
	return Config{
		Params:        dram.ScaledParams(),
		Policy:        PolicyNeighbors,
		Windows:       4,
		AttackBanks:   []int{1, 3},
		MinAggressors: 1,
		MaxAggressors: 20,
		AttackShare:   0.65,
		Seed:          1,
	}
}

// Validate reports configuration problems. Harness callers get errors,
// not crashes: every path Run takes (policy selection, fault plan, device
// geometry) is validated here, so invariant panics stay confined to leaf
// packages.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	switch {
	case c.Windows <= 0:
		return fmt.Errorf("sim: Windows = %d", c.Windows)
	case c.AttackShare < 0 || c.AttackShare > 1:
		return fmt.Errorf("sim: AttackShare = %v out of [0,1]", c.AttackShare)
	case c.Policy < PolicyNeighbors || c.Policy > PolicyMaskedCounter:
		return fmt.Errorf("sim: unknown policy %v", c.Policy)
	}
	for _, b := range c.AttackBanks {
		if b < 0 || b >= c.Params.Banks {
			return fmt.Errorf("sim: attack bank %d out of range", b)
		}
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	return nil
}

// Target returns the mitigation.Target for this configuration.
func (c Config) Target() mitigation.Target {
	return mitigation.Target{
		Banks:         c.Params.Banks,
		RowsPerBank:   c.Params.RowsPerBank,
		RefInt:        c.Params.RefInt,
		FlipThreshold: c.Params.FlipThreshold,
	}
}

// policy builds the device refresh policy; unknown kinds are an error
// (Validate rejects them before Run gets here, so harness callers never
// see a panic for a bad policy value).
func (c Config) policy(seed uint64) (dram.RefreshPolicy, error) {
	switch c.Policy {
	case PolicyNeighbors:
		return dram.NewNeighborPolicy(c.Params), nil
	case PolicyRemapped:
		return dram.NewRemappedPolicy(c.Params, 16, seed), nil
	case PolicyRandom:
		return dram.NewRandomPolicy(c.Params, seed), nil
	case PolicyMaskedCounter:
		return dram.NewMaskedCounterPolicy(c.Params, 0x155), nil
	default:
		return nil, fmt.Errorf("sim: unknown policy %v", c.Policy)
	}
}

// Result is the outcome of one run.
type Result struct {
	Technique string
	Policy    string
	Seed      uint64

	TotalActs    uint64 // normal activations (workload + attacker)
	AttackerActs uint64 // activations caused by attacker accesses
	// ExtraActs counts mitigation-issued activation commands (act_n,
	// one-sided act_n, or a direct victim refresh). This matches the
	// paper's metric: an act_n occupies one maintenance-command slot in
	// the controller schedule even though the DRAM restores both
	// neighbors inside it (a consistency check against the paper's PARA
	// overhead of 0.1% at p = 9.8e-4 confirms commands, not individual
	// row activations, are counted).
	ExtraActs uint64
	FalseActs uint64 // extra commands not protecting a real victim

	OverheadPct float64 // 100 * ExtraActs / TotalActs
	FPRPct      float64 // 100 * FalseActs / TotalActs

	Flips      int // successful Row-Hammer bit flips (must be 0 mitigated)
	TableBytes int // per-bank mitigation storage

	AvgActsPerInterval float64
	MaxActsPerInterval uint64

	// Fault observability (zero without an active fault plan).
	InjectedFaults uint64 // applied mitigation-state upsets
	DroppedCmds    uint64 // mitigation commands lost on the command path
	DelayedCmds    uint64 // mitigation commands served one interval late
}

// Run executes one simulation of `technique` (a registry name, or "" for
// an unprotected system).
func Run(cfg Config, technique string) (Result, error) {
	return RunCtx(context.Background(), cfg, technique)
}

// RunCtx is Run with cooperative cancellation: the simulation polls ctx
// between batches of accesses and returns ctx.Err() when cut short, so a
// seed sweep can be abandoned mid-run without leaking work. Accesses are
// dispatched in batches of memctrl.DefaultBatchSize; see RunCtxBatch.
func RunCtx(ctx context.Context, cfg Config, technique string) (Result, error) {
	return RunCtxBatch(ctx, cfg, technique, 0)
}

// RunCtxBatch is RunCtx with an explicit access-batch size (batch <= 0
// selects memctrl.DefaultBatchSize). The serviced access stream, every RNG
// draw and every mitigation command are identical at any batch size — the
// batch only amortizes per-access dispatch overhead — so the Result is
// invariant in batch; TestBatchSizesMatchReference pins this against
// RunReferenceCtx. The batch size is deliberately a parameter, not a
// Config field: checkpoint fingerprints hash the Config, and a purely
// mechanical dispatch knob must not invalidate resumable campaign state.
func RunCtxBatch(ctx context.Context, cfg Config, technique string, batch int) (Result, error) {
	env, err := prepareRun(cfg, technique)
	if err != nil {
		return Result{}, err
	}
	if env.weaken != nil {
		env.ctl.SetAccessTick(env.weaken)
	}
	var src memctrl.AccessSource = env.st
	if hb := HeartbeatFrom(ctx); hb != nil {
		// Report forward progress once per access batch so the hardened
		// runner's stall watchdog can tell a wedged run from a slow one.
		// Ticking per batch (not per access) keeps the hot path untouched.
		hb.Tick()
		src = &tickingSource{inner: env.st, hb: hb}
	}
	if err := env.ctl.RunBatchesCtx(ctx, cfg.Windows*cfg.Params.RefInt, src, batch); err != nil {
		return Result{}, err
	}
	// Attacker accesses are counted at dispatch (Access.Tagged), so the
	// unserviced tail of the final batch is excluded exactly.
	return env.collect(env.ctl.Stats().TaggedAccesses), nil
}

// RunReferenceCtx executes the run with the unbatched one-access-per-call
// driver the seed implementation used: generate, tick the weak-cell
// injector, dispatch, repeat. It is the behavioral reference the batched
// path is tested against and the "before" pipeline of the hot-path
// benchmark harness; production callers should use RunCtx.
func RunReferenceCtx(ctx context.Context, cfg Config, technique string) (Result, error) {
	env, err := prepareRun(cfg, technique)
	if err != nil {
		return Result{}, err
	}
	next := env.st.next
	if env.weaken != nil {
		inner := next
		next = func() (int, int, bool) {
			env.weaken()
			return inner()
		}
	}
	if err := env.ctl.RunIntervalsCtx(ctx, cfg.Windows*cfg.Params.RefInt, next); err != nil {
		return Result{}, err
	}
	return env.collect(env.st.attackerAccesses), nil
}

// runEnv is a fully wired simulation — device, controller, traffic stream,
// fault instrumentation and classification hook — ready to be driven by
// either dispatch loop.
type runEnv struct {
	dev     *dram.Device
	ctl     *memctrl.Controller
	st      *stream
	mit     mitigation.Mitigator
	harness *faults.Harness
	weaken  func()
	res     Result // identity fields + FalseActs accumulated by the hook
}

// prepareRun builds the runEnv for one configuration. Everything that both
// run drivers share — and therefore everything that determines behavior —
// lives here; the drivers differ only in dispatch mechanics.
func prepareRun(cfg Config, technique string) (*runEnv, error) {
	if err := cfg.Validate(); err != nil {
		return nil, permanent(err)
	}
	pol, err := cfg.policy(cfg.Seed)
	if err != nil {
		return nil, permanent(err)
	}
	dev, err := dram.New(cfg.Params, pol)
	if err != nil {
		return nil, permanent(err)
	}
	if cfg.RemapSwaps > 0 {
		if err := dev.SetRowRemap(remapPerm(cfg.Params.RowsPerBank, cfg.RemapSwaps, cfg.Seed)); err != nil {
			return nil, err
		}
	}

	var mit mitigation.Mitigator
	if cfg.Factory != nil {
		mit = cfg.Factory(cfg.Target(), cfg.Seed)
	} else if technique != "" {
		factory, err := mitigation.Lookup(technique)
		if err != nil {
			return nil, permanent(err)
		}
		mit = factory(cfg.Target(), cfg.Seed)
	}

	// Fault plan: derive a per-seed campaign so every seed of a sweep
	// sees an independent but reproducible fault stream.
	plan := cfg.Fault
	plan.Seed = cfg.Fault.Seed ^ (cfg.Seed * 0x9e3779b97f4a7c15)
	var harness *faults.Harness
	if plan.Active() && mit != nil {
		harness = faults.Wrap(mit, plan)
		mit = harness
	}

	ctl, err := memctrl.New(memctrl.DefaultConfig(), dev, mit)
	if err != nil {
		return nil, err
	}
	if f := faults.CommandFilter(plan); f != nil {
		ctl.SetCommandFilter(f)
	}

	// Traffic: the SPEC-like mix plus (optionally) the attacker.
	st, err := newStream(cfg)
	if err != nil {
		return nil, err
	}

	env := &runEnv{
		dev:     dev,
		ctl:     ctl,
		st:      st,
		mit:     mit,
		harness: harness,
		weaken:  faults.WeakCellInjector(plan, dev),
		res: Result{
			Technique: techniqueName(mit),
			Policy:    dev.Policy().Name(),
			Seed:      cfg.Seed,
		},
	}

	// False-positive classification: an extra activation is a true
	// positive when it restores a potential victim of a real aggressor.
	// Ground truth is a dense bitset over bank*RowsPerBank+row (the seed
	// used a map[[2]int]bool, which put two hash probes on every
	// RefreshRow command); neighbor probes that fall off the device are
	// non-members by construction.
	rpb := cfg.Params.RowsPerBank
	var agg *bitset.Bitset
	if st.att != nil {
		agg = bitset.New(cfg.Params.Banks * rpb)
		st.att.EachAggressor(func(bank, row int) {
			if row >= 0 && row < rpb {
				agg.Set(bank*rpb + row)
			}
		})
	}
	has := func(bank, row int) bool {
		if agg == nil || row < 0 || row >= rpb {
			return false
		}
		return agg.Get(bank*rpb + row)
	}
	ctl.SetCommandHook(func(cmd mitigation.Command) {
		protective := false
		switch cmd.Kind {
		case mitigation.ActN, mitigation.ActNOne:
			protective = has(cmd.Bank, cmd.Row)
		case mitigation.RefreshRow:
			protective = has(cmd.Bank, cmd.Row-1) || has(cmd.Bank, cmd.Row+1)
		}
		if !protective {
			env.res.FalseActs++
		}
	})
	return env, nil
}

// collect finalizes the Result after a completed run. attackerActs is
// driver-specific: the batched driver counts tagged accesses at dispatch,
// the reference driver counts at generation (equal on any completed run,
// since the reference generates exactly what it dispatches).
func (e *runEnv) collect(attackerActs uint64) Result {
	ds := e.dev.Stats()
	cs := e.ctl.Stats()
	res := e.res
	res.TotalActs = ds.Activates
	res.AttackerActs = attackerActs // attacker accesses are all misses
	res.ExtraActs = cs.ActN + cs.ActNOne + cs.RefreshRow
	if res.TotalActs > 0 {
		res.OverheadPct = 100 * float64(res.ExtraActs) / float64(res.TotalActs)
		res.FPRPct = 100 * float64(res.FalseActs) / float64(res.TotalActs)
	}
	res.Flips = len(e.dev.Flips())
	if e.mit != nil {
		res.TableBytes = e.mit.TableBytesPerBank()
	}
	res.AvgActsPerInterval = ds.AvgActsPerInterval()
	res.MaxActsPerInterval = ds.MaxActsInIntv
	if e.harness != nil {
		res.InjectedFaults = e.harness.Injected
	}
	res.DroppedCmds = cs.DroppedCmds
	res.DelayedCmds = cs.DelayedCmds
	return res
}

func techniqueName(m mitigation.Mitigator) string {
	if m == nil {
		return "none"
	}
	return m.Name()
}

// stream interleaves the SPEC-like mix with the attacker at the
// configured share. It exposes the same generated access sequence through
// two drivers: next (one access per call, the protocol RunIntervals and
// the trace recorder use) and Fill (memctrl.AccessSource, one batch per
// call). Generation reads only the stream's own RNG and generators — never
// device or controller state — which is the property that makes batched
// and unbatched dispatch produce byte-identical results on any consumed
// prefix.
type stream struct {
	att     *workload.Attacker
	mix     *workload.Mix
	src     *rng.XorShift64Star
	shareFP uint64
	// attackerAccesses counts attacker-issued accesses handed out through
	// next. The batched path counts at dispatch instead (Access.Tagged →
	// Stats.TaggedAccesses), so the unserviced tail of a final batch is
	// excluded exactly.
	attackerAccesses uint64
}

func newStream(cfg Config) (*stream, error) {
	st := &stream{mix: workload.SPECMix(cfg.Params.Banks, cfg.Params.RowsPerBank, cfg.Seed)}
	if len(cfg.AttackBanks) > 0 && cfg.AttackShare > 0 {
		// Plan the ramp over the expected activation volume.
		planned := uint64(float64(cfg.Windows*cfg.Params.RefInt) * 200 * cfg.AttackShare)
		if planned == 0 {
			planned = 1
		}
		att, err := workload.NewAttacker(workload.AttackerConfig{
			TargetBanks:   cfg.AttackBanks,
			RowsPerBank:   cfg.Params.RowsPerBank,
			MinAggressors: cfg.MinAggressors,
			MaxAggressors: cfg.MaxAggressors,
			// Dwell on each victim for roughly a full refresh window of
			// per-bank hammering, whatever the window length, so the
			// attack stays flip-capable at any simulation scale.
			BurstAccesses:   uint64(cfg.Params.RefInt) * 64,
			PlannedAccesses: planned,
			Seed:            cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		st.att = att
	}
	st.src = rng.NewXorShift64Star(cfg.Seed ^ 0xd21ce)
	st.shareFP = uint64(cfg.AttackShare * float64(1<<32))
	return st, nil
}

// gen produces the next access of the interleaved sequence and reports
// whether the attacker issued it. Both drivers funnel through it, so they
// consume one generation sequence. The attacker-share draw is skipped
// entirely without an attacker, matching the seed's short-circuit.
func (st *stream) gen() (a workload.Access, attacker bool) {
	if st.att != nil && st.src.Uint64()&0xffffffff < st.shareFP {
		return st.att.Next(), true
	}
	return st.mix.Next(), false
}

// next is the unbatched driver protocol (memctrl.RunIntervals and the
// trace recorder call it once per access).
func (st *stream) next() (bank, row int, write bool) {
	a, attacker := st.gen()
	if attacker {
		st.attackerAccesses++
	}
	return a.Bank, a.Row, a.Write
}

// Fill implements memctrl.AccessSource: one generator call per slot,
// attacker accesses tagged for dispatch-time counting.
func (st *stream) Fill(buf []memctrl.Access) int {
	for i := range buf {
		a, attacker := st.gen()
		buf[i] = memctrl.Access{
			Bank: int32(a.Bank), Row: int32(a.Row),
			Write: a.Write, Tagged: attacker,
		}
	}
	return len(buf)
}

// tickingSource wraps an AccessSource to record one heartbeat tick per
// Fill. The batched driver calls Fill once per batch, so the tick rate is
// the batch rate — frequent enough for a meaningful stall watchdog,
// cheap enough (two atomic stores per ~512 accesses) to never show up in
// the hot-path profile. Generation still does not depend on device or
// controller state: the wrapper only observes the call, never the data.
type tickingSource struct {
	inner memctrl.AccessSource
	hb    *Heartbeat
}

// Fill implements memctrl.AccessSource.
func (t *tickingSource) Fill(buf []memctrl.Access) int {
	t.hb.Tick()
	return t.inner.Fill(buf)
}

func remapPerm(rows, swaps int, seed uint64) []int {
	perm := make([]int, rows)
	for i := range perm {
		perm[i] = i
	}
	src := rng.NewXorShift64Star(seed ^ 0x2e3a9)
	for i := 0; i < swaps; i++ {
		a, b := rng.Intn(src, rows), rng.Intn(src, rows)
		perm[a], perm[b] = perm[b], perm[a]
	}
	return perm
}

// Summary aggregates a technique's results across seeds (the µ±σ columns
// of Table III).
type Summary struct {
	Technique   string
	Runs        []Result
	Overhead    stats.Welford // percent
	FPR         stats.Welford // percent
	TotalFlips  int
	TableBytes  int
	TotalActs   uint64
	ExtraActs   uint64
	MaxActsIntv uint64
	// Fault observability totals (zero without an active fault plan).
	InjectedFaults uint64
	DroppedCmds    uint64
	DelayedCmds    uint64
}

// Summarize aggregates per-seed results into a Summary. The aggregation
// order is the slice order, so re-aggregating checkpointed results
// reproduces the original summary bit-for-bit.
func Summarize(results []Result) Summary {
	if len(results) == 0 {
		return Summary{}
	}
	s := Summary{Technique: results[0].Technique, Runs: results}
	for _, r := range results {
		s.Overhead.Add(r.OverheadPct)
		s.FPR.Add(r.FPRPct)
		s.TotalFlips += r.Flips
		s.TableBytes = r.TableBytes
		s.TotalActs += r.TotalActs
		s.ExtraActs += r.ExtraActs
		if r.MaxActsPerInterval > s.MaxActsIntv {
			s.MaxActsIntv = r.MaxActsPerInterval
		}
		s.InjectedFaults += r.InjectedFaults
		s.DroppedCmds += r.DroppedCmds
		s.DelayedCmds += r.DelayedCmds
	}
	return s
}

// RunSeeds executes Run for every seed (in a bounded worker pool) and
// aggregates. It fails on the first per-seed error; use RunSeedsCtx for
// partial results, cancellation, deadlines and retries.
func RunSeeds(cfg Config, technique string, seeds []uint64) (Summary, error) {
	sum, runErrs, err := RunSeedsCtx(context.Background(), DefaultRunnerConfig(), cfg, technique, seeds)
	if err != nil {
		return Summary{}, err
	}
	if len(runErrs) > 0 {
		return Summary{}, runErrs[0]
	}
	return sum, nil
}

// Seeds returns n deterministic seeds derived from base.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)*0x9e3779b9
	}
	return out
}

// TechniqueNames returns the paper's nine techniques in Table III order.
func TechniqueNames() []string {
	return []string{"ProHit", "MRLoc", "PARA", "TWiCe", "CRA",
		"CaPRoMi", "LiPRoMi", "LoPRoMi", "LoLiPRoMi"}
}

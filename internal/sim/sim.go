// Package sim is the experiment harness: it wires workload, attacker,
// memory controller, DRAM device and a mitigation together and measures
// the quantities the paper reports — activation overhead, false-positive
// rate, bit flips, table storage — plus the flooding and vulnerability
// probes of Section IV.
package sim

import (
	"context"
	"fmt"

	"tivapromi/internal/bitset"
	"tivapromi/internal/dram"
	"tivapromi/internal/faults"
	"tivapromi/internal/memctrl"
	"tivapromi/internal/mitigation"
	_ "tivapromi/internal/mitigation/all" // register all techniques
	"tivapromi/internal/obs"
	"tivapromi/internal/rng"
	"tivapromi/internal/stats"
	"tivapromi/internal/workload"
)

// PolicyKind selects the device refresh-address policy (Section IV
// evaluates all four).
type PolicyKind int

const (
	// PolicyNeighbors refreshes contiguous address blocks (the paper's
	// assumption).
	PolicyNeighbors PolicyKind = iota
	// PolicyRemapped is neighbors with a few spare-row replacements.
	PolicyRemapped
	// PolicyRandom refreshes a fresh random permutation every window.
	PolicyRandom
	// PolicyMaskedCounter XORs the interval counter with a mask.
	PolicyMaskedCounter
)

// String implements fmt.Stringer.
func (p PolicyKind) String() string {
	switch p {
	case PolicyNeighbors:
		return "neighbors"
	case PolicyRemapped:
		return "neighbors-remapped"
	case PolicyRandom:
		return "random"
	case PolicyMaskedCounter:
		return "counter+mask"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(p))
	}
}

// Policies lists all refresh policies for sweep experiments.
func Policies() []PolicyKind {
	return []PolicyKind{PolicyNeighbors, PolicyRemapped, PolicyRandom, PolicyMaskedCounter}
}

// Config describes one simulation run.
type Config struct {
	// Params is the device configuration.
	Params dram.Params
	// Policy selects the refresh-address policy.
	Policy PolicyKind
	// Windows is the number of refresh windows to simulate.
	Windows int
	// AttackBanks are the banks under attack (empty disables the
	// attacker).
	AttackBanks []int
	// MinAggressors/MaxAggressors set the attacker's ramp (1→20 in the
	// paper).
	MinAggressors int
	MaxAggressors int
	// AttackShare is the attacker's fraction of the memory access stream
	// (its cache-flushing core competes with three workload cores).
	AttackShare float64
	// RemapSwaps > 0 installs that many random logical→physical spare-row
	// swaps on the device, the scenario that defeats victim-addressed
	// refreshes.
	RemapSwaps int
	// Seed drives all randomness (workload, attacker, mitigation, policy).
	Seed uint64
	// Factory, when non-nil, overrides the registry lookup — used by
	// ablation studies to run techniques with non-default table sizes or
	// probabilities. It is excluded from checkpoint fingerprints; set
	// FactoryLabel when a factory-driven sweep should be resumable.
	Factory mitigation.Factory `json:"-"`
	// FactoryLabel names a custom Factory for checkpoint fingerprinting.
	// Configs with a Factory but no label are never served from a
	// checkpoint (the runner cannot know two closures are equal).
	FactoryLabel string
	// Fault optionally injects hardware faults into the run (mitigation
	// SRAM upsets, RNG degradation, command-path losses, weak cells).
	// The zero value injects nothing.
	Fault faults.Plan
}

// DefaultConfig returns the standard mixed-load-plus-attacker setup on the
// scaled device.
func DefaultConfig() Config {
	return Config{
		Params:        dram.ScaledParams(),
		Policy:        PolicyNeighbors,
		Windows:       4,
		AttackBanks:   []int{1, 3},
		MinAggressors: 1,
		MaxAggressors: 20,
		AttackShare:   0.65,
		Seed:          1,
	}
}

// Validate reports configuration problems. Harness callers get errors,
// not crashes: every path Run takes (policy selection, fault plan, device
// geometry) is validated here, so invariant panics stay confined to leaf
// packages.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	switch {
	case c.Windows <= 0:
		return fmt.Errorf("sim: Windows = %d", c.Windows)
	case c.AttackShare < 0 || c.AttackShare > 1:
		return fmt.Errorf("sim: AttackShare = %v out of [0,1]", c.AttackShare)
	case c.Policy < PolicyNeighbors || c.Policy > PolicyMaskedCounter:
		return fmt.Errorf("sim: unknown policy %v", c.Policy)
	}
	for _, b := range c.AttackBanks {
		if b < 0 || b >= c.Params.TotalBanks() {
			return fmt.Errorf("sim: attack bank %d out of range", b)
		}
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	return nil
}

// Target returns the mitigation.Target for this configuration.
func (c Config) Target() mitigation.Target {
	return mitigation.Target{
		Banks:         c.Params.TotalBanks(),
		RowsPerBank:   c.Params.RowsPerBank,
		RefInt:        c.Params.RefInt,
		FlipThreshold: c.Params.FlipThreshold,
	}
}

// policy builds the device refresh policy; unknown kinds are an error
// (Validate rejects them before Run gets here, so harness callers never
// see a panic for a bad policy value).
func (c Config) policy(seed uint64) (dram.RefreshPolicy, error) {
	switch c.Policy {
	case PolicyNeighbors:
		return dram.NewNeighborPolicy(c.Params), nil
	case PolicyRemapped:
		return dram.NewRemappedPolicy(c.Params, 16, seed), nil
	case PolicyRandom:
		return dram.NewRandomPolicy(c.Params, seed), nil
	case PolicyMaskedCounter:
		return dram.NewMaskedCounterPolicy(c.Params, 0x155), nil
	default:
		return nil, fmt.Errorf("sim: unknown policy %v", c.Policy)
	}
}

// Result is the outcome of one run.
type Result struct {
	Technique string
	Policy    string
	Seed      uint64

	TotalActs    uint64 // normal activations (workload + attacker)
	AttackerActs uint64 // activations caused by attacker accesses
	// ExtraActs counts mitigation-issued activation commands (act_n,
	// one-sided act_n, or a direct victim refresh). This matches the
	// paper's metric: an act_n occupies one maintenance-command slot in
	// the controller schedule even though the DRAM restores both
	// neighbors inside it (a consistency check against the paper's PARA
	// overhead of 0.1% at p = 9.8e-4 confirms commands, not individual
	// row activations, are counted).
	ExtraActs uint64
	FalseActs uint64 // extra commands not protecting a real victim

	OverheadPct float64 // 100 * ExtraActs / TotalActs
	FPRPct      float64 // 100 * FalseActs / TotalActs

	Flips      int // successful Row-Hammer bit flips (must be 0 mitigated)
	TableBytes int // per-bank mitigation storage

	AvgActsPerInterval float64
	MaxActsPerInterval uint64

	// Fault observability (zero without an active fault plan).
	InjectedFaults uint64 // applied mitigation-state upsets
	DroppedCmds    uint64 // mitigation commands lost on the command path
	DelayedCmds    uint64 // mitigation commands served one interval late
}

// Run executes one simulation of `technique` (a registry name, or "" for
// an unprotected system).
func Run(cfg Config, technique string) (Result, error) {
	return RunCtx(context.Background(), cfg, technique)
}

// RunCtx is Run with cooperative cancellation: the simulation polls ctx
// between blocks of accesses and returns ctx.Err() when cut short, so a
// seed sweep can be abandoned mid-run without leaking work. Accesses are
// generated into struct-of-arrays blocks of memctrl.DefaultBatchSize and
// dispatched to per-bank lanes; see RunCtxBatch and RunShardedCtx.
func RunCtx(ctx context.Context, cfg Config, technique string) (Result, error) {
	return RunCtxBatch(ctx, cfg, technique, 0)
}

// RunCtxBatch is RunCtx with an explicit access-block size (batch <= 0
// selects memctrl.DefaultBatchSize). The generated access stream, every
// RNG draw and every mitigation command are identical at any block size —
// the block only amortizes per-access generation and dispatch overhead —
// so the Result is invariant in batch; TestBatchSizesMatchReference pins
// this against RunReferenceCtx. The block size is deliberately a
// parameter, not a Config field: checkpoint fingerprints hash the Config,
// and a purely mechanical dispatch knob must not invalidate resumable
// campaign state.
func RunCtxBatch(ctx context.Context, cfg Config, technique string, batch int) (Result, error) {
	env, err := prepareRun(cfg, technique)
	if err != nil {
		return Result{}, err
	}
	if err := env.runBlocks(ctx, batch); err != nil {
		return Result{}, err
	}
	return env.collect(), nil
}

// RunShardedCtx is RunCtx with the lane servicing fanned out over
// `shards` goroutines (clamped to the bank count; <= 1 falls back to the
// serial block driver). Trace generation stays sequential on the calling
// goroutine — the interleave is defined by one stateful RNG — and each
// worker services the lanes of banks congruent to its index mod shards.
// Because every lane's state evolves only from its own bank's accesses
// and count-based refresh boundaries, the Result is byte-identical at any
// shard count; TestShardsMatchReference pins this against
// RunReferenceCtx.
func RunShardedCtx(ctx context.Context, cfg Config, technique string, shards int) (Result, error) {
	if shards <= 1 {
		return RunCtxBatch(ctx, cfg, technique, 0)
	}
	env, err := prepareRun(cfg, technique)
	if err != nil {
		return Result{}, err
	}
	if err := env.runSharded(ctx, shards); err != nil {
		return Result{}, err
	}
	return env.collect(), nil
}

// RunReferenceCtx executes the run with the unbatched one-access-per-call
// oracle driver: generate one access, route it to its bank lane, repeat.
// It is the behavioral reference the block and sharded drivers are tested
// against and the "before" pipeline of the hot-path benchmark harness;
// production callers should use RunCtx or RunShardedCtx.
func RunReferenceCtx(ctx context.Context, cfg Config, technique string) (Result, error) {
	env, err := prepareRun(cfg, technique)
	if err != nil {
		return Result{}, err
	}
	total := env.intervals * env.api
	iv, rem := 0, env.api
	for i := 0; i < total; i++ {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		a, _ := env.st.gen()
		if rem == 0 {
			iv++
			rem = env.api
		}
		rem--
		l := env.lanes[a.Bank]
		l.CatchUp(iv)
		l.Access(int32(a.Row), a.Write)
	}
	env.finish()
	return env.collect(), nil
}

// DrainStream generates cfg's full access stream into a reusable block
// without servicing any of it — the trace-generation stage in isolation.
// The hot-path harness times it to split the pipeline profile into
// generation and lane-servicing shares. Returns the number of accesses
// generated.
func DrainStream(ctx context.Context, cfg Config) (uint64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, permanent(err)
	}
	api := memctrl.AccessesPerInterval(cfg.Params)
	st, err := newStream(cfg, api)
	if err != nil {
		return 0, err
	}
	total := cfg.Windows * cfg.Params.RefInt * api
	blk := workload.NewBlock(memctrl.DefaultBatchSize)
	for done := 0; done < total; {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		n := total - done
		if n > memctrl.DefaultBatchSize {
			n = memctrl.DefaultBatchSize
		}
		st.fill(blk, n)
		done += n
	}
	return uint64(total), nil
}

// runEnv is a fully wired simulation: one memctrl.Lane per bank (each
// with its own single-bank device, mitigation instance, fault
// instrumentation and classification hook) plus the shared traffic
// stream. The refresh timeline is count-based — access i of the run
// belongs to global refresh interval i/api — so a lane's entire evolution
// is a function of its own access subsequence, independent of how the
// stream is partitioned across goroutines.
type runEnv struct {
	cfg       Config
	api       int // accesses per global refresh interval
	intervals int // total refresh intervals (Windows * RefInt)
	lanes     []*memctrl.Lane
	harnesses []*faults.Harness // per lane; nil without an active plan
	st        *stream
	mit0      mitigation.Mitigator // lane 0's (possibly fault-wrapped) instance
	falseActs []padCounter         // per lane, padded against false sharing
	res       Result               // identity fields
}

// padCounter is a cache-line-padded counter: one per lane, so shard
// workers incrementing neighboring lanes' counters never contend on a
// line.
type padCounter struct {
	n uint64
	_ [56]byte
}

// laneSeed derives the per-bank seed for bank b; bank 0 keeps the base
// seed, so single-bank configurations reproduce the unsharded seeding.
func laneSeed(seed uint64, bank int) uint64 {
	return seed + uint64(bank)*0x9e3779b97f4a7c15
}

// prepareRun builds the runEnv for one configuration. Everything that all
// run drivers share — and therefore everything that determines behavior —
// lives here; the drivers differ only in dispatch mechanics.
func prepareRun(cfg Config, technique string) (*runEnv, error) {
	if err := cfg.Validate(); err != nil {
		return nil, permanent(err)
	}
	var factory mitigation.Factory
	if cfg.Factory != nil {
		factory = cfg.Factory
	} else if technique != "" {
		f, err := mitigation.Lookup(technique)
		if err != nil {
			return nil, permanent(err)
		}
		factory = f
	}

	api := memctrl.AccessesPerInterval(cfg.Params)
	st, err := newStream(cfg, api)
	if err != nil {
		return nil, err
	}

	banks := cfg.Params.TotalBanks()
	rpb := cfg.Params.RowsPerBank
	laneParams := cfg.Params
	// Each lane models one flat bank: collapse the geometry and pin the
	// state representation to the whole-config decision, so a full-DIMM
	// run's lanes stay sparse (heap O(touched rows)) instead of Auto
	// re-deciding per single-bank population.
	laneParams.Banks = 1
	laneParams.Ranks = 0
	laneParams.BankGroups = 0
	if cfg.Params.Sparse() {
		laneParams.State = dram.StateSparse
	} else {
		laneParams.State = dram.StateDense
	}
	laneTarget := mitigation.Target{
		Banks:         1,
		RowsPerBank:   rpb,
		RefInt:        cfg.Params.RefInt,
		FlipThreshold: cfg.Params.FlipThreshold,
	}
	var perm []int
	if cfg.RemapSwaps > 0 {
		perm = remapPerm(rpb, cfg.RemapSwaps, cfg.Seed)
	}
	// Fault plan: derive a per-seed campaign so every seed of a sweep
	// sees an independent but reproducible fault stream; each lane then
	// mixes its bank in, so banks see independent streams too.
	basePlan := cfg.Fault
	basePlan.Seed = cfg.Fault.Seed ^ (cfg.Seed * 0x9e3779b97f4a7c15)

	// False-positive ground truth, per bank: an extra activation is a
	// true positive when it restores a potential victim of a real
	// aggressor. Dense row bitsets (nil for banks without aggressors)
	// keep the per-command check to one bit probe.
	aggRows := make([]*bitset.Bitset, banks)
	if st.att != nil {
		st.att.EachAggressor(func(bank, row int) {
			if bank < 0 || bank >= banks || row < 0 || row >= rpb {
				return
			}
			if aggRows[bank] == nil {
				aggRows[bank] = bitset.New(rpb)
			}
			aggRows[bank].Set(row)
		})
	}

	env := &runEnv{
		cfg:       cfg,
		api:       api,
		intervals: cfg.Windows * cfg.Params.RefInt,
		lanes:     make([]*memctrl.Lane, banks),
		harnesses: make([]*faults.Harness, banks),
		st:        st,
		falseActs: make([]padCounter, banks),
	}
	for b := 0; b < banks; b++ {
		// Every lane gets its own policy instance seeded with the base
		// seed: all banks refresh the same rows each interval, exactly as
		// one shared multi-bank device would.
		pol, err := cfg.policy(cfg.Seed)
		if err != nil {
			return nil, permanent(err)
		}
		dev, err := dram.New(laneParams, pol)
		if err != nil {
			return nil, permanent(err)
		}
		if perm != nil {
			if err := dev.SetRowRemap(perm); err != nil {
				return nil, err
			}
		}
		var mit mitigation.Mitigator
		if factory != nil {
			mit = factory(laneTarget, laneSeed(cfg.Seed, b))
		}
		plan := basePlan
		plan.Seed = laneSeed(basePlan.Seed, b)
		if plan.Active() && mit != nil {
			h := faults.Wrap(mit, plan)
			env.harnesses[b] = h
			mit = h
		}
		lane, err := memctrl.NewLane(memctrl.DefaultConfig(), dev, mit)
		if err != nil {
			return nil, err
		}
		if f := faults.CommandFilter(plan); f != nil {
			lane.SetCommandFilter(f)
		}
		if weaken := faults.WeakCellInjector(plan, dev); weaken != nil {
			lane.SetAccessTick(weaken)
		}
		bs := aggRows[b]
		ctr := &env.falseActs[b]
		lane.SetCommandHook(func(cmd mitigation.Command) {
			protective := false
			switch cmd.Kind {
			case mitigation.ActN, mitigation.ActNOne:
				protective = rowIsAggressor(bs, cmd.Row, rpb)
			case mitigation.RefreshRow:
				protective = rowIsAggressor(bs, cmd.Row-1, rpb) ||
					rowIsAggressor(bs, cmd.Row+1, rpb)
			}
			if !protective {
				ctr.n++
			}
		})
		env.lanes[b] = lane
		if b == 0 {
			env.mit0 = mit
		}
	}
	env.res = Result{
		Technique: techniqueName(env.mit0),
		Policy:    env.lanes[0].Device().Policy().Name(),
		Seed:      cfg.Seed,
	}
	return env, nil
}

// rowIsAggressor probes the per-bank ground-truth bitset; neighbor probes
// that fall off the device are non-members by construction.
func rowIsAggressor(bs *bitset.Bitset, row, rpb int) bool {
	return bs != nil && row >= 0 && row < rpb && bs.Get(row)
}

// runBlocks is the serial production driver: fill a struct-of-arrays
// block from the stream, then scan its flat arrays routing each access to
// its bank lane, firing any refresh boundaries the access index has
// crossed. One context poll and one heartbeat tick per block.
func (e *runEnv) runBlocks(ctx context.Context, chunk int) error {
	if chunk <= 0 {
		chunk = memctrl.DefaultBatchSize
	}
	hb := HeartbeatFrom(ctx)
	total := e.intervals * e.api
	blk := workload.NewBlock(chunk)
	// laneIv[b] is the interval lane b was last caught up to; the gate
	// replaces a CatchUp call per access with a compare that only fails
	// on a lane's first access of a new interval.
	laneIv := make([]int32, len(e.lanes))
	for i := range laneIv {
		laneIv[i] = -1
	}
	iv, rem := 0, e.api
	api, lanes := e.api, e.lanes
	for done := 0; done < total; {
		if err := ctx.Err(); err != nil {
			return err
		}
		if hb != nil {
			// Report forward progress once per block so the hardened
			// runner's stall watchdog can tell a wedged run from a slow
			// one; per-block ticking keeps the hot path untouched.
			hb.Tick()
		}
		n := total - done
		if n > chunk {
			n = chunk
		}
		e.st.fill(blk, n)
		banks, rows, flags := blk.Bank[:n], blk.Row[:n], blk.Flag[:n]
		for i := 0; i < n; i++ {
			if rem == 0 {
				iv++
				rem = api
			}
			rem--
			b := banks[i]
			l := lanes[b]
			if laneIv[b] != int32(iv) {
				l.CatchUp(iv)
				laneIv[b] = int32(iv)
			}
			l.Access(rows[i], flags[i]&workload.FlagWrite != 0)
		}
		done += n
	}
	e.finish()
	return nil
}

// finish fires every lane's outstanding refresh boundaries so all lanes
// end the run at the same interval count.
func (e *runEnv) finish() {
	for _, l := range e.lanes {
		l.CatchUp(e.intervals)
	}
}

// collect merges the per-lane devices and controllers into the Result, in
// bank order. The per-bank interval statistics merge exactly: each lane's
// device counts one bank-interval per boundary, so the sums, counts, and
// maxima add up to what one multi-bank device would have recorded.
func (e *runEnv) collect() Result {
	res := e.res
	var sumIA, seenIA uint64
	for b, l := range e.lanes {
		ds := l.Device().Stats()
		cs := l.Stats()
		res.TotalActs += ds.Activates
		res.ExtraActs += cs.ActN + cs.ActNOne + cs.RefreshRow
		res.Flips += int(l.Device().FlipCount())
		if ds.MaxActsInIntv > res.MaxActsPerInterval {
			res.MaxActsPerInterval = ds.MaxActsInIntv
		}
		sumIA += ds.IntervalActsSum
		seenIA += ds.IntervalActsSeen
		res.DroppedCmds += cs.DroppedCmds
		res.DelayedCmds += cs.DelayedCmds
		if h := e.harnesses[b]; h != nil {
			res.InjectedFaults += h.Injected
		}
		res.FalseActs += e.falseActs[b].n
	}
	res.AttackerActs = e.st.attackerAccesses // attacker accesses are all misses
	if res.TotalActs > 0 {
		res.OverheadPct = 100 * float64(res.ExtraActs) / float64(res.TotalActs)
		res.FPRPct = 100 * float64(res.FalseActs) / float64(res.TotalActs)
	}
	if e.mit0 != nil {
		res.TableBytes = e.mit0.TableBytesPerBank()
	}
	if seenIA > 0 {
		res.AvgActsPerInterval = float64(sumIA) / float64(seenIA)
	}
	if obs.MetricsEnabled() {
		// Per-run flush of the scale metrics: one pass over the lanes a
		// run already makes, so no per-access cost anywhere. Acts come
		// from the device counters; sparse-state and touched-row gauges
		// are high-water marks across every device this process ran.
		var acts uint64
		var stateBytes, touched int
		for _, l := range e.lanes {
			l.FlushMetrics()
			acts += l.Device().Stats().Activates
			stateBytes += l.Device().StateBytes()
			touched += l.Device().TouchedRows()
		}
		obs.Acts.Add(acts)
		obs.SparseStateBytes.SetMax(int64(stateBytes))
		obs.TouchedRows.SetMax(int64(touched))
	}
	return res
}

func techniqueName(m mitigation.Mitigator) string {
	if m == nil {
		return "none"
	}
	return m.Name()
}

// stream interleaves the SPEC-like mix with the attacker at the
// configured share. Generation reads only the stream's own RNG and
// generators — never device or lane state — which is the property that
// makes every dispatch strategy (reference, blocked, sharded) produce
// byte-identical results: they all consume this one sequence.
type stream struct {
	att     *workload.Attacker
	mix     *workload.SpecMixGen
	src     *rng.XorShift64Star
	shareFP uint64
	// attackerAccesses counts attacker-issued accesses at generation;
	// every generated access is serviced (the run length is a fixed
	// access count), so generation-time counting is exact for every
	// driver.
	attackerAccesses uint64
}

func newStream(cfg Config, api int) (*stream, error) {
	st := &stream{mix: workload.NewSpecMixGen(cfg.Params.TotalBanks(), cfg.Params.RowsPerBank, cfg.Seed)}
	if len(cfg.AttackBanks) > 0 && cfg.AttackShare > 0 {
		// Plan the ramp over the attacker's exact share of the run's
		// fixed access count, so the ramp completes as the run ends.
		planned := uint64(float64(cfg.Windows*cfg.Params.RefInt*api) * cfg.AttackShare)
		if planned == 0 {
			planned = 1
		}
		att, err := workload.NewAttacker(workload.AttackerConfig{
			TargetBanks:   cfg.AttackBanks,
			RowsPerBank:   cfg.Params.RowsPerBank,
			MinAggressors: cfg.MinAggressors,
			MaxAggressors: cfg.MaxAggressors,
			// Dwell on each victim for roughly a full refresh window of
			// per-bank hammering, whatever the window length, so the
			// attack stays flip-capable at any simulation scale.
			BurstAccesses:   uint64(cfg.Params.RefInt) * 64,
			PlannedAccesses: planned,
			Seed:            cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		st.att = att
	}
	st.src = rng.NewXorShift64Star(cfg.Seed ^ 0xd21ce)
	st.shareFP = uint64(cfg.AttackShare * float64(1<<32))
	return st, nil
}

// gen produces the next access of the interleaved sequence and reports
// whether the attacker issued it. All drivers funnel through it (directly
// or via fill), so they consume one generation sequence. The
// attacker-share draw is skipped entirely without an attacker.
func (st *stream) gen() (a workload.Access, attacker bool) {
	if st.att != nil && st.src.Uint64()&0xffffffff < st.shareFP {
		st.attackerAccesses++
		return st.att.Next(), true
	}
	return st.mix.Next(), false
}

// fill writes the next n accesses into the block's flat arrays. It is
// gen() unrolled against the arrays directly — same draws, same stream —
// so the block fill path skips the per-access Access round trip (and its
// flag reassembly) that Block.Set would cost.
func (st *stream) fill(blk *workload.Block, n int) {
	blk.Reset(n)
	banks, rows, flags := blk.Bank[:n], blk.Row[:n], blk.Flag[:n]
	att, mix, src, shareFP := st.att, st.mix, st.src, st.shareFP
	var attacked uint64
	for i := 0; i < n; i++ {
		var a workload.Access
		var f uint8
		if att != nil && src.Uint64()&0xffffffff < shareFP {
			attacked++
			a = att.Next()
			f = workload.FlagAttacker
		} else {
			a = mix.Next()
		}
		if a.Write {
			f |= workload.FlagWrite
		}
		banks[i] = int32(a.Bank)
		rows[i] = int32(a.Row)
		flags[i] = f
	}
	st.attackerAccesses += attacked
}

func remapPerm(rows, swaps int, seed uint64) []int {
	perm := make([]int, rows)
	for i := range perm {
		perm[i] = i
	}
	src := rng.NewXorShift64Star(seed ^ 0x2e3a9)
	for i := 0; i < swaps; i++ {
		a, b := rng.Intn(src, rows), rng.Intn(src, rows)
		perm[a], perm[b] = perm[b], perm[a]
	}
	return perm
}

// Summary aggregates a technique's results across seeds (the µ±σ columns
// of Table III).
type Summary struct {
	Technique   string
	Runs        []Result
	Overhead    stats.Welford // percent
	FPR         stats.Welford // percent
	TotalFlips  int
	TableBytes  int
	TotalActs   uint64
	ExtraActs   uint64
	MaxActsIntv uint64
	// Fault observability totals (zero without an active fault plan).
	InjectedFaults uint64
	DroppedCmds    uint64
	DelayedCmds    uint64
}

// Summarize aggregates per-seed results into a Summary. The aggregation
// order is the slice order, so re-aggregating checkpointed results
// reproduces the original summary bit-for-bit.
func Summarize(results []Result) Summary {
	if len(results) == 0 {
		return Summary{}
	}
	s := Summary{Technique: results[0].Technique, Runs: results}
	for _, r := range results {
		s.Overhead.Add(r.OverheadPct)
		s.FPR.Add(r.FPRPct)
		s.TotalFlips += r.Flips
		s.TableBytes = r.TableBytes
		s.TotalActs += r.TotalActs
		s.ExtraActs += r.ExtraActs
		if r.MaxActsPerInterval > s.MaxActsIntv {
			s.MaxActsIntv = r.MaxActsPerInterval
		}
		s.InjectedFaults += r.InjectedFaults
		s.DroppedCmds += r.DroppedCmds
		s.DelayedCmds += r.DelayedCmds
	}
	return s
}

// RunSeeds executes Run for every seed (in a bounded worker pool) and
// aggregates. It fails on the first per-seed error; use RunSeedsCtx for
// partial results, cancellation, deadlines and retries.
func RunSeeds(cfg Config, technique string, seeds []uint64) (Summary, error) {
	sum, runErrs, err := RunSeedsCtx(context.Background(), DefaultRunnerConfig(), cfg, technique, seeds)
	if err != nil {
		return Summary{}, err
	}
	if len(runErrs) > 0 {
		return Summary{}, runErrs[0]
	}
	return sum, nil
}

// Seeds returns n deterministic seeds derived from base.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)*0x9e3779b9
	}
	return out
}

// TechniqueNames returns the paper's nine techniques in Table III order.
func TechniqueNames() []string {
	return []string{"ProHit", "MRLoc", "PARA", "TWiCe", "CRA",
		"CaPRoMi", "LiPRoMi", "LoPRoMi", "LoLiPRoMi"}
}

package sim

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"tivapromi/internal/faults"
)

func newTestCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	ck, err := LoadCheckpoint(filepath.Join(t.TempDir(), "sweep.json"))
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	res := Result{Technique: "PARA", Seed: 0x42, Flips: 3, TotalActs: 100}
	if err := ck.record("fp", 0x42, res); err != nil {
		t.Fatal(err)
	}
	if err := ck.PutOutput("table1", "rendered text"); err != nil {
		t.Fatal(err)
	}

	// A fresh load sees both the result and the cached output.
	ck2, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := ck2.lookup("fp", 0x42)
	if !ok || !reflect.DeepEqual(got, res) {
		t.Fatalf("lookup = %+v, %v; want %+v, true", got, ok, res)
	}
	if text, ok := ck2.Output("table1"); !ok || text != "rendered text" {
		t.Fatalf("Output = %q, %v", text, ok)
	}
	if _, ok := ck2.lookup("fp", 0x43); ok {
		t.Fatal("phantom seed present")
	}
	if _, ok := ck2.lookup("other", 0x42); ok {
		t.Fatal("fingerprint isolation violated")
	}
}

func TestCheckpointCorruptFileStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ck.lookup("fp", 1); ok {
		t.Fatal("corrupt checkpoint produced data")
	}
}

func TestNilCheckpointIsNoop(t *testing.T) {
	var ck *Checkpoint
	if err := ck.record("fp", 1, Result{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := ck.lookup("fp", 1); ok {
		t.Fatal("nil checkpoint returned data")
	}
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
	if ck.Path() != "" {
		t.Fatal("nil checkpoint has a path")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	cfg := fastConfig()
	seeds := []uint64{1, 2, 3}
	base := Fingerprint(cfg, "PARA", seeds)

	if Fingerprint(cfg, "TWiCe", seeds) == base {
		t.Fatal("technique not fingerprinted")
	}
	c2 := cfg
	c2.Windows++
	if Fingerprint(c2, "PARA", seeds) == base {
		t.Fatal("config not fingerprinted")
	}
	if Fingerprint(cfg, "PARA", []uint64{1, 2}) == base {
		t.Fatal("seed set not fingerprinted")
	}
	// Seed order is canonicalized: the sweep covers a set.
	if Fingerprint(cfg, "PARA", []uint64{3, 1, 2}) != base {
		t.Fatal("seed order changed the fingerprint")
	}
	// FactoryLabel stands in for the uncomparable Factory func.
	c3 := cfg
	c3.FactoryLabel = "hist=64"
	if Fingerprint(c3, "PARA", seeds) == base {
		t.Fatal("factory label not fingerprinted")
	}
}

func TestRunnerResumeSkipsCompletedSeeds(t *testing.T) {
	ck := newTestCheckpoint(t)
	var calls atomic.Int64
	mkRunner := func() *Runner {
		r := NewRunner()
		r.Checkpoint = ck
		r.Config.runFn = func(_ context.Context, c Config, _ string) (Result, error) {
			calls.Add(1)
			return Result{Seed: c.Seed, Flips: int(c.Seed), TotalActs: 10}, nil
		}
		return r
	}
	cfg := fastConfig()
	seeds := Seeds(1, 6)

	first, runErrs, err := mkRunner().RunSeeds(context.Background(), cfg, "PARA", seeds)
	if err != nil || len(runErrs) != 0 {
		t.Fatalf("err=%v runErrs=%v", err, runErrs)
	}
	if calls.Load() != int64(len(seeds)) {
		t.Fatalf("first pass ran %d sims, want %d", calls.Load(), len(seeds))
	}

	// Second pass over the same checkpoint re-runs nothing and reproduces
	// the summary exactly.
	second, runErrs, err := mkRunner().RunSeeds(context.Background(), cfg, "PARA", seeds)
	if err != nil || len(runErrs) != 0 {
		t.Fatalf("resume: err=%v runErrs=%v", err, runErrs)
	}
	if calls.Load() != int64(len(seeds)) {
		t.Fatalf("resume re-ran sims: %d calls total", calls.Load())
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("resumed summary diverged:\nfirst  %+v\nsecond %+v", first, second)
	}
}

func TestRunnerResumeAfterKillByteIdentical(t *testing.T) {
	// A sweep killed partway (cancellation) leaves its completed seeds in
	// the checkpoint; resuming finishes the rest, and the final summary is
	// identical to an uninterrupted run.
	cfg := fastConfig()
	seeds := Seeds(11, 6)
	path := filepath.Join(t.TempDir(), "ck.json")

	simulate := func(_ context.Context, c Config, _ string) (Result, error) {
		return Result{Seed: c.Seed, Flips: int(c.Seed % 3), TotalActs: 100, ExtraActs: c.Seed % 7}, nil
	}

	// Uninterrupted reference.
	ref := NewRunner()
	ref.Config.runFn = simulate
	want, _, err := ref.RunSeeds(context.Background(), cfg, "PARA", seeds)
	if err != nil {
		t.Fatal(err)
	}

	// Pass 1: cancel after three seeds complete.
	ck1, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	killed := NewRunner()
	killed.Config.Workers = 1
	killed.Checkpoint = ck1
	killed.Config.runFn = func(ctx context.Context, c Config, tech string) (Result, error) {
		if done.Add(1) > 3 {
			cancel()
			return Result{}, ctx.Err()
		}
		return simulate(ctx, c, tech)
	}
	_, runErrs, err := killed.RunSeeds(ctx, cfg, "PARA", seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(runErrs) == 0 {
		t.Fatal("killed sweep reported no failures")
	}

	// Pass 2: a fresh process resumes from the file on disk.
	ck2, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var resumed atomic.Int64
	res := NewRunner()
	res.Checkpoint = ck2
	res.Config.runFn = func(ctx context.Context, c Config, tech string) (Result, error) {
		resumed.Add(1)
		return simulate(ctx, c, tech)
	}
	got, runErrs, err := res.RunSeeds(context.Background(), cfg, "PARA", seeds)
	if err != nil || len(runErrs) != 0 {
		t.Fatalf("resume: err=%v runErrs=%v", err, runErrs)
	}
	if n := resumed.Load(); n == 0 || n >= int64(len(seeds)) {
		t.Fatalf("resume ran %d seeds, want 0 < n < %d", n, len(seeds))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed summary != uninterrupted summary:\n got %+v\nwant %+v", got, want)
	}
}

func TestRunnerCheckpointRealSimulation(t *testing.T) {
	// Checkpointed results survive the JSON round trip with full fidelity
	// for a real simulation (all Result fields are exported).
	cfg := fastConfig()
	seeds := Seeds(21, 2)
	path := filepath.Join(t.TempDir(), "ck.json")

	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner()
	r.Checkpoint = ck
	want, runErrs, err := r.RunSeeds(context.Background(), cfg, "PARA", seeds)
	if err != nil || len(runErrs) != 0 {
		t.Fatalf("err=%v runErrs=%v", err, runErrs)
	}

	ck2, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner()
	r2.Checkpoint = ck2
	r2.Config.runFn = func(context.Context, Config, string) (Result, error) {
		return Result{}, errors.New("must not re-run")
	}
	got, runErrs, err := r2.RunSeeds(context.Background(), cfg, "PARA", seeds)
	if err != nil || len(runErrs) != 0 {
		t.Fatalf("resume: err=%v runErrs=%v", err, runErrs)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-tripped summary diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestRunnerUnwritableCheckpointSurfaces(t *testing.T) {
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if f, err := os.CreateTemp(dir, "probe"); err == nil {
		// Running as root (CI containers): read-only dirs aren't enforced.
		f.Close()
		t.Skip("directory permissions not enforced for this user")
	}
	ck, err := LoadCheckpoint(filepath.Join(dir, "ck.json"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner()
	r.Checkpoint = ck
	r.Config.runFn = func(_ context.Context, c Config, _ string) (Result, error) {
		return Result{Seed: c.Seed}, nil
	}
	if _, _, err := r.RunSeeds(context.Background(), fastConfig(), "PARA", []uint64{1}); err == nil {
		t.Fatal("unwritable checkpoint directory not surfaced")
	}
}

func TestCheckpointFlushEvery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ck.FlushEvery = 3
	for s := uint64(1); s <= 2; s++ {
		if err := ck.record("fp", s, Result{Seed: s}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("checkpoint flushed before FlushEvery results accumulated")
	}
	if err := ck.record("fp", 3, Result{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint missing after FlushEvery results: %v", err)
	}
	// Flush is idempotent and cheap when clean.
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerDeadlinePropagation(t *testing.T) {
	// Per-run timeouts flow through the checkpointed runner unchanged.
	r := NewRunner()
	r.Config.PerRunTimeout = time.Millisecond
	r.Config.runFn = func(ctx context.Context, _ Config, _ string) (Result, error) {
		<-ctx.Done()
		return Result{}, ctx.Err()
	}
	_, runErrs, err := r.RunSeeds(context.Background(), fastConfig(), "PARA", []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(runErrs) != 1 || !errors.Is(runErrs[0], ErrPermanent) {
		t.Fatalf("runErrs = %v, want one permanent timeout", runErrs)
	}
}

func TestFaultSweepGridShape(t *testing.T) {
	r := NewRunner()
	r.Config.runFn = func(_ context.Context, c Config, tech string) (Result, error) {
		return Result{Technique: tech, Seed: c.Seed, TotalActs: 100,
			Flips: int(uint64(c.Fault.Model)) /* distinguish models */}, nil
	}
	sc := FaultSweepConfig{
		Base:       fastConfig(),
		Techniques: []string{"PARA", "TWiCe"},
		Models:     allFaultModels(),
		Rates:      []float64{0.1, 0.2},
		Seeds:      []uint64{1, 2},
	}
	pts, err := FaultSweep(context.Background(), r, sc)
	if err != nil {
		t.Fatal(err)
	}
	// None contributes 1 point per technique, others 2 (rates).
	want := 2 * (1 + (len(sc.Models)-1)*2)
	if len(pts) != want {
		t.Fatalf("grid has %d points, want %d", len(pts), want)
	}
	if pts[0].Technique != "PARA" || pts[0].Rate != 0 {
		t.Fatalf("first point %+v, want PARA baseline", pts[0])
	}
}

func TestFaultSweepValidation(t *testing.T) {
	if _, err := FaultSweep(context.Background(), nil, FaultSweepConfig{}); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

func TestFaultSweepDeterministic(t *testing.T) {
	// Two identical sweeps over the real simulator must emit identical
	// tables (the acceptance criterion for the degradation experiment).
	if testing.Short() {
		t.Skip("real simulation sweep")
	}
	cfg := fastConfig()
	cfg.Windows = 1
	sc := FaultSweepConfig{
		Base:       cfg,
		Techniques: []string{"PARA"},
		Models:     allFaultModels()[:3],
		Rates:      []float64{0.01},
		Seeds:      []uint64{1},
		FaultSeed:  7,
	}
	a, err := FaultSweep(context.Background(), nil, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultSweep(context.Background(), nil, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault sweep not deterministic:\n a %+v\n b %+v", a, b)
	}
}

func BenchmarkRunSeedsCtx(b *testing.B) {
	cfg := fastConfig()
	seeds := Seeds(1, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunSeedsCtx(context.Background(), DefaultRunnerConfig(), cfg, "PARA", seeds); err != nil {
			b.Fatal(err)
		}
	}
}

// allFaultModels returns None followed by every injecting model, matching
// the presentation order of a degradation table.
func allFaultModels() []faults.Model {
	return append([]faults.Model{faults.None}, faults.Models()...)
}

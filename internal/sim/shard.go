package sim

import (
	"context"
	"strconv"
	"sync"

	"tivapromi/internal/obs"
	"tivapromi/internal/workload"
)

// shardChunk is the access-block size of the sharded driver: larger than
// the serial default so each handoff amortizes the cross-goroutine
// synchronization cost (one channel send per worker plus two WaitGroup
// operations per block).
const shardChunk = 4096

// shardMsg hands one filled block to every worker. Workers scan the whole
// block — the scan is cheap, the lane servicing is the work — and each
// services only the lanes of banks congruent to its index mod the shard
// count, maintaining its own interval cursor from (iv, rem).
type shardMsg struct {
	blk *workload.Block
	n   int
	iv  int // global refresh interval of the block's first access
	rem int // accesses remaining in interval iv at the block's start
	par int // which of the two blocks this is (double buffering)
}

// runSharded is the parallel driver: generation stays sequential on the
// calling goroutine (one stateful RNG defines the interleave), servicing
// fans out over `shards` workers with statically partitioned banks. Two
// blocks alternate: while the workers chew on one, the producer fills the
// other, and a WaitGroup per block parity gates reuse. Determinism is
// structural — each lane receives exactly the accesses of its bank, in
// stream order, with boundary positions fixed by access index — so no
// ordering decision ever depends on goroutine scheduling.
func (e *runEnv) runSharded(ctx context.Context, shards int) error {
	if shards > len(e.lanes) {
		shards = len(e.lanes)
	}
	hb := HeartbeatFrom(ctx)
	total := e.intervals * e.api

	var done [2]sync.WaitGroup
	var join sync.WaitGroup
	blocks := [2]*workload.Block{workload.NewBlock(shardChunk), workload.NewBlock(shardChunk)}
	chans := make([]chan shardMsg, shards)
	for w := 0; w < shards; w++ {
		chans[w] = make(chan shardMsg, 1)
	}
	join.Add(shards)
	for w := 0; w < shards; w++ {
		go func(self int, ch <-chan shardMsg) {
			defer join.Done()
			// One span covers the worker's whole life: spans and metrics
			// are taps on the side, never inputs — block handoff and lane
			// state are identical with tracing on or off.
			span := obs.StartSpan("lane-shard-worker", "sim",
				"worker", strconv.Itoa(self),
				"shards", strconv.Itoa(shards))
			defer span.End()
			// Worker-local catch-up gate (see runBlocks); local so workers
			// never share a cache line of cursors.
			laneIv := make([]int32, len(e.lanes))
			for i := range laneIv {
				laneIv[i] = -1
			}
			api, lanes := e.api, e.lanes
			for msg := range ch {
				n := msg.n
				banks, rows, flags := msg.blk.Bank[:n], msg.blk.Row[:n], msg.blk.Flag[:n]
				iv, rem := msg.iv, msg.rem
				for i := 0; i < n; i++ {
					if rem == 0 {
						iv++
						rem = api
					}
					rem--
					b := int(banks[i])
					if b%shards != self {
						continue
					}
					l := lanes[b]
					if laneIv[b] != int32(iv) {
						l.CatchUp(iv)
						laneIv[b] = int32(iv)
					}
					l.Access(rows[i], flags[i]&workload.FlagWrite != 0)
				}
				done[msg.par].Done()
			}
		}(w, chans[w])
	}

	shutdown := func() {
		done[0].Wait()
		done[1].Wait()
		for _, ch := range chans {
			close(ch)
		}
		join.Wait()
	}

	iv, rem := 0, e.api
	round := 0
	for produced := 0; produced < total; round++ {
		if err := ctx.Err(); err != nil {
			shutdown()
			return err
		}
		if hb != nil {
			hb.Tick()
		}
		par := round & 1
		if round >= 2 {
			// Both workers' passes over this block finished two rounds
			// ago; safe to overwrite.
			done[par].Wait()
		}
		n := total - produced
		if n > shardChunk {
			n = shardChunk
		}
		blk := blocks[par]
		e.st.fill(blk, n)
		done[par].Add(shards)
		msg := shardMsg{blk: blk, n: n, iv: iv, rem: rem, par: par}
		for _, ch := range chans {
			ch <- msg
		}
		// Advance the interval cursor past the block just handed out.
		k := rem
		if k > n {
			k = n
		}
		rem -= k
		for left := n - k; left > 0; {
			iv++
			k = e.api
			if k > left {
				k = left
			}
			rem = e.api - k
			left -= k
		}
		produced += n
	}
	shutdown()
	e.finish()
	return nil
}

package sim

import (
	"context"
	"testing"

	"tivapromi/internal/dram"
	"tivapromi/internal/mitigation"
)

func TestVulnerabilityColumnMatchesTableIII(t *testing.T) {
	// The paper's Table III: PARA, MRLoc and LiPRoMi are vulnerable; the
	// other six are not.
	if testing.Short() {
		t.Skip("vulnerability probes are slow; skipped in -short mode")
	}
	p := dram.PaperParams()
	want := map[string]bool{
		"ProHit": false, "MRLoc": true, "PARA": true,
		"TWiCe": false, "CRA": false,
		"CaPRoMi": false, "LiPRoMi": true, "LoPRoMi": false, "LoLiPRoMi": false,
	}
	reports, err := AnalyzeAll(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 9 {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, r := range reports {
		if r.Vulnerable != want[r.Technique] {
			t.Errorf("%s vulnerable = %v (%s), Table III says %v",
				r.Technique, r.Vulnerable, r.Reason, want[r.Technique])
		}
	}
}

func TestFloodSurvivalAnalytics(t *testing.T) {
	p := dram.PaperParams()
	li, err := floodSurvival(context.Background(), "LiPRoMi", p, 1)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := floodSurvival(context.Background(), "LoPRoMi", p, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 2 dominates Eq. 1, so the logarithmic variant's survival must
	// be strictly smaller; only the linear one crosses the limit.
	if lo >= li {
		t.Fatalf("LoPRoMi survival %g not below LiPRoMi %g", lo, li)
	}
	if li <= SurvivalLimit {
		t.Fatalf("LiPRoMi survival %g under the limit; the Section III-A weakness vanished", li)
	}
	if lo > SurvivalLimit {
		t.Fatalf("LoPRoMi survival %g above the limit", lo)
	}
	para, err := floodSurvival(context.Background(), "PARA", p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if para > 1e-10 {
		t.Fatalf("PARA flooding survival %g should be negligible", para)
	}
}

func TestRotationProbeEscalationFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("rotation probes are slow; skipped in -short mode")
	}
	p := dram.PaperParams()
	for name, wantNonEsc := range map[string]bool{
		"PARA": true, "MRLoc": true, "TWiCe": false, "LiPRoMi": false,
	} {
		_, nonEsc, err := rotationProbe(context.Background(), name, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if nonEsc != wantNonEsc {
			t.Errorf("%s non-escalating = %v, want %v", name, nonEsc, wantNonEsc)
		}
	}
}

func TestCountProtections(t *testing.T) {
	victims := map[int]bool{100: true}
	check := func(k mitigation.CommandKind, row int, side int8, want int) {
		t.Helper()
		got := countProtections([]mitigation.Command{{Kind: k, Row: row, Side: side}}, victims)
		if got != want {
			t.Errorf("kind %v row %d side %d: %d protections, want %d", k, row, side, got, want)
		}
	}
	check(mitigation.ActN, 99, 0, 1)     // act_n on aggressor 99 protects 100
	check(mitigation.ActN, 101, 0, 1)    // act_n on aggressor 101 protects 100
	check(mitigation.ActN, 100, 0, 0)    // act_n on the victim protects 99/101
	check(mitigation.ActNOne, 99, 1, 1)  // one-sided +1 from 99 hits 100
	check(mitigation.ActNOne, 99, -1, 0) // one-sided -1 from 99 hits 98
	check(mitigation.RefreshRow, 100, 0, 1)
	check(mitigation.RefreshRow, 99, 0, 0)
}

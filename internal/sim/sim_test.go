package sim

import (
	"testing"

	"tivapromi/internal/dram"
)

// fastConfig keeps harness tests quick: one window, small device.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Windows = 1
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Windows = 0
	if bad.Validate() == nil {
		t.Fatal("zero windows accepted")
	}
	bad = DefaultConfig()
	bad.AttackShare = 1.5
	if bad.Validate() == nil {
		t.Fatal("share > 1 accepted")
	}
	bad = DefaultConfig()
	bad.AttackBanks = []int{99}
	if bad.Validate() == nil {
		t.Fatal("out-of-range attack bank accepted")
	}
}

func TestPolicyKindString(t *testing.T) {
	want := map[PolicyKind]string{
		PolicyNeighbors:     "neighbors",
		PolicyRemapped:      "neighbors-remapped",
		PolicyRandom:        "random",
		PolicyMaskedCounter: "counter+mask",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d -> %q, want %q", k, k.String(), s)
		}
	}
	if len(Policies()) != 4 {
		t.Fatal("Policies() incomplete")
	}
}

func TestUnmitigatedAttackFlips(t *testing.T) {
	// Sustained two-aggressor hammering flips within a single window.
	cfg := fastConfig()
	cfg.MinAggressors, cfg.MaxAggressors = 2, 2
	r, err := Run(cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Technique != "none" {
		t.Fatalf("technique = %q", r.Technique)
	}
	if r.Flips == 0 {
		t.Fatal("unmitigated attack produced no flips; the attack substrate is broken")
	}
	if r.ExtraActs != 0 || r.OverheadPct != 0 {
		t.Fatal("unmitigated run reported mitigation activity")
	}
}

func TestEveryTechniquePreventsFlips(t *testing.T) {
	// Sustained two-aggressor hammering: dangerous enough that even the
	// counter-based techniques must act within one window.
	cfg := fastConfig()
	cfg.MinAggressors, cfg.MaxAggressors = 2, 2
	for _, name := range TechniqueNames() {
		r, err := Run(cfg, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Flips != 0 {
			t.Errorf("%s allowed %d flips", name, r.Flips)
		}
		if r.ExtraActs == 0 {
			t.Errorf("%s issued no extra activations under attack", name)
		}
	}
}

func TestRunUnknownTechnique(t *testing.T) {
	if _, err := Run(fastConfig(), "Nonsense"); err == nil {
		t.Fatal("unknown technique accepted")
	}
}

func TestRunDeterministicInSeed(t *testing.T) {
	cfg := fastConfig()
	a, err := Run(cfg, "LiPRoMi")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, "LiPRoMi")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestTraceStatisticsMatchPaper(t *testing.T) {
	// The paper reports ≈40 activations per refresh interval on average
	// and a ceiling of 165.
	r, err := Run(fastConfig(), "")
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgActsPerInterval < 25 || r.AvgActsPerInterval > 60 {
		t.Errorf("avg acts/interval = %.1f, want ≈40", r.AvgActsPerInterval)
	}
	if r.MaxActsPerInterval > 165 {
		t.Errorf("max acts/interval = %d exceeds the DDR4 ceiling", r.MaxActsPerInterval)
	}
}

func TestOverheadOrderingMatchesPaper(t *testing.T) {
	// The load-bearing shape of Table III / Fig. 4:
	// counters < TiVaPRoMi < PARA <= MRLoc < ProHit.
	cfg := fastConfig()
	cfg.Windows = 2
	overhead := map[string]float64{}
	for _, name := range TechniqueNames() {
		sum, err := RunSeeds(cfg, name, Seeds(10, 3))
		if err != nil {
			t.Fatal(err)
		}
		overhead[name] = sum.Overhead.Mean()
	}
	for _, tiva := range []string{"LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"} {
		if overhead[tiva] >= overhead["PARA"] {
			t.Errorf("%s overhead %.4f not below PARA %.4f", tiva, overhead[tiva], overhead["PARA"])
		}
		if overhead[tiva] <= overhead["TWiCe"] {
			t.Errorf("%s overhead %.4f below TWiCe %.4f; counters must win", tiva, overhead[tiva], overhead["TWiCe"])
		}
	}
	if overhead["ProHit"] <= overhead["PARA"] {
		t.Error("ProHit should have the highest probabilistic overhead")
	}
	if overhead["MRLoc"] < overhead["PARA"]*0.9 {
		t.Error("MRLoc overhead should be on par with or above PARA")
	}
	if overhead["LiPRoMi"] >= overhead["LoPRoMi"] {
		t.Error("linear weighting must produce fewer extra activations than logarithmic")
	}
}

func TestFPRZeroForCounters(t *testing.T) {
	cfg := fastConfig()
	for _, name := range []string{"TWiCe", "CRA"} {
		r, err := Run(cfg, name)
		if err != nil {
			t.Fatal(err)
		}
		if r.FalseActs != 0 {
			t.Errorf("%s produced %d false-positive commands", name, r.FalseActs)
		}
	}
}

func TestPARAOverheadMatchesProbability(t *testing.T) {
	// PARA's overhead is its probability by construction: ≈0.098%.
	sum, err := RunSeeds(fastConfig(), "PARA", Seeds(50, 4))
	if err != nil {
		t.Fatal(err)
	}
	m := sum.Overhead.Mean()
	if m < 0.085 || m > 0.115 {
		t.Fatalf("PARA overhead %.4f%%, want ≈0.098%%", m)
	}
}

func TestRunSeedsAggregates(t *testing.T) {
	cfg := fastConfig()
	sum, err := RunSeeds(cfg, "PARA", Seeds(7, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Runs) != 3 {
		t.Fatalf("runs = %d", len(sum.Runs))
	}
	if sum.Overhead.N() != 3 {
		t.Fatalf("overhead samples = %d", sum.Overhead.N())
	}
	if sum.Technique != "PARA" {
		t.Fatalf("technique = %q", sum.Technique)
	}
	if _, err := RunSeeds(cfg, "PARA", nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

func TestSeedsDeterministicAndDistinct(t *testing.T) {
	a := Seeds(1, 5)
	b := Seeds(1, 5)
	seen := map[uint64]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Seeds not deterministic")
		}
		if seen[a[i]] {
			t.Fatal("duplicate seed")
		}
		seen[a[i]] = true
	}
}

func TestRefreshPolicyInvariance(t *testing.T) {
	// §IV: no significant change across the four refresh-address
	// policies for TiVaPRoMi.
	cfg := fastConfig()
	var base float64
	for i, pol := range Policies() {
		c := cfg
		c.Policy = pol
		sum, err := RunSeeds(c, "LoLiPRoMi", Seeds(20, 3))
		if err != nil {
			t.Fatal(err)
		}
		if sum.TotalFlips != 0 {
			t.Fatalf("policy %v: flips under LoLiPRoMi", pol)
		}
		m := sum.Overhead.Mean()
		if i == 0 {
			base = m
			continue
		}
		if m < base*0.5 || m > base*2.0 {
			t.Errorf("policy %v overhead %.4f diverges from neighbors %.4f", pol, m, base)
		}
	}
}

func TestRemappedDeviceStillProtectedByActN(t *testing.T) {
	// act_n resolves the internal mapping, so TiVaPRoMi protects a
	// remapped device.
	cfg := fastConfig()
	cfg.RemapSwaps = 32
	r, err := Run(cfg, "LoLiPRoMi")
	if err != nil {
		t.Fatal(err)
	}
	if r.Flips != 0 {
		t.Fatalf("remapped device flipped %d rows under LoLiPRoMi", r.Flips)
	}
}

func TestTargetDerivation(t *testing.T) {
	cfg := DefaultConfig()
	tgt := cfg.Target()
	if tgt.Banks != cfg.Params.Banks || tgt.RefInt != cfg.Params.RefInt ||
		tgt.RowsPerBank != cfg.Params.RowsPerBank ||
		tgt.FlipThreshold != cfg.Params.FlipThreshold {
		t.Fatalf("target %+v does not mirror params", tgt)
	}
}

func TestNoAttackNoFalsePositiveDenominator(t *testing.T) {
	// Without an attacker every extra activation is a false positive by
	// definition; the run must still work.
	cfg := fastConfig()
	cfg.AttackBanks = nil
	r, err := Run(cfg, "PARA")
	if err != nil {
		t.Fatal(err)
	}
	if r.Flips != 0 {
		t.Fatal("benign workload flipped rows")
	}
	if r.ExtraActs != r.FalseActs {
		t.Fatalf("without attacker, extra (%d) must equal false (%d)", r.ExtraActs, r.FalseActs)
	}
}

func TestPaperParamsRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale smoke test skipped in -short mode")
	}
	cfg := DefaultConfig()
	cfg.Params = dram.PaperParams()
	cfg.Windows = 1
	cfg.AttackBanks = []int{1, 3}
	r, err := Run(cfg, "LoLiPRoMi")
	if err != nil {
		t.Fatal(err)
	}
	if r.Flips != 0 {
		t.Fatalf("paper-scale LoLiPRoMi flipped %d", r.Flips)
	}
}

package sim

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunSeedsDelegatesToHardenedPool verifies the satellite contract of
// the campaign refactor: the package-level RunSeeds is a thin delegate
// of RunSeedsCtx, and its aggregation is byte-for-byte the sequential
// seed-order Summarize — Welford means and standard deviations are
// order-sensitive, so exact equality proves the pool aggregates in seed
// order, not completion order.
func TestRunSeedsDelegatesToHardenedPool(t *testing.T) {
	cfg := fastConfig()
	seeds := Seeds(42, 4)

	var sequential []Result
	for _, s := range seeds {
		c := cfg
		c.Seed = s
		r, err := Run(c, "PARA")
		if err != nil {
			t.Fatal(err)
		}
		sequential = append(sequential, r)
	}
	want := Summarize(sequential)

	got, err := RunSeeds(cfg, "PARA", seeds)
	if err != nil {
		t.Fatal(err)
	}
	if got.Overhead.Mean() != want.Overhead.Mean() ||
		got.Overhead.StdDev() != want.Overhead.StdDev() ||
		got.FPR.Mean() != want.FPR.Mean() ||
		got.FPR.StdDev() != want.FPR.StdDev() ||
		got.TotalFlips != want.TotalFlips ||
		got.TotalActs != want.TotalActs ||
		got.ExtraActs != want.ExtraActs {
		t.Fatalf("RunSeeds diverged from sequential seed-order aggregation:\n got %+v\nwant %+v", got, want)
	}
}

// TestRunnerConfigDoBoundsConcurrencyViaGate checks the campaign's
// admission gate: RunnerConfig.Do must never admit more work than the
// gate has slots, whatever the caller's goroutine count.
func TestRunnerConfigDoBoundsConcurrencyViaGate(t *testing.T) {
	rc := DefaultRunnerConfig()
	rc.Gate = make(chan struct{}, 2)

	var inFlight, peak int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := rc.Do(context.Background(), func(context.Context) error {
				n := atomic.AddInt32(&inFlight, 1)
				for {
					p := atomic.LoadInt32(&peak)
					if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
						break
					}
				}
				atomic.AddInt32(&inFlight, -1)
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if p := atomic.LoadInt32(&peak); p > 2 {
		t.Fatalf("gate of 2 admitted %d concurrent runs", p)
	}
}

// TestRunnerConfigDoCancelledContext checks that a canceled context is
// reported without running the function.
func TestRunnerConfigDoCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rc := DefaultRunnerConfig()
	rc.Gate = make(chan struct{}, 1)
	rc.Gate <- struct{}{} // gate full: acquisition must fall to ctx.Done
	ran := false
	err := rc.Do(ctx, func(context.Context) error { ran = true; return nil })
	if err == nil {
		t.Fatal("Do on a canceled context returned nil")
	}
	if ran {
		t.Fatal("Do ran the function despite cancellation")
	}
}

// TestRunSeedsCtxGateAdmitsAllSeeds ensures the gate only throttles —
// every seed still completes.
func TestRunSeedsCtxGateAdmitsAllSeeds(t *testing.T) {
	rc := DefaultRunnerConfig()
	rc.Gate = make(chan struct{}, 1)
	rc.Workers = 4
	cfg := fastConfig()
	sum, runErrs, err := RunSeedsCtx(context.Background(), rc, cfg, "PARA", Seeds(7, 3))
	if err != nil || len(runErrs) != 0 {
		t.Fatalf("err=%v runErrs=%v", err, runErrs)
	}
	if len(sum.Runs) != 3 {
		t.Fatalf("gated sweep completed %d of 3 seeds", len(sum.Runs))
	}
}

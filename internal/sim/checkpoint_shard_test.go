package sim

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
)

// shardBytes reads every shard file of a sharded checkpoint directory,
// keyed by file name.
func shardBytes(t *testing.T, dir string, shards int) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for i := 0; i < shards; i++ {
		name := shardFile(i)
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		out[name] = raw
	}
	return out
}

func TestShardedCheckpointRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	const shards = 8
	ck, err := LoadShardedCheckpoint(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Sharded() || ck.ShardCount() != shards {
		t.Fatalf("Sharded=%v ShardCount=%d", ck.Sharded(), ck.ShardCount())
	}
	// Spread entries over enough cell groups to touch several shards.
	want := make(map[string]Result)
	for i := 0; i < 20; i++ {
		fp := fmt.Sprintf("sweep-%02d", i)
		res := Result{Technique: "PARA", Seed: uint64(i), Flips: i, TotalActs: 100 + uint64(i)}
		if err := ck.record(fp, uint64(i), res); err != nil {
			t.Fatal(err)
		}
		want[fp] = res
	}
	if err := ck.PutProbe("probe-a", map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := ck.PutOutput("section-1", "rendered"); err != nil {
		t.Fatal(err)
	}
	if n := len(shardBytes(t, dir, shards)); n < 2 {
		t.Fatalf("expected entries spread over ≥2 shard files, got %d", n)
	}

	// A fresh load sees every entry.
	ck2, err := LoadShardedCheckpoint(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	if rep := ck2.LoadReport(); rep.Err != nil || rep.Entries != 22 {
		t.Fatalf("report = %+v", rep)
	}
	for fp, res := range want {
		got, ok := ck2.lookup(fp, res.Seed)
		if !ok || !reflect.DeepEqual(got, res) {
			t.Fatalf("lookup(%s) = %+v, %v", fp, got, ok)
		}
	}
	if _, ok := ck2.Probe("probe-a"); !ok {
		t.Fatal("probe lost")
	}
	if text, ok := ck2.Output("section-1"); !ok || text != "rendered" {
		t.Fatalf("output = %q, %v", text, ok)
	}
}

func TestShardedCheckpointAdoptsDiskCount(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	ck, err := LoadShardedCheckpoint(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Ensure shard 0 exists on disk so the count is discoverable. shardOf
	// is deterministic, so probe keys until one lands in shard 0.
	key := ""
	for i := 0; ; i++ {
		key = fmt.Sprintf("k%d", i)
		if shardOf(key, 8) == 0 {
			break
		}
	}
	if err := ck.record(key, 1, Result{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	// Reopening with a different configured count adopts the on-disk one:
	// entries must never scatter across two hash layouts.
	ck2, err := LoadShardedCheckpoint(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.ShardCount() != 8 {
		t.Fatalf("ShardCount = %d, want adopted 8", ck2.ShardCount())
	}
	if _, ok := ck2.lookup(key, 1); !ok {
		t.Fatal("entry lost across reopen")
	}
}

func TestShardedCheckpointFlushRewritesOnlyDirtyShards(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	const shards = 8
	ck, err := LoadShardedCheckpoint(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := ck.record(fmt.Sprintf("fp-%d", i), uint64(i), Result{Seed: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := shardBytes(t, dir, shards)
	// One more result in one cell group must rewrite exactly one shard.
	if err := ck.record("fp-0", 99, Result{Seed: 99}); err != nil {
		t.Fatal(err)
	}
	after := shardBytes(t, dir, shards)
	changed := 0
	for name, raw := range after {
		if !bytes.Equal(raw, before[name]) {
			changed++
		}
	}
	if changed != 1 {
		t.Fatalf("flush rewrote %d shards, want exactly 1", changed)
	}
}

func TestShardedCheckpointCorruptShardSalvagesOthers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	const shards = 4
	ck, err := LoadShardedCheckpoint(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := ck.record(fmt.Sprintf("fp-%d", i), uint64(i), Result{Seed: uint64(i), Flips: i}); err != nil {
			t.Fatal(err)
		}
	}
	files := shardBytes(t, dir, shards)
	if len(files) < 2 {
		t.Fatalf("need ≥2 shard files, got %d", len(files))
	}
	// Destroy one shard wholesale.
	var victim string
	for name := range files {
		victim = name
		break
	}
	if err := os.WriteFile(filepath.Join(dir, victim), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	ck2, err := LoadShardedCheckpoint(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	rep := ck2.LoadReport()
	if rep.Err == nil {
		t.Fatal("corrupt shard not reported")
	}
	if rep.Quarantined == "" {
		t.Fatal("corrupt shard not quarantined")
	}
	// Entries in intact shards survived.
	if rep.Entries == 0 || rep.Entries >= 12 {
		t.Fatalf("salvaged %d entries, want 0 < n < 12", rep.Entries)
	}
	// The rebuilt shard file parses cleanly on the next load.
	ck3, err := LoadShardedCheckpoint(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	if rep3 := ck3.LoadReport(); rep3.Err != nil {
		t.Fatalf("reload after salvage still damaged: %+v", rep3)
	}
}

func TestShardedCheckpointKillResumeByteIdentical(t *testing.T) {
	// The sharded layout must preserve the defining durability property:
	// a killed-and-resumed sweep converges to byte-identical shard files.
	cfg := fastConfig()
	seeds := Seeds(21, 8)
	const shards = 4

	simulate := func(_ context.Context, c Config, _ string) (Result, error) {
		return Result{Seed: c.Seed, Flips: int(c.Seed % 3), TotalActs: 100, ExtraActs: c.Seed % 7}, nil
	}
	run := func(dir string) Summary {
		ck, err := LoadShardedCheckpoint(dir, shards)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner()
		r.Checkpoint = ck
		r.Config.runFn = simulate
		sum, runErrs, err := r.RunSeeds(context.Background(), cfg, "PARA", seeds)
		if err != nil || len(runErrs) != 0 {
			t.Fatalf("err=%v runErrs=%v", err, runErrs)
		}
		return sum
	}

	// Uninterrupted reference directory.
	refDir := filepath.Join(t.TempDir(), "ref")
	want := run(refDir)

	// Killed directory: cancel after three seeds, then resume.
	killDir := filepath.Join(t.TempDir(), "killed")
	ck1, err := LoadShardedCheckpoint(killDir, shards)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	killed := NewRunner()
	killed.Config.Workers = 1
	killed.Checkpoint = ck1
	killed.Config.runFn = func(ctx context.Context, c Config, tech string) (Result, error) {
		if done.Add(1) > 3 {
			cancel()
			return Result{}, ctx.Err()
		}
		return simulate(ctx, c, tech)
	}
	if _, runErrs, err := killed.RunSeeds(ctx, cfg, "PARA", seeds); err != nil {
		t.Fatal(err)
	} else if len(runErrs) == 0 {
		t.Fatal("killed sweep reported no failures")
	}

	got := run(killDir)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed summary != uninterrupted summary:\n got %+v\nwant %+v", got, want)
	}
	refFiles := shardBytes(t, refDir, shards)
	killFiles := shardBytes(t, killDir, shards)
	if len(refFiles) == 0 || len(refFiles) != len(killFiles) {
		t.Fatalf("shard file sets differ: %d vs %d", len(refFiles), len(killFiles))
	}
	for name, raw := range refFiles {
		if !bytes.Equal(raw, killFiles[name]) {
			t.Fatalf("shard %s differs between uninterrupted and killed/resumed runs", name)
		}
	}
}

package sim

import (
	"math"

	"tivapromi/internal/core"
	"tivapromi/internal/dram"
)

// ThresholdPoint reports one technique's protection margin at one
// Row-Hammer flip threshold. The paper fixes 139 K (DDR3-era, [12]);
// newer devices flip at a small fraction of that, so the sweep shows
// which designs age well. Survival is the probability that a weight-aware
// maximum-rate flood reaches the threshold without the mitigation ever
// protecting the victims — the probe behind Table III's vulnerability
// column, evaluated across thresholds.
type ThresholdPoint struct {
	Technique string
	Threshold uint32
	// Survival is P(no protection within Threshold activations).
	// Deterministic counter techniques report 0 when their (rescaled)
	// trigger threshold fires in time and 1 when it cannot.
	Survival float64
	// Safe applies the Table III criterion at this threshold.
	Safe bool
}

// ThresholdSweep evaluates every paper technique at each flip threshold.
// Counter-based techniques are assumed re-provisioned for the target
// threshold (their trigger thresholds derive from it); the probabilistic
// techniques keep the paper's Pbase — which is exactly why their
// protection thins as thresholds drop.
func ThresholdSweep(p dram.Params, thresholds []uint32) []ThresholdPoint {
	var out []ThresholdPoint
	for _, th := range thresholds {
		pt := p
		pt.FlipThreshold = th
		for _, name := range TechniqueNames() {
			s := analyticSurvival(name, pt)
			out = append(out, ThresholdPoint{
				Technique: name,
				Threshold: th,
				Survival:  s,
				Safe:      s <= SurvivalLimit,
			})
		}
	}
	return out
}

// analyticSurvival mirrors floodSurvival's closed forms but covers all
// nine techniques so the sweep needs no Monte-Carlo:
//
//   - the TiVaPRoMi variants and PARA use their exact decision laws;
//   - TWiCe and CRA trigger deterministically at FlipThreshold/4, which a
//     flood always reaches first (survival 0);
//   - ProHit's deterministic per-interval refresh of a promoted victim
//     protects once the victim is promoted — expected within
//     1/(2·insertProb·promoteProb) activations, so survival is the
//     probability promotion never happens in Threshold/2 activations;
//   - MRLoc's victim is queue-resident under a focused flood with a
//     near-head recency weight, a constant per-activation probability.
func analyticSurvival(technique string, p dram.Params) float64 {
	rate := p.MaxActsPerRI
	threshold := float64(p.FlipThreshold)
	pbase := math.Exp2(-float64(core.ProbBits(p.RefInt)))
	intervals := int(threshold/float64(rate)) + 1

	perActSeries := func(weightAt func(j int) float64) float64 {
		ls, acts := 0.0, 0.0
		for j := 0; j < intervals; j++ {
			n := math.Min(float64(rate), threshold-acts)
			ls += n * math.Log1p(-math.Min(weightAt(j)*pbase, 1-1e-15))
			acts += n
		}
		return math.Exp(ls)
	}

	switch technique {
	case "LiPRoMi":
		return perActSeries(func(j int) float64 { return float64(j) })
	case "LoPRoMi", "LoLiPRoMi":
		return perActSeries(func(j int) float64 { return float64(core.LogWeight(j)) })
	case "CaPRoMi":
		ls := 0.0
		for j := 0; j < intervals; j++ {
			w := float64(rate) * float64(core.LogWeight(j))
			ls += math.Log1p(-math.Min(w*pbase, 1-1e-15))
		}
		return math.Exp(ls)
	case "PARA":
		perAct := float64(p.RefInt) * pbase / 2 // one-sided refresh
		return math.Exp(threshold * math.Log1p(-perAct))
	case "MRLoc":
		// Focused flood: the victim rides near the short queue's head;
		// weight ≈ 2*base*(pos+1)/(Q+1) with pos ≈ 2 of Q = 16.
		perAct := 2.0 * 4608 / math.Exp2(23) * 3 / 17
		return math.Exp(threshold * math.Log1p(-perAct))
	case "ProHit":
		// Promotion chain: insert (1/256) then promote (1/4); once hot,
		// the per-interval refresh is deterministic. Survival = no
		// promotion in the first half of the budget.
		perAct := (1.0 / 256) * (1.0 / 4)
		return math.Exp(threshold / 2 * math.Log1p(-perAct))
	case "TWiCe", "CRA":
		// Counting triggers deterministically at threshold/4 < threshold.
		return 0
	default:
		return math.NaN()
	}
}

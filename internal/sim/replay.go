package sim

import (
	"fmt"
	"io"

	"tivapromi/internal/dram"
	"tivapromi/internal/mitigation"
	"tivapromi/internal/trace"
)

// ReplayTrace drives a recorded activation trace through a device and a
// mitigation ("" for none) and returns the same metrics as Run, except
// that false-positive accounting is unavailable (a trace carries no
// attack ground truth). flipThreshold overrides the device's threshold;
// pass 0 for the DDR4 default of 139 K.
func ReplayTrace(r *trace.Reader, technique string, flipThreshold uint32) (Result, error) {
	h := r.Header()
	p := dram.PaperParams()
	p.Banks = h.Banks
	p.RowsPerBank = h.RowsPerBank
	p.RefInt = h.RefInt
	if flipThreshold != 0 {
		p.FlipThreshold = flipThreshold
	}
	if err := p.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: trace header: %w", err)
	}
	dev, err := dram.New(p, nil)
	if err != nil {
		return Result{}, err
	}
	var mit mitigation.Mitigator
	if technique != "" {
		factory, err := mitigation.Lookup(technique)
		if err != nil {
			return Result{}, err
		}
		mit = factory(mitigation.Target{
			Banks: p.Banks, RowsPerBank: p.RowsPerBank, RefInt: p.RefInt,
			FlipThreshold: p.FlipThreshold,
		}, 1)
	}

	res := Result{Technique: techniqueName(mit), Policy: dev.Policy().Name()}
	var cmds []mitigation.Command
	exec := func() {
		for _, cmd := range cmds {
			res.ExtraActs++
			switch cmd.Kind {
			case mitigation.ActN:
				dev.ActivateNeighbors(cmd.Bank, cmd.Row)
			case mitigation.ActNOne:
				dev.ActivateNeighbor(cmd.Bank, cmd.Row, int(cmd.Side))
			case mitigation.RefreshRow:
				dev.RefreshRow(cmd.Bank, cmd.Row)
			}
		}
		cmds = cmds[:0]
	}
	err = r.ForEach(func(ev trace.Event) error {
		switch ev.Kind {
		case trace.KindAct:
			dev.Activate(ev.Bank, ev.Row)
			if mit != nil {
				cmds = mit.OnActivate(ev.Bank, ev.Row, dev.IntervalInWindow(), cmds)
				exec()
			}
		case trace.KindIntervalEnd:
			if mit != nil {
				cmds = mit.OnRefreshInterval(dev.IntervalInWindow(), cmds)
				exec()
			}
			dev.AdvanceInterval()
			if mit != nil && dev.IntervalInWindow() == 0 {
				mit.OnNewWindow()
			}
		}
		return nil
	})
	if err != nil && err != io.EOF {
		return Result{}, err
	}
	ds := dev.Stats()
	res.TotalActs = ds.Activates
	if res.TotalActs > 0 {
		res.OverheadPct = 100 * float64(res.ExtraActs) / float64(res.TotalActs)
	}
	res.Flips = int(dev.FlipCount())
	if mit != nil {
		res.TableBytes = mit.TableBytesPerBank()
	}
	res.AvgActsPerInterval = ds.AvgActsPerInterval()
	res.MaxActsPerInterval = ds.MaxActsInIntv
	return res, nil
}

// RecordTrace runs the configured workload+attacker (without any
// mitigation) and writes the resulting activation trace — the equivalent
// of capturing a gem5 run for later replay. Unlike the lazy run drivers,
// the recorder fires every lane's refresh boundary eagerly at each
// interval crossing, so the trace carries exactly one IntervalEnd per
// global interval, placed after that interval's activations.
func RecordTrace(cfg Config, w *trace.Writer) error {
	env, err := prepareRun(cfg, "")
	if err != nil {
		return err
	}
	var werr error
	for b, l := range env.lanes {
		bank := b
		onInterval := func() {}
		if b == 0 {
			// One IntervalEnd per global interval; lane 0 fires first at
			// every eager catch-up below.
			onInterval = func() {
				if werr == nil {
					werr = w.WriteIntervalEnd()
				}
			}
		}
		l.Device().SetObserver(
			func(_, row int) {
				if werr == nil {
					werr = w.WriteAct(bank, row)
				}
			},
			onInterval,
		)
	}
	catchUpAll := func(iv int) {
		for _, l := range env.lanes {
			l.CatchUp(iv)
		}
	}
	total := env.intervals * env.api
	iv, rem := 0, env.api
	for i := 0; i < total; i++ {
		a, _ := env.st.gen()
		if rem == 0 {
			iv++
			rem = env.api
			catchUpAll(iv)
		}
		rem--
		env.lanes[a.Bank].Access(int32(a.Row), a.Write)
	}
	catchUpAll(env.intervals)
	if werr != nil {
		return werr
	}
	return w.Flush()
}

package sim

import (
	"context"
	"testing"

	"tivapromi/internal/faults"
)

// shardConfig widens shrunkenConfig to four banks so the shard sweep can
// exercise uneven partitions (4 banks over 3 workers) and the full
// one-lane-per-worker case.
func shardConfig() Config {
	cfg := shrunkenConfig()
	cfg.Params.Banks = 4
	cfg.AttackBanks = []int{1, 3}
	return cfg
}

// TestShardsMatchReference is the sharding-equivalence contract: for
// every shard count — serial fallback, even and uneven partitions, and
// one lane per worker — RunShardedCtx must produce the identical Result
// to the unbatched reference driver, for every registered technique plus
// an unprotected run, a non-default refresh policy, and a remapped
// device. Determinism is structural (each lane's state is a function of
// its own bank's access subsequence), so any divergence here means a
// lane accidentally read shared state.
func TestShardsMatchReference(t *testing.T) {
	type tcase struct {
		name      string
		technique string
		mutate    func(*Config)
	}
	cases := []tcase{
		{name: "unprotected", technique: ""},
		{name: "PARA-random-policy", technique: "PARA",
			mutate: func(c *Config) { c.Policy = PolicyRandom }},
		{name: "CaPRoMi-remapped", technique: "CaPRoMi",
			mutate: func(c *Config) { c.RemapSwaps = 8 }},
	}
	for _, tech := range TechniqueNames() {
		cases = append(cases, tcase{name: tech, technique: tech})
	}
	ctx := context.Background()
	shardCounts := []int{1, 2, 3, 4}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := shardConfig()
			if tc.mutate != nil {
				tc.mutate(&cfg)
			}
			want, err := RunReferenceCtx(ctx, cfg, tc.technique)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			for _, shards := range shardCounts {
				got, err := RunShardedCtx(ctx, cfg, tc.technique, shards)
				if err != nil {
					t.Fatalf("shards %d: %v", shards, err)
				}
				if got != want {
					t.Errorf("shards %d: result diverged from reference\n got: %+v\nwant: %+v",
						shards, got, want)
				}
			}
		})
	}
}

// TestShardedFaultPlansMatchReference pins shard invariance under every
// fault-injection pathway: per-access injector ticks (WeakCells), the
// Harness wrap (StateSEU), and the command filter (DropActN, DelayActN).
// Each lane owns its fault instrumentation with a bank-mixed seed, so the
// streams must not depend on how lanes are scheduled across workers.
func TestShardedFaultPlansMatchReference(t *testing.T) {
	plans := []faults.Plan{
		{Model: faults.WeakCells, Rate: 0.001, Seed: 7},
		{Model: faults.StateSEU, Rate: 0.0005, Seed: 11},
		{Model: faults.DropActN, Rate: 0.01, Seed: 13},
		{Model: faults.DelayActN, Rate: 0.01, Seed: 17},
	}
	ctx := context.Background()
	for _, plan := range plans {
		plan := plan
		t.Run(plan.Model.String(), func(t *testing.T) {
			t.Parallel()
			cfg := shardConfig()
			cfg.Fault = plan
			want, err := RunReferenceCtx(ctx, cfg, "LiPRoMi")
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			for _, shards := range []int{2, 4} {
				got, err := RunShardedCtx(ctx, cfg, "LiPRoMi", shards)
				if err != nil {
					t.Fatalf("shards %d: %v", shards, err)
				}
				if got != want {
					t.Errorf("shards %d with %v plan: result diverged\n got: %+v\nwant: %+v",
						shards, plan.Model, got, want)
				}
			}
		})
	}
}

// TestShardsClampToBanks pins that asking for more workers than banks is
// harmless: the count clamps and the result still matches.
func TestShardsClampToBanks(t *testing.T) {
	ctx := context.Background()
	cfg := shardConfig()
	want, err := RunShardedCtx(ctx, cfg, "PARA", cfg.Params.Banks)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunShardedCtx(ctx, cfg, "PARA", 64)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("oversubscribed shards diverged:\n%+v\n%+v", got, want)
	}
}

// TestDriversHonorCancellation replaces the cancellation coverage of the
// removed controller-level batch driver: every driver must notice a
// canceled context and return its error instead of a Result.
func TestDriversHonorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := shardConfig()
	if _, err := RunCtxBatch(ctx, cfg, "PARA", 0); err != context.Canceled {
		t.Errorf("block driver: err = %v, want context.Canceled", err)
	}
	if _, err := RunReferenceCtx(ctx, cfg, "PARA"); err != context.Canceled {
		t.Errorf("reference driver: err = %v, want context.Canceled", err)
	}
	if _, err := RunShardedCtx(ctx, cfg, "PARA", 2); err != context.Canceled {
		t.Errorf("sharded driver: err = %v, want context.Canceled", err)
	}
}

// TestRunnerConfigShards pins the runner plumbing: a sweep with Shards
// set aggregates the same Summary as the serial default.
func TestRunnerConfigShards(t *testing.T) {
	cfg := shardConfig()
	seeds := Seeds(3, 3)
	rcSerial := DefaultRunnerConfig()
	want, errsW, err := RunSeedsCtx(context.Background(), rcSerial, cfg, "LoPRoMi", seeds)
	if err != nil || len(errsW) > 0 {
		t.Fatalf("serial sweep: %v %v", err, errsW)
	}
	rcSharded := DefaultRunnerConfig()
	rcSharded.Shards = 2
	got, errsG, err := RunSeedsCtx(context.Background(), rcSharded, cfg, "LoPRoMi", seeds)
	if err != nil || len(errsG) > 0 {
		t.Fatalf("sharded sweep: %v %v", err, errsG)
	}
	if len(got.Runs) != len(want.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(got.Runs), len(want.Runs))
	}
	for i := range want.Runs {
		if got.Runs[i] != want.Runs[i] {
			t.Errorf("seed %d: sharded sweep diverged\n got: %+v\nwant: %+v",
				i, got.Runs[i], want.Runs[i])
		}
	}
}

package sim

import (
	"context"
	"testing"

	"tivapromi/internal/dram"
)

func TestExtensionTechniquesRegistered(t *testing.T) {
	for _, name := range ExtensionTechniques() {
		r, err := Run(fastConfig(), name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Flips != 0 {
			t.Errorf("%s flipped %d rows under the standard campaign", name, r.Flips)
		}
	}
}

func TestQuaPRoMiTradeOff(t *testing.T) {
	// The quadratic extension must undercut LiPRoMi's overhead (its
	// weights are below linear except at the window's end)...
	cfg := fastConfig()
	cfg.Windows = 2
	qua, err := RunSeeds(cfg, "QuaPRoMi", Seeds(70, 3))
	if err != nil {
		t.Fatal(err)
	}
	li, err := RunSeeds(cfg, "LiPRoMi", Seeds(70, 3))
	if err != nil {
		t.Fatal(err)
	}
	if qua.Overhead.Mean() >= li.Overhead.Mean() {
		t.Errorf("QuaPRoMi overhead %.4f not below LiPRoMi %.4f",
			qua.Overhead.Mean(), li.Overhead.Mean())
	}
	// ...at the price of a far worse flooding tail (the reason the paper
	// stops at logarithmic ramps).
	p := dram.PaperParams()
	quaSurv, err := floodSurvival(context.Background(), "QuaPRoMi", p, 1)
	if err != nil {
		t.Fatal(err)
	}
	liSurv, err := floodSurvival(context.Background(), "LiPRoMi", p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if quaSurv < 100*liSurv {
		t.Errorf("QuaPRoMi survival %.2e should dwarf LiPRoMi's %.2e", quaSurv, liSurv)
	}
}

func TestCATSaturationProbeCollapses(t *testing.T) {
	if testing.Short() {
		t.Skip("extension probes are slow; skipped in -short mode")
	}
	p := dram.PaperParams()
	ratio, err := saturationProbe(context.Background(), "CAT", p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ratio > RotationLimit {
		t.Fatalf("CAT saturation ratio %.2f; the tree-fill attack should collapse it", ratio)
	}
	// The counter techniques are untouched by the same pattern.
	twice, err := saturationProbe(context.Background(), "TWiCe", p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if twice < 0.5 {
		t.Fatalf("TWiCe saturation ratio %.2f; per-row counters should not saturate", twice)
	}
}

func TestDecoyProbeBehavior(t *testing.T) {
	if testing.Short() {
		t.Skip("extension probes are slow; skipped in -short mode")
	}
	// Stateless PARA cannot be starved by decoys; at its calibrated
	// (paper-matching) insertion rate ProHit also withstands them — an
	// earlier, hotter insertion rate made it starve, so the probe guards
	// the calibrated behavior.
	p := dram.PaperParams()
	for _, name := range []string{"PARA", "ProHit"} {
		ratio, err := decoyProbe(context.Background(), name, p, 7)
		if err != nil {
			t.Fatal(err)
		}
		if ratio < 0.5 {
			t.Fatalf("%s decoy ratio %.2f, expected resistance", name, ratio)
		}
	}
}

func TestAnalyzeExtensionClassifications(t *testing.T) {
	if testing.Short() {
		t.Skip("extension probes are slow; skipped in -short mode")
	}
	p := dram.PaperParams()
	want := map[string]bool{"CAT": true, "QuaPRoMi": true, "TRR": false}
	for name, vulnerable := range want {
		rep, err := AnalyzeExtension(name, p, 7)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Vulnerable != vulnerable {
			t.Errorf("%s vulnerable = %v (%s), want %v", name, rep.Vulnerable, rep.Reason, vulnerable)
		}
	}
}

package sim

import (
	"context"
	"fmt"

	"tivapromi/internal/faults"
)

// FaultPoint is one cell of a degradation table: one technique under one
// fault model at one rate, averaged over the sweep's seeds.
type FaultPoint struct {
	Technique   string
	Model       faults.Model
	Rate        float64
	Flips       float64 // mean bit flips per run
	OverheadPct float64 // mean act_n overhead (%)
	FPRPct      float64 // mean false-positive rate (%)
	Injected    float64 // mean state faults applied per run
	Dropped     float64 // mean mitigation commands dropped per run
	Delayed     float64 // mean mitigation commands delayed per run
	Errors      int     // seeds that failed (panic, timeout, cancellation)
}

// FaultSweepConfig describes one degradation campaign.
type FaultSweepConfig struct {
	// Base is the simulation configuration swept; its Fault field is
	// overwritten per point.
	Base Config
	// Techniques are the mitigations to degrade (registry names).
	Techniques []string
	// Models are the fault mechanisms to apply. A leading faults.None
	// yields the healthy baseline row.
	Models []faults.Model
	// Rates are the per-event fault probabilities swept for each model.
	Rates []float64
	// Seeds are the simulation seeds averaged per point.
	Seeds []uint64
	// FaultSeed derives the injector randomness (combined per run with
	// the simulation seed inside RunCtx, so every (sim seed, fault seed)
	// pair is bit-reproducible).
	FaultSeed uint64
}

// FaultCell names one cell of a degradation grid: one technique under
// one fault model at one rate.
type FaultCell struct {
	Technique string
	Model     faults.Model
	Rate      float64
}

// CellConfig returns the simulation configuration for one grid cell.
func (sc FaultSweepConfig) CellConfig(c FaultCell) Config {
	cfg := sc.Base
	cfg.Fault = faults.Plan{Model: c.Model, Rate: c.Rate, Seed: sc.FaultSeed}
	return cfg
}

// Cells enumerates the techniques × models × rates grid in deterministic
// row-major order (technique, then model, then rate). The None model
// contributes a single rate-0 baseline cell per technique regardless of
// the configured rates.
func (sc FaultSweepConfig) Cells() []FaultCell {
	rates := sc.Rates
	if len(rates) == 0 {
		rates = []float64{0}
	}
	var cells []FaultCell
	for _, tech := range sc.Techniques {
		for _, model := range sc.Models {
			r := rates
			if model == faults.None {
				r = []float64{0}
			}
			for _, rate := range r {
				cells = append(cells, FaultCell{Technique: tech, Model: model, Rate: rate})
			}
		}
	}
	return cells
}

// Validate reports a structurally unusable sweep configuration.
func (sc FaultSweepConfig) Validate() error {
	if len(sc.Techniques) == 0 || len(sc.Models) == 0 || len(sc.Seeds) == 0 {
		return fmt.Errorf("sim: fault sweep needs techniques, models and seeds")
	}
	return nil
}

// FaultSweep runs the full techniques × models × rates grid under the
// hardened runner and returns one FaultPoint per cell, in the order of
// Cells(). A nil runner uses NewRunner(). Library convenience; the
// experiment driver schedules the same cells in parallel through
// campaign.FaultsSpec.
func FaultSweep(ctx context.Context, r *Runner, sc FaultSweepConfig) ([]FaultPoint, error) {
	if r == nil {
		r = NewRunner()
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	var points []FaultPoint
	for _, cell := range sc.Cells() {
		sum, runErrs, err := r.RunSeeds(ctx, sc.CellConfig(cell), cell.Technique, sc.Seeds)
		if err != nil {
			return points, fmt.Errorf("sim: fault sweep %s/%s@%g: %w", cell.Technique, cell.Model, cell.Rate, err)
		}
		points = append(points, FaultPointOf(cell.Technique, cell.Model, cell.Rate, sum, len(runErrs)))
		if err := ctx.Err(); err != nil {
			return points, err
		}
	}
	return points, nil
}

// FaultPointOf converts one sweep summary into one degradation-table
// cell (exported so the campaign renderer can assemble points from
// independently scheduled cells).
func FaultPointOf(tech string, model faults.Model, rate float64, sum Summary, errs int) FaultPoint {
	n := float64(len(sum.Runs))
	mean := func(total uint64) float64 {
		if n == 0 {
			return 0
		}
		return float64(total) / n
	}
	return FaultPoint{
		Technique:   tech,
		Model:       model,
		Rate:        rate,
		Flips:       mean(uint64(sum.TotalFlips)),
		OverheadPct: sum.Overhead.Mean() * 100,
		FPRPct:      sum.FPR.Mean() * 100,
		Injected:    mean(sum.InjectedFaults),
		Dropped:     mean(sum.DroppedCmds),
		Delayed:     mean(sum.DelayedCmds),
		Errors:      errs,
	}
}

package sim

import (
	"context"
	"fmt"

	"tivapromi/internal/faults"
)

// FaultPoint is one cell of a degradation table: one technique under one
// fault model at one rate, averaged over the sweep's seeds.
type FaultPoint struct {
	Technique   string
	Model       faults.Model
	Rate        float64
	Flips       float64 // mean bit flips per run
	OverheadPct float64 // mean act_n overhead (%)
	FPRPct      float64 // mean false-positive rate (%)
	Injected    float64 // mean state faults applied per run
	Dropped     float64 // mean mitigation commands dropped per run
	Delayed     float64 // mean mitigation commands delayed per run
	Errors      int     // seeds that failed (panic, timeout, cancellation)
}

// FaultSweepConfig describes one degradation campaign.
type FaultSweepConfig struct {
	// Base is the simulation configuration swept; its Fault field is
	// overwritten per point.
	Base Config
	// Techniques are the mitigations to degrade (registry names).
	Techniques []string
	// Models are the fault mechanisms to apply. A leading faults.None
	// yields the healthy baseline row.
	Models []faults.Model
	// Rates are the per-event fault probabilities swept for each model.
	Rates []float64
	// Seeds are the simulation seeds averaged per point.
	Seeds []uint64
	// FaultSeed derives the injector randomness (combined per run with
	// the simulation seed inside RunCtx, so every (sim seed, fault seed)
	// pair is bit-reproducible).
	FaultSeed uint64
}

// FaultSweep runs the full techniques × models × rates grid under the
// hardened runner and returns one FaultPoint per cell, in deterministic
// row-major order (technique, then model, then rate). The None model
// contributes a single rate-0 baseline point per technique regardless of
// the configured rates. A nil runner uses NewRunner().
func FaultSweep(ctx context.Context, r *Runner, sc FaultSweepConfig) ([]FaultPoint, error) {
	if r == nil {
		r = NewRunner()
	}
	if len(sc.Techniques) == 0 || len(sc.Models) == 0 || len(sc.Seeds) == 0 {
		return nil, fmt.Errorf("sim: fault sweep needs techniques, models and seeds")
	}
	if len(sc.Rates) == 0 {
		sc.Rates = []float64{0}
	}
	var points []FaultPoint
	for _, tech := range sc.Techniques {
		for _, model := range sc.Models {
			rates := sc.Rates
			if model == faults.None {
				rates = []float64{0}
			}
			for _, rate := range rates {
				cfg := sc.Base
				cfg.Fault = faults.Plan{Model: model, Rate: rate, Seed: sc.FaultSeed}
				sum, runErrs, err := r.RunSeeds(ctx, cfg, tech, sc.Seeds)
				if err != nil {
					return points, fmt.Errorf("sim: fault sweep %s/%s@%g: %w", tech, model, rate, err)
				}
				points = append(points, faultPoint(tech, model, rate, sum, len(runErrs)))
				if err := ctx.Err(); err != nil {
					return points, err
				}
			}
		}
	}
	return points, nil
}

// faultPoint converts a sweep summary into one table cell.
func faultPoint(tech string, model faults.Model, rate float64, sum Summary, errs int) FaultPoint {
	n := float64(len(sum.Runs))
	mean := func(total uint64) float64 {
		if n == 0 {
			return 0
		}
		return float64(total) / n
	}
	return FaultPoint{
		Technique:   tech,
		Model:       model,
		Rate:        rate,
		Flips:       mean(uint64(sum.TotalFlips)),
		OverheadPct: sum.Overhead.Mean() * 100,
		FPRPct:      sum.FPR.Mean() * 100,
		Injected:    mean(sum.InjectedFaults),
		Dropped:     mean(sum.DroppedCmds),
		Delayed:     mean(sum.DelayedCmds),
		Errors:      errs,
	}
}

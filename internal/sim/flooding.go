package sim

import (
	"context"
	"fmt"

	"tivapromi/internal/dram"
	"tivapromi/internal/mitigation"
	"tivapromi/internal/stats"
)

// FloodResult reports the Section IV flooding experiment for one
// technique: an attacker floods act commands to a single row at the
// maximum DDR4 rate, starting right after the row's refresh (weight 0 —
// the adversarial phase for time-varying weights), and we measure how many
// activations pass before the mitigation first protects the row's
// neighbors.
type FloodResult struct {
	Technique string
	Trials    int
	// MedianActs / P90Acts summarize the acts-to-first-protection
	// distribution; Unprotected counts trials where no protection
	// happened within Cap activations.
	MedianActs  float64
	P90Acts     float64
	Unprotected int
	// SafeBound is the paper's 69 K at full scale: half the flip
	// threshold, accounting for both neighbors being aggressors.
	SafeBound uint64
	Cap       uint64
}

// AllSafe reports whether every trial protected the row before the safe
// bound.
func (f FloodResult) AllSafe() bool {
	return f.Unprotected == 0 && f.P90Acts <= float64(f.SafeBound)
}

// Flood runs the flooding experiment against a registry technique using
// the given device parameters (use dram.PaperParams for paper-scale
// numbers). rate is the per-interval activation rate (≤ MaxActsPerRI).
func Flood(technique string, p dram.Params, rate, trials int, seed uint64) (FloodResult, error) {
	return FloodCtx(context.Background(), technique, p, rate, trials, seed)
}

// FloodCtx is Flood with cooperative cancellation: the flood polls ctx at
// refresh-interval granularity, so an interrupted campaign abandons the
// probe promptly instead of finishing the in-flight trial set.
func FloodCtx(ctx context.Context, technique string, p dram.Params, rate, trials int, seed uint64) (FloodResult, error) {
	if rate <= 0 || rate > p.MaxActsPerRI {
		return FloodResult{}, fmt.Errorf("sim: flood rate %d out of (0, %d]", rate, p.MaxActsPerRI)
	}
	if trials <= 0 {
		return FloodResult{}, fmt.Errorf("sim: trials = %d", trials)
	}
	factory, err := mitigation.Lookup(technique)
	if err != nil {
		return FloodResult{}, err
	}
	res, err := floodWithFactory(ctx, factory, p, rate, trials, seed)
	res.Technique = technique
	return res, err
}

// floodWithFactory is FloodCtx for an explicit factory (ablation studies
// run configurations that are not in the registry).
func floodWithFactory(ctx context.Context, factory mitigation.Factory, p dram.Params, rate, trials int, seed uint64) (FloodResult, error) {
	target := mitigation.Target{
		Banks: 1, RowsPerBank: p.RowsPerBank, RefInt: p.RefInt,
		FlipThreshold: p.FlipThreshold,
	}
	res := FloodResult{
		Trials:    trials,
		SafeBound: uint64(p.FlipThreshold) / 2,
		Cap:       uint64(p.FlipThreshold) * 2,
	}
	row := p.RowsPerBank / 2
	fr := p.RefreshIntervalOf(row)
	firsts := make([]float64, 0, trials)
	var cmds []mitigation.Command
	for trial := 0; trial < trials; trial++ {
		m := factory(target, seed+uint64(trial)*7919)
		acts := uint64(0)
		protectedAt := uint64(0)
	flood:
		// Start exactly at the row's refresh slot: weight 0, the phase a
		// weight-aware attacker would choose.
		for interval := 0; ; interval++ {
			if interval&0x3f == 0 {
				if err := ctx.Err(); err != nil {
					return res, err
				}
			}
			iv := (fr + interval) % p.RefInt
			for i := 0; i < rate; i++ {
				acts++
				cmds = m.OnActivate(0, row, iv, cmds[:0])
				if protects(cmds, row) {
					protectedAt = acts
					break flood
				}
			}
			cmds = m.OnRefreshInterval(iv, cmds[:0])
			if protects(cmds, row) {
				protectedAt = acts
				break flood
			}
			if iv == p.RefInt-1 {
				m.OnNewWindow()
			}
			if acts >= res.Cap {
				break
			}
		}
		if protectedAt == 0 {
			res.Unprotected++
			continue
		}
		firsts = append(firsts, float64(protectedAt))
	}
	if len(firsts) > 0 {
		res.MedianActs = stats.Median(firsts)
		res.P90Acts = stats.Percentile(firsts, 90)
	}
	return res, nil
}

// protects reports whether any command in cmds restores the potential
// victims of aggressor row (an act_n on the row itself, a one-sided
// neighbor activation, or a direct refresh of row±1).
func protects(cmds []mitigation.Command, row int) bool {
	for _, c := range cmds {
		switch c.Kind {
		case mitigation.ActN, mitigation.ActNOne:
			if c.Row == row {
				return true
			}
		case mitigation.RefreshRow:
			if c.Row == row-1 || c.Row == row+1 {
				return true
			}
		}
	}
	return false
}

// FloodAll runs the flooding experiment for every technique in Table III
// order. Library convenience; the experiment driver runs the same cells
// in parallel through campaign.FloodingSpec instead.
func FloodAll(p dram.Params, rate, trials int, seed uint64) ([]FloodResult, error) {
	var out []FloodResult
	for _, name := range TechniqueNames() {
		r, err := Flood(name, p, rate, trials, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

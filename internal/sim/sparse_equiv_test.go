package sim

import (
	"context"
	"testing"

	"tivapromi/internal/dram"
	"tivapromi/internal/faults"
)

// TestSparseMatchesDenseResults is the representation-equivalence
// contract: forcing the lazily-paged sparse state must produce the
// identical Result to the dense arrays for the same configuration, across
// techniques, refresh policies, row remapping, and fault plans. The
// sparse store is an encoding of the same counters, not a model change,
// so any divergence is a bug in the paging.
func TestSparseMatchesDenseResults(t *testing.T) {
	cases := []struct {
		name      string
		technique string
		mutate    func(*Config)
	}{
		{name: "unprotected", technique: ""},
		{name: "PARA", technique: "PARA"},
		{name: "TWiCe", technique: "TWiCe"},
		{name: "LiPRoMi", technique: "LiPRoMi"},
		{name: "CaPRoMi-random-policy", technique: "CaPRoMi",
			mutate: func(c *Config) { c.Policy = PolicyRandom }},
		{name: "LoPRoMi-remapped", technique: "LoPRoMi",
			mutate: func(c *Config) { c.RemapSwaps = 8 }},
		{name: "PARA-weak-cells", technique: "PARA",
			mutate: func(c *Config) {
				c.Fault = faults.Plan{Model: faults.WeakCells, Rate: 0.001, Seed: 7}
			}},
		{name: "TWiCe-state-seu", technique: "TWiCe",
			mutate: func(c *Config) {
				c.Fault = faults.Plan{Model: faults.StateSEU, Rate: 0.0005, Seed: 11}
			}},
	}
	ctx := context.Background()
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := shrunkenConfig()
			if tc.mutate != nil {
				tc.mutate(&cfg)
			}
			dense := cfg
			dense.Params.State = dram.StateDense
			sparse := cfg
			sparse.Params.State = dram.StateSparse

			want, err := RunCtx(ctx, dense, tc.technique)
			if err != nil {
				t.Fatalf("dense: %v", err)
			}
			got, err := RunCtx(ctx, sparse, tc.technique)
			if err != nil {
				t.Fatalf("sparse: %v", err)
			}
			if got != want {
				t.Errorf("sparse result diverged from dense\n got: %+v\nwant: %+v", got, want)
			}
		})
	}
}

// TestSparseMatchesDenseAcrossSeeds widens the property over seeds and
// the two stock seed-scale geometries with the default attacker mix, the
// configuration space campaigns actually sweep.
func TestSparseMatchesDenseAcrossSeeds(t *testing.T) {
	ctx := context.Background()
	for _, base := range []Config{shrunkenConfig(), DefaultConfig()} {
		base.Windows = 1
		for _, seed := range []uint64{1, 2, 0xdeadbeef} {
			cfg := base
			cfg.Seed = seed
			dense := cfg
			dense.Params.State = dram.StateDense
			sparse := cfg
			sparse.Params.State = dram.StateSparse
			want, err := RunCtx(ctx, dense, "PARA")
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunCtx(ctx, sparse, "PARA")
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("seed %#x: sparse diverged\n got: %+v\nwant: %+v", seed, got, want)
			}
		}
	}
}

package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tivapromi/internal/obs"
)

// ErrPermanent marks failures that retrying cannot fix: invalid
// configurations, unknown techniques, per-run deadline overruns of a
// deterministic simulation. errors.Is(err, ErrPermanent) reports whether
// an error carries the mark.
var ErrPermanent = errors.New("permanent failure")

// permanent marks err as non-retriable.
func permanent(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrPermanent, err)
}

// PanicError is a worker panic converted into an error, preserving the
// panic value and the goroutine stack at recovery time.
type PanicError struct {
	Value any
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// RunError records one seed's failure inside a sweep. A sweep with
// RunErrors still carries every completed seed's result — partial results
// survive worker failures.
type RunError struct {
	Seed     uint64
	Attempts int // runs attempted for this seed (≥ 1)
	Err      error
}

// Error implements error.
func (e *RunError) Error() string {
	return fmt.Sprintf("sim: seed %#x failed after %d attempt(s): %v", e.Seed, e.Attempts, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// RunnerConfig tunes the hardened seed-sweep runner.
type RunnerConfig struct {
	// Workers bounds the worker pool (≤ 0 means GOMAXPROCS). The old
	// runner launched one bare goroutine per seed; a paper-scale sweep
	// over hundreds of seeds would stampede the scheduler and defeat the
	// per-run memory locality the Device model relies on.
	Workers int
	// Shards > 1 runs every simulation through the bank-sharded driver
	// (RunShardedCtx) with that many servicing goroutines. Results are
	// byte-identical at any shard count, so the knob is purely a
	// latency/throughput trade: intra-run sharding helps when a campaign
	// has fewer concurrent runs than cores, and it multiplies with
	// Workers otherwise. 0 or 1 selects the serial block driver.
	Shards int
	// PerRunTimeout is the deadline for one simulation (0 = none). A
	// deterministic run that overruns it is recorded as a permanent
	// RunError — retrying would overrun again.
	PerRunTimeout time.Duration
	// Retries is the number of re-attempts for transient failures (a
	// worker panic, a stall-watchdog cancellation, or an error marked
	// transient by a custom factory). Permanent and context errors are
	// never retried.
	Retries int
	// Backoff is the base delay before a retry (default 10ms). The
	// actual sleeps follow a seeded decorrelated-jitter schedule (see
	// RetryJitter): reproducible for a given seed, but desynchronized
	// across workers so retry storms don't beat in lockstep. Sleeps are
	// context-aware: cancellation cuts them short.
	Backoff time.Duration
	// MaxBackoff caps one retry sleep (0 = 64 × Backoff).
	MaxBackoff time.Duration
	// JitterSeed perturbs the per-seed retry-jitter streams; the
	// default (0) is fine — each simulated seed already gets its own
	// stream — but campaigns that want globally distinct schedules can
	// set it.
	JitterSeed uint64

	// StallTimeout arms the stall watchdog (0 = disabled): a run whose
	// progress heartbeat (see Heartbeat) goes silent for longer than
	// this is cancelled and classified as ErrStalled — separately from
	// a PerRunTimeout overrun, which is permanent. Stalls are usually
	// scheduling wedges, so they are retried as transient failures.
	// Workloads that never tick are exempt (the watchdog only judges
	// runs that demonstrated heartbeat cooperation).
	StallTimeout time.Duration

	// Gate optionally bounds concurrency across several sweeps sharing
	// the same channel: every run (and every RunnerConfig.Do probe)
	// holds one token for its duration. The campaign scheduler threads
	// one gate through all cells of a campaign so cross-section
	// parallelism never exceeds the campaign's worker budget, however
	// many sweeps are in flight. nil means only Workers bounds
	// concurrency.
	Gate chan struct{}

	// runFn overrides the run function for tests (nil = RunCtx).
	runFn func(context.Context, Config, string) (Result, error)
}

// SetRunFnForTest overrides the run function (nil restores RunCtx). It
// exists for cross-package tests — the campaign scheduler's hardening
// tests inject deterministic stalls and failures below the scheduler —
// and is never called by production code.
func (rc *RunnerConfig) SetRunFnForTest(fn func(context.Context, Config, string) (Result, error)) {
	rc.runFn = fn
}

// DefaultRunnerConfig returns the standard pool sizing: GOMAXPROCS
// workers, no per-run deadline, two retries with 10ms base backoff.
func DefaultRunnerConfig() RunnerConfig {
	return RunnerConfig{Retries: 2, Backoff: 10 * time.Millisecond}
}

func (rc RunnerConfig) workers(jobs int) int {
	w := rc.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// jitter builds the decorrelated retry-jitter source for one seed's
// attempt sequence. Mixing the simulated seed in decorrelates workers
// (each sweeps a different seed) while keeping every schedule
// reproducible.
func (rc RunnerConfig) jitter(seed uint64) *RetryJitter {
	return NewRetryJitter(rc.Backoff, rc.MaxBackoff, rc.JitterSeed^(seed*0x9e3779b97f4a7c15+0x7f4a7c15))
}

// RunSeedsCtx executes Run for every seed under ctx with a bounded worker
// pool, per-run deadlines, panic recovery and retry-with-backoff, then
// aggregates whatever completed. Worker panics become structured
// RunErrors instead of crashing the process, and cancellation returns the
// partial Summary alongside per-seed context errors — a multi-hour sweep
// killed at 90% keeps its 90%.
//
// The returned error is non-nil only for unusable inputs (no seeds);
// per-seed failures, including cancellation, are reported in the RunError
// slice (ordered by seed position) while the Summary covers the seeds
// that finished.
func RunSeedsCtx(ctx context.Context, rc RunnerConfig, cfg Config, technique string, seeds []uint64) (Summary, []*RunError, error) {
	if len(seeds) == 0 {
		return Summary{}, nil, fmt.Errorf("sim: no seeds")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	run := rc.runFn
	if run == nil {
		if s := rc.Shards; s > 1 {
			run = func(ctx context.Context, c Config, t string) (Result, error) {
				return RunShardedCtx(ctx, c, t, s)
			}
		} else {
			run = RunCtx
		}
	}

	results := make([]*Result, len(seeds))
	errs := make([]*RunError, len(seeds))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < rc.workers(len(seeds)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				c := cfg
				c.Seed = seeds[i]
				if !acquireGate(ctx, rc.Gate) {
					errs[i] = &RunError{Seed: seeds[i], Attempts: 0, Err: ctx.Err()}
					continue
				}
				res, attempts, err := runWithRetry(ctx, rc, run, c, technique)
				releaseGate(rc.Gate)
				if err != nil {
					errs[i] = &RunError{Seed: seeds[i], Attempts: attempts, Err: err}
					continue
				}
				results[i] = &res
			}
		}()
	}
feed:
	for i := range seeds {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// Mark every unfed seed as canceled without attempting it.
			for j := i; j < len(seeds); j++ {
				if errs[j] == nil && results[j] == nil {
					errs[j] = &RunError{Seed: seeds[j], Attempts: 0, Err: ctx.Err()}
				}
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	var completed []Result
	var failed []*RunError
	for i := range seeds {
		switch {
		case results[i] != nil:
			completed = append(completed, *results[i])
		case errs[i] != nil:
			failed = append(failed, errs[i])
		}
	}
	return Summarize(completed), failed, nil
}

// runWithRetry attempts one seed with panic recovery, a per-run
// deadline, the stall watchdog, and seeded decorrelated-jitter backoff
// between attempts.
func runWithRetry(ctx context.Context, rc RunnerConfig, run func(context.Context, Config, string) (Result, error), cfg Config, technique string) (Result, int, error) {
	var lastErr error
	var jit *RetryJitter
	attempts := 0
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return Result{}, attempts, lastErr
			}
			return Result{}, attempts, err
		}
		attempts++
		res, err := runOnce(ctx, rc, run, cfg, technique)
		if err == nil {
			return res, attempts, nil
		}
		lastErr = err
		if attempt >= rc.Retries || !retriable(ctx, err) {
			return Result{}, attempts, err
		}
		obs.RunRetries.Inc()
		obs.Instant("run-retry", "runner",
			"seed", "0x"+strconv.FormatUint(cfg.Seed, 16),
			"attempt", strconv.Itoa(attempts),
			"err", err.Error())
		obs.Emit("run-retry",
			"seed", "0x"+strconv.FormatUint(cfg.Seed, 16),
			"attempt", strconv.Itoa(attempts),
			"err", err.Error())
		if jit == nil {
			jit = rc.jitter(cfg.Seed)
		}
		if !sleepCtx(ctx, jit.Next()) {
			return Result{}, attempts, lastErr
		}
	}
}

// runOnce executes one simulation, converting a panic into a PanicError,
// enforcing the per-run deadline, and — when StallTimeout is armed —
// running the heartbeat watchdog beside the workload.
func runOnce(ctx context.Context, rc RunnerConfig, run func(context.Context, Config, string) (Result, error), cfg Config, technique string) (res Result, err error) {
	obs.RunAttempts.Inc()
	span := obs.StartSpan("run-attempt", "runner",
		"technique", technique,
		"seed", "0x"+strconv.FormatUint(cfg.Seed, 16))
	defer func() {
		outcome := "ok"
		switch {
		case err == nil:
		case errors.Is(err, ErrStalled):
			outcome = "stalled"
		case errors.As(err, new(*PanicError)):
			outcome = "panic"
		default:
			outcome = "err"
		}
		span.End("outcome", outcome)
	}()
	runCtx := ctx
	if rc.PerRunTimeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, rc.PerRunTimeout)
		defer cancel()
	}
	var stalled atomic.Bool
	if rc.StallTimeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithCancel(runCtx)
		defer cancel()
		hb := &Heartbeat{}
		runCtx = WithHeartbeat(runCtx, hb)
		stop := make(chan struct{})
		defer close(stop)
		go watchdog(hb, rc.StallTimeout, &stalled, cancel, stop)
	}
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: string(debug.Stack())}
			obs.RunPanics.Inc()
			obs.Emit("run-panic",
				"seed", "0x"+strconv.FormatUint(cfg.Seed, 16),
				"technique", technique,
				"value", fmt.Sprint(r))
		}
	}()
	res, err = run(runCtx, cfg, technique)
	switch {
	case err != nil && stalled.Load():
		// The stall watchdog cancelled this attempt: classify apart from
		// both deadline overruns and sweep-level cancellation so the
		// retry policy (and the campaign scheduler's failure accounting)
		// can treat a wedge as transient.
		err = fmt.Errorf("%w (no heartbeat within %s): %w", ErrStalled, rc.StallTimeout, err)
		obs.RunStalls.Inc()
		obs.Emit("run-stall",
			"seed", "0x"+strconv.FormatUint(cfg.Seed, 16),
			"technique", technique,
			"stall_timeout", rc.StallTimeout.String())
	case err != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
		// The per-run deadline fired, not the sweep's context: the run is
		// deterministic, so a retry would overrun again.
		err = permanent(err)
	}
	return res, err
}

// retriable reports whether a failure is worth another attempt: panics,
// stalls and unmarked errors are retried; permanent marks and
// sweep-level cancellation are not.
func retriable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	if errors.Is(err, ErrStalled) {
		return true
	}
	if errors.Is(err, ErrPermanent) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// Do executes an arbitrary workload under the runner config's hardening:
// the shared Gate (when set), per-run deadline, panic recovery, and
// retry-with-backoff for transient failures. It is the probe-cell
// counterpart of RunSeedsCtx — campaign probe cells (flooding,
// vulnerability, latency, ...) get the exact semantics seed sweeps get,
// from the same machinery.
func (rc RunnerConfig) Do(ctx context.Context, fn func(context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if !acquireGate(ctx, rc.Gate) {
		return ctx.Err()
	}
	defer releaseGate(rc.Gate)
	_, _, err := runWithRetry(ctx, rc, func(c context.Context, _ Config, _ string) (Result, error) {
		return Result{}, fn(c)
	}, Config{}, "")
	return err
}

// acquireGate takes one token from the shared concurrency gate (a nil
// gate always admits); it reports false when ctx is done first.
func acquireGate(ctx context.Context, gate chan struct{}) bool {
	if gate == nil {
		return true
	}
	select {
	case gate <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

func releaseGate(gate chan struct{}) {
	if gate != nil {
		<-gate
	}
}

// sleepCtx waits d or until ctx is done; it reports whether the full wait
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

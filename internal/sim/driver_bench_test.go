package sim

import (
	"context"
	"testing"
)

// Driver benchmarks over the standard scaled configuration: the same
// pipeline the hot-path harness times, under the standard benchmark
// driver for quick `-bench Driver` comparisons while tuning dispatch.

func benchDriver(b *testing.B, run func(context.Context, Config, string) (Result, error)) {
	cfg := DefaultConfig()
	cfg.Windows = 1
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(ctx, cfg, "LiPRoMi"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDriverReference(b *testing.B) {
	benchDriver(b, RunReferenceCtx)
}

func BenchmarkDriverBlock(b *testing.B) {
	benchDriver(b, RunCtx)
}

func BenchmarkDriverSharded2(b *testing.B) {
	benchDriver(b, func(ctx context.Context, c Config, t string) (Result, error) {
		return RunShardedCtx(ctx, c, t, 2)
	})
}

func BenchmarkDriverGenOnly(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Windows = 1
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DrainStream(ctx, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

package sim

import (
	"context"

	"tivapromi/internal/dram"
	"tivapromi/internal/memctrl"
	"tivapromi/internal/mitigation"
	"tivapromi/internal/rng"
	"tivapromi/internal/workload"
)

// LatencyResult reports one technique's request-latency cost through the
// cycle-accurate FR-FCFS scheduler under the attack workload — the
// performance view behind the paper's "activation overhead" metric.
type LatencyResult struct {
	Technique  string  // "none" for the unprotected system
	AvgLatency float64 // mean request latency in controller cycles
	MaxLatency int64   // worst request latency in controller cycles
	RowHitPct  float64 // percentage of requests served from an open row
	ExtraActs  uint64  // mitigation-issued activations + direct refreshes
}

// LatencyProbeCtx runs the cycle-accurate scheduler for one refresh
// window of mixed attack traffic under `technique` ("" for an
// unprotected system) and measures the latency cost of the mitigation's
// extra maintenance commands. Deterministic in cfg.Seed.
func LatencyProbeCtx(ctx context.Context, cfg Config, technique string) (LatencyResult, error) {
	if err := ctx.Err(); err != nil {
		return LatencyResult{}, err
	}
	p := cfg.Params
	dev, err := dram.New(p, nil)
	if err != nil {
		return LatencyResult{}, err
	}
	var mit mitigation.Mitigator
	label := "none"
	if technique != "" {
		f, err := mitigation.Lookup(technique)
		if err != nil {
			return LatencyResult{}, permanent(err)
		}
		mit = f(mitigation.Target{
			Banks: p.TotalBanks(), RowsPerBank: p.RowsPerBank, RefInt: p.RefInt,
			FlipThreshold: p.FlipThreshold,
		}, 1)
		label = technique
	}
	sched, err := memctrl.NewScheduler(memctrl.DDR42400(), dev, mit, 32)
	if err != nil {
		return LatencyResult{}, err
	}
	st, err := newLatencyStream(cfg)
	if err != nil {
		return LatencyResult{}, err
	}
	sched.RunIntervals(p.RefInt, st)
	if err := ctx.Err(); err != nil {
		return LatencyResult{}, err
	}
	stats := sched.Stats()
	ds := dev.Stats()
	return LatencyResult{
		Technique:  label,
		AvgLatency: stats.AvgLatency(),
		MaxLatency: stats.LatencyMax,
		RowHitPct:  100 * float64(stats.RowHits()) / float64(stats.Served),
		ExtraActs:  ds.NeighborActs + ds.DirectRefreshes,
	}, nil
}

// newLatencyStream builds the same mixed traffic Run uses, as a
// scheduler feed.
func newLatencyStream(cfg Config) (func() (int, int, bool), error) {
	c := cfg
	c.Windows = 1
	mix := workload.SPECMix(c.Params.TotalBanks(), c.Params.RowsPerBank, c.Seed)
	att, err := workload.NewAttacker(workload.DefaultAttackerConfig(
		c.AttackBanks, c.Params.RowsPerBank,
		uint64(c.Params.RefInt)*200, c.Seed))
	if err != nil {
		return nil, err
	}
	src := rng.NewXorShift64Star(c.Seed ^ 0x1a7e)
	share := uint64(c.AttackShare * float64(1<<32))
	return func() (int, int, bool) {
		if src.Uint64()&0xffffffff < share {
			a := att.Next()
			return a.Bank, a.Row, a.Write
		}
		a := mix.Next()
		return a.Bank, a.Row, a.Write
	}, nil
}

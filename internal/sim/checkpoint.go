package sim

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"tivapromi/internal/iofault"
	"tivapromi/internal/obs"
)

// checkpointVersion guards the on-disk format. Version 2 is the
// crash-consistent line-oriented format: a header line, one
// self-checksummed entry per line, and a whole-file digest trailer.
// Version 1 (a single indented JSON document with no checksums) is
// migrated on load.
const checkpointVersion = 2

// checkpointFormat is the magic the v2 header line carries.
const checkpointFormat = "tivapromi-checkpoint"

// Typed load failures. LoadCheckpoint never fails the experiment for
// either of them — salvage and quarantine handle the damage — but it
// reports them through LoadReport.Err so callers (the campaign progress
// stream, the torture harness) can tell the two apart and log the
// quarantine path.
var (
	// ErrCheckpointCorrupt marks a checkpoint file that was torn,
	// truncated, bit-flipped, or otherwise damaged. Entries whose
	// checksums verified were salvaged; the original file is quarantined.
	ErrCheckpointCorrupt = errors.New("sim: checkpoint corrupt")
	// ErrCheckpointVersion marks a checkpoint written by an unknown
	// (newer) format version. Nothing is salvaged — guessing at a future
	// format is worse than re-running — and the file is quarantined.
	ErrCheckpointVersion = errors.New("sim: checkpoint version mismatch")
)

// LoadReport describes what LoadCheckpoint found on disk. A clean load
// of a v2 file reports Entries with everything else zero.
type LoadReport struct {
	// Entries is the number of entries loaded (salvaged entries
	// included).
	Entries int
	// Dropped is the number of entries discarded because their checksum
	// did not verify (they will simply re-run).
	Dropped int
	// Migrated reports a v1 file was upgraded to v2 in place.
	Migrated bool
	// Quarantined is the path the damaged original was renamed to
	// ("" when no quarantine happened).
	Quarantined string
	// Err classifies the damage (ErrCheckpointCorrupt or
	// ErrCheckpointVersion); nil for a clean load.
	Err error
}

// Note renders the report as a one-line human-readable notice, or ""
// when there is nothing noteworthy (clean load, no migration).
func (r LoadReport) Note() string {
	switch {
	case r.Err != nil && r.Quarantined != "":
		return fmt.Sprintf("checkpoint: %v — salvaged %d entries, dropped %d, original quarantined at %s",
			r.Err, r.Entries, r.Dropped, r.Quarantined)
	case r.Err != nil:
		return fmt.Sprintf("checkpoint: %v — salvaged %d entries, dropped %d", r.Err, r.Entries, r.Dropped)
	case r.Migrated:
		return fmt.Sprintf("checkpoint: migrated v1 file to v2 (%d entries)", r.Entries)
	default:
		return ""
	}
}

// checkpointV1File is the legacy version-1 document, kept only so old
// files can be migrated on load.
type checkpointV1File struct {
	Version int                         `json:"version"`
	Sweeps  map[string]*checkpointSweep `json:"sweeps"`
	Outputs map[string]checkpointOutput `json:"outputs,omitempty"`
	Probes  map[string]json.RawMessage  `json:"probes,omitempty"`
}

// checkpointSweep holds the completed seeds of one fingerprinted sweep.
type checkpointSweep struct {
	// Done maps seed → completed result. Seeds absent from the map were
	// not finished when the checkpoint was written and will be re-run.
	Done map[string]Result `json:"done"`
}

// checkpointOutput caches one fully rendered experiment section (used by
// cmd/experiments to resume `all` at section granularity).
type checkpointOutput struct {
	Text string `json:"text"`
}

// checkpointState is the in-memory store behind a checkpoint, the same
// shape v1 used; only the serialization changed in v2.
type checkpointState struct {
	Sweeps  map[string]*checkpointSweep
	Outputs map[string]checkpointOutput
	Probes  map[string]json.RawMessage
}

func newCheckpointState() checkpointState {
	return checkpointState{
		Sweeps:  make(map[string]*checkpointSweep),
		Outputs: make(map[string]checkpointOutput),
		Probes:  make(map[string]json.RawMessage),
	}
}

// entries counts every entry in the state.
func (s *checkpointState) entries() int {
	n := len(s.Outputs) + len(s.Probes)
	for _, sw := range s.Sweeps {
		n += len(sw.Done)
	}
	return n
}

// Line kinds of the v2 format.
const (
	lineSweep  = "sweep"
	lineProbe  = "probe"
	lineOutput = "output"
	lineDigest = "digest"
)

// ckptLine is one line of a v2 checkpoint file: the header (Format +
// Version set), an entry (K + identity + Sum + Data), or the digest
// trailer (K = "digest", Sum over every preceding byte of the file).
type ckptLine struct {
	Format  string          `json:"format,omitempty"`
	Version int             `json:"version,omitempty"`
	Shard   int             `json:"shard,omitempty"`  // sharded header: shard index
	Shards  int             `json:"shards,omitempty"` // sharded header: directory shard count
	K       string          `json:"k,omitempty"`
	FP      string          `json:"fp,omitempty"`   // sweep, probe
	Seed    string          `json:"seed,omitempty"` // sweep
	Name    string          `json:"name,omitempty"` // output
	Sum     string          `json:"sum,omitempty"`
	Data    json.RawMessage `json:"data,omitempty"`
}

// entrySum computes the per-entry checksum. It binds the entry's kind
// and full identity to its payload bytes, so a bit flip anywhere in the
// line — key, seed, or data — fails verification; a corrupted entry can
// never be resurrected under the wrong key.
func entrySum(kind, id1, id2 string, data []byte) string {
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(id1))
	h.Write([]byte{0})
	h.Write([]byte(id2))
	h.Write([]byte{0})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}

// Checkpoint is a durable store of completed per-seed results, rendered
// section outputs and probe results, keyed by fingerprints. A hardened
// sweep writes each seed's result through the checkpoint as it
// completes; a re-run of the same sweep skips the seeds already on
// disk. The zero value (or a nil *Checkpoint) is a no-op store, so
// callers can thread one pointer unconditionally.
//
// Durability is defended in depth:
//
//   - writes are atomic (temp file + fsync + rename in the checkpoint's
//     directory), so a process killed mid-write leaves the previous
//     consistent snapshot behind;
//   - every entry carries a SHA-256 checksum binding identity to
//     payload, and the file ends in a whole-file digest, so damage the
//     rename could not prevent — torn writes that did reach the disk,
//     lost fsyncs, media bit flips — is detected on load;
//   - a damaged file is salvaged entry by entry (everything whose
//     checksum verifies is kept; only the damaged entries re-run) and
//     the original is quarantined to <path>.corrupt-<timestamp> for
//     forensics.
//
// All file I/O goes through an iofault.FS seam, so the chaos torture
// harness (internal/chaostest) can attack exactly this machinery.
// A Checkpoint is safe for concurrent use by the worker pool.
type Checkpoint struct {
	mu   sync.Mutex
	path string
	fs   iofault.FS
	data checkpointState
	// report is what LoadCheckpoint found on disk.
	report LoadReport
	// dirty counts results accepted since the last flush.
	dirty int
	// shardN > 0 selects the sharded directory layout (see
	// checkpoint_shard.go); dirtyShards flags the shards a flush must
	// rewrite.
	shardN      int
	dirtyShards []bool
	// stats counts cache traffic (see CacheStats).
	stats CacheStats
	// FlushEvery bounds how many new results accumulate in memory before
	// an automatic flush (default 1: write through on every result, the
	// safest setting for multi-hour sweeps).
	FlushEvery int
}

// CacheStats counts a checkpoint's cache traffic. When several campaigns
// share one checkpoint — the serving layer's content-addressed result
// cache — the hit counters are the cross-tenant dedup census: every hit
// is a simulation some earlier submission already paid for.
type CacheStats struct {
	// SweepHits / SweepMisses count per-seed sweep lookups.
	SweepHits   int64 `json:"sweep_hits"`
	SweepMisses int64 `json:"sweep_misses"`
	// ProbeHits / ProbeMisses count probe-cell lookups.
	ProbeHits   int64 `json:"probe_hits"`
	ProbeMisses int64 `json:"probe_misses"`
	// Entries is the number of entries currently held (seeds + probes +
	// outputs).
	Entries int `json:"entries"`
}

// Hits returns the total cache hits across entry kinds.
func (s CacheStats) Hits() int64 { return s.SweepHits + s.ProbeHits }

// CacheStats returns a snapshot of the checkpoint's cache counters (the
// zero value for a nil checkpoint).
func (c *Checkpoint) CacheStats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.data.entries()
	return st
}

// LoadCheckpoint opens or creates a checkpoint at path through the real
// filesystem. A missing file is an empty checkpoint. A corrupt file is
// salvaged: every entry whose checksum verifies is kept, the damaged
// original is quarantined, and the load still succeeds — re-running the
// dropped entries is always safe, losing the intact ones never is. Use
// LoadReport (or LoadCheckpointFS) to observe what happened.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	return LoadCheckpointFS(path, nil)
}

// LoadCheckpointFS is LoadCheckpoint with an explicit filesystem seam
// (nil means the passthrough iofault.OS). The torture harness threads a
// fault-injecting FS through here.
func LoadCheckpointFS(path string, fs iofault.FS) (*Checkpoint, error) {
	if path == "" {
		return nil, fmt.Errorf("sim: empty checkpoint path")
	}
	if fs == nil {
		fs = iofault.OS{}
	}
	c := &Checkpoint{path: path, fs: fs, FlushEvery: 1, data: newCheckpointState()}
	raw, err := fs.ReadFile(path)
	if err != nil {
		if isNotExist(err) {
			return c, nil
		}
		return nil, fmt.Errorf("sim: read checkpoint: %w", err)
	}
	rep := c.load(raw)
	rep.Entries = c.data.entries()
	if rep.Err != nil {
		// Quarantine the damaged original before the next flush would
		// overwrite it; the salvaged entries live on in memory (and are
		// flushed back immediately below when there are any).
		q := fmt.Sprintf("%s.corrupt-%d", path, time.Now().UnixNano())
		if renameErr := fs.Rename(path, q); renameErr == nil {
			rep.Quarantined = q
			obs.CheckpointQuarantines.Inc()
			// Best-effort: bound the forensic corpses this path accumulates.
			PruneQuarantine(fs, path, QuarantineKeep)
		}
		if rep.Entries > 0 {
			obs.CheckpointSalvages.Inc()
		}
		obs.Emit("checkpoint-quarantine",
			"path", path,
			"quarantined", rep.Quarantined,
			"salvaged", strconv.Itoa(rep.Entries),
			"dropped", strconv.Itoa(rep.Dropped),
			"err", rep.Err.Error())
		obs.Instant("checkpoint-quarantine", "checkpoint",
			"path", path, "salvaged", strconv.Itoa(rep.Entries))
	}
	c.report = rep
	if (rep.Err != nil && rep.Entries > 0) || rep.Migrated {
		// Persist the salvaged/migrated state in v2 form right away, so
		// a crash before the next organic flush cannot lose it again.
		c.mu.Lock()
		err := c.flushLocked()
		c.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// isNotExist matches the not-exist condition through whatever error
// chain the FS seam produced.
func isNotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist)
}

// load parses raw into c.data, handling v2, v1-migration and damage.
// It returns the report describing what happened (Entries is filled in
// by the caller).
func (c *Checkpoint) load(raw []byte) LoadReport {
	var rep LoadReport
	// A v2 file starts with a parseable header line carrying the magic.
	if hdr, rest, ok := splitLine(raw); ok {
		var h ckptLine
		if json.Unmarshal(hdr, &h) == nil && h.Format == checkpointFormat {
			if h.Version != checkpointVersion {
				rep.Err = fmt.Errorf("%w: file version %d, want %d",
					ErrCheckpointVersion, h.Version, checkpointVersion)
				return rep
			}
			return c.loadV2(raw, len(raw)-len(rest))
		}
	}
	// Not v2: try the legacy v1 document.
	var v1 checkpointV1File
	if err := json.Unmarshal(raw, &v1); err == nil {
		if v1.Version != 1 {
			rep.Err = fmt.Errorf("%w: file version %d, want %d",
				ErrCheckpointVersion, v1.Version, checkpointVersion)
			return rep
		}
		if v1.Sweeps != nil {
			c.data.Sweeps = v1.Sweeps
		}
		if v1.Outputs != nil {
			c.data.Outputs = v1.Outputs
		}
		if v1.Probes != nil {
			c.data.Probes = v1.Probes
		}
		rep.Migrated = true
		return rep
	}
	rep.Err = fmt.Errorf("%w: unparseable file", ErrCheckpointCorrupt)
	return rep
}

// loadV2 walks the entry lines of a v2 file, salvaging every entry whose
// checksum verifies. bodyOff is the offset of the first byte after the
// header line.
func (c *Checkpoint) loadV2(raw []byte, bodyOff int) LoadReport {
	var rep LoadReport
	corrupt := func(format string, args ...any) {
		if rep.Err == nil {
			rep.Err = fmt.Errorf("%w: %s", ErrCheckpointCorrupt, fmt.Sprintf(format, args...))
		}
	}
	rest := raw[bodyOff:]
	off := bodyOff
	digestSeen := false
	for len(rest) > 0 {
		line, next, ok := splitLine(rest)
		if !ok {
			// No trailing newline: a torn final line.
			corrupt("truncated final line at offset %d", off)
			break
		}
		lineStart := off
		off += len(rest) - len(next)
		rest = next
		if digestSeen {
			corrupt("data after digest at offset %d", lineStart)
			break
		}
		var l ckptLine
		if err := json.Unmarshal(line, &l); err != nil {
			corrupt("unparseable line at offset %d", lineStart)
			continue
		}
		switch l.K {
		case lineDigest:
			digestSeen = true
			h := sha256.Sum256(raw[:lineStart])
			if l.Sum != hex.EncodeToString(h[:]) {
				corrupt("whole-file digest mismatch")
			}
		case lineSweep:
			if entrySum(lineSweep, l.FP, l.Seed, l.Data) != l.Sum {
				rep.Dropped++
				corrupt("sweep entry checksum mismatch at offset %d", lineStart)
				continue
			}
			var res Result
			if err := json.Unmarshal(l.Data, &res); err != nil {
				rep.Dropped++
				corrupt("sweep entry payload at offset %d", lineStart)
				continue
			}
			sw := c.data.Sweeps[l.FP]
			if sw == nil {
				sw = &checkpointSweep{Done: make(map[string]Result)}
				c.data.Sweeps[l.FP] = sw
			}
			sw.Done[l.Seed] = res
		case lineProbe:
			if entrySum(lineProbe, l.FP, "", l.Data) != l.Sum {
				rep.Dropped++
				corrupt("probe entry checksum mismatch at offset %d", lineStart)
				continue
			}
			c.data.Probes[l.FP] = append(json.RawMessage(nil), l.Data...)
		case lineOutput:
			if entrySum(lineOutput, l.Name, "", l.Data) != l.Sum {
				rep.Dropped++
				corrupt("output entry checksum mismatch at offset %d", lineStart)
				continue
			}
			var text string
			if err := json.Unmarshal(l.Data, &text); err != nil {
				rep.Dropped++
				corrupt("output entry payload at offset %d", lineStart)
				continue
			}
			c.data.Outputs[l.Name] = checkpointOutput{Text: text}
		default:
			corrupt("unknown line kind %q at offset %d", l.K, lineStart)
		}
	}
	if !digestSeen {
		corrupt("missing whole-file digest (torn file)")
	}
	return rep
}

// splitLine returns the first line of b (without the newline), the
// remainder after it, and whether a newline terminated the line.
func splitLine(b []byte) (line, rest []byte, ok bool) {
	i := bytes.IndexByte(b, '\n')
	if i < 0 {
		return b, nil, false
	}
	return b[:i], b[i+1:], true
}

// Path returns the checkpoint's file path ("" for a nil checkpoint).
func (c *Checkpoint) Path() string {
	if c == nil {
		return ""
	}
	return c.path
}

// LoadReport returns what LoadCheckpoint found on disk (the zero report
// for a nil checkpoint or a fresh file).
func (c *Checkpoint) LoadReport() LoadReport {
	if c == nil {
		return LoadReport{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.report
}

// lookup returns the cached result for one seed of a fingerprinted sweep.
func (c *Checkpoint) lookup(fp string, seed uint64) (Result, bool) {
	if c == nil {
		return Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sw := c.data.Sweeps[fp]
	if sw == nil {
		c.stats.SweepMisses++
		return Result{}, false
	}
	r, ok := sw.Done[seedKey(seed)]
	if ok {
		c.stats.SweepHits++
		obs.DedupHits.Inc()
	} else {
		c.stats.SweepMisses++
	}
	return r, ok
}

// record stores one completed seed result and flushes according to
// FlushEvery. Errors are returned so the runner can surface a read-only
// checkpoint directory instead of silently losing progress.
func (c *Checkpoint) record(fp string, seed uint64, res Result) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sw := c.data.Sweeps[fp]
	if sw == nil {
		sw = &checkpointSweep{Done: make(map[string]Result)}
		c.data.Sweeps[fp] = sw
	}
	sw.Done[seedKey(seed)] = res
	c.markDirty(fp)
	c.dirty++
	every := c.FlushEvery
	if every <= 0 {
		every = 1
	}
	if c.dirty >= every {
		return c.flushLocked()
	}
	return nil
}

// Output returns the cached rendered text for a named experiment section.
func (c *Checkpoint) Output(name string) (string, bool) {
	if c == nil {
		return "", false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out, ok := c.data.Outputs[name]
	return out.Text, ok
}

// PutOutput caches the rendered text of a named experiment section and
// flushes immediately, so a killed `experiments all` resumes past every
// section that finished rendering.
func (c *Checkpoint) PutOutput(name, text string) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data.Outputs[name] = checkpointOutput{Text: text}
	c.markDirty(name)
	return c.flushLocked()
}

// Probe returns the cached JSON encoding of a probe cell's result, keyed
// by the cell fingerprint.
func (c *Checkpoint) Probe(fp string) (json.RawMessage, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, ok := c.data.Probes[fp]
	if ok {
		c.stats.ProbeHits++
		obs.DedupHits.Inc()
	} else {
		c.stats.ProbeMisses++
	}
	return raw, ok
}

// PutProbe caches a probe cell's result (any JSON-encodable value) under
// the cell fingerprint and flushes according to FlushEvery, so a killed
// campaign resumes past every deterministic probe that completed.
func (c *Checkpoint) PutProbe(fp string, v any) error {
	if c == nil {
		return nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sim: marshal probe result: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.data.Probes == nil {
		c.data.Probes = make(map[string]json.RawMessage)
	}
	c.data.Probes[fp] = raw
	c.markDirty(fp)
	c.dirty++
	every := c.FlushEvery
	if every <= 0 {
		every = 1
	}
	if c.dirty >= every {
		return c.flushLocked()
	}
	return nil
}

// Flush forces pending state to disk.
func (c *Checkpoint) Flush() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

// marshalLocked renders the v2 byte image of the current state: header
// line, entries in sorted-key order (so identical state always produces
// identical bytes), digest trailer. Requires c.mu held.
func (c *Checkpoint) marshalLocked() ([]byte, error) { return c.marshalShard(-1) }

// marshalShardLocked renders shard i's byte image: the same v2 format,
// restricted to entries whose cell-group key hashes to i, with the
// sharded header. Requires c.mu held.
func (c *Checkpoint) marshalShardLocked(i int) ([]byte, error) { return c.marshalShard(i) }

// marshalShard is the shared renderer; shard -1 means "everything,
// single-file header".
func (c *Checkpoint) marshalShard(shard int) ([]byte, error) {
	var buf bytes.Buffer
	writeLine := func(l ckptLine) error {
		raw, err := json.Marshal(l)
		if err != nil {
			return err
		}
		buf.Write(raw)
		buf.WriteByte('\n')
		return nil
	}
	keep := func(key string) bool {
		return shard < 0 || shardOf(key, c.shardN) == shard
	}
	hdr := ckptLine{Format: checkpointFormat, Version: checkpointVersion}
	if shard >= 0 {
		hdr.Shard = shard
		hdr.Shards = c.shardN
	}
	if err := writeLine(hdr); err != nil {
		return nil, err
	}
	for _, fp := range sortedKeys(c.data.Sweeps) {
		if !keep(fp) {
			continue
		}
		sw := c.data.Sweeps[fp]
		for _, seed := range sortedKeys(sw.Done) {
			data, err := json.Marshal(sw.Done[seed])
			if err != nil {
				return nil, err
			}
			if err := writeLine(ckptLine{K: lineSweep, FP: fp, Seed: seed,
				Sum: entrySum(lineSweep, fp, seed, data), Data: data}); err != nil {
				return nil, err
			}
		}
	}
	for _, fp := range sortedKeys(c.data.Probes) {
		if !keep(fp) {
			continue
		}
		data := c.data.Probes[fp]
		if err := writeLine(ckptLine{K: lineProbe, FP: fp,
			Sum: entrySum(lineProbe, fp, "", data), Data: data}); err != nil {
			return nil, err
		}
	}
	for _, name := range sortedKeys(c.data.Outputs) {
		if !keep(name) {
			continue
		}
		data, err := json.Marshal(c.data.Outputs[name].Text)
		if err != nil {
			return nil, err
		}
		if err := writeLine(ckptLine{K: lineOutput, Name: name,
			Sum: entrySum(lineOutput, name, "", data), Data: data}); err != nil {
			return nil, err
		}
	}
	h := sha256.Sum256(buf.Bytes())
	if err := writeLine(ckptLine{K: lineDigest, Sum: hex.EncodeToString(h[:])}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// flushLocked writes pending state to disk atomically through the FS
// seam: the whole file in single-file mode, only the dirty shards in
// sharded mode. Requires c.mu held.
func (c *Checkpoint) flushLocked() error {
	if c.shardN > 0 {
		return c.flushShardsLocked()
	}
	raw, err := c.marshalLocked()
	if err != nil {
		return fmt.Errorf("sim: marshal checkpoint: %w", err)
	}
	fs := c.fs
	if fs == nil {
		fs = iofault.OS{}
	}
	span := obs.StartSpan("checkpoint-flush", "checkpoint", "path", c.path)
	if err := atomicWrite(fs, filepath.Dir(c.path), c.path, raw); err != nil {
		span.End("outcome", "err")
		return err
	}
	span.End("outcome", "ok")
	obs.CheckpointFlushes.Inc()
	c.dirty = 0
	return nil
}

// atomicWrite writes raw to path with the crash-consistent dance: temp
// file in dir, write, fsync, close, rename over the target. Any failure
// removes the temp file and leaves the previous target untouched.
func atomicWrite(fs iofault.FS, dir, path string, raw []byte) error {
	tmp, err := fs.CreateTemp(dir, ".checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("sim: checkpoint temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		fs.Remove(tmpName)
		return fmt.Errorf("sim: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		fs.Remove(tmpName)
		return fmt.Errorf("sim: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		fs.Remove(tmpName)
		return fmt.Errorf("sim: close checkpoint: %w", err)
	}
	if err := fs.Rename(tmpName, path); err != nil {
		fs.Remove(tmpName)
		return fmt.Errorf("sim: rename checkpoint: %w", err)
	}
	return nil
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// seedKey renders a seed as a stable JSON map key.
func seedKey(seed uint64) string { return fmt.Sprintf("%#x", seed) }

// Fingerprint derives the checkpoint key for one sweep. It hashes the
// JSON encoding of the config (Factory is excluded via its json:"-" tag;
// FactoryLabel stands in for it), the technique name and the sorted seed
// set, so any change to the experiment invalidates the cached results
// instead of silently reusing them.
func Fingerprint(cfg Config, technique string, seeds []uint64) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	// Encoding errors are impossible for these types; ignore them so the
	// fingerprint is infallible at call sites.
	_ = enc.Encode(cfg)
	_ = enc.Encode(technique)
	sorted := append([]uint64(nil), seeds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	_ = enc.Encode(sorted)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// ProbeFingerprint derives the checkpoint key for one probe cell from
// its stable cell key. The key must encode every parameter the probe's
// result depends on (device scale, seeds, trial counts); the campaign
// layer's key builders guarantee that.
func ProbeFingerprint(key string) string {
	h := sha256.Sum256([]byte("probe\x00" + key))
	return hex.EncodeToString(h[:16])
}

// Runner bundles the hardened pool configuration with an optional
// checkpoint. It is the front door for experiment drivers: construct one
// Runner per process, call RunSeeds for every sweep, and killed processes
// resume from whatever the checkpoint captured.
type Runner struct {
	Config     RunnerConfig
	Checkpoint *Checkpoint // nil disables persistence
}

// NewRunner returns a Runner with DefaultRunnerConfig and no checkpoint.
func NewRunner() *Runner { return &Runner{Config: DefaultRunnerConfig()} }

// RunSeeds executes the sweep under ctx, consulting the checkpoint for
// already-completed seeds and recording each newly completed seed as it
// finishes. The summary always aggregates results in seed order —
// checkpointed and fresh alike — so resumed and uninterrupted runs emit
// identical tables.
func (r *Runner) RunSeeds(ctx context.Context, cfg Config, technique string, seeds []uint64) (Summary, []*RunError, error) {
	if len(seeds) == 0 {
		return Summary{}, nil, fmt.Errorf("sim: no seeds")
	}
	fp := Fingerprint(cfg, technique, seeds)
	// A custom Factory without a FactoryLabel is invisible to the
	// fingerprint (two different closures would collide), so such sweeps
	// bypass the checkpoint entirely — the documented Config contract.
	ck := r.Checkpoint
	if cfg.Factory != nil && cfg.FactoryLabel == "" {
		ck = nil
	}

	cached := make([]*Result, len(seeds))
	var todo []uint64
	todoIdx := make(map[uint64]int, len(seeds))
	for i, s := range seeds {
		if res, ok := ck.lookup(fp, s); ok {
			resCopy := res
			cached[i] = &resCopy
			continue
		}
		if _, dup := todoIdx[s]; !dup {
			todoIdx[s] = i
			todo = append(todo, s)
		}
	}

	var failed []*RunError
	if len(todo) > 0 {
		rc := r.Config
		inner := rc.runFn
		if inner == nil {
			inner = RunCtx
		}
		var mu sync.Mutex
		fresh := make(map[uint64]Result, len(todo))
		var ckptErr error
		rc.runFn = func(ctx context.Context, c Config, tech string) (Result, error) {
			res, err := inner(ctx, c, tech)
			if err == nil {
				mu.Lock()
				fresh[c.Seed] = res
				if e := ck.record(fp, c.Seed, res); e != nil && ckptErr == nil {
					ckptErr = e
				}
				mu.Unlock()
			}
			return res, err
		}
		_, errs, err := RunSeedsCtx(ctx, rc, cfg, technique, todo)
		if err != nil {
			return Summary{}, nil, err
		}
		failed = errs
		if ckptErr != nil {
			return Summary{}, nil, ckptErr
		}
		for s, res := range fresh {
			resCopy := res
			cached[todoIdx[s]] = &resCopy
		}
	}

	// Aggregate in seed order regardless of completion order or cache
	// provenance.
	var completed []Result
	for i := range seeds {
		if cached[i] == nil {
			// Duplicate seeds share the first occurrence's result.
			if j, ok := todoIdx[seeds[i]]; ok && cached[j] != nil {
				completed = append(completed, *cached[j])
			}
			continue
		}
		completed = append(completed, *cached[i])
	}
	return Summarize(completed), failed, nil
}

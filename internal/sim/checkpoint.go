package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// checkpointVersion guards the on-disk format. Bump it when Result or the
// fingerprint recipe changes so a stale file is ignored instead of
// misinterpreted.
const checkpointVersion = 1

// checkpointFile is the JSON document written to disk. Entries map a sweep
// fingerprint to the per-seed results that completed; Summary is never
// stored because stats.Welford carries unexported state — the summary is
// recomputed from the results with Summarize, which is order-stable, so a
// resumed sweep reproduces the original tables byte for byte.
type checkpointFile struct {
	Version int                         `json:"version"`
	Sweeps  map[string]*checkpointSweep `json:"sweeps"`
	Outputs map[string]checkpointOutput `json:"outputs,omitempty"`
	// Probes caches the JSON-encoded results of deterministic probe
	// cells (flooding, vulnerability, latency, ...) keyed by the
	// campaign cell fingerprint, the probe counterpart of per-seed sweep
	// results.
	Probes map[string]json.RawMessage `json:"probes,omitempty"`
}

// checkpointSweep holds the completed seeds of one fingerprinted sweep.
type checkpointSweep struct {
	// Done maps seed → completed result. Seeds absent from the map were
	// not finished when the checkpoint was written and will be re-run.
	Done map[string]Result `json:"done"`
}

// checkpointOutput caches one fully rendered experiment section (used by
// cmd/experiments to resume `all` at section granularity).
type checkpointOutput struct {
	Text string `json:"text"`
}

// Checkpoint is a JSON-backed store of completed per-seed results, keyed
// by a fingerprint of (config, technique, seeds). A hardened sweep writes
// each seed's result through the checkpoint as it completes; a re-run of
// the same sweep skips the seeds already on disk. The zero value (or a
// nil *Checkpoint) is a no-op store, so callers can thread one pointer
// unconditionally.
//
// Writes are atomic (temp file + rename in the checkpoint's directory), so
// a sweep killed mid-write leaves the previous consistent snapshot behind,
// never a torn file. A Checkpoint is safe for concurrent use by the worker
// pool.
type Checkpoint struct {
	mu   sync.Mutex
	path string
	data checkpointFile
	// dirty counts results accepted since the last flush.
	dirty int
	// FlushEvery bounds how many new results accumulate in memory before
	// an automatic flush (default 1: write through on every result, the
	// safest setting for multi-hour sweeps).
	FlushEvery int
}

// LoadCheckpoint opens or creates a checkpoint at path. A missing file is
// an empty checkpoint; a corrupt or version-mismatched file is also
// treated as empty (the sweep re-runs, which is always safe) rather than
// failing the experiment.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	if path == "" {
		return nil, fmt.Errorf("sim: empty checkpoint path")
	}
	c := &Checkpoint{path: path, FlushEvery: 1}
	c.data.Version = checkpointVersion
	c.data.Sweeps = make(map[string]*checkpointSweep)
	c.data.Outputs = make(map[string]checkpointOutput)
	c.data.Probes = make(map[string]json.RawMessage)
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return c, nil
		}
		return nil, fmt.Errorf("sim: read checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(raw, &f); err != nil || f.Version != checkpointVersion {
		// Unreadable or stale format: start fresh, don't guess.
		return c, nil
	}
	if f.Sweeps != nil {
		c.data.Sweeps = f.Sweeps
	}
	if f.Outputs != nil {
		c.data.Outputs = f.Outputs
	}
	if f.Probes != nil {
		c.data.Probes = f.Probes
	}
	return c, nil
}

// Path returns the checkpoint's file path ("" for a nil checkpoint).
func (c *Checkpoint) Path() string {
	if c == nil {
		return ""
	}
	return c.path
}

// lookup returns the cached result for one seed of a fingerprinted sweep.
func (c *Checkpoint) lookup(fp string, seed uint64) (Result, bool) {
	if c == nil {
		return Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sw := c.data.Sweeps[fp]
	if sw == nil {
		return Result{}, false
	}
	r, ok := sw.Done[seedKey(seed)]
	return r, ok
}

// record stores one completed seed result and flushes according to
// FlushEvery. Errors are returned so the runner can surface a read-only
// checkpoint directory instead of silently losing progress.
func (c *Checkpoint) record(fp string, seed uint64, res Result) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sw := c.data.Sweeps[fp]
	if sw == nil {
		sw = &checkpointSweep{Done: make(map[string]Result)}
		c.data.Sweeps[fp] = sw
	}
	sw.Done[seedKey(seed)] = res
	c.dirty++
	every := c.FlushEvery
	if every <= 0 {
		every = 1
	}
	if c.dirty >= every {
		return c.flushLocked()
	}
	return nil
}

// Output returns the cached rendered text for a named experiment section.
func (c *Checkpoint) Output(name string) (string, bool) {
	if c == nil {
		return "", false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out, ok := c.data.Outputs[name]
	return out.Text, ok
}

// PutOutput caches the rendered text of a named experiment section and
// flushes immediately, so a killed `experiments all` resumes past every
// section that finished rendering.
func (c *Checkpoint) PutOutput(name, text string) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data.Outputs[name] = checkpointOutput{Text: text}
	return c.flushLocked()
}

// Probe returns the cached JSON encoding of a probe cell's result, keyed
// by the cell fingerprint.
func (c *Checkpoint) Probe(fp string) (json.RawMessage, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, ok := c.data.Probes[fp]
	return raw, ok
}

// PutProbe caches a probe cell's result (any JSON-encodable value) under
// the cell fingerprint and flushes according to FlushEvery, so a killed
// campaign resumes past every deterministic probe that completed.
func (c *Checkpoint) PutProbe(fp string, v any) error {
	if c == nil {
		return nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sim: marshal probe result: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.data.Probes == nil {
		c.data.Probes = make(map[string]json.RawMessage)
	}
	c.data.Probes[fp] = raw
	c.dirty++
	every := c.FlushEvery
	if every <= 0 {
		every = 1
	}
	if c.dirty >= every {
		return c.flushLocked()
	}
	return nil
}

// Flush forces pending state to disk.
func (c *Checkpoint) Flush() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

// flushLocked writes the checkpoint atomically: marshal, write a temp file
// in the same directory, rename over the target. Requires c.mu held.
func (c *Checkpoint) flushLocked() error {
	raw, err := json.MarshalIndent(&c.data, "", " ")
	if err != nil {
		return fmt.Errorf("sim: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(c.path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("sim: checkpoint temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("sim: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("sim: close checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, c.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("sim: rename checkpoint: %w", err)
	}
	c.dirty = 0
	return nil
}

// seedKey renders a seed as a stable JSON map key.
func seedKey(seed uint64) string { return fmt.Sprintf("%#x", seed) }

// Fingerprint derives the checkpoint key for one sweep. It hashes the
// JSON encoding of the config (Factory is excluded via its json:"-" tag;
// FactoryLabel stands in for it), the technique name and the sorted seed
// set, so any change to the experiment invalidates the cached results
// instead of silently reusing them.
func Fingerprint(cfg Config, technique string, seeds []uint64) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	// Encoding errors are impossible for these types; ignore them so the
	// fingerprint is infallible at call sites.
	_ = enc.Encode(cfg)
	_ = enc.Encode(technique)
	sorted := append([]uint64(nil), seeds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	_ = enc.Encode(sorted)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// ProbeFingerprint derives the checkpoint key for one probe cell from
// its stable cell key. The key must encode every parameter the probe's
// result depends on (device scale, seeds, trial counts); the campaign
// layer's key builders guarantee that.
func ProbeFingerprint(key string) string {
	h := sha256.Sum256([]byte("probe\x00" + key))
	return hex.EncodeToString(h[:16])
}

// Runner bundles the hardened pool configuration with an optional
// checkpoint. It is the front door for experiment drivers: construct one
// Runner per process, call RunSeeds for every sweep, and killed processes
// resume from whatever the checkpoint captured.
type Runner struct {
	Config     RunnerConfig
	Checkpoint *Checkpoint // nil disables persistence
}

// NewRunner returns a Runner with DefaultRunnerConfig and no checkpoint.
func NewRunner() *Runner { return &Runner{Config: DefaultRunnerConfig()} }

// RunSeeds executes the sweep under ctx, consulting the checkpoint for
// already-completed seeds and recording each newly completed seed as it
// finishes. The summary always aggregates results in seed order —
// checkpointed and fresh alike — so resumed and uninterrupted runs emit
// identical tables.
func (r *Runner) RunSeeds(ctx context.Context, cfg Config, technique string, seeds []uint64) (Summary, []*RunError, error) {
	if len(seeds) == 0 {
		return Summary{}, nil, fmt.Errorf("sim: no seeds")
	}
	fp := Fingerprint(cfg, technique, seeds)
	// A custom Factory without a FactoryLabel is invisible to the
	// fingerprint (two different closures would collide), so such sweeps
	// bypass the checkpoint entirely — the documented Config contract.
	ck := r.Checkpoint
	if cfg.Factory != nil && cfg.FactoryLabel == "" {
		ck = nil
	}

	cached := make([]*Result, len(seeds))
	var todo []uint64
	todoIdx := make(map[uint64]int, len(seeds))
	for i, s := range seeds {
		if res, ok := ck.lookup(fp, s); ok {
			resCopy := res
			cached[i] = &resCopy
			continue
		}
		if _, dup := todoIdx[s]; !dup {
			todoIdx[s] = i
			todo = append(todo, s)
		}
	}

	var failed []*RunError
	if len(todo) > 0 {
		rc := r.Config
		inner := rc.runFn
		if inner == nil {
			inner = RunCtx
		}
		var mu sync.Mutex
		fresh := make(map[uint64]Result, len(todo))
		var ckptErr error
		rc.runFn = func(ctx context.Context, c Config, tech string) (Result, error) {
			res, err := inner(ctx, c, tech)
			if err == nil {
				mu.Lock()
				fresh[c.Seed] = res
				if e := ck.record(fp, c.Seed, res); e != nil && ckptErr == nil {
					ckptErr = e
				}
				mu.Unlock()
			}
			return res, err
		}
		_, errs, err := RunSeedsCtx(ctx, rc, cfg, technique, todo)
		if err != nil {
			return Summary{}, nil, err
		}
		failed = errs
		if ckptErr != nil {
			return Summary{}, nil, ckptErr
		}
		for s, res := range fresh {
			resCopy := res
			cached[todoIdx[s]] = &resCopy
		}
	}

	// Aggregate in seed order regardless of completion order or cache
	// provenance.
	var completed []Result
	for i := range seeds {
		if cached[i] == nil {
			// Duplicate seeds share the first occurrence's result.
			if j, ok := todoIdx[seeds[i]]; ok && cached[j] != nil {
				completed = append(completed, *cached[j])
			}
			continue
		}
		completed = append(completed, *cached[i])
	}
	return Summarize(completed), failed, nil
}

package sim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryJitterDeterministicPerSeed(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		j := NewRetryJitter(10*time.Millisecond, 0, seed)
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = j.Next()
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at step %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules — jitter is not decorrelating")
	}
}

func TestRetryJitterRespectsBounds(t *testing.T) {
	base, cap := 5*time.Millisecond, 40*time.Millisecond
	j := NewRetryJitter(base, cap, 7)
	for i := 0; i < 100; i++ {
		d := j.Next()
		if d < base || d > cap {
			t.Fatalf("step %d: delay %v outside [%v, %v]", i, d, base, cap)
		}
	}
}

func TestRetryJitterDefaults(t *testing.T) {
	j := NewRetryJitter(0, 0, 1)
	if d := j.Next(); d < 10*time.Millisecond || d > 640*time.Millisecond {
		t.Fatalf("defaulted jitter produced %v, want within [10ms, 64×10ms]", d)
	}
}

// TestRunnerBackoffDesyncAcrossSeeds pins the satellite fix: two seeds
// failing in lockstep must not share a retry schedule (the old
// deterministic doubling gave every worker the same sleeps).
func TestRunnerBackoffDesyncAcrossSeeds(t *testing.T) {
	rc := DefaultRunnerConfig()
	j1, j2 := rc.jitter(1), rc.jitter(2)
	diverged := false
	for i := 0; i < 8; i++ {
		if j1.Next() != j2.Next() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("per-seed retry schedules are identical")
	}
}

func TestHeartbeatNilSafe(t *testing.T) {
	var hb *Heartbeat
	hb.Tick() // must not panic
	if hb.Ticks() != 0 {
		t.Fatal("nil heartbeat reported ticks")
	}
	if got := HeartbeatFrom(context.Background()); got != nil {
		t.Fatalf("bare context produced a heartbeat: %v", got)
	}
}

// TestStallWatchdogCancelsAndRetries wedges the first attempt after one
// heartbeat tick: the watchdog must cancel it, the failure must classify
// as ErrStalled (transient), and the retry must succeed.
func TestStallWatchdogCancelsAndRetries(t *testing.T) {
	var attempts atomic.Int64
	rc := stubRunner(func(ctx context.Context, c Config, _ string) (Result, error) {
		if attempts.Add(1) == 1 {
			hb := HeartbeatFrom(ctx)
			if hb == nil {
				return Result{}, errors.New("no heartbeat in context")
			}
			hb.Tick()
			<-ctx.Done() // wedge: no further ticks until cancelled
			return Result{}, ctx.Err()
		}
		return Result{Seed: c.Seed}, nil
	})
	rc.Retries = 2
	rc.StallTimeout = 30 * time.Millisecond
	sum, runErrs, err := RunSeedsCtx(context.Background(), rc, fastConfig(), "", []uint64{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(runErrs) != 0 {
		t.Fatalf("stalled attempt was not retried to success: %v", runErrs)
	}
	if len(sum.Runs) != 1 || attempts.Load() != 2 {
		t.Fatalf("runs=%d attempts=%d, want 1 run after 2 attempts", len(sum.Runs), attempts.Load())
	}
}

// TestStallErrorSurfacesWhenRetriesExhausted pins the classification: a
// run that keeps stalling reports ErrStalled, not a bare cancellation.
func TestStallErrorSurfacesWhenRetriesExhausted(t *testing.T) {
	rc := stubRunner(func(ctx context.Context, _ Config, _ string) (Result, error) {
		HeartbeatFrom(ctx).Tick()
		<-ctx.Done()
		return Result{}, ctx.Err()
	})
	rc.Retries = 1
	rc.StallTimeout = 20 * time.Millisecond
	_, runErrs, err := RunSeedsCtx(context.Background(), rc, fastConfig(), "", []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(runErrs) != 1 {
		t.Fatalf("got %d run errors, want 1", len(runErrs))
	}
	if !errors.Is(runErrs[0], ErrStalled) {
		t.Fatalf("error %v is not ErrStalled", runErrs[0])
	}
	if runErrs[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (stalls are transient)", runErrs[0].Attempts)
	}
}

// TestNeverTickingWorkloadExemptFromWatchdog pins the exemption: a
// workload that never reports progress cannot be distinguished from a
// wedge, so the watchdog must not judge it.
func TestNeverTickingWorkloadExemptFromWatchdog(t *testing.T) {
	rc := stubRunner(func(ctx context.Context, c Config, _ string) (Result, error) {
		select {
		case <-time.After(80 * time.Millisecond): // 4× the stall timeout, zero ticks
			return Result{Seed: c.Seed}, nil
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
	})
	rc.StallTimeout = 20 * time.Millisecond
	sum, runErrs, err := RunSeedsCtx(context.Background(), rc, fastConfig(), "", []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(runErrs) != 0 {
		t.Fatalf("silent workload was judged by the watchdog: %v", runErrs)
	}
	if len(sum.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(sum.Runs))
	}
}

// TestRealSimulationTicksHeartbeat checks the production wiring: a real
// batched run under a stall watchdog ticks (and therefore finishes,
// because it genuinely progresses).
func TestRealSimulationTicksHeartbeat(t *testing.T) {
	hb := &Heartbeat{}
	ctx := WithHeartbeat(context.Background(), hb)
	cfg := fastConfig()
	if _, err := RunCtx(ctx, cfg, "PARA"); err != nil {
		t.Fatal(err)
	}
	if hb.Ticks() == 0 {
		t.Fatal("batched simulation never ticked its heartbeat")
	}
}

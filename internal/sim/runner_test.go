package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// stubRunner builds a RunnerConfig whose run function is fn, with retries
// disabled unless configured otherwise.
func stubRunner(fn func(context.Context, Config, string) (Result, error)) RunnerConfig {
	rc := DefaultRunnerConfig()
	rc.Retries = 0
	rc.Backoff = time.Microsecond
	rc.runFn = fn
	return rc
}

func TestRunSeedsCtxNoSeeds(t *testing.T) {
	_, _, err := RunSeedsCtx(context.Background(), DefaultRunnerConfig(), fastConfig(), "", nil)
	if err == nil {
		t.Fatal("empty seed set accepted")
	}
}

func TestRunSeedsCtxAggregatesAllSeeds(t *testing.T) {
	rc := stubRunner(func(_ context.Context, c Config, _ string) (Result, error) {
		return Result{Seed: c.Seed, Flips: 1, TotalActs: 10, ExtraActs: 1}, nil
	})
	seeds := Seeds(1, 8)
	sum, runErrs, err := RunSeedsCtx(context.Background(), rc, fastConfig(), "", seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(runErrs) != 0 {
		t.Fatalf("unexpected run errors: %v", runErrs)
	}
	if len(sum.Runs) != len(seeds) || sum.TotalFlips != len(seeds) {
		t.Fatalf("got %d runs / %d flips, want %d / %d", len(sum.Runs), sum.TotalFlips, len(seeds), len(seeds))
	}
	// Aggregation must follow seed order regardless of worker scheduling.
	for i, r := range sum.Runs {
		if r.Seed != seeds[i] {
			t.Fatalf("run %d has seed %#x, want %#x", i, r.Seed, seeds[i])
		}
	}
}

func TestRunSeedsCtxPanicBecomesRunError(t *testing.T) {
	rc := stubRunner(func(_ context.Context, c Config, _ string) (Result, error) {
		if c.Seed == 3 {
			panic("worker exploded")
		}
		return Result{Seed: c.Seed}, nil
	})
	seeds := []uint64{1, 2, 3, 4}
	sum, runErrs, err := RunSeedsCtx(context.Background(), rc, fastConfig(), "", seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Runs) != 3 {
		t.Fatalf("completed %d runs, want 3 (partial results must survive a panic)", len(sum.Runs))
	}
	if len(runErrs) != 1 || runErrs[0].Seed != 3 {
		t.Fatalf("run errors = %v, want exactly seed 3", runErrs)
	}
	var pe *PanicError
	if !errors.As(runErrs[0].Err, &pe) {
		t.Fatalf("error %v does not unwrap to PanicError", runErrs[0].Err)
	}
	if pe.Stack == "" {
		t.Fatal("panic stack not captured")
	}
}

func TestRunSeedsCtxRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	rc := stubRunner(func(_ context.Context, c Config, _ string) (Result, error) {
		if calls.Add(1) < 3 {
			return Result{}, fmt.Errorf("transient glitch")
		}
		return Result{Seed: c.Seed}, nil
	})
	rc.Retries = 3
	sum, runErrs, err := RunSeedsCtx(context.Background(), rc, fastConfig(), "", []uint64{7})
	if err != nil {
		t.Fatal(err)
	}
	if len(runErrs) != 0 {
		t.Fatalf("seed failed despite retries: %v", runErrs)
	}
	if len(sum.Runs) != 1 || calls.Load() != 3 {
		t.Fatalf("runs=%d calls=%d, want 1 run after 3 calls", len(sum.Runs), calls.Load())
	}
}

func TestRunSeedsCtxPermanentNotRetried(t *testing.T) {
	var calls atomic.Int64
	rc := stubRunner(func(context.Context, Config, string) (Result, error) {
		calls.Add(1)
		return Result{}, permanent(fmt.Errorf("bad config"))
	})
	rc.Retries = 5
	_, runErrs, err := RunSeedsCtx(context.Background(), rc, fastConfig(), "", []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("permanent failure attempted %d times, want 1", calls.Load())
	}
	if len(runErrs) != 1 || !errors.Is(runErrs[0], ErrPermanent) {
		t.Fatalf("run errors = %v, want one ErrPermanent", runErrs)
	}
	if runErrs[0].Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1", runErrs[0].Attempts)
	}
}

func TestRunSeedsCtxPerRunTimeoutIsPermanent(t *testing.T) {
	var calls atomic.Int64
	rc := stubRunner(func(ctx context.Context, c Config, _ string) (Result, error) {
		calls.Add(1)
		<-ctx.Done() // simulate a run that overruns its deadline
		return Result{}, ctx.Err()
	})
	rc.Retries = 4
	rc.PerRunTimeout = 5 * time.Millisecond
	_, runErrs, err := RunSeedsCtx(context.Background(), rc, fastConfig(), "", []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(runErrs) != 1 || !errors.Is(runErrs[0], ErrPermanent) {
		t.Fatalf("run errors = %v, want one permanent deadline failure", runErrs)
	}
	if calls.Load() != 1 {
		t.Fatalf("deterministic overrun retried %d times, want 1", calls.Load())
	}
}

func TestRunSeedsCtxCancellationPartialResultsNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var started atomic.Int64
	rc := stubRunner(func(ctx context.Context, c Config, _ string) (Result, error) {
		if c.Seed < 4 {
			return Result{Seed: c.Seed}, nil
		}
		// Later seeds block until canceled, like a long simulation.
		started.Add(1)
		select {
		case <-release:
			return Result{Seed: c.Seed}, nil
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
	})
	rc.Workers = 2

	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	done := make(chan struct{})
	var sum Summary
	var runErrs []*RunError
	go func() {
		defer close(done)
		sum, runErrs, _ = RunSeedsCtx(ctx, rc, fastConfig(), "", seeds)
	}()

	// Wait until the blocking seeds occupy the pool, then kill the sweep.
	deadline := time.After(5 * time.Second)
	for started.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("workers never reached the blocking seeds")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RunSeedsCtx did not return after cancellation")
	}
	close(release)

	if len(sum.Runs) < 3 {
		t.Fatalf("only %d completed results survived cancellation, want >= 3", len(sum.Runs))
	}
	if len(sum.Runs)+len(runErrs) != len(seeds) {
		t.Fatalf("results (%d) + errors (%d) != seeds (%d)", len(sum.Runs), len(runErrs), len(seeds))
	}
	foundCancel := false
	for _, re := range runErrs {
		if errors.Is(re, context.Canceled) {
			foundCancel = true
		}
	}
	if !foundCancel {
		t.Fatal("no RunError carries context.Canceled")
	}

	// No goroutine leak: the pool must drain completely.
	var after int
	for i := 0; i < 100; i++ {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before+1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after > before+1 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}
}

func TestRunSeedsCtxRealSimulation(t *testing.T) {
	// End-to-end: the hardened pool over the real RunCtx must reproduce
	// the sequential RunSeeds result exactly.
	cfg := fastConfig()
	seeds := Seeds(5, 4)
	want, err := RunSeeds(cfg, "PARA", seeds)
	if err != nil {
		t.Fatal(err)
	}
	got, runErrs, err := RunSeedsCtx(context.Background(), DefaultRunnerConfig(), cfg, "PARA", seeds)
	if err != nil || len(runErrs) != 0 {
		t.Fatalf("err=%v runErrs=%v", err, runErrs)
	}
	if got.Overhead.Mean() != want.Overhead.Mean() || got.TotalFlips != want.TotalFlips ||
		got.ExtraActs != want.ExtraActs || got.TotalActs != want.TotalActs {
		t.Fatalf("pooled summary diverged from sequential:\n got %+v\nwant %+v", got, want)
	}
}

func TestRunSeedsCtxInvalidConfigPermanent(t *testing.T) {
	cfg := fastConfig()
	cfg.Windows = -1
	_, runErrs, err := RunSeedsCtx(context.Background(), DefaultRunnerConfig(), cfg, "PARA", []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(runErrs) != 1 || !errors.Is(runErrs[0], ErrPermanent) {
		t.Fatalf("invalid config produced %v, want one permanent RunError", runErrs)
	}
	if runErrs[0].Attempts != 1 {
		t.Fatalf("invalid config attempted %d times, want 1", runErrs[0].Attempts)
	}
}

func TestRunErrorUnwrap(t *testing.T) {
	base := errors.New("boom")
	re := &RunError{Seed: 9, Attempts: 2, Err: base}
	if !errors.Is(re, base) {
		t.Fatal("RunError does not unwrap to its cause")
	}
	if re.Error() == "" {
		t.Fatal("empty error string")
	}
}

package sim

import (
	"context"
	"testing"

	"tivapromi/internal/faults"
)

// shrunkenConfig is a reduced geometry that still exercises every hot-path
// structure (history tables, counters, aggressor bitset, weak cells) in a
// few hundred milliseconds per run.
func shrunkenConfig() Config {
	cfg := DefaultConfig()
	cfg.Windows = 1
	cfg.Params.Banks = 2
	cfg.Params.RowsPerBank = 4096
	cfg.Params.RefInt = 256
	cfg.Params.FlipThreshold = 10240
	cfg.AttackBanks = []int{1}
	return cfg
}

// TestBatchSizesMatchReference is the batching-equivalence contract: for
// every batch size — including 1, a prime that misaligns with every
// internal boundary, the default's neighborhood, and one far larger than
// an interval's access count — RunCtxBatch must produce the identical
// Result to the unbatched reference driver. Covered axes: a probabilistic
// technique, a counter technique, an unprotected run, a non-default
// refresh policy, and a remapped device.
func TestBatchSizesMatchReference(t *testing.T) {
	cases := []struct {
		name      string
		technique string
		mutate    func(*Config)
	}{
		{name: "LiPRoMi", technique: "LiPRoMi"},
		{name: "TWiCe", technique: "TWiCe"},
		{name: "unprotected", technique: ""},
		{name: "PARA-random-policy", technique: "PARA",
			mutate: func(c *Config) { c.Policy = PolicyRandom }},
		{name: "CaPRoMi-remapped", technique: "CaPRoMi",
			mutate: func(c *Config) { c.RemapSwaps = 8 }},
	}
	ctx := context.Background()
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := shrunkenConfig()
			if tc.mutate != nil {
				tc.mutate(&cfg)
			}
			want, err := RunReferenceCtx(ctx, cfg, tc.technique)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			for _, batch := range []int{1, 7, 64, 4096} {
				got, err := RunCtxBatch(ctx, cfg, tc.technique, batch)
				if err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				if got != want {
					t.Errorf("batch %d: result diverged from reference\n got: %+v\nwant: %+v",
						batch, got, want)
				}
			}
		})
	}
}

// TestBatchedFaultPlanMatchesReference pins the delicate part of the
// batching rework: the weak-cell injector tick, which the reference driver
// fires inside the generator closure and the batched driver fires through
// memctrl.SetAccessTick. Both must tick exactly once before each serviced
// access, or the injector's RNG stream shears away from the device state.
func TestBatchedFaultPlanMatchesReference(t *testing.T) {
	ctx := context.Background()
	cfg := shrunkenConfig()
	cfg.Fault = faults.Plan{Model: faults.WeakCells, Rate: 0.001, Seed: 7}
	want, err := RunReferenceCtx(ctx, cfg, "LiPRoMi")
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	for _, batch := range []int{1, 7, 64, 4096} {
		got, err := RunCtxBatch(ctx, cfg, "LiPRoMi", batch)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if got != want {
			t.Errorf("batch %d with weak-cell plan: result diverged\n got: %+v\nwant: %+v",
				batch, got, want)
		}
	}
	// A state-upset plan exercises the Harness wrap path too.
	cfg.Fault = faults.Plan{Model: faults.StateSEU, Rate: 0.0005, Seed: 11}
	want, err = RunReferenceCtx(ctx, cfg, "CaPRoMi")
	if err != nil {
		t.Fatalf("reference SEU: %v", err)
	}
	got, err := RunCtxBatch(ctx, cfg, "CaPRoMi", 64)
	if err != nil {
		t.Fatalf("batched SEU: %v", err)
	}
	if got != want {
		t.Errorf("SEU plan: batched diverged\n got: %+v\nwant: %+v", got, want)
	}
}

// TestRunCtxUsesDefaultBatch pins that the production entry point and an
// explicit default-batch call agree (RunCtx must stay a thin delegate).
func TestRunCtxUsesDefaultBatch(t *testing.T) {
	ctx := context.Background()
	cfg := shrunkenConfig()
	a, err := RunCtx(ctx, cfg, "LoPRoMi")
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCtxBatch(ctx, cfg, "LoPRoMi", 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("RunCtx and RunCtxBatch(0) disagree:\n%+v\n%+v", a, b)
	}
}

package sim

import (
	"context"
	"testing"

	"tivapromi/internal/dram"
)

// TestScaleSmokeHeapBounded is the population-scale memory gate: a
// full-DIMM geometry (32 banks, 2M rows) must simulate with heap bounded
// by the rows the attacker-dominated workload touches, not the
// population. CI's scale-smoke job runs exactly this test.
func TestScaleSmokeHeapBounded(t *testing.T) {
	p := dram.FullDIMMParams()
	if !p.Sparse() {
		t.Fatalf("FullDIMMParams (%d rows) must resolve sparse under Auto", p.TotalRows())
	}
	cfg := ScaleSmokeConfig(p)
	rep, err := ScaleSmoke(context.Background(), cfg, "PARA")
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalActs == 0 {
		t.Fatal("smoke run serviced no activations")
	}
	if rep.TouchedRows == 0 || rep.TouchedRows >= rep.TotalRows {
		t.Fatalf("TouchedRows = %d, want 0 < n < %d", rep.TouchedRows, rep.TotalRows)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("scale gate failed: %v\nreport: %+v", err, rep)
	}
	t.Logf("geometry=%s touched=%d/%d state=%dB dense=%dB heap+=%dB acts=%d extra=%d flips=%d in %.2fs",
		rep.Geometry, rep.TouchedRows, rep.TotalRows, rep.StateBytes, rep.DenseBytes,
		rep.HeapGrowth, rep.TotalActs, rep.ExtraActs, rep.Flips, rep.Seconds)
}

// TestScaleSmokeConfigValidates pins that the generated smoke config is
// runnable as-is for both the full-DIMM and the small seed geometry.
func TestScaleSmokeConfigValidates(t *testing.T) {
	for _, p := range []dram.Params{dram.FullDIMMParams(), dram.ScaledParams()} {
		cfg := ScaleSmokeConfig(p)
		if err := cfg.Validate(); err != nil {
			t.Errorf("ScaleSmokeConfig(%s): %v", GeometryString(p), err)
		}
	}
}

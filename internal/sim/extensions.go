package sim

import (
	"context"

	"tivapromi/internal/dram"
	"tivapromi/internal/mitigation"
)

// ExtensionTechniques returns the techniques implemented beyond the
// paper's nine: the adaptive tree of counters its related work surveys
// (CAT), the in-DRAM sampler deployed in commodity DDR4 (TRR), and the
// quadratic-weighting TiVaPRoMi variant its future work invites
// (QuaPRoMi).
func ExtensionTechniques() []string { return []string{"CAT", "TRR", "QuaPRoMi"} }

// ExtVulnReport extends VulnReport with the two attack probes that
// target tracking structures specifically: decoy starvation (TRRespass
// style: flood hotter decoy rows so a tiny sampler never retains the
// aggressors) and spread saturation (the paper's tree critique: fill the
// structure with spread activations before hammering).
type ExtVulnReport struct {
	VulnReport
	// DecoyRatio is the aggressor-protection rate with 12 hotter decoys
	// per aggressor activation relative to a focused attack.
	DecoyRatio float64
	// SaturationRatio is the protection rate after pre-filling the
	// tracking structure with spread activations relative to a focused
	// attack on an idle structure.
	SaturationRatio float64
}

// AnalyzeExtension runs all probes for one technique (works for the
// paper's nine too; the classification additionally flags decoy or
// saturation collapse).
func AnalyzeExtension(technique string, p dram.Params, seed uint64) (ExtVulnReport, error) {
	return AnalyzeExtensionCtx(context.Background(), technique, p, seed)
}

// AnalyzeExtensionCtx is AnalyzeExtension with cooperative cancellation
// threaded through every probe.
func AnalyzeExtensionCtx(ctx context.Context, technique string, p dram.Params, seed uint64) (ExtVulnReport, error) {
	base, err := AnalyzeVulnerabilityCtx(ctx, technique, p, seed)
	if err != nil {
		return ExtVulnReport{}, err
	}
	rep := ExtVulnReport{VulnReport: base}
	rep.DecoyRatio, err = decoyProbe(ctx, technique, p, seed)
	if err != nil {
		return rep, err
	}
	rep.SaturationRatio, err = saturationProbe(ctx, technique, p, seed)
	if err != nil {
		return rep, err
	}
	if !rep.Vulnerable {
		switch {
		case rep.DecoyRatio < RotationLimit:
			rep.Vulnerable = true
			rep.Reason = "decoy rows starve the sampler (TRRespass-style)"
		case rep.SaturationRatio < RotationLimit:
			rep.Vulnerable = true
			rep.Reason = "spread activations saturate the tracking structure"
		}
	}
	return rep, nil
}

// decoyProbe hammers one victim's aggressor pair, optionally interleaving
// 12 decoy activations per aggressor activation, and compares the
// per-aggressor-activation protection rates.
func decoyProbe(ctx context.Context, technique string, p dram.Params, seed uint64) (float64, error) {
	factory, err := mitigation.Lookup(technique)
	if err != nil {
		return 0, err
	}
	target := mitigation.Target{
		Banks: 1, RowsPerBank: p.RowsPerBank, RefInt: p.RefInt,
		FlipThreshold: p.FlipThreshold,
	}
	victim := p.RowsPerBank / 4
	run := func(decoys int) (float64, error) {
		m := factory(target, seed)
		victims := map[int]bool{victim: true}
		protections, aggActs := 0, 0
		var cmds []mitigation.Command
		for iv := 0; iv < p.RefInt; iv++ {
			if iv&0x3f == 0 {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
			for i := 0; i < p.MaxActsPerRI/(1+decoys)+1; i++ {
				row := victim - 1 + 2*(i&1)
				aggActs++
				cmds = m.OnActivate(0, row, iv, cmds[:0])
				protections += countProtections(cmds, victims)
				// A fixed small decoy set, so each decoy row runs twice
				// as hot as each aggressor row — exactly what dominates a
				// frequency sampler.
				for d := 0; d < decoys; d++ {
					decoy := p.RowsPerBank/2 + 2*d
					cmds = m.OnActivate(0, decoy, iv, cmds[:0])
					protections += countProtections(cmds, victims)
				}
			}
			cmds = m.OnRefreshInterval(iv, cmds[:0])
			protections += countProtections(cmds, victims)
		}
		return float64(protections) / float64(aggActs), nil
	}
	focused, err := run(0)
	if err != nil {
		return 0, err
	}
	if focused == 0 {
		return 0, nil
	}
	decoyed, err := run(12)
	if err != nil {
		return 0, err
	}
	return decoyed / focused, nil
}

// saturationProbe pre-fills the mitigation with one window of activations
// spread over 512 rows (the tree-fill pattern the paper describes), then
// hammers one victim and compares the protection rate with an attack on
// an idle structure.
func saturationProbe(ctx context.Context, technique string, p dram.Params, seed uint64) (float64, error) {
	factory, err := mitigation.Lookup(technique)
	if err != nil {
		return 0, err
	}
	target := mitigation.Target{
		Banks: 1, RowsPerBank: p.RowsPerBank, RefInt: p.RefInt,
		FlipThreshold: p.FlipThreshold,
	}
	victim := p.RowsPerBank / 4
	run := func(prefill bool) (float64, error) {
		m := factory(target, seed)
		victims := map[int]bool{victim: true}
		protections, acts := 0, 0
		var cmds []mitigation.Command
		stride := p.RowsPerBank / 512
		pos := 0
		half := p.RefInt / 2
		for iv := 0; iv < p.RefInt; iv++ {
			if iv&0x3f == 0 {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
			for i := 0; i < p.MaxActsPerRI; i++ {
				// Phase 1 (first half window): fill the structure with
				// spread activations — the paper's "fill all the levels
				// of the tree" pattern. Phase 2: hammer the victim and
				// measure protection.
				if iv < half {
					if !prefill {
						continue
					}
					row := (pos * stride) % p.RowsPerBank
					pos++
					cmds = m.OnActivate(0, row, iv, cmds[:0])
					protections += countProtections(cmds, victims)
					continue
				}
				row := victim - 1 + 2*(i&1)
				acts++
				cmds = m.OnActivate(0, row, iv, cmds[:0])
				protections += countProtections(cmds, victims)
			}
			cmds = m.OnRefreshInterval(iv, cmds[:0])
			if iv >= half {
				protections += countProtections(cmds, victims)
			}
		}
		return float64(protections) / float64(acts), nil
	}
	clean, err := run(false)
	if err != nil {
		return 0, err
	}
	if clean == 0 {
		return 0, nil
	}
	saturated, err := run(true)
	if err != nil {
		return 0, err
	}
	return saturated / clean, nil
}

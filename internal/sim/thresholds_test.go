package sim

import (
	"math"
	"testing"

	"tivapromi/internal/dram"
)

func TestThresholdSweepPaperPoint(t *testing.T) {
	// At the paper's 139 K threshold the sweep must agree with the
	// Table III classification: only LiPRoMi (of the flood-sensitive
	// techniques) crosses the survival limit.
	pts := ThresholdSweep(dram.PaperParams(), []uint32{139000})
	if len(pts) != 9 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if math.IsNaN(pt.Survival) {
			t.Fatalf("%s: no analytic form", pt.Technique)
		}
		wantSafe := pt.Technique != "LiPRoMi"
		if pt.Safe != wantSafe {
			t.Errorf("%s at 139K: safe=%v (survival %.2e), want %v",
				pt.Technique, pt.Safe, pt.Survival, wantSafe)
		}
	}
}

func TestThresholdSweepDegradesMonotonically(t *testing.T) {
	// Lower thresholds must never improve a probabilistic technique's
	// survival (fewer Bernoulli trials before the flip).
	p := dram.PaperParams()
	thresholds := []uint32{10000, 35000, 70000, 139000}
	pts := ThresholdSweep(p, thresholds)
	byTech := map[string][]float64{}
	for _, pt := range pts {
		byTech[pt.Technique] = append(byTech[pt.Technique], pt.Survival)
	}
	for tech, survs := range byTech {
		for i := 1; i < len(survs); i++ {
			if survs[i] > survs[i-1]+1e-12 {
				t.Errorf("%s: survival rose with threshold: %v", tech, survs)
			}
		}
	}
}

func TestThresholdSweepModernDRAM(t *testing.T) {
	// At a modern 35 K threshold, every probabilistic technique keeping
	// the paper's Pbase develops a survival tail, while the re-provisioned
	// counter techniques stay deterministic — the sweep's headline.
	pts := ThresholdSweep(dram.PaperParams(), []uint32{35000})
	for _, pt := range pts {
		switch pt.Technique {
		case "TWiCe", "CRA":
			if pt.Survival != 0 {
				t.Errorf("%s: counters should stay deterministic, survival %.2e",
					pt.Technique, pt.Survival)
			}
		case "LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi":
			if pt.Safe {
				t.Errorf("%s at 35K with the paper's Pbase should not be safe (survival %.2e)",
					pt.Technique, pt.Survival)
			}
		}
	}
}

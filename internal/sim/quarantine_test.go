package sim

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestPruneQuarantine: only the newest keep corpses for the target path
// survive; unrelated siblings — other paths' corpses, non-corpse files,
// corpses without a parseable timestamp — are never touched.
func TestPruneQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")
	for ts := 1; ts <= 5; ts++ {
		name := fmt.Sprintf("cache.json.corrupt-%d", ts)
		if err := os.WriteFile(filepath.Join(dir, name), []byte("corpse"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	bystanders := []string{
		"other.json.corrupt-9",       // a different path's corpse
		"cache.json.bak",             // not a corpse at all
		"cache.json.corrupt-7.extra", // unparseable timestamp suffix
	}
	for _, name := range bystanders {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	removed, err := PruneQuarantine(nil, path, 3)
	if err != nil {
		t.Fatalf("prune: %v", err)
	}
	if removed != 2 {
		t.Fatalf("removed %d corpses, want 2 (keep the newest 3 of 5)", removed)
	}
	for ts := 1; ts <= 5; ts++ {
		name := filepath.Join(dir, fmt.Sprintf("cache.json.corrupt-%d", ts))
		_, statErr := os.Stat(name)
		if ts <= 2 && statErr == nil {
			t.Errorf("old corpse ts=%d survived the prune", ts)
		}
		if ts >= 3 && statErr != nil {
			t.Errorf("new corpse ts=%d was deleted: %v", ts, statErr)
		}
	}
	for _, name := range bystanders {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("bystander %s was deleted: %v", name, err)
		}
	}

	// Idempotent: within the bound, nothing more is removed.
	if removed, err := PruneQuarantine(nil, path, 3); err != nil || removed != 0 {
		t.Fatalf("second prune removed %d (err %v), want 0", removed, err)
	}
	// keep <= 0 selects the QuarantineKeep default (3): still nothing.
	if removed, err := PruneQuarantine(nil, path, 0); err != nil || removed != 0 {
		t.Fatalf("default-keep prune removed %d (err %v), want 0", removed, err)
	}
}

// TestQuarantineBoundOnRepeatedSalvage: a checkpoint that keeps getting
// damaged across restarts accumulates at most QuarantineKeep corpses —
// the load path prunes after each quarantine.
func TestQuarantineBoundOnRepeatedSalvage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	for i := 0; i < QuarantineKeep+3; i++ {
		if err := os.WriteFile(path, []byte("not a checkpoint at all"), 0o644); err != nil {
			t.Fatal(err)
		}
		ck, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatalf("round %d: load: %v", i, err)
		}
		if ck.LoadReport().Err == nil {
			t.Fatalf("round %d: garbage loaded without salvage", i)
		}
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corpses := 0
	for _, e := range names {
		if len(e.Name()) > len("ckpt.json.corrupt-") && e.Name()[:len("ckpt.json.corrupt-")] == "ckpt.json.corrupt-" {
			corpses++
		}
	}
	if corpses > QuarantineKeep {
		t.Fatalf("%d corpses on disk after repeated salvage, want at most %d", corpses, QuarantineKeep)
	}
	if corpses == 0 {
		t.Fatal("no corpses at all — quarantine never happened, test is vacuous")
	}
}

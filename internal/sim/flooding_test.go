package sim

import (
	"testing"

	"tivapromi/internal/dram"
	"tivapromi/internal/mitigation"
)

// floodParams keeps flooding tests fast: scaled device, full structure.
func floodParams() dram.Params { return dram.ScaledParams() }

func TestFloodValidation(t *testing.T) {
	p := floodParams()
	if _, err := Flood("LiPRoMi", p, 0, 5, 1); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Flood("LiPRoMi", p, 1000, 5, 1); err == nil {
		t.Fatal("rate above the DDR4 ceiling accepted")
	}
	if _, err := Flood("LiPRoMi", p, 100, 0, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := Flood("Nonsense", p, 100, 5, 1); err == nil {
		t.Fatal("unknown technique accepted")
	}
}

func TestFloodOrderingAcrossVariants(t *testing.T) {
	// §IV shape: the logarithmic variants protect earlier than the
	// linear one under flooding from weight zero.
	p := floodParams()
	medians := map[string]float64{}
	for _, name := range []string{"LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"} {
		f, err := Flood(name, p, p.MaxActsPerRI, 15, 3)
		if err != nil {
			t.Fatal(err)
		}
		if f.Unprotected != 0 {
			t.Fatalf("%s: %d trials never protected", name, f.Unprotected)
		}
		medians[name] = f.MedianActs
	}
	if medians["LoPRoMi"] >= medians["LiPRoMi"] {
		t.Errorf("LoPRoMi (%.0f) should protect before LiPRoMi (%.0f)",
			medians["LoPRoMi"], medians["LiPRoMi"])
	}
	if medians["LoLiPRoMi"] >= medians["LiPRoMi"] {
		t.Errorf("LoLiPRoMi (%.0f) should protect before LiPRoMi (%.0f)",
			medians["LoLiPRoMi"], medians["LiPRoMi"])
	}
	if medians["CaPRoMi"] >= medians["LiPRoMi"] {
		t.Errorf("CaPRoMi (%.0f) should protect before LiPRoMi (%.0f)",
			medians["CaPRoMi"], medians["LiPRoMi"])
	}
}

func TestFloodCountersDeterministic(t *testing.T) {
	p := floodParams()
	for _, name := range []string{"TWiCe", "CRA"} {
		f, err := Flood(name, p, p.MaxActsPerRI, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(p.FlipThreshold / 4)
		if f.MedianActs != want || f.P90Acts != want {
			t.Errorf("%s flood trigger at %.0f/%.0f, want deterministic %.0f",
				name, f.MedianActs, f.P90Acts, want)
		}
		if !f.AllSafe() {
			t.Errorf("%s not flood-safe", name)
		}
	}
}

func TestFloodAllCoversNineTechniques(t *testing.T) {
	p := floodParams()
	res, err := FloodAll(p, 100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 9 {
		t.Fatalf("FloodAll returned %d results", len(res))
	}
}

func TestProtectsClassification(t *testing.T) {
	cases := []struct {
		cmd  mitigation.Command
		row  int
		want bool
	}{
		{mitigation.Command{Kind: mitigation.ActN, Row: 100}, 100, true},
		{mitigation.Command{Kind: mitigation.ActN, Row: 101}, 100, false},
		{mitigation.Command{Kind: mitigation.ActNOne, Row: 100}, 100, true},
		{mitigation.Command{Kind: mitigation.RefreshRow, Row: 99}, 100, true},
		{mitigation.Command{Kind: mitigation.RefreshRow, Row: 101}, 100, true},
		{mitigation.Command{Kind: mitigation.RefreshRow, Row: 100}, 100, false},
	}
	for i, c := range cases {
		if got := protects([]mitigation.Command{c.cmd}, c.row); got != c.want {
			t.Errorf("case %d: protects = %v, want %v", i, got, c.want)
		}
	}
	if protects(nil, 100) {
		t.Error("empty command list protects")
	}
}

package sim

import (
	"bytes"
	"testing"

	"tivapromi/internal/trace"
)

func recordTestTrace(t *testing.T) *bytes.Buffer {
	t.Helper()
	cfg := fastConfig()
	cfg.MinAggressors, cfg.MaxAggressors = 2, 2
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{
		Banks:       cfg.Params.Banks,
		RowsPerBank: cfg.Params.RowsPerBank,
		RefInt:      cfg.Params.RefInt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := RecordTrace(cfg, w); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestRecordAndReplayUnprotected(t *testing.T) {
	buf := recordTestTrace(t)
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReplayTrace(r, "", dram40960())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalActs == 0 {
		t.Fatal("replay saw no activations")
	}
	if res.Flips == 0 {
		t.Fatal("replaying the recorded attack did not flip")
	}
}

func TestReplayWithMitigationPreventsFlips(t *testing.T) {
	buf := recordTestTrace(t)
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReplayTrace(r, "LoLiPRoMi", dram40960())
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips != 0 {
		t.Fatalf("replay under LoLiPRoMi flipped %d rows", res.Flips)
	}
	if res.ExtraActs == 0 {
		t.Fatal("mitigation idle during replayed attack")
	}
}

func TestReplayMatchesLiveRunActCount(t *testing.T) {
	// The trace captures exactly the activations the live run produced.
	cfg := fastConfig()
	cfg.MinAggressors, cfg.MaxAggressors = 2, 2
	live, err := Run(cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	buf := recordTestTrace(t)
	r, _ := trace.NewReader(bytes.NewReader(buf.Bytes()))
	replayed, err := ReplayTrace(r, "", dram40960())
	if err != nil {
		t.Fatal(err)
	}
	if replayed.TotalActs != live.TotalActs {
		t.Fatalf("trace has %d acts, live run %d", replayed.TotalActs, live.TotalActs)
	}
	if replayed.Flips != live.Flips {
		t.Fatalf("replay flips %d, live flips %d", replayed.Flips, live.Flips)
	}
}

func TestReplayUnknownTechnique(t *testing.T) {
	buf := recordTestTrace(t)
	r, _ := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := ReplayTrace(r, "Nonsense", 0); err == nil {
		t.Fatal("unknown technique accepted")
	}
}

// dram40960 returns the scaled flip threshold so replays match the
// recording configuration.
func dram40960() uint32 { return fastConfig().Params.FlipThreshold }

package sim

import (
	"context"
	"fmt"

	"tivapromi/internal/core"
	"tivapromi/internal/mitigation"
)

// AblationPoint is one configuration of an ablation sweep.
type AblationPoint struct {
	Label        string
	TableBytes   int // per-bank storage at paper scale
	OverheadMean float64
	OverheadStd  float64
	FPRMean      float64
	Flips        int
	// FloodMedian is the weight-aware flooding acts-to-first-protection
	// median at paper scale (security cost of the configuration).
	FloodMedian float64
}

// AblationPointOf assembles one sweep cell's summary into an
// AblationPoint (the campaign renderer's row source; FloodMedian is
// filled separately from the flood probe cell when the study has one).
func AblationPointOf(label string, sum Summary) AblationPoint {
	return AblationPoint{
		Label:        label,
		TableBytes:   sum.TableBytes,
		OverheadMean: sum.Overhead.Mean(),
		OverheadStd:  sum.Overhead.StdDev(),
		FPRMean:      sum.FPR.Mean(),
		Flips:        sum.TotalFlips,
	}
}

// HistoryAblationFactory builds a Fig. 2 variant with a non-default
// history-table size. Pair it with HistoryAblationLabel so the sweep is
// checkpoint-resumable despite the closure.
func HistoryAblationFactory(variant core.Variant, size int) mitigation.Factory {
	return func(t mitigation.Target, seed uint64) mitigation.Mitigator {
		c := core.DefaultConfig(t.RowsPerBank, t.RefInt)
		c.HistoryEntries = size
		return core.MustNew(variant, t.Banks, c, seed)
	}
}

// HistoryAblationLabel is the checkpoint fingerprint label for
// HistoryAblationFactory(variant, size).
func HistoryAblationLabel(variant core.Variant, size int) string {
	return fmt.Sprintf("ablation/history/v%d/%d", int(variant), size)
}

// HistoryBytesAtPaperScale returns the per-bank history storage of a
// size-entry table at the paper's full device scale.
func HistoryBytesAtPaperScale(size int) int {
	paperCfg := core.DefaultConfig(131072, 8192)
	paperCfg.HistoryEntries = size
	return paperCfg.HistoryBytes()
}

// CounterAblationFactory builds CaPRoMi with a non-default counter-table
// size. Validate the size with CounterAblationValidate before sweeping:
// the factory uses the Must constructor and would panic on a bad size
// inside a worker (the hardened pool would convert that into a RunError,
// but an upfront error is friendlier).
func CounterAblationFactory(size int) mitigation.Factory {
	return func(t mitigation.Target, seed uint64) mitigation.Mitigator {
		c := core.DefaultCaConfig(t.RowsPerBank, t.RefInt)
		c.CounterEntries = size
		return core.MustNewCa(t.Banks, c, seed)
	}
}

// CounterAblationValidate reports whether a counter-table size is valid
// for the swept configuration.
func CounterAblationValidate(cfg Config, size int) error {
	probe := core.DefaultCaConfig(cfg.Params.RowsPerBank, cfg.Params.RefInt)
	probe.CounterEntries = size
	if err := probe.Validate(); err != nil {
		return fmt.Errorf("sim: counter ablation size %d: %w", size, err)
	}
	return nil
}

// CounterAblationLabel is the checkpoint fingerprint label for
// CounterAblationFactory(size).
func CounterAblationLabel(size int) string {
	return fmt.Sprintf("ablation/counter/%d", size)
}

// CounterBytesAtPaperScale returns CaPRoMi's per-bank storage with a
// size-entry counter table at the paper's full device scale.
func CounterBytesAtPaperScale(size int) int {
	paperCfg := core.DefaultCaConfig(131072, 8192)
	paperCfg.CounterEntries = size
	return paperCfg.TotalBytes()
}

// PbaseAblationFactory builds a Fig. 2 variant with the base probability
// scaled by 2^-delta comparator bits.
func PbaseAblationFactory(variant core.Variant, delta int) mitigation.Factory {
	return func(t mitigation.Target, seed uint64) mitigation.Mitigator {
		c := core.DefaultConfig(t.RowsPerBank, t.RefInt)
		c.ProbBitsDelta = delta
		return core.MustNew(variant, t.Banks, c, seed)
	}
}

// PbaseAblationLabel is the checkpoint fingerprint label for
// PbaseAblationFactory(variant, delta).
func PbaseAblationLabel(variant core.Variant, delta int) string {
	return fmt.Sprintf("ablation/pbase/v%d/%+d", int(variant), delta)
}

// PbaseFloodMedian runs the paper-scale security probe of one Pbase
// ablation point: the weight-aware flood's acts-to-first-protection
// median (the cap stands in when any trial never protects).
func PbaseFloodMedian(ctx context.Context, cfg Config, variant core.Variant, delta int, trials int, seed uint64) (float64, error) {
	pp := cfg.Params
	pp.Banks = 1
	flood, err := floodWithFactory(ctx, PbaseAblationFactory(variant, delta), pp, pp.MaxActsPerRI, trials, seed)
	if err != nil {
		return 0, err
	}
	if flood.Unprotected > 0 {
		return float64(flood.Cap), nil
	}
	return flood.MedianActs, nil
}

// AblateHistorySize sweeps the history-table size for a Fig. 2 variant.
// The paper's 32 entries were "the best optimization based on the
// simulated memory traces"; the sweep shows the trade-off that led there:
// smaller tables forget triggered aggressors (higher overhead), larger
// ones only add storage. Library convenience over the per-size cells the
// campaign engine schedules in parallel (campaign.AblationSpec).
func AblateHistorySize(cfg Config, variant core.Variant, sizes []int, seeds []uint64) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, size := range sizes {
		pt, err := ablate(cfg, fmt.Sprintf("%d entries", size),
			HistoryAblationFactory(variant, size), HistoryAblationLabel(variant, size), seeds)
		if err != nil {
			return nil, err
		}
		// Storage at paper scale: size entries of 30 bits.
		pt.TableBytes = HistoryBytesAtPaperScale(size)
		out = append(out, pt)
	}
	return out, nil
}

// AblateCounterSize sweeps CaPRoMi's counter-table size. The paper
// chooses 64 entries by "optimizing between" the DDR4 per-interval
// activation ceiling (165) and the traces' average (≈40).
func AblateCounterSize(cfg Config, sizes []int, seeds []uint64) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, size := range sizes {
		// Validate the swept configuration up front, where an error can be
		// returned; the factory then uses the Must constructor on a config
		// already known good instead of panicking mid-sweep inside a worker.
		if err := CounterAblationValidate(cfg, size); err != nil {
			return nil, err
		}
		pt, err := ablate(cfg, fmt.Sprintf("%d entries", size),
			CounterAblationFactory(size), CounterAblationLabel(size), seeds)
		if err != nil {
			return nil, err
		}
		pt.TableBytes = CounterBytesAtPaperScale(size)
		out = append(out, pt)
	}
	return out, nil
}

// AblatePbase sweeps the base probability around the paper's choice
// (RefInt * Pbase ≈ 0.001, delta = 0) for a Fig. 2 variant. Each extra
// bit of comparator resolution halves every probability: overhead drops,
// but the flooding reaction slows — the knob the paper fixes by matching
// PARA's effective probability.
func AblatePbase(cfg Config, variant core.Variant, deltas []int, seeds []uint64) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, delta := range deltas {
		pt, err := ablate(cfg, fmt.Sprintf("Pbase x 2^%+d", -delta),
			PbaseAblationFactory(variant, delta), PbaseAblationLabel(variant, delta), seeds)
		if err != nil {
			return nil, err
		}
		// Security cost at paper scale.
		median, err := PbaseFloodMedian(context.Background(), cfg, variant, delta, 9, seeds[0])
		if err != nil {
			return nil, err
		}
		pt.FloodMedian = median
		out = append(out, pt)
	}
	return out, nil
}

// ablate runs one configured factory across seeds.
func ablate(cfg Config, label string, factory mitigation.Factory, fpLabel string, seeds []uint64) (AblationPoint, error) {
	c := cfg
	c.Factory = factory
	c.FactoryLabel = fpLabel
	sum, err := RunSeeds(c, "ablation", seeds)
	if err != nil {
		return AblationPoint{}, err
	}
	return AblationPointOf(label, sum), nil
}

package sim

import (
	"fmt"

	"tivapromi/internal/core"
	"tivapromi/internal/mitigation"
)

// AblationPoint is one configuration of an ablation sweep.
type AblationPoint struct {
	Label        string
	TableBytes   int // per-bank storage at paper scale
	OverheadMean float64
	OverheadStd  float64
	FPRMean      float64
	Flips        int
	// FloodMedian is the weight-aware flooding acts-to-first-protection
	// median at paper scale (security cost of the configuration).
	FloodMedian float64
}

// AblateHistorySize sweeps the history-table size for a Fig. 2 variant.
// The paper's 32 entries were "the best optimization based on the
// simulated memory traces"; the sweep shows the trade-off that led there:
// smaller tables forget triggered aggressors (higher overhead), larger
// ones only add storage.
func AblateHistorySize(cfg Config, variant core.Variant, sizes []int, seeds []uint64) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, size := range sizes {
		size := size
		factory := func(t mitigation.Target, seed uint64) mitigation.Mitigator {
			c := core.DefaultConfig(t.RowsPerBank, t.RefInt)
			c.HistoryEntries = size
			return core.MustNew(variant, t.Banks, c, seed)
		}
		pt, err := ablate(cfg, fmt.Sprintf("%d entries", size), factory, seeds)
		if err != nil {
			return nil, err
		}
		// Storage at paper scale: size entries of 30 bits.
		paperCfg := core.DefaultConfig(131072, 8192)
		paperCfg.HistoryEntries = size
		pt.TableBytes = paperCfg.HistoryBytes()
		out = append(out, pt)
	}
	return out, nil
}

// AblateCounterSize sweeps CaPRoMi's counter-table size. The paper
// chooses 64 entries by "optimizing between" the DDR4 per-interval
// activation ceiling (165) and the traces' average (≈40).
func AblateCounterSize(cfg Config, sizes []int, seeds []uint64) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, size := range sizes {
		size := size
		// Validate the swept configuration up front, where an error can be
		// returned; the factory then uses the Must constructor on a config
		// already known good instead of panicking mid-sweep inside a worker.
		probe := core.DefaultCaConfig(cfg.Params.RowsPerBank, cfg.Params.RefInt)
		probe.CounterEntries = size
		if err := probe.Validate(); err != nil {
			return nil, fmt.Errorf("sim: counter ablation size %d: %w", size, err)
		}
		factory := func(t mitigation.Target, seed uint64) mitigation.Mitigator {
			c := core.DefaultCaConfig(t.RowsPerBank, t.RefInt)
			c.CounterEntries = size
			return core.MustNewCa(t.Banks, c, seed)
		}
		pt, err := ablate(cfg, fmt.Sprintf("%d entries", size), factory, seeds)
		if err != nil {
			return nil, err
		}
		paperCfg := core.DefaultCaConfig(131072, 8192)
		paperCfg.CounterEntries = size
		pt.TableBytes = paperCfg.TotalBytes()
		out = append(out, pt)
	}
	return out, nil
}

// AblatePbase sweeps the base probability around the paper's choice
// (RefInt * Pbase ≈ 0.001, delta = 0) for a Fig. 2 variant. Each extra
// bit of comparator resolution halves every probability: overhead drops,
// but the flooding reaction slows — the knob the paper fixes by matching
// PARA's effective probability.
func AblatePbase(cfg Config, variant core.Variant, deltas []int, seeds []uint64) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, delta := range deltas {
		delta := delta
		factory := func(t mitigation.Target, seed uint64) mitigation.Mitigator {
			c := core.DefaultConfig(t.RowsPerBank, t.RefInt)
			c.ProbBitsDelta = delta
			return core.MustNew(variant, t.Banks, c, seed)
		}
		pt, err := ablate(cfg, fmt.Sprintf("Pbase x 2^%+d", -delta), factory, seeds)
		if err != nil {
			return nil, err
		}
		// Security cost at paper scale.
		pp := cfg.Params
		pp.Banks = 1
		flood, err := floodWithFactory(factory, pp, pp.MaxActsPerRI, 9, seeds[0])
		if err != nil {
			return nil, err
		}
		pt.FloodMedian = flood.MedianActs
		if flood.Unprotected > 0 {
			pt.FloodMedian = float64(flood.Cap)
		}
		out = append(out, pt)
	}
	return out, nil
}

// ablate runs one configured factory across seeds.
func ablate(cfg Config, label string, factory mitigation.Factory, seeds []uint64) (AblationPoint, error) {
	c := cfg
	c.Factory = factory
	sum, err := RunSeeds(c, "ablation", seeds)
	if err != nil {
		return AblationPoint{}, err
	}
	return AblationPoint{
		Label:        label,
		TableBytes:   sum.TableBytes,
		OverheadMean: sum.Overhead.Mean(),
		OverheadStd:  sum.Overhead.StdDev(),
		FPRMean:      sum.FPR.Mean(),
		Flips:        sum.TotalFlips,
	}, nil
}

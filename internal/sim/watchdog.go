package sim

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"tivapromi/internal/rng"
)

// ErrStalled marks a run that was cancelled by the stall watchdog: the
// workload had been reporting progress heartbeats and then stopped for
// longer than RunnerConfig.StallTimeout. A stall is classified
// separately from a per-run deadline overrun (which is permanent: a
// deterministic run that overruns its budget will overrun again) —
// a stall is usually a scheduling wedge or a livelock in one attempt,
// so it is retried as transient.
var ErrStalled = errors.New("sim: run stalled (heartbeat stopped)")

// Heartbeat is the progress channel between a running workload and the
// stall watchdog. The workload calls Tick whenever it makes forward
// progress (the batched simulation driver ticks once per access batch);
// the watchdog cancels the run when ticks stop. All methods are safe
// for concurrent use and a nil *Heartbeat ignores every call.
type Heartbeat struct {
	ticks atomic.Int64
	last  atomic.Int64 // unix nanos of the latest tick
}

// Tick records forward progress.
func (h *Heartbeat) Tick() {
	if h == nil {
		return
	}
	h.last.Store(time.Now().UnixNano())
	h.ticks.Add(1)
}

// Ticks returns the number of ticks recorded so far.
func (h *Heartbeat) Ticks() int64 {
	if h == nil {
		return 0
	}
	return h.ticks.Load()
}

// lastTick returns the time of the latest tick (zero time when none).
func (h *Heartbeat) lastTick() time.Time {
	n := h.last.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// heartbeatKey is the context key WithHeartbeat installs under.
type heartbeatKey struct{}

// WithHeartbeat returns a context carrying hb; workloads running under
// the hardened runner receive their heartbeat this way.
func WithHeartbeat(ctx context.Context, hb *Heartbeat) context.Context {
	return context.WithValue(ctx, heartbeatKey{}, hb)
}

// HeartbeatFrom extracts the run's heartbeat from ctx (nil when the
// runner did not arm a stall watchdog). Long-running probe loops should
// call HeartbeatFrom(ctx).Tick() per iteration — a nil heartbeat
// ignores ticks, so the call is unconditionally safe.
func HeartbeatFrom(ctx context.Context) *Heartbeat {
	hb, _ := ctx.Value(heartbeatKey{}).(*Heartbeat)
	return hb
}

// watchdog polls hb and cancels the run when the gap since the last
// tick exceeds timeout. A workload that never ticks is exempt: the
// watchdog cannot distinguish a wedge from a workload that simply does
// not report, so it only judges runs that have demonstrated heartbeat
// cooperation (the per-run deadline still bounds silent workloads).
// stop tears the watchdog down when the run returns on its own.
func watchdog(hb *Heartbeat, timeout time.Duration, stalled *atomic.Bool, cancel context.CancelFunc, stop <-chan struct{}) {
	poll := timeout / 4
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			if hb.Ticks() == 0 {
				continue
			}
			if now.Sub(hb.lastTick()) > timeout {
				stalled.Store(true)
				cancel()
				return
			}
		}
	}
}

// RetryJitter produces decorrelated-jitter retry delays ("sleep =
// min(cap, base + rand(0, 3·prev − base))") from a seeded deterministic
// stream. Unlike the plain exponential doubling it replaces, two
// workers that fail at the same instant draw different sleeps (their
// seeds differ), so retry storms don't resynchronize on every attempt —
// while a given seed still reproduces the exact same schedule, keeping
// tests and reruns deterministic.
type RetryJitter struct {
	src  *rng.XorShift64Star
	base time.Duration
	max  time.Duration
	prev time.Duration
}

// NewRetryJitter returns a jitter source with the given base delay,
// cap (0 means 64×base) and seed.
func NewRetryJitter(base, max time.Duration, seed uint64) *RetryJitter {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max <= 0 {
		max = 64 * base
	}
	if max < base {
		max = base
	}
	return &RetryJitter{
		src:  rng.NewXorShift64Star(seed ^ 0xb0ff5),
		base: base,
		max:  max,
		prev: base,
	}
}

// Next returns the next sleep in the decorrelated schedule.
func (j *RetryJitter) Next() time.Duration {
	span := 3*j.prev - j.base
	if span < j.base {
		span = j.base
	}
	d := j.base + time.Duration(rng.Intn(j.src, int(span)))
	if d > j.max {
		d = j.max
	}
	j.prev = d
	return d
}

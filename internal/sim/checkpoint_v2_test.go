package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// seedResult is the deterministic payload the v2 tests record per seed.
func seedResult(seed uint64) Result {
	return Result{Technique: "PARA", Seed: seed, Flips: int(seed), TotalActs: 100 + seed}
}

// writeSweepCheckpoint creates a checkpoint at path holding seeds
// 1..n under fingerprint fp plus one output and one probe entry.
func writeSweepCheckpoint(t *testing.T, path, fp string, n int) {
	t.Helper()
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ck.FlushEvery = n + 10 // one atomic flush at the end
	for s := 1; s <= n; s++ {
		if err := ck.record(fp, uint64(s), seedResult(uint64(s))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ck.PutProbe("probefp", map[string]int{"v": 7}); err != nil {
		t.Fatal(err)
	}
	if err := ck.PutOutput("sect", "rendered"); err != nil {
		t.Fatal(err)
	}
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
}

func quarantineGlob(t *testing.T, path string) []string {
	t.Helper()
	got, err := filepath.Glob(path + ".corrupt-*")
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestCheckpointV2HeaderAndDigest pins the on-disk shape: magic header
// first, digest trailer last.
func TestCheckpointV2HeaderAndDigest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	writeSweepCheckpoint(t, path, "fp", 2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(raw, "\n"), []byte("\n"))
	if !bytes.Contains(lines[0], []byte(checkpointFormat)) {
		t.Fatalf("first line is not the v2 header: %s", lines[0])
	}
	if !bytes.Contains(lines[len(lines)-1], []byte(`"digest"`)) {
		t.Fatalf("last line is not the digest trailer: %s", lines[len(lines)-1])
	}
}

// TestCheckpointSalvageDropsOnlyCorruptEntry is the acceptance scenario:
// one sweep entry's bytes are flipped; the reload salvages every other
// entry, quarantines the original, and a re-run recomputes exactly the
// dropped seed.
func TestCheckpointSalvageDropsOnlyCorruptEntry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	const fp = "deadbeef"
	writeSweepCheckpoint(t, path, fp, 3)

	// Flip one payload byte inside seed 2's line: PARA → QARA keeps the
	// line valid JSON but breaks the entry checksum.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(raw), "\n")
	flipped := false
	for i, ln := range lines {
		if strings.Contains(ln, `"seed":"0x2"`) {
			lines[i] = strings.Replace(ln, "PARA", "QARA", 1)
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatalf("seed 2 line not found in:\n%s", raw)
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := ck.LoadReport()
	if !errors.Is(rep.Err, ErrCheckpointCorrupt) {
		t.Fatalf("report error = %v, want ErrCheckpointCorrupt", rep.Err)
	}
	if rep.Dropped != 1 {
		t.Fatalf("dropped %d entries, want 1", rep.Dropped)
	}
	// 2 intact seeds + probe + output survive.
	if rep.Entries != 4 {
		t.Fatalf("salvaged %d entries, want 4", rep.Entries)
	}
	if rep.Quarantined == "" {
		t.Fatal("damaged original was not quarantined")
	}
	if _, err := os.Stat(rep.Quarantined); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if n := quarantineGlob(t, path); len(n) != 1 {
		t.Fatalf("quarantine glob = %v, want exactly one corpse", n)
	}
	if note := rep.Note(); !strings.Contains(note, "quarantined") {
		t.Fatalf("Note() = %q, want a quarantine notice", note)
	}

	// The corrupt entry is gone; its neighbors are intact and identical.
	if _, ok := ck.lookup(fp, 2); ok {
		t.Fatal("bad-checksum entry was resurrected")
	}
	for _, s := range []uint64{1, 3} {
		got, ok := ck.lookup(fp, s)
		if !ok || !reflect.DeepEqual(got, seedResult(s)) {
			t.Fatalf("seed %d: lookup = %+v, %v; want intact original", s, got, ok)
		}
	}
	if text, ok := ck.Output("sect"); !ok || text != "rendered" {
		t.Fatalf("output entry lost in salvage: %q, %v", text, ok)
	}

	// A sweep over all three seeds re-runs only the dropped one.
	var calls atomic.Int64
	r := NewRunner()
	r.Checkpoint = ck
	r.Config.runFn = func(_ context.Context, c Config, _ string) (Result, error) {
		calls.Add(1)
		return seedResult(c.Seed), nil
	}
	// lookup/record use a fingerprint derived from the config; re-record
	// under the salvage fingerprint directly to keep the test at the
	// checkpoint layer.
	for _, s := range []uint64{1, 2, 3} {
		if _, ok := ck.lookup(fp, s); !ok {
			if _, err := r.Config.runFn(context.Background(), Config{Seed: s}, ""); err != nil {
				t.Fatal(err)
			}
			if err := ck.record(fp, s, seedResult(s)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("re-ran %d seeds after salvage, want exactly the 1 dropped", calls.Load())
	}
}

// TestCheckpointV1Migration loads a legacy v1 document and expects an
// in-place upgrade: entries preserved, file rewritten in v2 form.
func TestCheckpointV1Migration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	res := seedResult(0x2a)
	rawRes, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	v1 := fmt.Sprintf(`{"version":1,"sweeps":{"fp":{"done":{"0x2a":%s}}},"outputs":{"sect":{"text":"old"}}}`, rawRes)
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}

	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := ck.LoadReport()
	if !rep.Migrated || rep.Err != nil {
		t.Fatalf("report = %+v, want Migrated with no error", rep)
	}
	if got, ok := ck.lookup("fp", 0x2a); !ok || !reflect.DeepEqual(got, res) {
		t.Fatalf("migrated entry = %+v, %v; want original", got, ok)
	}
	if text, ok := ck.Output("sect"); !ok || text != "old" {
		t.Fatalf("migrated output = %q, %v", text, ok)
	}
	// The file on disk is now v2: a second load is clean.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(checkpointFormat)) {
		t.Fatal("migration did not rewrite the file in v2 form")
	}
	ck2, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep2 := ck2.LoadReport(); rep2.Migrated || rep2.Err != nil {
		t.Fatalf("second load not clean: %+v", rep2)
	}
}

// TestCheckpointFutureVersionQuarantined pins the version policy: an
// unknown (newer) format is never guessed at — nothing loads, the file
// is quarantined, and the typed error classifies it.
func TestCheckpointFutureVersionQuarantined(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := os.WriteFile(path, []byte(`{"version":99,"sweeps":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := ck.LoadReport()
	if !errors.Is(rep.Err, ErrCheckpointVersion) {
		t.Fatalf("report error = %v, want ErrCheckpointVersion", rep.Err)
	}
	if rep.Entries != 0 {
		t.Fatalf("future-version file produced %d entries", rep.Entries)
	}
	if rep.Quarantined == "" {
		t.Fatal("future-version file was not quarantined")
	}
}

// TestCheckpointTornTailSalvagesPrefix simulates the classic torn write:
// the file ends mid-line with no digest. Every complete verified line
// before the tear survives.
func TestCheckpointTornTailSalvagesPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	writeSweepCheckpoint(t, path, "fp", 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := raw[:len(raw)-len(raw)/3] // tear off the tail third
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := ck.LoadReport()
	if !errors.Is(rep.Err, ErrCheckpointCorrupt) {
		t.Fatalf("report error = %v, want ErrCheckpointCorrupt", rep.Err)
	}
	if rep.Entries == 0 {
		t.Fatal("torn file salvaged nothing; the verified prefix must survive")
	}
	for s := uint64(1); s <= 3; s++ {
		if got, ok := ck.lookup("fp", s); ok && !reflect.DeepEqual(got, seedResult(s)) {
			t.Fatalf("seed %d salvaged with wrong payload: %+v", s, got)
		}
	}
}

// TestCheckpointSalvageReflushesImmediately: after a salvage the
// in-memory state is persisted right away, so a crash before the next
// organic flush cannot lose the salvage.
func TestCheckpointSalvageReflushesImmediately(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	writeSweepCheckpoint(t, path, "fp", 2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-2], 0o644); err != nil { // clip the digest
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	// The path now holds a fresh, clean v2 file again.
	ck2, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep := ck2.LoadReport(); rep.Err != nil {
		t.Fatalf("re-flushed salvage is not clean: %+v", rep)
	}
}

// FuzzCheckpointSalvage feeds mutated checkpoint images to the loader:
// whatever the damage — truncation, bit flips, garbage — loading must
// never panic and must never resurrect an entry whose bytes changed
// (every surviving entry must equal the original value for its key).
func FuzzCheckpointSalvage(f *testing.F) {
	base := filepath.Join(f.TempDir(), "base.json")
	const fp = "fuzzfp"
	ck, err := LoadCheckpoint(base)
	if err != nil {
		f.Fatal(err)
	}
	for s := uint64(1); s <= 3; s++ {
		if err := ck.record(fp, s, seedResult(s)); err != nil {
			f.Fatal(err)
		}
	}
	if err := ck.PutProbe("pfp", map[string]int{"v": 7}); err != nil {
		f.Fatal(err)
	}
	if err := ck.PutOutput("sect", "rendered"); err != nil {
		f.Fatal(err)
	}
	image, err := os.ReadFile(base)
	if err != nil {
		f.Fatal(err)
	}
	probeRaw, _ := ck.Probe("pfp")

	f.Add(0, uint8(1), 0)
	f.Add(len(image)/2, uint8(0x80), 0)
	f.Add(10, uint8(0xff), len(image)/3)
	f.Fuzz(func(t *testing.T, pos int, flip uint8, trunc int) {
		mut := append([]byte(nil), image...)
		if trunc > 0 {
			mut = mut[:trunc%(len(mut)+1)]
		}
		if len(mut) > 0 {
			if pos < 0 {
				pos = -pos
			}
			mut[pos%len(mut)] ^= flip
		}
		path := filepath.Join(t.TempDir(), "ck.json")
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := LoadCheckpoint(path) // must not panic
		if err != nil {
			t.Fatalf("load of damaged image errored instead of salvaging: %v", err)
		}
		// No resurrection: anything that survived must be byte-faithful.
		for sfp, sw := range got.data.Sweeps {
			if sfp != fp {
				t.Fatalf("phantom sweep fingerprint %q appeared", sfp)
			}
			for key, res := range sw.Done {
				var seed uint64
				if _, err := fmt.Sscanf(key, "0x%x", &seed); err != nil {
					t.Fatalf("phantom seed key %q", key)
				}
				if !reflect.DeepEqual(res, seedResult(seed)) {
					t.Fatalf("seed %d survived with mutated payload: %+v", seed, res)
				}
			}
		}
		for pfp, raw := range got.data.Probes {
			if pfp != "pfp" || !bytes.Equal(raw, probeRaw) {
				t.Fatalf("probe entry mutated: %q = %s", pfp, raw)
			}
		}
		for name, out := range got.data.Outputs {
			if name != "sect" || out.Text != "rendered" {
				t.Fatalf("output entry mutated: %q = %q", name, out.Text)
			}
		}
	})
}

package sim

import (
	"context"
	"math"

	"tivapromi/internal/core"
	"tivapromi/internal/dram"
	"tivapromi/internal/mitigation"
)

// VulnReport reproduces Table III's "Vulnerable to Attack" column from
// measurable probes instead of a hand-entered list:
//
//  1. Flooding survival — the probability that a weight-aware flood
//     (single row, maximum rate, started at weight 0) reaches the flip
//     threshold without the mitigation ever protecting the victims. For
//     the probabilistic techniques this is computed exactly from their
//     decision laws; for the table/counter techniques a Monte-Carlo flood
//     confirms deterministic protection. LiPRoMi's slow linear ramp is the
//     only technique whose survival stays above the threshold — the
//     Section III-A weakness.
//  2. Rotation evasion — the attacker rotates over more victims than the
//     mitigation's tracking structure holds, per activation, while still
//     delivering a dangerous per-victim rate. The ratio of protective
//     commands per aggressor activation (rotating vs. focused) collapses
//     to ~0 when the tracking thrashes; MRLoc's small locality queue is
//     the technique this catches.
//  3. Escalation — techniques declare (mitigation.Escalation) whether
//     their per-victim protection intensifies as an attack proceeds.
//     PARA and MRLoc apply a static base probability forever, which is
//     what makes them vulnerable to the scheduled multi-aggressor
//     patterns of Son et al. [17]; the escalation tests in their packages
//     back the declaration with measurements.
type VulnReport struct {
	Technique     string
	FloodSurvival float64 // probe 1: P(no protection within FlipThreshold acts)
	RotationRatio float64 // probe 2: rotating/focused protection rate
	NonEscalating bool    // probe 3: static probability, no escalation
	Vulnerable    bool
	Reason        string
}

// Vulnerability thresholds: survival of a weight-aware flood above
// SurvivalLimit, or a rotating attack retaining less than RotationLimit of
// the focused protection rate, classifies a technique as vulnerable.
const (
	SurvivalLimit = 3e-4
	RotationLimit = 0.1
)

// AnalyzeVulnerability runs the three probes for one technique at the
// given (typically paper-scale) parameters.
func AnalyzeVulnerability(technique string, p dram.Params, seed uint64) (VulnReport, error) {
	return AnalyzeVulnerabilityCtx(context.Background(), technique, p, seed)
}

// AnalyzeVulnerabilityCtx is AnalyzeVulnerability with cooperative
// cancellation threaded through the flood and rotation probes.
func AnalyzeVulnerabilityCtx(ctx context.Context, technique string, p dram.Params, seed uint64) (VulnReport, error) {
	rep := VulnReport{Technique: technique}

	surv, err := floodSurvival(ctx, technique, p, seed)
	if err != nil {
		return rep, err
	}
	rep.FloodSurvival = surv

	ratio, nonEsc, err := rotationProbe(ctx, technique, p, seed)
	if err != nil {
		return rep, err
	}
	rep.RotationRatio = ratio
	rep.NonEscalating = nonEsc

	switch {
	case rep.FloodSurvival > SurvivalLimit:
		rep.Vulnerable = true
		rep.Reason = "weight-aware flooding leaves a non-negligible survival tail"
	case rep.RotationRatio < RotationLimit:
		rep.Vulnerable = true
		rep.Reason = "victim rotation thrashes the tracking structure"
	case rep.NonEscalating:
		rep.Vulnerable = true
		rep.Reason = "static probability without escalation (sequential-aggressor attacks, [17])"
	default:
		rep.Reason = "no probe succeeded"
	}
	return rep, nil
}

// AnalyzeAll runs AnalyzeVulnerability for all nine techniques.
func AnalyzeAll(p dram.Params, seed uint64) ([]VulnReport, error) {
	var out []VulnReport
	for _, name := range TechniqueNames() {
		r, err := AnalyzeVulnerability(name, p, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// floodSurvival computes probe 1. The TiVaPRoMi variants and PARA have
// closed-form survival products (their per-decision probabilities are
// deterministic functions of time); the remaining techniques are floods
// with Monte-Carlo confirmation (they protect deterministically or at
// rates whose tails vanish, so 64 trials resolve them).
func floodSurvival(ctx context.Context, technique string, p dram.Params, seed uint64) (float64, error) {
	rate := p.MaxActsPerRI
	threshold := float64(p.FlipThreshold)
	pbase := math.Exp2(-float64(core.ProbBits(p.RefInt)))
	intervals := int(threshold/float64(rate)) + 1

	logSurvive := func(weightAt func(j int) float64, perInterval bool) float64 {
		ls := 0.0
		acts := 0.0
		for j := 0; j < intervals; j++ {
			w := weightAt(j)
			if perInterval {
				ls += math.Log1p(-math.Min(w*pbase, 1-1e-15))
			} else {
				n := math.Min(float64(rate), threshold-acts)
				ls += n * math.Log1p(-math.Min(w*pbase, 1-1e-15))
				acts += n
			}
		}
		return math.Exp(ls)
	}

	switch technique {
	case "LiPRoMi":
		return logSurvive(func(j int) float64 { return float64(j) }, false), nil
	case "LoPRoMi", "LoLiPRoMi":
		// Until the first trigger LoLiPRoMi behaves exactly like LoPRoMi
		// (the linear path requires a history hit).
		return logSurvive(func(j int) float64 { return float64(core.LogWeight(j)) }, false), nil
	case "QuaPRoMi":
		return logSurvive(func(j int) float64 {
			return float64(core.QuadWeight(j, p.RefInt))
		}, false), nil
	case "CaPRoMi":
		// One collective decision per interval with p = cnt * w_log * Pbase.
		return logSurvive(func(j int) float64 {
			return float64(rate) * float64(core.LogWeight(j))
		}, true), nil
	case "PARA":
		// Each act triggers with p = RefInt*Pbase and protects a given
		// victim only when the random side points at it.
		perAct := float64(p.RefInt) * pbase / 2
		return math.Exp(threshold * math.Log1p(-perAct)), nil
	}

	// Monte-Carlo for the tracking/counter techniques.
	fr, err := FloodCtx(ctx, technique, p, rate, 64, seed)
	if err != nil {
		return 0, err
	}
	if fr.Unprotected > 0 {
		return 1, nil
	}
	if fr.P90Acts <= threshold/2 {
		return 0, nil
	}
	return float64(fr.Unprotected) / float64(fr.Trials), nil
}

// rotationProbe computes probe 2 (and reports non-escalation for probe 3).
// Focused: one victim's aggressor pair hammered a full window. Rotating:
// eight victims' pairs interleaved per activation at the same total rate —
// per-victim traffic still far above the danger rate.
func rotationProbe(ctx context.Context, technique string, p dram.Params, seed uint64) (ratio float64, nonEscalating bool, err error) {
	factory, err := mitigation.Lookup(technique)
	if err != nil {
		return 0, false, err
	}
	target := mitigation.Target{
		Banks: 1, RowsPerBank: p.RowsPerBank, RefInt: p.RefInt,
		FlipThreshold: p.FlipThreshold,
	}
	if esc, ok := factory(target, seed).(mitigation.Escalation); ok {
		nonEscalating = !esc.EscalatesUnderAttack()
	}

	run := func(victims []int) (float64, error) {
		m := factory(target, seed)
		// Aggressor list: both neighbors of every victim, interleaved.
		var rows []int
		for _, v := range victims {
			rows = append(rows, v-1, v+1)
		}
		victimSet := map[int]bool{}
		for _, v := range victims {
			victimSet[v] = true
		}
		protections, acts := 0, 0
		var cmds []mitigation.Command
		pos := 0
		for iv := 0; iv < p.RefInt; iv++ {
			if iv&0x3f == 0 {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
			for i := 0; i < p.MaxActsPerRI; i++ {
				row := rows[pos%len(rows)]
				pos++
				acts++
				cmds = m.OnActivate(0, row, iv, cmds[:0])
				protections += countProtections(cmds, victimSet)
			}
			cmds = m.OnRefreshInterval(iv, cmds[:0])
			protections += countProtections(cmds, victimSet)
		}
		return float64(protections) / float64(acts), nil
	}

	base := p.RowsPerBank / 4
	focused, err := run([]int{base})
	if err != nil {
		return 0, nonEscalating, err
	}
	spread := make([]int, 8)
	for i := range spread {
		spread[i] = base + i*64
	}
	rotating, err := run(spread)
	if err != nil {
		return 0, nonEscalating, err
	}
	if focused == 0 {
		// No protections even when focused: treat as fully evaded.
		return 0, nonEscalating, nil
	}
	return rotating / focused, nonEscalating, nil
}

// countProtections counts commands that restore one of the victims.
func countProtections(cmds []mitigation.Command, victims map[int]bool) int {
	n := 0
	for _, c := range cmds {
		switch c.Kind {
		case mitigation.ActN:
			if victims[c.Row-1] || victims[c.Row+1] {
				n++
			}
		case mitigation.ActNOne:
			if victims[c.Row+int(c.Side)] {
				n++
			}
		case mitigation.RefreshRow:
			if victims[c.Row] {
				n++
			}
		}
	}
	return n
}

package sim

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"tivapromi/internal/iofault"
)

// QuarantineKeep is the default number of *.corrupt-<ts> forensic
// corpses retained per quarantined path. Salvage used to leave every
// corpse behind forever; a server that crashes in a loop would slowly
// fill its data directory with them, so after each quarantine the
// newest K are kept and older ones are deleted through the FS seam.
const QuarantineKeep = 3

// EntrySum is the checkpoint-v2 per-entry checksum, exported so the
// serving tier's write-ahead job journal shares one codec with the
// checkpoint: SHA-256 over kind, the identity fields and the payload
// bytes, NUL-separated, hex-encoded. A flipped bit anywhere in an entry
// — key or data — fails verification, so a damaged entry can never be
// resurrected under the wrong identity.
func EntrySum(kind, id1, id2 string, data []byte) string {
	return entrySum(kind, id1, id2, data)
}

// SplitLine returns the first line of b (without the newline), the
// remainder, and whether a line (possibly empty) was available.
func SplitLine(b []byte) (line, rest []byte, ok bool) {
	return splitLine(b)
}

// AtomicWriteFS writes raw to path with the checkpoint's
// crash-consistent dance (temp file in path's directory, write, fsync,
// close, rename over the target), through the given FS seam (nil means
// the passthrough iofault.OS). The journal uses it to rewrite a
// salvaged log before reopening it for append.
func AtomicWriteFS(fsys iofault.FS, path string, raw []byte) error {
	if fsys == nil {
		fsys = iofault.OS{}
	}
	return atomicWrite(fsys, filepath.Dir(path), path, raw)
}

// PruneQuarantine bounds the quarantine corpses for path: among the
// sibling files named <base(path)>.corrupt-<ts>, the keep newest (by
// the timestamp suffix) survive and the rest are removed through the
// FS seam. keep <= 0 means QuarantineKeep. Returns how many corpses
// were deleted. Errors are returned but callers treat pruning as
// best-effort — a failed deletion must never turn a successful salvage
// into a load failure.
func PruneQuarantine(fsys iofault.FS, path string, keep int) (int, error) {
	if fsys == nil {
		fsys = iofault.OS{}
	}
	if keep <= 0 {
		keep = QuarantineKeep
	}
	dir := filepath.Dir(path)
	prefix := filepath.Base(path) + ".corrupt-"
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("sim: prune quarantine: %w", err)
	}
	type corpse struct {
		name string
		ts   int64
	}
	var corpses []corpse
	for _, name := range names {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		ts, err := strconv.ParseInt(name[len(prefix):], 10, 64)
		if err != nil {
			// Not one of ours (e.g. a corpse of a corpse); leave it alone.
			continue
		}
		corpses = append(corpses, corpse{name: name, ts: ts})
	}
	if len(corpses) <= keep {
		return 0, nil
	}
	sort.Slice(corpses, func(i, j int) bool { return corpses[i].ts > corpses[j].ts })
	removed := 0
	var firstErr error
	for _, c := range corpses[keep:] {
		if err := fsys.Remove(filepath.Join(dir, c.name)); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("sim: prune quarantine %s: %w", c.name, err)
			}
			continue
		}
		removed++
	}
	return removed, firstErr
}

package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func testHeader() Header { return Header{Banks: 4, RowsPerBank: 16384, RefInt: 1024} }

func TestHeaderValidate(t *testing.T) {
	if err := testHeader().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, h := range []Header{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		if h.Validate() == nil {
			t.Errorf("invalid header %+v accepted", h)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{Kind: KindAct, Bank: 0, Row: 100},
		{Kind: KindAct, Bank: 3, Row: 16383},
		{Kind: KindIntervalEnd},
		{Kind: KindAct, Bank: 1, Row: 0},
		{Kind: KindIntervalEnd},
	}
	for _, ev := range events {
		var err error
		if ev.Kind == KindAct {
			err = w.WriteAct(ev.Bank, ev.Row)
		} else {
			err = w.WriteIntervalEnd()
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if w.Events() != uint64(len(events)) {
		t.Fatalf("Events() = %d", w.Events())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header() != testHeader() {
		t.Fatalf("header = %+v", r.Header())
	}
	for i, want := range events {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("event %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		h := testHeader()
		var buf bytes.Buffer
		w, err := NewWriter(&buf, h)
		if err != nil {
			return false
		}
		var want []Event
		for _, v := range raw {
			if v%7 == 0 {
				w.WriteIntervalEnd()
				want = append(want, Event{Kind: KindIntervalEnd})
			} else {
				bank := int(v) % h.Banks
				row := int(v>>4) % h.RowsPerBank
				w.WriteAct(bank, row)
				want = append(want, Event{Kind: KindAct, Bank: bank, Row: row})
			}
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, ev := range want {
			got, err := r.Next()
			if err != nil || got != ev {
				return false
			}
		}
		_, err = r.Next()
		return errors.Is(err, io.EOF)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewBufferString("JUNK!xxxxx")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewBufferString("TVPM1")); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestTruncatedEvent(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testHeader())
	w.WriteAct(1, 12345)
	w.Flush()
	data := buf.Bytes()[:buf.Len()-1] // drop last byte
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestOutOfGeometryEventRejected(t *testing.T) {
	var buf bytes.Buffer
	small := Header{Banks: 2, RowsPerBank: 100, RefInt: 8}
	w, _ := NewWriter(&buf, Header{Banks: 16, RowsPerBank: 1 << 20, RefInt: 8192})
	w.WriteAct(10, 500000)
	w.Flush()
	// Re-label the stream with a smaller header.
	var relabeled bytes.Buffer
	w2, _ := NewWriter(&relabeled, small)
	w2.Flush()
	relabeled.Write(buf.Bytes()[len("TVPM1")+3:]) // splice events past original header
	r, err := NewReader(&relabeled)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("out-of-geometry event accepted")
	}
}

func TestUnknownKindRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testHeader())
	w.Flush()
	buf.WriteByte(0xee)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestWriterRejectsBadHeader(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Header{}); err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestForEach(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testHeader())
	for i := 0; i < 100; i++ {
		w.WriteAct(i%4, i)
	}
	w.WriteIntervalEnd()
	w.Flush()
	r, _ := NewReader(&buf)
	acts, intervals := 0, 0
	err := r.ForEach(func(ev Event) error {
		switch ev.Kind {
		case KindAct:
			acts++
		case KindIntervalEnd:
			intervals++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if acts != 100 || intervals != 1 {
		t.Fatalf("acts=%d intervals=%d", acts, intervals)
	}
}

func TestForEachPropagatesCallbackError(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testHeader())
	w.WriteAct(0, 0)
	w.Flush()
	r, _ := NewReader(&buf)
	sentinel := errors.New("stop")
	if err := r.ForEach(func(Event) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
}

package trace

import (
	"bytes"
	"strings"
	"testing"
)

func buildTrace(t *testing.T) *Reader {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Banks: 2, RowsPerBank: 1024, RefInt: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Interval 0: a hot row with 8 acts in bank 0 plus scattered rows.
	for i := 0; i < 8; i++ {
		w.WriteAct(0, 100)
	}
	for r := 0; r < 4; r++ {
		w.WriteAct(1, 200+r)
	}
	w.WriteIntervalEnd()
	// Interval 1: the hot row again.
	for i := 0; i < 4; i++ {
		w.WriteAct(0, 100)
	}
	w.WriteIntervalEnd()
	w.Flush()
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAnalyze(t *testing.T) {
	p, err := Analyze(buildTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	if p.Acts != 16 || p.Intervals != 2 {
		t.Fatalf("acts=%d intervals=%d", p.Acts, p.Intervals)
	}
	if p.PerBank[0] != 12 || p.PerBank[1] != 4 {
		t.Fatalf("per bank %v", p.PerBank)
	}
	if p.DistinctRows != 5 {
		t.Fatalf("distinct rows = %d", p.DistinctRows)
	}
	// Hottest row (0,100) has 12 of 16 acts over 2 intervals.
	if p.HotRowRate != 6 {
		t.Fatalf("hot row rate = %v", p.HotRowRate)
	}
	if p.TopShare[0] != 12.0/16 {
		t.Fatalf("top-1 share = %v", p.TopShare[0])
	}
	if p.TopShare[1] != 1 || p.TopShare[3] != 1 {
		t.Fatalf("top-k shares %v", p.TopShare)
	}
	// avg per bank-interval: 16 acts / 2 intervals / 2 banks = 4.
	if p.AvgActsPerBankInterval != 4 {
		t.Fatalf("avg = %v", p.AvgActsPerBankInterval)
	}
	if p.MaxActsPerBankInterval != 8 {
		t.Fatalf("max = %v", p.MaxActsPerBankInterval)
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{Banks: 1, RowsPerBank: 16, RefInt: 4})
	w.Flush()
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	p, err := Analyze(r)
	if err != nil {
		t.Fatal(err)
	}
	if p.Acts != 0 || p.DistinctRows != 0 {
		t.Fatalf("empty profile %+v", p)
	}
}

func TestProfileRender(t *testing.T) {
	p, _ := Analyze(buildTrace(t))
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"activations: 16", "distinct rows activated: 5",
		"hottest row rate: 6.0", "top-1 75.0%", "bank 0: 12"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q:\n%s", want, sb.String())
		}
	}
}

package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Text format: a line-oriented interchange representation for activation
// traces, easy to produce from external simulators (Ramulator, DRAMsim,
// gem5 post-processing) or by hand:
//
//	# header: banks rows refint
//	header 4 16384 1024
//	act <bank> <row>
//	ref
//
// Blank lines and lines starting with '#' are ignored.

// WriteText converts a binary trace to the text format.
func WriteText(r *Reader, w io.Writer) error {
	bw := bufio.NewWriter(w)
	h := r.Header()
	if _, err := fmt.Fprintf(bw, "header %d %d %d\n", h.Banks, h.RowsPerBank, h.RefInt); err != nil {
		return err
	}
	err := r.ForEach(func(ev Event) error {
		switch ev.Kind {
		case KindAct:
			_, err := fmt.Fprintf(bw, "act %d %d\n", ev.Bank, ev.Row)
			return err
		case KindIntervalEnd:
			_, err := fmt.Fprintln(bw, "ref")
			return err
		}
		return nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadText parses the text format and writes it as a binary trace through
// a Writer created on out. It returns the parsed header and the number of
// events.
func ReadText(in io.Reader, out io.Writer) (Header, uint64, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var (
		w      *Writer
		h      Header
		lineNo int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "header":
			if w != nil {
				return h, 0, fmt.Errorf("trace: line %d: duplicate header", lineNo)
			}
			if len(fields) != 4 {
				return h, 0, fmt.Errorf("trace: line %d: header wants 3 numbers", lineNo)
			}
			if _, err := fmt.Sscanf(line, "header %d %d %d", &h.Banks, &h.RowsPerBank, &h.RefInt); err != nil {
				return h, 0, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			var err error
			w, err = NewWriter(out, h)
			if err != nil {
				return h, 0, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
		case "act":
			if w == nil {
				return h, 0, fmt.Errorf("trace: line %d: act before header", lineNo)
			}
			var bank, row int
			if _, err := fmt.Sscanf(line, "act %d %d", &bank, &row); err != nil {
				return h, 0, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			if bank < 0 || bank >= h.Banks || row < 0 || row >= h.RowsPerBank {
				return h, 0, fmt.Errorf("trace: line %d: act (b%d, r%d) outside geometry", lineNo, bank, row)
			}
			if err := w.WriteAct(bank, row); err != nil {
				return h, 0, err
			}
		case "ref":
			if w == nil {
				return h, 0, fmt.Errorf("trace: line %d: ref before header", lineNo)
			}
			if err := w.WriteIntervalEnd(); err != nil {
				return h, 0, err
			}
		default:
			return h, 0, fmt.Errorf("trace: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return h, 0, err
	}
	if w == nil {
		return h, 0, fmt.Errorf("trace: no header found")
	}
	return h, w.Events(), w.Flush()
}

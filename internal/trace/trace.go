// Package trace records and replays DRAM activation streams. A trace is
// the sequence of row activations interleaved with refresh-interval
// boundaries — exactly the information a memory-controller-level
// mitigation observes (act and ref commands, Fig. 1).
//
// The binary format is compact (varint-coded) and self-describing: a
// header carries the device structure so replays validate against the
// simulated geometry.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// magic identifies trace files; the trailing digit is the format version.
const magic = "TVPM1"

// EventKind discriminates trace events.
type EventKind uint8

const (
	// KindAct is a row activation.
	KindAct EventKind = iota
	// KindIntervalEnd marks a refresh-interval boundary (the ref
	// command).
	KindIntervalEnd
)

// Event is one trace record. Bank and Row are meaningful only for
// KindAct.
type Event struct {
	Kind EventKind
	Bank int
	Row  int
}

// Header describes the device the trace was captured on.
type Header struct {
	Banks       int
	RowsPerBank int
	RefInt      int
}

// Validate reports malformed headers.
func (h Header) Validate() error {
	if h.Banks <= 0 || h.RowsPerBank <= 0 || h.RefInt <= 0 {
		return fmt.Errorf("trace: invalid header %+v", h)
	}
	return nil
}

// Writer streams events to an io.Writer. Call Flush before using the
// underlying data.
type Writer struct {
	w   *bufio.Writer
	buf [2 * binary.MaxVarintLen64]byte
	n   uint64 // events written
}

// NewWriter writes the magic and header and returns a Writer.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	tw := &Writer{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := tw.w.WriteString(magic); err != nil {
		return nil, err
	}
	for _, v := range []int{h.Banks, h.RowsPerBank, h.RefInt} {
		if err := tw.writeUvarint(uint64(v)); err != nil {
			return nil, err
		}
	}
	return tw, nil
}

func (tw *Writer) writeUvarint(v uint64) error {
	n := binary.PutUvarint(tw.buf[:], v)
	_, err := tw.w.Write(tw.buf[:n])
	return err
}

// WriteAct records an activation.
func (tw *Writer) WriteAct(bank, row int) error {
	if err := tw.w.WriteByte(byte(KindAct)); err != nil {
		return err
	}
	if err := tw.writeUvarint(uint64(bank)); err != nil {
		return err
	}
	tw.n++
	return tw.writeUvarint(uint64(row))
}

// WriteIntervalEnd records a refresh-interval boundary.
func (tw *Writer) WriteIntervalEnd() error {
	tw.n++
	return tw.w.WriteByte(byte(KindIntervalEnd))
}

// Events returns the number of events written so far.
func (tw *Writer) Events() uint64 { return tw.n }

// Flush drains buffered bytes to the underlying writer.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader streams events back. Next returns io.EOF at the end of the
// trace.
type Reader struct {
	r      *bufio.Reader
	header Header
}

// NewReader validates the magic, reads the header, and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("trace: bad magic %q (want %q)", got, magic)
	}
	tr := &Reader{r: br}
	for _, dst := range []*int{&tr.header.Banks, &tr.header.RowsPerBank, &tr.header.RefInt} {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
		*dst = int(v)
	}
	if err := tr.header.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Header returns the trace's device description.
func (tr *Reader) Header() Header { return tr.header }

// Next returns the next event, or io.EOF cleanly at the trace's end. A
// truncated trace yields io.ErrUnexpectedEOF.
func (tr *Reader) Next() (Event, error) {
	kind, err := tr.r.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Event{}, io.EOF
		}
		return Event{}, err
	}
	switch EventKind(kind) {
	case KindIntervalEnd:
		return Event{Kind: KindIntervalEnd}, nil
	case KindAct:
		bank, err := binary.ReadUvarint(tr.r)
		if err != nil {
			return Event{}, unexpected(err)
		}
		row, err := binary.ReadUvarint(tr.r)
		if err != nil {
			return Event{}, unexpected(err)
		}
		if int(bank) >= tr.header.Banks || int(row) >= tr.header.RowsPerBank {
			return Event{}, fmt.Errorf("trace: event (b%d, r%d) outside header geometry", bank, row)
		}
		return Event{Kind: KindAct, Bank: int(bank), Row: int(row)}, nil
	default:
		return Event{}, fmt.Errorf("trace: unknown event kind %d", kind)
	}
}

func unexpected(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ForEach replays a full trace through fn, stopping on the first error.
func (tr *Reader) ForEach(fn func(Event) error) error {
	for {
		ev, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}

// Package trace records and replays DRAM activation streams. A trace is
// the sequence of row activations interleaved with refresh-interval
// boundaries — exactly the information a memory-controller-level
// mitigation observes (act and ref commands, Fig. 1).
//
// The binary format is compact (varint-coded) and self-describing: a
// header carries the device structure so replays validate against the
// simulated geometry.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// magic identifies trace files; the trailing digit is the format version.
const magic = "TVPM1"

// Geometry ceilings for header validation. A trace header is attacker
// input (the corruption fuzz target mutates it freely), and downstream
// consumers size allocations from it — Analyze builds per-bank arrays,
// replay harnesses build per-row state. The caps bound those allocations
// while comfortably exceeding the paper-scale device (16 banks, 131072
// rows/bank, 8192 intervals/window).
const (
	// MaxBanks caps Header.Banks.
	MaxBanks = 1 << 16
	// MaxRowsPerBank caps Header.RowsPerBank.
	MaxRowsPerBank = 1 << 28
	// MaxRefInt caps Header.RefInt.
	MaxRefInt = 1 << 24
)

// ErrCorrupt marks data-dependent read failures: a damaged magic or
// header, an event outside the declared geometry, an unknown event kind,
// or a record cut off mid-encoding. errors.Is(err, ErrCorrupt) reports
// whether a failure is corruption (retrying or re-parsing cannot fix it)
// as opposed to an I/O error from the underlying reader.
var ErrCorrupt = errors.New("trace: corrupt")

// CorruptError carries the byte offset and reason of a corruption. It
// matches ErrCorrupt via errors.Is and exposes any underlying cause (for
// a truncated record, io.ErrUnexpectedEOF) to errors.Is/As.
type CorruptError struct {
	// Offset is the stream position (bytes from the start of the trace,
	// magic included) at which the corruption was detected.
	Offset int64
	// Reason describes what was wrong.
	Reason string
	// Err is the underlying cause, if any.
	Err error
}

// Error implements error.
func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("trace: corrupt at byte %d: %s: %v", e.Offset, e.Reason, e.Err)
	}
	return fmt.Sprintf("trace: corrupt at byte %d: %s", e.Offset, e.Reason)
}

// Unwrap exposes ErrCorrupt and the cause to errors.Is/As.
func (e *CorruptError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrCorrupt, e.Err}
	}
	return []error{ErrCorrupt}
}

// EventKind discriminates trace events.
type EventKind uint8

const (
	// KindAct is a row activation.
	KindAct EventKind = iota
	// KindIntervalEnd marks a refresh-interval boundary (the ref
	// command).
	KindIntervalEnd
)

// Event is one trace record. Bank and Row are meaningful only for
// KindAct.
type Event struct {
	Kind EventKind
	Bank int
	Row  int
}

// Header describes the device the trace was captured on.
type Header struct {
	Banks       int
	RowsPerBank int
	RefInt      int
}

// Validate reports malformed headers. Besides positivity it enforces the
// Max* geometry ceilings, so a corrupted or hostile header cannot commit
// downstream consumers to absurd allocations.
func (h Header) Validate() error {
	if h.Banks <= 0 || h.RowsPerBank <= 0 || h.RefInt <= 0 {
		return fmt.Errorf("trace: invalid header %+v", h)
	}
	if h.Banks > MaxBanks || h.RowsPerBank > MaxRowsPerBank || h.RefInt > MaxRefInt {
		return fmt.Errorf("trace: header %+v exceeds geometry caps (%d banks, %d rows/bank, %d intervals)",
			h, MaxBanks, MaxRowsPerBank, MaxRefInt)
	}
	return nil
}

// Writer streams events to an io.Writer. Call Flush before using the
// underlying data.
type Writer struct {
	w   *bufio.Writer
	buf [2 * binary.MaxVarintLen64]byte
	n   uint64 // events written
}

// NewWriter writes the magic and header and returns a Writer.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	tw := &Writer{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := tw.w.WriteString(magic); err != nil {
		return nil, err
	}
	for _, v := range []int{h.Banks, h.RowsPerBank, h.RefInt} {
		if err := tw.writeUvarint(uint64(v)); err != nil {
			return nil, err
		}
	}
	return tw, nil
}

func (tw *Writer) writeUvarint(v uint64) error {
	n := binary.PutUvarint(tw.buf[:], v)
	_, err := tw.w.Write(tw.buf[:n])
	return err
}

// WriteAct records an activation.
func (tw *Writer) WriteAct(bank, row int) error {
	if err := tw.w.WriteByte(byte(KindAct)); err != nil {
		return err
	}
	if err := tw.writeUvarint(uint64(bank)); err != nil {
		return err
	}
	tw.n++
	return tw.writeUvarint(uint64(row))
}

// WriteIntervalEnd records a refresh-interval boundary.
func (tw *Writer) WriteIntervalEnd() error {
	tw.n++
	return tw.w.WriteByte(byte(KindIntervalEnd))
}

// Events returns the number of events written so far.
func (tw *Writer) Events() uint64 { return tw.n }

// Flush drains buffered bytes to the underlying writer.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader streams events back. Next returns io.EOF at the end of the
// trace; any damage in the stream surfaces as a *CorruptError matching
// ErrCorrupt, with the byte offset of the failure.
type Reader struct {
	r      *bufio.Reader
	header Header
	off    int64 // bytes consumed from the start of the trace
}

// ReadByte implements io.ByteReader with offset accounting; varint
// decoding goes through it so CorruptError offsets are exact.
func (tr *Reader) ReadByte() (byte, error) {
	b, err := tr.r.ReadByte()
	if err == nil {
		tr.off++
	}
	return b, err
}

// corrupt builds a positioned corruption error.
func (tr *Reader) corrupt(reason string, cause error) error {
	return &CorruptError{Offset: tr.off, Reason: reason, Err: cause}
}

// NewReader validates the magic, reads the header (enforcing the
// geometry caps), and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	tr := &Reader{r: bufio.NewReaderSize(r, 1<<16)}
	got := make([]byte, len(magic))
	n, err := io.ReadFull(tr.r, got)
	tr.off += int64(n)
	if err != nil {
		return nil, tr.corrupt("reading magic", unexpected(err))
	}
	if string(got) != magic {
		return nil, tr.corrupt(fmt.Sprintf("bad magic %q (want %q)", got, magic), nil)
	}
	for _, dst := range []*int{&tr.header.Banks, &tr.header.RowsPerBank, &tr.header.RefInt} {
		v, err := binary.ReadUvarint(tr)
		if err != nil {
			return nil, tr.corrupt("reading header", unexpected(err))
		}
		if v > MaxRowsPerBank { // widest cap; Validate tightens per field
			return nil, tr.corrupt(fmt.Sprintf("header value %d exceeds geometry caps", v), nil)
		}
		*dst = int(v)
	}
	if err := tr.header.Validate(); err != nil {
		return nil, tr.corrupt(err.Error(), nil)
	}
	return tr, nil
}

// Header returns the trace's device description.
func (tr *Reader) Header() Header { return tr.header }

// Offset returns the number of bytes consumed so far.
func (tr *Reader) Offset() int64 { return tr.off }

// Next returns the next event, or io.EOF cleanly at the trace's end. A
// trace truncated mid-record yields a CorruptError wrapping
// io.ErrUnexpectedEOF; any other damage yields a CorruptError with the
// offending offset. I/O errors from the underlying reader pass through
// unwrapped.
func (tr *Reader) Next() (Event, error) {
	kind, err := tr.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Event{}, io.EOF
		}
		return Event{}, err
	}
	switch EventKind(kind) {
	case KindIntervalEnd:
		return Event{Kind: KindIntervalEnd}, nil
	case KindAct:
		bank, err := binary.ReadUvarint(tr)
		if err != nil {
			return Event{}, tr.corrupt("reading act bank", unexpected(err))
		}
		row, err := binary.ReadUvarint(tr)
		if err != nil {
			return Event{}, tr.corrupt("reading act row", unexpected(err))
		}
		if bank >= uint64(tr.header.Banks) || row >= uint64(tr.header.RowsPerBank) {
			return Event{}, tr.corrupt(fmt.Sprintf("event (b%d, r%d) outside header geometry", bank, row), nil)
		}
		return Event{Kind: KindAct, Bank: int(bank), Row: int(row)}, nil
	default:
		return Event{}, tr.corrupt(fmt.Sprintf("unknown event kind %d", kind), nil)
	}
}

// unexpected maps a mid-record EOF to io.ErrUnexpectedEOF.
func unexpected(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ForEach replays a full trace through fn, stopping on the first error.
func (tr *Reader) ForEach(fn func(Event) error) error {
	for {
		ev, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}

package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	// binary → text → binary must preserve every event.
	var bin bytes.Buffer
	w, _ := NewWriter(&bin, Header{Banks: 4, RowsPerBank: 1024, RefInt: 64})
	w.WriteAct(0, 10)
	w.WriteAct(3, 1023)
	w.WriteIntervalEnd()
	w.WriteAct(1, 0)
	w.Flush()

	r, _ := NewReader(bytes.NewReader(bin.Bytes()))
	var text bytes.Buffer
	if err := WriteText(r, &text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"header 4 1024 64", "act 0 10", "act 3 1023", "ref", "act 1 0"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text missing %q:\n%s", want, text.String())
		}
	}

	var bin2 bytes.Buffer
	h, n, err := ReadText(&text, &bin2)
	if err != nil {
		t.Fatal(err)
	}
	if h != (Header{Banks: 4, RowsPerBank: 1024, RefInt: 64}) {
		t.Fatalf("header %+v", h)
	}
	if n != 4 {
		t.Fatalf("events = %d", n)
	}
	if !bytes.Equal(bin.Bytes(), bin2.Bytes()) {
		t.Fatal("binary round trip differs")
	}
}

func TestReadTextCommentsAndBlanks(t *testing.T) {
	in := strings.NewReader(`
# a comment
header 2 128 8

act 0 5
# another
ref
`)
	var out bytes.Buffer
	_, n, err := ReadText(in, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("events = %d", n)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"act before header":  "act 0 1\n",
		"duplicate header":   "header 2 128 8\nheader 2 128 8\n",
		"bad header":         "header 2 128\n",
		"unknown directive":  "header 2 128 8\nboom\n",
		"out of geometry":    "header 2 128 8\nact 5 1\n",
		"row out of range":   "header 2 128 8\nact 0 999\n",
		"no header":          "# nothing\n",
		"non-numeric fields": "header 2 128 8\nact x y\n",
	}
	for name, in := range cases {
		var out bytes.Buffer
		if _, _, err := ReadText(strings.NewReader(in), &out); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

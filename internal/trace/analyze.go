package trace

import (
	"fmt"
	"io"
	"sort"
)

// Profile summarizes a trace's activation statistics — the quantities
// that determine how well a time-varying-probability mitigation performs
// (see EXPERIMENTS.md): per-row activation rates, concentration of the
// activation mass, and per-bank-interval rates.
type Profile struct {
	Header    Header
	Acts      uint64
	Intervals uint64

	// PerBank is the activation count per bank.
	PerBank []uint64
	// AvgActsPerBankInterval is the paper's "average activations per
	// refresh interval" statistic.
	AvgActsPerBankInterval float64
	// MaxActsPerBankInterval is the observed per-bank-interval peak.
	MaxActsPerBankInterval uint64

	// DistinctRows is the number of (bank, row) pairs ever activated.
	DistinctRows int
	// TopShare[k] is the fraction of all activations absorbed by the
	// hottest 10^k rows (k = 0, 1, 2, 3): the activation-concentration
	// curve. A mitigation with time-varying weights profits when this
	// rises quickly.
	TopShare [4]float64
	// HotRowRate is the mean activations per interval of the single
	// hottest row — the ρ that sets the √(Pbase/2ρ) trigger rate.
	HotRowRate float64
}

// Analyze reads a whole trace and computes its Profile.
func Analyze(r *Reader) (Profile, error) {
	h := r.Header()
	p := Profile{Header: h, PerBank: make([]uint64, h.Banks)}
	counts := make(map[uint64]uint64)
	perBankInterval := make([]uint64, h.Banks)
	err := r.ForEach(func(ev Event) error {
		switch ev.Kind {
		case KindAct:
			p.Acts++
			p.PerBank[ev.Bank]++
			counts[uint64(ev.Bank)<<32|uint64(ev.Row)]++
			perBankInterval[ev.Bank]++
		case KindIntervalEnd:
			p.Intervals++
			for b := range perBankInterval {
				if perBankInterval[b] > p.MaxActsPerBankInterval {
					p.MaxActsPerBankInterval = perBankInterval[b]
				}
				perBankInterval[b] = 0
			}
		}
		return nil
	})
	if err != nil {
		return p, err
	}
	if p.Intervals > 0 {
		p.AvgActsPerBankInterval = float64(p.Acts) / float64(p.Intervals) / float64(h.Banks)
	}
	p.DistinctRows = len(counts)
	if p.Acts == 0 {
		return p, nil
	}
	all := make([]uint64, 0, len(counts))
	for _, c := range counts {
		all = append(all, c)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] > all[j] })
	if p.Intervals > 0 {
		p.HotRowRate = float64(all[0]) / float64(p.Intervals)
	}
	cum := uint64(0)
	next := 0
	for k, n := 0, 1; k < 4; k, n = k+1, n*10 {
		for next < n && next < len(all) {
			cum += all[next]
			next++
		}
		p.TopShare[k] = float64(cum) / float64(p.Acts)
	}
	return p, nil
}

// Render writes the profile as a readable report.
func (p Profile) Render(w io.Writer) error {
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr("trace profile: %d banks x %d rows, RefInt %d\n",
		p.Header.Banks, p.Header.RowsPerBank, p.Header.RefInt)
	pr("  activations: %d over %d intervals (avg %.1f per bank-interval, max %d)\n",
		p.Acts, p.Intervals, p.AvgActsPerBankInterval, p.MaxActsPerBankInterval)
	pr("  distinct rows activated: %d\n", p.DistinctRows)
	pr("  hottest row rate: %.1f activations/interval\n", p.HotRowRate)
	pr("  activation mass in hottest rows: top-1 %.1f%%, top-10 %.1f%%, top-100 %.1f%%, top-1000 %.1f%%\n",
		100*p.TopShare[0], 100*p.TopShare[1], 100*p.TopShare[2], 100*p.TopShare[3])
	for b, n := range p.PerBank {
		pr("  bank %d: %d activations\n", b, n)
	}
	return err
}

package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the trace reader: it must reject or
// cleanly EOF on every input, never panic or loop.
func FuzzReader(f *testing.F) {
	// Seed corpus: a valid trace, a truncated one, junk.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{Banks: 4, RowsPerBank: 1024, RefInt: 64})
	w.WriteAct(1, 100)
	w.WriteIntervalEnd()
	w.WriteAct(3, 1023)
	w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add([]byte("TVPM1"))
	f.Add([]byte("garbage that is long enough to parse"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1_000_000; i++ {
			_, err := r.Next()
			if errors.Is(err, io.EOF) || err != nil {
				return
			}
		}
		t.Fatal("reader produced a million events from fuzz input")
	})
}

package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the trace reader: it must reject or
// cleanly EOF on every input, never panic or loop.
func FuzzReader(f *testing.F) {
	// Seed corpus: a valid trace, a truncated one, junk.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{Banks: 4, RowsPerBank: 1024, RefInt: 64})
	w.WriteAct(1, 100)
	w.WriteIntervalEnd()
	w.WriteAct(3, 1023)
	w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add([]byte("TVPM1"))
	f.Add([]byte("garbage that is long enough to parse"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1_000_000; i++ {
			_, err := r.Next()
			if errors.Is(err, io.EOF) || err != nil {
				return
			}
		}
		t.Fatal("reader produced a million events from fuzz input")
	})
}

// FuzzCorruptedTrace is the write→mutate→read corruption target: it
// builds a valid trace from fuzzed event parameters, flips one byte at a
// fuzzed position, and replays. The reader must either return an error
// (an ErrCorrupt with a sane offset, or a clean decode failure) or
// deliver a valid prefix of well-formed events — never panic, never emit
// an event outside the header geometry.
func FuzzCorruptedTrace(f *testing.F) {
	f.Add(uint16(7), uint8(12), uint32(9), byte(0x01))
	f.Add(uint16(0), uint8(0), uint32(0), byte(0x80))
	f.Add(uint16(999), uint8(200), uint32(5), byte(0xff))

	f.Fuzz(func(t *testing.T, pos uint16, nEvents uint8, evSeed uint32, flip byte) {
		if flip == 0 {
			flip = 1 // guarantee a real mutation
		}
		h := Header{Banks: 4, RowsPerBank: 1024, RefInt: 64}

		// Write a valid trace from the fuzzed parameters.
		var buf bytes.Buffer
		w, err := NewWriter(&buf, h)
		if err != nil {
			t.Fatal(err)
		}
		s := uint64(evSeed) | 1
		for i := 0; i < int(nEvents); i++ {
			s = s*6364136223846793005 + 1442695040888963407
			switch s % 4 {
			case 0:
				if err := w.WriteIntervalEnd(); err != nil {
					t.Fatal(err)
				}
			default:
				bank := int((s >> 8) % uint64(h.Banks))
				row := int((s >> 16) % uint64(h.RowsPerBank))
				if err := w.WriteAct(bank, row); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}

		// Mutate exactly one byte.
		data := append([]byte(nil), buf.Bytes()...)
		data[int(pos)%len(data)] ^= flip

		// Replay: error or valid prefix, never a panic.
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		got := r.Header()
		if got.Validate() != nil {
			t.Fatalf("reader accepted invalid header %+v", got)
		}
		// Every event consumes at least one byte, so a valid prefix can
		// never hold more events than the stream has bytes (a single flip
		// can split a multi-byte act into several one-byte records).
		for i := 0; i <= len(data); i++ {
			ev, err := r.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				// Corruption must be typed and positioned when it is
				// data damage rather than an I/O failure.
				var ce *CorruptError
				if errors.As(err, &ce) {
					if !errors.Is(err, ErrCorrupt) {
						t.Fatal("CorruptError does not match ErrCorrupt")
					}
					if ce.Offset < 0 || ce.Offset > int64(len(data)) {
						t.Fatalf("corruption offset %d outside [0, %d]", ce.Offset, len(data))
					}
				}
				return
			}
			if ev.Kind == KindAct && (ev.Bank < 0 || ev.Bank >= got.Banks || ev.Row < 0 || ev.Row >= got.RowsPerBank) {
				t.Fatalf("event %+v outside geometry %+v", ev, got)
			}
		}
		t.Fatal("reader produced more events than were written")
	})
}

// Package cache implements the set-associative write-back cache hierarchy
// the trace front-end uses as a stand-in for the paper's gem5 setup
// (64 KB L1 per core, shared 256 KB L2, Table I).
//
// The Row-Hammer-relevant property of a cache is what it lets THROUGH:
// only misses and write-backs reach DRAM, and an attacker defeats it with
// CLFLUSH — which is why the package models flush precisely. Replacement
// is LRU.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes one cache level.
type Config struct {
	SizeBytes int // total capacity
	LineBytes int // line (block) size
	Ways      int // associativity
}

// Validate reports structural problems.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0:
		return fmt.Errorf("cache: non-positive dimension in %+v", c)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache: size %d not divisible into %d-way sets of %d-byte lines",
			c.SizeBytes, c.Ways, c.LineBytes)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// Stats counts cache activity.
type Stats struct {
	Hits       uint64
	Misses     uint64
	WriteBacks uint64
	Flushes    uint64
}

// HitRate returns hits / (hits + misses), 0 when idle.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is one level. It is not safe for concurrent use.
//
// Set/way state is struct-of-arrays: three flat slices indexed by
// set*Ways+way, so an access is pure index arithmetic over preallocated
// memory — no per-set slice headers to chase and zero allocations on the
// access path.
type Cache struct {
	cfg      Config
	tags     []uint64 // line tag per way
	used     []uint64 // LRU clock value per way
	state    []uint8  // stateValid | stateDirty per way
	ways     int
	setMask  uint64
	lineBits uint
	stats    Stats
	tick     uint64 // LRU clock
}

const (
	stateValid uint8 = 1 << 0
	stateDirty uint8 = 1 << 1
)

// New builds a cache, returning an error for invalid configurations.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Sets() * cfg.Ways
	c := &Cache{
		cfg:      cfg,
		tags:     make([]uint64, n),
		used:     make([]uint64, n),
		state:    make([]uint8, n),
		ways:     cfg.Ways,
		setMask:  uint64(cfg.Sets() - 1),
		lineBits: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
	}
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// Result describes the outcome of an access.
type Result struct {
	Hit bool
	// Evicted reports a dirty eviction; EvictedAddr is the byte address
	// of the written-back line.
	Evicted     bool
	EvictedAddr uint64
}

// Access looks up addr, filling on miss and evicting LRU. write marks the
// line dirty.
func (c *Cache) Access(addr uint64, write bool) Result {
	c.tick++
	tag := addr >> c.lineBits
	base := int(tag&c.setMask) * c.ways
	end := base + c.ways
	for i := base; i < end; i++ {
		if c.state[i]&stateValid != 0 && c.tags[i] == tag {
			c.stats.Hits++
			c.used[i] = c.tick
			if write {
				c.state[i] |= stateDirty
			}
			return Result{Hit: true}
		}
	}
	c.stats.Misses++
	// Choose victim: first invalid way, else LRU.
	victim := base
	for i := base; i < end; i++ {
		if c.state[i]&stateValid == 0 {
			victim = i
			break
		}
		if c.used[i] < c.used[victim] {
			victim = i
		}
	}
	res := Result{}
	if c.state[victim]&(stateValid|stateDirty) == stateValid|stateDirty {
		c.stats.WriteBacks++
		res.Evicted = true
		res.EvictedAddr = c.tags[victim] << c.lineBits
	}
	c.tags[victim] = tag
	c.used[victim] = c.tick
	c.state[victim] = stateValid
	if write {
		c.state[victim] |= stateDirty
	}
	return res
}

// Flush invalidates addr's line (CLFLUSH semantics) and returns whether a
// dirty line was written back.
func (c *Cache) Flush(addr uint64) (wroteBack bool) {
	c.stats.Flushes++
	tag := addr >> c.lineBits
	base := int(tag&c.setMask) * c.ways
	end := base + c.ways
	for i := base; i < end; i++ {
		if c.state[i]&stateValid != 0 && c.tags[i] == tag {
			wroteBack = c.state[i]&stateDirty != 0
			if wroteBack {
				c.stats.WriteBacks++
			}
			c.tags[i] = 0
			c.used[i] = 0
			c.state[i] = 0
			return wroteBack
		}
	}
	return false
}

// Contains reports whether addr's line is cached (for tests).
func (c *Cache) Contains(addr uint64) bool {
	tag := addr >> c.lineBits
	base := int(tag&c.setMask) * c.ways
	end := base + c.ways
	for i := base; i < end; i++ {
		if c.state[i]&stateValid != 0 && c.tags[i] == tag {
			return true
		}
	}
	return false
}

// MemOp is a DRAM-level operation produced by the hierarchy.
type MemOp struct {
	Addr  uint64
	Write bool
}

// Hierarchy is a two-level private-L1 / shared-L2 cache system. Accesses
// that miss everywhere (plus dirty write-backs) come out as MemOps.
type Hierarchy struct {
	l1 []*Cache // one per core
	l2 *Cache
}

// NewHierarchy builds the hierarchy with one private L1 per core.
func NewHierarchy(cores int, l1, l2 Config) (*Hierarchy, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("cache: cores = %d", cores)
	}
	h := &Hierarchy{l1: make([]*Cache, cores)}
	for i := range h.l1 {
		c, err := New(l1)
		if err != nil {
			return nil, err
		}
		h.l1[i] = c
	}
	c, err := New(l2)
	if err != nil {
		return nil, err
	}
	h.l2 = c
	return h, nil
}

// L1 returns core's private L1 (for stats and tests).
func (h *Hierarchy) L1(core int) *Cache { return h.l1[core] }

// L2 returns the shared L2.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// Access runs one CPU access through the hierarchy and appends the
// resulting DRAM operations (line fill and/or write-backs) to out.
func (h *Hierarchy) Access(core int, addr uint64, write bool, out []MemOp) []MemOp {
	r1 := h.l1[core].Access(addr, write)
	if r1.Evicted {
		// L1 write-back lands in L2.
		r2 := h.l2.Access(r1.EvictedAddr, true)
		if !r2.Hit {
			out = append(out, MemOp{Addr: r1.EvictedAddr})
		}
		if r2.Evicted {
			out = append(out, MemOp{Addr: r2.EvictedAddr, Write: true})
		}
	}
	if r1.Hit {
		return out
	}
	r2 := h.l2.Access(addr, write)
	if r2.Hit {
		return out
	}
	out = append(out, MemOp{Addr: addr})
	if r2.Evicted {
		out = append(out, MemOp{Addr: r2.EvictedAddr, Write: true})
	}
	return out
}

// Flush applies CLFLUSH for addr across the whole hierarchy and appends
// the write-back (if any line was dirty) to out. This is the attacker's
// tool: after Flush, the next Access to addr is guaranteed to reach DRAM.
func (h *Hierarchy) Flush(core int, addr uint64, out []MemOp) []MemOp {
	dirty := false
	for _, c := range h.l1 {
		if c.Flush(addr) {
			dirty = true
		}
	}
	if h.l2.Flush(addr) {
		dirty = true
	}
	if dirty {
		out = append(out, MemOp{Addr: addr, Write: true})
	}
	return out
}

package cache

import (
	"testing"
	"testing/quick"
)

func l1Config() Config { return Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 8} }
func l2Config() Config { return Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 16} }

func TestConfigValidate(t *testing.T) {
	if err := l1Config().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 8},
		{SizeBytes: 64 << 10, LineBytes: 60, Ways: 8},
		{SizeBytes: 100, LineBytes: 64, Ways: 8},
		{SizeBytes: 64 << 10, LineBytes: 64, Ways: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if got := l1Config().Sets(); got != 128 {
		t.Fatalf("64KB/8way/64B = %d sets, want 128", got)
	}
}

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMissThenHit(t *testing.T) {
	c := mustCache(t, l1Config())
	if r := c.Access(0x1000, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Fatal("second access missed")
	}
	// Same line, different offset.
	if r := c.Access(0x103f, false); !r.Hit {
		t.Fatal("same-line access missed")
	}
	// Next line misses.
	if r := c.Access(0x1040, false); r.Hit {
		t.Fatal("different line hit")
	}
}

func TestLRUEviction(t *testing.T) {
	// Fill one set beyond associativity; the least recently used line
	// must be the one evicted.
	cfg := Config{SizeBytes: 4 * 64, LineBytes: 64, Ways: 4} // 1 set
	c := mustCache(t, cfg)
	for i := uint64(0); i < 4; i++ {
		c.Access(i*64, false)
	}
	c.Access(0, false) // touch line 0: now line 1 is LRU
	c.Access(4*64, false)
	if c.Contains(64) {
		t.Fatal("LRU line survived")
	}
	if !c.Contains(0) {
		t.Fatal("recently used line evicted")
	}
}

func TestDirtyEvictionReportsWriteBack(t *testing.T) {
	cfg := Config{SizeBytes: 2 * 64, LineBytes: 64, Ways: 2}
	c := mustCache(t, cfg)
	c.Access(0, true) // dirty
	c.Access(64, false)
	r := c.Access(128, false) // evicts line 0 (dirty)
	if !r.Evicted || r.EvictedAddr != 0 {
		t.Fatalf("dirty eviction not reported: %+v", r)
	}
	if c.Stats().WriteBacks != 1 {
		t.Fatalf("WriteBacks = %d", c.Stats().WriteBacks)
	}
}

func TestCleanEvictionSilent(t *testing.T) {
	cfg := Config{SizeBytes: 2 * 64, LineBytes: 64, Ways: 2}
	c := mustCache(t, cfg)
	c.Access(0, false)
	c.Access(64, false)
	if r := c.Access(128, false); r.Evicted {
		t.Fatal("clean eviction reported a write-back")
	}
}

func TestFlushInvalidates(t *testing.T) {
	c := mustCache(t, l1Config())
	c.Access(0x2000, false)
	if wb := c.Flush(0x2000); wb {
		t.Fatal("clean flush reported write-back")
	}
	if c.Contains(0x2000) {
		t.Fatal("flush left the line")
	}
	// Dirty flush writes back.
	c.Access(0x3000, true)
	if wb := c.Flush(0x3000); !wb {
		t.Fatal("dirty flush lost the data")
	}
	// Flushing an absent line is a no-op.
	if wb := c.Flush(0x9999000); wb {
		t.Fatal("phantom write-back")
	}
}

func TestHitRate(t *testing.T) {
	c := mustCache(t, l1Config())
	if c.Stats().HitRate() != 0 {
		t.Fatal("idle hit rate not 0")
	}
	c.Access(0, false)
	c.Access(0, false)
	c.Access(0, false)
	c.Access(0, false)
	if got := c.Stats().HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
}

func TestHierarchyMissPath(t *testing.T) {
	h, err := NewHierarchy(2, l1Config(), l2Config())
	if err != nil {
		t.Fatal(err)
	}
	ops := h.Access(0, 0x5000, false, nil)
	if len(ops) != 1 || ops[0].Addr != 0x5000 || ops[0].Write {
		t.Fatalf("cold miss ops = %+v", ops)
	}
	// Now cached in both levels: no DRAM traffic.
	if ops := h.Access(0, 0x5000, false, nil); len(ops) != 0 {
		t.Fatalf("warm access produced %+v", ops)
	}
	// Other core misses L1 but hits shared L2.
	if ops := h.Access(1, 0x5000, false, nil); len(ops) != 0 {
		t.Fatalf("cross-core access produced %+v (L2 should hit)", ops)
	}
}

func TestHierarchyFlushForcesDRAMAccess(t *testing.T) {
	h, err := NewHierarchy(1, l1Config(), l2Config())
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, 0x7000, false, nil)
	h.Flush(0, 0x7000, nil)
	ops := h.Access(0, 0x7000, false, nil)
	if len(ops) != 1 {
		t.Fatalf("post-flush access produced %d DRAM ops, want 1", len(ops))
	}
	// This is the attack loop: flush+access always reaches DRAM.
	for i := 0; i < 100; i++ {
		h.Flush(0, 0x7000, nil)
		if ops := h.Access(0, 0x7000, false, nil); len(ops) != 1 {
			t.Fatalf("hammer iteration %d filtered by cache", i)
		}
	}
}

func TestHierarchyDirtyFlushWritesBack(t *testing.T) {
	h, err := NewHierarchy(1, l1Config(), l2Config())
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, 0x8000, true, nil)
	ops := h.Flush(0, 0x8000, nil)
	if len(ops) != 1 || !ops[0].Write {
		t.Fatalf("dirty flush ops = %+v", ops)
	}
}

func TestHierarchyRejectsBadInputs(t *testing.T) {
	if _, err := NewHierarchy(0, l1Config(), l2Config()); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := NewHierarchy(1, Config{}, l2Config()); err == nil {
		t.Fatal("bad L1 accepted")
	}
	if _, err := NewHierarchy(1, l1Config(), Config{}); err == nil {
		t.Fatal("bad L2 accepted")
	}
}

func TestInclusionLikeBehaviorProperty(t *testing.T) {
	// Property: after any access sequence, re-accessing the most recent
	// address never generates a line fill (it must be in L1).
	h, err := NewHierarchy(1, Config{SizeBytes: 1 << 10, LineBytes: 64, Ways: 2},
		Config{SizeBytes: 4 << 10, LineBytes: 64, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := func(addrs []uint32) bool {
		if len(addrs) == 0 {
			return true
		}
		var last uint64
		for _, a := range addrs {
			last = uint64(a) &^ 63
			h.Access(0, last, a&1 == 1, nil)
		}
		for _, op := range h.Access(0, last, false, nil) {
			if !op.Write && op.Addr == last {
				return false // refetch of a just-accessed line
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

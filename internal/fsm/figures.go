package fsm

// This file encodes the two FSMs of the paper as cycle-annotated machines.
// State costs are derived from the hardware structure each state implies:
// a sequential history-table search occupies one cycle per entry, weight
// calculation is a subtract (plus wrap-mux, and for the logarithmic
// variants a modified priority encoder folded into the same two cycles),
// the decision is one comparator cycle, and table updates take one or two
// cycles depending on whether the table write overlaps the act_n issue.
// With the paper's table sizes these costs reproduce Table II exactly,
// which the package tests assert.

// LinearConfig parameterizes the Fig. 2 machine.
type LinearConfig struct {
	// HistoryEntries is the history-table size (sequential search cost).
	HistoryEntries int
	// OverlappedUpdate models LoLiPRoMi's one-cycle activate-and-update
	// state (the table write overlaps the act_n handshake), which is why
	// Table II reports 36 instead of 37 cycles for it.
	OverlappedUpdate bool
}

// Fig2 builds the linear/logarithmic weighting FSM of Fig. 2.
//
// States and transitions follow the figure: on act the machine searches
// the table, calculates the weight, decides, and on a positive decision
// activates the neighbors and updates the table; on ref it updates the
// refresh-interval register and resets the table when a new refresh
// window starts.
func Fig2(name string, cfg LinearConfig) *Machine {
	update := 2
	if cfg.OverlappedUpdate {
		update = 1
	}
	m := New(name, "idle")
	m.AddState("init", 1)
	m.AddState("search in table", cfg.HistoryEntries)
	m.AddState("calculate weight", 2)
	m.AddState("decide", 1)
	m.AddState("activate neighbor & update table", update)
	m.AddState("update refresh interval", 1)
	m.AddState("reset table", 2)

	m.AddTransition("idle", "rst", "init")
	m.AddTransition("init", "done", "idle")
	m.AddTransition("idle", "act", "search in table")
	m.AddTransition("search in table", "search_cm", "calculate weight")
	m.AddTransition("calculate weight", "done", "decide")
	m.AddTransition("decide", "neg", "idle")
	m.AddTransition("decide", "pos", "activate neighbor & update table")
	m.AddTransition("activate neighbor & update table", "done", "idle")
	m.AddTransition("idle", "ref", "update refresh interval")
	m.AddTransition("update refresh interval", "same_RW", "idle")
	m.AddTransition("update refresh interval", "new_RW", "reset table")
	m.AddTransition("reset table", "done", "idle")
	return m
}

// CounterConfig parameterizes the Fig. 3 machine.
type CounterConfig struct {
	// CounterEntries is the counter-table size. The search state compares
	// two entries per cycle (SearchLanes = 2 in the paper's sizing).
	CounterEntries int
	// SearchLanes is the number of parallel comparators in the
	// search/increase state.
	SearchLanes int
	// HistoryEntries is the history-table size; the find-linked state
	// searches it four entries per cycle.
	HistoryEntries int
	// DecideCyclesPerEntry is the per-entry cost of the collective
	// weight/decision pass on ref (weight, multiply, compare, update).
	DecideCyclesPerEntry int
}

// DefaultCounterConfig returns the paper's CaPRoMi sizing (64-entry
// counter table, 32-entry history table).
func DefaultCounterConfig() CounterConfig {
	return CounterConfig{
		CounterEntries:       64,
		SearchLanes:          2,
		HistoryEntries:       32,
		DecideCyclesPerEntry: 4,
	}
}

// Fig3 builds the counter-assisted weighting FSM of Fig. 3.
func Fig3(name string, cfg CounterConfig) *Machine {
	search := cfg.CounterEntries / cfg.SearchLanes
	findLinked := cfg.HistoryEntries / 4
	m := New(name, "idle")
	m.AddState("init", 1)
	m.AddState("search/increase", search)
	m.AddState("update", 4)
	m.AddState("insert", 2)
	m.AddState("replace", 6)
	m.AddState("find linked", findLinked)
	m.AddState("link", 2)
	m.AddState("weight/decision", cfg.DecideCyclesPerEntry*cfg.CounterEntries)
	m.AddState("update interval", 2)

	m.AddTransition("idle", "rst", "init")
	m.AddTransition("init", "done", "idle")
	// act path: search the counter table; a hit increments, a miss
	// inserts (replacing a random unlocked entry when full) and links the
	// history table.
	m.AddTransition("idle", "act", "search/increase")
	m.AddTransition("search/increase", "found", "update")
	m.AddTransition("update", "done", "idle")
	m.AddTransition("search/increase", "end", "insert")
	m.AddTransition("insert", "not_full", "find linked")
	m.AddTransition("insert", "full", "replace")
	m.AddTransition("replace", "success", "find linked")
	m.AddTransition("replace", "fail", "idle")
	m.AddTransition("find linked", "done", "link")
	m.AddTransition("link", "done", "idle")
	// ref path: the collective decision visits every counter entry, then
	// the interval register is updated.
	m.AddTransition("idle", "ref", "weight/decision")
	m.AddTransition("weight/decision", "done", "update interval")
	m.AddTransition("update interval", "done", "idle")
	return m
}

package fsm

import (
	"testing"
)

func TestWorstCaseReproducesTableII(t *testing.T) {
	// Table II of the paper: cycles per observed act / ref command.
	cases := []struct {
		name     string
		m        *Machine
		act, ref int
	}{
		{"LiPRoMi", Fig2("LiPRoMi", LinearConfig{HistoryEntries: 32}), 37, 3},
		{"LoPRoMi", Fig2("LoPRoMi", LinearConfig{HistoryEntries: 32}), 37, 3},
		{"LoLiPRoMi", Fig2("LoLiPRoMi", LinearConfig{HistoryEntries: 32, OverlappedUpdate: true}), 36, 3},
		{"CaPRoMi", Fig3("CaPRoMi", DefaultCounterConfig()), 50, 258},
	}
	for _, c := range cases {
		if err := c.m.Validate(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		act, _, err := c.m.WorstCase("act")
		if err != nil {
			t.Fatalf("%s act: %v", c.name, err)
		}
		if act != c.act {
			t.Errorf("%s act cycles = %d, want %d (Table II)", c.name, act, c.act)
		}
		ref, _, err := c.m.WorstCase("ref")
		if err != nil {
			t.Fatalf("%s ref: %v", c.name, err)
		}
		if ref != c.ref {
			t.Errorf("%s ref cycles = %d, want %d (Table II)", c.name, ref, c.ref)
		}
	}
}

func TestCycleBudgetsDDR4(t *testing.T) {
	// Table I derivation: one FSM loop after act must fit 54 cycles
	// (45 ns at 1.2 GHz), after ref 420 cycles (350 ns). The paper
	// concludes no violations occur; verify structurally.
	machines := []*Machine{
		Fig2("Li", LinearConfig{HistoryEntries: 32}),
		Fig2("Lo", LinearConfig{HistoryEntries: 32}),
		Fig2("LoLi", LinearConfig{HistoryEntries: 32, OverlappedUpdate: true}),
		Fig3("Ca", DefaultCounterConfig()),
	}
	for _, m := range machines {
		act, _, _ := m.WorstCase("act")
		ref, _, _ := m.WorstCase("ref")
		if act > 54 {
			t.Errorf("%s: act loop %d > 54-cycle budget", m.Name(), act)
		}
		if ref > 420 {
			t.Errorf("%s: ref loop %d > 420-cycle budget", m.Name(), ref)
		}
	}
}

func TestWorstCasePathIsPositiveDecision(t *testing.T) {
	m := Fig2("Li", LinearConfig{HistoryEntries: 32})
	_, path, err := m.WorstCase("act")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range path {
		if s == "activate neighbor & update table" {
			found = true
		}
	}
	if !found {
		t.Fatalf("worst path misses the positive-decision state: %v", path)
	}
}

func TestRunFollowsChooser(t *testing.T) {
	m := Fig2("Li", LinearConfig{HistoryEntries: 32})
	// Negative decision: 32 + 2 + 1 = 35 cycles.
	cycles, path, err := m.Run("act", func(state string, conds []string) string {
		if state == "decide" {
			return "neg"
		}
		return conds[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 35 {
		t.Fatalf("negative-decision loop = %d cycles, want 35", cycles)
	}
	if path[len(path)-1] != "idle" {
		t.Fatal("run did not end at idle")
	}
	// Same-window ref: 1 cycle.
	cycles, _, err = m.Run("ref", func(_ string, conds []string) string { return "same_RW" })
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 1 {
		t.Fatalf("same-window ref = %d cycles, want 1", cycles)
	}
}

func TestRunRejectsNonTerminatingChooser(t *testing.T) {
	m := New("loop", "idle")
	m.AddState("a", 1)
	m.AddState("b", 1)
	m.AddTransition("idle", "go", "a")
	m.AddTransition("a", "x", "b")
	m.AddTransition("b", "x", "a")
	if _, _, err := m.Run("go", func(_ string, c []string) string { return c[0] }); err == nil {
		t.Fatal("infinite run not detected")
	}
}

func TestValidateCatchesUnreachable(t *testing.T) {
	m := New("bad", "idle")
	m.AddState("island", 1)
	if err := m.Validate(); err == nil {
		t.Fatal("unreachable state accepted")
	}
}

func TestValidateCatchesDeadEnd(t *testing.T) {
	m := New("bad", "idle")
	m.AddState("trap", 1)
	m.AddTransition("idle", "go", "trap")
	if err := m.Validate(); err == nil {
		t.Fatal("dead-end state accepted")
	}
}

func TestWorstCaseDetectsCycles(t *testing.T) {
	m := New("cyc", "idle")
	m.AddState("a", 1)
	m.AddState("b", 1)
	m.AddTransition("idle", "go", "a")
	m.AddTransition("a", "x", "b")
	m.AddTransition("b", "y", "a")
	m.AddTransition("b", "z", "idle")
	if _, _, err := m.WorstCase("go"); err == nil {
		t.Fatal("cyclic path accepted in worst-case analysis")
	}
}

func TestUnknownEvent(t *testing.T) {
	m := Fig2("Li", LinearConfig{HistoryEntries: 32})
	if _, _, err := m.WorstCase("nonsense"); err == nil {
		t.Fatal("unknown event accepted")
	}
}

func TestDuplicateStatePanics(t *testing.T) {
	m := New("dup", "idle")
	m.AddState("a", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate state accepted")
		}
	}()
	m.AddState("a", 2)
}

func TestTransitionToUnknownStatePanics(t *testing.T) {
	m := New("x", "idle")
	defer func() {
		if recover() == nil {
			t.Fatal("bad transition accepted")
		}
	}()
	m.AddTransition("idle", "go", "nowhere")
}

func TestFig3FoundPathShorterThanInsertPath(t *testing.T) {
	m := Fig3("Ca", DefaultCounterConfig())
	foundCycles, _, err := m.Run("act", func(state string, conds []string) string {
		if state == "search/increase" {
			return "found"
		}
		return conds[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	worst, _, _ := m.WorstCase("act")
	if foundCycles >= worst {
		t.Fatalf("found path (%d) not shorter than worst insert path (%d)", foundCycles, worst)
	}
}

func TestStatesAndConditionsIntrospection(t *testing.T) {
	m := Fig2("Li", LinearConfig{HistoryEntries: 32})
	states := m.States()
	if len(states) != 8 {
		t.Fatalf("Fig. 2 has %d states, want 8", len(states))
	}
	if c, ok := m.StateCycles("search in table"); !ok || c != 32 {
		t.Fatalf("search state cycles = %d,%v", c, ok)
	}
	conds := m.Conditions("decide")
	if len(conds) != 2 || conds[0] != "neg" || conds[1] != "pos" {
		t.Fatalf("decide conditions = %v", conds)
	}
}

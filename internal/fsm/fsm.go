// Package fsm provides a small finite-state-machine engine with per-state
// cycle accounting, plus the concrete machines of the paper's Fig. 2
// (linear/logarithmic weighting) and Fig. 3 (counter-assisted weighting).
//
// The paper determines, from its VHDL implementation, how many clock
// cycles one FSM loop takes after an observed act or ref command
// (Table II) and checks the loop fits between two DRAM commands. Here the
// same check is structural: each state carries the cycle cost implied by
// its hardware (a sequential 32-entry table search occupies 32 cycles, a
// valid-bit flash clear 1, ...), and WorstCase explores every loop from
// idle back to idle to find the longest.
package fsm

import (
	"fmt"
	"sort"
)

// Machine is a named FSM. States and transitions are added at build time;
// the zero value is not usable, use New.
type Machine struct {
	name    string
	cycles  map[string]int
	adj     map[string][]edge
	initial string
}

type edge struct {
	cond string
	to   string
}

// New creates a machine whose initial (and loop-terminal) state is
// `initial` with zero cycle cost.
func New(name, initial string) *Machine {
	m := &Machine{
		name:    name,
		cycles:  map[string]int{initial: 0},
		adj:     map[string][]edge{},
		initial: initial,
	}
	return m
}

// Name returns the machine's name.
func (m *Machine) Name() string { return m.name }

// Initial returns the initial state's name.
func (m *Machine) Initial() string { return m.initial }

// AddState declares a state with its per-visit cycle cost. Redeclaring a
// state panics; machines are static structures.
func (m *Machine) AddState(name string, cycles int) {
	if _, dup := m.cycles[name]; dup {
		panic(fmt.Sprintf("fsm %s: duplicate state %q", m.name, name))
	}
	if cycles < 0 {
		panic(fmt.Sprintf("fsm %s: negative cycles for %q", m.name, name))
	}
	m.cycles[name] = cycles
}

// AddTransition declares that in state `from`, condition `cond` moves to
// state `to`. Both states must exist.
func (m *Machine) AddTransition(from, cond, to string) {
	for _, s := range []string{from, to} {
		if _, ok := m.cycles[s]; !ok {
			panic(fmt.Sprintf("fsm %s: transition references unknown state %q", m.name, s))
		}
	}
	m.adj[from] = append(m.adj[from], edge{cond: cond, to: to})
}

// States returns all state names, sorted.
func (m *Machine) States() []string {
	names := make([]string, 0, len(m.cycles))
	for n := range m.cycles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// StateCycles returns the cycle cost of a state and whether it exists.
func (m *Machine) StateCycles(name string) (int, bool) {
	c, ok := m.cycles[name]
	return c, ok
}

// Conditions returns the outgoing condition labels of a state, sorted.
func (m *Machine) Conditions(state string) []string {
	var conds []string
	for _, e := range m.adj[state] {
		conds = append(conds, e.cond)
	}
	sort.Strings(conds)
	return conds
}

// Next returns the successor of state under cond.
func (m *Machine) Next(state, cond string) (string, error) {
	for _, e := range m.adj[state] {
		if e.cond == cond {
			return e.to, nil
		}
	}
	return "", fmt.Errorf("fsm %s: no transition from %q on %q", m.name, state, cond)
}

// Validate checks that every non-initial state is reachable from the
// initial state and can reach it back (no dead ends — a hardware FSM must
// always return to idle).
func (m *Machine) Validate() error {
	// Forward reachability.
	fwd := m.reach(m.initial, func(s string) []string {
		var out []string
		for _, e := range m.adj[s] {
			out = append(out, e.to)
		}
		return out
	})
	// Backward reachability (who can reach idle).
	pred := map[string][]string{}
	for from, edges := range m.adj {
		for _, e := range edges {
			pred[e.to] = append(pred[e.to], from)
		}
	}
	bwd := m.reach(m.initial, func(s string) []string { return pred[s] })
	for s := range m.cycles {
		if !fwd[s] {
			return fmt.Errorf("fsm %s: state %q unreachable from %q", m.name, s, m.initial)
		}
		if !bwd[s] {
			return fmt.Errorf("fsm %s: state %q cannot return to %q", m.name, s, m.initial)
		}
	}
	return nil
}

func (m *Machine) reach(start string, succ func(string) []string) map[string]bool {
	seen := map[string]bool{start: true}
	stack := []string{start}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range succ(s) {
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	return seen
}

// WorstCase returns the maximum cycle count over all simple paths that
// start from the initial state via the transition labeled `event` and end
// on the first return to the initial state, along with one maximizing
// path. Paths revisiting an intermediate state are rejected with an error
// (a loop would mean unbounded latency — a hardware bug).
func (m *Machine) WorstCase(event string) (int, []string, error) {
	start, err := m.Next(m.initial, event)
	if err != nil {
		return 0, nil, err
	}
	visited := map[string]bool{}
	best := -1
	var bestPath []string
	var walk func(state string, cost int, path []string) error
	walk = func(state string, cost int, path []string) error {
		cost += m.cycles[state]
		path = append(path, state)
		if state == m.initial {
			if cost > best {
				best = cost
				bestPath = append([]string(nil), path...)
			}
			return nil
		}
		if visited[state] {
			return fmt.Errorf("fsm %s: cycle through state %q", m.name, state)
		}
		visited[state] = true
		defer func() { visited[state] = false }()
		edges := m.adj[state]
		if len(edges) == 0 {
			return fmt.Errorf("fsm %s: dead end at %q", m.name, state)
		}
		for _, e := range edges {
			if err := walk(e.to, cost, path); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(start, 0, nil); err != nil {
		return 0, nil, err
	}
	return best, bestPath, nil
}

// Run executes one event loop, resolving branch conditions through choose,
// and returns the cycles consumed and the visited path. choose receives
// the current state and its outgoing condition labels (sorted) and must
// return one of them. A safety bound of 4x the state count guards against
// a misbehaving chooser.
func (m *Machine) Run(event string, choose func(state string, conds []string) string) (int, []string, error) {
	state, err := m.Next(m.initial, event)
	if err != nil {
		return 0, nil, err
	}
	cycles := 0
	var path []string
	for steps := 0; ; steps++ {
		if steps > 4*len(m.cycles) {
			return 0, nil, fmt.Errorf("fsm %s: run did not return to %q", m.name, m.initial)
		}
		cycles += m.cycles[state]
		path = append(path, state)
		if state == m.initial {
			return cycles, path, nil
		}
		conds := m.Conditions(state)
		if len(conds) == 0 {
			return 0, nil, fmt.Errorf("fsm %s: dead end at %q", m.name, state)
		}
		var cond string
		if len(conds) == 1 {
			cond = conds[0]
		} else {
			cond = choose(state, conds)
		}
		state, err = m.Next(state, cond)
		if err != nil {
			return 0, nil, err
		}
	}
}

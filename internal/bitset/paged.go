package bitset

import "math/bits"

// pagedBits sizes a Paged page at 32768 bits (4 KB of words): flip
// bookkeeping is sparse — a page materializes only when an attack
// actually crosses the threshold somewhere in its row range.
const (
	pagedShift = 15
	pagedBits  = 1 << pagedShift
	pagedMask  = pagedBits - 1
)

// Paged is a lazily-paged bit vector with the same semantics as Bitset
// but heap proportional to the touched bit ranges, not the capacity.
// Absent pages read as zero; Set allocates the page on first touch;
// Clear of an untouched page is a no-op. The zero value is unusable;
// create sized sets with NewPaged.
type Paged struct {
	pages [][]uint64
	n     int
}

// NewPaged returns a Paged holding n bits, all clear, with no pages
// allocated. n must be ≥ 0; NewPaged panics otherwise (capacity comes
// from validated geometry, so a negative size is a programming error).
func NewPaged(n int) *Paged {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Paged{pages: make([][]uint64, (n+pagedMask)>>pagedShift), n: n}
}

// Len returns the capacity in bits.
func (p *Paged) Len() int { return p.n }

// Set sets bit i, allocating its page on first touch. Out-of-range
// indices panic, matching slice semantics.
func (p *Paged) Set(i int) {
	if i < 0 || i >= p.n {
		panic("bitset: index out of range")
	}
	pi := i >> pagedShift
	pg := p.pages[pi]
	if pg == nil {
		pg = make([]uint64, pagedBits>>6)
		p.pages[pi] = pg
	}
	j := i & pagedMask
	pg[j>>6] |= 1 << (uint(j) & 63)
}

// Clear clears bit i (a no-op on untouched pages). Out-of-range indices
// panic.
func (p *Paged) Clear(i int) {
	if i < 0 || i >= p.n {
		panic("bitset: index out of range")
	}
	pg := p.pages[i>>pagedShift]
	if pg == nil {
		return
	}
	j := i & pagedMask
	pg[j>>6] &^= 1 << (uint(j) & 63)
}

// Get reports bit i. Out-of-range indices (including negative) report
// false rather than panicking, matching Bitset's probe semantics.
func (p *Paged) Get(i int) bool {
	if i < 0 || i >= p.n {
		return false
	}
	pg := p.pages[i>>pagedShift]
	if pg == nil {
		return false
	}
	j := i & pagedMask
	return pg[j>>6]&(1<<(uint(j)&63)) != 0
}

// Count returns the number of set bits.
func (p *Paged) Count() int {
	n := 0
	for _, pg := range p.pages {
		for _, w := range pg {
			n += bits.OnesCount64(w)
		}
	}
	return n
}

// TouchedPages counts allocated pages (heap accounting for the scale
// gate).
func (p *Paged) TouchedPages() int {
	n := 0
	for _, pg := range p.pages {
		if pg != nil {
			n++
		}
	}
	return n
}

// Bytes returns the approximate heap footprint of the allocated pages
// plus the page table.
func (p *Paged) Bytes() int {
	return len(p.pages)*8 + p.TouchedPages()*(pagedBits>>3)
}

package bitset

import "testing"

func TestSetGetClear(t *testing.T) {
	b := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in a fresh set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	b.Reset()
	if got := b.Count(); got != 0 {
		t.Fatalf("Count after Reset = %d, want 0", got)
	}
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
}

// TestGetOutOfRangeIsFalse pins the hot-path contract: membership probes
// outside the capacity (neighbor addresses one row off the device) report
// "not a member" instead of panicking.
func TestGetOutOfRangeIsFalse(t *testing.T) {
	b := New(64)
	for _, i := range []int{-1, -64, 64, 65, 1 << 20} {
		if b.Get(i) {
			t.Fatalf("Get(%d) = true out of range", i)
		}
	}
}

func TestSetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set out of range did not panic")
		}
	}()
	New(8).Set(8)
}

func TestZeroSize(t *testing.T) {
	b := New(0)
	if b.Get(0) || b.Count() != 0 || b.Len() != 0 {
		t.Fatal("zero-size set misbehaves")
	}
}

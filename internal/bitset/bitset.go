// Package bitset provides a dense, preallocated bit vector used by the
// simulation hot path. The paper's hardware framing — priority encoders
// over per-bank state, fixed-size FIFOs — maps onto flat arrays, and the
// simulator mirrors that: classification sets that used to live in Go
// maps (aggressor ground truth, per-window flip bookkeeping) become
// bitsets sized once from the validated device geometry, so hot-path
// membership tests are a shift, a mask and one load — no hashing, no
// allocation.
package bitset

import "math/bits"

// Bitset is a fixed-capacity bit vector. The zero value is an empty set
// of capacity 0; create sized sets with New.
type Bitset struct {
	words []uint64
	n     int
}

// New returns a Bitset holding n bits, all clear. n must be ≥ 0; New
// panics otherwise (capacity comes from validated geometry, so a negative
// size is a programming error).
func New(n int) *Bitset {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Bitset{words: make([]uint64, (n+63)>>6), n: n}
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i. Out-of-range indices panic, matching slice semantics.
func (b *Bitset) Set(i int) {
	if i < 0 || i >= b.n {
		panic("bitset: index out of range")
	}
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i. Out-of-range indices panic.
func (b *Bitset) Clear(i int) {
	if i < 0 || i >= b.n {
		panic("bitset: index out of range")
	}
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Get reports bit i. Out-of-range indices (including negative) report
// false rather than panicking: hot-path callers probe neighbor addresses
// that can fall one row outside the device, and the set semantics of "not
// a member" are what they mean.
func (b *Bitset) Get(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Reset clears every bit, keeping the allocation.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Words exposes the backing word slice for footprint accounting.
func (b *Bitset) Words() []uint64 { return b.words }

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

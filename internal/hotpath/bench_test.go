package hotpath

import "testing"

// Standard-driver benchmarks over the same measurement core the profile
// subcommand uses: `go test -bench . ./internal/hotpath/` and
// `cmd/experiments profile` report the same quantities.

func BenchmarkActPathPARA(b *testing.B)      { benchActPath(b, "PARA", false) }
func BenchmarkActPathTWiCe(b *testing.B)     { benchActPath(b, "TWiCe", false) }
func BenchmarkActPathCaPRoMi(b *testing.B)   { benchActPath(b, "CaPRoMi", false) }
func BenchmarkActPathLiPRoMi(b *testing.B)   { benchActPath(b, "LiPRoMi", false) }
func BenchmarkActPathLoPRoMi(b *testing.B)   { benchActPath(b, "LoPRoMi", false) }
func BenchmarkActPathLoLiPRoMi(b *testing.B) { benchActPath(b, "LoLiPRoMi", false) }

// The serial-LFSR "before" references, for explicit side-by-side runs.

func BenchmarkActPathPARASerialLFSR(b *testing.B)    { benchActPath(b, "PARA", true) }
func BenchmarkActPathLiPRoMiSerialLFSR(b *testing.B) { benchActPath(b, "LiPRoMi", true) }

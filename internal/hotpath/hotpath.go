// Package hotpath is the profiling and benchmark harness for the
// simulation core. It measures two layers:
//
//   - the per-mitigator activation path (OnActivate plus its share of
//     interval work) in isolation, against a deterministic synthetic
//     access pattern — ns/act, allocs/act, acts/sec — with a "before"
//     reference that reruns RNG-backed techniques on the serial
//     bit-by-bit LFSR the seed implementation stepped; and
//   - the end-to-end simulation pipeline, comparing the unbatched
//     reference driver (sim.RunReferenceCtx) against the batched
//     production driver (sim.RunCtx) and verifying both produce the
//     identical Result.
//
// `go run ./cmd/experiments profile` builds a Report and writes it to
// BENCH_hotpath.json; `go test -bench . ./internal/hotpath/` runs the same
// measurements under the standard benchmark driver.
package hotpath

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"tivapromi/internal/dram"
	"tivapromi/internal/memctrl"
	"tivapromi/internal/mitigation"
	_ "tivapromi/internal/mitigation/all" // register all techniques
	"tivapromi/internal/rng"
	"tivapromi/internal/sim"
)

// Spec names one technique whose activation path is benchmarked.
type Spec struct {
	// Name is the mitigation registry name.
	Name string
	// RNG marks techniques whose act path draws decision entropy from the
	// LFSR; only those have a meaningful serial-LFSR "before" reference.
	RNG bool
}

// Specs returns the benchmarked techniques: the paper's probabilistic
// family plus the deterministic counter baselines whose table lookups the
// overhaul rewrote.
func Specs() []Spec {
	return []Spec{
		{Name: "PARA", RNG: true},
		{Name: "TWiCe", RNG: false},
		{Name: "CaPRoMi", RNG: true},
		{Name: "LiPRoMi", RNG: true},
		{Name: "LoPRoMi", RNG: true},
		{Name: "LoLiPRoMi", RNG: true},
	}
}

// BenchTarget is the device geometry the act-path benchmarks run against:
// the scaled simulator default, so micro-benchmark numbers correspond to
// the configuration every experiment uses.
func BenchTarget() mitigation.Target {
	p := dram.ScaledParams()
	return mitigation.Target{
		Banks:         p.Banks,
		RowsPerBank:   p.RowsPerBank,
		RefInt:        p.RefInt,
		FlipThreshold: p.FlipThreshold,
	}
}

// actsPerInterval matches the traffic statistic the paper reports (≈40
// activations per bank-interval); the synthetic pattern advances the
// interval clock at that rate so interval-indexed weights sweep their
// whole range.
const actsPerInterval = 40

// DriveActPath feeds n synthetic activations to m and returns the number
// of commands it emitted together with the (possibly grown) scratch
// buffer. The pattern is deterministic and RNG-free: a double-sided
// hammer pair sweeps each bank while background accesses rotate over the
// row space, and every actsPerInterval*banks activations the interval
// advances (with OnRefreshInterval and window wrap), so counter pruning,
// history aging and time-varying weights are all exercised.
func DriveActPath(m mitigation.Mitigator, t mitigation.Target, n int, scratch []mitigation.Command) (int, []mitigation.Command) {
	emitted := 0
	interval := 0
	perTick := actsPerInterval * t.Banks
	victim := t.RowsPerBank / 2
	for i := 0; i < n; i++ {
		bank := i % t.Banks
		var row int
		if i%3 != 0 {
			// Hammer: alternate the two aggressors of the victim.
			row = victim - 1 + 2*(i&1)
		} else {
			// Background: rotate over the row space, coprime stride.
			row = (i * 97) % t.RowsPerBank
		}
		scratch = m.OnActivate(bank, row, interval, scratch[:0])
		emitted += len(scratch)
		if (i+1)%perTick == 0 {
			scratch = m.OnRefreshInterval(interval, scratch[:0])
			emitted += len(scratch)
			interval++
			if interval == t.RefInt {
				interval = 0
				m.OnNewWindow()
			}
		}
	}
	return emitted, scratch
}

// Measurement is one technique's act-path result.
type Measurement struct {
	Name         string  `json:"name"`
	NsPerAct     float64 `json:"ns_per_act"`
	AllocsPerAct float64 `json:"allocs_per_act"`
	ActsPerSec   float64 `json:"acts_per_sec"`
	// RefNsPerAct is the same path with the serial bit-by-bit LFSR the
	// seed stepped installed as the decision RNG (0 for techniques with
	// no RNG on the act path); Speedup is RefNsPerAct / NsPerAct.
	RefNsPerAct float64 `json:"ref_ns_per_act,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
}

// benchActPath drives b.N activations through a fresh instance of the
// technique. When serial is true the decision RNG is replaced by the
// serial LFSR reference (callers ensure the technique is RandSettable).
func benchActPath(b *testing.B, name string, serial bool) {
	t := BenchTarget()
	factory, err := mitigation.Lookup(name)
	if err != nil {
		b.Fatalf("lookup %s: %v", name, err)
	}
	m := factory(t, 1)
	if serial {
		rs, ok := m.(mitigation.RandSettable)
		if !ok {
			b.Fatalf("%s does not implement RandSettable", name)
		}
		rs.SetRandSource(rng.NewSerialLFSR32(1))
	}
	// Warm the scratch buffer and the technique's tables so the timed
	// region measures steady state, not first-touch growth.
	_, scratch := DriveActPath(m, t, 4*actsPerInterval*t.Banks, nil)
	b.ReportAllocs()
	b.ResetTimer()
	DriveActPath(m, t, b.N, scratch)
}

// MeasureActPath benchmarks one technique's act path, including the
// serial-LFSR reference for RNG-backed techniques.
func MeasureActPath(s Spec) Measurement {
	r := testing.Benchmark(func(b *testing.B) { benchActPath(b, s.Name, false) })
	ns := float64(r.NsPerOp())
	if ns <= 0 {
		ns = float64(r.T.Nanoseconds()) / float64(r.N)
	}
	m := Measurement{
		Name:     s.Name,
		NsPerAct: ns,
		// AllocsPerOp truncates like the `go test -bench` display; stray
		// sub-1-per-run runtime allocations inside the timed region do not
		// count (TestActPathAllocFree is the strict zero gate).
		AllocsPerAct: float64(r.AllocsPerOp()),
	}
	if ns > 0 {
		m.ActsPerSec = 1e9 / ns
	}
	if s.RNG {
		ref := testing.Benchmark(func(b *testing.B) { benchActPath(b, s.Name, true) })
		m.RefNsPerAct = float64(ref.NsPerOp())
		if m.NsPerAct > 0 {
			m.Speedup = m.RefNsPerAct / m.NsPerAct
		}
	}
	return m
}

// PipelineResult compares the end-to-end unbatched reference driver
// against the batched production driver for one technique.
type PipelineResult struct {
	Technique         string  `json:"technique"`
	Accesses          uint64  `json:"accesses"`
	RefActsPerSec     float64 `json:"ref_acts_per_sec"`
	BatchedActsPerSec float64 `json:"batched_acts_per_sec"`
	Speedup           float64 `json:"speedup"`
	// ResultsMatch reports whether the two drivers produced the identical
	// sim.Result — the behavioral-equivalence check riding along with
	// every benchmark run.
	ResultsMatch bool `json:"results_match"`
}

// pipelineConfig is the workload both pipeline drivers run: the standard
// mixed-load-plus-attacker setup, shortened to keep a full profile run in
// seconds.
func pipelineConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Windows = 1
	return cfg
}

// pipelineReps is how many times each pipeline driver runs; the fastest
// repetition is reported, the standard way to strip scheduler and GC noise
// from a wall-clock measurement.
const pipelineReps = 3

// MeasurePipeline times both drivers on the same configuration (fastest of
// pipelineReps runs each) and checks Result equality across every run.
func MeasurePipeline(ctx context.Context, technique string) (PipelineResult, error) {
	cfg := pipelineConfig()
	best := func(run func() (sim.Result, error)) (sim.Result, time.Duration, error) {
		var res sim.Result
		var min time.Duration
		for i := 0; i < pipelineReps; i++ {
			runtime.GC() // don't bill one run for another's garbage
			t0 := time.Now()
			r, err := run()
			d := time.Since(t0)
			if err != nil {
				return sim.Result{}, 0, err
			}
			if i == 0 {
				res, min = r, d
				continue
			}
			if r != res {
				return sim.Result{}, 0, fmt.Errorf("nondeterministic result across repetitions")
			}
			if d < min {
				min = d
			}
		}
		return res, min, nil
	}
	ref, refDur, err := best(func() (sim.Result, error) { return sim.RunReferenceCtx(ctx, cfg, technique) })
	if err != nil {
		return PipelineResult{}, fmt.Errorf("hotpath: reference run of %s: %w", technique, err)
	}
	bat, batDur, err := best(func() (sim.Result, error) { return sim.RunCtx(ctx, cfg, technique) })
	if err != nil {
		return PipelineResult{}, fmt.Errorf("hotpath: batched run of %s: %w", technique, err)
	}
	p := PipelineResult{
		Technique:    technique,
		Accesses:     ref.TotalActs,
		ResultsMatch: ref == bat,
	}
	if s := refDur.Seconds(); s > 0 {
		p.RefActsPerSec = float64(ref.TotalActs) / s
	}
	if s := batDur.Seconds(); s > 0 {
		p.BatchedActsPerSec = float64(bat.TotalActs) / s
	}
	if p.RefActsPerSec > 0 {
		p.Speedup = p.BatchedActsPerSec / p.RefActsPerSec
	}
	return p, nil
}

// Report is the BENCH_hotpath.json payload.
type Report struct {
	GeneratedAt string           `json:"generated_at"`
	GoMaxProcs  int              `json:"gomaxprocs"`
	NumCPU      int              `json:"num_cpu"`
	BatchSize   int              `json:"batch_size"`
	ActPath     []Measurement    `json:"act_path"`
	Pipeline    []PipelineResult `json:"pipeline"`
}

// BuildReport runs every act-path and pipeline measurement. It returns an
// error when a pipeline run fails or when the two drivers disagree —
// a benchmark artifact from diverging implementations would be garbage.
func BuildReport(ctx context.Context) (Report, error) {
	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		BatchSize:   memctrl.DefaultBatchSize,
	}
	for _, s := range Specs() {
		rep.ActPath = append(rep.ActPath, MeasureActPath(s))
	}
	for _, tech := range []string{"PARA", "LiPRoMi", "CaPRoMi"} {
		p, err := MeasurePipeline(ctx, tech)
		if err != nil {
			return rep, err
		}
		if !p.ResultsMatch {
			return rep, fmt.Errorf("hotpath: %s: batched and reference drivers disagree", tech)
		}
		rep.Pipeline = append(rep.Pipeline, p)
	}
	return rep, nil
}

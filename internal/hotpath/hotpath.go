// Package hotpath is the profiling and benchmark harness for the
// simulation core. It measures two layers:
//
//   - the per-mitigator activation path (OnActivate plus its share of
//     interval work) in isolation, against a deterministic synthetic
//     access pattern — ns/act, allocs/act, acts/sec — with a "before"
//     reference that reruns RNG-backed techniques on the serial
//     bit-by-bit LFSR the seed implementation stepped; and
//   - the end-to-end simulation pipeline, stage by stage: trace
//     generation in isolation (sim.DrainStream), the unbatched reference
//     driver (sim.RunReferenceCtx), the serial block driver (sim.RunCtx)
//     and the bank-sharded parallel driver (sim.RunShardedCtx), verifying
//     every driver produces the identical Result.
//
// `go run ./cmd/experiments profile` builds a Report and writes it to
// BENCH_hotpath.json; `go test -bench . ./internal/hotpath/` runs the same
// measurements under the standard benchmark driver.
package hotpath

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"tivapromi/internal/dram"
	"tivapromi/internal/memctrl"
	"tivapromi/internal/mitigation"
	_ "tivapromi/internal/mitigation/all" // register all techniques
	"tivapromi/internal/obs"
	"tivapromi/internal/rng"
	"tivapromi/internal/sim"
)

// Spec names one technique whose activation path is benchmarked.
type Spec struct {
	// Name is the mitigation registry name.
	Name string
	// RNG marks techniques whose act path draws decision entropy from the
	// LFSR; only those have a meaningful serial-LFSR "before" reference.
	RNG bool
}

// Specs returns the benchmarked techniques: the paper's probabilistic
// family plus the deterministic counter baselines whose table lookups the
// overhaul rewrote.
func Specs() []Spec {
	return []Spec{
		{Name: "PARA", RNG: true},
		{Name: "TWiCe", RNG: false},
		{Name: "CaPRoMi", RNG: true},
		{Name: "LiPRoMi", RNG: true},
		{Name: "LoPRoMi", RNG: true},
		{Name: "LoLiPRoMi", RNG: true},
	}
}

// BenchTarget is the device geometry the act-path benchmarks run against:
// the scaled simulator default, so micro-benchmark numbers correspond to
// the configuration every experiment uses.
func BenchTarget() mitigation.Target {
	p := dram.ScaledParams()
	return mitigation.Target{
		Banks:         p.TotalBanks(),
		RowsPerBank:   p.RowsPerBank,
		RefInt:        p.RefInt,
		FlipThreshold: p.FlipThreshold,
	}
}

// actsPerInterval matches the traffic statistic the paper reports (≈40
// activations per bank-interval); the synthetic pattern advances the
// interval clock at that rate so interval-indexed weights sweep their
// whole range.
const actsPerInterval = 40

// DriveActPath feeds n synthetic activations to m and returns the number
// of commands it emitted together with the (possibly grown) scratch
// buffer. The pattern is deterministic and RNG-free: a double-sided
// hammer pair sweeps each bank while background accesses rotate over the
// row space, and every actsPerInterval*banks activations the interval
// advances (with OnRefreshInterval and window wrap), so counter pruning,
// history aging and time-varying weights are all exercised.
func DriveActPath(m mitigation.Mitigator, t mitigation.Target, n int, scratch []mitigation.Command) (int, []mitigation.Command) {
	emitted := 0
	interval := 0
	perTick := actsPerInterval * t.Banks
	victim := t.RowsPerBank / 2
	for i := 0; i < n; i++ {
		bank := i % t.Banks
		var row int
		if i%3 != 0 {
			// Hammer: alternate the two aggressors of the victim.
			row = victim - 1 + 2*(i&1)
		} else {
			// Background: rotate over the row space, coprime stride.
			row = (i * 97) % t.RowsPerBank
		}
		scratch = m.OnActivate(bank, row, interval, scratch[:0])
		emitted += len(scratch)
		if (i+1)%perTick == 0 {
			scratch = m.OnRefreshInterval(interval, scratch[:0])
			emitted += len(scratch)
			interval++
			if interval == t.RefInt {
				interval = 0
				m.OnNewWindow()
			}
			// Mirror the production lane's sampled metrics flush (see
			// memctrl.Lane.FlushMetrics): two atomic adds per interval,
			// nothing per act. Benchmarking it here means NsPerAct and the
			// alloc gate measure the act path as deployed, obs included.
			if obs.MetricsEnabled() {
				obs.Accesses.Add(uint64(perTick))
				obs.Acts.Add(uint64(perTick))
			}
		}
	}
	return emitted, scratch
}

// Measurement is one technique's act-path result.
type Measurement struct {
	Name         string  `json:"name"`
	NsPerAct     float64 `json:"ns_per_act"`
	AllocsPerAct float64 `json:"allocs_per_act"`
	ActsPerSec   float64 `json:"acts_per_sec"`
	// RefNsPerAct is the same path with the serial bit-by-bit LFSR the
	// seed stepped installed as the decision RNG (0 for techniques with
	// no RNG on the act path); Speedup is RefNsPerAct / NsPerAct.
	RefNsPerAct float64 `json:"ref_ns_per_act,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
	// ObsNsPerAct is the act path with the obs metrics flush enabled
	// (NsPerAct is measured with it disabled, preserving comparability
	// with committed baselines); ObsOverheadPct is the relative cost of
	// observability on the hot path, expected ≈0 since the flush is two
	// atomic adds per refresh interval.
	ObsNsPerAct    float64 `json:"obs_ns_per_act"`
	ObsOverheadPct float64 `json:"obs_overhead_pct"`
}

// benchActPath drives b.N activations through a fresh instance of the
// technique. When serial is true the decision RNG is replaced by the
// serial LFSR reference (callers ensure the technique is RandSettable).
func benchActPath(b *testing.B, name string, serial bool) {
	t := BenchTarget()
	factory, err := mitigation.Lookup(name)
	if err != nil {
		b.Fatalf("lookup %s: %v", name, err)
	}
	m := factory(t, 1)
	if serial {
		rs, ok := m.(mitigation.RandSettable)
		if !ok {
			b.Fatalf("%s does not implement RandSettable", name)
		}
		rs.SetRandSource(rng.NewSerialLFSR32(1))
	}
	// Warm the scratch buffer and the technique's tables so the timed
	// region measures steady state, not first-touch growth.
	_, scratch := DriveActPath(m, t, 4*actsPerInterval*t.Banks, nil)
	b.ReportAllocs()
	b.ResetTimer()
	DriveActPath(m, t, b.N, scratch)
}

// MeasureActPath benchmarks one technique's act path, including the
// serial-LFSR reference for RNG-backed techniques and the obs-overhead
// leg (metrics flush on vs off).
func MeasureActPath(s Spec) Measurement {
	wasOn := obs.MetricsEnabled()
	defer obs.SetMetricsEnabled(wasOn)

	// NsPerAct with the metrics flush off: the historical measurement,
	// directly comparable with baselines committed before obs existed.
	obs.SetMetricsEnabled(false)
	r := testing.Benchmark(func(b *testing.B) { benchActPath(b, s.Name, false) })
	ns := float64(r.NsPerOp())
	if ns <= 0 {
		ns = float64(r.T.Nanoseconds()) / float64(r.N)
	}
	m := Measurement{
		Name:     s.Name,
		NsPerAct: ns,
		// AllocsPerOp truncates like the `go test -bench` display; stray
		// sub-1-per-run runtime allocations inside the timed region do not
		// count (TestActPathAllocFree is the strict zero gate).
		AllocsPerAct: float64(r.AllocsPerOp()),
	}
	if ns > 0 {
		m.ActsPerSec = 1e9 / ns
	}
	if s.RNG {
		ref := testing.Benchmark(func(b *testing.B) { benchActPath(b, s.Name, true) })
		m.RefNsPerAct = float64(ref.NsPerOp())
		if m.NsPerAct > 0 {
			m.Speedup = m.RefNsPerAct / m.NsPerAct
		}
	}

	// The same path with the sampled metrics flush on — the deployed
	// configuration. The delta is the observable cost of observability.
	obs.SetMetricsEnabled(true)
	or := testing.Benchmark(func(b *testing.B) { benchActPath(b, s.Name, false) })
	m.ObsNsPerAct = float64(or.NsPerOp())
	if m.ObsNsPerAct <= 0 {
		m.ObsNsPerAct = float64(or.T.Nanoseconds()) / float64(or.N)
	}
	if m.NsPerAct > 0 {
		m.ObsOverheadPct = 100 * (m.ObsNsPerAct - m.NsPerAct) / m.NsPerAct
	}
	return m
}

// ShardRate is one sharded-driver measurement of the pipeline.
type ShardRate struct {
	Shards     int     `json:"shards"`
	ActsPerSec float64 `json:"acts_per_sec"`
	// Speedup is relative to the serial block driver. On a single-CPU
	// host it is expected to be below 1 (pure synchronization overhead);
	// the CI perf-smoke job measures it at GOMAXPROCS=4.
	Speedup float64 `json:"speedup"`
}

// PipelineResult profiles the end-to-end pipeline of one technique,
// stage by stage: trace generation alone, the unbatched reference
// driver, the serial block driver, and the bank-sharded driver at each
// shard count — all over the identical generated access stream, all
// checked for Result equality.
type PipelineResult struct {
	Technique string `json:"technique"`
	// Accesses is the stream length (the ns-per-access denominator);
	// Activations is the row activations it caused (the acts/sec
	// numerator, comparable across reports).
	Accesses    uint64 `json:"accesses"`
	Activations uint64 `json:"activations"`
	// Per-stage single-thread breakdown in ns per generated access.
	// ServiceNsPerAccess = BlockNsPerAccess − GenNsPerAccess: the lane
	// servicing share of the production driver.
	GenNsPerAccess     float64 `json:"gen_ns_per_access"`
	RefNsPerAccess     float64 `json:"ref_ns_per_access"`
	BlockNsPerAccess   float64 `json:"block_ns_per_access"`
	ServiceNsPerAccess float64 `json:"service_ns_per_access"`

	RefActsPerSec   float64 `json:"ref_acts_per_sec"`
	BlockActsPerSec float64 `json:"block_acts_per_sec"`
	// BlockSpeedup compares the block driver to the reference driver;
	// `experiments profile` fails when it reports a batching net loss.
	BlockSpeedup float64 `json:"block_speedup"`

	Sharded []ShardRate `json:"sharded"`

	// ResultsMatch reports whether every driver produced the identical
	// sim.Result — the behavioral-equivalence check riding along with
	// every benchmark run.
	ResultsMatch bool `json:"results_match"`
}

// pipelineConfig is the workload both pipeline drivers run: the standard
// mixed-load-plus-attacker setup, shortened to keep a full profile run in
// seconds. Three windows (≈half a million accesses, tens of milliseconds
// per timed run) is long enough that scheduler noise stops dominating the
// driver-vs-driver ratios while a full three-technique profile still
// finishes in a few seconds.
func pipelineConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Windows = 3
	return cfg
}

// pipelineReps is how many times each pipeline driver runs. Absolute
// rates come from each driver's fastest repetition (the standard way to
// strip scheduler and GC noise from a wall-clock measurement); speedup
// ratios instead pair the drivers within each repetition round and take
// the median ratio, because machine noise is time-correlated — adjacent
// timings share the same load epoch, so their ratio is far more stable
// than a ratio of two independent bests.
const pipelineReps = 5

// pipelineShardCounts are the sharded-driver fan-outs the profile
// measures (clamped to the configuration's bank count inside the driver;
// the scaled default has 4 banks, so this is {2, NumBank}).
func pipelineShardCounts(cfg sim.Config) []int {
	counts := []int{2, cfg.Params.Banks}
	if counts[1] <= counts[0] {
		counts = counts[:1]
	}
	return counts
}

// MeasurePipeline profiles every pipeline stage on the same
// configuration and checks Result equality across every driver and
// repetition. Every repetition round times each driver back to back (see
// pipelineReps for why ratios pair within rounds).
func MeasurePipeline(ctx context.Context, technique string) (PipelineResult, error) {
	cfg := pipelineConfig()
	shardCounts := pipelineShardCounts(cfg)

	timeOne := func(run func() (sim.Result, error)) (sim.Result, time.Duration, error) {
		runtime.GC() // don't bill one run for another's garbage
		t0 := time.Now()
		r, err := run()
		return r, time.Since(t0), err
	}

	var accesses uint64
	var ref, blk sim.Result
	var genDur, refDur, blkDur time.Duration
	shardDur := make([]time.Duration, len(shardCounts))
	shardRes := make([]sim.Result, len(shardCounts))
	blockRatios := make([]float64, 0, pipelineReps)
	shardRatios := make([][]float64, len(shardCounts))

	for i := 0; i < pipelineReps; i++ {
		_, gd, err := timeOne(func() (sim.Result, error) {
			n, err := sim.DrainStream(ctx, cfg)
			accesses = n
			return sim.Result{}, err
		})
		if err != nil {
			return PipelineResult{}, fmt.Errorf("hotpath: generation stage of %s: %w", technique, err)
		}
		r, rd, err := timeOne(func() (sim.Result, error) { return sim.RunReferenceCtx(ctx, cfg, technique) })
		if err != nil {
			return PipelineResult{}, fmt.Errorf("hotpath: reference run of %s: %w", technique, err)
		}
		b, bd, err := timeOne(func() (sim.Result, error) { return sim.RunCtx(ctx, cfg, technique) })
		if err != nil {
			return PipelineResult{}, fmt.Errorf("hotpath: block run of %s: %w", technique, err)
		}
		if i == 0 {
			ref, blk = r, b
			genDur, refDur, blkDur = gd, rd, bd
		} else {
			if r != ref || b != blk {
				return PipelineResult{}, fmt.Errorf("hotpath: %s: nondeterministic result across repetitions", technique)
			}
			genDur, refDur, blkDur = minDur(genDur, gd), minDur(refDur, rd), minDur(blkDur, bd)
		}
		if bd > 0 {
			blockRatios = append(blockRatios, rd.Seconds()/bd.Seconds())
		}
		for k, shards := range shardCounts {
			shards := shards
			s, sd, err := timeOne(func() (sim.Result, error) {
				return sim.RunShardedCtx(ctx, cfg, technique, shards)
			})
			if err != nil {
				return PipelineResult{}, fmt.Errorf("hotpath: sharded(%d) run of %s: %w", shards, technique, err)
			}
			if i == 0 {
				shardRes[k], shardDur[k] = s, sd
			} else {
				if s != shardRes[k] {
					return PipelineResult{}, fmt.Errorf("hotpath: sharded(%d) %s: nondeterministic result across repetitions", shards, technique)
				}
				shardDur[k] = minDur(shardDur[k], sd)
			}
			if sd > 0 {
				shardRatios[k] = append(shardRatios[k], bd.Seconds()/sd.Seconds())
			}
		}
	}

	p := PipelineResult{
		Technique:    technique,
		Accesses:     accesses,
		Activations:  ref.TotalActs,
		ResultsMatch: ref == blk,
	}
	perAccess := func(d time.Duration) float64 {
		if accesses == 0 {
			return 0
		}
		return float64(d.Nanoseconds()) / float64(accesses)
	}
	p.GenNsPerAccess = perAccess(genDur)
	p.RefNsPerAccess = perAccess(refDur)
	p.BlockNsPerAccess = perAccess(blkDur)
	p.ServiceNsPerAccess = p.BlockNsPerAccess - p.GenNsPerAccess
	if s := refDur.Seconds(); s > 0 {
		p.RefActsPerSec = float64(ref.TotalActs) / s
	}
	if s := blkDur.Seconds(); s > 0 {
		p.BlockActsPerSec = float64(blk.TotalActs) / s
	}
	p.BlockSpeedup = median(blockRatios)

	for k, shards := range shardCounts {
		if shardRes[k] != ref {
			p.ResultsMatch = false
		}
		sr := ShardRate{Shards: shards}
		if s := shardDur[k].Seconds(); s > 0 {
			sr.ActsPerSec = float64(shardRes[k].TotalActs) / s
		}
		sr.Speedup = median(shardRatios[k])
		p.Sharded = append(p.Sharded, sr)
	}
	return p, nil
}

func minDur(a, b time.Duration) time.Duration {
	if b < a {
		return b
	}
	return a
}

// median returns the middle value of xs (mean of the middle two for even
// lengths), or 0 for an empty slice.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// Report is the BENCH_hotpath.json payload.
type Report struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	BatchSize   int    `json:"batch_size"`
	// AccessesPerInterval is the count-based refresh quantum of the
	// profiled configuration (memctrl.AccessesPerInterval).
	AccessesPerInterval int              `json:"accesses_per_interval"`
	ActPath             []Measurement    `json:"act_path"`
	Pipeline            []PipelineResult `json:"pipeline"`
}

// netLossFloor is the BlockSpeedup below which the block driver counts
// as a batching net loss and BuildReport fails.
//
// The floor is calibrated from the measured envelope of the current
// implementation, not from an ideal of parity. Serially, batching is a
// wash-to-win for PARA (~1.02–1.07×) and CaPRoMi (~0.95–0.99×) but costs
// LiPRoMi ~8% (~0.91–0.93×): block mode services each access a chunk
// after generating it, so the mitigation with the largest per-activation
// working set (the history table) reuses its state least hot. That is an
// inherent cost of the batching that enables bank-sharding, accepted and
// recorded here rather than hidden. The floor sits below that envelope
// with margin for wall-clock jitter; a reading under it means the block
// dispatch itself has regressed (the PR 6 failure mode this guard exists
// for was per-chunk overhead compounding into a structural loss). Drift
// in absolute throughput is caught separately by CheckBaseline's ratchet
// against the committed baseline.
const netLossFloor = 0.85

// BuildReport runs every act-path and pipeline measurement. It returns
// an error when a pipeline run fails, when any two drivers disagree on
// the Result — a benchmark artifact from diverging implementations would
// be garbage — or when the block driver is a net loss against the
// unbatched reference (the regression this harness exists to catch).
func BuildReport(ctx context.Context) (Report, error) {
	rep := Report{
		GeneratedAt:         time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		NumCPU:              runtime.NumCPU(),
		BatchSize:           memctrl.DefaultBatchSize,
		AccessesPerInterval: memctrl.AccessesPerInterval(pipelineConfig().Params),
	}
	for _, s := range Specs() {
		rep.ActPath = append(rep.ActPath, MeasureActPath(s))
	}
	for _, tech := range []string{"PARA", "LiPRoMi", "CaPRoMi"} {
		p, err := MeasurePipeline(ctx, tech)
		if err != nil {
			return rep, err
		}
		if !p.ResultsMatch {
			return rep, fmt.Errorf("hotpath: %s: drivers disagree on the Result", tech)
		}
		if p.BlockSpeedup < netLossFloor {
			return rep, fmt.Errorf("hotpath: %s: block driver is a net loss (%.2fx vs reference, floor %.2f)",
				tech, p.BlockSpeedup, netLossFloor)
		}
		rep.Pipeline = append(rep.Pipeline, p)
	}
	return rep, nil
}

// CheckBaseline compares a fresh report against a committed baseline and
// returns an error on a regression beyond tolPct percent. On a machine
// shaped like the baseline's (same GOMAXPROCS and CPU count) absolute
// pipeline rates are compared directly; otherwise only the
// machine-portable ratios (block and sharded speedups) are, since a
// baseline committed from one box says nothing about another's absolute
// throughput.
func CheckBaseline(cur, base Report, tolPct float64) error {
	if tolPct <= 0 {
		tolPct = 15
	}
	floor := 1 - tolPct/100
	sameShape := cur.GoMaxProcs == base.GoMaxProcs && cur.NumCPU == base.NumCPU
	basePipe := make(map[string]PipelineResult, len(base.Pipeline))
	for _, p := range base.Pipeline {
		basePipe[p.Technique] = p
	}
	for _, p := range cur.Pipeline {
		b, ok := basePipe[p.Technique]
		if !ok {
			continue
		}
		if sameShape && b.BlockActsPerSec > 0 && p.BlockActsPerSec < b.BlockActsPerSec*floor {
			return fmt.Errorf("hotpath: %s: block driver regressed %.0f → %.0f acts/sec (>%.0f%%)",
				p.Technique, b.BlockActsPerSec, p.BlockActsPerSec, tolPct)
		}
		if b.BlockSpeedup > 0 && p.BlockSpeedup < b.BlockSpeedup*floor {
			return fmt.Errorf("hotpath: %s: block speedup regressed %.2fx → %.2fx (>%.0f%%)",
				p.Technique, b.BlockSpeedup, p.BlockSpeedup, tolPct)
		}
		baseShard := make(map[int]ShardRate, len(b.Sharded))
		for _, sr := range b.Sharded {
			baseShard[sr.Shards] = sr
		}
		for _, sr := range p.Sharded {
			bs, ok := baseShard[sr.Shards]
			if !ok {
				continue
			}
			if sameShape && bs.ActsPerSec > 0 && sr.ActsPerSec < bs.ActsPerSec*floor {
				return fmt.Errorf("hotpath: %s: sharded(%d) regressed %.0f → %.0f acts/sec (>%.0f%%)",
					p.Technique, sr.Shards, bs.ActsPerSec, sr.ActsPerSec, tolPct)
			}
			if bs.Speedup > 0 && sr.Speedup < bs.Speedup*floor {
				return fmt.Errorf("hotpath: %s: sharded(%d) speedup regressed %.2fx → %.2fx (>%.0f%%)",
					p.Technique, sr.Shards, bs.Speedup, sr.Speedup, tolPct)
			}
		}
	}
	return nil
}

package hotpath

import (
	"testing"

	"tivapromi/internal/mitigation"
	"tivapromi/internal/obs"
)

// TestActPathAllocFree is the alloc-regression gate: after warm-up, the
// activation path of every benchmarked technique must not allocate. A
// regression here (a map reintroduced on a hot lookup, a command buffer
// grown per call) silently costs an order of magnitude in campaign
// throughput, so it fails the build rather than a benchmark review.
//
// The gate runs twice per technique: once with the obs metrics flush
// enabled (the deployed configuration — the 0 allocs/act guarantee must
// cover instrumentation) and once with it disabled (isolating any
// regression to the technique itself rather than the obs layer).
func TestActPathAllocFree(t *testing.T) {
	wasOn := obs.MetricsEnabled()
	defer obs.SetMetricsEnabled(wasOn)
	for _, metricsOn := range []bool{true, false} {
		metricsOn := metricsOn
		label := "metrics-on"
		if !metricsOn {
			label = "metrics-off"
		}
		t.Run(label, func(t *testing.T) {
			obs.SetMetricsEnabled(metricsOn)
			for _, s := range Specs() {
				s := s
				t.Run(s.Name, func(t *testing.T) {
					tgt := BenchTarget()
					factory, err := mitigation.Lookup(s.Name)
					if err != nil {
						t.Fatalf("lookup: %v", err)
					}
					m := factory(tgt, 1)
					// Warm-up: grow the scratch buffer and fill the technique's
					// tables to steady state.
					_, scratch := DriveActPath(m, tgt, 8*actsPerInterval*tgt.Banks, nil)
					const actsPerRun = 2 * actsPerInterval // spans an interval tick
					allocs := testing.AllocsPerRun(50, func() {
						_, scratch = DriveActPath(m, tgt, actsPerRun, scratch)
					})
					if allocs != 0 {
						t.Errorf("%s act path (%s) allocates %.2f objects per %d activations, want 0",
							s.Name, label, allocs, actsPerRun)
					}
				})
			}
		})
	}
}

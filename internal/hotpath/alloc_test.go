package hotpath

import (
	"testing"

	"tivapromi/internal/mitigation"
)

// TestActPathAllocFree is the alloc-regression gate: after warm-up, the
// activation path of every benchmarked technique must not allocate. A
// regression here (a map reintroduced on a hot lookup, a command buffer
// grown per call) silently costs an order of magnitude in campaign
// throughput, so it fails the build rather than a benchmark review.
func TestActPathAllocFree(t *testing.T) {
	for _, s := range Specs() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			tgt := BenchTarget()
			factory, err := mitigation.Lookup(s.Name)
			if err != nil {
				t.Fatalf("lookup: %v", err)
			}
			m := factory(tgt, 1)
			// Warm-up: grow the scratch buffer and fill the technique's
			// tables to steady state.
			_, scratch := DriveActPath(m, tgt, 8*actsPerInterval*tgt.Banks, nil)
			const actsPerRun = 2 * actsPerInterval // spans an interval tick
			allocs := testing.AllocsPerRun(50, func() {
				_, scratch = DriveActPath(m, tgt, actsPerRun, scratch)
			})
			if allocs != 0 {
				t.Errorf("%s act path allocates %.2f objects per %d activations, want 0",
					s.Name, allocs, actsPerRun)
			}
		})
	}
}

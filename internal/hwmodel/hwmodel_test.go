package hwmodel

import (
	"testing"
)

func TestPARACalibration(t *testing.T) {
	// The model is calibrated so PARA costs exactly the paper's 349 LUTs
	// on both targets (it needs no parallelization).
	m := DefaultCostModel()
	r := PARAResources(PaperGeometry())
	for _, target := range []Target{DDR4Target(), DDR3Target()} {
		e := m.Estimate(r, target)
		if e.LUTs != 349 {
			t.Errorf("%s PARA = %d LUTs, want 349", target.Name, e.LUTs)
		}
		if e.Lanes != 1 {
			t.Errorf("%s PARA lanes = %d", target.Name, e.Lanes)
		}
	}
}

func TestRelativeSizesMatchTableIIIOrdering(t *testing.T) {
	// Table III DDR4 ordering: PARA < ProHit < MRLoc < Li/Lo/LoLi <
	// CaPRoMi < TWiCe < CRA.
	m := DefaultCostModel()
	g := PaperGeometry()
	d4 := DDR4Target()
	luts := map[string]int{}
	for _, r := range AllResources(g) {
		luts[r.Name] = m.Estimate(r, d4).LUTs
	}
	order := []string{"PARA", "ProHit", "MRLoc", "LiPRoMi", "CaPRoMi", "TWiCe", "CRA"}
	for i := 1; i < len(order); i++ {
		if luts[order[i-1]] >= luts[order[i]] {
			t.Errorf("%s (%d) not smaller than %s (%d)",
				order[i-1], luts[order[i-1]], order[i], luts[order[i]])
		}
	}
	// The three Fig. 2 variants are within a few percent of each other.
	if luts["LoPRoMi"] < luts["LiPRoMi"] || luts["LoLiPRoMi"] < luts["LoPRoMi"] {
		t.Error("encoder/mux additions should grow the Fig. 2 variants monotonically")
	}
}

func TestRelativeMagnitudesNearPaper(t *testing.T) {
	// The headline relatives of Table III (DDR4, PARA = 1x): TiVaPRoMi
	// ≈15x, CaPRoMi ≈60x, TWiCe ≈740x, CRA ≈16315x. Allow a generous
	// modeling band.
	m := DefaultCostModel()
	g := PaperGeometry()
	d4 := DDR4Target()
	para := float64(m.Estimate(PARAResources(g), d4).LUTs)
	cases := []struct {
		r      Resources
		lo, hi float64
	}{
		{LiPRoMiResources(g), 8, 25},
		{LoPRoMiResources(g), 8, 25},
		{LoLiPRoMiResources(g), 8, 25},
		{CaPRoMiResources(g), 30, 90},
		{TWiCeResources(g), 400, 1100},
		{CRAResources(g), 10000, 25000},
	}
	for _, c := range cases {
		rel := float64(m.Estimate(c.r, d4).LUTs) / para
		if rel < c.lo || rel > c.hi {
			t.Errorf("%s relative size %.1fx outside [%v, %v]", c.r.Name, rel, c.lo, c.hi)
		}
	}
}

func TestDDR3ParallelizationGrowsCosts(t *testing.T) {
	m := DefaultCostModel()
	g := PaperGeometry()
	d4, d3 := DDR4Target(), DDR3Target()
	for _, r := range AllResources(g) {
		e4 := m.Estimate(r, d4)
		e3 := m.Estimate(r, d3)
		if e3.Lanes < e4.Lanes {
			t.Errorf("%s: DDR3 lanes %d < DDR4 lanes %d", r.Name, e3.Lanes, e4.Lanes)
		}
		if e3.LUTs < e4.LUTs {
			t.Errorf("%s: DDR3 (%d) cheaper than DDR4 (%d)", r.Name, e3.LUTs, e4.LUTs)
		}
	}
	// PARA and CRA fit both budgets without replication (the paper's
	// "only PARA and CRA could fit in the cycle budget").
	for _, r := range []Resources{PARAResources(g), CRAResources(g)} {
		if d3.Lanes(r) != 1 {
			t.Errorf("%s should not need parallelization for DDR3", r.Name)
		}
	}
	// The searched-table techniques do need it.
	for _, r := range []Resources{LiPRoMiResources(g), CaPRoMiResources(g), TWiCeResources(g)} {
		if d3.Lanes(r) == 1 {
			t.Errorf("%s should need parallelization for DDR3", r.Name)
		}
	}
}

func TestFabricFeasibility(t *testing.T) {
	// The paper: CRA and TWiCe (DDR3) need more resources than the
	// XCVU9P offers; everything else fits.
	m := DefaultCostModel()
	g := PaperGeometry()
	d3 := DDR3Target()
	for _, r := range AllResources(g) {
		e := m.Estimate(r, d3)
		switch r.Name {
		case "CRA", "TWiCe":
			if e.Fits {
				t.Errorf("%s DDR3 (%d LUTs) should exceed the fabric", r.Name, e.LUTs)
			}
		default:
			if !e.Fits {
				t.Errorf("%s DDR3 (%d LUTs) should fit the fabric", r.Name, e.LUTs)
			}
		}
	}
}

func TestLanesDerivation(t *testing.T) {
	r := Resources{SerialActCycles: 37, SerialRefCycles: 3}
	if got := DDR4Target().Lanes(r); got != 1 {
		t.Errorf("DDR4 lanes = %d, want 1 (37 <= 54)", got)
	}
	if got := DDR3Target().Lanes(r); got != 3 {
		t.Errorf("DDR3 lanes = %d, want 3 (ceil(37/14))", got)
	}
	// Ref-bound technique.
	r = Resources{SerialActCycles: 3, SerialRefCycles: 258}
	if got := DDR4Target().Lanes(r); got != 1 {
		t.Errorf("DDR4 lanes = %d, want 1 (258 <= 420)", got)
	}
	if got := DDR3Target().Lanes(r); got != 3 {
		t.Errorf("DDR3 lanes = %d, want 3 (ceil(258/112))", got)
	}
}

func TestGeometryValidate(t *testing.T) {
	if err := PaperGeometry().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := PaperGeometry()
	bad.RowBits = 0
	if bad.Validate() == nil {
		t.Fatal("invalid geometry accepted")
	}
}

func TestCycleCountsConsistentWithFSMs(t *testing.T) {
	// The serial cycle counts the resource descriptions carry must equal
	// Table II (which internal/fsm derives structurally).
	g := PaperGeometry()
	cases := map[string][2]int{
		"LiPRoMi":   {37, 3},
		"LoPRoMi":   {37, 3},
		"LoLiPRoMi": {36, 3},
		"CaPRoMi":   {50, 258},
	}
	for _, r := range AllResources(g) {
		want, ok := cases[r.Name]
		if !ok {
			continue
		}
		if r.SerialActCycles != want[0] || r.SerialRefCycles != want[1] {
			t.Errorf("%s serial cycles = %d/%d, want %d/%d (Table II)",
				r.Name, r.SerialActCycles, r.SerialRefCycles, want[0], want[1])
		}
	}
}

func TestAllResourcesOrder(t *testing.T) {
	names := []string{}
	for _, r := range AllResources(PaperGeometry()) {
		names = append(names, r.Name)
	}
	want := []string{"ProHit", "MRLoc", "PARA", "TWiCe", "CRA", "CaPRoMi", "LiPRoMi", "LoPRoMi", "LoLiPRoMi"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("order %v, want Table III order %v", names, want)
		}
	}
}

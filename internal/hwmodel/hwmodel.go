// Package hwmodel estimates FPGA resource usage (LUTs) for the nine
// mitigation techniques, substituting for the paper's VHDL synthesis on a
// Virtex UltraScale+ XCVU9P (Table III).
//
// Each technique is described structurally — searched-table bits,
// direct-indexed storage bits, CAM bits, comparator/arithmetic widths,
// PRNG width, FSM states — and a linear cost model maps the description to
// LUTs. The coefficients are calibrated ONCE against the paper's PARA
// figure (349 LUTs, the stateless reference); every other number is then
// produced by the model, not hand-entered.
//
// Two targets reproduce the paper's comparison: the DDR4 controller at
// 1.2 GHz (54-cycle act budget, 420-cycle ref budget) and the FPGA DDR3
// controller at 320 MHz (14 / 112 cycles). When a technique's serial loop
// misses the tighter DDR3 budget, its search and arithmetic logic is
// replicated into parallel lanes; multiported CAM match logic scales
// quadratically with lanes, which is what explodes TWiCe's DDR3 cost.
package hwmodel

import (
	"fmt"
	"math"
)

// Resources is the structural description of one technique's logic.
type Resources struct {
	Name string
	// TableBits is storage that must be searched/matched entry by entry
	// (history tables, queues): costed with mux/select paths.
	TableBits int
	// DirectBits is direct-indexed storage (CRA's per-row counters): no
	// search paths, cheaper per bit.
	DirectBits int
	// CAMBits is content-addressable storage (TWiCe): parallel match
	// logic on every bit.
	CAMBits int
	// SearchLaneBits is the comparator width of ONE sequential search
	// lane; parallelization replicates it.
	SearchLaneBits int
	// ArithBits is adder/subtractor/encoder width total (weight
	// calculation, wrap handling, priority encoder).
	ArithBits int
	// MultBits is multiplier cost in partial-product bits (a*b ⇒ a·b).
	MultBits int
	// RNGBits is the PRNG register width.
	RNGBits int
	// CompareBits is the probability comparator width.
	CompareBits int
	// FSMStates is the controller state count.
	FSMStates int
	// SerialActCycles / SerialRefCycles are the single-lane FSM loop
	// lengths, used to derive the lane count per target.
	SerialActCycles int
	SerialRefCycles int
}

// CostModel maps Resources to LUTs.
type CostModel struct {
	PerTableBit  float64
	PerDirectBit float64
	PerCAMBit    float64
	PerSearchBit float64
	PerArithBit  float64
	PerMultBit   float64
	PerRNGBit    float64
	PerCompBit   float64
	PerFSMState  float64
	PerLane      float64 // lane glue (issue muxing, result arbitration)
	Base         float64
}

// DefaultCostModel returns the calibrated coefficients. With these, PARA
// (32-bit LFSR, 23-bit comparator, 2 FSM states, no storage) costs exactly
// the paper's 349 LUTs: 120 + 4*32 + 3*23 + 16*2 = 349.
func DefaultCostModel() CostModel {
	return CostModel{
		PerTableBit:  4.0,
		PerDirectBit: 2.7,
		PerCAMBit:    20.0,
		PerSearchBit: 3.0,
		PerArithBit:  4.0,
		PerMultBit:   12.0,
		PerRNGBit:    4.0,
		PerCompBit:   3.0,
		PerFSMState:  16.0,
		PerLane:      220.0,
		Base:         120.0,
	}
}

// Target is a controller implementation target.
type Target struct {
	Name      string
	FreqGHz   float64
	ActBudget int // cycles available per observed act (tRC * freq)
	RefBudget int // cycles available per observed ref (tRFC * freq)
	// FabricLUTs is the device capacity used for feasibility checks
	// (1182240 for the XCVU9P).
	FabricLUTs int
}

// DDR4Target is the paper's ASIC-style DDR4 controller at 1.2 GHz.
func DDR4Target() Target {
	return Target{Name: "DDR4", FreqGHz: 1.2, ActBudget: 54, RefBudget: 420, FabricLUTs: 1182240}
}

// DDR3Target is the paper's FPGA DDR3 controller at 320 MHz: 45 ns and
// 350 ns shrink to 14 and 112 cycles.
func DDR3Target() Target {
	return Target{Name: "DDR3", FreqGHz: 0.32, ActBudget: 14, RefBudget: 112, FabricLUTs: 1182240}
}

// Lanes returns the parallelization factor required to fit the serial
// loops into the target's budgets.
func (t Target) Lanes(r Resources) int {
	lanes := 1
	if r.SerialActCycles > 0 {
		if n := ceilDiv(r.SerialActCycles, t.ActBudget); n > lanes {
			lanes = n
		}
	}
	if r.SerialRefCycles > 0 {
		if n := ceilDiv(r.SerialRefCycles, t.RefBudget); n > lanes {
			lanes = n
		}
	}
	return lanes
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// Estimate is the result of costing one technique on one target.
type Estimate struct {
	Technique string
	Target    string
	Lanes     int
	LUTs      int
	// Fits reports whether the estimate fits the target fabric.
	Fits bool
}

// Estimate costs a technique on a target.
func (m CostModel) Estimate(r Resources, t Target) Estimate {
	lanes := t.Lanes(r)
	fl := float64(lanes)
	luts := m.Base +
		m.PerTableBit*float64(r.TableBits) +
		m.PerDirectBit*float64(r.DirectBits) +
		// Multiported CAM match logic scales ~quadratically with ports.
		m.PerCAMBit*float64(r.CAMBits)*fl*fl +
		m.PerSearchBit*float64(r.SearchLaneBits)*fl +
		m.PerArithBit*float64(r.ArithBits)*fl +
		m.PerMultBit*float64(r.MultBits)*fl +
		m.PerRNGBit*float64(r.RNGBits) +
		m.PerCompBit*float64(r.CompareBits)*fl +
		m.PerFSMState*float64(r.FSMStates)
	if lanes > 1 {
		luts += m.PerLane * fl
	}
	n := int(math.Round(luts))
	return Estimate{
		Technique: r.Name,
		Target:    t.Name,
		Lanes:     lanes,
		LUTs:      n,
		Fits:      n <= t.FabricLUTs,
	}
}

// Geometry carries the widths shared by the technique builders.
type Geometry struct {
	RowBits      int // 17 for 1 GB banks of 8 KB rows
	IntervalBits int // 13 for RefInt = 8192
	ProbBits     int // 23 for Pbase = 2^-23
	Rows         int // 131072
}

// PaperGeometry returns the Table I widths.
func PaperGeometry() Geometry {
	return Geometry{RowBits: 17, IntervalBits: 13, ProbBits: 23, Rows: 131072}
}

// Validate reports malformed geometries.
func (g Geometry) Validate() error {
	if g.RowBits <= 0 || g.IntervalBits <= 0 || g.ProbBits <= 0 || g.Rows <= 0 {
		return fmt.Errorf("hwmodel: invalid geometry %+v", g)
	}
	return nil
}

// PARAResources describes PARA: an LFSR, a comparator, a two-state FSM.
func PARAResources(g Geometry) Resources {
	return Resources{
		Name:            "PARA",
		RNGBits:         32,
		CompareBits:     g.ProbBits,
		FSMStates:       2,
		SerialActCycles: 2,
		SerialRefCycles: 1,
	}
}

// ProHitResources describes ProHit's hot/cold tables (4+4 entries).
func ProHitResources(g Geometry) Resources {
	entries := 8
	return Resources{
		Name:           "ProHit",
		TableBits:      entries * g.RowBits,
		SearchLaneBits: 2 * g.RowBits, // two victims searched
		ArithBits:      8,             // promotion pointer updates
		RNGBits:        32,
		CompareBits:    g.ProbBits,
		FSMStates:      7,
		// Serial search of both tables for both victims.
		SerialActCycles: 2*entries + 4,
		SerialRefCycles: 2,
	}
}

// MRLocResources describes MRLoc's 16-entry locality queue.
func MRLocResources(g Geometry) Resources {
	const queue = 16
	return Resources{
		Name:           "MRLoc",
		TableBits:      queue * g.RowBits,
		SearchLaneBits: g.RowBits,
		// Recency weighting: position scaling multiply.
		MultBits:        5 * g.ProbBits / 4,
		ArithBits:       8,
		RNGBits:         32,
		CompareBits:     g.ProbBits,
		FSMStates:       6,
		SerialActCycles: queue + 6,
		SerialRefCycles: 1,
	}
}

// TWiCeResources describes TWiCe's pruned CAM counter table (≈550
// entries).
func TWiCeResources(g Geometry) Resources {
	const entries = 550
	cntBits, lifeBits := 16, g.IntervalBits
	return Resources{
		Name:      "TWiCe",
		TableBits: entries * (cntBits + lifeBits + 1),
		CAMBits:   entries * g.RowBits,
		// Pruning: per-lane threshold multiply (life * thPI) + compare.
		MultBits:  cntBits + lifeBits,
		ArithBits: cntBits + lifeBits,
		FSMStates: 5,
		// CAM match is single-cycle; the pruning pass runs two entries
		// per cycle.
		SerialActCycles: 3,
		SerialRefCycles: entries / 2,
	}
}

// CRAResources describes CRA's direct-indexed per-row counters.
func CRAResources(g Geometry) Resources {
	cntBits := 16
	return Resources{
		Name:            "CRA",
		DirectBits:      g.Rows * cntBits,
		ArithBits:       cntBits,
		CompareBits:     cntBits,
		FSMStates:       3,
		SerialActCycles: 2,
		SerialRefCycles: 1,
	}
}

// tivaCommon holds the shared history-table logic of the TiVaPRoMi
// variants.
func tivaCommon(name string, g Geometry, extraArith, extraStates, actCycles int) Resources {
	const hist = 32
	return Resources{
		Name:            name,
		TableBits:       hist * (g.RowBits + g.IntervalBits),
		SearchLaneBits:  g.RowBits,
		ArithBits:       2*g.IntervalBits + extraArith, // Eq. 1 subtract + wrap add
		RNGBits:         32,
		CompareBits:     g.ProbBits,
		FSMStates:       8 + extraStates,
		SerialActCycles: actCycles,
		SerialRefCycles: 3,
	}
}

// LiPRoMiResources describes the linear-weighting variant (Fig. 2).
func LiPRoMiResources(g Geometry) Resources {
	return tivaCommon("LiPRoMi", g, 0, 0, 37)
}

// LoPRoMiResources adds the Eq. 2 modified priority encoder.
func LoPRoMiResources(g Geometry) Resources {
	return tivaCommon("LoPRoMi", g, g.IntervalBits, 0, 37)
}

// LoLiPRoMiResources adds the encoder plus the table-hit path mux.
func LoLiPRoMiResources(g Geometry) Resources {
	return tivaCommon("LoLiPRoMi", g, g.IntervalBits+8, 0, 36)
}

// CaPRoMiResources describes the counter-assisted variant (Fig. 3):
// history table plus a 64-entry counter table with lock bits, searched two
// entries per cycle, and the cnt*w_log multiplier of the collective
// decision.
func CaPRoMiResources(g Geometry) Resources {
	const hist, cnt = 32, 64
	cntBits := 8
	r := Resources{
		Name: "CaPRoMi",
		TableBits: hist*(g.RowBits+g.IntervalBits) +
			cnt*(g.RowBits+g.IntervalBits+cntBits+1),
		SearchLaneBits: 2 * g.RowBits, // two comparators per cycle
		ArithBits:      2*g.IntervalBits + g.IntervalBits + 8,
		// cnt * w_log at the decision pass.
		MultBits:        cntBits * (g.IntervalBits + 1),
		RNGBits:         32,
		CompareBits:     g.ProbBits,
		FSMStates:       9,
		SerialActCycles: 50,
		SerialRefCycles: 258,
	}
	return r
}

// AllResources returns the nine techniques in Table III order.
func AllResources(g Geometry) []Resources {
	return []Resources{
		ProHitResources(g), MRLocResources(g), PARAResources(g),
		TWiCeResources(g), CRAResources(g), CaPRoMiResources(g),
		LiPRoMiResources(g), LoPRoMiResources(g), LoLiPRoMiResources(g),
	}
}

// Package rng provides the deterministic pseudo-random number generators
// used throughout the simulator.
//
// Row-Hammer mitigations are hardware blocks: their probabilistic decisions
// are driven by small linear-feedback shift registers or xorshift-style
// generators, and probabilities are compared in fixed point (the paper's
// base probability is Pbase = 2^-23, so a decision is "draw 23 random bits,
// trigger iff they are below the weight"). This package mirrors that model
// so simulation results are bit-reproducible from a seed.
package rng

// Source is a deterministic stream of uniform 64-bit values. All generators
// in this package implement it.
type Source interface {
	// Uint64 returns the next value of the stream.
	Uint64() uint64
	// Seed resets the stream. Seeding with the same value reproduces the
	// same stream. A zero seed is remapped internally so that generators
	// whose all-zero state is absorbing still work.
	Seed(seed uint64)
}

// splitMix64 advances z and returns the next SplitMix64 output. It is used
// to whiten seeds for the other generators so that similar seeds (1, 2, 3…)
// still produce uncorrelated streams.
func splitMix64(z *uint64) uint64 {
	*z += 0x9e3779b97f4a7c15
	x := *z
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// XorShift64Star is a fast, well-distributed 64-bit generator
// (Vigna, "An experimental exploration of Marsaglia's xorshift generators").
// It is the default software-side generator of the simulator.
type XorShift64Star struct {
	state uint64
}

// NewXorShift64Star returns a generator seeded with seed.
func NewXorShift64Star(seed uint64) *XorShift64Star {
	g := &XorShift64Star{}
	g.Seed(seed)
	return g
}

// Seed implements Source.
func (g *XorShift64Star) Seed(seed uint64) {
	z := seed
	g.state = splitMix64(&z)
	if g.state == 0 {
		g.state = 0x2545f4914f6cdd1d // any non-zero constant
	}
}

// Uint64 implements Source.
func (g *XorShift64Star) Uint64() uint64 {
	x := g.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	g.state = x
	return x * 0x2545f4914f6cdd1d
}

// LFSR32 is a 32-bit Fibonacci linear-feedback shift register with taps
// 32,22,2,1 (a maximum-length polynomial). It models the cheap PRNG a
// memory-controller extension would synthesize: one flop per bit plus a
// handful of XOR gates.
type LFSR32 struct {
	state uint32
}

// NewLFSR32 returns an LFSR seeded with seed.
func NewLFSR32(seed uint64) *LFSR32 {
	l := &LFSR32{}
	l.Seed(seed)
	return l
}

// Seed implements Source.
func (l *LFSR32) Seed(seed uint64) {
	z := seed
	l.state = uint32(splitMix64(&z))
	if l.state == 0 {
		l.state = 0xace1ace1
	}
}

// lfsrJump32 holds the precomputed 32-step jump transform of the LFSR.
// One register step is linear over GF(2), so 32 consecutive steps are one
// 32×32 boolean matrix; splitting the state into four bytes turns the
// matrix product into four table lookups and three XORs. The tables are
// built once at init from the serial stepper itself, so the accelerated
// stream is the serial stream by construction (and pinned by tests).
var lfsrJump32 [4][256]uint32

func init() {
	for k := 0; k < 4; k++ {
		for v := 1; v < 256; v++ {
			lfsrJump32[k][v] = lfsrAdvance32Serial(uint32(v) << (8 * k))
		}
	}
}

// lfsrAdvance32Serial runs 32 serial steps functionally (no receiver
// state), used to build the jump tables and by the serial reference.
func lfsrAdvance32Serial(s uint32) uint32 {
	for i := 0; i < 32; i++ {
		bit := (s ^ (s >> 10) ^ (s >> 30) ^ (s >> 31)) & 1
		s = (s >> 1) | (bit << 31)
	}
	return s
}

// Uint32 advances the register a full word and returns it. The stream is
// bit-identical to 32 serial step() calls (see lfsrJump32); the hardware
// shifts serially, the simulator jumps 32 steps with four table lookups.
func (l *LFSR32) Uint32() uint32 {
	s := l.state
	s = lfsrJump32[0][s&0xff] ^
		lfsrJump32[1][(s>>8)&0xff] ^
		lfsrJump32[2][(s>>16)&0xff] ^
		lfsrJump32[3][s>>24]
	l.state = s
	return s
}

// Uint64 implements Source by concatenating two 32-bit words.
func (l *LFSR32) Uint64() uint64 {
	hi := uint64(l.Uint32())
	return hi<<32 | uint64(l.Uint32())
}

// SerialLFSR32 is the bit-by-bit reference implementation of LFSR32: the
// same polynomial, the same stream, advanced one flop-shift at a time as
// the synthesized hardware would. It exists for two jobs — pinning the
// jump-table acceleration of LFSR32 in tests, and serving as the "before"
// entropy path in hot-path benchmarks (install it with
// mitigation.RandSettable to measure a technique against the unaccelerated
// generator).
type SerialLFSR32 struct {
	state uint32
}

// NewSerialLFSR32 returns a serial-reference LFSR seeded with seed.
func NewSerialLFSR32(seed uint64) *SerialLFSR32 {
	l := &SerialLFSR32{}
	l.Seed(seed)
	return l
}

// Seed implements Source with the exact seeding of LFSR32.
func (l *SerialLFSR32) Seed(seed uint64) {
	z := seed
	l.state = uint32(splitMix64(&z))
	if l.state == 0 {
		l.state = 0xace1ace1
	}
}

// Uint32 advances the register 32 single-bit steps and returns it.
func (l *SerialLFSR32) Uint32() uint32 {
	l.state = lfsrAdvance32Serial(l.state)
	return l.state
}

// Uint64 implements Source by concatenating two 32-bit words.
func (l *SerialLFSR32) Uint64() uint64 {
	hi := uint64(l.Uint32())
	return hi<<32 | uint64(l.Uint32())
}

// Bernoulli draws fixed-point probabilistic decisions from a Source.
//
// A Bernoulli with Bits=23 models the paper's decision logic: probabilities
// are integer multiples of Pbase = 2^-23, and a decision with weight w
// (probability w*Pbase) is taken by comparing w against 23 fresh random
// bits.
type Bernoulli struct {
	src  Source
	s32  interface{ Uint32() uint32 } // non-nil when src serves 32-bit draws and bits ≤ 32
	bits uint                         // fixed-point resolution in bits, 1..63
	mask uint64
}

// NewBernoulli returns a Bernoulli decision maker with the given fixed-point
// resolution. bits must be in [1, 63]; it panics otherwise because the
// resolution is a static hardware parameter, not runtime input.
//
// When the source offers a native Uint32 (the LFSRs do) and the resolution
// fits in 32 bits, each decision consumes one 32-bit word instead of two:
// the paper's comparator reads `bits` fresh register bits per decision, and
// a 32-bit draw already provides them — clocking the register a second
// word per decision modeled nothing.
func NewBernoulli(src Source, bits uint) *Bernoulli {
	if bits < 1 || bits > 63 {
		panic("rng: Bernoulli resolution out of range [1,63]")
	}
	b := &Bernoulli{src: src, bits: bits, mask: (1 << bits) - 1}
	if s32, ok := src.(interface{ Uint32() uint32 }); ok && bits <= 32 {
		b.s32 = s32
	}
	return b
}

// Bits returns the fixed-point resolution.
func (b *Bernoulli) Bits() uint { return b.bits }

// Trigger returns true with probability min(1, weight * 2^-bits).
// A weight of 0 never triggers; a weight of 2^bits or more always triggers.
func (b *Bernoulli) Trigger(weight uint64) bool {
	if weight == 0 {
		return false
	}
	if weight > b.mask {
		return true
	}
	if b.s32 != nil {
		return uint64(b.s32.Uint32())&b.mask < weight
	}
	return b.src.Uint64()&b.mask < weight
}

// Float64 returns a uniform value in [0, 1) from src. It is a convenience
// for software-side components (workload generation); hardware-side
// decisions should use Bernoulli.
func Float64(src Source) float64 {
	return float64(src.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n) from src. It panics if n <= 0.
//
// For bounds that fit in 32 bits the reduction is a multiply-shift of the
// draw's high word — scale the fraction x/2^32 by n — instead of a modulo,
// keeping the 64-bit division off the trace-generation hot path (the
// residual non-uniformity is at most n/2^32, invisible next to the
// generator's own statistical noise). For n a power of two this selects
// the top bits of the draw, so Intn(src, 16) is exactly src.Uint64()>>60.
func Intn(src Source, n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive bound")
	}
	if n <= 1<<31 {
		return int((src.Uint64() >> 32) * uint64(n) >> 32)
	}
	return int(src.Uint64() % uint64(n))
}

// Perm returns a pseudo-random permutation of [0, n) using the
// Fisher-Yates shuffle.
func Perm(src Source, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := Intn(src, i+1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

package rng

// Fault-model sources. Row-Hammer mitigations draw their probabilistic
// decisions from small hardware LFSRs; when that machinery misbehaves the
// security argument silently erodes (the "non-selection" problem of
// Loaded Dice: a stuck selector means victims are never chosen). The
// wrappers here degrade a Source in the three classic hardware failure
// modes — stuck-at, biased, and short-period output — deterministically,
// so degradation experiments are reproducible from a seed.

// StuckSource models a stuck-at LFSR: every draw returns the same word.
// A stuck-at-zero register makes every Bernoulli comparison succeed
// (values below any positive weight); stuck-at-ones makes protection
// silently stop. Both extremes matter: the first is a denial-of-service
// on the command path, the second is the Loaded Dice non-selection case.
type StuckSource struct {
	// Value is the word returned by every draw.
	Value uint64
}

// NewStuckSource returns a source stuck at value.
func NewStuckSource(value uint64) *StuckSource { return &StuckSource{Value: value} }

// Uint64 implements Source.
func (s *StuckSource) Uint64() uint64 { return s.Value }

// Seed implements Source; a stuck register ignores reseeding.
func (s *StuckSource) Seed(uint64) {}

// BiasedSource models intermittent output bias: with probability
// Rate (16-bit fixed point) a draw has OrMask forced high, pushing the
// comparison value above typical trigger weights and suppressing
// protective decisions. The bias decision stream is deterministic and
// independent of the degraded stream.
type BiasedSource struct {
	src    Source
	gate   *XorShift64Star
	orMask uint64
	rate16 uint64 // bias probability in 1/65536 units
	seed   uint64
}

// NewBiasedSource wraps src, forcing orMask into a fraction `rate` of the
// draws (rate clamped to [0, 1]).
func NewBiasedSource(src Source, orMask uint64, rate float64, seed uint64) *BiasedSource {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	b := &BiasedSource{src: src, orMask: orMask, rate16: uint64(rate * 65536), seed: seed}
	b.gate = NewXorShift64Star(seed ^ 0xb1a5)
	return b
}

// Uint64 implements Source.
func (b *BiasedSource) Uint64() uint64 {
	v := b.src.Uint64()
	if b.gate.Uint64()&0xffff < b.rate16 {
		v |= b.orMask
	}
	return v
}

// Seed implements Source, reseeding both the wrapped stream and the bias
// gate so replays reproduce.
func (b *BiasedSource) Seed(seed uint64) {
	b.seed = seed
	b.src.Seed(seed)
	b.gate = NewXorShift64Star(seed ^ 0xb1a5)
}

// PeriodicSource models a degenerated LFSR caught in a short cycle (a
// feedback-tap fault collapses the maximum-length polynomial into a small
// subcycle): the first `period` draws of the wrapped stream repeat
// forever. Periodic randomness lets an attacker phase-lock to the
// mitigation's decisions.
type PeriodicSource struct {
	src    Source
	buf    []uint64
	pos    int
	period int
}

// NewPeriodicSource wraps src with the given cycle length (minimum 1).
func NewPeriodicSource(src Source, period int) *PeriodicSource {
	if period < 1 {
		period = 1
	}
	return &PeriodicSource{src: src, period: period}
}

// Uint64 implements Source.
func (p *PeriodicSource) Uint64() uint64 {
	if len(p.buf) < p.period {
		v := p.src.Uint64()
		p.buf = append(p.buf, v)
		return v
	}
	v := p.buf[p.pos]
	p.pos = (p.pos + 1) % p.period
	return v
}

// Seed implements Source, recapturing the cycle from the reseeded stream.
func (p *PeriodicSource) Seed(seed uint64) {
	p.src.Seed(seed)
	p.buf = p.buf[:0]
	p.pos = 0
}

package rng

import "testing"

func TestStuckSource(t *testing.T) {
	s := NewStuckSource(42)
	for i := 0; i < 10; i++ {
		if got := s.Uint64(); got != 42 {
			t.Fatalf("draw %d = %d, want 42", i, got)
		}
	}
	s.Seed(7) // must be ignored
	if s.Uint64() != 42 {
		t.Fatal("stuck source moved after Seed")
	}

	// Stuck-at-zero always triggers; stuck-at-ones never does.
	always := NewBernoulli(NewStuckSource(0), 23)
	never := NewBernoulli(NewStuckSource(^uint64(0)), 23)
	for i := 0; i < 100; i++ {
		if !always.Trigger(1) {
			t.Fatal("stuck-at-zero failed to trigger")
		}
		if never.Trigger(1 << 22) {
			t.Fatal("stuck-at-ones triggered")
		}
	}
}

func TestBiasedSourceRateExtremes(t *testing.T) {
	const mask = uint64(0xfff000)
	// Rate 0: identical to the wrapped stream.
	a := NewXorShift64Star(1)
	b := NewBiasedSource(NewXorShift64Star(1), mask, 0, 9)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("rate-0 bias altered the stream")
		}
	}
	// Rate 1: every draw carries the mask.
	c := NewBiasedSource(NewXorShift64Star(1), mask, 1, 9)
	for i := 0; i < 100; i++ {
		if c.Uint64()&mask != mask {
			t.Fatal("rate-1 bias missed a draw")
		}
	}
}

func TestBiasedSourceDeterministicAcrossSeed(t *testing.T) {
	mk := func() *BiasedSource {
		return NewBiasedSource(NewXorShift64Star(3), 0xff, 0.5, 11)
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("draw %d diverged", i)
		}
	}
	// Reseeding reproduces the stream of a source constructed with that
	// seed for both the wrapped stream and the bias gate.
	a.Seed(3)
	c := NewBiasedSource(NewXorShift64Star(3), 0xff, 0.5, 3)
	for i := 0; i < 200; i++ {
		if a.Uint64() != c.Uint64() {
			t.Fatalf("post-Seed draw %d diverged", i)
		}
	}
}

func TestPeriodicSourceCycles(t *testing.T) {
	p := NewPeriodicSource(NewXorShift64Star(5), 4)
	first := make([]uint64, 4)
	for i := range first {
		first[i] = p.Uint64()
	}
	for round := 0; round < 3; round++ {
		for i := range first {
			if got := p.Uint64(); got != first[i] {
				t.Fatalf("round %d draw %d = %d, want %d", round, i, got, first[i])
			}
		}
	}
	// Degenerate period clamps to 1.
	one := NewPeriodicSource(NewXorShift64Star(5), 0)
	v := one.Uint64()
	for i := 0; i < 5; i++ {
		if one.Uint64() != v {
			t.Fatal("period-1 source produced a second value")
		}
	}
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestXorShiftDeterminism(t *testing.T) {
	a := NewXorShift64Star(42)
	b := NewXorShift64Star(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestXorShiftSeedIndependence(t *testing.T) {
	a := NewXorShift64Star(1)
	b := NewXorShift64Star(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("nearby seeds produced %d identical outputs; seeds are not whitened", same)
	}
}

func TestXorShiftZeroSeed(t *testing.T) {
	g := NewXorShift64Star(0)
	if g.Uint64() == 0 && g.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck all-zero stream")
	}
}

func TestLFSRZeroSeedRemapped(t *testing.T) {
	l := NewLFSR32(0)
	if l.Uint32() == 0 && l.Uint32() == 0 {
		t.Fatal("zero seed left LFSR in absorbing state")
	}
}

func TestLFSRPeriodNotTiny(t *testing.T) {
	l := NewLFSR32(7)
	first := l.Uint32()
	for i := 0; i < 10000; i++ {
		if l.Uint32() == first {
			// Revisiting one value is fine (32-bit outputs collide);
			// verify the following value differs from the second output.
			break
		}
	}
	// Statistical smoke test: mean of many outputs should be near 2^31.
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(l.Uint32())
	}
	mean := sum / n
	if mean < float64(1<<31)*0.9 || mean > float64(1<<31)*1.1 {
		t.Fatalf("LFSR output mean %.0f suspiciously far from 2^31", mean)
	}
}

func TestBernoulliZeroWeightNeverTriggers(t *testing.T) {
	b := NewBernoulli(NewXorShift64Star(1), 23)
	for i := 0; i < 10000; i++ {
		if b.Trigger(0) {
			t.Fatal("weight 0 triggered")
		}
	}
}

func TestBernoulliSaturatedWeightAlwaysTriggers(t *testing.T) {
	b := NewBernoulli(NewXorShift64Star(1), 23)
	for i := 0; i < 10000; i++ {
		if !b.Trigger(1 << 23) {
			t.Fatal("saturated weight failed to trigger")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	// weight w at 23 bits should trigger with rate w * 2^-23.
	b := NewBernoulli(NewXorShift64Star(99), 23)
	const w = 1 << 13 // p = 2^-10
	const n = 4 << 20
	hits := 0
	for i := 0; i < n; i++ {
		if b.Trigger(w) {
			hits++
		}
	}
	want := float64(n) * float64(w) / float64(1<<23)
	got := float64(hits)
	// 4-sigma binomial bound.
	sigma := math.Sqrt(want)
	if math.Abs(got-want) > 4*sigma {
		t.Fatalf("trigger count %v, want %v ± %v", got, want, 4*sigma)
	}
}

func TestBernoulliResolutionBounds(t *testing.T) {
	for _, bits := range []uint{0, 64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBernoulli(%d) did not panic", bits)
				}
			}()
			NewBernoulli(NewXorShift64Star(1), bits)
		}()
	}
}

func TestFloat64Range(t *testing.T) {
	g := NewXorShift64Star(3)
	for i := 0; i < 100000; i++ {
		f := Float64(g)
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRangeProperty(t *testing.T) {
	g := NewXorShift64Star(5)
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := Intn(g, bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	Intn(NewXorShift64Star(1), 0)
}

func TestPermIsPermutationProperty(t *testing.T) {
	g := NewXorShift64Star(11)
	f := func(n uint8) bool {
		size := int(n % 64)
		p := Perm(g, size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermUniformityShuffle(t *testing.T) {
	// Position of element 0 across many shuffles of 4 elements should be
	// roughly uniform.
	g := NewXorShift64Star(13)
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		p := Perm(g, 4)
		for pos, v := range p {
			if v == 0 {
				counts[pos]++
			}
		}
	}
	for pos, c := range counts {
		if c < n/4-1500 || c > n/4+1500 {
			t.Fatalf("element 0 at position %d occurred %d times, want ≈%d", pos, c, n/4)
		}
	}
}

func BenchmarkXorShift64Star(b *testing.B) {
	g := NewXorShift64Star(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = g.Uint64()
	}
	_ = sink
}

func BenchmarkBernoulli23(b *testing.B) {
	bn := NewBernoulli(NewXorShift64Star(1), 23)
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = bn.Trigger(4096)
	}
	_ = sink
}

// TestLFSRJumpTableMatchesSerial pins the hot-path acceleration: the
// jump-table LFSR32 must emit the exact bit stream of the serial,
// flop-by-flop reference across seeds (including the remapped zero seed)
// and for long runs.
func TestLFSRJumpTableMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{0, 1, 2, 42, 0xdeadbeef, ^uint64(0)} {
		fast := NewLFSR32(seed)
		ref := NewSerialLFSR32(seed)
		for i := 0; i < 4096; i++ {
			if f, r := fast.Uint64(), ref.Uint64(); f != r {
				t.Fatalf("seed %#x: streams diverged at draw %d: fast %#x serial %#x", seed, i, f, r)
			}
		}
		// Reseeding mid-stream must resynchronize both.
		fast.Seed(seed ^ 0x5a5a)
		ref.Seed(seed ^ 0x5a5a)
		if f, r := fast.Uint32(), ref.Uint32(); f != r {
			t.Fatalf("seed %#x: streams diverged after reseed: fast %#x serial %#x", seed, f, r)
		}
	}
}

func BenchmarkLFSR32Uint64(b *testing.B) {
	l := NewLFSR32(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += l.Uint64()
	}
	_ = sink
}

func BenchmarkSerialLFSR32Uint64(b *testing.B) {
	l := NewSerialLFSR32(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += l.Uint64()
	}
	_ = sink
}

// Package campaign is the declarative experiment layer: every study is a
// Spec — a named grid of cells — executed by one scheduler that routes
// all cells through the hardened sim runner (bounded concurrency, panic
// recovery, retries, per-run deadlines, checkpoint resume) with
// cross-section parallelism and a progress/ETA event stream.
//
// Two kinds of cell exist:
//
//   - sweep cells: (Config, technique, seeds), executed by
//     sim.Runner.RunSeeds — per-seed results are memoized in the
//     checkpoint under the sweep fingerprint;
//   - probe cells: deterministic analyses that are not seed sweeps
//     (flooding, vulnerability, saturation, rotation, latency), executed
//     under sim.RunnerConfig.Do with the same hardening, memoized in the
//     checkpoint under the cell fingerprint.
//
// Results land in a ResultSet keyed by cell, and rendering happens after
// execution, in spec order — so a campaign's output is byte-identical
// whatever the worker count or cell completion order, and a killed
// campaign resumed from its checkpoint reproduces the same bytes.
//
// The paper's whole evaluation (cmd/experiments all) is one merged
// campaign; every future sweep — new mitigations, larger grids,
// distributed backends — plugs into the same Spec/scheduler shape.
package campaign

import (
	"context"
	"fmt"

	"tivapromi/internal/dram"
	"tivapromi/internal/sim"
)

// Cell is one schedulable unit of a campaign. Exactly one of the sweep
// fields (Technique/Seeds with Config) or the probe fields (Run, with
// optional NewValue) must be populated; use Spec.AddSweep / AddProbe.
type Cell struct {
	// Key identifies the cell within the campaign and doubles as the
	// checkpoint fingerprint source for probe cells, so it must be
	// stable across processes and must encode every parameter the
	// cell's result depends on. Builders namespace keys by section
	// ("flooding/PARA?...").
	Key string

	// Sweep fields. A sweep cell runs Config across Seeds for Technique
	// under the hardened runner.
	Config    sim.Config
	Technique string
	Seeds     []uint64
	sweep     bool

	// Probe fields. Run computes the probe into the value allocated by
	// NewValue (a pointer, e.g. *sim.FloodResult). NewValue also decodes
	// checkpointed results; a nil NewValue disables probe memoization.
	NewValue func() any
	Run      func(ctx context.Context, v any) error
}

// IsSweep reports whether the cell is a seed sweep (as opposed to a
// probe).
func (c Cell) IsSweep() bool { return c.sweep }

// validate reports a structurally unusable cell.
func (c Cell) validate() error {
	if c.Key == "" {
		return fmt.Errorf("campaign: cell with empty key")
	}
	if c.sweep {
		if len(c.Seeds) == 0 {
			return fmt.Errorf("campaign: sweep cell %q has no seeds", c.Key)
		}
		return nil
	}
	if c.Run == nil {
		return fmt.Errorf("campaign: probe cell %q has no Run", c.Key)
	}
	return nil
}

// Spec is a named, ordered grid of cells — one study (one experiment
// section, or a whole merged evaluation).
type Spec struct {
	Name  string
	Cells []Cell
}

// AddSweep appends a seed-sweep cell.
func (s *Spec) AddSweep(key string, cfg sim.Config, technique string, seeds []uint64) {
	s.Cells = append(s.Cells, Cell{
		Key: key, Config: cfg, Technique: technique, Seeds: seeds, sweep: true,
	})
}

// AddProbe appends a probe cell. newValue allocates the (pointer) result
// the probe fills and checkpointed runs decode into.
func (s *Spec) AddProbe(key string, newValue func() any, run func(ctx context.Context, v any) error) {
	s.Cells = append(s.Cells, Cell{Key: key, NewValue: newValue, Run: run})
}

// Merge concatenates specs into one campaign, deduplicating cells by key
// (first occurrence wins), so sections sharing a sweep run it once.
func Merge(name string, specs ...Spec) Spec {
	out := Spec{Name: name}
	seen := map[string]bool{}
	for _, sp := range specs {
		for _, c := range sp.Cells {
			if seen[c.Key] {
				continue
			}
			seen[c.Key] = true
			out.Cells = append(out.Cells, c)
		}
	}
	return out
}

// Eval carries the evaluation-wide knobs every section builder shares —
// the cmd/experiments flags, as one value.
type Eval struct {
	// Base is the per-run simulation configuration (scaled device,
	// -windows, -paper).
	Base sim.Config
	// SeedsPerPoint is the number of seeds per data point (-seeds).
	SeedsPerPoint int
	// Trials is the flooding trial count (-trials).
	Trials int
	// Probe is the device scale used by the security probes (flooding,
	// vulnerability, thresholds); the paper evaluates them at full
	// Table I scale regardless of the simulation scale.
	Probe dram.Params
	// ProbeSeed drives probe randomness.
	ProbeSeed uint64
	// Thresholds is the flip-threshold sweep (paper value first).
	Thresholds []uint32
}

// DefaultEval mirrors the cmd/experiments flag defaults.
func DefaultEval() Eval {
	return Eval{
		Base:          sim.DefaultConfig(),
		SeedsPerPoint: 5,
		Trials:        25,
		Probe:         dram.PaperParams(),
		ProbeSeed:     7,
		Thresholds:    []uint32{139000, 70000, 35000, 10000},
	}
}

// probeSig is the part of a probe cell key that pins the probe device
// scale: results cached at one scale must never serve another.
func probeSig(p dram.Params) string {
	s := fmt.Sprintf("banks=%d,rows=%d,refint=%d,th=%d,rate=%d",
		p.Banks, p.RowsPerBank, p.RefInt, p.FlipThreshold, p.MaxActsPerRI)
	// Geometry extends the key only when set, so every pre-geometry cell
	// key — and the checkpoints carrying them — stays byte-identical.
	if p.Ranks > 1 || p.BankGroups > 1 {
		s += fmt.Sprintf(",ranks=%d,bg=%d", p.Ranks, p.BankGroups)
	}
	return s
}

package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"tivapromi/internal/sim"
)

// Options tunes one campaign execution.
type Options struct {
	// Workers bounds the number of simulations in flight across the whole
	// campaign (cells × seeds share one admission gate, so concurrency
	// never multiplies). Zero means GOMAXPROCS.
	Workers int
	// Runner supplies the hardening policy (retries, deadlines, panic
	// recovery) and the checkpoint. A nil Runner uses sim.NewRunner()
	// with no checkpoint.
	Runner *sim.Runner
	// OnProgress, when non-nil, receives one event per completed cell.
	// Events are delivered sequentially (never concurrently).
	OnProgress func(Progress)
}

// Progress is one scheduler event: a cell finished (or failed).
type Progress struct {
	Campaign    string        // spec name
	Cell        string        // cell key
	Done, Total int           // completed cells / campaign size
	Cached      bool          // served entirely from the checkpoint
	Err         error         // the cell's failure, if any
	CellElapsed time.Duration // this cell's wall-clock time
	Elapsed     time.Duration // campaign wall-clock so far
	ETA         time.Duration // naive remaining-time estimate
}

// CellResult is one executed cell.
type CellResult struct {
	Cell      Cell
	Summary   sim.Summary     // sweep cells
	RunErrors []*sim.RunError // sweep cells: per-seed failures
	Value     any             // probe cells: the NewValue pointer, filled
	Err       error           // cell-level failure
	Cached    bool            // probe served from the checkpoint
	Elapsed   time.Duration
}

// ResultSet holds every cell's result, keyed by cell key, with the
// spec's order preserved — the renderer's single source of truth.
type ResultSet struct {
	name    string
	order   []string
	results map[string]*CellResult
}

// Name returns the campaign name.
func (rs *ResultSet) Name() string { return rs.name }

// Keys returns the cell keys in spec order.
func (rs *ResultSet) Keys() []string { return append([]string(nil), rs.order...) }

// Get returns the result for a cell key, or nil if the key is unknown.
func (rs *ResultSet) Get(key string) *CellResult { return rs.results[key] }

// Summary returns a sweep cell's seed summary, or an error if the cell
// is missing, failed, or had failing seeds (first seed error wins, so a
// renderer can stop at the earliest broken input).
func (rs *ResultSet) Summary(key string) (sim.Summary, error) {
	cr := rs.results[key]
	if cr == nil {
		return sim.Summary{}, fmt.Errorf("campaign: no result for cell %q", key)
	}
	if cr.Err != nil {
		return sim.Summary{}, fmt.Errorf("campaign: cell %q: %w", key, cr.Err)
	}
	if len(cr.RunErrors) > 0 {
		return sim.Summary{}, fmt.Errorf("campaign: cell %q: %w", key, cr.RunErrors[0])
	}
	return cr.Summary, nil
}

// LossySummary returns a sweep cell's summary tolerating per-seed
// failures (degradation studies expect them), along with the number of
// failed seeds.
func (rs *ResultSet) LossySummary(key string) (sim.Summary, int, error) {
	cr := rs.results[key]
	if cr == nil {
		return sim.Summary{}, 0, fmt.Errorf("campaign: no result for cell %q", key)
	}
	if cr.Err != nil {
		return sim.Summary{}, 0, fmt.Errorf("campaign: cell %q: %w", key, cr.Err)
	}
	return cr.Summary, len(cr.RunErrors), nil
}

// Value returns a probe cell's filled result pointer.
func (rs *ResultSet) Value(key string) (any, error) {
	cr := rs.results[key]
	if cr == nil {
		return nil, fmt.Errorf("campaign: no result for cell %q", key)
	}
	if cr.Err != nil {
		return nil, fmt.Errorf("campaign: cell %q: %w", key, cr.Err)
	}
	return cr.Value, nil
}

// Err returns the first cell failure in spec order, or nil.
func (rs *ResultSet) Err() error {
	for _, k := range rs.order {
		if cr := rs.results[k]; cr != nil && cr.Err != nil {
			return fmt.Errorf("campaign: cell %q: %w", k, cr.Err)
		}
	}
	return nil
}

// Run executes every cell of a spec through the hardened runner with
// bounded cross-cell parallelism and returns the complete ResultSet.
//
// Scheduling is work-conserving but result order is not: cells complete
// in any order, land in the set keyed by cell, and callers render in
// spec order afterwards — so output is byte-identical whatever the
// worker count. Cell failures are recorded, not fatal; the only
// non-nil error returns are structural (bad spec) or context
// cancellation.
func Run(ctx context.Context, spec Spec, opts Options) (*ResultSet, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	seen := make(map[string]bool, len(spec.Cells))
	for _, c := range spec.Cells {
		if err := c.validate(); err != nil {
			return nil, err
		}
		if seen[c.Key] {
			return nil, fmt.Errorf("campaign: duplicate cell key %q", c.Key)
		}
		seen[c.Key] = true
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	base := opts.Runner
	if base == nil {
		base = sim.NewRunner()
	}
	// One admission gate bounds every simulation in flight, whichever
	// cell it belongs to: launching all cells at once stays safe because
	// seeds and probes alike must win a gate slot before running.
	gate := make(chan struct{}, workers)
	runner := *base
	runner.Config.Gate = gate
	if runner.Config.Workers <= 0 || runner.Config.Workers > workers {
		runner.Config.Workers = workers
	}

	rs := &ResultSet{
		name:    spec.Name,
		order:   make([]string, 0, len(spec.Cells)),
		results: make(map[string]*CellResult, len(spec.Cells)),
	}
	for _, c := range spec.Cells {
		rs.order = append(rs.order, c.Key)
		rs.results[c.Key] = &CellResult{Cell: c}
	}

	start := time.Now()
	var (
		mu   sync.Mutex
		done int
		wg   sync.WaitGroup
	)
	finish := func(cr *CellResult, cellStart time.Time) {
		cr.Elapsed = time.Since(cellStart)
		mu.Lock()
		done++
		d, total := done, len(spec.Cells)
		elapsed := time.Since(start)
		var eta time.Duration
		if d > 0 && d < total {
			eta = time.Duration(int64(elapsed) / int64(d) * int64(total-d))
		}
		if opts.OnProgress != nil {
			opts.OnProgress(Progress{
				Campaign: spec.Name, Cell: cr.Cell.Key,
				Done: d, Total: total,
				Cached: cr.Cached, Err: cr.Err,
				CellElapsed: cr.Elapsed, Elapsed: elapsed, ETA: eta,
			})
		}
		mu.Unlock()
	}

	for _, c := range spec.Cells {
		cr := rs.results[c.Key]
		wg.Add(1)
		go func(c Cell, cr *CellResult) {
			defer wg.Done()
			cellStart := time.Now()
			if c.IsSweep() {
				runSweepCell(ctx, &runner, c, cr)
			} else {
				runProbeCell(ctx, &runner, c, cr)
			}
			finish(cr, cellStart)
		}(c, cr)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return rs, err
	}
	return rs, nil
}

// runSweepCell executes a seed-sweep cell through the hardened runner;
// per-seed results are memoized by the runner's own checkpoint.
func runSweepCell(ctx context.Context, r *sim.Runner, c Cell, cr *CellResult) {
	sum, runErrs, err := r.RunSeeds(ctx, c.Config, c.Technique, c.Seeds)
	cr.Summary, cr.RunErrors, cr.Err = sum, runErrs, err
}

// runProbeCell executes a probe cell: serve it from the checkpoint's
// probe cache when possible, otherwise run it under the runner's
// hardening and record the result.
func runProbeCell(ctx context.Context, r *sim.Runner, c Cell, cr *CellResult) {
	ck := r.Checkpoint
	fp := sim.ProbeFingerprint(c.Key)
	if ck != nil && c.NewValue != nil {
		if raw, ok := ck.Probe(fp); ok {
			v := c.NewValue()
			if err := json.Unmarshal(raw, v); err == nil {
				cr.Value, cr.Cached = v, true
				return
			}
			// A malformed cache entry falls through to a fresh run.
		}
	}
	var v any
	if c.NewValue != nil {
		v = c.NewValue()
	}
	err := r.Config.Do(ctx, func(runCtx context.Context) error {
		return c.Run(runCtx, v)
	})
	if err != nil {
		cr.Err = err
		return
	}
	cr.Value = v
	if ck != nil && c.NewValue != nil {
		if err := ck.PutProbe(fp, v); err != nil {
			cr.Err = fmt.Errorf("campaign: caching probe %q: %w", c.Key, err)
		}
	}
}

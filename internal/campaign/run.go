package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tivapromi/internal/obs"
	"tivapromi/internal/sim"
)

// ErrCellSkipped marks a cell the scheduler gave up on: its circuit
// breaker tripped (BreakerAfter consecutive failures) or the campaign's
// shared retry budget ran dry. The cell's CellResult keeps the last
// underlying failure wrapped beneath this mark, so errors.Is still finds
// the root cause, and the renderer can degrade (skip the section, keep
// the rest of the report) instead of aborting.
var ErrCellSkipped = errors.New("campaign: cell skipped (retry budget exhausted or circuit breaker open)")

// Options tunes one campaign execution.
type Options struct {
	// Workers bounds the number of simulations in flight across the whole
	// campaign (cells × seeds share one admission gate, so concurrency
	// never multiplies). Zero means GOMAXPROCS.
	Workers int
	// Runner supplies the hardening policy (retries, deadlines, panic
	// recovery, stall watchdog) and the checkpoint. A nil Runner uses
	// sim.NewRunner() with no checkpoint.
	Runner *sim.Runner
	// OnProgress, when non-nil, receives one event per completed cell —
	// plus, when a checkpoint load was noteworthy (quarantine, salvage
	// drops, format migration), one leading Note-only event. Events are
	// delivered sequentially (never concurrently).
	OnProgress func(Progress)

	// RetryBudget is the total number of cell re-attempts the whole
	// campaign may spend (shared across cells; 0 disables cell-level
	// retries). A cell re-attempt is cheap when a checkpoint is armed:
	// completed seeds are memoized, so only the missing work re-runs.
	// Cells are re-attempted when the cell itself failed (cr.Err) or when
	// a seed stalled (sim.ErrStalled) — ordinary per-seed failures are
	// the runner's domain and are reported, not retried here.
	RetryBudget int
	// BreakerAfter is the per-cell circuit breaker: a cell that has
	// failed this many consecutive attempts is parked as Skipped instead
	// of burning more budget (0 = 3 when retries are enabled).
	BreakerAfter int
	// RetryBackoff is the base delay between cell re-attempts (0 = 50ms).
	// Actual sleeps follow a decorrelated-jitter schedule seeded from the
	// cell key, so simultaneous cell failures don't retry in lockstep
	// while every schedule stays reproducible.
	RetryBackoff time.Duration
	// RetrySeed perturbs the per-cell retry-jitter streams (0 is fine).
	RetrySeed uint64

	// Gate, when non-nil, is a shared admission gate used instead of a
	// fresh per-campaign gate: every simulation of every campaign holding
	// the same channel competes for its capacity, so a serving layer can
	// bound total concurrency across many tenants' campaigns with one
	// Workers-sized pool. The channel's capacity, not Options.Workers,
	// bounds in-flight simulations when Gate is set.
	Gate chan struct{}
	// SharedRetryBudget, when non-nil, replaces the campaign-private
	// retry pool: cell re-attempts draw from this counter instead, so
	// several campaigns (e.g. one tenant's concurrent jobs) share one
	// self-healing allowance. RetryBudget is ignored when set.
	SharedRetryBudget *atomic.Int64
	// Tenant labels every Progress event with the submitting tenant, so
	// a multi-campaign progress sink can fan events back out per client.
	Tenant string
}

// Progress is one scheduler event: a cell finished (or failed), or — for
// the leading Note event — the checkpoint load had something to report.
type Progress struct {
	Campaign    string        // spec name
	Tenant      string        // Options.Tenant, verbatim ("" outside a serving layer)
	Cell        string        // cell key ("" for a Note-only event)
	Done, Total int           // completed cells / campaign size
	Cached      bool          // served entirely from the checkpoint
	Err         error         // the cell's failure, if any
	Attempts    int           // attempts this cell consumed (≥ 1)
	Skipped     bool          // the scheduler parked this cell
	Note        string        // checkpoint-load report (quarantine, salvage, migration)
	CellElapsed time.Duration // this cell's wall-clock time
	Elapsed     time.Duration // campaign wall-clock so far
	ETA         time.Duration // naive remaining-time estimate
}

// CellResult is one executed cell.
type CellResult struct {
	Cell      Cell
	Summary   sim.Summary     // sweep cells
	RunErrors []*sim.RunError // sweep cells: per-seed failures
	Value     any             // probe cells: the NewValue pointer, filled
	Err       error           // cell-level failure
	Cached    bool            // probe served from the checkpoint
	Attempts  int             // scheduler attempts consumed (≥ 1)
	Skipped   bool            // parked by the breaker / budget exhaustion
	Elapsed   time.Duration
}

// ResultSet holds every cell's result, keyed by cell key, with the
// spec's order preserved — the renderer's single source of truth.
type ResultSet struct {
	name    string
	order   []string
	results map[string]*CellResult
}

// Name returns the campaign name.
func (rs *ResultSet) Name() string { return rs.name }

// Keys returns the cell keys in spec order.
func (rs *ResultSet) Keys() []string { return append([]string(nil), rs.order...) }

// Get returns the result for a cell key, or nil if the key is unknown.
func (rs *ResultSet) Get(key string) *CellResult { return rs.results[key] }

// Summary returns a sweep cell's seed summary, or an error if the cell
// is missing, failed, or had failing seeds (first seed error wins, so a
// renderer can stop at the earliest broken input).
func (rs *ResultSet) Summary(key string) (sim.Summary, error) {
	cr := rs.results[key]
	if cr == nil {
		return sim.Summary{}, fmt.Errorf("campaign: no result for cell %q", key)
	}
	if cr.Err != nil {
		return sim.Summary{}, fmt.Errorf("campaign: cell %q: %w", key, cr.Err)
	}
	if len(cr.RunErrors) > 0 {
		return sim.Summary{}, fmt.Errorf("campaign: cell %q: %w", key, cr.RunErrors[0])
	}
	return cr.Summary, nil
}

// LossySummary returns a sweep cell's summary tolerating per-seed
// failures (degradation studies expect them), along with the number of
// failed seeds.
func (rs *ResultSet) LossySummary(key string) (sim.Summary, int, error) {
	cr := rs.results[key]
	if cr == nil {
		return sim.Summary{}, 0, fmt.Errorf("campaign: no result for cell %q", key)
	}
	if cr.Err != nil {
		return sim.Summary{}, 0, fmt.Errorf("campaign: cell %q: %w", key, cr.Err)
	}
	return cr.Summary, len(cr.RunErrors), nil
}

// Value returns a probe cell's filled result pointer.
func (rs *ResultSet) Value(key string) (any, error) {
	cr := rs.results[key]
	if cr == nil {
		return nil, fmt.Errorf("campaign: no result for cell %q", key)
	}
	if cr.Err != nil {
		return nil, fmt.Errorf("campaign: cell %q: %w", key, cr.Err)
	}
	return cr.Value, nil
}

// Skipped returns the keys of cells the scheduler parked (circuit
// breaker / retry budget), in spec order. A non-empty slice means the
// ResultSet is partial and the renderer should degrade rather than
// abort: skipped sections are annotated, completed sections render
// normally.
func (rs *ResultSet) Skipped() []string {
	var out []string
	for _, k := range rs.order {
		if cr := rs.results[k]; cr != nil && cr.Skipped {
			out = append(out, k)
		}
	}
	return out
}

// Err returns the first cell failure in spec order, or nil.
func (rs *ResultSet) Err() error {
	for _, k := range rs.order {
		if cr := rs.results[k]; cr != nil && cr.Err != nil {
			return fmt.Errorf("campaign: cell %q: %w", k, cr.Err)
		}
	}
	return nil
}

// Run executes every cell of a spec through the hardened runner with
// bounded cross-cell parallelism and returns the complete ResultSet.
//
// Scheduling is work-conserving but result order is not: cells complete
// in any order, land in the set keyed by cell, and callers render in
// spec order afterwards — so output is byte-identical whatever the
// worker count. Cell failures are recorded, not fatal; the only
// non-nil error returns are structural (bad spec) or context
// cancellation.
func Run(ctx context.Context, spec Spec, opts Options) (*ResultSet, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	seen := make(map[string]bool, len(spec.Cells))
	for _, c := range spec.Cells {
		if err := c.validate(); err != nil {
			return nil, err
		}
		if seen[c.Key] {
			return nil, fmt.Errorf("campaign: duplicate cell key %q", c.Key)
		}
		seen[c.Key] = true
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	base := opts.Runner
	if base == nil {
		base = sim.NewRunner()
	}
	// One admission gate bounds every simulation in flight, whichever
	// cell it belongs to: launching all cells at once stays safe because
	// seeds and probes alike must win a gate slot before running. A
	// caller-supplied gate extends the same bound across campaigns.
	gate := opts.Gate
	if gate == nil {
		gate = make(chan struct{}, workers)
	}
	runner := *base
	runner.Config.Gate = gate
	if runner.Config.Workers <= 0 || runner.Config.Workers > workers {
		runner.Config.Workers = workers
	}

	rs := &ResultSet{
		name:    spec.Name,
		order:   make([]string, 0, len(spec.Cells)),
		results: make(map[string]*CellResult, len(spec.Cells)),
	}
	for _, c := range spec.Cells {
		rs.order = append(rs.order, c.Key)
		rs.results[c.Key] = &CellResult{Cell: c}
	}

	start := time.Now()
	var (
		mu   sync.Mutex
		done int
		wg   sync.WaitGroup
	)
	// Surface a noteworthy checkpoint load (quarantine, salvage drops,
	// format migration) as one leading Note event; a clean or absent
	// checkpoint emits nothing, so the event count stays cells-only in
	// the common case.
	if opts.OnProgress != nil && runner.Checkpoint != nil {
		if note := runner.Checkpoint.LoadReport().Note(); note != "" {
			opts.OnProgress(Progress{Campaign: spec.Name, Tenant: opts.Tenant, Total: len(spec.Cells), Note: note, Elapsed: time.Since(start)})
		}
	}
	finish := func(cr *CellResult, cellStart time.Time) {
		cr.Elapsed = time.Since(cellStart)
		mu.Lock()
		done++
		d, total := done, len(spec.Cells)
		elapsed := time.Since(start)
		var eta time.Duration
		if d > 0 && d < total {
			eta = time.Duration(int64(elapsed) / int64(d) * int64(total-d))
		}
		if opts.OnProgress != nil {
			opts.OnProgress(Progress{
				Campaign: spec.Name, Tenant: opts.Tenant, Cell: cr.Cell.Key,
				Done: d, Total: total,
				Cached: cr.Cached, Err: cr.Err,
				Attempts: cr.Attempts, Skipped: cr.Skipped,
				CellElapsed: cr.Elapsed, Elapsed: elapsed, ETA: eta,
			})
		}
		mu.Unlock()
	}

	// The shared retry budget: cell re-attempts draw from one campaign-
	// wide pool so a single pathological cell cannot starve the rest, and
	// a storm of failing cells converges instead of retrying forever. A
	// caller-supplied pool spans campaigns (per-tenant budgets).
	budget := opts.SharedRetryBudget
	if budget == nil {
		budget = new(atomic.Int64)
		budget.Store(int64(opts.RetryBudget))
	}
	breaker := opts.BreakerAfter
	if breaker <= 0 {
		breaker = 3
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}

	for _, c := range spec.Cells {
		cr := rs.results[c.Key]
		wg.Add(1)
		go func(c Cell, cr *CellResult) {
			defer wg.Done()
			cellStart := time.Now()
			span := obs.StartSpan("cell", "campaign",
				"campaign", spec.Name, "cell", c.Key, "tenant", opts.Tenant)
			runCell(ctx, &runner, c, cr, cellPolicy{
				budget:   budget,
				breaker:  breaker,
				campaign: spec.Name,
				jitter: sim.NewRetryJitter(backoff, 0,
					opts.RetrySeed^cellSeed(spec.Name, c.Key)),
			})
			obs.CellSeconds.Observe(time.Since(cellStart).Seconds())
			if cr.Attempts > 1 {
				obs.CellRetries.Add(uint64(cr.Attempts - 1))
			}
			outcome := "ok"
			switch {
			case cr.Skipped:
				outcome = "skipped"
				obs.CellsSkipped.Inc()
			case cr.Err != nil:
				outcome = "err"
			default:
				obs.CellsCompleted.Inc()
				if cr.Cached {
					obs.CellsCached.Inc()
				}
			}
			span.End("outcome", outcome, "attempts", strconv.Itoa(cr.Attempts))
			finish(cr, cellStart)
		}(c, cr)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return rs, err
	}
	return rs, nil
}

// cellPolicy carries the scheduler's cell-level retry machinery into one
// cell's attempt loop.
type cellPolicy struct {
	budget   *atomic.Int64
	breaker  int
	campaign string // for event-log attribution only
	jitter   *sim.RetryJitter
}

// cellSeed derives a stable per-cell jitter seed from the campaign and
// cell identity, so two cells failing at the same instant draw different
// backoff schedules while each schedule stays reproducible.
func cellSeed(campaign, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(campaign))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// runCell executes one cell with the scheduler's retry loop: transient
// cell failures (cell-level errors, stalled seeds) are re-attempted under
// the campaign's shared budget until the per-cell circuit breaker trips,
// at which point the cell is parked as Skipped with its last failure
// wrapped beneath ErrCellSkipped. Re-attempting a sweep cell is cheap
// with a checkpoint armed: completed seeds are memoized, so only the
// failed remainder re-runs.
func runCell(ctx context.Context, r *sim.Runner, c Cell, cr *CellResult, pol cellPolicy) {
	for {
		cr.Attempts++
		// Reset the slate a previous attempt may have left.
		cr.Summary, cr.RunErrors, cr.Value, cr.Err, cr.Cached = sim.Summary{}, nil, nil, nil, false
		if c.IsSweep() {
			runSweepCell(ctx, r, c, cr)
		} else {
			runProbeCell(ctx, r, c, cr)
		}
		if !cellRetryable(ctx, cr) {
			return
		}
		if cr.Attempts >= pol.breaker || !takeToken(pol.budget) {
			reason := "budget-dry"
			if cr.Attempts >= pol.breaker {
				reason = "breaker"
				obs.BreakerTrips.Inc()
			}
			cr.Skipped = true
			cr.Err = fmt.Errorf("%w after %d attempt(s): %w", ErrCellSkipped, cr.Attempts, cellFailure(cr))
			obs.Emit("cell-skipped",
				"campaign", pol.campaign, "cell", c.Key,
				"reason", reason,
				"attempts", strconv.Itoa(cr.Attempts),
				"err", cellFailure(cr).Error())
			obs.Instant("cell-skipped", "campaign",
				"cell", c.Key, "reason", reason)
			return
		}
		obs.Emit("cell-retry",
			"campaign", pol.campaign, "cell", c.Key,
			"attempt", strconv.Itoa(cr.Attempts),
			"err", cellFailure(cr).Error())
		if !sleepOrDone(ctx, pol.jitter.Next()) {
			return
		}
	}
}

// cellRetryable reports whether another scheduler attempt could help:
// cell-level failures and stalled seeds are transient from the campaign's
// point of view; ordinary per-seed RunErrors are reported as-is, and
// cancellation ends the loop immediately.
func cellRetryable(ctx context.Context, cr *CellResult) bool {
	if ctx.Err() != nil {
		return false
	}
	if cr.Err != nil {
		return !errors.Is(cr.Err, context.Canceled) && !errors.Is(cr.Err, context.DeadlineExceeded)
	}
	for _, re := range cr.RunErrors {
		if errors.Is(re, sim.ErrStalled) {
			return true
		}
	}
	return false
}

// cellFailure returns the failure that made the attempt retryable — the
// cell error when set, otherwise the first stalled seed.
func cellFailure(cr *CellResult) error {
	if cr.Err != nil {
		return cr.Err
	}
	for _, re := range cr.RunErrors {
		if errors.Is(re, sim.ErrStalled) {
			return re
		}
	}
	return errors.New("campaign: unknown failure")
}

// takeToken draws one re-attempt from the shared budget; it reports
// false when the pool is dry (the decrement is rolled back so concurrent
// callers see a non-negative pool).
func takeToken(budget *atomic.Int64) bool {
	if budget.Add(-1) < 0 {
		budget.Add(1)
		return false
	}
	return true
}

// sleepOrDone waits d or until ctx is done; it reports whether the wait
// completed.
func sleepOrDone(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runSweepCell executes a seed-sweep cell through the hardened runner;
// per-seed results are memoized by the runner's own checkpoint.
func runSweepCell(ctx context.Context, r *sim.Runner, c Cell, cr *CellResult) {
	sum, runErrs, err := r.RunSeeds(ctx, c.Config, c.Technique, c.Seeds)
	cr.Summary, cr.RunErrors, cr.Err = sum, runErrs, err
}

// runProbeCell executes a probe cell: serve it from the checkpoint's
// probe cache when possible, otherwise run it under the runner's
// hardening and record the result.
func runProbeCell(ctx context.Context, r *sim.Runner, c Cell, cr *CellResult) {
	ck := r.Checkpoint
	fp := sim.ProbeFingerprint(c.Key)
	if ck != nil && c.NewValue != nil {
		if raw, ok := ck.Probe(fp); ok {
			v := c.NewValue()
			if err := json.Unmarshal(raw, v); err == nil {
				cr.Value, cr.Cached = v, true
				return
			}
			// A malformed cache entry falls through to a fresh run.
		}
	}
	var v any
	if c.NewValue != nil {
		v = c.NewValue()
	}
	err := r.Config.Do(ctx, func(runCtx context.Context) error {
		return c.Run(runCtx, v)
	})
	if err != nil {
		cr.Err = err
		return
	}
	cr.Value = v
	if ck != nil && c.NewValue != nil {
		if err := ck.PutProbe(fp, v); err != nil {
			cr.Err = fmt.Errorf("campaign: caching probe %q: %w", c.Key, err)
		}
	}
}

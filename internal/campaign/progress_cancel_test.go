package campaign

import (
	"context"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestProgressStreamUnderCancellation pins the event stream's shutdown
// contract: when the campaign context dies mid-run, Run returns, and
// after it returns the OnProgress callback is never invoked again (the
// serving layer routes these events into subscriber channels — a
// post-return event would be a send into torn-down plumbing) and no
// scheduler goroutine survives.
func TestProgressStreamUnderCancellation(t *testing.T) {
	var s Spec
	s.Name = "cancelstream"
	// Two fast probes emit real progress before the cancel; four blocking
	// probes guarantee the campaign is mid-flight when it lands.
	for _, key := range []string{"probe/fast1", "probe/fast2"} {
		s.AddProbe(key, func() any { return new(int) }, func(context.Context, any) error { return nil })
	}
	for _, key := range []string{"probe/block1", "probe/block2", "probe/block3", "probe/block4"} {
		s.AddProbe(key, func() any { return new(int) }, func(ctx context.Context, _ any) error {
			<-ctx.Done()
			return ctx.Err()
		})
	}

	var returned atomic.Bool
	var events, lateEvents atomic.Int32
	fastDone := make(chan struct{}, len(s.Cells))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	runDone := make(chan error, 1)
	go func() {
		_, err := Run(ctx, s, Options{
			Workers: 4,
			OnProgress: func(p Progress) {
				events.Add(1)
				if returned.Load() {
					lateEvents.Add(1)
				}
				if strings.HasPrefix(p.Cell, "probe/fast") && p.Err == nil {
					fastDone <- struct{}{}
				}
				if p.Total != len(s.Cells) {
					t.Errorf("event Total = %d, want %d", p.Total, len(s.Cells))
				}
			},
		})
		returned.Store(true)
		runDone <- err
	}()

	// Cancel only once both fast probes have reported real progress, so
	// the stream provably carried events before the shutdown.
	for i := 0; i < 2; i++ {
		select {
		case <-fastDone:
		case <-time.After(30 * time.Second):
			t.Fatal("fast probes never reported progress")
		}
	}
	cancel()
	var err error
	select {
	case err = <-runDone:
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if err == nil {
		t.Fatal("cancelled campaign returned nil error")
	}
	if events.Load() == 0 {
		t.Fatal("no progress events before the cancel")
	}

	// The stream must be silent from the moment Run returns — give any
	// straggler goroutine ample time to prove it exists.
	time.Sleep(100 * time.Millisecond)
	if n := lateEvents.Load(); n != 0 {
		t.Fatalf("%d progress event(s) delivered after Run returned", n)
	}
	waitNoCampaignGoroutines(t)
}

// TestProgressStreamCompleteCampaignQuiesces is the uncancelled control:
// a campaign that finishes naturally also stops emitting the moment Run
// returns and leaves no goroutines.
func TestProgressStreamCompleteCampaignQuiesces(t *testing.T) {
	var s Spec
	s.Name = "quiesce"
	for _, key := range []string{"probe/a", "probe/b", "probe/c"} {
		s.AddProbe(key, func() any { return new(int) }, func(context.Context, any) error { return nil })
	}
	var returned atomic.Bool
	var late atomic.Int32
	rs, err := Run(context.Background(), s, Options{
		Workers: 2,
		OnProgress: func(Progress) {
			if returned.Load() {
				late.Add(1)
			}
		},
	})
	returned.Store(true)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rs.Keys()); got != 3 {
		t.Fatalf("completed cells = %d, want 3", got)
	}
	time.Sleep(50 * time.Millisecond)
	if n := late.Load(); n != 0 {
		t.Fatalf("%d progress event(s) after natural completion", n)
	}
	waitNoCampaignGoroutines(t)
}

// waitNoCampaignGoroutines asserts every campaign scheduler goroutine
// exited (Run's workers are joined before it returns, so any survivor
// is a leak).
func waitNoCampaignGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n, stacks := campaignGoroutines(); n == 0 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("%d campaign goroutine(s) still running:\n%s", n, stacks)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// campaignGoroutines counts live goroutines inside this package's
// scheduler (test-owned frames are in _test.go files and don't match).
func campaignGoroutines() (int, string) {
	buf := make([]byte, 1<<20)
	stacks := string(buf[:runtime.Stack(buf, true)])
	n := 0
	var matched []string
	for _, g := range strings.Split(stacks, "\n\n") {
		if strings.Contains(g, "campaign.Run(") || strings.Contains(g, "campaign.Run.func") {
			n++
			matched = append(matched, g)
		}
	}
	return n, strings.Join(matched, "\n\n")
}

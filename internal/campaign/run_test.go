package campaign

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"tivapromi/internal/sim"
)

// fastConfig keeps campaign tests quick: one window, scaled device.
func fastConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Windows = 1
	return cfg
}

// testSpec builds a small mixed spec: two sweep cells and one probe
// cell backed by a counter, so tests can observe probe executions.
func testSpec(probeRuns *atomic.Int32) Spec {
	var s Spec
	s.Name = "test"
	s.AddSweep("sweep/PARA", fastConfig(), "PARA", sim.Seeds(1, 2))
	s.AddSweep("sweep/LoLiPRoMi", fastConfig(), "LoLiPRoMi", sim.Seeds(1, 2))
	s.AddProbe("probe/answer",
		func() any { return new(int) },
		func(ctx context.Context, v any) error {
			if probeRuns != nil {
				probeRuns.Add(1)
			}
			*v.(*int) = 42
			return nil
		})
	return s
}

func TestRunValidatesCells(t *testing.T) {
	cases := map[string]Spec{
		"empty key":      {Name: "bad", Cells: []Cell{{Key: "", sweep: true, Seeds: []uint64{1}}}},
		"sweep no seeds": {Name: "bad", Cells: []Cell{{Key: "x", sweep: true}}},
		"probe no run":   {Name: "bad", Cells: []Cell{{Key: "x"}}},
		"duplicate keys": {Name: "bad", Cells: []Cell{
			{Key: "x", sweep: true, Seeds: []uint64{1}},
			{Key: "x", sweep: true, Seeds: []uint64{1}},
		}},
	}
	for name, spec := range cases {
		if _, err := Run(context.Background(), spec, Options{}); err == nil {
			t.Errorf("%s: Run accepted an invalid spec", name)
		}
	}
}

func TestRunEmptySpec(t *testing.T) {
	rs, err := Run(context.Background(), Spec{Name: "empty"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Keys()) != 0 || rs.Err() != nil {
		t.Fatalf("empty spec produced %v / %v", rs.Keys(), rs.Err())
	}
}

func TestMergeDeduplicatesByKey(t *testing.T) {
	a, b := testSpec(nil), testSpec(nil)
	b.AddSweep("sweep/extra", fastConfig(), "PARA", sim.Seeds(9, 1))
	m := Merge("merged", a, b)
	if len(m.Cells) != len(a.Cells)+1 {
		t.Fatalf("merge kept %d cells, want %d", len(m.Cells), len(a.Cells)+1)
	}
	if m.Cells[len(m.Cells)-1].Key != "sweep/extra" {
		t.Fatalf("merge reordered cells: last is %q", m.Cells[len(m.Cells)-1].Key)
	}
}

// TestRunDeterministicAcrossWorkers is the engine-level half of the
// byte-identity guarantee: the same spec must produce deeply equal
// results at one worker and at many.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *ResultSet {
		rs, err := Run(context.Background(), testSpec(nil), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.Err(); err != nil {
			t.Fatal(err)
		}
		return rs
	}
	serial, parallel := run(1), run(8)
	for _, key := range serial.Keys() {
		a, b := serial.Get(key), parallel.Get(key)
		if !reflect.DeepEqual(a.Summary, b.Summary) {
			t.Errorf("cell %q: summaries differ across worker counts", key)
		}
		if !reflect.DeepEqual(a.Value, b.Value) {
			t.Errorf("cell %q: values differ across worker counts", key)
		}
	}
	v, err := serial.Value("probe/answer")
	if err != nil {
		t.Fatal(err)
	}
	if *v.(*int) != 42 {
		t.Fatalf("probe value = %d, want 42", *v.(*int))
	}
}

// TestRunResumesFromCheckpoint is the campaign-level kill/resume story:
// a second process pointed at the same checkpoint recomputes nothing
// and reproduces identical results.
func TestRunResumesFromCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	var probeRuns atomic.Int32

	ck, err := sim.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := sim.NewRunner()
	r1.Checkpoint = ck
	first, err := Run(context.Background(), testSpec(&probeRuns), Options{Workers: 4, Runner: r1})
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Err(); err != nil {
		t.Fatal(err)
	}
	if n := probeRuns.Load(); n != 1 {
		t.Fatalf("probe ran %d times in the first campaign, want 1", n)
	}

	// "New process": reload the checkpoint from disk.
	ck2, err := sim.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	r2 := sim.NewRunner()
	r2.Checkpoint = ck2
	second, err := Run(context.Background(), testSpec(&probeRuns), Options{Workers: 4, Runner: r2})
	if err != nil {
		t.Fatal(err)
	}
	if n := probeRuns.Load(); n != 1 {
		t.Fatalf("probe re-ran on resume (%d executions total)", n)
	}
	if !second.Get("probe/answer").Cached {
		t.Fatal("resumed probe cell not marked cached")
	}
	for _, key := range first.Keys() {
		if !reflect.DeepEqual(first.Get(key).Summary, second.Get(key).Summary) {
			t.Errorf("cell %q: resumed summary differs", key)
		}
		if !reflect.DeepEqual(first.Get(key).Value, second.Get(key).Value) {
			t.Errorf("cell %q: resumed value differs", key)
		}
	}
}

func TestRunRecordsProbeFailuresPerCell(t *testing.T) {
	boom := errors.New("boom")
	var s Spec
	s.Name = "failing"
	s.AddProbe("probe/bad", nil, func(ctx context.Context, v any) error { return boom })
	s.AddProbe("probe/good",
		func() any { return new(int) },
		func(ctx context.Context, v any) error { *v.(*int) = 1; return nil })
	rs, err := Run(context.Background(), s, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Err() == nil {
		t.Fatal("failing cell not surfaced by Err()")
	}
	if !errors.Is(rs.Get("probe/bad").Err, boom) {
		t.Fatalf("probe/bad error = %v, want wrapped boom", rs.Get("probe/bad").Err)
	}
	if _, err := rs.Value("probe/good"); err != nil {
		t.Fatalf("healthy sibling cell poisoned: %v", err)
	}
}

func TestRunProgressEvents(t *testing.T) {
	var events []Progress
	rs, err := Run(context.Background(), testSpec(nil), Options{
		Workers:    4,
		OnProgress: func(p Progress) { events = append(events, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(rs.Keys()) {
		t.Fatalf("%d progress events for %d cells", len(events), len(rs.Keys()))
	}
	for i, e := range events {
		if e.Done != i+1 || e.Total != len(rs.Keys()) || e.Campaign != "test" {
			t.Fatalf("event %d malformed: %+v", i, e)
		}
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, testSpec(nil), Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run under canceled ctx returned %v", err)
	}
}

func TestDefaultEvalMatchesFlagDefaults(t *testing.T) {
	ev := DefaultEval()
	if ev.SeedsPerPoint != 5 || ev.Trials != 25 || ev.ProbeSeed != 7 {
		t.Fatalf("DefaultEval drifted: %+v", ev)
	}
	if len(ev.Thresholds) == 0 || ev.Thresholds[0] != ev.Probe.FlipThreshold {
		t.Fatalf("threshold sweep must start at the paper threshold, got %v vs %d",
			ev.Thresholds, ev.Probe.FlipThreshold)
	}
}

// TestSpecsAreWellFormed builds every section's spec at default Eval and
// checks structural validity plus key uniqueness across the merged
// evaluation — the invariant `experiments all` depends on.
func TestSpecsAreWellFormed(t *testing.T) {
	ev := DefaultEval()
	builders := []func(Eval) Spec{
		Table1Spec, Table2Spec, Table3Spec, Fig4Spec, FloodingSpec,
		PoliciesSpec, AggressorsSpec, AblationSpec, ExtensionsSpec,
		LatencySpec, ThresholdsSpec, FaultsSpec,
	}
	var specs []Spec
	total := 0
	for _, b := range builders {
		sp := b(ev)
		for _, c := range sp.Cells {
			if err := c.validate(); err != nil {
				t.Errorf("%s: %v", sp.Name, err)
			}
		}
		total += len(sp.Cells)
		specs = append(specs, sp)
	}
	merged := Merge("evaluation", specs...)
	if len(merged.Cells) != total {
		t.Fatalf("cross-section key collision: %d cells merged from %d", len(merged.Cells), total)
	}
	if total < 200 {
		t.Fatalf("evaluation grid suspiciously small: %d cells", total)
	}
}

package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tivapromi/internal/sim"
)

// failingProbeSpec builds a spec with one probe that fails failN times
// before succeeding (failN < 0: fails forever), counting its runs.
func failingProbeSpec(key string, failN int, runs *atomic.Int32) Spec {
	var s Spec
	s.Name = "hardened"
	s.AddProbe(key,
		func() any { return new(int) },
		func(ctx context.Context, v any) error {
			n := runs.Add(1)
			if failN < 0 || int(n) <= failN {
				return fmt.Errorf("probe glitch %d", n)
			}
			*v.(*int) = 7
			return nil
		})
	return s
}

// noRetryRunner disables the runner-level transient retries so tests
// can count exactly one workload execution per scheduler attempt.
func noRetryRunner() *sim.Runner {
	r := sim.NewRunner()
	r.Config.Retries = 0
	r.Config.Backoff = time.Microsecond
	return r
}

// TestCellRetrySucceedsWithinBudget: a cell that fails once recovers on
// its second scheduler attempt when the budget allows it.
func TestCellRetrySucceedsWithinBudget(t *testing.T) {
	var runs atomic.Int32
	spec := failingProbeSpec("probe/flaky", 1, &runs)
	rs, err := Run(context.Background(), spec, Options{
		Runner:       noRetryRunner(),
		RetryBudget:  3,
		RetryBackoff: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cr := rs.Get("probe/flaky")
	if cr.Err != nil || cr.Skipped {
		t.Fatalf("cell = err %v skipped %v, want recovered", cr.Err, cr.Skipped)
	}
	if cr.Attempts != 2 || runs.Load() != 2 {
		t.Fatalf("attempts=%d runs=%d, want 2/2", cr.Attempts, runs.Load())
	}
	if v, err := rs.Value("probe/flaky"); err != nil || *v.(*int) != 7 {
		t.Fatalf("value = %v, %v", v, err)
	}
	if len(rs.Skipped()) != 0 {
		t.Fatalf("recovered cell listed as skipped: %v", rs.Skipped())
	}
}

// TestCellBreakerParksPersistentFailure: a cell that never succeeds is
// parked as Skipped at the breaker threshold, with the root cause still
// reachable through errors.Is.
func TestCellBreakerParksPersistentFailure(t *testing.T) {
	var runs atomic.Int32
	spec := failingProbeSpec("probe/doomed", -1, &runs)
	rs, err := Run(context.Background(), spec, Options{
		Runner:       noRetryRunner(),
		RetryBudget:  100,
		BreakerAfter: 3,
		RetryBackoff: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cr := rs.Get("probe/doomed")
	if !cr.Skipped {
		t.Fatal("persistent failure was not parked as Skipped")
	}
	if !errors.Is(cr.Err, ErrCellSkipped) {
		t.Fatalf("cell error %v does not mark ErrCellSkipped", cr.Err)
	}
	if !strings.Contains(cr.Err.Error(), "probe glitch") {
		t.Fatalf("root cause lost from %v", cr.Err)
	}
	if cr.Attempts != 3 || runs.Load() != 3 {
		t.Fatalf("attempts=%d runs=%d, want breaker to trip at 3", cr.Attempts, runs.Load())
	}
	if got := rs.Skipped(); len(got) != 1 || got[0] != "probe/doomed" {
		t.Fatalf("Skipped() = %v", got)
	}
	if rs.Err() == nil {
		t.Fatal("skipped cell must still surface through Err()")
	}
}

// TestRetryBudgetSharedAcrossCells: with a one-token pool and two doomed
// cells, exactly one re-attempt happens in total.
func TestRetryBudgetSharedAcrossCells(t *testing.T) {
	var runsA, runsB atomic.Int32
	var s Spec
	s.Name = "budget"
	fail := func(runs *atomic.Int32) func(context.Context, any) error {
		return func(context.Context, any) error {
			runs.Add(1)
			return errors.New("doomed")
		}
	}
	s.AddProbe("probe/a", func() any { return new(int) }, fail(&runsA))
	s.AddProbe("probe/b", func() any { return new(int) }, fail(&runsB))
	rs, err := Run(context.Background(), s, Options{
		Workers:      1, // deterministic scheduling of the budget draw
		Runner:       noRetryRunner(),
		RetryBudget:  1,
		BreakerAfter: 5,
		RetryBackoff: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := runsA.Load() + runsB.Load()
	if total != 3 { // 2 first attempts + exactly 1 budgeted retry
		t.Fatalf("total probe runs = %d, want 3", total)
	}
	if len(rs.Skipped()) != 2 {
		t.Fatalf("Skipped() = %v, want both cells parked", rs.Skipped())
	}
}

// TestZeroBudgetStillParksFailingCell: retries disabled, a failing cell
// is parked immediately (one attempt) and keeps its cause.
func TestZeroBudgetStillParksFailingCell(t *testing.T) {
	var runs atomic.Int32
	spec := failingProbeSpec("probe/doomed", -1, &runs)
	rs, err := Run(context.Background(), spec, Options{Runner: noRetryRunner()})
	if err != nil {
		t.Fatal(err)
	}
	cr := rs.Get("probe/doomed")
	if runs.Load() != 1 || cr.Attempts != 1 {
		t.Fatalf("runs=%d attempts=%d, want 1/1 with no budget", runs.Load(), cr.Attempts)
	}
	if !cr.Skipped || !errors.Is(cr.Err, ErrCellSkipped) {
		t.Fatalf("cell = skipped %v err %v", cr.Skipped, cr.Err)
	}
}

// TestProgressReportsSkipAndAttempts: the event stream carries the
// scheduler's verdict for observability.
func TestProgressReportsSkipAndAttempts(t *testing.T) {
	var runs atomic.Int32
	spec := failingProbeSpec("probe/doomed", -1, &runs)
	var events []Progress
	_, err := Run(context.Background(), spec, Options{
		Runner:       noRetryRunner(),
		RetryBudget:  10,
		BreakerAfter: 2,
		RetryBackoff: time.Microsecond,
		OnProgress:   func(p Progress) { events = append(events, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	ev := events[0]
	if !ev.Skipped || ev.Attempts != 2 || ev.Err == nil {
		t.Fatalf("event = %+v, want Skipped after 2 attempts", ev)
	}
}

// TestCancelledMidCellDoesNotRetryOrLeak: cancelling the campaign stops
// the retry loop immediately and leaves no goroutines behind.
func TestCancelledMidCellDoesNotRetryOrLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var runs atomic.Int32
	var s Spec
	s.Name = "cancel"
	started := make(chan struct{})
	s.AddProbe("probe/block",
		func() any { return new(int) },
		func(ctx context.Context, v any) error {
			runs.Add(1)
			close(started)
			<-ctx.Done()
			return ctx.Err()
		})
	done := make(chan struct{})
	var rs *ResultSet
	var runErr error
	go func() {
		rs, runErr = Run(ctx, s, Options{RetryBudget: 50, RetryBackoff: time.Microsecond})
		close(done)
	}()
	<-started
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("campaign did not return after cancellation")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", runErr)
	}
	if runs.Load() != 1 {
		t.Fatalf("cancelled cell was retried %d times", runs.Load()-1)
	}
	if cr := rs.Get("probe/block"); cr.Skipped {
		t.Fatal("cancellation must not be classified as a skip")
	}
	// Give exited workers a beat, then check for leaks.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestStalledSweepCellRetriedBySweepScheduler: a sweep whose only seed
// stalls on its every runner-level attempt is re-attempted at the cell
// level (the stall classifies as transient for the campaign too).
func TestStalledSweepCellRetriedBySweepScheduler(t *testing.T) {
	// The first cell-level attempt exhausts the runner's retries with
	// stalls; the second cell-level attempt succeeds immediately.
	var calls atomic.Int32
	r := sim.NewRunner()
	r.Config.Retries = 0
	r.Config.Backoff = time.Microsecond
	r.Config.StallTimeout = 15 * time.Millisecond
	r.Config.SetRunFnForTest(func(ctx context.Context, c sim.Config, _ string) (sim.Result, error) {
		if calls.Add(1) == 1 {
			sim.HeartbeatFrom(ctx).Tick()
			<-ctx.Done()
			return sim.Result{}, ctx.Err()
		}
		return sim.Result{Seed: c.Seed, TotalActs: 1}, nil
	})
	var s Spec
	s.Name = "stall"
	s.AddSweep("sweep/stall", fastConfig(), "PARA", []uint64{1})
	rs, err := Run(context.Background(), s, Options{
		Runner:       r,
		RetryBudget:  5,
		BreakerAfter: 4,
		RetryBackoff: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cr := rs.Get("sweep/stall")
	if cr.Skipped || cr.Err != nil || len(cr.RunErrors) != 0 {
		t.Fatalf("cell = %+v, want recovered after stall", cr)
	}
	if cr.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (stalled then recovered)", cr.Attempts)
	}
}

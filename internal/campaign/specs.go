package campaign

import (
	"context"
	"fmt"

	"tivapromi/internal/core"
	"tivapromi/internal/faults"
	"tivapromi/internal/sim"
)

// Seed bases keep every section's sweep statistically independent while
// staying byte-for-byte reproducible across runs and refactors; they are
// the constants the pre-campaign drivers used.
const (
	seedBaseTable3     = 1000
	seedBaseFig4       = 2000
	seedBasePolicies   = 3000
	seedBaseAggressors = 4000
	seedBaseAblation   = 5000
	seedBaseExtensions = 6000
	seedBaseFaults     = 8000

	// faultSeed derives the fault injector randomness for FaultsSpec.
	faultSeed = 0xfa0175

	// pbaseFloodTrials is the trial count of the Pbase ablation's
	// security probe (small: each trial floods to the flip threshold).
	pbaseFloodTrials = 9
)

// AblationVariant is the Fig. 2 variant the ablation studies sweep
// around (the paper's preferred configuration).
const AblationVariant = core.LoLiPRoMi

// HistorySizes, CounterSizes and PbaseDeltas are the ablation grids.
var (
	HistorySizes = []int{4, 8, 16, 32, 64, 128}
	CounterSizes = []int{16, 32, 64, 128}
	PbaseDeltas  = []int{-2, -1, 0, 1, 2}
)

// AggressorCounts is the fixed-aggressor sweep grid.
var AggressorCounts = []int{1, 2, 4, 8, 12, 16, 20}

// FaultTechniques and FaultRates define the degradation grid.
var (
	FaultTechniques = []string{"PARA", "TWiCe", "CRA", "CaPRoMi", "LoLiPRoMi"}
	FaultRates      = []float64{1e-4, 1e-3, 1e-2}
)

// ---- Table I ----------------------------------------------------------

// Table1TraceKey is the probe cell holding the unmitigated trace
// statistics of Table I's measured block.
func Table1TraceKey(ev Eval) string {
	return "table1/trace?cfg=" + sim.Fingerprint(ev.Base, "", nil)
}

// Table1Spec measures the unmitigated trace statistics (Table I's
// static rows are pure rendering and need no cells).
func Table1Spec(ev Eval) Spec {
	s := Spec{Name: "table1"}
	cfg := ev.Base
	s.AddProbe(Table1TraceKey(ev),
		func() any { return new(sim.Result) },
		func(ctx context.Context, v any) error {
			r, err := sim.RunCtx(ctx, cfg, "")
			if err != nil {
				return err
			}
			*v.(*sim.Result) = r
			return nil
		})
	return s
}

// ---- Table II ---------------------------------------------------------

// Table2Spec is empty: the FSM cycle counts are closed-form worst-case
// walks, computed at render time.
func Table2Spec(Eval) Spec { return Spec{Name: "table2"} }

// ---- Table III --------------------------------------------------------

// Table3SweepKey is the overhead/FPR sweep cell for one technique.
func Table3SweepKey(tech string) string { return "table3/sweep?tech=" + tech }

// Table3VulnKey is the paper-scale vulnerability probe cell for one
// technique.
func Table3VulnKey(ev Eval, tech string) string {
	return fmt.Sprintf("table3/vuln?tech=%s&seed=%d&%s", tech, ev.ProbeSeed, probeSig(ev.Probe))
}

// Table3Spec sweeps every paper technique and probes its paper-scale
// vulnerability.
func Table3Spec(ev Eval) Spec {
	s := Spec{Name: "table3"}
	seeds := sim.Seeds(seedBaseTable3, ev.SeedsPerPoint)
	for _, name := range sim.TechniqueNames() {
		s.AddSweep(Table3SweepKey(name), ev.Base, name, seeds)
		s.Cells = append(s.Cells, vulnCell(Table3VulnKey(ev, name), name, ev))
	}
	return s
}

// vulnCell builds a paper-scale vulnerability probe cell.
func vulnCell(key, tech string, ev Eval) Cell {
	p, seed := ev.Probe, ev.ProbeSeed
	return Cell{
		Key:      key,
		NewValue: func() any { return new(sim.VulnReport) },
		Run: func(ctx context.Context, v any) error {
			rep, err := sim.AnalyzeVulnerabilityCtx(ctx, tech, p, seed)
			if err != nil {
				return err
			}
			*v.(*sim.VulnReport) = rep
			return nil
		},
	}
}

// ---- Fig. 4 -----------------------------------------------------------

// Fig4SweepKey is the overhead sweep cell for one technique.
func Fig4SweepKey(tech string) string { return "fig4/sweep?tech=" + tech }

// Fig4Spec sweeps every technique for the size-vs-overhead scatter.
func Fig4Spec(ev Eval) Spec {
	s := Spec{Name: "fig4"}
	seeds := sim.Seeds(seedBaseFig4, ev.SeedsPerPoint)
	for _, name := range sim.TechniqueNames() {
		s.AddSweep(Fig4SweepKey(name), ev.Base, name, seeds)
	}
	return s
}

// ---- Flooding ---------------------------------------------------------

// FloodKey is the paper-scale flooding probe cell for one technique.
func FloodKey(ev Eval, tech string) string {
	return fmt.Sprintf("flooding/flood?tech=%s&rate=%d&trials=%d&seed=%d&%s",
		tech, ev.Probe.MaxActsPerRI, ev.Trials, ev.ProbeSeed, probeSig(ev.Probe))
}

// FloodingSpec probes acts-to-first-protection for every technique at
// the probe scale's maximum activation rate.
func FloodingSpec(ev Eval) Spec {
	s := Spec{Name: "flooding"}
	p, trials, seed := ev.Probe, ev.Trials, ev.ProbeSeed
	for _, name := range sim.TechniqueNames() {
		tech := name
		s.AddProbe(FloodKey(ev, name),
			func() any { return new(sim.FloodResult) },
			func(ctx context.Context, v any) error {
				r, err := sim.FloodCtx(ctx, tech, p, p.MaxActsPerRI, trials, seed)
				if err != nil {
					return err
				}
				*v.(*sim.FloodResult) = r
				return nil
			})
	}
	return s
}

// ---- Refresh-address policies ----------------------------------------

// PolicyTechniques are the TiVaPRoMi variants the policy study sweeps.
var PolicyTechniques = []string{"LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"}

// PolicySweepKey is the sweep cell for one (technique, policy) pair.
func PolicySweepKey(tech string, pol sim.PolicyKind) string {
	return fmt.Sprintf("policy/sweep?tech=%s&pol=%s", tech, pol)
}

// PoliciesSpec sweeps each TiVaPRoMi variant under the four
// refresh-address policies of §IV.
func PoliciesSpec(ev Eval) Spec {
	s := Spec{Name: "refreshpolicies"}
	seeds := sim.Seeds(seedBasePolicies, ev.SeedsPerPoint)
	for _, name := range PolicyTechniques {
		for _, pol := range sim.Policies() {
			c := ev.Base
			c.Policy = pol
			if pol == sim.PolicyRemapped {
				// Spare-row replacement on the device side too.
				c.RemapSwaps = 16
			}
			s.AddSweep(PolicySweepKey(name, pol), c, name, seeds)
		}
	}
	return s
}

// ---- Aggressor sweep --------------------------------------------------

// AggressorsSweepKey is the sweep cell for one (aggressor count,
// technique) pair; tech "" is the unmitigated run.
func AggressorsSweepKey(k int, tech string) string {
	if tech == "" {
		tech = "none"
	}
	return fmt.Sprintf("aggressors/sweep?k=%d&tech=%s", k, tech)
}

// AggressorsSpec sweeps a fixed aggressor count per targeted bank for
// the unmitigated system, LoLiPRoMi and PARA.
func AggressorsSpec(ev Eval) Spec {
	s := Spec{Name: "aggressors"}
	seeds := sim.Seeds(seedBaseAggressors, ev.SeedsPerPoint)
	for _, k := range AggressorCounts {
		c := ev.Base
		c.MinAggressors, c.MaxAggressors = k, k
		for _, tech := range []string{"", "LoLiPRoMi", "PARA"} {
			s.AddSweep(AggressorsSweepKey(k, tech), c, tech, seeds)
		}
	}
	return s
}

// ---- Ablation ---------------------------------------------------------

// AblationHistKey is the history-size sweep cell.
func AblationHistKey(size int) string {
	return fmt.Sprintf("ablation/sweep?knob=history&size=%d", size)
}

// AblationCntKey is the counter-size sweep cell.
func AblationCntKey(size int) string {
	return fmt.Sprintf("ablation/sweep?knob=counter&size=%d", size)
}

// AblationPbaseKey is the Pbase-delta sweep cell.
func AblationPbaseKey(delta int) string {
	return fmt.Sprintf("ablation/sweep?knob=pbase&delta=%+d", delta)
}

// AblationPbaseFloodKey is the Pbase ablation's flooding probe cell.
func AblationPbaseFloodKey(ev Eval, delta int) string {
	return fmt.Sprintf("ablation/pbaseflood?v=%d&delta=%+d&trials=%d&seed=%d&%s",
		int(AblationVariant), delta, pbaseFloodTrials,
		sim.Seeds(seedBaseAblation, ev.SeedsPerPoint)[0], probeSig(ev.Base.Params))
}

// AblationSpec sweeps the three design knobs of the ablation study:
// history-table size, counter-table size, and the base probability
// (each Pbase point pairs its overhead sweep with a flooding probe).
func AblationSpec(ev Eval) Spec {
	s := Spec{Name: "ablation"}
	seeds := sim.Seeds(seedBaseAblation, ev.SeedsPerPoint)
	for _, size := range HistorySizes {
		c := ev.Base
		c.Factory = sim.HistoryAblationFactory(AblationVariant, size)
		c.FactoryLabel = sim.HistoryAblationLabel(AblationVariant, size)
		s.AddSweep(AblationHistKey(size), c, "ablation", seeds)
	}
	for _, size := range CounterSizes {
		c := ev.Base
		c.Factory = sim.CounterAblationFactory(size)
		c.FactoryLabel = sim.CounterAblationLabel(size)
		s.AddSweep(AblationCntKey(size), c, "ablation", seeds)
	}
	base, probeSeed := ev.Base, seeds[0]
	for _, delta := range PbaseDeltas {
		c := ev.Base
		c.Factory = sim.PbaseAblationFactory(AblationVariant, delta)
		c.FactoryLabel = sim.PbaseAblationLabel(AblationVariant, delta)
		s.AddSweep(AblationPbaseKey(delta), c, "ablation", seeds)
		d := delta
		s.AddProbe(AblationPbaseFloodKey(ev, delta),
			func() any { return new(float64) },
			func(ctx context.Context, v any) error {
				m, err := sim.PbaseFloodMedian(ctx, base, AblationVariant, d, pbaseFloodTrials, probeSeed)
				if err != nil {
					return err
				}
				*v.(*float64) = m
				return nil
			})
	}
	return s
}

// ---- Extensions -------------------------------------------------------

// ExtTechniques lists the techniques of the extensions study.
func ExtTechniques() []string {
	return append(sim.ExtensionTechniques(), "LoLiPRoMi")
}

// ExtSweepKey is the overhead sweep cell for one extension technique.
func ExtSweepKey(tech string) string { return "extensions/sweep?tech=" + tech }

// ExtVulnKey is the extension vulnerability probe cell for one
// technique.
func ExtVulnKey(ev Eval, tech string) string {
	return fmt.Sprintf("extensions/vuln?tech=%s&seed=%d&%s", tech, ev.ProbeSeed, probeSig(ev.Probe))
}

// ExtensionsSpec sweeps the beyond-the-paper techniques and probes
// their paper-scale attack surfaces (flood, decoy, saturation).
func ExtensionsSpec(ev Eval) Spec {
	s := Spec{Name: "extensions"}
	seeds := sim.Seeds(seedBaseExtensions, ev.SeedsPerPoint)
	p, probeSeed := ev.Probe, ev.ProbeSeed
	for _, name := range ExtTechniques() {
		s.AddSweep(ExtSweepKey(name), ev.Base, name, seeds)
		tech := name
		s.AddProbe(ExtVulnKey(ev, name),
			func() any { return new(sim.ExtVulnReport) },
			func(ctx context.Context, v any) error {
				rep, err := sim.AnalyzeExtensionCtx(ctx, tech, p, probeSeed)
				if err != nil {
					return err
				}
				*v.(*sim.ExtVulnReport) = rep
				return nil
			})
	}
	return s
}

// ---- Latency ----------------------------------------------------------

// LatencyTechniques lists the latency study's rows; "" is the
// unprotected system.
func LatencyTechniques() []string {
	return append([]string{""}, sim.TechniqueNames()...)
}

// LatencyKey is the cycle-accurate latency probe cell for one
// technique ("" for the unprotected system).
func LatencyKey(ev Eval, tech string) string {
	label := tech
	if label == "" {
		label = "none"
	}
	return fmt.Sprintf("latency/probe?tech=%s&cfg=%s", label, sim.Fingerprint(ev.Base, "", nil))
}

// LatencySpec runs the cycle-accurate FR-FCFS scheduler for one window
// per technique.
func LatencySpec(ev Eval) Spec {
	s := Spec{Name: "latency"}
	cfg := ev.Base
	for _, name := range LatencyTechniques() {
		tech := name
		s.AddProbe(LatencyKey(ev, name),
			func() any { return new(sim.LatencyResult) },
			func(ctx context.Context, v any) error {
				r, err := sim.LatencyProbeCtx(ctx, cfg, tech)
				if err != nil {
					return err
				}
				*v.(*sim.LatencyResult) = r
				return nil
			})
	}
	return s
}

// ---- Thresholds -------------------------------------------------------

// ThresholdsSpec is empty: the flip-threshold sweep is closed-form,
// computed at render time from Eval.Probe and Eval.Thresholds.
func ThresholdsSpec(Eval) Spec { return Spec{Name: "thresholds"} }

// ---- Faults -----------------------------------------------------------

// FaultSweepFor assembles the degradation study's sweep configuration
// from the evaluation knobs — the single source both the spec builder
// and the renderer use, so the grid cannot drift between them.
func FaultSweepFor(ev Eval) sim.FaultSweepConfig {
	return sim.FaultSweepConfig{
		Base:       ev.Base,
		Techniques: FaultTechniques,
		Models:     append([]faults.Model{faults.None}, faults.Models()...),
		Rates:      FaultRates,
		Seeds:      sim.Seeds(seedBaseFaults, ev.SeedsPerPoint),
		FaultSeed:  faultSeed,
	}
}

// FaultKey is the sweep cell for one degradation grid cell.
func FaultKey(c sim.FaultCell) string {
	return fmt.Sprintf("faults/sweep?tech=%s&model=%s&rate=%g", c.Technique, c.Model, c.Rate)
}

// FaultsSpec schedules the techniques × fault models × rates
// degradation grid as independent sweep cells.
func FaultsSpec(ev Eval) Spec {
	s := Spec{Name: "faults"}
	sc := FaultSweepFor(ev)
	for _, c := range sc.Cells() {
		s.AddSweep(FaultKey(c), sc.CellConfig(c), c.Technique, sc.Seeds)
	}
	return s
}

// The write-ahead job journal: the serving tier's durability spine.
// Every accepted submission is appended (and fsynced) before its 202
// goes out, every state transition is appended as it happens, and a
// restarted server replays the log to rebuild its job ledger — jobs
// that were queued, running, or even done are re-admitted and re-run,
// with their cells deduping against the content-addressed checkpoint
// cache so recovery re-renders rather than re-simulates.
//
// The format reuses the checkpoint-v2 envelope discipline through the
// exported sim codec: a magic header line, then one JSON record per
// line carrying a SHA-256 checksum (sim.EntrySum) that binds the
// record's kind and job id to its payload bytes. Unlike the
// checkpoint there is no whole-file digest trailer — an append-only
// log cannot maintain one — so a crash's torn tail is expected damage:
// load salvages every verifiable record, quarantines the original to
// <path>.corrupt-<ts> (pruned to the newest sim.QuarantineKeep), and
// rewrites a compacted clean log before reopening it for append. A
// record that does not verify is never resurrected.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sync"
	"time"

	"tivapromi/internal/iofault"
	"tivapromi/internal/obs"
	"tivapromi/internal/sim"
)

// isNotExist matches the not-exist condition through whatever error
// chain the FS seam produced.
func isNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

const (
	journalFormat  = "tivapromi-journal"
	journalVersion = 1

	journalKindSubmit = "submit"
	journalKindState  = "state"
)

// journalLine is the on-disk shape of both the header and the records,
// mirroring the checkpoint's ckptLine.
type journalLine struct {
	Format  string          `json:"format,omitempty"`
	Version int             `json:"version,omitempty"`
	K       string          `json:"k,omitempty"`
	ID      string          `json:"id,omitempty"`
	Sum     string          `json:"sum,omitempty"`
	Data    json.RawMessage `json:"data,omitempty"`
}

// SubmitRecord journals one accepted submission: everything a restarted
// server needs to re-admit the job and honor its idempotency key.
type SubmitRecord struct {
	ID          string  `json:"id"`
	Tenant      string  `json:"tenant"`
	IdemKey     string  `json:"idem_key,omitempty"`
	Fingerprint string  `json:"fingerprint"`
	Request     Request `json:"request"`
}

// StateRecord journals one lifecycle transition. Epoch and Seq are the
// job's incarnation number and SSE sequence high-water mark at the
// transition: a recovered job bumps its epoch past the last journaled
// one, so a pre-crash Last-Event-ID is detected as stale instead of
// silently aliasing into the re-run's event numbering.
type StateRecord struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Error string   `json:"error,omitempty"`
	Epoch uint64   `json:"epoch,omitempty"`
	Seq   uint64   `json:"seq,omitempty"`
}

// ReplayedJob is one job reconstructed from the journal: its submit
// record and the last verified state the log recorded for it.
type ReplayedJob struct {
	Submit SubmitRecord
	State  JobState // last journaled state (StateQueued if only the submit survived)
	Err    string
	Epoch  uint64 // highest journaled incarnation number
	Seq    uint64
}

// JournalLoadReport describes what OpenJournal found on disk.
type JournalLoadReport struct {
	// Entries counts the verified records replayed.
	Entries int
	// Dropped counts damaged or unverifiable lines discarded by salvage.
	Dropped int
	// Orphans counts verified state records whose submit record did not
	// survive — without a spec they cannot be re-admitted.
	Orphans int
	// Quarantined is the path the damaged original was moved to, if any.
	Quarantined string
	// Err is what was wrong with the file (nil = clean load).
	Err error
}

// Note renders the report as one operator-facing line ("" when there is
// nothing to say).
func (r JournalLoadReport) Note() string {
	if r.Err == nil {
		return ""
	}
	return fmt.Sprintf("journal salvage: kept %d record(s), dropped %d, quarantined %q (%v)",
		r.Entries, r.Dropped, r.Quarantined, r.Err)
}

// Journal is the open write-ahead log. A nil *Journal is a no-op (the
// server runs journal-less when Config.JournalPath is empty), so
// callers thread one pointer unconditionally. Appends serialize under
// mu; each append is written and fsynced before returning — the fsync
// is the commit point the chaos harness kills at.
type Journal struct {
	mu     sync.Mutex
	path   string
	fs     iofault.FS
	f      iofault.File
	report JournalLoadReport
	closed bool
}

// OpenJournal opens or creates the journal at path through the FS seam
// (nil = the real filesystem), salvaging and quarantining on damage,
// and returns the replayed jobs in submission order.
func OpenJournal(path string, fsys iofault.FS) (*Journal, []ReplayedJob, error) {
	if path == "" {
		return nil, nil, fmt.Errorf("serve: empty journal path")
	}
	if fsys == nil {
		fsys = iofault.OS{}
	}
	if err := fsys.MkdirAll(filepath.Dir(path)); err != nil {
		return nil, nil, fmt.Errorf("serve: journal dir: %w", err)
	}
	j := &Journal{path: path, fs: fsys}
	var replay []ReplayedJob
	raw, err := fsys.ReadFile(path)
	switch {
	case err != nil && isNotExist(err):
		// Fresh log: write the header through a normal append so the
		// first record's durability dance also covers it.
		if err := j.open(); err != nil {
			return nil, nil, err
		}
		if err := j.appendLine(journalLine{Format: journalFormat, Version: journalVersion}); err != nil {
			j.Close()
			return nil, nil, err
		}
		return j, nil, nil
	case err != nil:
		return nil, nil, fmt.Errorf("serve: read journal: %w", err)
	}

	span := obs.StartSpan("journal-replay", "serve", "path", path)
	replay, j.report = parseJournal(raw)
	span.End("entries", fmt.Sprint(j.report.Entries), "dropped", fmt.Sprint(j.report.Dropped))
	if j.report.Err != nil {
		// Quarantine the damaged original, then persist the salvaged
		// records as a compacted clean log before reopening for append.
		q := fmt.Sprintf("%s.corrupt-%d", path, time.Now().UnixNano())
		if renameErr := fsys.Rename(path, q); renameErr == nil {
			j.report.Quarantined = q
			obs.JournalQuarantines.Inc()
			sim.PruneQuarantine(fsys, path, sim.QuarantineKeep)
		}
		if j.report.Entries > 0 {
			obs.JournalSalvages.Inc()
		}
		obs.Emit("journal-quarantine",
			"path", path,
			"quarantined", j.report.Quarantined,
			"salvaged", fmt.Sprint(j.report.Entries),
			"dropped", fmt.Sprint(j.report.Dropped),
			"err", j.report.Err.Error())
		if err := sim.AtomicWriteFS(fsys, path, compactJournal(raw)); err != nil {
			return nil, nil, fmt.Errorf("serve: rewrite salvaged journal: %w", err)
		}
	}
	if err := j.open(); err != nil {
		return nil, nil, err
	}
	return j, replay, nil
}

// open acquires the append handle.
func (j *Journal) open() error {
	f, err := j.fs.OpenAppend(j.path)
	if err != nil {
		return fmt.Errorf("serve: open journal: %w", err)
	}
	j.f = f
	return nil
}

// LoadReport returns what OpenJournal found on disk (the zero report
// for a nil journal or a fresh file).
func (j *Journal) LoadReport() JournalLoadReport {
	if j == nil {
		return JournalLoadReport{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// AppendSubmit journals one accepted submission. It must succeed before
// the submission's 202 goes out: an unjournaled job would silently
// vanish in a crash, which is exactly the lie this log exists to
// prevent. A nil journal accepts everything.
func (j *Journal) AppendSubmit(rec SubmitRecord) error {
	if j == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: journal submit: %w", err)
	}
	return j.appendRecord(journalLine{
		K: journalKindSubmit, ID: rec.ID,
		Sum: sim.EntrySum(journalKindSubmit, rec.ID, rec.Tenant, data), Data: data,
	})
}

// AppendState journals one lifecycle transition. State records are
// best-effort relative to the submit record: losing one in a crash
// means the job replays from an earlier state and re-runs against the
// result cache — wasteful, never wrong.
func (j *Journal) AppendState(rec StateRecord) error {
	if j == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: journal state: %w", err)
	}
	return j.appendRecord(journalLine{
		K: journalKindState, ID: rec.ID,
		Sum: sim.EntrySum(journalKindState, rec.ID, "", data), Data: data,
	})
}

// appendRecord writes one record line with span + counter accounting.
func (j *Journal) appendRecord(l journalLine) error {
	span := obs.StartSpan("journal-append", "serve", "kind", l.K, "job", l.ID)
	err := j.appendLine(l)
	if err != nil {
		span.End("outcome", "err")
		obs.JournalAppendErrs.Inc()
		return err
	}
	span.End("outcome", "ok")
	obs.JournalAppends.Inc()
	return nil
}

// appendLine marshals, writes and fsyncs one line under the lock.
func (j *Journal) appendLine(l journalLine) error {
	raw, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("serve: journal encode: %w", err)
	}
	raw = append(raw, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.f == nil {
		return fmt.Errorf("serve: journal is closed")
	}
	if _, err := j.f.Write(raw); err != nil {
		return fmt.Errorf("serve: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: journal sync: %w", err)
	}
	return nil
}

// Close releases the append handle. Nil-safe and idempotent.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil {
		return nil
	}
	return j.f.Close()
}

// parseJournal walks raw, salvaging every verifiable record, and
// reconstructs the job ledger in submission order. It never panics on
// any input and never keeps a record whose checksum does not verify.
func parseJournal(raw []byte) ([]ReplayedJob, JournalLoadReport) {
	var rep JournalLoadReport
	corrupt := func(format string, args ...any) {
		if rep.Err == nil {
			rep.Err = fmt.Errorf("serve: journal corrupt: %s", fmt.Sprintf(format, args...))
		}
	}

	hdr, rest, ok := sim.SplitLine(raw)
	if !ok {
		corrupt("truncated header line")
		return nil, rep
	}
	var h journalLine
	if err := json.Unmarshal(hdr, &h); err != nil || h.Format != journalFormat {
		corrupt("missing or unparseable header")
		return nil, rep
	}
	if h.Version != journalVersion {
		corrupt("file version %d, want %d", h.Version, journalVersion)
		return nil, rep
	}

	var order []string
	byID := make(map[string]*ReplayedJob)
	off := len(raw) - len(rest)
	for len(rest) > 0 {
		line, next, lineOK := sim.SplitLine(rest)
		if !lineOK {
			// No trailing newline: the torn tail of a crash mid-append.
			corrupt("truncated final line at offset %d", off)
			rep.Dropped++
			break
		}
		lineStart := off
		off += len(rest) - len(next)
		rest = next
		var l journalLine
		if err := json.Unmarshal(line, &l); err != nil {
			corrupt("unparseable line at offset %d", lineStart)
			rep.Dropped++
			continue
		}
		switch l.K {
		case journalKindSubmit:
			var rec SubmitRecord
			if sim.EntrySum(journalKindSubmit, l.ID, tenantOfLine(l.Data), l.Data) != l.Sum ||
				json.Unmarshal(l.Data, &rec) != nil || rec.ID != l.ID || rec.ID == "" {
				corrupt("submit record failed verification at offset %d", lineStart)
				rep.Dropped++
				continue
			}
			if byID[rec.ID] != nil {
				// A duplicate submit for an id is unverifiable intent;
				// keep the first, drop the echo.
				corrupt("duplicate submit for %s at offset %d", rec.ID, lineStart)
				rep.Dropped++
				continue
			}
			rj := &ReplayedJob{Submit: rec, State: StateQueued}
			byID[rec.ID] = rj
			order = append(order, rec.ID)
			rep.Entries++
		case journalKindState:
			var rec StateRecord
			if sim.EntrySum(journalKindState, l.ID, "", l.Data) != l.Sum ||
				json.Unmarshal(l.Data, &rec) != nil || rec.ID != l.ID {
				corrupt("state record failed verification at offset %d", lineStart)
				rep.Dropped++
				continue
			}
			rj := byID[rec.ID]
			if rj == nil {
				// Verified but orphaned: its submit record was lost, so
				// there is no spec to re-admit. Counted, not resurrected.
				rep.Orphans++
				continue
			}
			rj.State = rec.State
			rj.Err = rec.Error
			if rec.Epoch > rj.Epoch {
				rj.Epoch = rec.Epoch
			}
			if rec.Seq > rj.Seq {
				rj.Seq = rec.Seq
			}
			rep.Entries++
		default:
			corrupt("unknown record kind %q at offset %d", l.K, lineStart)
			rep.Dropped++
		}
	}

	out := make([]ReplayedJob, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out, rep
}

// tenantOfLine peeks the tenant field out of a submit payload so the
// checksum can bind it as the second identity component without a full
// decode-then-reencode round trip.
func tenantOfLine(data []byte) string {
	var t struct {
		Tenant string `json:"tenant"`
	}
	json.Unmarshal(data, &t)
	return t.Tenant
}

// compactJournal rebuilds a clean journal image from raw: the header
// plus every line that verifies, byte-for-byte as originally written.
// Used after salvage so the rewritten log carries exactly the records
// the replay kept.
func compactJournal(raw []byte) []byte {
	hdr, err := json.Marshal(journalLine{Format: journalFormat, Version: journalVersion})
	if err != nil {
		return nil
	}
	out := append(hdr, '\n')
	oldHdr, rest, ok := sim.SplitLine(raw)
	if !ok {
		return out
	}
	// Mirror parseJournal: without a verified header the version is
	// unknowable, so salvage keeps nothing and neither does compaction.
	var h journalLine
	if json.Unmarshal(oldHdr, &h) != nil || h.Format != journalFormat || h.Version != journalVersion {
		return out
	}
	seenSubmit := make(map[string]bool)
	for len(rest) > 0 {
		line, next, lineOK := sim.SplitLine(rest)
		if !lineOK {
			break
		}
		rest = next
		var l journalLine
		if err := json.Unmarshal(line, &l); err != nil {
			continue
		}
		switch l.K {
		case journalKindSubmit:
			var rec SubmitRecord
			if sim.EntrySum(journalKindSubmit, l.ID, tenantOfLine(l.Data), l.Data) != l.Sum ||
				json.Unmarshal(l.Data, &rec) != nil || rec.ID != l.ID || rec.ID == "" ||
				seenSubmit[rec.ID] {
				continue
			}
			seenSubmit[rec.ID] = true
		case journalKindState:
			var rec StateRecord
			if sim.EntrySum(journalKindState, l.ID, "", l.Data) != l.Sum ||
				json.Unmarshal(l.Data, &rec) != nil || rec.ID != l.ID {
				continue
			}
		default:
			continue
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return out
}

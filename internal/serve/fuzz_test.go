package serve

import (
	"errors"
	"testing"
	"unicode/utf8"
)

// FuzzDecodeRequest holds the request decoder to its contract: any byte
// sequence either decodes into a validated Request or fails with a typed
// error (ErrBadSpec or ErrSpecTooLarge) — never a panic, and never an
// allocation proportional to a number the client made up (over-limit
// grids are rejected by the limit check, not materialized).
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"sections":["table2"]}`))
	f.Add([]byte(`{"sections":["table2","flooding"],"seeds":4,"windows":8}`))
	f.Add([]byte(`{"tenant":"alpha","sections":["thresholds"],"thresholds":[139000,70000]}`))
	f.Add([]byte(`{"sections":[]}`))
	f.Add([]byte(`{"sections":["nonesuch"]}`))
	f.Add([]byte(`{"sections":["table2"],"seeds":-1}`))
	f.Add([]byte(`{"sections":["table2"],"seeds":999999999}`))
	f.Add([]byte(`{"sections":["table2"],"timeout_ms":1e18}`))
	f.Add([]byte(`{"sections":["table2"]}{"x":1}`))
	f.Add([]byte(`{"sections":["table2"],"unknown":true}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte("\x00\xff\xfe"))

	lim := DefaultLimits()
	f.Fuzz(func(t *testing.T, raw []byte) {
		req, err := DecodeRequest(raw, lim)
		if err != nil {
			// Every failure must carry one of the two typed marks so the
			// HTTP layer can map it to 400 or 413.
			if !errors.Is(err, ErrBadSpec) && !errors.Is(err, ErrSpecTooLarge) {
				t.Fatalf("untyped decode error %v for input %q", err, raw)
			}
			return
		}
		// A request the decoder accepts must be within every limit the
		// server admits by...
		if len(req.Sections) == 0 || len(req.Sections) > lim.MaxSections {
			t.Fatalf("accepted request with %d sections", len(req.Sections))
		}
		if req.Seeds < 0 || req.Seeds > lim.MaxSeeds ||
			req.Windows < 0 || req.Windows > lim.MaxWindows ||
			req.Trials < 0 || req.Trials > lim.MaxTrials ||
			req.TimeoutMs < 0 {
			t.Fatalf("accepted request with out-of-range knobs: %+v", req)
		}
		if len(req.Thresholds) > lim.MaxThresholds {
			t.Fatalf("accepted request with %d thresholds", len(req.Thresholds))
		}
		// ...and must expand into a bounded campaign, or fail typed.
		spec, _, berr := BuildCampaign(req, testEval(), lim)
		if berr != nil {
			if !errors.Is(berr, ErrBadSpec) && !errors.Is(berr, ErrSpecTooLarge) {
				t.Fatalf("untyped build error %v for request %+v", berr, req)
			}
			return
		}
		if len(spec.Cells) > lim.MaxCells {
			t.Fatalf("built campaign with %d cells, limit %d", len(spec.Cells), lim.MaxCells)
		}
		for _, name := range req.Sections {
			if !utf8.ValidString(name) {
				// JSON decoding replaces invalid UTF-8; reaching here with an
				// invalid name would mean the validator let a non-registry
				// section through.
				t.Fatalf("accepted non-UTF8 section name %q", name)
			}
		}
	})
}

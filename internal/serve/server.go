// Package serve is the multi-tenant campaign serving layer: a
// long-running HTTP/JSON front end over the campaign engine. Tenants
// POST campaign specs; the server schedules them onto one shared
// Workers-bounded simulation pool with per-tenant fair queuing (each
// tenant runs at most one campaign at a time, so a tenant with a deep
// backlog cannot starve the others), admission control (bounded queue
// depth, 429 + Retry-After load shedding), per-request deadlines that
// propagate into the sim runner's context/stall-watchdog machinery, and
// cross-tenant deduplication through the checkpoint's content-addressed
// result cache — two tenants asking for overlapping grids pay for the
// overlap once.
//
// Robustness is the point: request handlers are panic-isolated, each
// tenant gets a retry budget and a circuit breaker reusing the campaign
// engine's self-healing, and SIGTERM/SIGINT triggers a graceful drain —
// stop admitting, let in-flight cells finish or reach the checkpoint,
// then exit. The servetest torture harness (internal/servetest) holds
// the whole stack to the same standard the chaos harness holds the
// persistence layer to: byte-identical results under concurrency,
// injected I/O faults, and kill/restart.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"tivapromi/internal/campaign"
	"tivapromi/internal/iofault"
	"tivapromi/internal/obs"
	"tivapromi/internal/report"
	"tivapromi/internal/sim"
)

// ErrDraining marks rejections issued while the server winds down.
var ErrDraining = errors.New("serve: server is draining")

// ErrRecoveryTimeout marks a journal-recovered job that sat in the
// recovering state past Config.RecoveryTimeout — the per-state deadline
// that turns "wedged forever" into a typed failure.
var ErrRecoveryTimeout = errors.New("serve: recovery budget exhausted while waiting to re-run")

// ErrRecoveryDisabled marks journal-replayed jobs failed at startup
// because the operator booted with recovery off (-recover=false).
var ErrRecoveryDisabled = errors.New("serve: interrupted by a restart and recovery is disabled")

// ErrIdempotencyConflict marks a submission reusing an Idempotency-Key
// with a different spec fingerprint — answered 409, never executed.
var ErrIdempotencyConflict = errors.New("serve: idempotency key reused with a different spec")

// Config tunes one Server.
type Config struct {
	// Workers bounds simulations in flight across every tenant's
	// campaigns — the one shared pool (0 = GOMAXPROCS via campaign).
	Workers int
	// QueueDepth bounds each tenant's pending (not yet running) jobs;
	// submissions beyond it are shed with 429 + Retry-After (0 = 8).
	QueueDepth int
	// MaxTenants bounds distinct tenants; new tenants beyond it are
	// rejected with 429 (0 = 64).
	MaxTenants int
	// RetryBudget seeds each tenant's shared cell re-attempt pool — the
	// campaign engine's self-healing allowance, scoped per tenant so one
	// tenant's flaky grid cannot burn everyone's retries (0 = 32).
	RetryBudget int
	// BreakerAfter is the per-cell circuit breaker passed through to the
	// campaign engine (0 = campaign default).
	BreakerAfter int
	// TenantBreakAfter trips a per-tenant circuit breaker after this
	// many consecutive failed jobs; further submissions are rejected
	// with 429 until TenantCooldown passes (0 = 3).
	TenantBreakAfter int
	// TenantCooldown is how long a tripped tenant breaker stays open
	// (0 = 30s).
	TenantCooldown time.Duration
	// Limits bounds what one request may ask for (zero fields =
	// DefaultLimits).
	Limits Limits
	// BaseEval is the evaluation every request starts from before its
	// overrides (zero = campaign.DefaultEval()).
	BaseEval campaign.Eval
	// CheckpointPath, when non-empty, arms the shared content-addressed
	// result cache: one sim checkpoint all tenants' campaigns read and
	// write, which is both crash recovery and cross-tenant dedup.
	CheckpointPath string
	// FS is the filesystem seam under the shared cache (nil = the real
	// filesystem; the torture harness injects iofault.Chaos here).
	FS iofault.FS
	// PerRunTimeout bounds one simulation (0 = none).
	PerRunTimeout time.Duration
	// StallTimeout arms the sim runner's stall watchdog (0 = off).
	StallTimeout time.Duration
	// JobTimeout is the default whole-job deadline when a request does
	// not set timeout_ms (0 = none).
	JobTimeout time.Duration
	// DrainTimeout is the grace Drain gives in-flight jobs before
	// force-cancelling them (completed cells are already checkpointed,
	// so a force-cancelled job loses no finished work) (0 = 30s).
	DrainTimeout time.Duration
	// JournalPath, when non-empty, arms the write-ahead job journal:
	// every accepted submission is fsynced to this log before its 202,
	// and a restarted server replays it — re-admitting interrupted jobs
	// and answering duplicate Idempotency-Key submissions with the
	// original job id. Empty = journal off (no behavior change).
	JournalPath string
	// DisableRecovery boots with the journal armed but without
	// re-admitting replayed jobs: anything interrupted is failed with
	// ErrRecoveryDisabled instead of re-run. Idempotency-key answers
	// still work.
	DisableRecovery bool
	// RecoveryTimeout is the per-state deadline for recovering jobs: a
	// re-admitted job still waiting to re-run after this long fails
	// with ErrRecoveryTimeout instead of wedging (0 = 5m).
	RecoveryTimeout time.Duration
	// Log, when non-nil, receives one-line operational narration.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 64
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 32
	}
	if c.TenantBreakAfter <= 0 {
		c.TenantBreakAfter = 3
	}
	if c.TenantCooldown <= 0 {
		c.TenantCooldown = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.RecoveryTimeout <= 0 {
		c.RecoveryTimeout = 5 * time.Minute
	}
	if c.BaseEval.SeedsPerPoint == 0 {
		c.BaseEval = campaign.DefaultEval()
	}
	c.Limits = c.Limits.withDefaults()
	return c
}

// tenant is one client's serving state: a bounded FIFO of pending jobs,
// the at-most-one running job, the tenant-scoped retry budget, and the
// consecutive-failure circuit breaker.
type tenant struct {
	name      string
	queue     []*job
	pending   int // reservations between journal append and enqueue
	active    *job
	budget    atomic.Int64 // shared across the tenant's jobs
	fails     int          // consecutive failed jobs
	openUntil time.Time    // tenant breaker: reject submissions until then
}

// Counters aggregates the server's lifetime admission accounting.
type Counters struct {
	Admitted  atomic.Int64
	Rejected  atomic.Int64
	Completed atomic.Int64
	Failed    atomic.Int64
	Canceled  atomic.Int64
	Panics    atomic.Int64
}

// Server is the multi-tenant campaign server. Construct with New, mount
// Handler on an http.Server, and call Drain then Close on shutdown.
type Server struct {
	cfg  Config
	ck   *sim.Checkpoint
	gate chan struct{}

	baseCtx context.Context
	stop    context.CancelFunc

	journal *Journal // nil when JournalPath is empty: every append no-ops

	mu       sync.Mutex
	tenants  map[string]*tenant
	jobs     map[string]*job
	idem     map[string]*job // tenant\x00key → job, rebuilt from the journal
	nextID   int
	draining bool

	wg       sync.WaitGroup // running job goroutines
	counters Counters

	// runCampaign is the campaign entry point; tests override it to
	// control job timing without running real simulations.
	runCampaign func(context.Context, campaign.Spec, campaign.Options) (*campaign.ResultSet, error)
}

// New builds a Server, loading (or creating) the shared result cache
// when CheckpointPath is set.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	s := &Server{
		cfg:         cfg,
		gate:        make(chan struct{}, workers),
		tenants:     make(map[string]*tenant),
		jobs:        make(map[string]*job),
		idem:        make(map[string]*job),
		runCampaign: campaign.Run,
	}
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	if cfg.CheckpointPath != "" {
		ck, err := sim.LoadCheckpointFS(cfg.CheckpointPath, cfg.FS)
		if err != nil {
			return nil, fmt.Errorf("serve: shared cache: %w", err)
		}
		if note := ck.LoadReport().Note(); note != "" {
			s.logf("serve: shared cache: %s", note)
		}
		s.ck = ck
	}
	if cfg.JournalPath != "" {
		journal, replayed, err := OpenJournal(cfg.JournalPath, cfg.FS)
		if err != nil {
			return nil, fmt.Errorf("serve: journal: %w", err)
		}
		s.journal = journal
		if note := journal.LoadReport().Note(); note != "" {
			s.logf("serve: %s", note)
		}
		s.recoverJobs(replayed)
	}
	return s, nil
}

// JournalReport returns what the journal load found on disk (the zero
// report when the journal is off).
func (s *Server) JournalReport() JournalLoadReport { return s.journal.LoadReport() }

// recoverJobs rebuilds the job ledger from the replayed journal: every
// job is re-registered (so status and idempotency answers survive the
// restart), terminal jobs keep their recorded outcome as status-only
// tombstones, and interrupted jobs — queued, recovering, running, or
// done with outputs lost to the crash — are re-admitted in recovering
// state. Their cells dedup against the shared checkpoint cache, so
// recovery re-renders rather than re-simulates. Runs during New, before
// any request or worker goroutine exists.
func (s *Server) recoverJobs(replayed []ReplayedJob) {
	recovered := 0
	for _, rj := range replayed {
		var n int
		if _, err := fmt.Sscanf(rj.Submit.ID, "j%06d", &n); err == nil && n > s.nextID {
			// Resume id allocation past every journaled id so a
			// restarted server never reissues one.
			s.nextID = n
		}
		t := s.tenants[rj.Submit.Tenant]
		if t == nil {
			// Recovery honors admissions from the previous boot even
			// past MaxTenants — they were already accepted once.
			t = &tenant{name: rj.Submit.Tenant}
			t.budget.Store(int64(s.cfg.RetryBudget))
			s.tenants[rj.Submit.Tenant] = t
		}
		req := rj.Submit.Request
		timeout := time.Duration(req.TimeoutMs) * time.Millisecond
		if timeout <= 0 {
			timeout = s.cfg.JobTimeout
		}
		spec, ev, buildErr := BuildCampaign(req, s.cfg.BaseEval, s.cfg.Limits)
		j := newJob(rj.Submit.ID, rj.Submit.Tenant, append([]string(nil), req.Sections...), spec, ev, timeout)
		j.Fingerprint = rj.Submit.Fingerprint
		j.IdemKey = rj.Submit.IdemKey
		s.jobs[j.ID] = j
		if j.IdemKey != "" {
			s.idem[idemKey(j.Tenant, j.IdemKey)] = j
		}
		switch {
		case rj.State == StateFailed || rj.State == StateCanceled:
			// Tombstone: the outcome is known; only status survives.
			err := errors.New(rj.Err)
			if rj.Err == "" {
				err = fmt.Errorf("serve: journaled as %s", rj.State)
			}
			j.finish(rj.State, nil, nil, err)
		case buildErr != nil:
			// The section registry or limits changed across the restart.
			j.finish(StateFailed, nil, nil, fmt.Errorf("serve: recovery rebuild: %w", buildErr))
			s.journalState(j, StateFailed)
		case s.cfg.DisableRecovery:
			j.finish(StateFailed, nil, nil, ErrRecoveryDisabled)
			s.journalState(j, StateFailed)
		default:
			j.Recovered = true
			j.mu.Lock()
			j.state = StateRecovering
			// New incarnation: every SSE id the previous life issued
			// carries a smaller epoch, so it can never alias into this
			// re-run's numbering.
			j.epoch = rj.Epoch + 1
			j.mu.Unlock()
			t.queue = append(t.queue, j)
			recovered++
			obs.JobsRecovered.Inc()
			obs.QueueDepth.Add(1)
			s.journalState(j, StateRecovering)
			j.armDeadline(StateRecovering, s.cfg.RecoveryTimeout, ErrRecoveryTimeout, s.onPreRunExpiry)
			s.logf("serve: %s: job %s re-admitted from journal (was %s)", j.Tenant, j.ID, rj.State)
		}
	}
	if recovered > 0 {
		obs.Emit("journal-recovered", "jobs", fmt.Sprint(recovered))
		s.logf("serve: recovered %d interrupted job(s) from the journal", recovered)
	}
	for _, t := range s.tenants {
		s.dispatchLocked(t)
	}
}

// onPreRunExpiry books a job failed by its pre-run state deadline. It
// runs on the timer goroutine, after finishIf already settled the job.
func (s *Server) onPreRunExpiry(j *job) {
	s.counters.Failed.Add(1)
	obs.JobsFailed.Inc()
	obs.QueueDepth.Add(-1)
	s.journalState(j, StateFailed)
	obs.Emit("job-deadline", "job", j.ID, "tenant", j.Tenant)
	s.logf("serve: %s: job %s failed: %v", j.Tenant, j.ID, ErrRecoveryTimeout)
}

// idemKey builds the tenant-scoped idempotency map key.
func idemKey(tenant, key string) string { return tenant + "\x00" + key }

// journalState appends one lifecycle transition to the journal,
// best-effort: the submit record is the durable admission; a lost state
// record only means the job replays from an earlier state and re-runs
// against the result cache after a crash.
func (s *Server) journalState(j *job, state JobState) {
	if s.journal == nil {
		return
	}
	rec := StateRecord{ID: j.ID, State: state}
	rec.Epoch, rec.Seq = j.watermark()
	j.mu.Lock()
	if j.err != nil {
		rec.Error = j.err.Error()
	}
	j.mu.Unlock()
	if err := s.journal.AppendState(rec); err != nil {
		s.logf("serve: journal state %s for %s: %v", state, j.ID, err)
	}
}

// SetRunCampaignForTest overrides the campaign entry point (nil
// restores campaign.Run). Unit tests use it to hold jobs open and
// observe scheduling order; it is never called by production code.
func (s *Server) SetRunCampaignForTest(fn func(context.Context, campaign.Spec, campaign.Options) (*campaign.ResultSet, error)) {
	if fn == nil {
		fn = campaign.Run
	}
	s.runCampaign = fn
}

// CacheStats returns the shared result cache's counters (zero when no
// cache is armed).
func (s *Server) CacheStats() sim.CacheStats { return s.ck.CacheStats() }

// CountersSnapshot returns the lifetime admission counters.
func (s *Server) CountersSnapshot() (admitted, rejected, completed, failed, canceled, panics int64) {
	return s.counters.Admitted.Load(), s.counters.Rejected.Load(),
		s.counters.Completed.Load(), s.counters.Failed.Load(),
		s.counters.Canceled.Load(), s.counters.Panics.Load()
}

// rejection describes a refused submission.
type rejection struct {
	status     int // HTTP status (429 or 503)
	retryAfter int // seconds for the Retry-After header
	reason     string
}

// submit admits one decoded request into its tenant's queue, or
// explains the refusal. Admission is O(1) and never blocks on running
// work — load shedding must stay responsive precisely when the server
// is busiest. With the journal armed, the submit record is fsynced
// between reservation and enqueue (off the server lock: an fsync under
// s.mu would serialize every status poll behind the disk), so the 202
// never outruns durability. replayed reports an idempotent duplicate —
// the returned job is the original, nothing was executed or journaled.
func (s *Server) submit(tenantName string, req Request) (j *job, replayed bool, rej *rejection) {
	spec, ev, err := BuildCampaign(req, s.cfg.BaseEval, s.cfg.Limits)
	if err != nil {
		return nil, false, &rejection{status: statusForSpecErr(err), retryAfter: 0, reason: err.Error()}
	}
	timeout := time.Duration(req.TimeoutMs) * time.Millisecond
	if timeout <= 0 {
		timeout = s.cfg.JobTimeout
	}
	fp := requestFingerprint(req)

	s.mu.Lock()
	// Idempotent replay is a read: it resolves before the drain check so
	// a client retrying its accepted submission during a drain still
	// learns its job id instead of a useless 503.
	if req.IdempotencyKey != "" {
		if orig := s.idem[idemKey(tenantName, req.IdempotencyKey)]; orig != nil {
			if orig.Fingerprint != fp {
				defer s.mu.Unlock()
				return nil, false, s.rejectLocked(tenantName, &rejection{
					status: 409,
					reason: fmt.Sprintf("%v (key %q is bound to job %s)", ErrIdempotencyConflict, req.IdempotencyKey, orig.ID),
				})
			}
			s.mu.Unlock()
			obs.IdempotentHits.Inc()
			obs.Emit("idempotent-hit", "tenant", tenantName, "job", orig.ID, "key", req.IdempotencyKey)
			return orig, true, nil
		}
	}
	if s.draining {
		defer s.mu.Unlock()
		return nil, false, s.rejectLocked(tenantName, &rejection{status: 503, retryAfter: int(s.cfg.DrainTimeout/time.Second) + 1, reason: ErrDraining.Error()})
	}
	t := s.tenants[tenantName]
	if t == nil {
		if len(s.tenants) >= s.cfg.MaxTenants {
			defer s.mu.Unlock()
			return nil, false, s.rejectLocked(tenantName, &rejection{status: 429, retryAfter: 30, reason: "serve: tenant table full"})
		}
		t = &tenant{name: tenantName}
		t.budget.Store(int64(s.cfg.RetryBudget))
		s.tenants[tenantName] = t
	}
	if until := t.openUntil; time.Now().Before(until) {
		defer s.mu.Unlock()
		return nil, false, s.rejectLocked(tenantName, &rejection{
			status:     429,
			retryAfter: int(time.Until(until)/time.Second) + 1,
			reason:     fmt.Sprintf("serve: tenant %q circuit breaker open after %d consecutive failed jobs", tenantName, t.fails),
		})
	}
	if len(t.queue)+t.pending >= s.cfg.QueueDepth {
		// Retry-After scales with the backlog: a deeper queue means a
		// longer wait before a slot frees up. pending counts admissions
		// between reservation and enqueue, so concurrent submissions
		// cannot overshoot the depth through the journal-append window.
		defer s.mu.Unlock()
		return nil, false, s.rejectLocked(tenantName, &rejection{status: 429, retryAfter: 2 * (len(t.queue) + t.pending), reason: "serve: tenant queue full"})
	}

	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	j = newJob(id, tenantName, append([]string(nil), req.Sections...), spec, ev, timeout)
	j.Fingerprint = fp
	j.IdemKey = req.IdempotencyKey
	s.jobs[id] = j
	if j.IdemKey != "" {
		s.idem[idemKey(tenantName, j.IdemKey)] = j
	}
	t.pending++
	s.mu.Unlock()

	// Write-ahead: the job becomes runnable only after its submit record
	// is durable. On failure the reservation is rolled back and the
	// client told to retry — accepting an unjournaled job would be a
	// durability lie.
	if s.journal != nil {
		err := s.journal.AppendSubmit(SubmitRecord{
			ID: id, Tenant: tenantName, IdemKey: j.IdemKey, Fingerprint: fp, Request: req,
		})
		if err != nil {
			s.mu.Lock()
			delete(s.jobs, id)
			if j.IdemKey != "" {
				delete(s.idem, idemKey(tenantName, j.IdemKey))
			}
			t.pending--
			defer s.mu.Unlock()
			s.logf("serve: %s: journal append failed, rejecting submission: %v", tenantName, err)
			return nil, false, s.rejectLocked(tenantName, &rejection{status: 503, retryAfter: 5, reason: fmt.Sprintf("serve: journal append: %v", err)})
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	t.pending--
	if s.draining {
		// Drain began inside the journal-append window; the queued-job
		// sweep already ran, so settle this one the same way here.
		delete(s.jobs, id)
		if j.IdemKey != "" {
			delete(s.idem, idemKey(tenantName, j.IdemKey))
		}
		return nil, false, s.rejectLocked(tenantName, &rejection{status: 503, retryAfter: int(s.cfg.DrainTimeout/time.Second) + 1, reason: ErrDraining.Error()})
	}
	t.queue = append(t.queue, j)
	s.counters.Admitted.Add(1)
	obs.JobsAdmitted.Inc()
	obs.QueueDepth.Add(1)
	s.dispatchLocked(t)
	return j, false, nil
}

// requestFingerprint content-addresses a submission for idempotency:
// the SHA-256 of the request's canonical JSON with the scoping fields
// (tenant, the key itself) cleared — two bodies asking for the same
// work fingerprint identically regardless of which tenant or key
// carries them.
func requestFingerprint(req Request) string {
	req.Tenant = ""
	req.IdempotencyKey = ""
	raw, err := json.Marshal(req)
	if err != nil {
		return "unfingerprintable"
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// rejectLocked books one shed submission in both accounting planes and
// hands the rejection back. Requires s.mu held.
func (s *Server) rejectLocked(tenantName string, r *rejection) *rejection {
	s.counters.Rejected.Add(1)
	obs.JobsRejected.Inc()
	obs.Emit("job-rejected",
		"tenant", tenantName,
		"status", fmt.Sprint(r.status),
		"reason", r.reason)
	return r
}

// statusForSpecErr maps decode/build failures to HTTP statuses.
func statusForSpecErr(err error) int {
	if errors.Is(err, ErrSpecTooLarge) {
		return 413
	}
	return 400
}

// dispatchLocked starts the tenant's next queued job when none is
// running. One active job per tenant IS the fair-queuing discipline:
// every tenant with work holds exactly one campaign against the shared
// gate, so pool slots divide across tenants, not across backlogs.
// Requires s.mu held.
func (s *Server) dispatchLocked(t *tenant) {
	if t.active != nil || s.draining {
		return
	}
	for len(t.queue) > 0 {
		j := t.queue[0]
		t.queue = t.queue[1:]
		obs.QueueDepth.Add(-1)
		if j.terminal() {
			// Settled while queued (a recovery-budget expiry); already
			// booked by whoever settled it. Keep popping.
			continue
		}
		t.active = j
		obs.ActiveJobs.Add(1)
		s.wg.Add(1)
		go s.runJob(t, j)
		return
	}
}

// runJob executes one admitted campaign end to end: context assembly
// (server lifetime + per-job deadline), the hardened runner over the
// shared cache, tenant-scoped self-healing, rendering, and tenant
// bookkeeping. It never panics the server: the campaign engine already
// converts worker panics into cell errors, and this goroutine's own
// epilogue is defer-protected.
func (s *Server) runJob(t *tenant, j *job) {
	defer s.wg.Done()
	span := obs.StartSpan("job-run", "serve", "job", j.ID, "tenant", t.name)
	state, rep, svg, jobErr := s.executeJob(t, j)
	settled := j.finishIf("", state, rep, svg, jobErr)
	if settled {
		s.journalState(j, state)
	}
	span.End("state", string(state))
	s.logf("serve: %s: job %s %s", t.name, j.ID, state)

	// Reconstruct the queue-wait leg of the lifecycle retroactively —
	// queued→started is only known once the job actually started — and
	// book the admission-to-settle latency.
	j.mu.Lock()
	created, started, finished := j.created, j.started, j.finished
	j.mu.Unlock()
	if !started.IsZero() && started.After(created) {
		obs.SpanBetween("job-queue-wait", "serve", created, started,
			"job", j.ID, "tenant", t.name)
	}
	if !finished.IsZero() {
		obs.JobSeconds.Observe(finished.Sub(created).Seconds())
	}

	// The epilogue runs whatever happened above — a panicking job must
	// never leave its tenant marked active, or the queue wedges.
	s.mu.Lock()
	defer s.mu.Unlock()
	t.active = nil
	obs.ActiveJobs.Add(-1)
	if !settled {
		// A pre-run deadline beat this goroutine to the terminal
		// transition and booked the outcome itself.
		s.dispatchLocked(t)
		return
	}
	switch state {
	case StateDone:
		s.counters.Completed.Add(1)
		obs.JobsCompleted.Inc()
		t.fails = 0
	case StateCanceled:
		s.counters.Canceled.Add(1)
		obs.JobsCanceled.Inc()
	default:
		s.counters.Failed.Add(1)
		obs.JobsFailed.Inc()
		t.fails++
		if t.fails >= s.cfg.TenantBreakAfter {
			t.openUntil = time.Now().Add(s.cfg.TenantCooldown)
			obs.TenantBreakerTrips.Inc()
			obs.Emit("tenant-breaker-open",
				"tenant", t.name,
				"fails", fmt.Sprint(t.fails),
				"cooldown", s.cfg.TenantCooldown.String())
			obs.Instant("tenant-breaker-open", "serve", "tenant", t.name)
			s.logf("serve: %s: circuit breaker OPEN for %s after %d consecutive failures",
				t.name, s.cfg.TenantCooldown, t.fails)
		}
	}
	s.dispatchLocked(t)
}

// executeJob runs the campaign and renders the outputs, converting any
// panic on the job path into a failed job (the server survives).
func (s *Server) executeJob(t *tenant, j *job) (state JobState, rep, svg []byte, jobErr error) {
	defer func() {
		if rec := recover(); rec != nil {
			s.counters.Panics.Add(1)
			obs.HandlerPanics.Inc()
			obs.Emit("job-panic", "tenant", t.name, "job", j.ID, "value", fmt.Sprint(rec))
			s.logf("serve: %s: job %s PANIC: %v", t.name, j.ID, rec)
			state, rep, svg, jobErr = StateFailed, nil, nil, fmt.Errorf("serve: job panicked: %v", rec)
		}
	}()
	var ctx context.Context
	var cancel context.CancelFunc
	if j.Timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, j.Timeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	defer cancel()
	if !j.start(cancel) {
		// Settled between dispatch and here (deadline race): report the
		// terminal state as-is; runJob's conditional finish will no-op.
		st, jrep, jsvg, jerr := j.snapshot()
		return st, jrep, jsvg, jerr
	}
	s.journalState(j, StateRunning)
	s.logf("serve: %s: job %s started (%d cells)", t.name, j.ID, len(j.Spec.Cells))

	runner := sim.NewRunner()
	runner.Config.Workers = s.cfg.Workers
	runner.Config.PerRunTimeout = s.cfg.PerRunTimeout
	runner.Config.StallTimeout = s.cfg.StallTimeout
	runner.Checkpoint = s.ck

	before := s.ck.CacheStats()
	rs, err := s.runCampaign(ctx, j.Spec, campaign.Options{
		Workers:           s.cfg.Workers,
		Runner:            runner,
		Gate:              s.gate,
		Tenant:            t.name,
		OnProgress:        j.onProgress,
		SharedRetryBudget: &t.budget,
		BreakerAfter:      s.cfg.BreakerAfter,
	})
	hits := s.ck.CacheStats().Hits() - before.Hits()
	j.mu.Lock()
	j.dedupHits = hits
	j.mu.Unlock()
	return s.settle(j, rs, err)
}

// settle classifies a finished campaign and renders its outputs.
func (s *Server) settle(j *job, rs *campaign.ResultSet, err error) (JobState, []byte, []byte, error) {
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		return StateCanceled, nil, nil, err
	case err != nil:
		return StateFailed, nil, nil, err
	}
	if skipped := rs.Skipped(); len(skipped) > 0 {
		return StateFailed, nil, nil, fmt.Errorf("serve: %d cell(s) skipped after self-healing: %v", len(skipped), skipped)
	}
	if cellErr := rs.Err(); cellErr != nil {
		return StateFailed, nil, nil, cellErr
	}
	rep, svg, rerr := RenderReport(j.Eval, rs, j.Names)
	if rerr != nil {
		return StateFailed, nil, nil, rerr
	}
	return StateDone, rep, svg, nil
}

// RenderReport renders the named sections from an executed result set
// with exactly the separator discipline cmd/experiments uses, so a
// served report is byte-identical to the CLI run of the same sections.
// The second return value is the fig4 SVG when that section was part of
// the request (nil otherwise).
func RenderReport(ev campaign.Eval, rs *campaign.ResultSet, names []string) (text, svg []byte, err error) {
	var buf, svgBuf bytes.Buffer
	rc := &report.Context{Eval: ev, Results: rs, SVGSink: &svgBuf}
	for i, name := range names {
		def, ok := report.Section(name)
		if !ok {
			return nil, nil, fmt.Errorf("serve: unknown section %q", name)
		}
		if err := def.Render(&buf, rc); err != nil {
			return nil, nil, err
		}
		if len(names) > 1 || i < len(names)-1 {
			buf.WriteByte('\n')
		}
	}
	if svgBuf.Len() == 0 {
		return buf.Bytes(), nil, nil
	}
	return buf.Bytes(), svgBuf.Bytes(), nil
}

// Job looks a job up by id.
func (s *Server) Job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Draining reports whether the server has stopped admitting.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain winds the server down gracefully: admission closes immediately
// (submissions get 503 + Retry-After), queued jobs are cancelled where
// they stand, and in-flight jobs get DrainTimeout to finish — their
// completed cells are already in the shared cache, so even a job that
// is then force-cancelled loses no finished work. The shared cache is
// flushed before returning. Drain is idempotent; ctx bounds the whole
// wait on top of DrainTimeout.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	var dropped []*job
	cleared := 0
	if !already {
		for _, t := range s.tenants {
			cleared += len(t.queue)
			for _, qj := range t.queue {
				// Jobs already settled in the queue (recovery-budget
				// expiries) were booked by whoever settled them.
				if !qj.terminal() {
					dropped = append(dropped, qj)
				}
			}
			t.queue = nil
		}
	}
	s.mu.Unlock()
	span := obs.StartSpan("drain", "serve", "dropped", fmt.Sprint(len(dropped)))
	defer span.End()
	obs.QueueDepth.Add(-int64(cleared))
	obs.Emit("drain-start", "dropped", fmt.Sprint(len(dropped)))
	for _, j := range dropped {
		if j.finishIf("", StateCanceled, nil, nil, ErrDraining) {
			s.journalState(j, StateCanceled)
			s.counters.Canceled.Add(1)
			obs.JobsCanceled.Inc()
		}
	}
	s.logf("serve: draining: %d queued job(s) cancelled, waiting up to %s for in-flight work", len(dropped), s.cfg.DrainTimeout)

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	grace := time.NewTimer(s.cfg.DrainTimeout)
	defer grace.Stop()
	select {
	case <-finished:
	case <-grace.C:
		// Grace expired: checkpoint what is in flight by cancelling it.
		s.mu.Lock()
		var running []*job
		for _, t := range s.tenants {
			if t.active != nil {
				running = append(running, t.active)
			}
		}
		s.mu.Unlock()
		s.logf("serve: drain grace expired, force-cancelling %d running job(s)", len(running))
		for _, j := range running {
			j.forceCancel()
		}
		select {
		case <-finished:
		case <-ctx.Done():
			return ctx.Err()
		}
	case <-ctx.Done():
		return ctx.Err()
	}
	if err := s.ck.Flush(); err != nil {
		return fmt.Errorf("serve: drain flush: %w", err)
	}
	obs.Emit("drained")
	s.logf("serve: drained")
	return nil
}

// Close hard-stops the server: every running job's context dies and the
// job goroutines are awaited. Safe after (or instead of) Drain; the
// torture harness uses a bare Close as its mid-flight kill.
func (s *Server) Close() error {
	s.mu.Lock()
	s.draining = true
	var dropped []*job
	cleared := 0
	for _, t := range s.tenants {
		cleared += len(t.queue)
		for _, qj := range t.queue {
			if !qj.terminal() {
				dropped = append(dropped, qj)
			}
		}
		t.queue = nil
	}
	s.mu.Unlock()
	obs.QueueDepth.Add(-int64(cleared))
	for _, j := range dropped {
		if j.finishIf("", StateCanceled, nil, nil, ErrDraining) {
			s.journalState(j, StateCanceled)
			s.counters.Canceled.Add(1)
			obs.JobsCanceled.Inc()
		}
	}
	s.stop()
	s.wg.Wait()
	// The journal closes after the last job goroutine has appended its
	// terminal record; a poweroff-style kill (chaos harness) makes these
	// appends fail instead, which is exactly the point.
	if err := s.journal.Close(); err != nil {
		s.logf("serve: journal close: %v", err)
	}
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	}
}

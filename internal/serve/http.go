// HTTP front end: routing, tenant resolution, admission responses,
// SSE streaming, and the panic-isolation middleware. Every handler runs
// behind recoverMiddleware, so a bug in one request's path answers 500
// and increments a counter instead of killing every tenant's server.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"tivapromi/internal/obs"
	"tivapromi/internal/sim"
)

// Handler returns the server's HTTP API:
//
//	POST /v1/campaigns              submit a campaign (202, 400, 413, 429, 503)
//	GET  /v1/campaigns/{id}         job status JSON
//	GET  /v1/campaigns/{id}/events  SSE Progress/ETA stream
//	GET  /v1/campaigns/{id}/report  rendered sections (text/plain; 409 until done)
//	GET  /v1/campaigns/{id}/figure.svg  fig4 SVG (404 unless the job computed it)
//	GET  /v1/stats                  server + cache census
//	GET  /metrics                   Prometheus text exposition (obs.Default)
//	GET  /healthz                   liveness (503 while draining)
//
// Job endpoints are tenant-scoped: the X-Tenant header must match the
// submitting tenant or the job is a 404 — tenants cannot enumerate or
// read each other's work.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/campaigns/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/campaigns/{id}/figure.svg", s.handleFigure)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return s.recoverMiddleware(mux)
}

// recoverMiddleware converts a handler panic into a 500 — one request
// dies, the server does not. If the response already started (an SSE
// stream mid-flight), the connection is simply dropped.
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.counters.Panics.Add(1)
				obs.HandlerPanics.Inc()
				s.logf("serve: PANIC in %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				// Best-effort 500; ignored if headers are already out.
				writeJSONError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// tenantOf resolves the requesting tenant: the X-Tenant header, else
// the body's tenant field (submit only), else "default".
func tenantOf(r *http.Request, bodyTenant string) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	if bodyTenant != "" {
		return bodyTenant
	}
	return "default"
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.Limits.MaxBodyBytes+1))
	if err != nil {
		writeJSONError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return
	}
	req, err := DecodeRequest(body, s.cfg.Limits)
	if err != nil {
		writeJSONError(w, statusForSpecErr(err), err.Error())
		return
	}
	tenantName := tenantOf(r, req.Tenant)
	if key := r.Header.Get("Idempotency-Key"); key != "" {
		req.IdempotencyKey = key
	}
	j, replayed, rej := s.submit(tenantName, req)
	if rej != nil {
		if rej.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(rej.retryAfter))
		}
		writeJSONError(w, rej.status, rej.reason)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if replayed {
		// A duplicate Idempotency-Key submission: same 202 contract, the
		// original job's status, and a header so clients can tell.
		w.Header().Set("Idempotent-Replay", "true")
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, j.status())
}

// jobFor fetches a job and enforces tenant scoping; it writes the 404
// itself when the job is missing or foreign.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok || j.Tenant != tenantOf(r, "") {
		writeJSONError(w, http.StatusNotFound, "no such job")
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, j.status())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	state, rep, _, err := j.snapshot()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(rep)
	case StateFailed, StateCanceled:
		writeJSONError(w, http.StatusConflict, fmt.Sprintf("job %s: %v", state, err))
	default:
		w.Header().Set("Retry-After", "2")
		writeJSONError(w, http.StatusConflict, fmt.Sprintf("job is %s", state))
	}
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	state, _, svg, _ := j.snapshot()
	if state != StateDone || len(svg) == 0 {
		writeJSONError(w, http.StatusNotFound, "no figure for this job (is fig4 in the sections, and is the job done?)")
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	w.Write(svg)
}

// handleEvents streams the job's Progress/ETA events as SSE. Every
// progress frame carries its monotonic sequence number as the SSE id,
// so a disconnected client reconnects with Last-Event-ID and resumes
// exactly where it left off when that id is still inside the bounded
// replay ring. A stale or absent Last-Event-ID (too old for the ring,
// or from a pre-restart incarnation of the job) cannot resume
// gap-free; the stream then leads with one "snapshot" event carrying
// the authoritative job status, followed by whatever history the ring
// still holds and the live feed — the documented snapshot-then-live
// fallback. The stream ends with one terminal "done" event when the
// job settles, or when the client goes away; either way the
// subscription is detached and nothing leaks.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeJSONError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	// An unparseable Last-Event-ID is treated as absent: snapshot-then-live.
	afterEpoch, afterSeq := parseEventID(r.Header.Get("Last-Event-ID"))
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, replay, snapshot := j.subscribe(afterEpoch, afterSeq)
	defer j.unsubscribe(ch)
	if snapshot {
		if !writeSSE(w, "snapshot", "", j.status()) {
			return
		}
	}
	for _, ev := range replay {
		if !writeSSE(w, "progress", formatEventID(ev.Epoch, ev.Seq), ev) {
			return
		}
	}
	flusher.Flush()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case ev := <-ch:
			if !writeSSE(w, "progress", formatEventID(ev.Epoch, ev.Seq), ev) {
				return
			}
			flusher.Flush()
		case <-heartbeat.C:
			// SSE comment keep-alive so idle proxies don't cut the stream.
			if _, err := io.WriteString(w, ": keep-alive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-j.done:
			// Drain anything published before the terminal transition.
			for {
				select {
				case ev := <-ch:
					if !writeSSE(w, "progress", formatEventID(ev.Epoch, ev.Seq), ev) {
						return
					}
				default:
					writeSSE(w, "done", "", j.status())
					flusher.Flush()
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

// formatEventID renders an SSE event id: the bare sequence number for a
// job's first incarnation, "<epoch>.<seq>" once a journal recovery has
// bumped the epoch. parseEventID inverts it; anything unparseable reads
// as the absent id (0, 0), which subscribe answers with the
// snapshot-then-live fallback.
func formatEventID(epoch, seq uint64) string {
	if epoch == 0 {
		return strconv.FormatUint(seq, 10)
	}
	return strconv.FormatUint(epoch, 10) + "." + strconv.FormatUint(seq, 10)
}

// parseEventID parses a Last-Event-ID header value.
func parseEventID(raw string) (epoch, seq uint64) {
	if raw == "" {
		return 0, 0
	}
	if dot := strings.IndexByte(raw, '.'); dot >= 0 {
		epoch, _ = strconv.ParseUint(raw[:dot], 10, 64)
		seq, _ = strconv.ParseUint(raw[dot+1:], 10, 64)
		return epoch, seq
	}
	seq, _ = strconv.ParseUint(raw, 10, 64)
	return 0, seq
}

// StatsReport is the /v1/stats document.
type StatsReport struct {
	Draining  bool           `json:"draining"`
	Admitted  int64          `json:"jobs_admitted"`
	Rejected  int64          `json:"jobs_rejected"`
	Completed int64          `json:"jobs_completed"`
	Failed    int64          `json:"jobs_failed"`
	Canceled  int64          `json:"jobs_canceled"`
	Panics    int64          `json:"handler_panics"`
	Cache     sim.CacheStats `json:"cache"`
	Tenants   []TenantStats  `json:"tenants"`
}

// TenantStats is one tenant's row in the stats document.
type TenantStats struct {
	Name        string `json:"name"`
	Queued      int    `json:"queued"`
	Active      bool   `json:"active"`
	BudgetLeft  int64  `json:"retry_budget_left"`
	BreakerOpen bool   `json:"breaker_open"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	admitted, rejected, completed, failed, canceled, panics := s.CountersSnapshot()
	rep := StatsReport{
		Admitted: admitted, Rejected: rejected,
		Completed: completed, Failed: failed, Canceled: canceled,
		Panics: panics,
		Cache:  s.CacheStats(),
	}
	s.mu.Lock()
	rep.Draining = s.draining
	for _, t := range s.tenants {
		rep.Tenants = append(rep.Tenants, TenantStats{
			Name: t.name, Queued: len(t.queue), Active: t.active != nil,
			BudgetLeft:  t.budget.Load(),
			BreakerOpen: time.Now().Before(t.openUntil),
		})
	}
	s.mu.Unlock()
	writeJSON(w, rep)
}

// handleMetrics serves the process-wide metric registry in Prometheus
// text exposition format. It is deliberately tenant-blind — operators
// scrape it, tenants use /v1/stats — and stays servable while
// draining, which is exactly when an operator wants to watch the
// queue gauge reach zero.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default.WritePrometheus(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSONError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, map[string]string{"status": "ok"})
}

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// ErrorEnvelope is the one shape every handler error takes: a human
// message plus a stable machine code derived from the HTTP status, so
// clients branch on "code" without parsing prose.
type ErrorEnvelope struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// errorCode maps an HTTP status to its envelope code.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "payload_too_large"
	case http.StatusTooManyRequests:
		return "too_many_requests"
	case http.StatusNotImplemented:
		return "not_implemented"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

// writeJSONError writes the unified {"error": ..., "code": ...}
// envelope with the given status. Headers set before the call (e.g.
// Retry-After on 429) survive, since WriteHeader flushes them.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorEnvelope{Error: msg, Code: errorCode(status)})
}

// writeSSE writes one SSE event (with an optional id line, the resume
// cursor for Last-Event-ID); it reports false when the client is gone.
func writeSSE(w io.Writer, event, id string, v any) bool {
	raw, err := json.Marshal(v)
	if err != nil {
		return false
	}
	if id != "" {
		_, err = fmt.Fprintf(w, "event: %s\nid: %s\ndata: %s\n\n", event, id, raw)
	} else {
		_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, raw)
	}
	return err == nil
}

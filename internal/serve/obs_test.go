package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"tivapromi/internal/campaign"
	"tivapromi/internal/obs"
)

// TestMetricsEndpoint: /metrics serves the Prometheus text exposition,
// the serve counters move when a job runs, and the endpoint needs no
// tenant header (operators scrape it, tenants use /v1/stats).
func TestMetricsEndpoint(t *testing.T) {
	admittedBefore := obs.JobsAdmitted.Value()
	completedBefore := obs.JobsCompleted.Value()
	_, hs := newTestServer(t, Config{Workers: 1})
	id := jobID(t, doSubmit(t, hs.URL, "alpha", submitBody("table2")))
	waitState(t, hs.URL, "alpha", id, StateDone)

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE tivapromi_jobs_admitted_total counter",
		"# TYPE tivapromi_dedup_hits_total counter",
		"# TYPE tivapromi_queue_depth gauge",
		"# TYPE tivapromi_job_seconds histogram",
		"tivapromi_job_seconds_bucket{le=\"+Inf\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if obs.JobsAdmitted.Value() <= admittedBefore {
		t.Error("jobs_admitted counter did not move for an admitted job")
	}
	if obs.JobsCompleted.Value() <= completedBefore {
		t.Error("jobs_completed counter did not move for a completed job")
	}
	// Every non-comment line must be "name{labels} value" — a malformed
	// line would poison a real scraper's whole scrape.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

// TestErrorEnvelope pins the unified error shape: every handler error
// answers {"error": ..., "code": ...} with a stable machine code, and
// the 429 keeps its Retry-After header.
func TestErrorEnvelope(t *testing.T) {
	release := make(chan struct{})
	s, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	s.SetRunCampaignForTest(func(ctx context.Context, spec campaign.Spec, opts campaign.Options) (*campaign.ResultSet, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return emptyRun(ctx, spec, opts)
	})
	defer close(release)

	// Fill alpha's queue: one running, one queued; the next submission
	// 429s. The queued job carries an Idempotency-Key so the conflict
	// case can collide with it.
	running := jobID(t, doSubmit(t, hs.URL, "alpha", submitBody("table2")))
	waitState(t, hs.URL, "alpha", running, StateRunning)
	jobID(t, doSubmitKey(t, hs.URL, "alpha", "env-key", submitBody("table2")))

	oversized := bytes.Repeat([]byte{'x'}, int(DefaultLimits().MaxBodyBytes)+2)

	cases := []struct {
		name       string
		do         func() *http.Response
		status     int
		code       string
		retryAfter bool
	}{
		{
			name: "404 unknown job",
			do: func() *http.Response {
				req, _ := http.NewRequest("GET", hs.URL+"/v1/campaigns/nonesuch", nil)
				req.Header.Set("X-Tenant", "alpha")
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				return resp
			},
			status: http.StatusNotFound, code: "not_found",
		},
		{
			name: "409 report before done",
			do: func() *http.Response {
				req, _ := http.NewRequest("GET", hs.URL+"/v1/campaigns/"+running+"/report", nil)
				req.Header.Set("X-Tenant", "alpha")
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				return resp
			},
			status: http.StatusConflict, code: "conflict",
		},
		{
			name:       "429 queue overflow",
			do:         func() *http.Response { return doSubmit(t, hs.URL, "alpha", submitBody("table2")) },
			status:     http.StatusTooManyRequests,
			code:       "too_many_requests",
			retryAfter: true,
		},
		{
			name:   "413 oversized body",
			do:     func() *http.Response { return doSubmit(t, hs.URL, "alpha", oversized) },
			status: http.StatusRequestEntityTooLarge, code: "payload_too_large",
		},
		{
			// An Idempotency-Key reused with a different spec: the replay
			// check resolves before admission, so even a full queue answers
			// conflict, never a silent duplicate or a spurious 429.
			name:   "409 idempotency conflict",
			do:     func() *http.Response { return doSubmitKey(t, hs.URL, "alpha", "env-key", submitBody("table1")) },
			status: http.StatusConflict, code: "conflict",
		},
		{
			// Must run last: draining is one-way. A drain-phase submission
			// is a 503 with Retry-After — retryable by contract, unlike the
			// terminal 4xx family.
			name: "503 draining",
			do: func() *http.Response {
				go s.Drain(context.Background())
				deadline := time.Now().Add(5 * time.Second)
				for !s.Draining() {
					if time.Now().After(deadline) {
						t.Fatal("server never entered drain")
					}
					time.Sleep(2 * time.Millisecond)
				}
				return doSubmit(t, hs.URL, "alpha", submitBody("table2"))
			},
			status:     http.StatusServiceUnavailable,
			code:       "unavailable",
			retryAfter: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := tc.do()
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("content type %q, want application/json", ct)
			}
			if tc.retryAfter && resp.Header.Get("Retry-After") == "" {
				t.Error("response carries no Retry-After header")
			}
			var env ErrorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("body is not an error envelope: %v", err)
			}
			if env.Code != tc.code {
				t.Errorf("code %q, want %q", env.Code, tc.code)
			}
			if env.Error == "" {
				t.Error("envelope carries no error message")
			}
		})
	}
}

// TestSSESlowClientDoesNotBlockJob is the SSE robustness property: a
// subscriber that never reads must not wedge the job's progress
// callback or leak the events handler after the client disconnects.
// The publish path drops events for a full subscriber channel instead
// of blocking, so the job finishes on schedule no matter how stalled
// the stream is.
func TestSSESlowClientDoesNotBlockJob(t *testing.T) {
	droppedBefore := obs.SSEEventsDropped.Value()
	subscribed := make(chan struct{})
	s, hs := newTestServer(t, Config{Workers: 1})
	s.SetRunCampaignForTest(func(ctx context.Context, spec campaign.Spec, opts campaign.Options) (*campaign.ResultSet, error) {
		<-subscribed
		// Far more events than eventBuffer + subBuffer: a stalled
		// subscriber cannot absorb these, so publish must drop, not block.
		for i := 0; i < 4*(eventBuffer+subBuffer); i++ {
			opts.OnProgress(campaign.Progress{
				Campaign: spec.Name, Tenant: opts.Tenant,
				Cell: fmt.Sprintf("c%d", i), Done: i + 1, Total: 4 * (eventBuffer + subBuffer),
			})
		}
		return emptyRun(ctx, spec, opts)
	})

	id := jobID(t, doSubmit(t, hs.URL, "alpha", submitBody("table2")))

	// A subscriber that connects and then never reads a byte.
	req, _ := http.NewRequest("GET", hs.URL+"/v1/campaigns/"+id+"/events", nil)
	req.Header.Set("X-Tenant", "alpha")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	close(subscribed)

	// The job must complete promptly despite the stalled stream.
	start := time.Now()
	waitState(t, hs.URL, "alpha", id, StateDone)
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("job took %s with a stalled subscriber attached", d)
	}
	if obs.SSEEventsDropped.Value() <= droppedBefore {
		t.Error("no events were dropped for the stalled subscriber; publish must have blocked or buffered unboundedly")
	}

	// Disconnect; the handler goroutine must exit, leaking nothing.
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for eventsHandlerGoroutines() != 0 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("events handler leaked after client disconnect:\n%s", buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
	waitNoServeGoroutines(t)
}

// eventsHandlerGoroutines counts goroutines inside handleEvents.
func eventsHandlerGoroutines() int {
	buf := make([]byte, 1<<20)
	stacks := string(buf[:runtime.Stack(buf, true)])
	n := 0
	for _, g := range strings.Split(stacks, "\n\n") {
		if strings.Contains(g, "serve.(*Server).handleEvents") {
			n++
		}
	}
	return n
}

package serve

import (
	"context"
	"sync"
	"time"

	"tivapromi/internal/campaign"
	"tivapromi/internal/obs"
)

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle: Queued (admitted, waiting for its tenant's turn) →
// Running → exactly one of Done / Failed / Canceled. A job replayed
// from the write-ahead journal after a restart enters as Recovering
// (queued for re-execution) and proceeds to Running like any other —
// unless it exceeds the recovery budget first and fails with
// ErrRecoveryTimeout.
const (
	StateQueued     JobState = "queued"
	StateRecovering JobState = "recovering"
	StateRunning    JobState = "running"
	StateDone       JobState = "done"
	StateFailed     JobState = "failed"
	StateCanceled   JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one progress notification on a job's SSE stream — a wire
// mirror of campaign.Progress plus the job identity.
type Event struct {
	// Seq is the job's monotonic event sequence number within its
	// incarnation, carried (with Epoch) in the SSE "id:" line so a
	// disconnected client can resume with Last-Event-ID.
	Seq uint64 `json:"seq"`
	// Epoch is the job's incarnation number: 0 for a job's first run,
	// bumped on every journal recovery. A pre-crash Last-Event-ID
	// carries the old epoch, so it can never silently alias into the
	// re-run's event numbering — it reads as stale and the stream falls
	// back to snapshot-then-live.
	Epoch     uint64 `json:"epoch,omitempty"`
	Job       string `json:"job"`
	Tenant    string `json:"tenant"`
	Cell      string `json:"cell,omitempty"`
	Done      int    `json:"done"`
	Total     int    `json:"total"`
	Cached    bool   `json:"cached,omitempty"`
	Skipped   bool   `json:"skipped,omitempty"`
	Attempts  int    `json:"attempts,omitempty"`
	Error     string `json:"error,omitempty"`
	Note      string `json:"note,omitempty"`
	ElapsedMs int64  `json:"elapsed_ms"`
	EtaMs     int64  `json:"eta_ms,omitempty"`
}

// eventBuffer bounds how many past events a job replays to a late SSE
// subscriber; older events are dropped from the front (the status
// endpoint always has the authoritative Done/Total).
const eventBuffer = 512

// subBuffer is each subscriber's channel depth. A subscriber that falls
// further behind than this loses intermediate events (never the final
// state, which the handler reads from the job itself).
const subBuffer = 64

// job is one admitted campaign: its spec, its lifecycle, its event
// history, and its outputs. All mutable fields are guarded by mu; done
// closes exactly once, when the state turns terminal.
type job struct {
	ID          string
	Tenant      string
	Names       []string // requested sections, in output order
	Spec        campaign.Spec
	Eval        campaign.Eval
	Timeout     time.Duration // whole-job deadline (0 = none)
	Fingerprint string        // content address of the request spec (idempotency)
	IdemKey     string        // tenant-scoped Idempotency-Key ("" = none)
	Recovered   bool          // re-admitted from the journal after a restart

	mu        sync.Mutex
	state     JobState
	epoch     uint64 // incarnation number; bumped on journal recovery
	nextSeq   uint64 // last assigned event sequence number (per incarnation)
	events    []Event
	subs      map[chan Event]struct{}
	report    []byte
	svg       []byte
	err       error
	cancel    context.CancelFunc // set while running; drain force-cancels through it
	deadline  *time.Timer        // pre-run state deadline (queue/recovery budget)
	created   time.Time
	started   time.Time
	finished  time.Time
	doneCells int
	total     int
	dedupHits int64 // checkpoint cache hits attributed to this job
	done      chan struct{}
}

func newJob(id, tenant string, names []string, spec campaign.Spec, ev campaign.Eval, timeout time.Duration) *job {
	return &job{
		ID: id, Tenant: tenant, Names: names, Spec: spec, Eval: ev,
		Timeout: timeout,
		state:   StateQueued,
		subs:    make(map[chan Event]struct{}),
		created: time.Now(),
		total:   len(spec.Cells),
		done:    make(chan struct{}),
	}
}

// publish records one event and fans it out to every subscriber.
// Subscribers are never blocked on: a full subscriber channel drops the
// event (the terminal state is read from the job, not the stream), so a
// stalled SSE client cannot wedge the campaign's progress callback.
func (j *job) publish(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.nextSeq++
	ev.Seq = j.nextSeq
	ev.Epoch = j.epoch
	if len(j.events) >= eventBuffer {
		j.events = append(j.events[:0], j.events[len(j.events)-eventBuffer/2:]...)
	}
	j.events = append(j.events, ev)
	if ev.Done > 0 {
		j.doneCells = ev.Done
	}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
			obs.SSEEventsDropped.Inc()
		}
	}
}

// onProgress adapts campaign.Progress into the job's event stream.
func (j *job) onProgress(p campaign.Progress) {
	ev := Event{
		Job: j.ID, Tenant: j.Tenant, Cell: p.Cell,
		Done: p.Done, Total: p.Total,
		Cached: p.Cached, Skipped: p.Skipped, Attempts: p.Attempts,
		Note:      p.Note,
		ElapsedMs: p.Elapsed.Milliseconds(),
		EtaMs:     p.ETA.Milliseconds(),
	}
	if p.Err != nil {
		ev.Error = p.Err.Error()
	}
	j.publish(ev)
}

// subscribe registers a new event channel and returns it along with a
// replay of buffered history. The caller must unsubscribe.
//
// afterEpoch/afterSeq implement Last-Event-ID resume: when the caller
// holds an id from this incarnation whose sequence number is still
// covered by the bounded replay ring, the replay is exactly the events
// after it — a gap-free continuation. When the id is absent (0/0),
// from a previous incarnation (epoch mismatch after a crash-recovery
// re-run), or stale (older than the ring's first event, or beyond the
// current high-water), a gap-free resume is impossible; snapshot
// reports true and the replay is the full ring, so the handler leads
// with a state snapshot — the documented snapshot-then-live fallback.
func (j *job) subscribe(afterEpoch, afterSeq uint64) (ch chan Event, replay []Event, snapshot bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch = make(chan Event, subBuffer)
	j.subs[ch] = struct{}{}
	var resumable bool
	switch {
	case afterEpoch != j.epoch || afterSeq == 0 || afterSeq > j.nextSeq:
		resumable = false
	case len(j.events) == 0:
		// Nothing buffered to prove continuity: only a client already
		// fully caught up can continue gap-free.
		resumable = afterSeq == j.nextSeq
	default:
		resumable = j.events[0].Seq <= afterSeq+1
	}
	if !resumable {
		return ch, append([]Event(nil), j.events...), true
	}
	for i, ev := range j.events {
		if ev.Seq > afterSeq {
			return ch, append([]Event(nil), j.events[i:]...), false
		}
	}
	return ch, nil, false
}

// unsubscribe detaches a channel. The channel is abandoned, never
// closed, so a publish racing the detach can never hit a closed channel.
func (j *job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.subs, ch)
}

// start flips the job to running and installs its cancel hook,
// reporting false if the job already settled (a pre-run deadline won
// the race). The pre-run state deadline is disarmed: once running, the
// job answers to the job timeout instead.
func (j *job) start(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	if j.deadline != nil {
		j.deadline.Stop()
		j.deadline = nil
	}
	return true
}

// terminal reports whether the job has settled.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal()
}

// armDeadline installs a pre-run state deadline: if the job is still in
// `from` when d elapses, it fails with err. Used for the recovery
// budget (a job stuck in recovering must fail typed, not wedge).
func (j *job) armDeadline(from JobState, d time.Duration, err error, onExpire func(*job)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.deadline = time.AfterFunc(d, func() {
		if j.failIfState(from, err) && onExpire != nil {
			onExpire(j)
		}
	})
}

// failIfState moves the job to failed iff it still sits in `from`,
// reporting whether the transition happened.
func (j *job) failIfState(from JobState, err error) bool {
	return j.finishIf(from, StateFailed, nil, nil, err)
}

// finish moves the job to a terminal state exactly once, recording the
// outputs, and releases every waiter. Calls after the first are no-ops
// (a drain cancel racing a natural completion resolves to whichever
// came first).
func (j *job) finish(state JobState, rep, svg []byte, err error) {
	j.finishIf("", state, rep, svg, err)
}

// finishIf is finish gated on the current state: when from is non-empty
// the transition applies only if the job still sits in from. Reports
// whether this call performed the transition — the primitive the
// pre-run deadline timers need to lose races against real completions.
func (j *job) finishIf(from, state JobState, rep, svg []byte, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() || (from != "" && j.state != from) {
		return false
	}
	j.state = state
	j.report = rep
	j.svg = svg
	j.err = err
	j.finished = time.Now()
	j.cancel = nil
	if j.deadline != nil {
		j.deadline.Stop()
		j.deadline = nil
	}
	close(j.done)
	return true
}

// watermark returns the incarnation number and its last assigned event
// sequence number — what a state record journals so a recovered
// incarnation knows to bump the epoch past every id this one issued.
func (j *job) watermark() (epoch, seq uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch, j.nextSeq
}

// forceCancel cancels a running job's context (no-op otherwise).
func (j *job) forceCancel() {
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Status is the JSON snapshot the status endpoint serves.
type Status struct {
	ID        string   `json:"id"`
	Tenant    string   `json:"tenant"`
	State     JobState `json:"state"`
	Sections  []string `json:"sections"`
	DoneCells int      `json:"done_cells"`
	Total     int      `json:"total_cells"`
	DedupHits int64    `json:"dedup_hits"`
	Error     string   `json:"error,omitempty"`
	CreatedAt string   `json:"created_at"`
	ElapsedMs int64    `json:"elapsed_ms"`
	// Recovered marks a job re-admitted from the write-ahead journal
	// after a restart; its outputs are reproduced through the shared
	// result cache.
	Recovered bool `json:"recovered,omitempty"`
	// Epoch and Seq are the job's incarnation number and SSE sequence
	// high-water mark: together the largest event id a resuming
	// Last-Event-ID could legitimately carry.
	Epoch uint64 `json:"epoch,omitempty"`
	Seq   uint64 `json:"seq,omitempty"`
}

// status snapshots the job.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.ID, Tenant: j.Tenant, State: j.state,
		Sections:  j.Names,
		DoneCells: j.doneCells, Total: j.total,
		DedupHits: j.dedupHits,
		CreatedAt: j.created.UTC().Format(time.RFC3339),
		Recovered: j.Recovered,
		Epoch:     j.epoch,
		Seq:       j.nextSeq,
	}
	switch {
	case j.state.Terminal():
		st.ElapsedMs = j.finished.Sub(j.created).Milliseconds()
	default:
		st.ElapsedMs = time.Since(j.created).Milliseconds()
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// snapshot returns the terminal outputs (valid once done returns).
func (j *job) snapshot() (state JobState, rep, svg []byte, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.report, j.svg, j.err
}

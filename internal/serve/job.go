package serve

import (
	"context"
	"sync"
	"time"

	"tivapromi/internal/campaign"
	"tivapromi/internal/obs"
)

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle: Queued (admitted, waiting for its tenant's turn) →
// Running → exactly one of Done / Failed / Canceled.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one progress notification on a job's SSE stream — a wire
// mirror of campaign.Progress plus the job identity.
type Event struct {
	Job       string `json:"job"`
	Tenant    string `json:"tenant"`
	Cell      string `json:"cell,omitempty"`
	Done      int    `json:"done"`
	Total     int    `json:"total"`
	Cached    bool   `json:"cached,omitempty"`
	Skipped   bool   `json:"skipped,omitempty"`
	Attempts  int    `json:"attempts,omitempty"`
	Error     string `json:"error,omitempty"`
	Note      string `json:"note,omitempty"`
	ElapsedMs int64  `json:"elapsed_ms"`
	EtaMs     int64  `json:"eta_ms,omitempty"`
}

// eventBuffer bounds how many past events a job replays to a late SSE
// subscriber; older events are dropped from the front (the status
// endpoint always has the authoritative Done/Total).
const eventBuffer = 512

// subBuffer is each subscriber's channel depth. A subscriber that falls
// further behind than this loses intermediate events (never the final
// state, which the handler reads from the job itself).
const subBuffer = 64

// job is one admitted campaign: its spec, its lifecycle, its event
// history, and its outputs. All mutable fields are guarded by mu; done
// closes exactly once, when the state turns terminal.
type job struct {
	ID      string
	Tenant  string
	Names   []string // requested sections, in output order
	Spec    campaign.Spec
	Eval    campaign.Eval
	Timeout time.Duration // whole-job deadline (0 = none)

	mu        sync.Mutex
	state     JobState
	events    []Event
	subs      map[chan Event]struct{}
	report    []byte
	svg       []byte
	err       error
	cancel    context.CancelFunc // set while running; drain force-cancels through it
	created   time.Time
	started   time.Time
	finished  time.Time
	doneCells int
	total     int
	dedupHits int64 // checkpoint cache hits attributed to this job
	done      chan struct{}
}

func newJob(id, tenant string, names []string, spec campaign.Spec, ev campaign.Eval, timeout time.Duration) *job {
	return &job{
		ID: id, Tenant: tenant, Names: names, Spec: spec, Eval: ev,
		Timeout: timeout,
		state:   StateQueued,
		subs:    make(map[chan Event]struct{}),
		created: time.Now(),
		total:   len(spec.Cells),
		done:    make(chan struct{}),
	}
}

// publish records one event and fans it out to every subscriber.
// Subscribers are never blocked on: a full subscriber channel drops the
// event (the terminal state is read from the job, not the stream), so a
// stalled SSE client cannot wedge the campaign's progress callback.
func (j *job) publish(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.events) >= eventBuffer {
		j.events = append(j.events[:0], j.events[len(j.events)-eventBuffer/2:]...)
	}
	j.events = append(j.events, ev)
	if ev.Done > 0 {
		j.doneCells = ev.Done
	}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
			obs.SSEEventsDropped.Inc()
		}
	}
}

// onProgress adapts campaign.Progress into the job's event stream.
func (j *job) onProgress(p campaign.Progress) {
	ev := Event{
		Job: j.ID, Tenant: j.Tenant, Cell: p.Cell,
		Done: p.Done, Total: p.Total,
		Cached: p.Cached, Skipped: p.Skipped, Attempts: p.Attempts,
		Note:      p.Note,
		ElapsedMs: p.Elapsed.Milliseconds(),
		EtaMs:     p.ETA.Milliseconds(),
	}
	if p.Err != nil {
		ev.Error = p.Err.Error()
	}
	j.publish(ev)
}

// subscribe registers a new event channel and returns it along with a
// replay of the buffered history. The caller must unsubscribe.
func (j *job) subscribe() (ch chan Event, replay []Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch = make(chan Event, subBuffer)
	j.subs[ch] = struct{}{}
	return ch, append([]Event(nil), j.events...)
}

// unsubscribe detaches a channel. The channel is abandoned, never
// closed, so a publish racing the detach can never hit a closed channel.
func (j *job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.subs, ch)
}

// start flips the job to running and installs its cancel hook.
func (j *job) start(cancel context.CancelFunc) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
}

// finish moves the job to a terminal state exactly once, recording the
// outputs, and releases every waiter. Calls after the first are no-ops
// (a drain cancel racing a natural completion resolves to whichever
// came first).
func (j *job) finish(state JobState, rep, svg []byte, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.report = rep
	j.svg = svg
	j.err = err
	j.finished = time.Now()
	j.cancel = nil
	close(j.done)
}

// forceCancel cancels a running job's context (no-op otherwise).
func (j *job) forceCancel() {
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Status is the JSON snapshot the status endpoint serves.
type Status struct {
	ID        string   `json:"id"`
	Tenant    string   `json:"tenant"`
	State     JobState `json:"state"`
	Sections  []string `json:"sections"`
	DoneCells int      `json:"done_cells"`
	Total     int      `json:"total_cells"`
	DedupHits int64    `json:"dedup_hits"`
	Error     string   `json:"error,omitempty"`
	CreatedAt string   `json:"created_at"`
	ElapsedMs int64    `json:"elapsed_ms"`
}

// status snapshots the job.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.ID, Tenant: j.Tenant, State: j.state,
		Sections:  j.Names,
		DoneCells: j.doneCells, Total: j.total,
		DedupHits: j.dedupHits,
		CreatedAt: j.created.UTC().Format(time.RFC3339),
	}
	switch {
	case j.state.Terminal():
		st.ElapsedMs = j.finished.Sub(j.created).Milliseconds()
	default:
		st.ElapsedMs = time.Since(j.created).Milliseconds()
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// snapshot returns the terminal outputs (valid once done returns).
func (j *job) snapshot() (state JobState, rep, svg []byte, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.report, j.svg, j.err
}

// Campaign-spec wire format: the request body a tenant POSTs to
// /v1/campaigns, its decoder, and the admission limits that keep a
// hostile or clumsy request from turning into an unbounded grid. The
// decoder is deliberately paranoid — it is fuzzed (FuzzDecodeRequest)
// with the contract "never panic, never allocate proportionally to a
// number the client made up, always fail with a typed error".
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"tivapromi/internal/campaign"
	"tivapromi/internal/report"
)

// Typed decode failures. Handlers map ErrBadSpec to 400 and
// ErrSpecTooLarge to 413; both are rejections, never panics or OOMs.
var (
	// ErrBadSpec marks a request that is not a usable campaign spec:
	// unparseable JSON, unknown fields, unknown sections, no sections.
	ErrBadSpec = errors.New("serve: bad campaign spec")
	// ErrSpecTooLarge marks a spec that parses but exceeds the server's
	// admission limits (grid dimensions, body size, cell count).
	ErrSpecTooLarge = errors.New("serve: campaign spec exceeds server limits")
)

// LimitError reports which admission limit a spec exceeded. It unwraps
// to ErrSpecTooLarge.
type LimitError struct {
	Field string
	Got   int
	Max   int
}

// Error implements error.
func (e *LimitError) Error() string {
	return fmt.Sprintf("serve: %s %d exceeds the server limit %d", e.Field, e.Got, e.Max)
}

// Unwrap exposes the ErrSpecTooLarge mark to errors.Is.
func (e *LimitError) Unwrap() error { return ErrSpecTooLarge }

// Request is the wire form of one campaign submission. Zero-valued
// knobs inherit the server's base evaluation defaults; Sections is the
// only required field.
type Request struct {
	// Tenant optionally names the submitting tenant in the body; the
	// X-Tenant header, when present, wins.
	Tenant string `json:"tenant,omitempty"`
	// IdempotencyKey optionally makes the submission safe to retry: a
	// duplicate POST with the same tenant-scoped key is answered with
	// the original job instead of executing again, and the same key
	// with a different spec is a 409. The Idempotency-Key header, when
	// present, wins.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Sections names the report sections to compute, in output order
	// (the report.Sections registry is the vocabulary).
	Sections []string `json:"sections"`
	// Seeds is the per-data-point seed count (0 = server default).
	Seeds int `json:"seeds,omitempty"`
	// Windows is the refresh windows per run (0 = server default).
	Windows int `json:"windows,omitempty"`
	// Trials is the flooding trial count (0 = server default).
	Trials int `json:"trials,omitempty"`
	// Thresholds overrides the flip-threshold sweep (empty = default).
	Thresholds []uint32 `json:"thresholds,omitempty"`
	// TimeoutMs bounds the whole job's wall clock (0 = server default;
	// the per-request deadline propagates into the sim runner's context
	// and stall-watchdog machinery).
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// Limits bounds what one request may ask for. The zero value of any
// field selects the DefaultLimits value, so partial configuration is
// safe.
type Limits struct {
	// MaxBodyBytes bounds the request body read off the socket.
	MaxBodyBytes int64
	// MaxSections bounds len(Sections).
	MaxSections int
	// MaxSeeds bounds the per-point seed count.
	MaxSeeds int
	// MaxWindows bounds the refresh windows per run.
	MaxWindows int
	// MaxTrials bounds the flooding trial count.
	MaxTrials int
	// MaxThresholds bounds the threshold sweep length.
	MaxThresholds int
	// MaxCells bounds the merged campaign's cell count after expansion.
	MaxCells int
}

// DefaultLimits is the serving default: generous enough for the whole
// paper evaluation, small enough that no request can OOM the server.
func DefaultLimits() Limits {
	return Limits{
		MaxBodyBytes:  64 << 10,
		MaxSections:   32,
		MaxSeeds:      64,
		MaxWindows:    64,
		MaxTrials:     256,
		MaxThresholds: 16,
		MaxCells:      4096,
	}
}

// withDefaults fills zero fields from DefaultLimits.
func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxBodyBytes <= 0 {
		l.MaxBodyBytes = d.MaxBodyBytes
	}
	if l.MaxSections <= 0 {
		l.MaxSections = d.MaxSections
	}
	if l.MaxSeeds <= 0 {
		l.MaxSeeds = d.MaxSeeds
	}
	if l.MaxWindows <= 0 {
		l.MaxWindows = d.MaxWindows
	}
	if l.MaxTrials <= 0 {
		l.MaxTrials = d.MaxTrials
	}
	if l.MaxThresholds <= 0 {
		l.MaxThresholds = d.MaxThresholds
	}
	if l.MaxCells <= 0 {
		l.MaxCells = d.MaxCells
	}
	return l
}

// DecodeRequest parses and validates one campaign submission against the
// admission limits. It never panics on any input; every failure carries
// ErrBadSpec or ErrSpecTooLarge (via LimitError) for the handler to map
// to 400 or 413.
func DecodeRequest(raw []byte, lim Limits) (Request, error) {
	lim = lim.withDefaults()
	var req Request
	if int64(len(raw)) > lim.MaxBodyBytes {
		return req, &LimitError{Field: "body bytes", Got: len(raw), Max: int(lim.MaxBodyBytes)}
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return Request{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	// Trailing garbage after the document is a malformed request, not an
	// ignorable suffix.
	if dec.More() {
		return Request{}, fmt.Errorf("%w: trailing data after the spec document", ErrBadSpec)
	}
	if err := req.validate(lim); err != nil {
		return Request{}, err
	}
	return req, nil
}

// validate applies the admission limits and the section vocabulary.
func (r Request) validate(lim Limits) error {
	if len(r.Sections) == 0 {
		return fmt.Errorf("%w: no sections requested", ErrBadSpec)
	}
	if len(r.Sections) > lim.MaxSections {
		return &LimitError{Field: "sections", Got: len(r.Sections), Max: lim.MaxSections}
	}
	seen := make(map[string]bool, len(r.Sections))
	for _, name := range r.Sections {
		if _, ok := report.Section(name); !ok {
			return fmt.Errorf("%w: unknown section %q", ErrBadSpec, name)
		}
		if seen[name] {
			return fmt.Errorf("%w: duplicate section %q", ErrBadSpec, name)
		}
		seen[name] = true
	}
	if r.Seeds < 0 || r.Windows < 0 || r.Trials < 0 || r.TimeoutMs < 0 {
		return fmt.Errorf("%w: negative knob", ErrBadSpec)
	}
	if r.Seeds > lim.MaxSeeds {
		return &LimitError{Field: "seeds", Got: r.Seeds, Max: lim.MaxSeeds}
	}
	if r.Windows > lim.MaxWindows {
		return &LimitError{Field: "windows", Got: r.Windows, Max: lim.MaxWindows}
	}
	if r.Trials > lim.MaxTrials {
		return &LimitError{Field: "trials", Got: r.Trials, Max: lim.MaxTrials}
	}
	if len(r.Thresholds) > lim.MaxThresholds {
		return &LimitError{Field: "thresholds", Got: len(r.Thresholds), Max: lim.MaxThresholds}
	}
	for _, th := range r.Thresholds {
		if th == 0 {
			return fmt.Errorf("%w: zero flip threshold", ErrBadSpec)
		}
	}
	return nil
}

// eval applies the request's overrides to the server's base evaluation.
func (r Request) eval(base campaign.Eval) campaign.Eval {
	ev := base
	if r.Seeds > 0 {
		ev.SeedsPerPoint = r.Seeds
	}
	if r.Windows > 0 {
		ev.Base.Windows = r.Windows
	}
	if r.Trials > 0 {
		ev.Trials = r.Trials
	}
	if len(r.Thresholds) > 0 {
		ev.Thresholds = append([]uint32(nil), r.Thresholds...)
	}
	return ev
}

// BuildCampaign expands a validated request into the merged campaign
// spec it runs as, enforcing the post-expansion cell bound (a request
// within every per-field limit can still multiply into a grid the
// server refuses to hold).
func BuildCampaign(r Request, base campaign.Eval, lim Limits) (campaign.Spec, campaign.Eval, error) {
	lim = lim.withDefaults()
	ev := r.eval(base)
	var specs []campaign.Spec
	for _, name := range r.Sections {
		def, ok := report.Section(name)
		if !ok {
			return campaign.Spec{}, ev, fmt.Errorf("%w: unknown section %q", ErrBadSpec, name)
		}
		specs = append(specs, def.Spec(ev))
	}
	merged := campaign.Merge("serve", specs...)
	if len(merged.Cells) > lim.MaxCells {
		return campaign.Spec{}, ev, &LimitError{Field: "campaign cells", Got: len(merged.Cells), Max: lim.MaxCells}
	}
	return merged, ev, nil
}

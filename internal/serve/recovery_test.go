package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tivapromi/internal/campaign"
	"tivapromi/internal/obs"
)

// doSubmitKey is doSubmit with an Idempotency-Key header.
func doSubmitKey(t *testing.T, url, tenant, key string, body []byte) *http.Response {
	t.Helper()
	req, _ := http.NewRequest("POST", url+"/v1/campaigns", bytes.NewReader(body))
	req.Header.Set("X-Tenant", tenant)
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestIdempotentResubmit: a duplicate POST with the same tenant-scoped
// Idempotency-Key is answered with the original job — same id, an
// Idempotent-Replay header, and zero additional executions — while the
// same key with a different spec is a 409 conflict.
func TestIdempotentResubmit(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "jobs.journal")
	var runs atomic.Int64
	s, hs := newTestServer(t, Config{Workers: 1, JournalPath: jpath})
	s.SetRunCampaignForTest(func(ctx context.Context, spec campaign.Spec, opts campaign.Options) (*campaign.ResultSet, error) {
		runs.Add(1)
		return emptyRun(ctx, spec, opts)
	})
	hitsBefore := obs.IdempotentHits.Value()

	r1 := doSubmitKey(t, hs.URL, "alpha", "key-A", submitBody("table2"))
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: %d", r1.StatusCode)
	}
	id1 := jobID(t, r1)
	waitState(t, hs.URL, "alpha", id1, StateDone)

	r2 := doSubmitKey(t, hs.URL, "alpha", "key-A", submitBody("table2"))
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("duplicate submission: %d, want 202", r2.StatusCode)
	}
	if r2.Header.Get("Idempotent-Replay") != "true" {
		t.Error("duplicate submission carries no Idempotent-Replay header")
	}
	if id2 := jobID(t, r2); id2 != id1 {
		t.Fatalf("duplicate submission got job %s, want the original %s", id2, id1)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("campaign executed %d times for an idempotent duplicate, want 1", got)
	}
	if obs.IdempotentHits.Value() <= hitsBefore {
		t.Error("idempotent_hits counter did not move")
	}

	// Same key, different spec: a conflict, never a silent second job.
	r3 := doSubmitKey(t, hs.URL, "alpha", "key-A", submitBody("table1"))
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting reuse: %d, want 409", r3.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(r3.Body).Decode(&env); err != nil || env.Code != "conflict" {
		t.Fatalf("conflict envelope: %+v (err %v)", env, err)
	}

	// Same key, different tenant: keys are tenant-scoped, so this is a
	// fresh job, not a replay.
	r4 := doSubmitKey(t, hs.URL, "beta", "key-A", submitBody("table2"))
	if r4.StatusCode != http.StatusAccepted || r4.Header.Get("Idempotent-Replay") != "" {
		t.Fatalf("foreign tenant's identical key replayed: %d %q", r4.StatusCode, r4.Header.Get("Idempotent-Replay"))
	}
	if id4 := jobID(t, r4); id4 == id1 {
		t.Fatal("tenant beta was handed tenant alpha's job")
	}
}

// TestJournalRecoveryEndToEnd is the tentpole round trip: a server runs
// a journaled job to completion, "crashes" with the terminal record
// lost, and its successor re-admits the job from the journal, re-renders
// it from the shared checkpoint cache (dedup, not re-simulation), serves
// byte-identical report bytes, and answers the idempotent re-POST with
// the original id.
func TestJournalRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation; skipped in -short")
	}
	dir := t.TempDir()
	jpath := filepath.Join(dir, "jobs.journal")
	ckpt := filepath.Join(dir, "cache.json")
	recoveredBefore := obs.JobsRecovered.Value()

	// Life A: run one real job to completion, then stop cleanly enough
	// that the checkpoint is flushed.
	sA, err := New(Config{Workers: 2, BaseEval: testEval(), JournalPath: jpath, CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	// "flooding" has real simulation cells (table2 alone is an empty
	// campaign), so life B's re-render can prove it hit the cache.
	req := Request{Sections: []string{"table2", "flooding"}, IdempotencyKey: "key-A"}
	jA, replayed, rej := sA.submit("alpha", req)
	if rej != nil || replayed {
		t.Fatalf("life A submit: rej=%+v replayed=%v", rej, replayed)
	}
	select {
	case <-jA.done:
	case <-time.After(60 * time.Second):
		t.Fatal("life A job never finished")
	}
	stateA, repA, _, errA := jA.snapshot()
	if stateA != StateDone {
		t.Fatalf("life A job: %s (%v)", stateA, errA)
	}
	if err := sA.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	sA.Close()

	// The crash: the journal's terminal "done" record never hit the disk.
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	if last := lines[len(lines)-1]; !bytes.Contains(last, []byte(`"done"`)) {
		t.Fatalf("journal's last line is not the done record: %s", last)
	}
	doctored := append(bytes.Join(lines[:len(lines)-1], []byte("\n")), '\n')
	if err := os.WriteFile(jpath, doctored, 0o644); err != nil {
		t.Fatal(err)
	}

	// Life B: recovery re-admits the interrupted job and re-renders it.
	sB, err := New(Config{Workers: 2, BaseEval: testEval(), JournalPath: jpath, CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	defer sB.Close()
	jB, ok := sB.Job(jA.ID)
	if !ok {
		t.Fatalf("job %s did not survive the restart", jA.ID)
	}
	if !jB.Recovered {
		t.Error("replayed job is not marked recovered")
	}
	select {
	case <-jB.done:
	case <-time.After(60 * time.Second):
		t.Fatal("recovered job never finished")
	}
	stB := jB.status()
	if stB.State != StateDone {
		t.Fatalf("recovered job: %s (%s)", stB.State, stB.Error)
	}
	if !stB.Recovered {
		t.Error("recovered job's status does not say so")
	}
	if stB.Epoch == 0 {
		t.Error("recovered job kept epoch 0; pre-crash SSE ids could alias")
	}
	if stB.DedupHits == 0 {
		t.Error("recovery re-simulated instead of re-rendering: zero cache hits")
	}
	_, repB, _, _ := jB.snapshot()
	if !bytes.Equal(repA, repB) {
		t.Fatalf("recovered report differs from the original (%d vs %d bytes)", len(repB), len(repA))
	}
	if obs.JobsRecovered.Value() <= recoveredBefore {
		t.Error("jobs_recovered counter did not move")
	}

	// The idempotency ledger survived: the duplicate POST resolves to the
	// recovered job, and a fresh submission draws an id past the old one.
	jDup, replayed, rej := sB.submit("alpha", req)
	if rej != nil || !replayed || jDup.ID != jA.ID {
		t.Fatalf("idempotent re-POST after restart: rej=%+v replayed=%v id=%s want %s", rej, replayed, jDup.ID, jA.ID)
	}
	jNew, replayed, rej := sB.submit("alpha", Request{Sections: []string{"table2"}})
	if rej != nil || replayed {
		t.Fatalf("fresh submit after restart: rej=%+v replayed=%v", rej, replayed)
	}
	if jNew.ID <= jA.ID {
		t.Fatalf("restarted server reissued id space: new %s vs old %s", jNew.ID, jA.ID)
	}
}

// TestRecoveryDisabled: with -recover=false the journal still answers
// idempotency, but interrupted jobs fail typed instead of re-running.
func TestRecoveryDisabled(t *testing.T) {
	jpath := journalPath(t)
	writeJournal(t, jpath, func(j *Journal) {
		if err := j.AppendSubmit(testSubmit("j000001", "alpha", "key-A")); err != nil {
			t.Fatal(err)
		}
		if err := j.AppendState(StateRecord{ID: "j000001", State: StateRunning}); err != nil {
			t.Fatal(err)
		}
	})
	s, err := New(Config{Workers: 1, BaseEval: testEval(), JournalPath: jpath, DisableRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j, ok := s.Job("j000001")
	if !ok {
		t.Fatal("journaled job missing after restart")
	}
	st := j.status()
	if st.State != StateFailed || !strings.Contains(st.Error, "recovery is disabled") {
		t.Fatalf("interrupted job with recovery off: %s (%q), want a typed failure", st.State, st.Error)
	}
	// The idempotency answer still works against the tombstone.
	jDup, replayed, rej := s.submit("alpha", Request{Sections: []string{"table2"}, IdempotencyKey: "key-A"})
	if rej != nil || !replayed || jDup.ID != "j000001" {
		t.Fatalf("idempotent answer with recovery off: rej=%+v replayed=%v id=%v", rej, replayed, jDup)
	}
}

// TestRecoveryTimeout: a re-admitted job that cannot reach the running
// state inside the recovery budget fails with ErrRecoveryTimeout — the
// per-state deadline that turns "wedged in recovering" into a typed,
// observable failure.
func TestRecoveryTimeout(t *testing.T) {
	s, err := New(Config{Workers: 1, BaseEval: testEval(), RecoveryTimeout: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	block := make(chan struct{})
	s.SetRunCampaignForTest(func(ctx context.Context, spec campaign.Spec, opts campaign.Options) (*campaign.ResultSet, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return emptyRun(ctx, spec, opts)
	})
	// Feed the recovery path directly (white-box): job 1 occupies the
	// tenant's single active slot; job 2 must wait in recovering past the
	// budget. No journal file is needed — this is the ledger the journal
	// would have produced.
	replayed := []ReplayedJob{
		{Submit: testSubmit("j000001", "alpha", ""), State: StateRunning},
		{Submit: testSubmit("j000002", "alpha", ""), State: StateQueued},
	}
	s.mu.Lock()
	s.recoverJobs(replayed)
	s.mu.Unlock()

	j2, ok := s.Job("j000002")
	if !ok {
		t.Fatal("job 2 missing")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := j2.status()
		if st.State == StateFailed {
			if !strings.Contains(st.Error, "recovery budget") {
				t.Fatalf("job 2 failed with %q, want the typed recovery-timeout error", st.Error)
			}
			break
		}
		if st.State.Terminal() {
			t.Fatalf("job 2 reached %s, want failed via recovery timeout", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job 2 never timed out (state %s)", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if j1, _ := s.Job("j000001"); j1.terminal() {
		t.Fatal("job 1 settled early; the test never exercised the queued wait")
	}
	close(block)
	j1, _ := s.Job("j000001")
	select {
	case <-j1.done:
	case <-time.After(10 * time.Second):
		t.Fatal("job 1 never finished after release")
	}
	waitNoServeGoroutines(t)
}

// sseFrame is one parsed SSE event.
type sseFrame struct {
	event string
	id    string
	data  string
}

// readFrame reads one SSE event from the stream, skipping keep-alive
// comments.
func readFrame(t *testing.T, br *bufio.Reader) sseFrame {
	t.Helper()
	var f sseFrame
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended mid-frame: %v (have %+v)", err, f)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "" && f.event != "":
			return f
		case line == "" || strings.HasPrefix(line, ":"):
			continue
		case strings.HasPrefix(line, "event: "):
			f.event = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			f.id = line[len("id: "):]
		case strings.HasPrefix(line, "data: "):
			f.data = line[len("data: "):]
		}
	}
}

func openEvents(t *testing.T, url, tenant, id, lastEventID string) (*http.Response, *bufio.Reader) {
	t.Helper()
	req, _ := http.NewRequest("GET", url+"/v1/campaigns/"+id+"/events", nil)
	req.Header.Set("X-Tenant", tenant)
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events stream: %d", resp.StatusCode)
	}
	return resp, bufio.NewReader(resp.Body)
}

// TestSSEResume drives the reconnect protocol end to end: a first
// connection (no Last-Event-ID) leads with a snapshot, a reconnect with
// the last seen id resumes gap-free with no snapshot and no duplicates,
// and a reconnect with an id beyond the high-water falls back to
// snapshot-then-live.
func TestSSEResume(t *testing.T) {
	step := make(chan struct{})
	s, hs := newTestServer(t, Config{Workers: 1})
	s.SetRunCampaignForTest(func(ctx context.Context, spec campaign.Spec, opts campaign.Options) (*campaign.ResultSet, error) {
		emit := func(n int) {
			opts.OnProgress(campaign.Progress{Campaign: spec.Name, Tenant: opts.Tenant,
				Cell: fmt.Sprintf("c%d", n), Done: n, Total: 4})
		}
		emit(1)
		<-step
		emit(2)
		emit(3)
		<-step
		emit(4)
		return emptyRun(ctx, spec, opts)
	})
	id := jobID(t, doSubmit(t, hs.URL, "alpha", submitBody("table2")))

	// First connect, absent Last-Event-ID: documented snapshot-then-live.
	resp1, br1 := openEvents(t, hs.URL, "alpha", id, "")
	if f := readFrame(t, br1); f.event != "snapshot" {
		t.Fatalf("first frame %q, want the snapshot", f.event)
	}
	f := readFrame(t, br1)
	if f.event != "progress" || f.id != "1" {
		t.Fatalf("first progress frame %+v, want id 1", f)
	}
	resp1.Body.Close()

	// Events 2 and 3 land while no client is attached.
	step <- struct{}{}
	waitEvents := func(n uint64) {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if st := getStatus(t, hs.URL, "alpha", id); st.Seq >= n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("job never reached seq %d", n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitEvents(3)

	// Reconnect with the last id we saw: gap-free, no snapshot, no dups.
	resp2, br2 := openEvents(t, hs.URL, "alpha", id, "1")
	for want := 2; want <= 3; want++ {
		f := readFrame(t, br2)
		if f.event != "progress" || f.id != fmt.Sprint(want) {
			t.Fatalf("resumed frame %+v, want progress id %d (no snapshot, no duplicates)", f, want)
		}
	}
	step <- struct{}{}
	if f := readFrame(t, br2); f.event != "progress" || f.id != "4" {
		t.Fatalf("live frame after resume %+v, want progress id 4", f)
	}
	if f := readFrame(t, br2); f.event != "done" {
		t.Fatalf("terminal frame %q, want done", f.event)
	}
	resp2.Body.Close()
	waitState(t, hs.URL, "alpha", id, StateDone)

	// A stale id beyond the high-water (e.g. from a pre-restart
	// incarnation): snapshot-then-live, never an invented continuation.
	resp3, br3 := openEvents(t, hs.URL, "alpha", id, "999")
	if f := readFrame(t, br3); f.event != "snapshot" {
		t.Fatalf("stale-id first frame %q, want snapshot", f.event)
	}
	resp3.Body.Close()

	// A caught-up reconnect on the finished job: no snapshot, straight to
	// the terminal frame.
	resp4, br4 := openEvents(t, hs.URL, "alpha", id, "4")
	if f := readFrame(t, br4); f.event != "done" {
		t.Fatalf("caught-up reconnect first frame %q, want done", f.event)
	}
	resp4.Body.Close()

	// Both disconnect paths must fold the handler goroutine.
	deadline := time.Now().Add(5 * time.Second)
	for eventsHandlerGoroutines() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("events handler goroutines leaked after reconnect cycle")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSubscribeRingEviction pins the ring-continuity rule: once the
// bounded replay ring has evicted the requested resume point, subscribe
// must refuse the gap-free resume and fall back to snapshot.
func TestSubscribeRingEviction(t *testing.T) {
	j := newJob("j1", "alpha", nil, campaign.Spec{}, campaign.Eval{}, 0)
	total := eventBuffer + eventBuffer/2
	for i := 0; i < total; i++ {
		j.publish(Event{Job: "j1"})
	}
	if _, _, snapshot := j.subscribe(0, 1); !snapshot {
		t.Fatal("resume from an evicted seq was allowed; the gap would be silent")
	}
	ch, replay, snapshot := j.subscribe(0, uint64(total)-1)
	_ = ch
	if snapshot || len(replay) != 1 || replay[0].Seq != uint64(total) {
		t.Fatalf("in-ring resume: snapshot=%v replay=%d, want the single trailing event", snapshot, len(replay))
	}
	// An epoch mismatch is never resumable, even with a plausible seq.
	if _, _, snapshot := j.subscribe(3, uint64(total)-1); !snapshot {
		t.Fatal("cross-epoch resume was allowed; pre-crash ids would alias")
	}
}

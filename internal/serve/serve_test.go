package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tivapromi/internal/campaign"
	"tivapromi/internal/dram"
)

// testEval shrinks the evaluation so real jobs complete in test time.
func testEval() campaign.Eval {
	ev := campaign.DefaultEval()
	ev.SeedsPerPoint = 1
	ev.Base.Windows = 1
	ev.Trials = 2
	p := dram.ScaledParams()
	p.RowsPerBank /= 4
	p.RefInt /= 4
	p.FlipThreshold /= 4
	ev.Base.Params = p
	ev.Probe = p
	ev.Thresholds = []uint32{p.FlipThreshold, p.FlipThreshold / 2}
	return ev
}

// emptyRun is a runCampaign override result factory: a completed, empty
// result set (settle then renders the requested sections for real).
func emptyRun(ctx context.Context, spec campaign.Spec, _ campaign.Options) (*campaign.ResultSet, error) {
	return campaign.Run(ctx, campaign.Spec{Name: spec.Name}, campaign.Options{})
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.BaseEval.SeedsPerPoint == 0 {
		cfg.BaseEval = testEval()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

func submitBody(sections ...string) []byte {
	raw, _ := json.Marshal(Request{Sections: sections})
	return raw
}

func doSubmit(t *testing.T, url, tenant string, body []byte) *http.Response {
	t.Helper()
	req, _ := http.NewRequest("POST", url+"/v1/campaigns", bytes.NewReader(body))
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func jobID(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatal("submission response carries no job id")
	}
	return st.ID
}

func getStatus(t *testing.T, url, tenant, id string) Status {
	t.Helper()
	req, _ := http.NewRequest("GET", url+"/v1/campaigns/"+id, nil)
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, url, tenant, id string, want JobState) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, url, tenant, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (err %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Status{}
}

func TestDecodeRequestRejections(t *testing.T) {
	lim := DefaultLimits()
	cases := []struct {
		name string
		raw  string
		want error
	}{
		{"empty body", ``, ErrBadSpec},
		{"not json", `{"sections": [`, ErrBadSpec},
		{"unknown field", `{"sections":["table2"],"bogus":1}`, ErrBadSpec},
		{"no sections", `{}`, ErrBadSpec},
		{"unknown section", `{"sections":["nonesuch"]}`, ErrBadSpec},
		{"duplicate section", `{"sections":["table2","table2"]}`, ErrBadSpec},
		{"negative seeds", `{"sections":["table2"],"seeds":-1}`, ErrBadSpec},
		{"trailing garbage", `{"sections":["table2"]} {"x":1}`, ErrBadSpec},
		{"zero threshold", `{"sections":["thresholds"],"thresholds":[0]}`, ErrBadSpec},
		{"seeds over limit", fmt.Sprintf(`{"sections":["table2"],"seeds":%d}`, lim.MaxSeeds+1), ErrSpecTooLarge},
		{"windows over limit", fmt.Sprintf(`{"sections":["table2"],"windows":%d}`, lim.MaxWindows+1), ErrSpecTooLarge},
		{"trials over limit", fmt.Sprintf(`{"sections":["table2"],"trials":%d}`, lim.MaxTrials+1), ErrSpecTooLarge},
	}
	for _, tc := range cases {
		_, err := DecodeRequest([]byte(tc.raw), lim)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, err := DecodeRequest(submitBody("table2", "flooding"), lim); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
}

// TestAdmissionControl fills one tenant's queue and checks the overflow
// submission is shed with 429 + Retry-After while the earlier ones are
// admitted.
func TestAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	s, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	s.SetRunCampaignForTest(func(ctx context.Context, spec campaign.Spec, opts campaign.Options) (*campaign.ResultSet, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return emptyRun(ctx, spec, opts)
	})

	r1 := doSubmit(t, hs.URL, "alpha", submitBody("table2"))
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: %d", r1.StatusCode)
	}
	id1 := jobID(t, r1)
	waitState(t, hs.URL, "alpha", id1, StateRunning)

	r2 := doSubmit(t, hs.URL, "alpha", submitBody("table2"))
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submission (queued): %d", r2.StatusCode)
	}
	id2 := jobID(t, r2)

	r3 := doSubmit(t, hs.URL, "alpha", submitBody("table2"))
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: got %d, want 429", r3.StatusCode)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Error("429 response carries no Retry-After header")
	}
	r3.Body.Close()

	close(release)
	waitState(t, hs.URL, "alpha", id1, StateDone)
	waitState(t, hs.URL, "alpha", id2, StateDone)
}

// TestTenantFairness holds tenant alpha's first job open and checks
// beta's job starts anyway (fair queuing: one active job per tenant),
// while alpha's second job stays queued behind its first.
func TestTenantFairness(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var started []string
	s, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	s.SetRunCampaignForTest(func(ctx context.Context, spec campaign.Spec, opts campaign.Options) (*campaign.ResultSet, error) {
		mu.Lock()
		started = append(started, opts.Tenant)
		mu.Unlock()
		select {
		case <-release:
		case <-ctx.Done():
		}
		return emptyRun(ctx, spec, opts)
	})

	a1 := jobID(t, doSubmit(t, hs.URL, "alpha", submitBody("table2")))
	a2 := jobID(t, doSubmit(t, hs.URL, "alpha", submitBody("table2")))
	b1 := jobID(t, doSubmit(t, hs.URL, "beta", submitBody("table2")))

	waitState(t, hs.URL, "beta", b1, StateRunning)
	mu.Lock()
	snapshot := append([]string(nil), started...)
	mu.Unlock()
	if len(snapshot) != 2 {
		t.Fatalf("started jobs = %v, want alpha+beta running while alpha's backlog waits", snapshot)
	}
	if st := getStatus(t, hs.URL, "alpha", a2); st.State != StateQueued {
		t.Fatalf("alpha's second job is %s, want queued behind its first", st.State)
	}
	close(release)
	waitState(t, hs.URL, "alpha", a1, StateDone)
	waitState(t, hs.URL, "alpha", a2, StateDone)
	waitState(t, hs.URL, "beta", b1, StateDone)
}

// TestTenantIsolation: a job is a 404 for everyone but its tenant.
func TestTenantIsolation(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	id := jobID(t, doSubmit(t, hs.URL, "alpha", submitBody("table2")))
	waitState(t, hs.URL, "alpha", id, StateDone)

	req, _ := http.NewRequest("GET", hs.URL+"/v1/campaigns/"+id, nil)
	req.Header.Set("X-Tenant", "mallory")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("foreign tenant read: got %d, want 404", resp.StatusCode)
	}
}

// TestDrain: draining rejects new work with 503 + Retry-After, lets the
// in-flight job finish, and leaves no serve goroutines behind.
func TestDrain(t *testing.T) {
	release := make(chan struct{})
	s, hs := newTestServer(t, Config{Workers: 1, DrainTimeout: 30 * time.Second})
	s.SetRunCampaignForTest(func(ctx context.Context, spec campaign.Spec, opts campaign.Options) (*campaign.ResultSet, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return emptyRun(ctx, spec, opts)
	})
	id := jobID(t, doSubmit(t, hs.URL, "alpha", submitBody("table2")))
	waitState(t, hs.URL, "alpha", id, StateRunning)

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	// Admission must close promptly even while the drain waits.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := doSubmit(t, hs.URL, "beta", submitBody("table2"))
		code := resp.StatusCode
		retry := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			if retry == "" {
				t.Error("503 during drain carries no Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions still admitted during drain (last status %d)", code)
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := getStatus(t, hs.URL, "alpha", id); st.State != StateDone {
		t.Fatalf("in-flight job after drain: %s, want done", st.State)
	}
	waitNoServeGoroutines(t)
}

// TestDrainForceCancel: a job that outlives the grace period is
// force-cancelled, not waited on forever.
func TestDrainForceCancel(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1, DrainTimeout: 50 * time.Millisecond})
	s.SetRunCampaignForTest(func(ctx context.Context, spec campaign.Spec, opts campaign.Options) (*campaign.ResultSet, error) {
		<-ctx.Done() // only a cancel ends this job
		return nil, ctx.Err()
	})
	id := jobID(t, doSubmit(t, hs.URL, "alpha", submitBody("table2")))
	waitState(t, hs.URL, "alpha", id, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := getStatus(t, hs.URL, "alpha", id); st.State != StateCanceled {
		t.Fatalf("wedged job after forced drain: %s, want canceled", st.State)
	}
}

// TestPanicIsolation: a panicking job fails that job only; the server
// keeps answering and the panic is counted.
func TestPanicIsolation(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1})
	s.SetRunCampaignForTest(func(context.Context, campaign.Spec, campaign.Options) (*campaign.ResultSet, error) {
		panic("job boom")
	})
	id := jobID(t, doSubmit(t, hs.URL, "alpha", submitBody("table2")))
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getStatus(t, hs.URL, "alpha", id)
		if st.State == StateFailed {
			if !strings.Contains(st.Error, "panic") {
				t.Fatalf("failed job error %q does not mention the panic", st.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("panicking job never failed (state %s)", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, _, _, _, _, panics := s.CountersSnapshot(); panics == 0 {
		t.Error("panic counter not incremented")
	}
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatalf("server dead after job panic: %v", err)
	}
	resp.Body.Close()
}

// TestHandlerPanicIsolation drives the recover middleware directly.
func TestHandlerPanicIsolation(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.recoverMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500", rec.Code)
	}
}

// TestTenantCircuitBreaker: consecutive failed jobs open the tenant's
// breaker; submissions are shed with 429 until the cooldown passes.
func TestTenantCircuitBreaker(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1, TenantBreakAfter: 2, TenantCooldown: 100 * time.Millisecond})
	s.SetRunCampaignForTest(func(context.Context, campaign.Spec, campaign.Options) (*campaign.ResultSet, error) {
		return nil, errors.New("synthetic failure")
	})
	for i := 0; i < 2; i++ {
		id := jobID(t, doSubmit(t, hs.URL, "alpha", submitBody("table2")))
		deadline := time.Now().Add(10 * time.Second)
		for getStatus(t, hs.URL, "alpha", id).State != StateFailed {
			if time.Now().After(deadline) {
				t.Fatal("job never failed")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	resp := doSubmit(t, hs.URL, "alpha", submitBody("table2"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submission with open breaker: got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("breaker 429 carries no Retry-After")
	}
	resp.Body.Close()
	// Breakers heal: after the cooldown the tenant may submit again.
	time.Sleep(150 * time.Millisecond)
	resp = doSubmit(t, hs.URL, "alpha", submitBody("table2"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submission after cooldown: got %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestSSEStream: the events endpoint replays history, streams live
// events, and terminates with a "done" event when the job completes.
func TestSSEStream(t *testing.T) {
	gate := make(chan struct{})
	s, hs := newTestServer(t, Config{Workers: 1})
	s.SetRunCampaignForTest(func(ctx context.Context, spec campaign.Spec, opts campaign.Options) (*campaign.ResultSet, error) {
		opts.OnProgress(campaign.Progress{Campaign: spec.Name, Tenant: opts.Tenant, Cell: "c1", Done: 1, Total: 2})
		<-gate
		opts.OnProgress(campaign.Progress{Campaign: spec.Name, Tenant: opts.Tenant, Cell: "c2", Done: 2, Total: 2})
		return emptyRun(ctx, spec, opts)
	})
	id := jobID(t, doSubmit(t, hs.URL, "alpha", submitBody("table2")))

	req, _ := http.NewRequest("GET", hs.URL+"/v1/campaigns/"+id+"/events", nil)
	req.Header.Set("X-Tenant", "alpha")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	close(gate)
	raw, err := io.ReadAll(resp.Body) // server closes the stream on job completion
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{`"cell":"c1"`, `"cell":"c2"`, "event: done"} {
		if !strings.Contains(body, want) {
			t.Errorf("SSE stream missing %q:\n%s", want, body)
		}
	}
}

// TestSharedCacheDedup runs two tenants' identical real campaigns back
// to back over one shared checkpoint and checks the second is served
// from the cache, byte-identically.
func TestSharedCacheDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation; skipped in -short")
	}
	ckpt := filepath.Join(t.TempDir(), "cache.json")
	_, hs := newTestServer(t, Config{Workers: 4, CheckpointPath: ckpt})
	body := submitBody("table2", "flooding")

	idA := jobID(t, doSubmit(t, hs.URL, "alpha", body))
	stA := waitState(t, hs.URL, "alpha", idA, StateDone)
	idB := jobID(t, doSubmit(t, hs.URL, "beta", body))
	stB := waitState(t, hs.URL, "beta", idB, StateDone)

	if stB.DedupHits == 0 {
		t.Error("second tenant's identical campaign hit the shared cache 0 times")
	}
	if stA.DedupHits != 0 {
		t.Errorf("first tenant's campaign claims %d dedup hits on an empty cache", stA.DedupHits)
	}
	fetch := func(tenant, id string) string {
		req, _ := http.NewRequest("GET", hs.URL+"/v1/campaigns/"+id+"/report", nil)
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("report fetch: %d", resp.StatusCode)
		}
		raw, _ := io.ReadAll(resp.Body)
		return string(raw)
	}
	if a, b := fetch("alpha", idA), fetch("beta", idB); a != b {
		t.Error("cached tenant's report differs from the computed one")
	}
}

// waitNoServeGoroutines asserts every serve-owned goroutine exited.
func waitNoServeGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := serveGoroutines(); n == 0 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("serve goroutines still running:\n%s", buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// serveGoroutines counts goroutines currently inside serve's job or
// drain machinery (the test's own frames are in _test.go files and the
// HTTP plumbing, which don't match these markers).
func serveGoroutines() int {
	buf := make([]byte, 1<<20)
	stacks := string(buf[:runtime.Stack(buf, true)])
	n := 0
	for _, g := range strings.Split(stacks, "\n\n") {
		if strings.Contains(g, "serve.(*Server).runJob") ||
			strings.Contains(g, "serve.(*Server).executeJob") ||
			strings.Contains(g, "serve.(*Server).Drain") {
			n++
		}
	}
	return n
}

package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "jobs.journal")
}

// writeJournal builds a journal on disk through the real append path and
// closes it, simulating a server that ran and then died.
func writeJournal(t *testing.T, path string, build func(*Journal)) {
	t.Helper()
	j, replayed, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatalf("open fresh journal: %v", err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(replayed))
	}
	build(j)
	if err := j.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}
}

func testSubmit(id, tenant, key string) SubmitRecord {
	req := Request{Sections: []string{"table2"}, IdempotencyKey: key}
	return SubmitRecord{
		ID: id, Tenant: tenant, IdemKey: key,
		Fingerprint: requestFingerprint(req), Request: req,
	}
}

// TestJournalRoundTrip: submits and state transitions written through
// the append path replay verbatim — in submission order, each job
// carrying its last journaled state, error and sequence watermark.
func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	writeJournal(t, path, func(j *Journal) {
		for _, rec := range []SubmitRecord{
			testSubmit("j000001", "alpha", "key-1"),
			testSubmit("j000002", "beta", ""),
			testSubmit("j000003", "alpha", ""),
		} {
			if err := j.AppendSubmit(rec); err != nil {
				t.Fatalf("append submit %s: %v", rec.ID, err)
			}
		}
		for _, rec := range []StateRecord{
			{ID: "j000001", State: StateRunning},
			{ID: "j000001", State: StateDone, Seq: 42},
			{ID: "j000002", State: StateRunning, Seq: 7},
			{ID: "j000003", State: StateFailed, Error: "synthetic", Seq: 3},
		} {
			if err := j.AppendState(rec); err != nil {
				t.Fatalf("append state %s/%s: %v", rec.ID, rec.State, err)
			}
		}
	})

	j2, replayed, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if rep := j2.LoadReport(); rep.Err != nil || rep.Dropped != 0 || rep.Orphans != 0 {
		t.Fatalf("clean journal load report: %+v", rep)
	}
	want := []struct {
		id    string
		state JobState
		errs  string
		seq   uint64
	}{
		{"j000001", StateDone, "", 42},
		{"j000002", StateRunning, "", 7},
		{"j000003", StateFailed, "synthetic", 3},
	}
	if len(replayed) != len(want) {
		t.Fatalf("replayed %d jobs, want %d", len(replayed), len(want))
	}
	for i, w := range want {
		got := replayed[i]
		if got.Submit.ID != w.id || got.State != w.state || got.Err != w.errs || got.Seq != w.seq {
			t.Errorf("job %d: got {%s %s %q seq=%d}, want {%s %s %q seq=%d}",
				i, got.Submit.ID, got.State, got.Err, got.Seq, w.id, w.state, w.errs, w.seq)
		}
	}
	if k := replayed[0].Submit.IdemKey; k != "key-1" {
		t.Errorf("idempotency key did not survive the round trip: %q", k)
	}
	if fp := replayed[0].Submit.Fingerprint; fp == "" || fp != testSubmit("x", "y", "key-1").Fingerprint {
		t.Errorf("fingerprint did not survive or is identity-dependent: %q", fp)
	}
}

// TestJournalTornTailSalvage: a crash mid-append leaves a torn final
// line. The loader keeps every verified record, quarantines the damaged
// original, rewrites a compacted clean log, and a third open of that
// compacted log is pristine.
func TestJournalTornTailSalvage(t *testing.T) {
	path := journalPath(t)
	writeJournal(t, path, func(j *Journal) {
		if err := j.AppendSubmit(testSubmit("j000001", "alpha", "")); err != nil {
			t.Fatal(err)
		}
		if err := j.AppendState(StateRecord{ID: "j000001", State: StateRunning, Seq: 5}); err != nil {
			t.Fatal(err)
		}
		if err := j.AppendSubmit(testSubmit("j000002", "beta", "")); err != nil {
			t.Fatal(err)
		}
	})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the tail: the last record loses its newline and half its bytes.
	torn := raw[:len(raw)-25]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, replayed, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatalf("salvage open: %v", err)
	}
	rep := j2.LoadReport()
	j2.Close()
	if rep.Err == nil || rep.Dropped == 0 {
		t.Fatalf("torn tail not detected: %+v", rep)
	}
	if rep.Quarantined == "" {
		t.Fatal("damaged journal was not quarantined")
	}
	if _, err := os.Stat(rep.Quarantined); err != nil {
		t.Fatalf("quarantine corpse missing: %v", err)
	}
	if got, err := os.ReadFile(rep.Quarantined); err != nil || !bytes.Equal(got, torn) {
		t.Fatalf("quarantine corpse is not the original damaged bytes (err %v)", err)
	}
	if len(replayed) != 1 || replayed[0].Submit.ID != "j000001" ||
		replayed[0].State != StateRunning || replayed[0].Seq != 5 {
		t.Fatalf("salvage replayed %+v, want only j000001 running seq=5", replayed)
	}

	// The compacted rewrite must load clean with the same ledger.
	j3, replayed3, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatalf("reopen compacted: %v", err)
	}
	defer j3.Close()
	if rep3 := j3.LoadReport(); rep3.Err != nil {
		t.Fatalf("compacted journal still dirty: %+v", rep3)
	}
	if len(replayed3) != 1 || replayed3[0].Submit.ID != "j000001" {
		t.Fatalf("compacted replay %+v, want j000001 only", replayed3)
	}
}

// TestJournalTamperedRecordDropped: a record whose bytes no longer match
// its checksum is never resurrected — not as a job, not in the compacted
// rewrite — while intact neighbors survive.
func TestJournalTamperedRecordDropped(t *testing.T) {
	path := journalPath(t)
	writeJournal(t, path, func(j *Journal) {
		if err := j.AppendSubmit(testSubmit("j000001", "alpha", "")); err != nil {
			t.Fatal(err)
		}
		if err := j.AppendSubmit(testSubmit("j000002", "beta", "")); err != nil {
			t.Fatal(err)
		}
	})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the second submit's payload ("beta" → "bet`").
	tampered := bytes.Replace(raw, []byte(`"tenant":"beta"`), []byte(`"tenant":"bet`+"`"+`"`), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatal("tamper target not found in the journal bytes")
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, replayed, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatalf("open tampered: %v", err)
	}
	defer j2.Close()
	rep := j2.LoadReport()
	if rep.Err == nil || rep.Dropped != 1 {
		t.Fatalf("tampered record not dropped: %+v", rep)
	}
	if len(replayed) != 1 || replayed[0].Submit.ID != "j000001" {
		t.Fatalf("replay %+v, want the intact j000001 only", replayed)
	}
	for _, rj := range replayed {
		if rj.Submit.Tenant != "alpha" {
			t.Fatalf("a tampered identity was resurrected: %+v", rj)
		}
	}
}

// TestJournalOrphanAndDuplicate: a verified state record without its
// submit is counted as an orphan (never resurrected as a job), and a
// duplicate submit for an id keeps the first, drops the echo.
func TestJournalOrphanAndDuplicate(t *testing.T) {
	path := journalPath(t)
	dup := testSubmit("j000001", "alpha", "")
	writeJournal(t, path, func(j *Journal) {
		if err := j.AppendSubmit(dup); err != nil {
			t.Fatal(err)
		}
		// A state for a job whose submit never made it to this log.
		if err := j.AppendState(StateRecord{ID: "j000099", State: StateRunning}); err != nil {
			t.Fatal(err)
		}
		if err := j.AppendSubmit(dup); err != nil {
			t.Fatal(err)
		}
	})
	j2, replayed, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	rep := j2.LoadReport()
	if rep.Orphans != 1 {
		t.Errorf("orphans = %d, want 1", rep.Orphans)
	}
	if rep.Dropped != 1 {
		t.Errorf("dropped = %d, want 1 (the duplicate submit)", rep.Dropped)
	}
	if len(replayed) != 1 || replayed[0].Submit.ID != "j000001" {
		t.Fatalf("replay %+v, want exactly one j000001", replayed)
	}
	for _, rj := range replayed {
		if rj.Submit.ID == "j000099" {
			t.Fatal("orphan state record was resurrected as a job")
		}
	}
}

// TestJournalQuarantineBounded: repeated damage accumulates at most
// sim.QuarantineKeep corpses next to the journal.
func TestJournalQuarantineBounded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.journal")
	for i := 0; i < 6; i++ {
		if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
			t.Fatal(err)
		}
		j, _, err := OpenJournal(path, nil)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if j.LoadReport().Err == nil {
			t.Fatalf("round %d: garbage loaded clean", i)
		}
		j.Close()
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corpses := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "jobs.journal.corrupt-") {
			corpses++
		}
	}
	if corpses == 0 || corpses > 3 {
		t.Fatalf("%d quarantine corpses on disk, want 1..3", corpses)
	}
}

// FuzzJournalParse holds the journal loader to its salvage contract on
// arbitrary bytes: never panic, never resurrect an unverifiable record
// (every replayed job re-verifies against the shared codec), and the
// compacted rewrite of any input reparses clean with the same ledger.
func FuzzJournalParse(f *testing.F) {
	seedPath := filepath.Join(f.TempDir(), "seed.journal")
	jw, _, err := OpenJournal(seedPath, nil)
	if err != nil {
		f.Fatal(err)
	}
	jw.AppendSubmit(testSubmit("j000001", "alpha", "k"))
	jw.AppendState(StateRecord{ID: "j000001", State: StateDone, Seq: 9})
	jw.Close()
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-10])                    // torn tail
	f.Add(bytes.Replace(valid, []byte("a"), []byte("b"), 3)) // bit rot
	f.Add([]byte(""))
	f.Add([]byte("\n"))
	f.Add([]byte(`{"format":"tivapromi-journal","version":1}` + "\n"))
	f.Add([]byte(`{"format":"tivapromi-journal","version":2}` + "\n"))
	f.Add([]byte(`{"format":"something-else","version":1}` + "\n"))
	f.Add([]byte(`{"format":"tivapromi-journal","version":1}` + "\n" + `{"k":"submit","id":"j1","sum":"bad","data":{}}` + "\n"))
	f.Add([]byte("\x00\xff\xfe\n\n\n"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		jobs, rep := parseJournal(raw)
		if rep.Entries < 0 || rep.Dropped < 0 || rep.Orphans < 0 {
			t.Fatalf("negative report counters: %+v", rep)
		}
		seen := make(map[string]bool, len(jobs))
		for _, rj := range jobs {
			if rj.Submit.ID == "" {
				t.Fatalf("resurrected a job with an empty id: %+v", rj)
			}
			if seen[rj.Submit.ID] {
				t.Fatalf("duplicate job id %s in replay", rj.Submit.ID)
			}
			seen[rj.Submit.ID] = true
		}
		// The compacted rewrite must reparse clean and reproduce exactly
		// the jobs salvage kept — nothing dropped records sneaks back in.
		compact := compactJournal(raw)
		jobs2, rep2 := parseJournal(compact)
		if rep2.Err != nil {
			t.Fatalf("compacted journal still corrupt: %v (input %q)", rep2.Err, raw)
		}
		if len(jobs2) != len(jobs) {
			t.Fatalf("compacted replay has %d jobs, salvage had %d", len(jobs2), len(jobs))
		}
		for i := range jobs {
			if jobs2[i].Submit.ID != jobs[i].Submit.ID || jobs2[i].State != jobs[i].State ||
				jobs2[i].Seq != jobs[i].Seq || jobs2[i].Err != jobs[i].Err {
				t.Fatalf("compacted job %d differs: %+v vs %+v", i, jobs2[i], jobs[i])
			}
		}
	})
}

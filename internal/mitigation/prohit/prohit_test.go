package prohit

import (
	"testing"

	"tivapromi/internal/mitigation"
)

func newTest(seed uint64) *ProHit { return New(2, DefaultConfig(16384), seed) }

func TestName(t *testing.T) {
	if newTest(1).Name() != "ProHit" {
		t.Fatal("wrong name")
	}
}

func TestTablesStayBounded(t *testing.T) {
	p := newTest(1)
	for r := 1; r < 100000; r += 2 {
		p.OnActivate(0, r%5000, 0, nil)
	}
	tb := &p.banks[0]
	if len(tb.hot) > p.cfg.HotEntries || len(tb.cold) > p.cfg.ColdEntries {
		t.Fatalf("tables overflowed: hot=%d cold=%d", len(tb.hot), len(tb.cold))
	}
}

func TestHammeredVictimReachesHotTop(t *testing.T) {
	p := newTest(3)
	// Hammer one aggressor; its victims should climb into the hot table.
	for i := 0; i < 50000; i++ {
		p.OnActivate(0, 100, 0, nil)
	}
	tb := &p.banks[0]
	found := false
	for _, v := range tb.hot {
		if v == 99 || v == 101 {
			found = true
		}
	}
	if !found {
		t.Fatalf("victims of a sustained hammer absent from hot table: %v", tb.hot)
	}
}

func TestRefreshIntervalPopsTop(t *testing.T) {
	p := newTest(3)
	for i := 0; i < 50000; i++ {
		p.OnActivate(0, 100, 0, nil)
	}
	hotBefore := len(p.banks[0].hot)
	if hotBefore == 0 {
		t.Skip("hot table empty; seed-dependent setup failed")
	}
	top := p.banks[0].hot[0]
	cmds := p.OnRefreshInterval(0, nil)
	var mine []mitigation.Command
	for _, c := range cmds {
		if c.Bank == 0 {
			mine = append(mine, c)
		}
	}
	if len(mine) != 1 {
		t.Fatalf("bank 0 emitted %d refreshes, want 1", len(mine))
	}
	if mine[0].Kind != mitigation.RefreshRow || mine[0].Row != int(top) {
		t.Fatalf("refreshed %+v, want top entry %d", mine[0], top)
	}
	if len(p.banks[0].hot) != hotBefore-1 {
		t.Fatal("top entry not removed after refresh")
	}
}

func TestEmptyHotTableEmitsNothing(t *testing.T) {
	p := newTest(1)
	if cmds := p.OnRefreshInterval(0, nil); len(cmds) != 0 {
		t.Fatal("refresh emitted with empty tables")
	}
}

func TestSequentialMultiAggressorTracking(t *testing.T) {
	// ProHit's selling point: several aggressors activated in rotation
	// still promote their victims. Over many intervals the refreshed rows
	// must include victims of multiple aggressors.
	p := newTest(9)
	aggressors := []int{100, 300, 500, 700}
	refreshed := map[int]bool{}
	for round := 0; round < 3000; round++ {
		for i := 0; i < 40; i++ {
			p.OnActivate(0, aggressors[i%len(aggressors)], 0, nil)
		}
		for _, c := range p.OnRefreshInterval(0, nil) {
			refreshed[c.Row] = true
		}
	}
	hits := 0
	for _, a := range aggressors {
		if refreshed[a-1] || refreshed[a+1] {
			hits++
		}
	}
	if hits < len(aggressors)-1 {
		t.Fatalf("only %d of %d rotated aggressors had victims refreshed", hits, len(aggressors))
	}
}

func TestEdgeRowZero(t *testing.T) {
	p := newTest(1)
	for i := 0; i < 10000; i++ {
		p.OnActivate(0, 0, 0, nil) // victim -1 must be skipped
	}
	tb := &p.banks[0]
	for _, v := range append(append([]int32{}, tb.hot...), tb.cold...) {
		if v < 0 {
			t.Fatal("negative victim tracked")
		}
	}
}

func TestStorageSmall(t *testing.T) {
	p := newTest(1)
	if got := p.TableBytesPerBank(); got > 64 {
		t.Fatalf("ProHit storage %d B, expected tiny (8 entries)", got)
	}
}

func TestResetClearsAndReproduces(t *testing.T) {
	p := newTest(42)
	run := func() int {
		n := 0
		for i := 0; i < 50000; i++ {
			p.OnActivate(0, 100, 0, nil)
			n += len(p.OnRefreshInterval(0, nil))
		}
		return n
	}
	a := run()
	p.Reset()
	if len(p.banks[0].hot)+len(p.banks[0].cold) != 0 {
		t.Fatal("reset left table entries")
	}
	if b := run(); a != b {
		t.Fatalf("replay diverged: %d vs %d", a, b)
	}
}

func TestFactoryRegistered(t *testing.T) {
	f, err := mitigation.Lookup("ProHit")
	if err != nil {
		t.Fatal(err)
	}
	if f(mitigation.Target{Banks: 1, RowsPerBank: 16384, RefInt: 1024, FlipThreshold: 16384}, 1).Name() != "ProHit" {
		t.Fatal("factory mismatch")
	}
}

func TestCycleBudget(t *testing.T) {
	p := newTest(1)
	if p.ActCycles() > 54 || p.RefCycles() > 420 {
		t.Fatal("ProHit exceeds DDR4 cycle budgets")
	}
}

// Package prohit implements ProHit (Son et al., DAC 2017: "Making DRAM
// Stronger Against Row Hammering"): probabilistic management of small
// hot/cold victim tables.
//
// On every activation, the two victim addresses (neighbors of the
// activated row) are probabilistically inserted into a per-bank cold
// table; a victim hit again while in the cold table is probabilistically
// promoted into the hot table, and hits in the hot table move the entry
// one slot toward the top. At each refresh interval, the top hot entry (if
// any) is refreshed and removed. Tracking sequential multi-aggressor
// patterns is ProHit's strength over PARA; the price (per the TiVaPRoMi
// paper) is the highest activation overhead and false-positive rate of the
// compared techniques.
package prohit

import (
	"tivapromi/internal/mitigation"
	"tivapromi/internal/rng"
)

// Config parameterizes ProHit.
type Config struct {
	// RowsPerBank bounds victim addresses.
	RowsPerBank int
	// HotEntries and ColdEntries size the two per-bank tables. The
	// original design uses 4+4.
	HotEntries  int
	ColdEntries int
	// InsertWeight is the fixed-point probability weight (at ProbBits)
	// of inserting a missing victim into the cold table.
	InsertWeight uint64
	// PromoteWeight is the probability weight of promoting on a hit
	// (cold → hot, or one slot up within hot).
	PromoteWeight uint64
	// ProbBits is the comparator resolution.
	ProbBits uint
	// RowBits is the row-address width, for storage accounting.
	RowBits int
}

// DefaultConfig returns the operating point used in the paper's
// comparison: small tables, an insertion probability high enough that the
// hot table's top is usually occupied — which is what drives ProHit's
// characteristic ≈0.6% activation overhead (one refresh per interval per
// bank most of the time).
func DefaultConfig(rowsPerBank int) Config {
	return Config{
		RowsPerBank: rowsPerBank,
		HotEntries:  4,
		ColdEntries: 4,
		// 1/256 insert, 1/4 promote at 23-bit resolution: the operating
		// point where the measured activation overhead on the mixed
		// trace matches the paper's ≈0.6% for ProHit.
		InsertWeight:  1 << 15,
		PromoteWeight: 1 << 21,
		ProbBits:      23,
		RowBits:       17,
	}
}

// ProHit is the mitigation state. Create instances with New.
type ProHit struct {
	cfg   Config
	banks []tables
	bern  *rng.Bernoulli
	src   *rng.LFSR32
	seed  uint64
}

// tables is the per-bank state: hot[0] is the top (next to be refreshed).
type tables struct {
	hot  []int32
	cold []int32
}

// New returns a ProHit instance for the given bank count.
func New(banks int, cfg Config, seed uint64) *ProHit {
	p := &ProHit{cfg: cfg, banks: make([]tables, banks), seed: seed}
	p.Reset()
	return p
}

// Factory adapts New to the registry signature.
func Factory(t mitigation.Target, seed uint64) mitigation.Mitigator {
	return New(t.Banks, DefaultConfig(t.RowsPerBank), seed)
}

// Name implements mitigation.Mitigator.
func (p *ProHit) Name() string { return "ProHit" }

// OnActivate implements mitigation.Mitigator.
func (p *ProHit) OnActivate(bank, row, _ int, cmds []mitigation.Command) []mitigation.Command {
	t := &p.banks[bank]
	for _, victim := range [2]int{row - 1, row + 1} {
		if victim < 0 || victim >= p.cfg.RowsPerBank {
			continue
		}
		v := int32(victim)
		if i := index(t.hot, v); i >= 0 {
			// Hot hit: probabilistically move one slot toward the top.
			if i > 0 && p.bern.Trigger(p.cfg.PromoteWeight) {
				t.hot[i-1], t.hot[i] = t.hot[i], t.hot[i-1]
			}
			continue
		}
		if i := index(t.cold, v); i >= 0 {
			// Cold hit: probabilistically promote to the hot table's
			// bottom, evicting the bottom hot entry into cold.
			if p.bern.Trigger(p.cfg.PromoteWeight) {
				t.cold = remove(t.cold, i)
				if len(t.hot) >= p.cfg.HotEntries {
					demoted := t.hot[len(t.hot)-1]
					t.hot = t.hot[:len(t.hot)-1]
					t.cold = insertFIFO(t.cold, demoted, p.cfg.ColdEntries)
				}
				t.hot = append(t.hot, v)
			}
			continue
		}
		// Miss: probabilistic insertion into the cold table.
		if p.bern.Trigger(p.cfg.InsertWeight) {
			t.cold = insertFIFO(t.cold, v, p.cfg.ColdEntries)
		}
	}
	return cmds
}

// OnRefreshInterval implements mitigation.Mitigator: the top hot entry is
// added to the rows refreshed in this interval.
func (p *ProHit) OnRefreshInterval(_ int, cmds []mitigation.Command) []mitigation.Command {
	for b := range p.banks {
		t := &p.banks[b]
		if len(t.hot) == 0 {
			continue
		}
		top := t.hot[0]
		copy(t.hot, t.hot[1:])
		t.hot = t.hot[:len(t.hot)-1]
		cmds = append(cmds, mitigation.Command{
			Kind: mitigation.RefreshRow, Bank: b, Row: int(top),
		})
	}
	return cmds
}

// OnNewWindow implements mitigation.Mitigator; tables persist across
// windows (they are locality state).
func (p *ProHit) OnNewWindow() {}

// Reset implements mitigation.Mitigator.
func (p *ProHit) Reset() {
	for b := range p.banks {
		p.banks[b].hot = p.banks[b].hot[:0]
		p.banks[b].cold = p.banks[b].cold[:0]
	}
	p.src = rng.NewLFSR32(p.seed ^ 0x960417)
	p.bern = rng.NewBernoulli(p.src, p.cfg.ProbBits)
}

// TableBytesPerBank implements mitigation.Mitigator.
func (p *ProHit) TableBytesPerBank() int {
	return (p.cfg.HotEntries + p.cfg.ColdEntries) * p.cfg.RowBits / 8
}

// EscalatesUnderAttack implements mitigation.Escalation: sustained
// hammering promotes the victim to the hot table's top, where the refresh
// is deterministic (once per refresh interval).
func (p *ProHit) EscalatesUnderAttack() bool { return true }

// ActCycles implements mitigation.CycleModel: both small tables are
// searched and updated for two victims.
func (p *ProHit) ActCycles() int { return 2*(p.cfg.HotEntries+p.cfg.ColdEntries) + 4 }

// RefCycles implements mitigation.CycleModel: pop the top entry.
func (p *ProHit) RefCycles() int { return 2 }

func index(s []int32, v int32) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

func remove(s []int32, i int) []int32 {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

func insertFIFO(s []int32, v int32, max int) []int32 {
	if len(s) >= max {
		copy(s, s[1:])
		s = s[:len(s)-1]
	}
	return append(s, v)
}

func init() { mitigation.Register("ProHit", Factory) }

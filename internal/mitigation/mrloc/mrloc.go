// Package mrloc implements MRLoc (You & Yang, DAC 2019): Row-Hammer
// mitigation based on memory locality.
//
// MRLoc keeps a small per-bank FIFO queue of recently seen victim-row
// addresses (the neighbors of activated rows). When a victim address is
// seen again while still in the queue, it is refreshed with a probability
// weighted by its recency — more recently queued victims get a higher
// probability, exploiting the observation that hammering creates tight
// victim locality. The TiVaPRoMi paper's characterization: slightly lower
// false-positive rate than PARA, but equal-or-higher activation overhead,
// still vulnerable to multi-aggressor patterns, and — because it addresses
// victims by logical row N±1 — broken by spare-row remapping.
package mrloc

import (
	"tivapromi/internal/mitigation"
	"tivapromi/internal/rng"
)

// Config parameterizes MRLoc.
type Config struct {
	// RowsPerBank bounds victim addresses (rows 0 and RowsPerBank-1 have
	// only one neighbor).
	RowsPerBank int
	// QueueSize is the per-bank victim-queue depth.
	QueueSize int
	// BaseWeight is the fixed-point probability weight at ProbBits
	// resolution for a victim at median recency. The effective
	// probability is BaseWeight * 2*(pos+1)/(QueueSize+1) * 2^-ProbBits,
	// where pos is the victim's queue position (tail = most recent =
	// highest).
	BaseWeight uint64
	// ProbBits is the comparator resolution.
	ProbBits uint
	// RowBits is the row-address width, for storage accounting.
	RowBits int
}

// DefaultConfig mirrors the paper's operating point: activation overhead
// on par with PARA (≈0.1%) from a 16-entry locality queue. The small queue
// is also MRLoc's measurable weakness: rotating more victims than the
// queue holds evicts every entry before its second hit, silencing the
// mitigation entirely (the multi-aggressor vulnerability of Table III).
func DefaultConfig(rowsPerBank int) Config {
	return Config{RowsPerBank: rowsPerBank, QueueSize: 16, BaseWeight: 4608, ProbBits: 23, RowBits: 17}
}

// MRLoc is the mitigation state. Create instances with New.
type MRLoc struct {
	cfg   Config
	banks []queue
	bern  *rng.Bernoulli
	src   *rng.LFSR32
	seed  uint64
}

// queue is a per-bank FIFO of victim rows; index 0 is the oldest.
type queue struct {
	rows []int32
}

// New returns an MRLoc instance for the given bank count.
func New(banks int, cfg Config, seed uint64) *MRLoc {
	m := &MRLoc{cfg: cfg, banks: make([]queue, banks), seed: seed}
	m.Reset()
	return m
}

// Factory adapts New to the registry signature, scaling the probability
// resolution with RefInt like the other probabilistic techniques.
func Factory(t mitigation.Target, seed uint64) mitigation.Mitigator {
	cfg := DefaultConfig(t.RowsPerBank)
	bits := uint(10)
	for v := t.RefInt; v > 1; v >>= 1 {
		bits++
	}
	// Keep the effective probability constant: weight scales with 2^bits.
	cfg.ProbBits = bits
	cfg.BaseWeight = uint64(float64(uint64(1)<<bits) * 4608 / float64(uint64(1)<<23))
	return New(t.Banks, cfg, seed)
}

// Name implements mitigation.Mitigator.
func (m *MRLoc) Name() string { return "MRLoc" }

// OnActivate implements mitigation.Mitigator.
func (m *MRLoc) OnActivate(bank, row, _ int, cmds []mitigation.Command) []mitigation.Command {
	q := &m.banks[bank]
	for _, victim := range [2]int{row - 1, row + 1} {
		if victim < 0 || victim >= m.cfg.RowsPerBank {
			continue
		}
		pos := q.find(int32(victim))
		if pos < 0 {
			q.push(int32(victim), m.cfg.QueueSize)
			continue
		}
		// Recency-weighted probability: tail (newest) entries weigh most.
		w := m.cfg.BaseWeight * 2 * uint64(pos+1) / uint64(m.cfg.QueueSize+1)
		if m.bern.Trigger(w) {
			cmds = append(cmds, mitigation.Command{
				Kind: mitigation.RefreshRow, Bank: bank, Row: victim,
			})
			q.remove(pos)
		} else {
			// Move to tail: it stays the most recent locality hint.
			q.remove(pos)
			q.push(int32(victim), m.cfg.QueueSize)
		}
	}
	return cmds
}

// OnRefreshInterval implements mitigation.Mitigator; MRLoc does no
// interval-scoped work.
func (m *MRLoc) OnRefreshInterval(_ int, cmds []mitigation.Command) []mitigation.Command {
	return cmds
}

// OnNewWindow implements mitigation.Mitigator; the queue is locality
// state, not window state, so it persists.
func (m *MRLoc) OnNewWindow() {}

// Reset implements mitigation.Mitigator.
func (m *MRLoc) Reset() {
	for b := range m.banks {
		m.banks[b].rows = m.banks[b].rows[:0]
	}
	m.src = rng.NewLFSR32(m.seed ^ 0x3a10c)
	m.bern = rng.NewBernoulli(m.src, m.cfg.ProbBits)
}

// TableBytesPerBank implements mitigation.Mitigator.
func (m *MRLoc) TableBytesPerBank() int {
	return m.cfg.QueueSize * m.cfg.RowBits / 8
}

// EscalatesUnderAttack implements mitigation.Escalation: MRLoc's base
// probability is static, and under a focused attack the short queue keeps
// the victim near the low-probability head — protection does not
// intensify with attack duration, the property the paper's Table III
// flags ("vulnerable against multiple aggressors like PARA").
func (m *MRLoc) EscalatesUnderAttack() bool { return false }

// ActCycles implements mitigation.CycleModel: sequential queue search plus
// weighted-probability arithmetic for both victims.
func (m *MRLoc) ActCycles() int { return m.cfg.QueueSize + 6 }

// RefCycles implements mitigation.CycleModel.
func (m *MRLoc) RefCycles() int { return 1 }

func (q *queue) find(row int32) int {
	for i, r := range q.rows {
		if r == row {
			return i
		}
	}
	return -1
}

func (q *queue) push(row int32, max int) {
	if len(q.rows) >= max {
		copy(q.rows, q.rows[1:])
		q.rows = q.rows[:len(q.rows)-1]
	}
	q.rows = append(q.rows, row)
}

func (q *queue) remove(pos int) {
	copy(q.rows[pos:], q.rows[pos+1:])
	q.rows = q.rows[:len(q.rows)-1]
}

func init() { mitigation.Register("MRLoc", Factory) }

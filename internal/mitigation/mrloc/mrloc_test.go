package mrloc

import (
	"testing"

	"tivapromi/internal/mitigation"
)

func newTest(seed uint64) *MRLoc { return New(2, DefaultConfig(16384), seed) }

func TestName(t *testing.T) {
	if newTest(1).Name() != "MRLoc" {
		t.Fatal("wrong name")
	}
}

func TestVictimsEnterQueue(t *testing.T) {
	m := newTest(1)
	m.OnActivate(0, 100, 0, nil)
	q := &m.banks[0]
	if q.find(99) < 0 || q.find(101) < 0 {
		t.Fatal("victims 99/101 not queued")
	}
	if q.find(100) >= 0 {
		t.Fatal("aggressor itself queued")
	}
}

func TestQueueBounded(t *testing.T) {
	m := newTest(1)
	for r := 0; r < 1000; r += 2 { // distinct victims
		m.OnActivate(0, r+1, 0, nil)
	}
	if got := len(m.banks[0].rows); got > m.cfg.QueueSize {
		t.Fatalf("queue grew to %d, cap %d", got, m.cfg.QueueSize)
	}
}

func TestRepeatHitsEventuallyRefresh(t *testing.T) {
	m := newTest(3)
	var refreshed bool
	var cmds []mitigation.Command
	for i := 0; i < 200000 && !refreshed; i++ {
		cmds = m.OnActivate(0, 100, 0, cmds[:0])
		for _, c := range cmds {
			if c.Kind != mitigation.RefreshRow {
				t.Fatalf("MRLoc emitted %v", c.Kind)
			}
			if c.Row != 99 && c.Row != 101 {
				t.Fatalf("refreshed unrelated row %d", c.Row)
			}
			refreshed = true
		}
	}
	if !refreshed {
		t.Fatal("hammering never produced a victim refresh")
	}
}

func TestRecencyWeighting(t *testing.T) {
	// A victim at the queue tail must be refreshed sooner (higher p) than
	// one near the head. Compare trigger counts for the two extremes.
	countTriggers := func(victimLast bool) int {
		m := newTest(7)
		trig := 0
		var cmds []mitigation.Command
		for i := 0; i < 300000; i++ {
			// Re-prime the queue each round (without reseeding the PRNG):
			// victim of interest either newest (tail) or oldest (head).
			m.banks[0].rows = m.banks[0].rows[:0]
			if victimLast {
				for f := 0; f < 20; f += 2 {
					m.OnActivate(0, 1000+f, 0, nil)
				}
				m.OnActivate(0, 100, 0, nil)
			} else {
				m.OnActivate(0, 100, 0, nil)
				for f := 0; f < 20; f += 2 {
					m.OnActivate(0, 1000+f, 0, nil)
				}
			}
			cmds = m.OnActivate(0, 100, 0, cmds[:0])
			trig += len(cmds)
		}
		return trig
	}
	tail := countTriggers(true)
	head := countTriggers(false)
	if tail <= head {
		t.Fatalf("recency weighting inverted: tail=%d head=%d", tail, head)
	}
}

func TestBankIsolation(t *testing.T) {
	m := newTest(1)
	m.OnActivate(0, 100, 0, nil)
	if len(m.banks[1].rows) != 0 {
		t.Fatal("bank 1 queue polluted")
	}
}

func TestEdgeRowZero(t *testing.T) {
	m := newTest(1)
	// Row 0 has no lower victim; must not queue -1 or panic.
	m.OnActivate(0, 0, 0, nil)
	if m.banks[0].find(-1) >= 0 {
		t.Fatal("queued victim -1")
	}
	if m.banks[0].find(1) < 0 {
		t.Fatal("victim 1 missing")
	}
}

func TestStorageAccounting(t *testing.T) {
	m := newTest(1)
	want := DefaultConfig(16384).QueueSize * DefaultConfig(16384).RowBits / 8
	if m.TableBytesPerBank() != want {
		t.Fatalf("TableBytesPerBank = %d, want %d", m.TableBytesPerBank(), want)
	}
	if want > 120 {
		t.Fatalf("MRLoc table (%d B) should be comparable to TiVaPRoMi's 120 B", want)
	}
}

func TestResetReproduces(t *testing.T) {
	m := newTest(42)
	run := func() int {
		n := 0
		var cmds []mitigation.Command
		for i := 0; i < 100000; i++ {
			cmds = m.OnActivate(0, 100, 0, cmds[:0])
			n += len(cmds)
		}
		return n
	}
	a := run()
	m.Reset()
	if b := run(); a != b {
		t.Fatalf("replay diverged: %d vs %d", a, b)
	}
}

func TestFactoryRegistered(t *testing.T) {
	f, err := mitigation.Lookup("MRLoc")
	if err != nil {
		t.Fatal(err)
	}
	if f(mitigation.Target{Banks: 1, RowsPerBank: 16384, RefInt: 1024, FlipThreshold: 16384}, 1).Name() != "MRLoc" {
		t.Fatal("factory mismatch")
	}
}

func TestCycleBudget(t *testing.T) {
	m := newTest(1)
	if m.ActCycles() > 54 || m.RefCycles() > 420 {
		t.Fatal("MRLoc exceeds DDR4 cycle budgets")
	}
}

package mitigation

import (
	"strings"
	"testing"
)

func TestCommandKindString(t *testing.T) {
	cases := map[CommandKind]string{
		ActN:            "act_n",
		ActNOne:         "act_n_one",
		RefreshRow:      "refresh_row",
		CommandKind(42): "CommandKind(42)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestRegistryLifecycle(t *testing.T) {
	fake := func(Target, uint64) Mitigator { return nil }
	Register("test-technique", fake)
	if _, err := Lookup("test-technique"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range Names() {
		if n == "test-technique" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered name missing from Names()")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("test-technique", fake)
}

func TestLookupUnknownListsKnown(t *testing.T) {
	_, err := Lookup("definitely-not-registered")
	if err == nil {
		t.Fatal("unknown lookup succeeded")
	}
	if !strings.Contains(err.Error(), "known:") {
		t.Fatalf("error does not list known techniques: %v", err)
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

// Package mtest provides the behavioral contract every Row-Hammer
// mitigation must satisfy, as a reusable test harness. Each technique's
// package invokes RunContract against its factory, so structural rules —
// command validity, bank isolation, determinism, window hygiene, cycle
// budgets — are enforced uniformly for the paper's nine techniques and
// any extension registered later.
package mtest

import (
	"testing"

	"tivapromi/internal/mitigation"
	"tivapromi/internal/rng"
)

// Target is the device geometry used by the contract checks.
func Target() mitigation.Target {
	return mitigation.Target{
		Banks:         2,
		RowsPerBank:   16384,
		RefInt:        1024,
		FlipThreshold: 16384,
	}
}

// RunContract runs every contract check against the factory.
func RunContract(t *testing.T, factory mitigation.Factory) {
	t.Helper()
	t.Run("CommandsWellFormed", func(t *testing.T) { checkCommandsWellFormed(t, factory) })
	t.Run("Deterministic", func(t *testing.T) { checkDeterministic(t, factory) })
	t.Run("ResetRestoresInitialState", func(t *testing.T) { checkReset(t, factory) })
	t.Run("BankIsolation", func(t *testing.T) { checkBankIsolation(t, factory) })
	t.Run("SurvivesWindowChurn", func(t *testing.T) { checkWindowChurn(t, factory) })
	t.Run("EdgeRowsSafe", func(t *testing.T) { checkEdgeRows(t, factory) })
	t.Run("CycleBudgets", func(t *testing.T) { checkCycleBudgets(t, factory) })
	t.Run("StorageReported", func(t *testing.T) { checkStorage(t, factory) })
	t.Run("SustainedAttackAnswered", func(t *testing.T) { checkSustainedAttack(t, factory) })
	t.Run("DeterministicAfterFaultRestore", func(t *testing.T) { checkFaultRestore(t, factory) })
	t.Run("ValidUnderStuckRNG", func(t *testing.T) { checkStuckRNG(t, factory) })
}

// drive pushes a deterministic mixed stream (hot rows + scattered rows +
// a hammered pair) through the mitigation and returns every emitted
// command.
func drive(m mitigation.Mitigator, seed uint64, intervals int) []mitigation.Command {
	tgt := Target()
	src := rng.NewXorShift64Star(seed)
	var out []mitigation.Command
	var cmds []mitigation.Command
	for iv := 0; iv < intervals; iv++ {
		inWindow := iv % tgt.RefInt
		for i := 0; i < 40; i++ {
			var bank, row int
			switch i % 4 {
			case 0, 1: // hammered pair in bank 0
				bank, row = 0, 5000+2*(i&1)
			case 2: // hot row in bank 1
				bank, row = 1, 100
			default: // scattered
				bank, row = rng.Intn(src, tgt.Banks), rng.Intn(src, tgt.RowsPerBank)
			}
			cmds = m.OnActivate(bank, row, inWindow, cmds[:0])
			out = append(out, cmds...)
		}
		cmds = m.OnRefreshInterval(inWindow, cmds[:0])
		out = append(out, cmds...)
		if inWindow == tgt.RefInt-1 {
			m.OnNewWindow()
		}
	}
	return out
}

func checkCommandsWellFormed(t *testing.T, factory mitigation.Factory) {
	tgt := Target()
	m := factory(tgt, 1)
	for _, cmd := range drive(m, 1, 300) {
		if cmd.Bank < 0 || cmd.Bank >= tgt.Banks {
			t.Fatalf("command with bank %d out of range", cmd.Bank)
		}
		if cmd.Row < 0 || cmd.Row >= tgt.RowsPerBank {
			t.Fatalf("command with row %d out of range", cmd.Row)
		}
		switch cmd.Kind {
		case mitigation.ActN, mitigation.RefreshRow:
		case mitigation.ActNOne:
			if cmd.Side != 1 && cmd.Side != -1 {
				t.Fatalf("one-sided command with side %d", cmd.Side)
			}
		default:
			t.Fatalf("unknown command kind %v", cmd.Kind)
		}
	}
}

func checkDeterministic(t *testing.T, factory mitigation.Factory) {
	a := drive(factory(Target(), 7), 3, 200)
	b := drive(factory(Target(), 7), 3, 200)
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d commands", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("command %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func checkReset(t *testing.T, factory mitigation.Factory) {
	m := factory(Target(), 7)
	a := drive(m, 3, 200)
	m.Reset()
	b := drive(m, 3, 200)
	if len(a) != len(b) {
		t.Fatalf("reset replay produced %d vs %d commands", len(a), len(b))
	}
}

func checkBankIsolation(t *testing.T, factory mitigation.Factory) {
	// Hammer only bank 0; no command may ever target bank 1.
	m := factory(Target(), 5)
	var cmds []mitigation.Command
	for iv := 0; iv < 300; iv++ {
		for i := 0; i < 40; i++ {
			cmds = m.OnActivate(0, 5000+2*(i&1), iv%Target().RefInt, cmds[:0])
			for _, c := range cmds {
				if c.Bank != 0 {
					t.Fatalf("bank-0 traffic produced a command for bank %d", c.Bank)
				}
			}
		}
		cmds = m.OnRefreshInterval(iv%Target().RefInt, cmds[:0])
		for _, c := range cmds {
			if c.Bank != 0 {
				t.Fatalf("bank-0 traffic produced a ref command for bank %d", c.Bank)
			}
		}
	}
}

func checkWindowChurn(t *testing.T, factory mitigation.Factory) {
	// Three full windows of traffic: no panic, commands stay well-formed.
	m := factory(Target(), 9)
	tgt := Target()
	for _, cmd := range drive(m, 9, 3*tgt.RefInt) {
		if cmd.Row < 0 || cmd.Row >= tgt.RowsPerBank {
			t.Fatalf("row %d out of range after window churn", cmd.Row)
		}
	}
}

func checkEdgeRows(t *testing.T, factory mitigation.Factory) {
	// Rows 0 and RowsPerBank-1 have one physical neighbor; the mitigation
	// must handle hammering them without panicking or emitting
	// out-of-range commands.
	tgt := Target()
	m := factory(tgt, 11)
	var cmds []mitigation.Command
	for iv := 0; iv < 200; iv++ {
		for i := 0; i < 40; i++ {
			row := 0
			if i&1 == 1 {
				row = tgt.RowsPerBank - 1
			}
			cmds = m.OnActivate(0, row, iv, cmds[:0])
			for _, c := range cmds {
				if c.Row < 0 || c.Row >= tgt.RowsPerBank {
					t.Fatalf("edge hammering emitted row %d", c.Row)
				}
			}
		}
		cmds = m.OnRefreshInterval(iv, cmds[:0])
		for _, c := range cmds {
			if c.Row < 0 || c.Row >= tgt.RowsPerBank {
				t.Fatalf("edge hammering emitted row %d at ref", c.Row)
			}
		}
	}
}

func checkCycleBudgets(t *testing.T, factory mitigation.Factory) {
	m := factory(Target(), 1)
	cm, ok := m.(mitigation.CycleModel)
	if !ok {
		t.Skip("no cycle model")
	}
	// DDR4 budgets (Table I derivation): 54 cycles per act, 420 per ref.
	// TWiCe's serial ref pass intentionally blows the budget — that is
	// the paper's point about it needing CAM parallelism — so only the
	// act path is a hard contract.
	if cm.ActCycles() <= 0 || cm.RefCycles() <= 0 {
		t.Fatal("non-positive cycle counts")
	}
	if cm.ActCycles() > 54 {
		t.Errorf("act path %d cycles exceeds the DDR4 budget", cm.ActCycles())
	}
}

func checkStorage(t *testing.T, factory mitigation.Factory) {
	if b := factory(Target(), 1).TableBytesPerBank(); b < 0 {
		t.Fatalf("negative storage %d", b)
	}
}

func checkSustainedAttack(t *testing.T, factory mitigation.Factory) {
	// A full window of maximum-rate double-sided hammering must produce
	// at least one protective command from any credible mitigation.
	tgt := Target()
	m := factory(tgt, 13)
	protective := 0
	var cmds []mitigation.Command
	for iv := 0; iv < tgt.RefInt; iv++ {
		for i := 0; i < 160; i++ {
			row := 5000 + 2*(i&1)
			cmds = m.OnActivate(0, row, iv, cmds[:0])
			protective += countProtective(cmds)
		}
		cmds = m.OnRefreshInterval(iv, cmds[:0])
		protective += countProtective(cmds)
	}
	if protective == 0 {
		t.Fatal("a full window of max-rate hammering produced no protection")
	}
}

func checkFaultRestore(t *testing.T, factory mitigation.Factory) {
	// Techniques exposing SRAM state for fault injection must come back
	// deterministic after an inject/Reset cycle: corrupt the live state
	// heavily, Reset, and the replay must match a fresh instance command
	// for command. This is the property the degradation sweeps rely on —
	// a Reset between campaign points fully discards injected damage.
	m := factory(Target(), 7)
	si, ok := m.(mitigation.StateInjectable)
	if !ok {
		t.Skip("no injectable state")
	}
	drive(m, 3, 50)
	inj := rng.NewXorShift64Star(0xfa017)
	for i := 0; i < 64; i++ {
		si.InjectStateFault(inj)
	}
	m.Reset()
	a := drive(m, 3, 200)
	b := drive(factory(Target(), 7), 3, 200)
	if len(a) != len(b) {
		t.Fatalf("post-fault replay produced %d commands, fresh instance %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("command %d diverged after fault/restore: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func checkStuckRNG(t *testing.T, factory mitigation.Factory) {
	// Techniques with a hardware Bernoulli path must degrade gracefully
	// when the LFSR sticks: whatever they still emit stays well-formed.
	// Both extremes are driven — stuck-at-ones (non-selection: protection
	// silently stops) and stuck-at-zero (every comparison fires).
	tgt := Target()
	for _, stuck := range []uint64{0, ^uint64(0)} {
		m := factory(tgt, 1)
		rs, ok := m.(mitigation.RandSettable)
		if !ok {
			t.Skip("no RNG to degrade")
		}
		rs.SetRandSource(rng.NewStuckSource(stuck))
		for _, cmd := range drive(m, 1, 300) {
			if cmd.Bank < 0 || cmd.Bank >= tgt.Banks {
				t.Fatalf("stuck=%#x: command bank %d out of range", stuck, cmd.Bank)
			}
			if cmd.Row < 0 || cmd.Row >= tgt.RowsPerBank {
				t.Fatalf("stuck=%#x: command row %d out of range", stuck, cmd.Row)
			}
			if cmd.Kind == mitigation.ActNOne && cmd.Side != 1 && cmd.Side != -1 {
				t.Fatalf("stuck=%#x: one-sided command with side %d", stuck, cmd.Side)
			}
		}
	}
}

func countProtective(cmds []mitigation.Command) int {
	n := 0
	for _, c := range cmds {
		switch c.Kind {
		case mitigation.ActN, mitigation.ActNOne:
			if c.Row == 5000 || c.Row == 5002 {
				n++
			}
		case mitigation.RefreshRow:
			if c.Row == 5001 {
				n++
			}
		}
	}
	return n
}

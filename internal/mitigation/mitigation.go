// Package mitigation defines the interface every Row-Hammer mitigation
// technique implements, the command types mitigations emit toward the
// memory controller, and a registry used by the CLI tools.
//
// The driver protocol mirrors how a memory-controller extension observes
// traffic (Fig. 1 of the paper):
//
//	for each refresh interval i in a window:
//	    for each activation:    cmds = m.OnActivate(bank, row, i, cmds)
//	    at the interval's end:  cmds = m.OnRefreshInterval(i, cmds)
//	at the window's end:        m.OnNewWindow()
//
// Emitted commands are executed by the driver against the DRAM device.
package mitigation

import (
	"fmt"
	"sort"

	"tivapromi/internal/rng"
)

// CommandKind distinguishes the two maintenance commands mitigations use.
type CommandKind uint8

const (
	// ActN asks the device to activate both physical neighbors of Row,
	// resolving the internal mapping in the DRAM (the command used by
	// TWiCe, CRA and TiVaPRoMi).
	ActN CommandKind = iota
	// ActNOne activates the single physical neighbor on side Side of
	// Row (PARA refreshes one randomly chosen neighbor per trigger).
	ActNOne
	// RefreshRow refreshes one row addressed directly by its logical
	// address (the style ProHit and MRLoc use on their victim-table
	// entries; it can miss the real victim when rows are remapped).
	RefreshRow
)

// String implements fmt.Stringer.
func (k CommandKind) String() string {
	switch k {
	case ActN:
		return "act_n"
	case ActNOne:
		return "act_n_one"
	case RefreshRow:
		return "refresh_row"
	default:
		return fmt.Sprintf("CommandKind(%d)", uint8(k))
	}
}

// Command is one maintenance operation emitted by a mitigation.
type Command struct {
	Kind CommandKind
	Bank int
	Row  int
	// Side selects the neighbor for ActNOne (-1 or +1); ignored otherwise.
	Side int8
}

// Mitigator is a Row-Hammer mitigation technique. Implementations keep one
// state instance per bank internally (banks are attacked independently).
// Implementations are not safe for concurrent use.
type Mitigator interface {
	// Name returns the technique's short name as used in the paper.
	Name() string
	// OnActivate observes a normal activation of (bank, row) during
	// in-window refresh interval `interval` and appends any maintenance
	// commands to cmds, returning the extended slice.
	OnActivate(bank, row, interval int, cmds []Command) []Command
	// OnRefreshInterval observes the end of in-window refresh interval
	// `interval` (just before the auto-refresh command) and appends any
	// maintenance commands.
	OnRefreshInterval(interval int, cmds []Command) []Command
	// OnNewWindow tells the mitigation a refresh window completed;
	// window-scoped state (history tables, counters) is cleared.
	OnNewWindow()
	// Reset restores the mitigation to its initial state, including its
	// PRNG, so a simulation can be replayed.
	Reset()
	// TableBytesPerBank reports the per-bank storage requirement in
	// bytes (Fig. 4's x-axis). Stateless techniques report 0.
	TableBytesPerBank() int
}

// Escalation is implemented by every technique to report whether its
// per-victim protection intensifies as an attack proceeds. Counter-based
// techniques escalate to a deterministic trigger, ProHit promotes tracked
// victims toward a guaranteed refresh, and TiVaPRoMi's weights ramp with
// time; PARA and MRLoc apply the same static base probability to the
// 100,000th hammering activation as to the first. Son et al. [17] showed
// that such non-escalating schemes are vulnerable to scheduled
// multi-aggressor patterns — the basis of Table III's "vulnerable" marks
// for PARA and MRLoc.
type Escalation interface {
	// EscalatesUnderAttack reports whether sustained hammering of one
	// victim raises the per-activation protection probability.
	EscalatesUnderAttack() bool
}

// CycleModel is implemented by mitigations whose processing latency per
// observed command is known (Table II). Values are clock cycles at the
// memory interface frequency.
type CycleModel interface {
	// ActCycles is the FSM loop length after an observed act command.
	ActCycles() int
	// RefCycles is the FSM loop length after an observed ref command.
	RefCycles() int
}

// StateInjectable is implemented by mitigations whose internal SRAM state
// (history tables, counter tables) can be corrupted for fault-injection
// studies. An injection models a single-event upset: one bit of one live
// state element flips. Implementations must mask flipped fields to their
// hardware widths so a corrupted mitigation degrades — misses victims,
// triggers spuriously — but never emits an out-of-range command; address
// decoders bound what a real SRAM fault can express.
type StateInjectable interface {
	// InjectStateFault flips one random bit of live mitigation state,
	// drawing all randomness from src. It reports whether any state was
	// modified (techniques with no live entries at the moment of
	// injection return false).
	InjectStateFault(src rng.Source) bool
}

// RandSettable is implemented by probabilistic mitigations whose decision
// entropy can be rerouted for fault-injection studies (stuck, biased or
// periodic LFSR output). Passing nil restores the built-in generator.
// Reset must preserve an installed override — a hardware RNG fault does
// not heal on state reset — but reseed it so replays stay deterministic.
type RandSettable interface {
	SetRandSource(src rng.Source)
}

// Target describes the protected device to a mitigation factory.
type Target struct {
	// Banks, RowsPerBank and RefInt mirror the dram.Params structure.
	Banks       int
	RowsPerBank int
	RefInt      int
	// FlipThreshold is the Row-Hammer threshold the mitigation must
	// defend (139 K in the paper); counter-based techniques derive their
	// trigger thresholds from it.
	FlipThreshold uint32
}

// Factory builds a fresh Mitigator for a target device; seed drives the
// mitigation's internal PRNG.
type Factory func(t Target, seed uint64) Mitigator

var registry = map[string]Factory{}

// Register adds a named factory. It panics on duplicates; registration
// happens at init time and a collision is a programming error.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("mitigation: duplicate registration of %q", name))
	}
	registry[name] = f
}

// Lookup returns the factory for name, or an error listing the known names.
func Lookup(name string) (Factory, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("mitigation: unknown technique %q (known: %v)", name, Names())
	}
	return f, nil
}

// Names returns the registered technique names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Package twice implements TWiCe (Lee et al., ISCA 2019: "TWiCe:
// Preventing Row-hammering by Exploiting Time Window Counters").
//
// TWiCe counts activations per row in a pruned per-bank table. The key
// insight: a row can only be a dangerous aggressor if it sustains a
// minimum activation rate, so at the end of every refresh interval each
// entry's count is compared against a threshold that grows with the
// entry's lifetime (life * thPI); entries below it provably cannot reach
// the Row-Hammer threshold within the window and are evicted. Rows whose
// count reaches thRH get a deterministic act_n. Counting makes TWiCe
// near-zero-overhead and zero-false-positive, but the CAM-backed table is
// large (≈3.2 KB per bank) and expensive in logic — the trade-off
// TiVaPRoMi's Fig. 4 positions itself against.
package twice

import (
	"tivapromi/internal/mitigation"
	"tivapromi/internal/rng"
)

// Config parameterizes TWiCe.
type Config struct {
	// ThRH is the activation count at which a row's neighbors are
	// refreshed. The canonical choice is FlipThreshold/4: halved because
	// both neighbors of a victim may be hammered, halved again as a
	// safety margin.
	ThRH uint32
	// RefInt is the number of refresh intervals per window; the pruning
	// threshold per interval is ThRH/RefInt.
	RefInt int
	// MaxEntries bounds the table, per the TWiCe paper's occupancy
	// analysis (≈550 entries suffice for DDR4). Overflow evictions are
	// counted in Overflows; they indicate the bound was violated.
	MaxEntries int
	// RowBits is the row-address width, for storage accounting.
	RowBits int
}

// DefaultConfig returns the DDR4 configuration for a given flip threshold
// and window structure.
func DefaultConfig(flipThreshold uint32, refInt int) Config {
	return Config{
		ThRH:       flipThreshold / 4,
		RefInt:     refInt,
		MaxEntries: 550,
		RowBits:    17,
	}
}

// TWiCe is the mitigation state. Create instances with New.
type TWiCe struct {
	cfg   Config
	banks []table
	// Overflows counts forced evictions beyond the pruning rule; a
	// correctly sized table keeps this at zero.
	Overflows uint64
}

type entry struct {
	row  int32
	cnt  uint32
	life uint32
}

type table struct {
	entries []entry
	// index maps row -> position in entries through a flat
	// open-addressing hash (see index.go); the seed used a Go map here,
	// which put a hash-interface call and heap traffic on every observed
	// activation.
	index *rowIndex
}

// New returns a TWiCe instance for the given bank count.
func New(banks int, cfg Config) *TWiCe {
	t := &TWiCe{cfg: cfg, banks: make([]table, banks)}
	t.Reset()
	return t
}

// Factory adapts New to the registry signature, deriving the trigger
// threshold from the target's flip threshold.
func Factory(t mitigation.Target, _ uint64) mitigation.Mitigator {
	return New(t.Banks, DefaultConfig(t.FlipThreshold, t.RefInt))
}

// Name implements mitigation.Mitigator.
func (t *TWiCe) Name() string { return "TWiCe" }

// OnActivate implements mitigation.Mitigator.
func (t *TWiCe) OnActivate(bank, row, _ int, cmds []mitigation.Command) []mitigation.Command {
	tb := &t.banks[bank]
	r := int32(row)
	if i, ok := tb.index.get(r); ok {
		e := &tb.entries[i]
		e.cnt++
		if e.cnt >= t.cfg.ThRH {
			// Deterministic mitigation; restart the count so another
			// thRH activations are needed before the next act_n.
			e.cnt = 0
			e.life = 0
			cmds = append(cmds, mitigation.Command{
				Kind: mitigation.ActN, Bank: bank, Row: row,
			})
		}
		return cmds
	}
	if len(tb.entries) >= t.cfg.MaxEntries {
		t.Overflows++
		t.evictColdest(tb)
	}
	tb.index.put(r, int32(len(tb.entries)))
	tb.entries = append(tb.entries, entry{row: r, cnt: 1})
	return cmds
}

// evictColdest removes the entry with the smallest count (a forced
// eviction used only on overflow).
func (t *TWiCe) evictColdest(tb *table) {
	min := 0
	for i := 1; i < len(tb.entries); i++ {
		if tb.entries[i].cnt < tb.entries[min].cnt {
			min = i
		}
	}
	t.removeAt(tb, min)
}

func (t *TWiCe) removeAt(tb *table, i int) {
	tb.index.del(tb.entries[i].row)
	last := len(tb.entries) - 1
	if i != last {
		tb.entries[i] = tb.entries[last]
		tb.index.put(tb.entries[i].row, int32(i))
	}
	tb.entries = tb.entries[:last]
}

// OnRefreshInterval implements mitigation.Mitigator: the pruning step.
// An entry of lifetime L must have accumulated at least L*ThRH/RefInt
// activations, or it cannot reach ThRH by the window's end and is evicted.
func (t *TWiCe) OnRefreshInterval(_ int, cmds []mitigation.Command) []mitigation.Command {
	for b := range t.banks {
		tb := &t.banks[b]
		for i := 0; i < len(tb.entries); {
			e := &tb.entries[i]
			e.life++
			// Prune iff cnt < ThRH/RefInt * life, in integer math:
			if uint64(e.cnt)*uint64(t.cfg.RefInt) < uint64(t.cfg.ThRH)*uint64(e.life) {
				t.removeAt(tb, i)
				continue
			}
			i++
		}
	}
	return cmds
}

// OnNewWindow implements mitigation.Mitigator: counters are window-scoped.
func (t *TWiCe) OnNewWindow() {
	for b := range t.banks {
		t.banks[b].entries = t.banks[b].entries[:0]
		t.banks[b].index.clear()
	}
}

// Reset implements mitigation.Mitigator. The entry slice is preallocated
// to the table bound so the activation path never allocates.
func (t *TWiCe) Reset() {
	for b := range t.banks {
		if t.banks[b].entries == nil {
			t.banks[b].entries = make([]entry, 0, t.cfg.MaxEntries)
			t.banks[b].index = newRowIndex(t.cfg.MaxEntries)
		} else {
			t.banks[b].entries = t.banks[b].entries[:0]
			t.banks[b].index.clear()
		}
	}
	t.Overflows = 0
}

// TableBytesPerBank implements mitigation.Mitigator: MaxEntries CAM+count
// entries (row address, activation count, lifetime, valid bit).
func (t *TWiCe) TableBytesPerBank() int {
	cntBits := bitsFor(t.cfg.ThRH)
	lifeBits := bitsFor(uint32(t.cfg.RefInt))
	return t.cfg.MaxEntries * (t.cfg.RowBits + cntBits + lifeBits + 1) / 8
}

// ActCycles implements mitigation.CycleModel: a CAM lookup plus counter
// update — constant time, which is exactly why TWiCe needs the expensive
// CAM.
func (t *TWiCe) ActCycles() int { return 3 }

// RefCycles implements mitigation.CycleModel: the pruning pass touches
// every entry; hardware does this in parallel lanes, the serial equivalent
// is one cycle per entry.
func (t *TWiCe) RefCycles() int { return t.cfg.MaxEntries }

// Live returns the current number of live entries in a bank's table,
// for occupancy studies.
func (t *TWiCe) Live(bank int) int { return len(t.banks[bank].entries) }

// InjectStateFault implements mitigation.StateInjectable: one bit flip in
// the activation count or lifetime field of a random live entry (SRAM
// SEU). A count flipped high fires a premature act_n; flipped low (or a
// corrupted lifetime) the pruning rule silently evicts a real aggressor —
// the dangerous direction for a counter-based guarantee. Row-address CAM
// bits are left alone: the CAM index must stay coherent, and the count
// fields already cover both failure directions.
func (t *TWiCe) InjectStateFault(src rng.Source) bool {
	// Deterministically scan from a random bank for one with live entries.
	start := rng.Intn(src, len(t.banks))
	for off := 0; off < len(t.banks); off++ {
		tb := &t.banks[(start+off)%len(t.banks)]
		if len(tb.entries) == 0 {
			continue
		}
		e := &tb.entries[rng.Intn(src, len(tb.entries))]
		if rng.Intn(src, 2) == 0 {
			e.cnt ^= 1 << rng.Intn(src, max(bitsFor(t.cfg.ThRH), 1))
		} else {
			e.life ^= 1 << rng.Intn(src, max(bitsFor(uint32(t.cfg.RefInt)), 1))
		}
		return true
	}
	return false
}

// EscalatesUnderAttack implements mitigation.Escalation: counting is
// deterministic escalation.
func (t *TWiCe) EscalatesUnderAttack() bool { return true }

func bitsFor(v uint32) int {
	n := 0
	for x := v; x > 0; x >>= 1 {
		n++
	}
	if n == 0 {
		n = 1
	}
	return n
}

func init() { mitigation.Register("TWiCe", Factory) }

package twice

import (
	"testing"

	"tivapromi/internal/rng"
)

// TestRowIndexMatchesMapReference drives the open-addressing index with a
// random mix of put/del/get operations and cross-checks every observable
// against a plain Go map. Backward-shift deletion is the delicate part: the
// op mix leans on del so long probe chains get vacated and re-walked.
func TestRowIndexMatchesMapReference(t *testing.T) {
	const capEntries = 64
	ix := newRowIndex(capEntries)
	ref := make(map[int32]int32)
	src := rng.NewLFSR32(12345)

	// Rows drawn from a small universe so collisions and re-puts are common.
	const universe = 256
	for op := 0; op < 200000; op++ {
		row := int32(rng.Intn(src, universe))
		switch rng.Intn(src, 4) {
		case 0, 1: // put (2/4) — but respect the capacity bound
			if _, ok := ref[row]; !ok && len(ref) >= capEntries {
				// Table full: delete something instead to stay in contract.
				for k := range ref {
					delete(ref, k)
					ix.del(k)
					break
				}
			}
			pos := int32(rng.Intn(src, 1 << 20))
			ref[row] = pos
			ix.put(row, pos)
		case 2: // del
			delete(ref, row)
			ix.del(row)
		default: // get
			want, wantOK := ref[row]
			got, gotOK := ix.get(row)
			if gotOK != wantOK || (wantOK && got != want) {
				t.Fatalf("op %d: get(%d) = (%d,%v), want (%d,%v)",
					op, row, got, gotOK, want, wantOK)
			}
		}
		if ix.len() != len(ref) {
			t.Fatalf("op %d: len = %d, want %d", op, ix.len(), len(ref))
		}
	}

	// Full sweep at the end: every key agrees in both directions.
	for row, want := range ref {
		got, ok := ix.get(row)
		if !ok || got != want {
			t.Fatalf("final: get(%d) = (%d,%v), want (%d,true)", row, got, ok, want)
		}
	}
	for row := int32(0); row < universe; row++ {
		if _, ok := ix.get(row); ok {
			if _, refOK := ref[row]; !refOK {
				t.Fatalf("final: get(%d) present, absent in reference", row)
			}
		}
	}
}

// TestRowIndexClearAndReuse verifies clear empties the index and the
// structure is fully usable afterwards (Reset/OnNewWindow path).
func TestRowIndexClearAndReuse(t *testing.T) {
	ix := newRowIndex(8)
	for r := int32(0); r < 8; r++ {
		ix.put(r, r*10)
	}
	ix.clear()
	if ix.len() != 0 {
		t.Fatalf("len after clear = %d, want 0", ix.len())
	}
	for r := int32(0); r < 8; r++ {
		if _, ok := ix.get(r); ok {
			t.Fatalf("get(%d) present after clear", r)
		}
	}
	ix.put(3, 99)
	if v, ok := ix.get(3); !ok || v != 99 {
		t.Fatalf("get(3) after reuse = (%d,%v), want (99,true)", v, ok)
	}
}

// TestRowIndexRowZero pins the row+1 key encoding: row 0 must be storable
// and distinguishable from an empty slot.
func TestRowIndexRowZero(t *testing.T) {
	ix := newRowIndex(4)
	if _, ok := ix.get(0); ok {
		t.Fatal("get(0) present on empty index")
	}
	ix.put(0, 7)
	if v, ok := ix.get(0); !ok || v != 7 {
		t.Fatalf("get(0) = (%d,%v), want (7,true)", v, ok)
	}
	ix.del(0)
	if _, ok := ix.get(0); ok {
		t.Fatal("get(0) present after del")
	}
}

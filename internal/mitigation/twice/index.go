package twice

// rowIndex is a flat open-addressing hash index from row address to the
// row's position in a bank's entry slice. It replaces the Go map the seed
// implementation used: the per-activation lookup — the simulator stand-in
// for TWiCe's CAM — becomes a multiplicative hash plus a short linear
// probe over one contiguous int32 array, with no hashing interface calls
// and no allocation after construction. Capacity is fixed at twice the
// table bound (load factor ≤ 0.5), and deletion uses backward-shift
// compaction so the probe sequences stay tombstone-free forever.
type rowIndex struct {
	keys []int32 // row+1; 0 marks an empty slot (rows are ≥ 0)
	vals []int32 // position in the entry slice
	mask uint32  // len(keys)-1; len is a power of two
	n    int
}

// newRowIndex returns an index able to hold at least capEntries keys at
// ≤ 50% load.
func newRowIndex(capEntries int) *rowIndex {
	size := 16
	for size < capEntries*2 {
		size <<= 1
	}
	return &rowIndex{
		keys: make([]int32, size),
		vals: make([]int32, size),
		mask: uint32(size - 1),
	}
}

// slot is the home position of a stored key (row+1).
func (ix *rowIndex) slot(key int32) uint32 {
	// Fibonacci hashing spreads the near-sequential row addresses an
	// attack produces.
	return (uint32(key) * 2654435761) & ix.mask
}

// get returns the stored position for row and whether it is present.
func (ix *rowIndex) get(row int32) (int32, bool) {
	key := row + 1
	for i := ix.slot(key); ; i = (i + 1) & ix.mask {
		k := ix.keys[i]
		if k == key {
			return ix.vals[i], true
		}
		if k == 0 {
			return 0, false
		}
	}
}

// put inserts or updates row → pos. The caller keeps the key count at or
// below the construction bound; the ≤ 50% load factor guarantees an empty
// slot terminates every probe.
func (ix *rowIndex) put(row, pos int32) {
	key := row + 1
	for i := ix.slot(key); ; i = (i + 1) & ix.mask {
		k := ix.keys[i]
		if k == key {
			ix.vals[i] = pos
			return
		}
		if k == 0 {
			ix.keys[i] = key
			ix.vals[i] = pos
			ix.n++
			return
		}
	}
}

// del removes row from the index (a no-op when absent) using
// backward-shift deletion: subsequent probe-chain members whose home slot
// lies at or before the vacated position slide back, so no tombstones
// accumulate however many prune/evict cycles run.
func (ix *rowIndex) del(row int32) {
	key := row + 1
	i := ix.slot(key)
	for ; ; i = (i + 1) & ix.mask {
		k := ix.keys[i]
		if k == key {
			break
		}
		if k == 0 {
			return
		}
	}
	ix.n--
	for {
		ix.keys[i] = 0
		j := i
		for {
			j = (j + 1) & ix.mask
			k := ix.keys[j]
			if k == 0 {
				return
			}
			// Move k back iff the vacated slot i lies cyclically within
			// [home(k), j); otherwise k is already at or past its home.
			h := ix.slot(k)
			if (j-h)&ix.mask >= (j-i)&ix.mask {
				ix.keys[i] = k
				ix.vals[i] = ix.vals[j]
				i = j
				break
			}
		}
	}
}

// clear empties the index, keeping the allocation.
func (ix *rowIndex) clear() {
	if ix.n == 0 {
		return
	}
	for i := range ix.keys {
		ix.keys[i] = 0
	}
	ix.n = 0
}

// len returns the number of stored keys.
func (ix *rowIndex) len() int { return ix.n }

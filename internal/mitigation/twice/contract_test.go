package twice

import (
	"testing"

	"tivapromi/internal/mitigation/mtest"
)

func TestMitigationContract(t *testing.T) {
	mtest.RunContract(t, Factory)
}

package twice

import (
	"testing"

	"tivapromi/internal/mitigation"
)

func testConfig() Config {
	// Small thresholds so tests run fast: thRH 256 over 64 intervals
	// (pruning threshold 4 per interval of life).
	return Config{ThRH: 256, RefInt: 64, MaxEntries: 32, RowBits: 17}
}

func TestName(t *testing.T) {
	if New(1, testConfig()).Name() != "TWiCe" {
		t.Fatal("wrong name")
	}
}

func TestDeterministicTriggerAtThreshold(t *testing.T) {
	tw := New(1, testConfig())
	var cmds []mitigation.Command
	for i := uint32(0); i < testConfig().ThRH-1; i++ {
		cmds = tw.OnActivate(0, 100, 0, cmds)
	}
	if len(cmds) != 0 {
		t.Fatal("triggered before threshold")
	}
	cmds = tw.OnActivate(0, 100, 0, cmds)
	if len(cmds) != 1 || cmds[0].Kind != mitigation.ActN || cmds[0].Row != 100 {
		t.Fatalf("threshold trigger wrong: %+v", cmds)
	}
	// The count restarts: the very next activation must not trigger.
	if cmds = tw.OnActivate(0, 100, 0, cmds[:0]); len(cmds) != 0 {
		t.Fatal("retriggered immediately after reset")
	}
}

func TestPruningEvictsSlowRows(t *testing.T) {
	tw := New(1, testConfig())
	// One activation, then one pruning pass: cnt(1)*64 < 256*1 ⇒ evicted.
	tw.OnActivate(0, 100, 0, nil)
	tw.OnRefreshInterval(0, nil)
	if tw.Live(0) != 0 {
		t.Fatalf("slow row survived pruning: live=%d", tw.Live(0))
	}
}

func TestPruningKeepsFastRows(t *testing.T) {
	tw := New(1, testConfig())
	// 10 activations before the pruning pass: 10*64 >= 256 ⇒ kept.
	for i := 0; i < 10; i++ {
		tw.OnActivate(0, 100, 0, nil)
	}
	tw.OnRefreshInterval(0, nil)
	if tw.Live(0) != 1 {
		t.Fatalf("fast row pruned: live=%d", tw.Live(0))
	}
	// After several idle pruning passes the lifetime threshold catches up.
	for i := 0; i < 10; i++ {
		tw.OnRefreshInterval(0, nil)
	}
	if tw.Live(0) != 0 {
		t.Fatal("stale row survived growing lifetime threshold")
	}
}

func TestPruningSoundness(t *testing.T) {
	// Core TWiCe property: pruning never loses a row that later reaches
	// the Row-Hammer threshold at the maximum activation rate. A hammered
	// row that is activated at least ThRH/RefInt times per interval is
	// never evicted.
	cfg := testConfig()
	tw := New(1, cfg)
	perInterval := int(cfg.ThRH)/cfg.RefInt + 1 // 5 > 4 = pruning rate
	triggered := false
	total := 0
	for iv := 0; iv < cfg.RefInt && !triggered; iv++ {
		for i := 0; i < perInterval; i++ {
			if cmds := tw.OnActivate(0, 100, iv, nil); len(cmds) > 0 {
				triggered = true
			}
			total++
		}
		tw.OnRefreshInterval(iv, nil)
		if !triggered && tw.Live(0) != 1 {
			t.Fatalf("interval %d: sustained aggressor evicted", iv)
		}
	}
	if !triggered {
		t.Fatalf("aggressor reached %d activations without mitigation", total)
	}
}

func TestOverflowEvictsColdest(t *testing.T) {
	cfg := testConfig()
	cfg.MaxEntries = 4
	tw := New(1, cfg)
	// Heat up row 0, then flood with new rows.
	for i := 0; i < 50; i++ {
		tw.OnActivate(0, 0, 0, nil)
	}
	for r := 1; r <= 10; r++ {
		tw.OnActivate(0, r*10, 0, nil)
	}
	if tw.Overflows == 0 {
		t.Fatal("no overflow recorded despite tiny table")
	}
	// The hot row must never be the overflow victim.
	found := false
	for _, e := range tw.banks[0].entries {
		if e.row == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("hot entry evicted on overflow")
	}
}

func TestWindowClear(t *testing.T) {
	tw := New(2, testConfig())
	for i := 0; i < 20; i++ {
		tw.OnActivate(1, 7, 0, nil)
	}
	tw.OnNewWindow()
	if tw.Live(1) != 0 {
		t.Fatal("window clear left entries")
	}
}

func TestDefaultConfigStorage(t *testing.T) {
	cfg := DefaultConfig(139000, 8192)
	tw := New(1, cfg)
	got := tw.TableBytesPerBank()
	// ≈550 entries * (17+16+13+1)/8 ≈ 3.2 KB: the 9×-27× anchor of the
	// paper's storage comparison.
	if got < 2500 || got > 4500 {
		t.Fatalf("TWiCe storage %d B, want ≈3.2 KB", got)
	}
	if cfg.ThRH != 34750 {
		t.Fatalf("ThRH = %d, want 139000/4", cfg.ThRH)
	}
}

func TestNoFalseTriggersOnScatteredTraffic(t *testing.T) {
	tw := New(1, testConfig())
	var cmds []mitigation.Command
	for iv := 0; iv < 64; iv++ {
		for i := 0; i < 40; i++ {
			cmds = tw.OnActivate(0, (iv*40+i)%5000, iv, cmds)
		}
		cmds = tw.OnRefreshInterval(iv, cmds)
	}
	if len(cmds) != 0 {
		t.Fatalf("scattered traffic produced %d triggers; TWiCe should emit none", len(cmds))
	}
}

func TestFactoryRegistered(t *testing.T) {
	f, err := mitigation.Lookup("TWiCe")
	if err != nil {
		t.Fatal(err)
	}
	if f(mitigation.Target{Banks: 1, RowsPerBank: 16384, RefInt: 1024, FlipThreshold: 16384}, 1).Name() != "TWiCe" {
		t.Fatal("factory mismatch")
	}
}

func TestCycleBudget(t *testing.T) {
	tw := New(1, DefaultConfig(139000, 8192))
	if tw.ActCycles() > 54 {
		t.Fatal("TWiCe act path exceeds budget")
	}
	// The serial pruning pass does NOT fit the 420-cycle ref budget —
	// that is exactly the paper's point about TWiCe needing massive
	// parallelism (CAM) and being impractical in the controller.
	if tw.RefCycles() <= 420 {
		t.Fatal("expected the serial pruning pass to blow the ref budget")
	}
}

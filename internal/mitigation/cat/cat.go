// Package cat implements an adaptive tree of counters in the style of
// Seyedzadeh, Jones & Melhem (ISCA 2018) and CAT-TWO (Kang, Lee & Ahn,
// IEEE Access 2020) — the third family the paper's related work surveys.
//
// A binary tree partitions the row-address space; each node counts the
// activations of its range. When a node's count crosses the split
// threshold the node splits, so counting adaptively refines toward the
// hottest rows; a single-row leaf crossing the trigger threshold gets a
// deterministic act_n. The tree resets every refresh window.
//
// The paper's critique is built in and measurable: the node budget is
// fixed (≈1 KB per bank), and "an attacker might fill all the levels of
// the tree to make it balanced and saturated before it reaches the levels
// where it would track the aggressor rows precisely." When a saturated
// wide leaf crosses the trigger threshold, the mitigation can only guess
// which row inside the range is hot (it refreshes the range's middle row
// best-effort), so a saturation attacker escapes — the package tests
// demonstrate exactly this.
package cat

import (
	"fmt"

	"tivapromi/internal/mitigation"
)

// Config parameterizes the tree.
type Config struct {
	// RowsPerBank is the covered address space (a power of two).
	RowsPerBank int
	// MaxNodes bounds the per-bank tree (the area budget). The paper
	// cites "no less than 1 KB per bank" for a safe tree; 341 nodes of
	// ~3 B match that.
	MaxNodes int
	// SplitThreshold is the node count at which a range splits.
	SplitThreshold uint32
	// TriggerThreshold is the count at which a leaf triggers act_n.
	TriggerThreshold uint32
}

// DefaultConfig derives safe thresholds from the flip threshold: a row
// can hide at most SplitThreshold activations per tree level on its way
// down, so levels*split + trigger stays below flipThreshold/4.
func DefaultConfig(rowsPerBank int, flipThreshold uint32) Config {
	levels := 0
	for v := rowsPerBank; v > 1; v >>= 1 {
		levels++
	}
	budget := flipThreshold / 4
	split := budget / (2 * uint32(levels))
	if split == 0 {
		split = 1
	}
	return Config{
		RowsPerBank:      rowsPerBank,
		MaxNodes:         341,
		SplitThreshold:   split,
		TriggerThreshold: budget - uint32(levels)*split,
	}
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	switch {
	case c.RowsPerBank < 2 || c.RowsPerBank&(c.RowsPerBank-1) != 0:
		return fmt.Errorf("cat: RowsPerBank = %d must be a power of two ≥ 2", c.RowsPerBank)
	case c.MaxNodes < 3:
		return fmt.Errorf("cat: MaxNodes = %d, need at least a root and two children", c.MaxNodes)
	case c.SplitThreshold == 0 || c.TriggerThreshold == 0:
		return fmt.Errorf("cat: zero threshold")
	}
	return nil
}

// node is one tree node; children are indices into the arena (-1 = leaf).
type node struct {
	lo, hi      int32 // row range [lo, hi)
	cnt         uint32
	left, right int32
}

// CAT is the mitigation state. Create instances with New.
type CAT struct {
	cfg   Config
	banks [][]node
	// Saturations counts trigger events on non-single leaves that could
	// not split — the imprecise refreshes of a saturated tree.
	Saturations uint64
}

// New builds a CAT instance for the given bank count.
func New(banks int, cfg Config) (*CAT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if banks <= 0 {
		return nil, fmt.Errorf("cat: banks = %d", banks)
	}
	c := &CAT{cfg: cfg, banks: make([][]node, banks)}
	c.Reset()
	return c, nil
}

// Factory adapts New to the registry signature.
func Factory(t mitigation.Target, _ uint64) mitigation.Mitigator {
	c, err := New(t.Banks, DefaultConfig(t.RowsPerBank, t.FlipThreshold))
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements mitigation.Mitigator.
func (c *CAT) Name() string { return "CAT" }

// OnActivate implements mitigation.Mitigator: walk to the leaf covering
// row, incrementing every node on the path; split hot leaves while the
// node budget lasts; trigger on hot leaves.
func (c *CAT) OnActivate(bank, row, _ int, cmds []mitigation.Command) []mitigation.Command {
	arena := c.banks[bank]
	idx := int32(0)
	for {
		n := &arena[idx]
		n.cnt++
		if n.left >= 0 { // interior: descend
			mid := (n.lo + n.hi) / 2
			if int32(row) < mid {
				idx = n.left
			} else {
				idx = n.right
			}
			continue
		}
		// Leaf.
		single := n.hi-n.lo == 1
		if !single && n.cnt >= c.cfg.SplitThreshold && len(arena)+2 <= c.cfg.MaxNodes {
			// Split: children start fresh; the parent keeps its count as
			// the range's history (the adaptive-tree accounting).
			mid := (n.lo + n.hi) / 2
			arena = append(arena,
				node{lo: n.lo, hi: mid, left: -1, right: -1},
				node{lo: mid, hi: n.hi, left: -1, right: -1},
			)
			n = &arena[idx] // re-take: append may have moved the arena
			n.left = int32(len(arena) - 2)
			n.right = int32(len(arena) - 1)
			c.banks[bank] = arena
			return cmds
		}
		if n.cnt >= c.cfg.TriggerThreshold {
			n.cnt = 0
			target := row
			if !single {
				// Saturated: the tree cannot localize the aggressor any
				// further. Best effort: refresh around the range middle.
				// An attacker elsewhere in the range escapes — the
				// documented tree weakness.
				c.Saturations++
				target = int(n.lo+n.hi) / 2
			}
			cmds = append(cmds, mitigation.Command{
				Kind: mitigation.ActN, Bank: bank, Row: target,
			})
		}
		c.banks[bank] = arena
		return cmds
	}
}

// OnRefreshInterval implements mitigation.Mitigator; the tree is
// window-scoped only.
func (c *CAT) OnRefreshInterval(_ int, cmds []mitigation.Command) []mitigation.Command {
	return cmds
}

// OnNewWindow implements mitigation.Mitigator: the paper — "the tree is
// reset at each new refresh window".
func (c *CAT) OnNewWindow() {
	for b := range c.banks {
		arena := c.banks[b][:0]
		arena = append(arena, node{
			lo: 0, hi: int32(c.cfg.RowsPerBank), left: -1, right: -1,
		})
		c.banks[b] = arena
	}
}

// Reset implements mitigation.Mitigator.
func (c *CAT) Reset() {
	for b := range c.banks {
		c.banks[b] = nil
	}
	for b := range c.banks {
		c.banks[b] = []node{{lo: 0, hi: int32(c.cfg.RowsPerBank), left: -1, right: -1}}
	}
	c.Saturations = 0
}

// TableBytesPerBank implements mitigation.Mitigator: MaxNodes of counter
// plus two child indices.
func (c *CAT) TableBytesPerBank() int {
	cntBits := bitsFor(c.cfg.TriggerThreshold)
	idxBits := bitsFor(uint32(c.cfg.MaxNodes))
	return c.cfg.MaxNodes * (cntBits + 2*idxBits) / 8
}

// EscalatesUnderAttack implements mitigation.Escalation: counting
// escalates deterministically (while the tree can still refine).
func (c *CAT) EscalatesUnderAttack() bool { return true }

// ActCycles implements mitigation.CycleModel: one cycle per tree level.
func (c *CAT) ActCycles() int {
	levels := 0
	for v := c.cfg.RowsPerBank; v > 1; v >>= 1 {
		levels++
	}
	return levels + 2
}

// RefCycles implements mitigation.CycleModel.
func (c *CAT) RefCycles() int { return 1 }

// Nodes returns the current node count of a bank's tree.
func (c *CAT) Nodes(bank int) int { return len(c.banks[bank]) }

func bitsFor(v uint32) int {
	n := 0
	for x := v; x > 0; x >>= 1 {
		n++
	}
	if n == 0 {
		n = 1
	}
	return n
}

func init() { mitigation.Register("CAT", Factory) }

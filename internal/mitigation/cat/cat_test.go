package cat

import (
	"testing"

	"tivapromi/internal/mitigation"
)

func testConfig() Config {
	return Config{
		RowsPerBank:      1024,
		MaxNodes:         63,
		SplitThreshold:   10,
		TriggerThreshold: 100,
	}
}

func mustCAT(t *testing.T, cfg Config) *CAT {
	t.Helper()
	c, err := New(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{RowsPerBank: 1000, MaxNodes: 63, SplitThreshold: 10, TriggerThreshold: 100},
		{RowsPerBank: 1024, MaxNodes: 1, SplitThreshold: 10, TriggerThreshold: 100},
		{RowsPerBank: 1024, MaxNodes: 63, SplitThreshold: 0, TriggerThreshold: 100},
		{RowsPerBank: 1024, MaxNodes: 63, SplitThreshold: 10, TriggerThreshold: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDefaultConfigSafety(t *testing.T) {
	// A row's activations before a guaranteed trigger are bounded by
	// levels*split + trigger ≤ flipThreshold/4.
	cfg := DefaultConfig(131072, 139000)
	levels := uint32(17)
	worst := levels*cfg.SplitThreshold + cfg.TriggerThreshold
	if worst > 139000/4 {
		t.Fatalf("worst-case undetected activations %d exceed thRH %d", worst, 139000/4)
	}
}

func TestTreeRefinesTowardHammeredRow(t *testing.T) {
	c := mustCAT(t, testConfig())
	// Hammer one row: the tree must split down to a single-row leaf and
	// then trigger deterministically.
	var cmds []mitigation.Command
	total := 0
	for i := 0; i < 5000 && len(cmds) == 0; i++ {
		cmds = c.OnActivate(0, 512, 0, cmds)
		total++
	}
	if len(cmds) == 0 {
		t.Fatal("hammering never triggered")
	}
	if cmds[0].Kind != mitigation.ActN || cmds[0].Row != 512 {
		t.Fatalf("trigger %+v, want act_n on row 512", cmds[0])
	}
	if c.Saturations != 0 {
		t.Fatal("focused hammering should not saturate the tree")
	}
	// The tree grew along one path: 10 levels * 2 children + root.
	if n := c.Nodes(0); n != 21 {
		t.Fatalf("tree has %d nodes, want 21 (one refined path)", n)
	}
	// Worst case bound: 10 levels of splits plus the trigger threshold.
	if total > 10*10+100+1 {
		t.Fatalf("trigger after %d activations, beyond the analytic bound", total)
	}
}

func TestRetriggerAfterReset(t *testing.T) {
	c := mustCAT(t, testConfig())
	var cmds []mitigation.Command
	for i := 0; i < 5000 && len(cmds) == 0; i++ {
		cmds = c.OnActivate(0, 512, 0, cmds)
	}
	cmds = cmds[:0]
	// The leaf counter restarted: the next trigger takes TriggerThreshold
	// more activations, not one.
	cmds = c.OnActivate(0, 512, 0, cmds)
	if len(cmds) != 0 {
		t.Fatal("retriggered immediately")
	}
	for i := 0; i < 200 && len(cmds) == 0; i++ {
		cmds = c.OnActivate(0, 512, 0, cmds)
	}
	if len(cmds) == 0 {
		t.Fatal("no second trigger")
	}
}

func TestSaturationAttackEscapes(t *testing.T) {
	// The paper's critique: fill the tree's levels so it saturates before
	// localizing the aggressor. Spread activations over many rows to
	// exhaust the 63-node budget, then hammer one row: the wide leaf
	// triggers imprecisely (Saturations counted) and the act_n lands on
	// the range middle, not the aggressor.
	cfg := testConfig()
	c := mustCAT(t, cfg)
	// Saturate: activate rows spread across the space until splits stop.
	for round := 0; round < 20; round++ {
		for row := 0; row < 1024; row += 16 {
			c.OnActivate(0, row, 0, nil)
		}
	}
	if c.Nodes(0) < cfg.MaxNodes-1 {
		t.Fatalf("tree not saturated: %d of %d nodes", c.Nodes(0), cfg.MaxNodes)
	}
	// Now hammer an aggressor that shares a wide leaf with other rows.
	var got []mitigation.Command
	aggressor := 777
	for i := 0; i < 2000; i++ {
		got = c.OnActivate(0, aggressor, 0, got)
	}
	if c.Saturations == 0 {
		t.Fatal("saturated tree did not record imprecise triggers")
	}
	// At least one trigger missed the aggressor (hit the range middle).
	missed := false
	for _, cmd := range got {
		if cmd.Row != aggressor {
			missed = true
		}
	}
	if !missed {
		t.Fatal("saturated tree still localized the aggressor exactly; the documented weakness vanished")
	}
}

func TestWindowResetsTree(t *testing.T) {
	c := mustCAT(t, testConfig())
	for i := 0; i < 500; i++ {
		c.OnActivate(0, 512, 0, nil)
	}
	if c.Nodes(0) == 1 {
		t.Fatal("setup: tree never grew")
	}
	c.OnNewWindow()
	if c.Nodes(0) != 1 {
		t.Fatalf("window reset left %d nodes", c.Nodes(0))
	}
}

func TestStorageAboutOneKB(t *testing.T) {
	// The paper: "a large tree has to be used of no less than 1 KB per
	// bank" for safe mitigation.
	c, err := New(1, DefaultConfig(131072, 139000))
	if err != nil {
		t.Fatal(err)
	}
	b := c.TableBytesPerBank()
	if b < 900 || b > 2500 {
		t.Fatalf("CAT storage %d B, want ≈1 KB+", b)
	}
}

func TestBankIsolation(t *testing.T) {
	c, err := New(2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		c.OnActivate(0, 512, 0, nil)
	}
	if c.Nodes(1) != 1 {
		t.Fatal("bank 1 tree grew from bank 0 traffic")
	}
}

func TestCycleBudget(t *testing.T) {
	c, err := New(1, DefaultConfig(131072, 139000))
	if err != nil {
		t.Fatal(err)
	}
	if c.ActCycles() > 54 || c.RefCycles() > 420 {
		t.Fatal("CAT exceeds DDR4 cycle budgets")
	}
}

func TestFactoryRegistered(t *testing.T) {
	f, err := mitigation.Lookup("CAT")
	if err != nil {
		t.Fatal(err)
	}
	m := f(mitigation.Target{Banks: 1, RowsPerBank: 16384, RefInt: 1024, FlipThreshold: 16384}, 1)
	if m.Name() != "CAT" {
		t.Fatal("factory mismatch")
	}
}

func TestEscalation(t *testing.T) {
	c := mustCAT(t, testConfig())
	if !c.EscalatesUnderAttack() {
		t.Fatal("counting trees escalate")
	}
}

// Package all links every mitigation technique into the registry.
// Import it for side effects wherever techniques are looked up by name.
package all

import (
	// Each blank import runs the package's init, which registers its
	// factory with the mitigation registry.
	_ "tivapromi/internal/core"
	_ "tivapromi/internal/mitigation/cat"
	_ "tivapromi/internal/mitigation/cra"
	_ "tivapromi/internal/mitigation/mrloc"
	_ "tivapromi/internal/mitigation/para"
	_ "tivapromi/internal/mitigation/prohit"
	_ "tivapromi/internal/mitigation/trr"
	_ "tivapromi/internal/mitigation/twice"
)

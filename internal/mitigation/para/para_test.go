package para

import (
	"math"
	"testing"

	"tivapromi/internal/mitigation"
)

func TestName(t *testing.T) {
	if NewDefault(1).Name() != "PARA" {
		t.Fatal("wrong name")
	}
}

func TestTriggerRateMatchesProbability(t *testing.T) {
	p := NewDefault(42) // p = 8192 / 2^23 ≈ 9.77e-4
	const n = 4 << 20
	var cmds []mitigation.Command
	trig := 0
	for i := 0; i < n; i++ {
		cmds = p.OnActivate(0, 100, 0, cmds[:0])
		trig += len(cmds)
	}
	want := float64(n) * 8192 / float64(1<<23)
	sigma := math.Sqrt(want)
	if math.Abs(float64(trig)-want) > 5*sigma {
		t.Fatalf("triggers = %d, want %.0f ± %.0f", trig, want, 5*sigma)
	}
}

func TestEmitsSingleSidedNeighborActivations(t *testing.T) {
	p := NewDefault(7)
	var cmds []mitigation.Command
	sides := map[int8]int{}
	for i := 0; i < 1<<20; i++ {
		cmds = p.OnActivate(2, 500, 0, cmds[:0])
		for _, c := range cmds {
			if c.Kind != mitigation.ActNOne {
				t.Fatalf("PARA emitted %v, want act_n_one", c.Kind)
			}
			if c.Bank != 2 || c.Row != 500 {
				t.Fatalf("wrong target %+v", c)
			}
			sides[c.Side]++
		}
	}
	if sides[-1] == 0 || sides[1] == 0 {
		t.Fatalf("side choice not random: %v", sides)
	}
	// Sides should be roughly balanced.
	lo, hi := float64(sides[-1]), float64(sides[1])
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo/hi < 0.8 {
		t.Fatalf("side imbalance: %v", sides)
	}
}

func TestStatelessness(t *testing.T) {
	p := NewDefault(1)
	if p.TableBytesPerBank() != 0 {
		t.Fatal("PARA reports table storage")
	}
	if got := p.OnRefreshInterval(0, nil); len(got) != 0 {
		t.Fatal("PARA emitted at ref")
	}
	p.OnNewWindow() // must be a no-op, not a panic
}

func TestFactoryScalesResolution(t *testing.T) {
	// For RefInt 1024 the factory must keep p ≈ 2^-10: weight 1024 at 20
	// bits.
	m := Factory(mitigation.Target{Banks: 1, RowsPerBank: 16384, RefInt: 1024, FlipThreshold: 16384}, 1)
	p := m.(*PARA)
	if p.bits != 20 || p.weight != 1024 {
		t.Fatalf("bits=%d weight=%d, want 20/1024", p.bits, p.weight)
	}
	if float64(p.weight)/float64(uint64(1)<<p.bits) != math.Exp2(-10) {
		t.Fatal("effective probability drifted")
	}
}

func TestResetReproducibility(t *testing.T) {
	p := NewDefault(99)
	run := func() int {
		n := 0
		var cmds []mitigation.Command
		for i := 0; i < 100000; i++ {
			cmds = p.OnActivate(0, 1, 0, cmds[:0])
			n += len(cmds)
		}
		return n
	}
	a := run()
	p.Reset()
	if b := run(); a != b {
		t.Fatalf("replay diverged: %d vs %d", a, b)
	}
}

func TestCycleModelWithinBudget(t *testing.T) {
	p := NewDefault(1)
	if p.ActCycles() > 54 || p.RefCycles() > 420 {
		t.Fatal("PARA exceeds DDR4 cycle budgets")
	}
}

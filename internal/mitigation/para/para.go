// Package para implements PARA, the probabilistic adjacent-row activation
// of Kim et al. [12]: whenever a row is activated, one of its two
// neighbors is also activated with a small static probability p.
//
// PARA is stateless — no tables, just a PRNG and a comparator — which makes
// it the smallest technique in Table III (349 LUTs, the reference).
// Its weakness is the static probability: every activation pays the same
// expected overhead regardless of whether the row could possibly be part
// of an attack, giving PARA the high false-positive rate the paper's
// time-varying weights attack.
package para

import (
	"tivapromi/internal/mitigation"
	"tivapromi/internal/rng"
)

// DefaultProbBits is the fixed-point resolution of the probability
// comparator. With the paper's Pbase = 2^-23 scale, p = weight * 2^-23.
const DefaultProbBits = 23

// PARA is the mitigation state. Create instances with New.
type PARA struct {
	weight uint64 // fixed-point probability: p = weight * 2^-bits
	bits   uint
	bern   *rng.Bernoulli
	src    *rng.LFSR32
	// override, when non-nil, replaces the built-in LFSR on the Bernoulli
	// decision path (fault-injection studies).
	override rng.Source
	side     *rng.XorShift64Star
	seed     uint64
}

// New returns a PARA instance with probability weight*2^-bits.
// The paper uses p ≈ 9.8*10^-4 (weight 8192 at 23 bits), the minimum
// considered effective in the literature [17].
func New(weight uint64, bits uint, seed uint64) *PARA {
	p := &PARA{weight: weight, bits: bits, seed: seed}
	p.Reset()
	return p
}

// NewDefault returns PARA with the paper's probability: RefInt*Pbase at a
// 23-bit comparator, i.e. p = 8192/2^23 ≈ 9.77e-4.
func NewDefault(seed uint64) *PARA { return New(8192, DefaultProbBits, seed) }

// Factory adapts New to the registry signature, scaling the probability
// resolution so that p stays ≈ 9.8e-4 for any RefInt (bits = log2(RefInt)+10,
// weight = RefInt, matching how the paper ties Pbase to RefInt).
func Factory(t mitigation.Target, seed uint64) mitigation.Mitigator {
	bits := uint(10)
	for v := t.RefInt; v > 1; v >>= 1 {
		bits++
	}
	return New(uint64(t.RefInt), bits, seed)
}

// Name implements mitigation.Mitigator.
func (p *PARA) Name() string { return "PARA" }

// OnActivate implements mitigation.Mitigator: with probability p, activate
// one randomly chosen neighbor of the aggressor.
func (p *PARA) OnActivate(bank, row, _ int, cmds []mitigation.Command) []mitigation.Command {
	if !p.bern.Trigger(p.weight) {
		return cmds
	}
	side := int8(1)
	if p.side.Uint64()&1 == 0 {
		side = -1
	}
	return append(cmds, mitigation.Command{
		Kind: mitigation.ActNOne, Bank: bank, Row: row, Side: side,
	})
}

// OnRefreshInterval implements mitigation.Mitigator; PARA has no
// interval-scoped work.
func (p *PARA) OnRefreshInterval(_ int, cmds []mitigation.Command) []mitigation.Command {
	return cmds
}

// OnNewWindow implements mitigation.Mitigator; PARA keeps no window state.
func (p *PARA) OnNewWindow() {}

// Reset implements mitigation.Mitigator. An installed RNG override
// survives the reset but is reseeded so replays stay deterministic.
func (p *PARA) Reset() {
	p.src = rng.NewLFSR32(p.seed)
	if p.override != nil {
		p.override.Seed(p.seed)
	}
	p.rebuildBernoulli()
	p.side = rng.NewXorShift64Star(p.seed ^ 0x51de)
}

// rebuildBernoulli rewires the comparator onto the active entropy path.
func (p *PARA) rebuildBernoulli() {
	src := rng.Source(p.src)
	if p.override != nil {
		src = p.override
	}
	p.bern = rng.NewBernoulli(src, p.bits)
}

// SetRandSource implements mitigation.RandSettable: it reroutes the
// trigger decision onto src (nil restores the built-in LFSR). PARA is the
// purest demonstration of the Loaded Dice non-selection problem — with a
// stuck selector the technique is indistinguishable from no mitigation.
func (p *PARA) SetRandSource(src rng.Source) {
	p.override = src
	p.rebuildBernoulli()
}

// TableBytesPerBank implements mitigation.Mitigator: PARA is stateless.
func (p *PARA) TableBytesPerBank() int { return 0 }

// EscalatesUnderAttack implements mitigation.Escalation: PARA's
// probability is static — the property behind its Table III
// vulnerability mark [17].
func (p *PARA) EscalatesUnderAttack() bool { return false }

// ActCycles implements mitigation.CycleModel: draw, compare, decide.
func (p *PARA) ActCycles() int { return 2 }

// RefCycles implements mitigation.CycleModel: nothing to do.
func (p *PARA) RefCycles() int { return 1 }

func init() { mitigation.Register("PARA", Factory) }

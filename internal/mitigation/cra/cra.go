// Package cra implements CRA (Kim, Nair & Qureshi, IEEE CAL 2015:
// "Architectural Support for Mitigating Row Hammering in DRAM Memories")
// in its direct form: one activation counter per DRAM row.
//
// When a row's counter reaches the threshold, its neighbors are refreshed
// with act_n and the counter restarts. Counting every row exactly makes
// CRA (like TWiCe) zero-false-positive with minimal extra activations, but
// the counter table is enormous — hundreds of KB per bank — which is why
// the original proposal banks the counters in DRAM itself and why CRA sits
// at the far right of the paper's Fig. 4.
package cra

import (
	"tivapromi/internal/mitigation"
	"tivapromi/internal/rng"
)

// CRA is the mitigation state. Create instances with New.
type CRA struct {
	thRH     uint32
	rowsPB   int
	counters [][]uint32 // [bank][row]
	cntBits  int
}

// New returns a CRA instance. thRH is the per-row activation threshold
// (canonically FlipThreshold/4, as for TWiCe).
func New(banks, rowsPerBank int, thRH uint32) *CRA {
	c := &CRA{thRH: thRH, rowsPB: rowsPerBank, cntBits: bitsFor(thRH)}
	c.counters = make([][]uint32, banks)
	for b := range c.counters {
		c.counters[b] = make([]uint32, rowsPerBank)
	}
	return c
}

// Factory adapts New to the registry signature, deriving the trigger
// threshold from the target's flip threshold.
func Factory(t mitigation.Target, _ uint64) mitigation.Mitigator {
	return New(t.Banks, t.RowsPerBank, t.FlipThreshold/4)
}

// Name implements mitigation.Mitigator.
func (c *CRA) Name() string { return "CRA" }

// OnActivate implements mitigation.Mitigator.
func (c *CRA) OnActivate(bank, row, _ int, cmds []mitigation.Command) []mitigation.Command {
	cnt := c.counters[bank][row] + 1
	if cnt >= c.thRH {
		c.counters[bank][row] = 0
		return append(cmds, mitigation.Command{
			Kind: mitigation.ActN, Bank: bank, Row: row,
		})
	}
	c.counters[bank][row] = cnt
	return cmds
}

// OnRefreshInterval implements mitigation.Mitigator; CRA has no
// interval-scoped work.
func (c *CRA) OnRefreshInterval(_ int, cmds []mitigation.Command) []mitigation.Command {
	return cmds
}

// OnNewWindow implements mitigation.Mitigator: counters are window-scoped
// (every row was refreshed, so the hammer count restarts).
func (c *CRA) OnNewWindow() {
	for b := range c.counters {
		clear(c.counters[b])
	}
}

// Reset implements mitigation.Mitigator.
func (c *CRA) Reset() { c.OnNewWindow() }

// TableBytesPerBank implements mitigation.Mitigator: one counter per row.
func (c *CRA) TableBytesPerBank() int { return c.rowsPB * c.cntBits / 8 }

// EscalatesUnderAttack implements mitigation.Escalation: counting is
// deterministic escalation.
func (c *CRA) EscalatesUnderAttack() bool { return true }

// InjectStateFault implements mitigation.StateInjectable: one bit flip in
// a random row's activation counter. CRA's per-row counters are the
// largest SRAM/DRAM-resident state of any technique here, making it the
// most exposed to SEUs per unit time — the storage-versus-resilience
// trade-off the degradation sweep quantifies.
func (c *CRA) InjectStateFault(src rng.Source) bool {
	bank := rng.Intn(src, len(c.counters))
	row := rng.Intn(src, c.rowsPB)
	c.counters[bank][row] ^= 1 << rng.Intn(src, max(c.cntBits, 1))
	return true
}

// ActCycles implements mitigation.CycleModel: direct-indexed counter
// increment and compare.
func (c *CRA) ActCycles() int { return 2 }

// RefCycles implements mitigation.CycleModel.
func (c *CRA) RefCycles() int { return 1 }

func bitsFor(v uint32) int {
	n := 0
	for x := v; x > 0; x >>= 1 {
		n++
	}
	if n == 0 {
		n = 1
	}
	return n
}

func init() { mitigation.Register("CRA", Factory) }

package cra

import (
	"testing"

	"tivapromi/internal/mitigation"
)

func TestName(t *testing.T) {
	if New(1, 1024, 100).Name() != "CRA" {
		t.Fatal("wrong name")
	}
}

func TestDeterministicThreshold(t *testing.T) {
	c := New(1, 1024, 100)
	var cmds []mitigation.Command
	for i := 0; i < 99; i++ {
		cmds = c.OnActivate(0, 5, 0, cmds)
	}
	if len(cmds) != 0 {
		t.Fatal("triggered early")
	}
	cmds = c.OnActivate(0, 5, 0, cmds)
	if len(cmds) != 1 || cmds[0].Kind != mitigation.ActN || cmds[0].Row != 5 {
		t.Fatalf("bad trigger: %+v", cmds)
	}
	// Counter reset: another 100 needed.
	cmds = cmds[:0]
	for i := 0; i < 99; i++ {
		cmds = c.OnActivate(0, 5, 0, cmds)
	}
	if len(cmds) != 0 {
		t.Fatal("counter not reset after trigger")
	}
}

func TestPerRowPerBankIsolation(t *testing.T) {
	c := New(2, 1024, 100)
	for i := 0; i < 99; i++ {
		c.OnActivate(0, 5, 0, nil)
	}
	// Same row, different bank: independent counter.
	if cmds := c.OnActivate(1, 5, 0, nil); len(cmds) != 0 {
		t.Fatal("banks share counters")
	}
	// Different row, same bank: independent counter.
	if cmds := c.OnActivate(0, 6, 0, nil); len(cmds) != 0 {
		t.Fatal("rows share counters")
	}
}

func TestWindowClear(t *testing.T) {
	c := New(1, 1024, 100)
	for i := 0; i < 99; i++ {
		c.OnActivate(0, 5, 0, nil)
	}
	c.OnNewWindow()
	if cmds := c.OnActivate(0, 5, 0, nil); len(cmds) != 0 {
		t.Fatal("window clear did not reset counters")
	}
}

func TestNoFalsePositivesEver(t *testing.T) {
	// CRA triggers require exactly thRH activations of one row — no
	// probabilistic noise.
	c := New(1, 4096, 100)
	var cmds []mitigation.Command
	for i := 0; i < 200000; i++ {
		cmds = c.OnActivate(0, i%4096, 0, cmds)
	}
	// 200000/4096 ≈ 48 activations per row < 100: zero triggers.
	if len(cmds) != 0 {
		t.Fatalf("scattered traffic triggered %d times", len(cmds))
	}
}

func TestStorageIsPerRow(t *testing.T) {
	c := New(1, 131072, 139000/4)
	got := c.TableBytesPerBank()
	// 131072 rows * 16 bits = 256 KB: the far-right point of Fig. 4.
	if got < 200_000 || got > 300_000 {
		t.Fatalf("CRA storage %d B, want ≈256 KB", got)
	}
}

func TestFactoryRegistered(t *testing.T) {
	f, err := mitigation.Lookup("CRA")
	if err != nil {
		t.Fatal(err)
	}
	if f(mitigation.Target{Banks: 1, RowsPerBank: 16384, RefInt: 1024, FlipThreshold: 16384}, 1).Name() != "CRA" {
		t.Fatal("factory mismatch")
	}
}

func TestCycleBudget(t *testing.T) {
	c := New(1, 1024, 100)
	if c.ActCycles() > 54 || c.RefCycles() > 420 {
		t.Fatal("CRA exceeds DDR4 cycle budgets")
	}
}

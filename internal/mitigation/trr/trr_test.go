package trr

import (
	"testing"

	"tivapromi/internal/mitigation"
)

func newTest(seed uint64) *TRR { return New(1, DefaultConfig(), seed) }

func TestName(t *testing.T) {
	if newTest(1).Name() != "TRR" {
		t.Fatal("wrong name")
	}
}

func TestSamplerTracksHammeredRow(t *testing.T) {
	m := newTest(3)
	for i := 0; i < 10000; i++ {
		m.OnActivate(0, 500, 0, nil)
	}
	found := false
	for _, r := range m.Tracked(0) {
		if r == 500 {
			found = true
		}
	}
	if !found {
		t.Fatal("10k activations never sampled")
	}
}

func TestRefreshTargetsHottestRow(t *testing.T) {
	m := newTest(3)
	// Two rows at very different rates.
	for i := 0; i < 5000; i++ {
		m.OnActivate(0, 500, 0, nil)
		if i%50 == 0 {
			m.OnActivate(0, 900, 0, nil)
		}
	}
	cmds := m.OnRefreshInterval(0, nil)
	if len(cmds) != 1 {
		t.Fatalf("refresh emitted %d commands", len(cmds))
	}
	if cmds[0].Kind != mitigation.ActN || cmds[0].Row != 500 {
		t.Fatalf("refreshed %+v, want the hot row 500", cmds[0])
	}
	// The refreshed row is forgotten.
	for _, r := range m.Tracked(0) {
		if r == 500 {
			t.Fatal("refreshed row still tracked")
		}
	}
}

func TestSamplerBounded(t *testing.T) {
	m := newTest(1)
	for row := 0; row < 10000; row++ {
		m.OnActivate(0, row, 0, nil)
	}
	if got := len(m.Tracked(0)); got > DefaultConfig().Entries {
		t.Fatalf("sampler grew to %d slots", got)
	}
}

func TestProtectsFocusedAttack(t *testing.T) {
	// A classic double-sided attack is caught: over a window's worth of
	// intervals, the aggressors receive many neighbor refreshes.
	m := newTest(7)
	protections := 0
	for iv := 0; iv < 1024; iv++ {
		for i := 0; i < 80; i++ {
			m.OnActivate(0, 500+2*(i&1), iv, nil)
		}
		for _, c := range m.OnRefreshInterval(iv, nil) {
			if c.Row == 500 || c.Row == 502 {
				protections++
			}
		}
	}
	if protections < 500 {
		t.Fatalf("focused attack got only %d protective refreshes over a window", protections)
	}
}

func TestDecoyAttackStarvesAggressors(t *testing.T) {
	// The TRRespass-style weakness: interleave decoy rows at a higher
	// rate than the aggressors. The decoys dominate the tiny sampler's
	// frequency counts, so the per-interval refresh almost always lands
	// on a decoy and the true aggressors are starved.
	focused := protectionRate(t, 0)
	decoyed := protectionRate(t, 12) // 12 decoy activations per aggressor pair
	if decoyed > focused/4 {
		t.Fatalf("decoys did not starve TRR: focused %.4f vs decoyed %.4f protections/interval",
			focused, decoyed)
	}
}

// protectionRate hammers aggressors 500/502 with `decoys` interleaved
// hotter decoy rows and returns aggressor protections per interval.
func protectionRate(t *testing.T, decoys int) float64 {
	t.Helper()
	m := newTest(7)
	protections := 0
	const intervals = 1024
	for iv := 0; iv < intervals; iv++ {
		for i := 0; i < 6; i++ {
			m.OnActivate(0, 500+2*(i&1), iv, nil)
			for d := 0; d < decoys; d++ {
				m.OnActivate(0, 9000+2*d, iv, nil)
			}
		}
		for _, c := range m.OnRefreshInterval(iv, nil) {
			if c.Row == 500 || c.Row == 502 {
				protections++
			}
		}
	}
	return float64(protections) / intervals
}

func TestWindowClear(t *testing.T) {
	m := newTest(1)
	for i := 0; i < 1000; i++ {
		m.OnActivate(0, 77, 0, nil)
	}
	m.OnNewWindow()
	if len(m.Tracked(0)) != 0 {
		t.Fatal("window clear left slots")
	}
}

func TestStorageTiny(t *testing.T) {
	if got := newTest(1).TableBytesPerBank(); got > 32 {
		t.Fatalf("TRR storage %d B, want tiny", got)
	}
}

func TestFactoryRegistered(t *testing.T) {
	f, err := mitigation.Lookup("TRR")
	if err != nil {
		t.Fatal(err)
	}
	if f(mitigation.Target{Banks: 1, RowsPerBank: 16384, RefInt: 1024, FlipThreshold: 16384}, 1).Name() != "TRR" {
		t.Fatal("factory mismatch")
	}
}

func TestCycleBudget(t *testing.T) {
	m := newTest(1)
	if m.ActCycles() > 54 || m.RefCycles() > 420 {
		t.Fatal("TRR exceeds DDR4 cycle budgets")
	}
}

func TestResetReproduces(t *testing.T) {
	m := newTest(42)
	run := func() int {
		n := 0
		for iv := 0; iv < 200; iv++ {
			for i := 0; i < 40; i++ {
				m.OnActivate(0, i%100, iv, nil)
			}
			n += len(m.OnRefreshInterval(iv, nil))
		}
		return n
	}
	a := run()
	m.Reset()
	if b := run(); a != b {
		t.Fatalf("replay diverged: %d vs %d", a, b)
	}
}

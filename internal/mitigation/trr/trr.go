// Package trr models an in-DRAM Target Row Refresh sampler, the
// mitigation actually shipped in commodity DDR4 — included as an
// extension baseline beyond the paper's nine techniques.
//
// TRR keeps a tiny per-bank sampler: activations are sampled with a small
// probability into a handful of frequency-counting slots (replacing the
// coldest slot), and on every refresh interval the device refreshes the
// neighbors of the hottest sampled row. Because the paper's act_n-style
// command is already the refresh primitive here, TRR slots directly into
// the same harness.
//
// Its real-world weakness (TRRespass, Frigo et al.) is structural and
// reproduces here measurably: the sampler has so few slots that an
// attacker interleaving decoy rows at a higher rate than the true
// aggressors evicts or outweighs them, starving the aggressors of
// refreshes — see the package tests.
package trr

import (
	"tivapromi/internal/mitigation"
	"tivapromi/internal/rng"
)

// Config parameterizes the sampler.
type Config struct {
	// Entries is the per-bank sampler size (real implementations are
	// believed to track a handful of rows).
	Entries int
	// SampleWeight is the fixed-point (at ProbBits) probability of
	// sampling an activation into the tracker.
	SampleWeight uint64
	// ProbBits is the sampler's comparator resolution.
	ProbBits uint
	// RowBits is the row-address width for storage accounting.
	RowBits int
}

// DefaultConfig returns a plausible DDR4-era sampler: 4 slots, 1/16
// sampling.
func DefaultConfig() Config {
	return Config{Entries: 4, SampleWeight: 1 << 19, ProbBits: 23, RowBits: 17}
}

// TRR is the mitigation state. Create instances with New.
type TRR struct {
	cfg   Config
	banks []sampler
	bern  *rng.Bernoulli
	src   *rng.LFSR32
	seed  uint64
}

type slot struct {
	row int32
	cnt uint32
}

type sampler struct {
	slots []slot
}

// New returns a TRR instance for the given bank count.
func New(banks int, cfg Config, seed uint64) *TRR {
	t := &TRR{cfg: cfg, banks: make([]sampler, banks), seed: seed}
	t.Reset()
	return t
}

// Factory adapts New to the registry signature.
func Factory(t mitigation.Target, seed uint64) mitigation.Mitigator {
	return New(t.Banks, DefaultConfig(), seed)
}

// Name implements mitigation.Mitigator.
func (t *TRR) Name() string { return "TRR" }

// OnActivate implements mitigation.Mitigator: probabilistic sampling into
// the frequency tracker.
func (t *TRR) OnActivate(bank, row, _ int, cmds []mitigation.Command) []mitigation.Command {
	s := &t.banks[bank]
	for i := range s.slots {
		if s.slots[i].row == int32(row) {
			s.slots[i].cnt++
			return cmds
		}
	}
	if !t.bern.Trigger(t.cfg.SampleWeight) {
		return cmds
	}
	// Insert, replacing the coldest slot.
	if len(s.slots) < t.cfg.Entries {
		s.slots = append(s.slots, slot{row: int32(row), cnt: 1})
		return cmds
	}
	min := 0
	for i := 1; i < len(s.slots); i++ {
		if s.slots[i].cnt < s.slots[min].cnt {
			min = i
		}
	}
	s.slots[min] = slot{row: int32(row), cnt: 1}
	return cmds
}

// OnRefreshInterval implements mitigation.Mitigator: piggyback a
// neighbor refresh of the hottest sampled row on the auto-refresh, then
// forget it.
func (t *TRR) OnRefreshInterval(_ int, cmds []mitigation.Command) []mitigation.Command {
	for b := range t.banks {
		s := &t.banks[b]
		if len(s.slots) == 0 {
			continue
		}
		max := 0
		for i := 1; i < len(s.slots); i++ {
			if s.slots[i].cnt > s.slots[max].cnt {
				max = i
			}
		}
		row := int(s.slots[max].row)
		last := len(s.slots) - 1
		s.slots[max] = s.slots[last]
		s.slots = s.slots[:last]
		cmds = append(cmds, mitigation.Command{Kind: mitigation.ActN, Bank: b, Row: row})
	}
	return cmds
}

// OnNewWindow implements mitigation.Mitigator.
func (t *TRR) OnNewWindow() {
	for b := range t.banks {
		t.banks[b].slots = t.banks[b].slots[:0]
	}
}

// Reset implements mitigation.Mitigator.
func (t *TRR) Reset() {
	for b := range t.banks {
		t.banks[b].slots = nil
	}
	t.src = rng.NewLFSR32(t.seed ^ 0x7122)
	t.bern = rng.NewBernoulli(t.src, t.cfg.ProbBits)
}

// TableBytesPerBank implements mitigation.Mitigator.
func (t *TRR) TableBytesPerBank() int {
	return t.cfg.Entries * (t.cfg.RowBits + 16) / 8
}

// EscalatesUnderAttack implements mitigation.Escalation: the frequency
// counts escalate — but only for rows that survive in the tiny sampler,
// which is exactly what a decoy attack prevents.
func (t *TRR) EscalatesUnderAttack() bool { return true }

// ActCycles implements mitigation.CycleModel.
func (t *TRR) ActCycles() int { return t.cfg.Entries + 2 }

// RefCycles implements mitigation.CycleModel.
func (t *TRR) RefCycles() int { return t.cfg.Entries + 1 }

// Tracked returns the sampled rows of a bank (tests).
func (t *TRR) Tracked(bank int) []int {
	var rows []int
	for _, s := range t.banks[bank].slots {
		rows = append(rows, int(s.row))
	}
	return rows
}

func init() { mitigation.Register("TRR", Factory) }

package dram

// Lazily-paged per-row state. A full-DIMM population (32 banks × 64K
// rows) makes the seed's dense per-row arrays — disturbance counters,
// flip bookkeeping, the data-store index — the dominant heap cost even
// when a run touches a few thousand rows. The paged stores below
// allocate a fixed-size page of a bank's rows on first touch and treat
// absent pages as zero, so heap scales with the touched-row footprint,
// not the population. Reads of untouched rows and zeroing writes
// (refresh restores) never allocate.
//
// The dense representation remains the small-geometry fast path (see
// Device): a page probe is one shift, one bounds-checked load and a
// predictable nil test, but the flat array is still cheaper, and every
// pre-geometry configuration keeps its exact memory layout.

const (
	// pageShift sizes a page at 4096 rows: 16 KB of uint32 counters,
	// small enough that a localized attack on a 64K-row bank allocates a
	// couple of pages, large enough that the page table itself (16
	// entries per 64K-row bank) is noise.
	pageShift = 12
	pageRows  = 1 << pageShift
	pageMask  = pageRows - 1
)

// pagedU32 is a lazily-paged []uint32 indexed by row. The zero value is
// an all-zero store; pages materialize on the first non-zero write.
type pagedU32 struct {
	pages [][]uint32
}

func newPagedU32(rows int) pagedU32 {
	return pagedU32{pages: make([][]uint32, (rows+pageMask)>>pageShift)}
}

// get returns the value at row (0 for rows on untouched pages).
func (p *pagedU32) get(row int) uint32 {
	pg := p.pages[row>>pageShift]
	if pg == nil {
		return 0
	}
	return pg[row&pageMask]
}

// page returns the page holding row, allocating it on first touch.
func (p *pagedU32) page(row int) []uint32 {
	i := row >> pageShift
	pg := p.pages[i]
	if pg == nil {
		pg = make([]uint32, pageRows)
		p.pages[i] = pg
	}
	return pg
}

// set stores v at row. Storing zero into an untouched page is a no-op —
// absent pages already read as zero — so refresh restores of quiet rows
// never allocate.
func (p *pagedU32) set(row int, v uint32) {
	i := row >> pageShift
	pg := p.pages[i]
	if pg == nil {
		if v == 0 {
			return
		}
		pg = make([]uint32, pageRows)
		p.pages[i] = pg
	}
	pg[row&pageMask] = v
}

// touchedPages counts allocated pages.
func (p *pagedU32) touchedPages() int {
	n := 0
	for _, pg := range p.pages {
		if pg != nil {
			n++
		}
	}
	return n
}

// pagedI32 is a lazily-paged []int32 with a non-zero "absent" fill
// value, used by the data-store index (-1 = row never written).
type pagedI32 struct {
	pages [][]int32
	fill  int32
}

func newPagedI32(rows int, fill int32) pagedI32 {
	return pagedI32{pages: make([][]int32, (rows+pageMask)>>pageShift), fill: fill}
}

// get returns the value at row (the fill value on untouched pages).
func (p *pagedI32) get(row int) int32 {
	pg := p.pages[row>>pageShift]
	if pg == nil {
		return p.fill
	}
	return pg[row&pageMask]
}

// set stores v at row, allocating (and fill-initializing) the page on
// first touch.
func (p *pagedI32) set(row int, v int32) {
	i := row >> pageShift
	pg := p.pages[i]
	if pg == nil {
		if v == p.fill {
			return
		}
		pg = make([]int32, pageRows)
		if p.fill != 0 {
			for j := range pg {
				pg[j] = p.fill
			}
		}
		p.pages[i] = pg
	}
	pg[row&pageMask] = v
}

// touchedPages counts allocated pages.
func (p *pagedI32) touchedPages() int {
	n := 0
	for _, pg := range p.pages {
		if pg != nil {
			n++
		}
	}
	return n
}

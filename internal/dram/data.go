package dram

import (
	"fmt"

	"tivapromi/internal/rng"
)

// This file gives the device actual data contents, sparsely: rows hold
// bytes only once written, and a disturbance crossing the flip threshold
// corrupts a pseudo-random bit of the victim row — so an attack produces
// observable data corruption, not just an event. The corruption position
// is deterministic in (bank, row, window): real Row-Hammer flips are
// cell-position dependent and repeatable, which is what makes the attack
// exploitable (Flip Feng Shui [15]).

// dataStore is the sparse content store, attached lazily to a Device.
// Storage is a flat arena: the index maps each physical (bank, row)
// position to a row number inside arena, or -1 when the row was never
// written. The seed kept a map[rowKey][]byte here; the arena removes
// per-row allocations and the hash lookup from the write/read/corrupt
// paths, and keeps all stored rows contiguous. The index itself is the
// one structure still sized by the population, so on sparse devices it
// uses the lazily-paged pagedI32 (fill -1) instead of the flat slice.
type dataStore struct {
	index       []int32  // dense: bank*rowsPerBank+prow -> arena row, -1 absent
	pindex      pagedI32 // sparse equivalent; used when index is nil
	arena       []byte   // stored rows, rowBytes each, in allocation order
	zeroRow     []byte   // reusable zero block for arena growth
	rowBytes    int
	rowsPerBank int
	seed        uint64
	// Corruptions counts bits flipped in stored rows.
	corruptions uint64
}

// EnableDataStore turns on sparse data storage. Rows are rowBytes wide
// (the device's RowBytes by default when 0 is passed).
func (d *Device) EnableDataStore(seed uint64) {
	if d.data == nil {
		ds := &dataStore{
			zeroRow:     make([]byte, d.p.RowBytes),
			rowBytes:    d.p.RowBytes,
			rowsPerBank: d.p.RowsPerBank,
			seed:        seed,
		}
		if d.p.Sparse() {
			ds.pindex = newPagedI32(d.banks*d.p.RowsPerBank, -1)
		} else {
			ds.index = make([]int32, d.banks*d.p.RowsPerBank)
			for i := range ds.index {
				ds.index[i] = -1
			}
		}
		d.data = ds
	}
}

// lookup returns the arena row number for a position, or -1.
func (ds *dataStore) lookup(pos int) int32 {
	if ds.index != nil {
		return ds.index[pos]
	}
	return ds.pindex.get(pos)
}

// store records the arena row number for a position.
func (ds *dataStore) store(pos int, i int32) {
	if ds.index != nil {
		ds.index[pos] = i
		return
	}
	ds.pindex.set(pos, i)
}

// row returns the stored bytes of a physical (bank, prow), or nil when the
// row was never written.
func (ds *dataStore) row(bank, prow int) []byte {
	i := ds.lookup(bank*ds.rowsPerBank + prow)
	if i < 0 {
		return nil
	}
	off := int(i) * ds.rowBytes
	return ds.arena[off : off+ds.rowBytes]
}

// ensureRow returns the stored bytes of a physical (bank, prow), allocating
// a zeroed arena row on first touch.
func (ds *dataStore) ensureRow(bank, prow int) []byte {
	pos := bank*ds.rowsPerBank + prow
	if i := ds.lookup(pos); i >= 0 {
		off := int(i) * ds.rowBytes
		return ds.arena[off : off+ds.rowBytes]
	}
	i := int32(len(ds.arena) / ds.rowBytes)
	ds.store(pos, i)
	ds.arena = append(ds.arena, ds.zeroRow...)
	off := int(i) * ds.rowBytes
	return ds.arena[off : off+ds.rowBytes]
}

// stateBytes approximates the store's heap footprint: the index (allocated
// pages only when paged) plus the arena.
func (ds *dataStore) stateBytes() int {
	n := len(ds.arena) + len(ds.zeroRow)
	if ds.index != nil {
		n += len(ds.index) * 4
	} else {
		n += len(ds.pindex.pages)*24 + ds.pindex.touchedPages()*pageRows*4
	}
	return n
}

// WriteData stores bytes at an offset within a row. The device must have
// the data store enabled; out-of-range writes panic (they are programming
// errors in the experiment, not runtime conditions).
func (d *Device) WriteData(bank, row, offset int, data []byte) {
	d.checkAddr(bank, row)
	if d.data == nil {
		panic("dram: data store not enabled")
	}
	if offset < 0 || offset+len(data) > d.data.rowBytes {
		panic(fmt.Sprintf("dram: write [%d, %d) outside row of %d bytes",
			offset, offset+len(data), d.data.rowBytes))
	}
	buf := d.data.ensureRow(bank, d.physical(row))
	copy(buf[offset:], data)
}

// ReadData returns n bytes at an offset within a row (zeroes for rows
// never written).
func (d *Device) ReadData(bank, row, offset, n int) []byte {
	d.checkAddr(bank, row)
	if d.data == nil {
		panic("dram: data store not enabled")
	}
	out := make([]byte, n)
	if buf := d.data.row(bank, d.physical(row)); buf != nil {
		copy(out, buf[offset:offset+n])
	}
	return out
}

// Corruptions returns the number of data bits flipped by Row-Hammer so
// far (0 when the store is disabled).
func (d *Device) Corruptions() uint64 {
	if d.data == nil {
		return 0
	}
	return d.data.corruptions
}

// corrupt flips one deterministic bit in the victim row's stored data (a
// row never written has no observable content to corrupt, matching real
// attacks: the flip lands wherever the victim's data lives).
func (ds *dataStore) corrupt(bank, prow, window int) {
	buf := ds.row(bank, prow)
	if buf == nil {
		return
	}
	src := rng.NewXorShift64Star(ds.seed ^ uint64(bank)<<40 ^ uint64(prow)<<16 ^ uint64(window))
	bit := rng.Intn(src, len(buf)*8)
	buf[bit/8] ^= 1 << (bit % 8)
	ds.corruptions++
}

package dram

import (
	"fmt"

	"tivapromi/internal/rng"
)

// This file gives the device actual data contents, sparsely: rows hold
// bytes only once written, and a disturbance crossing the flip threshold
// corrupts a pseudo-random bit of the victim row — so an attack produces
// observable data corruption, not just an event. The corruption position
// is deterministic in (bank, row, window): real Row-Hammer flips are
// cell-position dependent and repeatable, which is what makes the attack
// exploitable (Flip Feng Shui [15]).

// rowKey addresses a stored row.
type rowKey struct {
	bank int32
	row  int32
}

// dataStore is the sparse content store, attached lazily to a Device.
type dataStore struct {
	rows     map[rowKey][]byte
	rowBytes int
	seed     uint64
	// Corruptions counts bits flipped in stored rows.
	corruptions uint64
}

// EnableDataStore turns on sparse data storage. Rows are rowBytes wide
// (the device's RowBytes by default when 0 is passed).
func (d *Device) EnableDataStore(seed uint64) {
	if d.data == nil {
		d.data = &dataStore{
			rows:     make(map[rowKey][]byte),
			rowBytes: d.p.RowBytes,
			seed:     seed,
		}
	}
}

// WriteData stores bytes at an offset within a row. The device must have
// the data store enabled; out-of-range writes panic (they are programming
// errors in the experiment, not runtime conditions).
func (d *Device) WriteData(bank, row, offset int, data []byte) {
	d.checkAddr(bank, row)
	if d.data == nil {
		panic("dram: data store not enabled")
	}
	if offset < 0 || offset+len(data) > d.data.rowBytes {
		panic(fmt.Sprintf("dram: write [%d, %d) outside row of %d bytes",
			offset, offset+len(data), d.data.rowBytes))
	}
	key := rowKey{bank: int32(bank), row: d.l2p[row]}
	buf, ok := d.data.rows[key]
	if !ok {
		buf = make([]byte, d.data.rowBytes)
		d.data.rows[key] = buf
	}
	copy(buf[offset:], data)
}

// ReadData returns n bytes at an offset within a row (zeroes for rows
// never written).
func (d *Device) ReadData(bank, row, offset, n int) []byte {
	d.checkAddr(bank, row)
	if d.data == nil {
		panic("dram: data store not enabled")
	}
	out := make([]byte, n)
	key := rowKey{bank: int32(bank), row: d.l2p[row]}
	if buf, ok := d.data.rows[key]; ok {
		copy(out, buf[offset:offset+n])
	}
	return out
}

// Corruptions returns the number of data bits flipped by Row-Hammer so
// far (0 when the store is disabled).
func (d *Device) Corruptions() uint64 {
	if d.data == nil {
		return 0
	}
	return d.data.corruptions
}

// corrupt flips one deterministic bit in the victim row's stored data (a
// row never written has no observable content to corrupt, matching real
// attacks: the flip lands wherever the victim's data lives).
func (ds *dataStore) corrupt(bank, prow, window int) {
	key := rowKey{bank: int32(bank), row: int32(prow)}
	buf, ok := ds.rows[key]
	if !ok {
		return
	}
	src := rng.NewXorShift64Star(ds.seed ^ uint64(bank)<<40 ^ uint64(prow)<<16 ^ uint64(window))
	bit := rng.Intn(src, len(buf)*8)
	buf[bit/8] ^= 1 << (bit % 8)
	ds.corruptions++
}

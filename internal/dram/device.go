package dram

import (
	"fmt"

	"tivapromi/internal/bitset"
)

// FlipEvent records a victim row crossing the disturbance threshold — a
// successful Row-Hammer attack.
type FlipEvent struct {
	Bank     int
	Row      int // physical row
	Window   int // refresh window in which the flip occurred
	Interval int // global refresh-interval index at the time of the flip
}

// defaultFlipEventCap bounds how many FlipEvents a device retains. The
// flip *count* (Stats.Flips, FlipCount) is always exact; the event list
// is a prefix sample for reports and replay checks. An unmitigated
// billion-activation run on a full DIMM produces millions of crossings —
// retaining one struct per crossing is exactly the per-sample
// accumulation the streaming-state refactor removes. 65536 events is far
// above what any committed experiment produces, so their event lists are
// complete and byte-identical.
const defaultFlipEventCap = 1 << 16

// Stats aggregates device activity.
type Stats struct {
	Activates        uint64 // normal row activations (workload + attacker)
	NeighborActs     uint64 // activations issued by act_n commands
	DirectRefreshes  uint64 // mitigation-issued single-row refreshes
	AutoRefreshes    uint64 // rows restored by auto-refresh
	Intervals        uint64 // refresh intervals elapsed
	Flips            uint64 // threshold crossings
	MaxActsInIntv    uint64 // max activations observed in one bank-interval
	IntervalActsSum  uint64 // sum over bank-intervals of activation counts
	IntervalActsSeen uint64 // number of bank-intervals counted
}

// AvgActsPerInterval returns the mean activations per bank per refresh
// interval, the quantity the paper reports as ≈40 for its traces.
func (s Stats) AvgActsPerInterval() float64 {
	if s.IntervalActsSeen == 0 {
		return 0
	}
	return float64(s.IntervalActsSum) / float64(s.IntervalActsSeen)
}

// Device is the simulated DRAM. It is not safe for concurrent use; the
// experiment harness runs one Device per goroutine.
//
// Per-row state lives in one of two representations, chosen by
// Params.State (StateAuto: by population size): dense flat arrays — the
// original layout, fastest for small geometries — or lazily-paged sparse
// stores whose heap is O(touched rows), which is what makes full-DIMM
// populations (Ranks × BankGroups × Banks × 64K rows) simulable. Both
// representations produce bit-identical behavior; the sparse/dense
// property test in internal/sim pins it.
type Device struct {
	p     Params
	banks int // cached p.TotalBanks()

	policy RefreshPolicy

	// disturb[b][r] counts neighbor activations of physical row r in bank
	// b since r was last restored (refreshed or activated). Dense
	// representation; nil when sparse is selected.
	disturb [][]uint32
	// sp[b] is the paged equivalent of disturb[b]; nil when dense.
	sp []pagedU32

	// l2p maps logical row addresses (as seen by the controller and the
	// mitigations) to physical rows. nil means identity — the overwhelming
	// default — so unremapped devices pay no O(rows) allocation; it is
	// materialized by SetRowRemap.
	l2p []int32
	// intervalActs counts activations per bank within the current
	// refresh interval, for trace statistics.
	intervalActs []uint32

	interval int // global interval counter
	// flips retains up to flipCap FlipEvents (stats.Flips counts all).
	flips   []FlipEvent
	flipCap int
	// flipped marks rows already reported this window so a sustained
	// attack yields one event per victim per window, as one data-corrupting
	// flip would. Dense bitset over bank*RowsPerBank+prow for small
	// geometries, lazily-paged for large ones; flippedDirty lists the set
	// positions so the per-window clear is O(flips), not O(rows).
	flipped      *bitset.Bitset
	flippedP     *bitset.Paged
	flippedDirty []int64

	stats Stats

	// Observers, in event order (trace recording).
	onAct      func(bank, row int)
	onInterval func()

	// data is the optional sparse content store (see data.go).
	data *dataStore
}

// New creates a Device. A nil policy defaults to NewNeighborPolicy.
func New(p Params, policy RefreshPolicy) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		policy = NewNeighborPolicy(p)
	}
	banks := p.TotalBanks()
	d := &Device{
		p:            p,
		banks:        banks,
		policy:       policy,
		intervalActs: make([]uint32, banks),
		flipCap:      defaultFlipEventCap,
	}
	if p.Sparse() {
		d.sp = make([]pagedU32, banks)
		for b := range d.sp {
			d.sp[b] = newPagedU32(p.RowsPerBank)
		}
		d.flippedP = bitset.NewPaged(banks * p.RowsPerBank)
	} else {
		d.disturb = make([][]uint32, banks)
		for b := range d.disturb {
			d.disturb[b] = make([]uint32, p.RowsPerBank)
		}
		d.flipped = bitset.New(banks * p.RowsPerBank)
	}
	return d, nil
}

// Params returns the device parameters.
func (d *Device) Params() Params { return d.p }

// Banks returns the total bank population (Ranks × BankGroups × Banks).
func (d *Device) Banks() int { return d.banks }

// Policy returns the refresh policy in use.
func (d *Device) Policy() RefreshPolicy { return d.policy }

// SetRowRemap installs a logical-to-physical row permutation, modeling
// spare-row replacement of defective rows. The slice must be a permutation
// of [0, RowsPerBank); it is validated and copied. Identity mapping is the
// implicit default and costs no memory.
func (d *Device) SetRowRemap(perm []int) error {
	if len(perm) != d.p.RowsPerBank {
		return fmt.Errorf("dram: remap length %d, want %d", len(perm), d.p.RowsPerBank)
	}
	seen := make([]bool, len(perm))
	for _, v := range perm {
		if v < 0 || v >= len(perm) || seen[v] {
			return fmt.Errorf("dram: remap is not a permutation")
		}
		seen[v] = true
	}
	if d.l2p == nil {
		d.l2p = make([]int32, d.p.RowsPerBank)
	}
	for i, v := range perm {
		d.l2p[i] = int32(v)
	}
	return nil
}

// physical resolves a logical row through the remap (identity when no
// remap was installed).
func (d *Device) physical(row int) int {
	if d.l2p == nil {
		return row
	}
	return int(d.l2p[row])
}

// Physical returns the physical row behind a logical row address.
func (d *Device) Physical(row int) int { return d.physical(row) }

// Interval returns the global refresh-interval counter.
func (d *Device) Interval() int { return d.interval }

// IntervalInWindow returns the current interval's index within its window.
func (d *Device) IntervalInWindow() int { return d.interval % d.p.RefInt }

// Window returns the current refresh-window index.
func (d *Device) Window() int { return d.interval / d.p.RefInt }

// Flips returns the recorded bit-flip events — the complete list up to
// the retention cap (SetFlipEventCap), a prefix sample beyond it. Use
// FlipCount for the exact total.
func (d *Device) Flips() []FlipEvent { return d.flips }

// FlipCount returns the exact number of threshold crossings recorded
// (one per victim per window), independent of event retention.
func (d *Device) FlipCount() uint64 { return d.stats.Flips }

// SetFlipEventCap bounds FlipEvent retention (n <= 0 restores the
// default). Counting is unaffected; only the event list is truncated.
func (d *Device) SetFlipEventCap(n int) {
	if n <= 0 {
		n = defaultFlipEventCap
	}
	d.flipCap = n
}

// Stats returns a copy of the activity counters.
func (d *Device) Stats() Stats { return d.stats }

// restore resets the disturbance of a physical row (its charge is
// restored by an activation or refresh). Restoring a row on an untouched
// sparse page is a no-op — it already reads as zero.
func (d *Device) restore(bank, prow int) {
	if d.disturb != nil {
		d.disturb[bank][prow] = 0
		return
	}
	d.sp[bank].set(prow, 0)
}

// disturbNeighbor bumps the disturbance counter of a physical row and
// records a flip when the threshold is crossed.
func (d *Device) disturbNeighbor(bank, prow int) {
	var c uint32
	if d.disturb != nil {
		c = d.disturb[bank][prow] + 1
		d.disturb[bank][prow] = c
	} else {
		pg := d.sp[bank].page(prow)
		c = pg[prow&pageMask] + 1
		pg[prow&pageMask] = c
	}
	if c >= d.p.FlipThreshold {
		d.recordFlip(bank, prow)
	}
}

// flipGet / flipSet / flipClear probe the per-window flip bookkeeping in
// whichever representation is live.
func (d *Device) flipGet(pos int) bool {
	if d.flipped != nil {
		return d.flipped.Get(pos)
	}
	return d.flippedP.Get(pos)
}

func (d *Device) flipSet(pos int) {
	if d.flipped != nil {
		d.flipped.Set(pos)
		return
	}
	d.flippedP.Set(pos)
}

func (d *Device) flipClear(pos int) {
	if d.flipped != nil {
		d.flipped.Clear(pos)
		return
	}
	d.flippedP.Clear(pos)
}

// recordFlip handles a threshold crossing: one FlipEvent per victim per
// window (the flipped bitset dedupes sustained hammering). It is the cold
// half of the disturbance path — counters keep incrementing past the
// threshold, but this is only reached once the attack has succeeded.
func (d *Device) recordFlip(bank, prow int) {
	pos := bank*d.p.RowsPerBank + prow
	if !d.flipGet(pos) {
		d.flipSet(pos)
		d.flippedDirty = append(d.flippedDirty, int64(pos))
		d.stats.Flips++
		if len(d.flips) < d.flipCap {
			d.flips = append(d.flips, FlipEvent{
				Bank: bank, Row: prow,
				Window: d.Window(), Interval: d.interval,
			})
		}
		if d.data != nil {
			d.data.corrupt(bank, prow, d.Window())
		}
	}
}

// activatePhysical performs the electrical work of an activation of a
// physical row: restore the row itself, disturb both physical neighbors.
// The dense branch keeps the seed's layout — counter updates written out
// inline with the bank's column and the threshold hoisted into locals,
// because this runs once per activation and re-deriving the two-level
// slice index per neighbor showed up in the pipeline profile. The sparse
// branch pays one page probe per touched row; the self-restore of a row
// on an untouched page allocates nothing.
func (d *Device) activatePhysical(bank, prow int) {
	thr := d.p.FlipThreshold
	if col := d.disturb; col != nil {
		c0 := col[bank]
		c0[prow] = 0
		if prow > 0 {
			c := c0[prow-1] + 1
			c0[prow-1] = c
			if c >= thr {
				d.recordFlip(bank, prow-1)
			}
		}
		if prow < len(c0)-1 {
			c := c0[prow+1] + 1
			c0[prow+1] = c
			if c >= thr {
				d.recordFlip(bank, prow+1)
			}
		}
		return
	}
	s := &d.sp[bank]
	s.set(prow, 0)
	if prow > 0 {
		pg := s.page(prow - 1)
		c := pg[(prow-1)&pageMask] + 1
		pg[(prow-1)&pageMask] = c
		if c >= thr {
			d.recordFlip(bank, prow-1)
		}
	}
	if prow < d.p.RowsPerBank-1 {
		pg := s.page(prow + 1)
		c := pg[(prow+1)&pageMask] + 1
		pg[(prow+1)&pageMask] = c
		if c >= thr {
			d.recordFlip(bank, prow+1)
		}
	}
}

// SetObserver registers callbacks invoked on every normal activation and
// on every interval advance, in event order — exactly the act/ref command
// stream a mitigation observes. The trace recorder uses this. Either
// callback may be nil.
func (d *Device) SetObserver(onAct func(bank, row int), onInterval func()) {
	d.onAct = onAct
	d.onInterval = onInterval
}

// Activate performs a normal activation of a logical row, as issued by the
// memory controller for a read or write.
func (d *Device) Activate(bank, row int) {
	d.checkAddr(bank, row)
	d.stats.Activates++
	d.intervalActs[bank]++
	if d.onAct != nil {
		d.onAct(bank, row)
	}
	d.activatePhysical(bank, d.physical(row))
}

// ActivateNeighbors executes the act_n maintenance command: the device
// activates both physical neighbors of the given logical row, using its
// internal mapping (Fig. 1: "the addresses of the two neighbors are not
// passed directly, because they depend on the internal mapping").
func (d *Device) ActivateNeighbors(bank, row int) {
	d.checkAddr(bank, row)
	prow := d.physical(row)
	if prow > 0 {
		d.stats.NeighborActs++
		d.activatePhysical(bank, prow-1)
	}
	if prow < d.p.RowsPerBank-1 {
		d.stats.NeighborActs++
		d.activatePhysical(bank, prow+1)
	}
}

// ActivateNeighbor executes a one-sided variant of act_n: the device
// activates the physical neighbor on the given side (-1 or +1) of the
// logical row, resolving the internal mapping. PARA-style mitigations use
// it to refresh one randomly chosen neighbor per trigger.
func (d *Device) ActivateNeighbor(bank, row, side int) {
	d.checkAddr(bank, row)
	if side != -1 && side != 1 {
		panic(fmt.Sprintf("dram: ActivateNeighbor side must be ±1, got %d", side))
	}
	prow := d.physical(row) + side
	if prow < 0 || prow >= d.p.RowsPerBank {
		return // edge row: no neighbor on that side
	}
	d.stats.NeighborActs++
	d.activatePhysical(bank, prow)
}

// RefreshRow executes a mitigation-issued refresh of one logical row (the
// style of command ProHit and MRLoc use, which addresses the victim row
// directly by its logical N±1 address). Unlike act_n it does not consult
// the neighbor mapping beyond the row's own remap entry, so under spare-row
// remapping it can restore the wrong physical row — the weakness the paper
// notes for those schemes.
func (d *Device) RefreshRow(bank, row int) {
	d.checkAddr(bank, row)
	d.stats.DirectRefreshes++
	d.activatePhysical(bank, d.physical(row))
}

// AdvanceInterval performs the auto-refresh work of the current refresh
// interval on every bank and advances the interval counter. It returns the
// physical rows that were refreshed (shared by all banks).
func (d *Device) AdvanceInterval() []int {
	if d.onInterval != nil {
		d.onInterval()
	}
	win, iv := d.Window(), d.IntervalInWindow()
	rows := d.policy.RowsFor(win, iv)
	for b := 0; b < d.banks; b++ {
		for _, r := range rows {
			d.restore(b, r)
		}
		// Interval statistics.
		a := uint64(d.intervalActs[b])
		if a > d.stats.MaxActsInIntv {
			d.stats.MaxActsInIntv = a
		}
		d.stats.IntervalActsSum += a
		d.stats.IntervalActsSeen++
		d.intervalActs[b] = 0
	}
	d.stats.AutoRefreshes += uint64(len(rows) * d.banks)
	d.stats.Intervals++
	d.interval++
	if d.interval%d.p.RefInt == 0 {
		// New window: victims refreshed, flip bookkeeping restarts. Only
		// the positions actually set are cleared.
		for _, pos := range d.flippedDirty {
			d.flipClear(int(pos))
		}
		d.flippedDirty = d.flippedDirty[:0]
	}
	return rows
}

// Disturbance returns the current disturbance count of a physical row,
// for tests and white-box experiments.
func (d *Device) Disturbance(bank, prow int) uint32 {
	if d.disturb != nil {
		return d.disturb[bank][prow]
	}
	return d.sp[bank].get(prow)
}

// InjectDisturbance adds n disturbance counts to a physical row without
// an activation, modeling retention-weakened cells (a weak cell reaches
// the flip threshold with fewer real hammering activations). Threshold
// crossings are recorded exactly like activation-induced ones, so a
// mitigation provisioned for the nominal threshold is measurably stressed.
// It is a fault-injection entry point; normal simulation never calls it.
func (d *Device) InjectDisturbance(bank, prow int, n uint32) {
	if bank < 0 || bank >= d.banks || prow < 0 || prow >= d.p.RowsPerBank || n == 0 {
		return
	}
	// Apply in one step but reuse the flip bookkeeping of a single
	// disturbance for the threshold crossing.
	if c := d.Disturbance(bank, prow); n > 1 && c+n-1 > c { // guard overflow
		if d.disturb != nil {
			d.disturb[bank][prow] = c + n - 1
		} else {
			d.sp[bank].set(prow, c+n-1)
		}
	}
	d.disturbNeighbor(bank, prow)
}

// TouchedRows returns the row population currently backed by allocated
// state: the whole population for a dense device, the rows of touched
// pages for a sparse one. The scale gate asserts heap against this.
func (d *Device) TouchedRows() int {
	if d.disturb != nil {
		return d.banks * d.p.RowsPerBank
	}
	pages := 0
	for b := range d.sp {
		pages += d.sp[b].touchedPages()
	}
	return pages * pageRows
}

// StateBytes returns the approximate heap footprint of the device's
// per-row state: disturbance counters, flip bookkeeping, the row remap
// and the data-store index. It counts allocated pages only, so for a
// sparse device it is O(touched rows).
func (d *Device) StateBytes() int {
	n := len(d.intervalActs) * 4
	if d.disturb != nil {
		n += d.banks * d.p.RowsPerBank * 4
		n += len(d.flipped.Words()) * 8
	} else {
		for b := range d.sp {
			n += len(d.sp[b].pages) * 24 // page table (slice headers)
			n += d.sp[b].touchedPages() * pageRows * 4
		}
		n += d.flippedP.Bytes()
	}
	if d.l2p != nil {
		n += len(d.l2p) * 4
	}
	n += len(d.flippedDirty) * 8
	n += len(d.flips) * 32
	if d.data != nil {
		n += d.data.stateBytes()
	}
	return n
}

// DenseStateBytes returns what the dense per-row layout would allocate
// for the given parameters (disturbance counters + flip bitset), the
// baseline the scale gate compares sparse heap against.
func DenseStateBytes(p Params) int {
	rows := p.TotalRows()
	return rows*4 + rows/8
}

func (d *Device) checkAddr(bank, row int) {
	if bank < 0 || bank >= d.banks || row < 0 || row >= d.p.RowsPerBank {
		panic(fmt.Sprintf("dram: address out of range: bank %d row %d", bank, row))
	}
}

package dram

import (
	"fmt"

	"tivapromi/internal/bitset"
)

// FlipEvent records a victim row crossing the disturbance threshold — a
// successful Row-Hammer attack.
type FlipEvent struct {
	Bank     int
	Row      int // physical row
	Window   int // refresh window in which the flip occurred
	Interval int // global refresh-interval index at the time of the flip
}

// Stats aggregates device activity.
type Stats struct {
	Activates        uint64 // normal row activations (workload + attacker)
	NeighborActs     uint64 // activations issued by act_n commands
	DirectRefreshes  uint64 // mitigation-issued single-row refreshes
	AutoRefreshes    uint64 // rows restored by auto-refresh
	Intervals        uint64 // refresh intervals elapsed
	Flips            uint64 // threshold crossings
	MaxActsInIntv    uint64 // max activations observed in one bank-interval
	IntervalActsSum  uint64 // sum over bank-intervals of activation counts
	IntervalActsSeen uint64 // number of bank-intervals counted
}

// AvgActsPerInterval returns the mean activations per bank per refresh
// interval, the quantity the paper reports as ≈40 for its traces.
func (s Stats) AvgActsPerInterval() float64 {
	if s.IntervalActsSeen == 0 {
		return 0
	}
	return float64(s.IntervalActsSum) / float64(s.IntervalActsSeen)
}

// Device is the simulated DRAM. It is not safe for concurrent use; the
// experiment harness runs one Device per goroutine.
type Device struct {
	p      Params
	policy RefreshPolicy

	// disturb[b][r] counts neighbor activations of physical row r in bank
	// b since r was last restored (refreshed or activated).
	disturb [][]uint32
	// l2p maps logical row addresses (as seen by the controller and the
	// mitigations) to physical rows. Identity unless SetRowRemap is used.
	l2p []int32
	// intervalActs counts activations per bank within the current
	// refresh interval, for trace statistics.
	intervalActs []uint32

	interval int // global interval counter
	flips    []FlipEvent
	// flipped marks rows already reported this window so a sustained
	// attack yields one event per victim per window, as one data-corrupting
	// flip would. It is a dense bitset over bank*RowsPerBank+prow (the seed
	// used a map here, which put hashing and allocation on the disturbance
	// path); flippedDirty lists the set positions so the per-window clear is
	// O(flips), not O(rows).
	flipped      *bitset.Bitset
	flippedDirty []int32

	stats Stats

	// Observers, in event order (trace recording).
	onAct      func(bank, row int)
	onInterval func()

	// data is the optional sparse content store (see data.go).
	data *dataStore
}

// New creates a Device. A nil policy defaults to NewNeighborPolicy.
func New(p Params, policy RefreshPolicy) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		policy = NewNeighborPolicy(p)
	}
	d := &Device{
		p:            p,
		policy:       policy,
		disturb:      make([][]uint32, p.Banks),
		l2p:          make([]int32, p.RowsPerBank),
		intervalActs: make([]uint32, p.Banks),
		flipped:      bitset.New(p.Banks * p.RowsPerBank),
	}
	for b := range d.disturb {
		d.disturb[b] = make([]uint32, p.RowsPerBank)
	}
	for r := range d.l2p {
		d.l2p[r] = int32(r)
	}
	return d, nil
}

// Params returns the device parameters.
func (d *Device) Params() Params { return d.p }

// Policy returns the refresh policy in use.
func (d *Device) Policy() RefreshPolicy { return d.policy }

// SetRowRemap installs a logical-to-physical row permutation, modeling
// spare-row replacement of defective rows. The slice must be a permutation
// of [0, RowsPerBank); it is validated and copied.
func (d *Device) SetRowRemap(perm []int) error {
	if len(perm) != d.p.RowsPerBank {
		return fmt.Errorf("dram: remap length %d, want %d", len(perm), d.p.RowsPerBank)
	}
	seen := make([]bool, len(perm))
	for _, v := range perm {
		if v < 0 || v >= len(perm) || seen[v] {
			return fmt.Errorf("dram: remap is not a permutation")
		}
		seen[v] = true
	}
	for i, v := range perm {
		d.l2p[i] = int32(v)
	}
	return nil
}

// Physical returns the physical row behind a logical row address.
func (d *Device) Physical(row int) int { return int(d.l2p[row]) }

// Interval returns the global refresh-interval counter.
func (d *Device) Interval() int { return d.interval }

// IntervalInWindow returns the current interval's index within its window.
func (d *Device) IntervalInWindow() int { return d.interval % d.p.RefInt }

// Window returns the current refresh-window index.
func (d *Device) Window() int { return d.interval / d.p.RefInt }

// Flips returns the recorded bit-flip events.
func (d *Device) Flips() []FlipEvent { return d.flips }

// Stats returns a copy of the activity counters.
func (d *Device) Stats() Stats { return d.stats }

// restore resets the disturbance of a physical row (its charge is
// restored by an activation or refresh).
func (d *Device) restore(bank, prow int) {
	d.disturb[bank][prow] = 0
}

// disturbNeighbor bumps the disturbance counter of a physical row and
// records a flip when the threshold is crossed.
func (d *Device) disturbNeighbor(bank, prow int) {
	c := d.disturb[bank][prow] + 1
	d.disturb[bank][prow] = c
	if c >= d.p.FlipThreshold {
		d.recordFlip(bank, prow)
	}
}

// recordFlip handles a threshold crossing: one FlipEvent per victim per
// window (the flipped bitset dedupes sustained hammering). It is the cold
// half of the disturbance path — counters keep incrementing past the
// threshold, but this is only reached once the attack has succeeded.
func (d *Device) recordFlip(bank, prow int) {
	pos := bank*d.p.RowsPerBank + prow
	if !d.flipped.Get(pos) {
		d.flipped.Set(pos)
		d.flippedDirty = append(d.flippedDirty, int32(pos))
		d.stats.Flips++
		d.flips = append(d.flips, FlipEvent{
			Bank: bank, Row: prow,
			Window: d.Window(), Interval: d.interval,
		})
		if d.data != nil {
			d.data.corrupt(bank, prow, d.Window())
		}
	}
}

// activatePhysical performs the electrical work of an activation of a
// physical row: restore the row itself, disturb both physical neighbors.
// The counter updates are written out inline with the bank's column and
// the threshold hoisted into locals — this runs once per activation, and
// re-deriving the two-level slice index per neighbor showed up in the
// pipeline profile.
func (d *Device) activatePhysical(bank, prow int) {
	col := d.disturb[bank]
	thr := d.p.FlipThreshold
	col[prow] = 0
	if prow > 0 {
		c := col[prow-1] + 1
		col[prow-1] = c
		if c >= thr {
			d.recordFlip(bank, prow-1)
		}
	}
	if prow < len(col)-1 {
		c := col[prow+1] + 1
		col[prow+1] = c
		if c >= thr {
			d.recordFlip(bank, prow+1)
		}
	}
}

// SetObserver registers callbacks invoked on every normal activation and
// on every interval advance, in event order — exactly the act/ref command
// stream a mitigation observes. The trace recorder uses this. Either
// callback may be nil.
func (d *Device) SetObserver(onAct func(bank, row int), onInterval func()) {
	d.onAct = onAct
	d.onInterval = onInterval
}

// Activate performs a normal activation of a logical row, as issued by the
// memory controller for a read or write.
func (d *Device) Activate(bank, row int) {
	d.checkAddr(bank, row)
	d.stats.Activates++
	d.intervalActs[bank]++
	if d.onAct != nil {
		d.onAct(bank, row)
	}
	d.activatePhysical(bank, int(d.l2p[row]))
}

// ActivateNeighbors executes the act_n maintenance command: the device
// activates both physical neighbors of the given logical row, using its
// internal mapping (Fig. 1: "the addresses of the two neighbors are not
// passed directly, because they depend on the internal mapping").
func (d *Device) ActivateNeighbors(bank, row int) {
	d.checkAddr(bank, row)
	prow := int(d.l2p[row])
	if prow > 0 {
		d.stats.NeighborActs++
		d.activatePhysical(bank, prow-1)
	}
	if prow < d.p.RowsPerBank-1 {
		d.stats.NeighborActs++
		d.activatePhysical(bank, prow+1)
	}
}

// ActivateNeighbor executes a one-sided variant of act_n: the device
// activates the physical neighbor on the given side (-1 or +1) of the
// logical row, resolving the internal mapping. PARA-style mitigations use
// it to refresh one randomly chosen neighbor per trigger.
func (d *Device) ActivateNeighbor(bank, row, side int) {
	d.checkAddr(bank, row)
	if side != -1 && side != 1 {
		panic(fmt.Sprintf("dram: ActivateNeighbor side must be ±1, got %d", side))
	}
	prow := int(d.l2p[row]) + side
	if prow < 0 || prow >= d.p.RowsPerBank {
		return // edge row: no neighbor on that side
	}
	d.stats.NeighborActs++
	d.activatePhysical(bank, prow)
}

// RefreshRow executes a mitigation-issued refresh of one logical row (the
// style of command ProHit and MRLoc use, which addresses the victim row
// directly by its logical N±1 address). Unlike act_n it does not consult
// the neighbor mapping beyond the row's own remap entry, so under spare-row
// remapping it can restore the wrong physical row — the weakness the paper
// notes for those schemes.
func (d *Device) RefreshRow(bank, row int) {
	d.checkAddr(bank, row)
	d.stats.DirectRefreshes++
	d.activatePhysical(bank, int(d.l2p[row]))
}

// AdvanceInterval performs the auto-refresh work of the current refresh
// interval on every bank and advances the interval counter. It returns the
// physical rows that were refreshed (shared by all banks).
func (d *Device) AdvanceInterval() []int {
	if d.onInterval != nil {
		d.onInterval()
	}
	win, iv := d.Window(), d.IntervalInWindow()
	rows := d.policy.RowsFor(win, iv)
	for b := 0; b < d.p.Banks; b++ {
		for _, r := range rows {
			d.restore(b, r)
		}
		// Interval statistics.
		a := uint64(d.intervalActs[b])
		if a > d.stats.MaxActsInIntv {
			d.stats.MaxActsInIntv = a
		}
		d.stats.IntervalActsSum += a
		d.stats.IntervalActsSeen++
		d.intervalActs[b] = 0
	}
	d.stats.AutoRefreshes += uint64(len(rows) * d.p.Banks)
	d.stats.Intervals++
	d.interval++
	if d.interval%d.p.RefInt == 0 {
		// New window: victims refreshed, flip bookkeeping restarts. Only
		// the positions actually set are cleared.
		for _, pos := range d.flippedDirty {
			d.flipped.Clear(int(pos))
		}
		d.flippedDirty = d.flippedDirty[:0]
	}
	return rows
}

// Disturbance returns the current disturbance count of a physical row,
// for tests and white-box experiments.
func (d *Device) Disturbance(bank, prow int) uint32 { return d.disturb[bank][prow] }

// InjectDisturbance adds n disturbance counts to a physical row without
// an activation, modeling retention-weakened cells (a weak cell reaches
// the flip threshold with fewer real hammering activations). Threshold
// crossings are recorded exactly like activation-induced ones, so a
// mitigation provisioned for the nominal threshold is measurably stressed.
// It is a fault-injection entry point; normal simulation never calls it.
func (d *Device) InjectDisturbance(bank, prow int, n uint32) {
	if bank < 0 || bank >= d.p.Banks || prow < 0 || prow >= d.p.RowsPerBank || n == 0 {
		return
	}
	// Apply in one step but reuse the flip bookkeeping of a single
	// disturbance for the threshold crossing.
	if c := d.disturb[bank][prow]; n > 1 && c+n-1 > c { // guard overflow
		d.disturb[bank][prow] = c + n - 1
	}
	d.disturbNeighbor(bank, prow)
}

func (d *Device) checkAddr(bank, row int) {
	if bank < 0 || bank >= d.p.Banks || row < 0 || row >= d.p.RowsPerBank {
		panic(fmt.Sprintf("dram: address out of range: bank %d row %d", bank, row))
	}
}

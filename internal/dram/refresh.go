package dram

import (
	"fmt"

	"tivapromi/internal/rng"
)

// RefreshPolicy decides which physical rows an auto-refresh interval
// restores. Over one full window (RefInt intervals) every policy must
// refresh every row exactly once; PolicyPartitions verifies this and the
// Device checks it lazily in debug builds of the tests.
//
// TiVaPRoMi assumes policy (i): interval i refreshes rows
// [i*RowsPI, (i+1)*RowsPI). Section IV evaluates three alternatives to show
// the technique does not depend on the assumption.
type RefreshPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// RowsFor returns the physical rows refreshed in in-window interval
	// `interval` of window `window`. The returned slice is only valid
	// until the next call.
	RowsFor(window, interval int) []int
}

// NeighborPolicy is the paper's assumed policy: each interval refreshes a
// contiguous block of row addresses.
type NeighborPolicy struct {
	rowsPI int
	buf    []int
}

// NewNeighborPolicy returns the contiguous-block refresh policy for the
// given parameters.
func NewNeighborPolicy(p Params) *NeighborPolicy {
	return &NeighborPolicy{rowsPI: p.RowsPerInterval(), buf: make([]int, p.RowsPerInterval())}
}

// Name implements RefreshPolicy.
func (n *NeighborPolicy) Name() string { return "neighbors" }

// RowsFor implements RefreshPolicy.
func (n *NeighborPolicy) RowsFor(_, interval int) []int {
	base := interval * n.rowsPI
	for i := range n.buf {
		n.buf[i] = base + i
	}
	return n.buf
}

// RemappedPolicy refreshes contiguous blocks, but a configurable set of
// rows has been remapped (as when defective rows are replaced by spares),
// so a few addresses are refreshed out of their nominal interval. This is
// policy (ii) of Section IV.
type RemappedPolicy struct {
	inner NeighborPolicy
	remap map[int]int // nominal physical row -> actual physical row
	buf   []int
}

// NewRemappedPolicy builds a remapped policy with `swaps` pseudo-random
// pairs of rows exchanged, deterministic in seed.
func NewRemappedPolicy(p Params, swaps int, seed uint64) *RemappedPolicy {
	src := rng.NewXorShift64Star(seed ^ 0x5ee0)
	remap := make(map[int]int, 2*swaps)
	for i := 0; i < swaps; i++ {
		a := rng.Intn(src, p.RowsPerBank)
		b := rng.Intn(src, p.RowsPerBank)
		if a == b {
			continue
		}
		if _, ok := remap[a]; ok {
			continue
		}
		if _, ok := remap[b]; ok {
			continue
		}
		remap[a], remap[b] = b, a
	}
	return &RemappedPolicy{
		inner: *NewNeighborPolicy(p),
		remap: remap,
		buf:   make([]int, p.RowsPerInterval()),
	}
}

// Name implements RefreshPolicy.
func (r *RemappedPolicy) Name() string { return "neighbors-remapped" }

// RowsFor implements RefreshPolicy.
func (r *RemappedPolicy) RowsFor(window, interval int) []int {
	rows := r.inner.RowsFor(window, interval)
	for i, row := range rows {
		if to, ok := r.remap[row]; ok {
			r.buf[i] = to
		} else {
			r.buf[i] = row
		}
	}
	return r.buf
}

// RandomPolicy refreshes a fresh pseudo-random permutation of all rows each
// window, RowsPI at a time. This is policy (iii) of Section IV.
type RandomPolicy struct {
	p      Params
	seed   uint64
	window int
	perm   []int
}

// NewRandomPolicy returns the random-permutation refresh policy.
func NewRandomPolicy(p Params, seed uint64) *RandomPolicy {
	return &RandomPolicy{p: p, seed: seed, window: -1}
}

// Name implements RefreshPolicy.
func (r *RandomPolicy) Name() string { return "random" }

// RowsFor implements RefreshPolicy.
func (r *RandomPolicy) RowsFor(window, interval int) []int {
	if window != r.window {
		src := rng.NewXorShift64Star(r.seed + uint64(window)*0x9e37)
		r.perm = rng.Perm(src, r.p.RowsPerBank)
		r.window = window
	}
	rpi := r.p.RowsPerInterval()
	return r.perm[interval*rpi : (interval+1)*rpi]
}

// MaskedCounterPolicy refreshes the block whose index is the interval
// counter XORed with a fixed mask — a hardware-friendly non-sequential
// order. This is policy (iv) of Section IV.
type MaskedCounterPolicy struct {
	p    Params
	mask int
	buf  []int
}

// NewMaskedCounterPolicy returns the counter-with-mask policy. The mask is
// reduced modulo RefInt so any value is safe.
func NewMaskedCounterPolicy(p Params, mask int) *MaskedCounterPolicy {
	return &MaskedCounterPolicy{
		p:    p,
		mask: mask & (p.RefInt - 1),
		buf:  make([]int, p.RowsPerInterval()),
	}
}

// Name implements RefreshPolicy.
func (m *MaskedCounterPolicy) Name() string { return "counter+mask" }

// RowsFor implements RefreshPolicy.
func (m *MaskedCounterPolicy) RowsFor(_, interval int) []int {
	block := (interval ^ m.mask) % m.p.RefInt
	base := block * m.p.RowsPerInterval()
	for i := range m.buf {
		m.buf[i] = base + i
	}
	return m.buf
}

// PolicyPartitions checks that the policy refreshes every row exactly once
// over the given window. It is used by tests and by the harness's self
// check at startup.
func PolicyPartitions(p Params, pol RefreshPolicy, window int) error {
	seen := make([]bool, p.RowsPerBank)
	for i := 0; i < p.RefInt; i++ {
		for _, r := range pol.RowsFor(window, i) {
			if r < 0 || r >= p.RowsPerBank {
				return fmt.Errorf("dram: policy %s interval %d row %d out of range", pol.Name(), i, r)
			}
			if seen[r] {
				return fmt.Errorf("dram: policy %s refreshes row %d twice in window %d", pol.Name(), r, window)
			}
			seen[r] = true
		}
	}
	for r, ok := range seen {
		if !ok {
			return fmt.Errorf("dram: policy %s misses row %d in window %d", pol.Name(), r, window)
		}
	}
	return nil
}

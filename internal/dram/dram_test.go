package dram

import (
	"testing"
	"testing/quick"

	"tivapromi/internal/rng"
)

func testParams() Params {
	return Params{
		Banks:         2,
		RowsPerBank:   256,
		RefInt:        32, // 8 rows per interval
		FlipThreshold: 100,
		TRCNs:         45,
		TRefIntNs:     7800,
		TRFCNs:        350,
		IOFreqGHz:     1.2,
		RowBytes:      8192,
		MaxActsPerRI:  165,
	}
}

func mustDevice(t *testing.T, p Params, pol RefreshPolicy) *Device {
	t.Helper()
	d, err := New(p, pol)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParamsValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []func(*Params){
		func(p *Params) { p.Banks = 0 },
		func(p *Params) { p.RowsPerBank = 1 },
		func(p *Params) { p.RefInt = 0 },
		func(p *Params) { p.RowsPerBank = 100 }, // not a multiple of RefInt
		func(p *Params) { p.FlipThreshold = 0 },
	}
	for i, mutate := range cases {
		p := testParams()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestPaperParamsDerived(t *testing.T) {
	p := PaperParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.RowsPerInterval(); got != 16 {
		t.Errorf("RowsPerInterval = %d, want 16", got)
	}
	if got := p.ActCycleBudget(); got != 54 {
		t.Errorf("ActCycleBudget = %d, want 54 (45 ns at 1.2 GHz)", got)
	}
	if got := p.RefCycleBudget(); got != 420 {
		t.Errorf("RefCycleBudget = %d, want 420 (350 ns at 1.2 GHz)", got)
	}
	if got := p.RefreshIntervalOf(0); got != 0 {
		t.Errorf("fr(0) = %d", got)
	}
	if got := p.RefreshIntervalOf(16); got != 1 {
		t.Errorf("fr(16) = %d, want 1", got)
	}
	if got := p.RefreshIntervalOf(p.RowsPerBank - 1); got != p.RefInt-1 {
		t.Errorf("fr(last) = %d, want %d", got, p.RefInt-1)
	}
}

func TestActivationDisturbsBothNeighbors(t *testing.T) {
	d := mustDevice(t, testParams(), nil)
	d.Activate(0, 10)
	if d.Disturbance(0, 9) != 1 || d.Disturbance(0, 11) != 1 {
		t.Fatalf("neighbors not disturbed: %d, %d", d.Disturbance(0, 9), d.Disturbance(0, 11))
	}
	if d.Disturbance(0, 10) != 0 {
		t.Fatal("activated row disturbed itself")
	}
	// Other bank untouched.
	if d.Disturbance(1, 9) != 0 {
		t.Fatal("activation leaked across banks")
	}
}

func TestEdgeRowsHaveOneNeighbor(t *testing.T) {
	p := testParams()
	d := mustDevice(t, p, nil)
	d.Activate(0, 0)
	if d.Disturbance(0, 1) != 1 {
		t.Fatal("row 0 did not disturb row 1")
	}
	d.Activate(0, p.RowsPerBank-1)
	if d.Disturbance(0, p.RowsPerBank-2) != 1 {
		t.Fatal("last row did not disturb its lower neighbor")
	}
}

func TestActivationRestoresOwnRow(t *testing.T) {
	d := mustDevice(t, testParams(), nil)
	for i := 0; i < 50; i++ {
		d.Activate(0, 10) // disturbs 9 and 11
	}
	if d.Disturbance(0, 11) != 50 {
		t.Fatalf("disturbance = %d, want 50", d.Disturbance(0, 11))
	}
	d.Activate(0, 11) // victim activated: restored
	if d.Disturbance(0, 11) != 0 {
		t.Fatal("activation did not restore the row")
	}
	// ...but it disturbed ITS neighbors (10 and 12).
	if d.Disturbance(0, 12) != 1 {
		t.Fatal("restoring activation did not disturb row 12")
	}
}

func TestFlipAtThreshold(t *testing.T) {
	p := testParams()
	d := mustDevice(t, p, nil)
	for i := uint32(0); i < p.FlipThreshold-1; i++ {
		d.Activate(0, 20)
	}
	if len(d.Flips()) != 0 {
		t.Fatal("flip before threshold")
	}
	d.Activate(0, 20)
	flips := d.Flips()
	if len(flips) != 2 { // rows 19 and 21 both cross together
		t.Fatalf("flips = %d, want 2", len(flips))
	}
	for _, f := range flips {
		if f.Bank != 0 || (f.Row != 19 && f.Row != 21) {
			t.Fatalf("unexpected flip %+v", f)
		}
	}
	// Continued hammering in the same window reports no duplicate events.
	d.Activate(0, 20)
	if len(d.Flips()) != 2 {
		t.Fatal("duplicate flip reported within one window")
	}
}

func TestDoubleSidedSumsAggressors(t *testing.T) {
	// The paper's threshold is on the SUM of both aggressor activations.
	p := testParams()
	d := mustDevice(t, p, nil)
	for i := uint32(0); i < p.FlipThreshold/2; i++ {
		d.Activate(0, 19) // victim 20 from below
		d.Activate(0, 21) // victim 20 from above
	}
	found := false
	for _, f := range d.Flips() {
		if f.Row == 20 {
			found = true
		}
	}
	if !found {
		t.Fatal("double-sided attack with combined threshold activations did not flip")
	}
}

func TestActNRestoresBothVictims(t *testing.T) {
	p := testParams()
	d := mustDevice(t, p, nil)
	for i := 0; i < 50; i++ {
		d.Activate(0, 20)
	}
	d.ActivateNeighbors(0, 20)
	if d.Disturbance(0, 19) != 0 || d.Disturbance(0, 21) != 0 {
		t.Fatalf("act_n did not restore victims: %d, %d",
			d.Disturbance(0, 19), d.Disturbance(0, 21))
	}
	// act_n activations disturb the next ring (rows 18 and 22) and the
	// aggressor row 20 itself (twice: once from 19, once from 21).
	if d.Disturbance(0, 18) != 1 || d.Disturbance(0, 22) != 1 {
		t.Fatal("act_n activations did not propagate disturbance outward")
	}
	if d.Disturbance(0, 20) != 2 {
		t.Fatalf("aggressor disturbance after act_n = %d, want 2", d.Disturbance(0, 20))
	}
	if d.Stats().NeighborActs != 2 {
		t.Fatalf("NeighborActs = %d, want 2", d.Stats().NeighborActs)
	}
}

func TestAutoRefreshClearsDisturbance(t *testing.T) {
	p := testParams()
	d := mustDevice(t, p, nil)
	// Rows 0..7 are refreshed in interval 0 under the neighbor policy.
	for i := 0; i < 30; i++ {
		d.Activate(0, 4)
	}
	if d.Disturbance(0, 3) != 30 {
		t.Fatal("setup failed")
	}
	rows := d.AdvanceInterval()
	if len(rows) != p.RowsPerInterval() {
		t.Fatalf("refreshed %d rows, want %d", len(rows), p.RowsPerInterval())
	}
	if d.Disturbance(0, 3) != 0 || d.Disturbance(0, 5) != 0 {
		t.Fatal("auto refresh did not clear disturbance of refreshed rows")
	}
	if d.Interval() != 1 {
		t.Fatalf("interval = %d, want 1", d.Interval())
	}
}

func TestWindowAccounting(t *testing.T) {
	p := testParams()
	d := mustDevice(t, p, nil)
	for i := 0; i < p.RefInt; i++ {
		if d.Window() != 0 {
			t.Fatalf("window = %d during first window", d.Window())
		}
		d.AdvanceInterval()
	}
	if d.Window() != 1 || d.IntervalInWindow() != 0 {
		t.Fatalf("after one window: window=%d intv=%d", d.Window(), d.IntervalInWindow())
	}
}

func TestFlipReportedOncePerWindowButAgainNextWindow(t *testing.T) {
	p := testParams()
	d := mustDevice(t, p, nil)
	hammer := func() {
		for i := uint32(0); i < p.FlipThreshold+10; i++ {
			d.Activate(0, 100)
		}
	}
	hammer()
	n1 := len(d.Flips())
	if n1 == 0 {
		t.Fatal("no flip in first window")
	}
	for i := 0; i < p.RefInt; i++ {
		d.AdvanceInterval()
	}
	hammer()
	if len(d.Flips()) <= n1 {
		t.Fatal("sustained attack not reported again in a new window")
	}
}

func TestRowRemapAffectsNeighbors(t *testing.T) {
	p := testParams()
	d := mustDevice(t, p, nil)
	perm := make([]int, p.RowsPerBank)
	for i := range perm {
		perm[i] = i
	}
	// Logical 50 lives at physical 200.
	perm[50], perm[200] = 200, 50
	if err := d.SetRowRemap(perm); err != nil {
		t.Fatal(err)
	}
	d.Activate(0, 50)
	if d.Disturbance(0, 199) != 1 || d.Disturbance(0, 201) != 1 {
		t.Fatal("remapped activation did not disturb physical neighbors")
	}
	if d.Disturbance(0, 49) != 0 && d.Disturbance(0, 51) != 0 {
		// 49/51 are physical rows; logical 50's old location's neighbors
		// must be untouched.
		t.Fatal("remapped activation disturbed logical neighbors")
	}
	// act_n consults the internal mapping: it protects the real victims.
	d.ActivateNeighbors(0, 50)
	if d.Disturbance(0, 199) != 0 || d.Disturbance(0, 201) != 0 {
		t.Fatal("act_n did not restore physical victims under remap")
	}
	// RefreshRow(51) restores physical row 51 — NOT the real victim 201.
	for i := 0; i < 10; i++ {
		d.Activate(0, 50)
	}
	d.RefreshRow(0, 51)
	if d.Disturbance(0, 201) != 10 {
		t.Fatal("direct victim refresh unexpectedly found the physical victim")
	}
}

func TestSetRowRemapRejectsNonPermutation(t *testing.T) {
	p := testParams()
	d := mustDevice(t, p, nil)
	bad := make([]int, p.RowsPerBank)
	if err := d.SetRowRemap(bad); err == nil { // all zeros: not a permutation
		t.Fatal("non-permutation accepted")
	}
	if err := d.SetRowRemap([]int{1, 2, 3}); err == nil {
		t.Fatal("short remap accepted")
	}
}

func TestAddressBoundsPanic(t *testing.T) {
	d := mustDevice(t, testParams(), nil)
	for _, fn := range []func(){
		func() { d.Activate(-1, 0) },
		func() { d.Activate(0, -1) },
		func() { d.Activate(99, 0) },
		func() { d.Activate(0, 1<<20) },
		func() { d.ActivateNeighbors(0, 1<<20) },
		func() { d.RefreshRow(99, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range address did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestStatsCounting(t *testing.T) {
	p := testParams()
	d := mustDevice(t, p, nil)
	for i := 0; i < 10; i++ {
		d.Activate(0, 30)
	}
	d.ActivateNeighbors(0, 30)
	d.RefreshRow(0, 31)
	d.AdvanceInterval()
	s := d.Stats()
	if s.Activates != 10 {
		t.Errorf("Activates = %d", s.Activates)
	}
	if s.NeighborActs != 2 {
		t.Errorf("NeighborActs = %d", s.NeighborActs)
	}
	if s.DirectRefreshes != 1 {
		t.Errorf("DirectRefreshes = %d", s.DirectRefreshes)
	}
	if s.Intervals != 1 {
		t.Errorf("Intervals = %d", s.Intervals)
	}
	if s.AutoRefreshes != uint64(p.RowsPerInterval()*p.Banks) {
		t.Errorf("AutoRefreshes = %d", s.AutoRefreshes)
	}
	if s.MaxActsInIntv != 10 {
		t.Errorf("MaxActsInIntv = %d", s.MaxActsInIntv)
	}
	if got := s.AvgActsPerInterval(); got != 5 { // 10 acts over 2 bank-intervals
		t.Errorf("AvgActsPerInterval = %v, want 5", got)
	}
}

func TestDisturbanceNeverNegativeAndFlipIffThreshold(t *testing.T) {
	// Property: random operation sequences keep disturbance well-formed and
	// flips are recorded exactly when a counter reaches the threshold.
	p := testParams()
	p.FlipThreshold = 8
	f := func(ops []uint16, seed uint64) bool {
		d, err := New(p, nil)
		if err != nil {
			return false
		}
		src := rng.NewXorShift64Star(seed)
		for _, op := range ops {
			row := int(op) % p.RowsPerBank
			switch rng.Intn(src, 4) {
			case 0, 1:
				d.Activate(0, row)
			case 2:
				d.ActivateNeighbors(0, row)
			case 3:
				d.AdvanceInterval()
			}
		}
		// Every recorded flip must be at or above threshold... the counter
		// keeps rising after a flip, so just re-derive: no row without a
		// flip event may be at or above the threshold.
		flipRows := map[int]bool{}
		for _, fe := range d.Flips() {
			flipRows[fe.Row] = true
		}
		for r := 0; r < p.RowsPerBank; r++ {
			if d.Disturbance(0, r) >= p.FlipThreshold && !flipRows[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDataStoreRoundTrip(t *testing.T) {
	d := mustDevice(t, testParams(), nil)
	d.EnableDataStore(1)
	secret := []byte("secret-key-material")
	d.WriteData(0, 20, 64, secret)
	got := d.ReadData(0, 20, 64, len(secret))
	if string(got) != string(secret) {
		t.Fatalf("read %q", got)
	}
	// Unwritten rows read as zeroes.
	for _, b := range d.ReadData(1, 20, 0, 16) {
		if b != 0 {
			t.Fatal("unwritten row not zero")
		}
	}
}

func TestDataStorePanicsWhenDisabled(t *testing.T) {
	d := mustDevice(t, testParams(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("write without data store accepted")
		}
	}()
	d.WriteData(0, 0, 0, []byte{1})
}

func TestFlipCorruptsStoredData(t *testing.T) {
	p := testParams()
	d := mustDevice(t, p, nil)
	d.EnableDataStore(7)
	victim := 20
	original := make([]byte, p.RowBytes)
	for i := range original {
		original[i] = byte(i)
	}
	d.WriteData(0, victim, 0, original)
	// Hammer both neighbors past the threshold.
	for i := uint32(0); i <= p.FlipThreshold; i++ {
		d.Activate(0, victim-1)
		d.Activate(0, victim+1)
	}
	if d.Corruptions() == 0 {
		t.Fatal("flip did not corrupt stored data")
	}
	after := d.ReadData(0, victim, 0, p.RowBytes)
	diff := 0
	for i := range after {
		if after[i] != original[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("stored data unchanged after flip")
	}
	// Exactly one bit per flip event (rows 19 and 21 also flipped but
	// hold no data; victim 20 flipped... victim 20 is ACTIVATED here, so
	// its disturbance resets — the corrupted rows are 19's and 21's outer
	// neighbors plus the victim only if it crossed; recount precisely:
	// corruption count equals flip events on rows that hold data.
	if d.Corruptions() > uint64(len(d.Flips())) {
		t.Fatalf("corruptions %d exceed flip events %d", d.Corruptions(), len(d.Flips()))
	}
}

func TestFlipCorruptionDeterministic(t *testing.T) {
	run := func() []byte {
		p := testParams()
		d := mustDevice(t, p, nil)
		d.EnableDataStore(99)
		buf := make([]byte, p.RowBytes)
		d.WriteData(0, 30, 0, buf)
		for i := uint32(0); i <= p.FlipThreshold; i++ {
			d.Activate(0, 29)
			d.Activate(0, 31)
		}
		return d.ReadData(0, 30, 0, p.RowBytes)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("corruption position not deterministic — Flip Feng Shui repeatability lost")
		}
	}
}

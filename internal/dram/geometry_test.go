package dram

import "testing"

// TestValidateGeometry is the table-driven gate for the Ranks/BankGroups
// extension: every malformed geometry must be rejected with the field
// named, and every shipped preset must pass.
func TestValidateGeometry(t *testing.T) {
	mut := func(f func(*Params)) Params {
		p := FullDIMMParams()
		f(&p)
		return p
	}
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"paper", PaperParams(), true},
		{"scaled", ScaledParams(), true},
		{"full-dimm", FullDIMMParams(), true},
		{"zero-ranks-means-one", mut(func(p *Params) { p.Ranks = 0 }), true},
		{"zero-groups-means-one", mut(func(p *Params) { p.BankGroups = 0 }), true},
		{"dual-rank", mut(func(p *Params) { p.Ranks = 2 }), true},
		{"negative-ranks", mut(func(p *Params) { p.Ranks = -1 }), false},
		{"negative-groups", mut(func(p *Params) { p.BankGroups = -2 }), false},
		{"zero-banks", mut(func(p *Params) { p.Banks = 0 }), false},
		{"bank-cap", mut(func(p *Params) { p.Ranks = 4096; p.BankGroups = 1024 }), false},
		{"at-bank-cap", mut(func(p *Params) {
			p.Ranks = 512
			p.BankGroups = 32
			// 512 × 32 × 4 = 65536 = the cap, still legal.
		}), true},
		{"bad-state-mode", mut(func(p *Params) { p.State = StateMode(7) }), false},
		{"negative-state-mode", mut(func(p *Params) { p.State = StateMode(-1) }), false},
		{"rows-not-multiple-of-refint", mut(func(p *Params) { p.RowsPerBank = 65537 }), false},
	}
	for _, tc := range cases {
		err := tc.p.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid geometry accepted", tc.name)
		}
	}
}

// TestTotalBanksAndRows pins the population arithmetic, including the
// legacy reading where zero geometry fields mean a flat device.
func TestTotalBanksAndRows(t *testing.T) {
	cases := []struct {
		name              string
		ranks, groups     int
		banks, rows       int
		wantBanks, wantRk int
	}{
		{"legacy-flat", 0, 0, 16, 1024, 16, 16 * 1024},
		{"explicit-ones", 1, 1, 16, 1024, 16, 16 * 1024},
		{"full-dimm", 1, 8, 4, 65536, 32, 32 * 65536},
		{"dual-rank", 2, 8, 4, 65536, 64, 64 * 65536},
	}
	for _, tc := range cases {
		p := Params{Ranks: tc.ranks, BankGroups: tc.groups, Banks: tc.banks, RowsPerBank: tc.rows}
		if got := p.TotalBanks(); got != tc.wantBanks {
			t.Errorf("%s: TotalBanks = %d, want %d", tc.name, got, tc.wantBanks)
		}
		if got := p.TotalRows(); got != tc.wantRk {
			t.Errorf("%s: TotalRows = %d, want %d", tc.name, got, tc.wantRk)
		}
	}
}

// TestBankCoordFlatBankRoundTrip pins the rank-major flat-bank layout:
// FlatBank∘BankCoord must be the identity over the whole population for
// every geometry shape, and coordinates must stay in range.
func TestBankCoordFlatBankRoundTrip(t *testing.T) {
	geoms := []Params{
		{Banks: 16, RowsPerBank: 2},                         // legacy flat
		{Ranks: 1, BankGroups: 8, Banks: 4, RowsPerBank: 2}, // full DIMM
		{Ranks: 2, BankGroups: 4, Banks: 4, RowsPerBank: 2}, // dual rank
		{Ranks: 3, BankGroups: 1, Banks: 5, RowsPerBank: 2}, // non-power-of-two
		{Ranks: 2, BankGroups: 0, Banks: 8, RowsPerBank: 2}, // zero groups
	}
	for _, p := range geoms {
		ranks, groups := p.Ranks, p.BankGroups
		if ranks < 1 {
			ranks = 1
		}
		if groups < 1 {
			groups = 1
		}
		seen := make(map[int]bool)
		for flat := 0; flat < p.TotalBanks(); flat++ {
			rank, group, bank := p.BankCoord(flat)
			if rank < 0 || rank >= ranks || group < 0 || group >= groups || bank < 0 || bank >= p.Banks {
				t.Fatalf("%+v: BankCoord(%d) = (%d,%d,%d) out of range", p, flat, rank, group, bank)
			}
			back := p.FlatBank(rank, group, bank)
			if back != flat {
				t.Fatalf("%+v: FlatBank(BankCoord(%d)) = %d", p, flat, back)
			}
			if seen[back] {
				t.Fatalf("%+v: flat index %d produced twice", p, back)
			}
			seen[back] = true
		}
	}
}

// TestBankCoordPinned pins literal coordinates of the full-DIMM layout so
// a reordering of the decomposition (bank-major vs rank-major) cannot
// slip through the round-trip test.
func TestBankCoordPinned(t *testing.T) {
	p := FullDIMMParams() // 1 rank × 8 groups × 4 banks
	cases := []struct {
		flat              int
		rank, group, bank int
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 1},
		{4, 0, 1, 0},
		{17, 0, 4, 1},
		{31, 0, 7, 3},
	}
	for _, tc := range cases {
		rank, group, bank := p.BankCoord(tc.flat)
		if rank != tc.rank || group != tc.group || bank != tc.bank {
			t.Errorf("BankCoord(%d) = (%d,%d,%d), want (%d,%d,%d)",
				tc.flat, rank, group, bank, tc.rank, tc.group, tc.bank)
		}
	}
}

// TestSparseResolution pins which configurations the StateAuto threshold
// sends to the sparse representation, and that explicit modes override it.
func TestSparseResolution(t *testing.T) {
	if ScaledParams().Sparse() {
		t.Error("ScaledParams must stay dense under Auto")
	}
	if !FullDIMMParams().Sparse() {
		t.Error("FullDIMMParams must be sparse under Auto")
	}
	if !PaperParams().Sparse() {
		t.Error("PaperParams (2^21 rows) must be sparse under Auto")
	}
	p := ScaledParams()
	p.State = StateSparse
	if !p.Sparse() {
		t.Error("StateSparse override ignored")
	}
	p = FullDIMMParams()
	p.State = StateDense
	if p.Sparse() {
		t.Error("StateDense override ignored")
	}
}

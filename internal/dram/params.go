// Package dram models a DDR4 DRAM device at the granularity relevant for
// Row-Hammer studies: banks, rows, refresh windows and intervals, a
// per-row disturbance counter (charge loss caused by neighbor activations),
// and the act_n "activate neighbors" maintenance command used by
// memory-controller-level mitigations.
//
// The model is trace-level, not cell-level: a victim row flips bits when
// the combined activations of its two physical neighbors since the victim
// was last refreshed (or activated itself) reach the flip threshold, the
// experimentally established 139 K of Kim et al. [12] used by the paper.
package dram

import "fmt"

// Params describes the simulated device. The zero value is not usable;
// start from PaperParams or ScaledParams and adjust.
type Params struct {
	// Banks is the number of independently attackable banks (across all
	// channels and ranks).
	Banks int
	// RowsPerBank is the number of rows in each bank.
	RowsPerBank int
	// RefInt is the number of refresh intervals in one refresh window
	// (tREFW / tREFI; 64 ms / 7.8 µs = 8192 for DDR4).
	RefInt int
	// FlipThreshold is the combined neighbor-activation count at which a
	// victim row flips bits (139 K in the paper).
	FlipThreshold uint32

	// Timing, used by the controller model and for cycle budgets.
	TRCNs        float64 // activate-to-activate, same bank (45 ns)
	TRefIntNs    float64 // refresh interval tREFI (7800 ns)
	TRFCNs       float64 // refresh command duration (350 ns)
	IOFreqGHz    float64 // DDR4 interface frequency (1.2 GHz)
	RowBytes     int     // bytes per row (8 KB)
	MaxActsPerRI int     // max activations per bank per refresh interval (165)
}

// PaperParams returns the full Table I configuration: 1 GB banks of 8 KB
// rows (131072 rows), 8192 refresh intervals per 64 ms window.
func PaperParams() Params {
	return Params{
		Banks:         16,
		RowsPerBank:   131072,
		RefInt:        8192,
		FlipThreshold: 139000,
		TRCNs:         45,
		TRefIntNs:     7800,
		TRFCNs:        350,
		IOFreqGHz:     1.2,
		RowBytes:      8192,
		MaxActsPerRI:  165,
	}
}

// ScaledParams returns a reduced configuration for fast tests and default
// simulator runs: the same refresh structure (16 rows per interval) with
// fewer rows, banks, and intervals per window. The flip threshold scales
// with the per-window activation budget so the attack remains exactly as
// feasible as at paper scale (threshold / max-acts-per-window ≈ 0.1 in
// both). All reported rates (overhead %, FPR %) are scale-invariant.
func ScaledParams() Params {
	p := PaperParams()
	p.Banks = 4
	p.RowsPerBank = 16384
	p.RefInt = 1024 // 16 rows per interval, as in the paper
	// The threshold cannot scale purely with the window budget: a
	// probabilistic mitigation's miss probability depends on the number
	// of Bernoulli trials before the threshold, and fewer intervals per
	// window would overstate every technique's tail risk. 40960 keeps the
	// protection hazard integral (rate * Pbase * intervals^2 / 2) at the
	// paper's value of ≈7-12 while remaining well below the per-window
	// activation budget, so unmitigated attacks still flip.
	p.FlipThreshold = 40960
	return p
}

// Validate reports structural problems with the parameters.
func (p Params) Validate() error {
	switch {
	case p.Banks <= 0:
		return fmt.Errorf("dram: Banks = %d, must be positive", p.Banks)
	case p.RowsPerBank <= 1:
		return fmt.Errorf("dram: RowsPerBank = %d, must be at least 2", p.RowsPerBank)
	case p.RefInt <= 0:
		return fmt.Errorf("dram: RefInt = %d, must be positive", p.RefInt)
	case p.RowsPerBank%p.RefInt != 0:
		return fmt.Errorf("dram: RowsPerBank (%d) must be a multiple of RefInt (%d)",
			p.RowsPerBank, p.RefInt)
	case p.FlipThreshold == 0:
		return fmt.Errorf("dram: FlipThreshold must be positive")
	}
	return nil
}

// RowsPerInterval returns how many rows each refresh interval refreshes
// (RowsPI in the paper).
func (p Params) RowsPerInterval() int { return p.RowsPerBank / p.RefInt }

// RefreshIntervalOf returns fr, the in-window refresh interval in which row
// r is refreshed under the paper's neighboring-addresses assumption
// (fr = r / RowsPI). Mitigations use this even when the device actually
// refreshes in a different order; that mismatch is exactly what the
// refresh-policy experiment of Section IV studies.
func (p Params) RefreshIntervalOf(row int) int { return row / p.RowsPerInterval() }

// ActCycleBudget returns how many mitigation clock cycles fit between two
// activations of the same bank (tRC at the interface frequency); 54 for the
// paper's DDR4 parameters.
func (p Params) ActCycleBudget() int { return int(p.TRCNs * p.IOFreqGHz) }

// RefCycleBudget returns how many mitigation clock cycles fit within a
// refresh command (tRFC at the interface frequency); 420 for the paper's
// DDR4 parameters.
func (p Params) RefCycleBudget() int { return int(p.TRFCNs * p.IOFreqGHz) }

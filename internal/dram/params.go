// Package dram models a DDR4 DRAM device at the granularity relevant for
// Row-Hammer studies: banks, rows, refresh windows and intervals, a
// per-row disturbance counter (charge loss caused by neighbor activations),
// and the act_n "activate neighbors" maintenance command used by
// memory-controller-level mitigations.
//
// The model is trace-level, not cell-level: a victim row flips bits when
// the combined activations of its two physical neighbors since the victim
// was last refreshed (or activated itself) reach the flip threshold, the
// experimentally established 139 K of Kim et al. [12] used by the paper.
package dram

import "fmt"

// Params describes the simulated device. The zero value is not usable;
// start from PaperParams, ScaledParams or FullDIMMParams and adjust.
type Params struct {
	// Banks is the number of independently attackable banks. When Ranks
	// or BankGroups are set, Banks is the bank count per bank group and
	// the total population is Ranks × BankGroups × Banks (TotalBanks);
	// when both are zero — every pre-geometry configuration — Banks is
	// the total, exactly as before.
	Banks int
	// Ranks is the number of ranks on the DIMM (0 means 1: a flat
	// single-rank device, the legacy interpretation of Banks).
	Ranks int `json:",omitempty"`
	// BankGroups is the number of bank groups per rank (0 means 1).
	// DDR4 organizes banks into groups of four; the full-DIMM geometry
	// is 1 rank × 8 groups × 4 banks.
	BankGroups int `json:",omitempty"`
	// RowsPerBank is the number of rows in each bank.
	RowsPerBank int
	// State selects the per-row state representation (StateAuto picks
	// dense for small populations, lazily-paged sparse for large ones).
	State StateMode `json:",omitempty"`
	// RefInt is the number of refresh intervals in one refresh window
	// (tREFW / tREFI; 64 ms / 7.8 µs = 8192 for DDR4).
	RefInt int
	// FlipThreshold is the combined neighbor-activation count at which a
	// victim row flips bits (139 K in the paper).
	FlipThreshold uint32

	// Timing, used by the controller model and for cycle budgets.
	TRCNs        float64 // activate-to-activate, same bank (45 ns)
	TRefIntNs    float64 // refresh interval tREFI (7800 ns)
	TRFCNs       float64 // refresh command duration (350 ns)
	IOFreqGHz    float64 // DDR4 interface frequency (1.2 GHz)
	RowBytes     int     // bytes per row (8 KB)
	MaxActsPerRI int     // max activations per bank per refresh interval (165)
}

// StateMode selects the device's per-row state representation: the dense
// preallocated arrays of the original simulator, or lazily-paged sparse
// stores whose heap is O(touched rows) instead of O(population).
type StateMode int8

const (
	// StateAuto picks dense below sparseAutoRows total rows and sparse at
	// or above it — small devices keep the flat fast path, full-DIMM
	// populations pay only for the rows they touch.
	StateAuto StateMode = iota
	// StateDense forces the flat preallocated arrays.
	StateDense
	// StateSparse forces the lazily-paged stores.
	StateSparse
)

// sparseAutoRows is the StateAuto threshold: a device whose total row
// population (TotalBanks × RowsPerBank) reaches it uses sparse state.
// 2^21 rows keeps the scaled test geometry (65536 rows) dense and makes
// every full-DIMM geometry (≥ 2M rows) sparse.
const sparseAutoRows = 1 << 21

// String implements fmt.Stringer.
func (m StateMode) String() string {
	switch m {
	case StateAuto:
		return "auto"
	case StateDense:
		return "dense"
	case StateSparse:
		return "sparse"
	default:
		return fmt.Sprintf("StateMode(%d)", int(m))
	}
}

// TotalBanks returns the independently attackable bank population:
// Ranks × BankGroups × Banks, with zero geometry fields reading as 1 so
// legacy configurations (Banks alone) keep their meaning.
func (p Params) TotalBanks() int {
	n := p.Banks
	if p.Ranks > 1 {
		n *= p.Ranks
	}
	if p.BankGroups > 1 {
		n *= p.BankGroups
	}
	return n
}

// TotalRows returns the device's whole row population across banks.
func (p Params) TotalRows() int { return p.TotalBanks() * p.RowsPerBank }

// Sparse reports whether the parameters select the lazily-paged state
// representation (explicitly, or via the StateAuto population threshold).
func (p Params) Sparse() bool {
	switch p.State {
	case StateDense:
		return false
	case StateSparse:
		return true
	default:
		return p.TotalRows() >= sparseAutoRows
	}
}

// PaperParams returns the full Table I configuration: 1 GB banks of 8 KB
// rows (131072 rows), 8192 refresh intervals per 64 ms window.
func PaperParams() Params {
	return Params{
		Banks:         16,
		RowsPerBank:   131072,
		RefInt:        8192,
		FlipThreshold: 139000,
		TRCNs:         45,
		TRefIntNs:     7800,
		TRFCNs:        350,
		IOFreqGHz:     1.2,
		RowBytes:      8192,
		MaxActsPerRI:  165,
	}
}

// ScaledParams returns a reduced configuration for fast tests and default
// simulator runs: the same refresh structure (16 rows per interval) with
// fewer rows, banks, and intervals per window. The flip threshold scales
// with the per-window activation budget so the attack remains exactly as
// feasible as at paper scale (threshold / max-acts-per-window ≈ 0.1 in
// both). All reported rates (overhead %, FPR %) are scale-invariant.
func ScaledParams() Params {
	p := PaperParams()
	p.Banks = 4
	p.RowsPerBank = 16384
	p.RefInt = 1024 // 16 rows per interval, as in the paper
	// The threshold cannot scale purely with the window budget: a
	// probabilistic mitigation's miss probability depends on the number
	// of Bernoulli trials before the threshold, and fewer intervals per
	// window would overstate every technique's tail risk. 40960 keeps the
	// protection hazard integral (rate * Pbase * intervals^2 / 2) at the
	// paper's value of ≈7-12 while remaining well below the per-window
	// activation budget, so unmitigated attacks still flip.
	p.FlipThreshold = 40960
	return p
}

// FullDIMMParams returns a realistic whole-DIMM population: 1 rank of 8
// DDR4 bank groups × 4 banks, each bank 64K rows — 32 banks and 2M rows,
// the scale BlockHammer/Graphene-class evaluations size their trackers
// against. The refresh structure and thresholds match ScaledParams (the
// scale-invariant calibration), so per-rate results remain comparable;
// only the population grows. StateAuto resolves to the sparse
// representation at this scale, so heap stays O(touched rows).
func FullDIMMParams() Params {
	p := ScaledParams()
	p.Ranks = 1
	p.BankGroups = 8
	p.Banks = 4
	p.RowsPerBank = 65536
	p.RefInt = 8192 // 8 rows per interval
	return p
}

// maxTotalBanks bounds the bank population a single simulation will
// instantiate (one lane, device and mitigation instance per bank).
const maxTotalBanks = 1 << 16

// Validate reports structural problems with the parameters.
func (p Params) Validate() error {
	switch {
	case p.Banks <= 0:
		return fmt.Errorf("dram: Banks = %d, must be positive", p.Banks)
	case p.Ranks < 0:
		return fmt.Errorf("dram: Ranks = %d, must be non-negative (0 means 1)", p.Ranks)
	case p.BankGroups < 0:
		return fmt.Errorf("dram: BankGroups = %d, must be non-negative (0 means 1)", p.BankGroups)
	case p.TotalBanks() > maxTotalBanks:
		return fmt.Errorf("dram: %d total banks (ranks %d × bank groups %d × banks %d) exceeds the %d-bank cap",
			p.TotalBanks(), p.Ranks, p.BankGroups, p.Banks, maxTotalBanks)
	case p.State < StateAuto || p.State > StateSparse:
		return fmt.Errorf("dram: unknown state mode %d", int(p.State))
	case p.RowsPerBank <= 1:
		return fmt.Errorf("dram: RowsPerBank = %d, must be at least 2", p.RowsPerBank)
	case p.RefInt <= 0:
		return fmt.Errorf("dram: RefInt = %d, must be positive", p.RefInt)
	case p.RowsPerBank%p.RefInt != 0:
		return fmt.Errorf("dram: RowsPerBank (%d) must be a multiple of RefInt (%d)",
			p.RowsPerBank, p.RefInt)
	case p.FlipThreshold == 0:
		return fmt.Errorf("dram: FlipThreshold must be positive")
	}
	return nil
}

// BankCoord decomposes a flat bank index in [0, TotalBanks) into its
// (rank, bank group, bank) coordinate, rank-major — the inverse of
// FlatBank. Mitigation state and lanes are instantiated per flat bank;
// the coordinate view exists for reports and address-mapping checks.
func (p Params) BankCoord(flat int) (rank, group, bank int) {
	bg := p.BankGroups
	if bg < 1 {
		bg = 1
	}
	bank = flat % p.Banks
	flat /= p.Banks
	group = flat % bg
	rank = flat / bg
	return rank, group, bank
}

// FlatBank composes a (rank, bank group, bank) coordinate into the flat
// bank index lanes and mitigation tables are keyed by.
func (p Params) FlatBank(rank, group, bank int) int {
	bg := p.BankGroups
	if bg < 1 {
		bg = 1
	}
	return (rank*bg+group)*p.Banks + bank
}

// RowsPerInterval returns how many rows each refresh interval refreshes
// (RowsPI in the paper).
func (p Params) RowsPerInterval() int { return p.RowsPerBank / p.RefInt }

// RefreshIntervalOf returns fr, the in-window refresh interval in which row
// r is refreshed under the paper's neighboring-addresses assumption
// (fr = r / RowsPI). Mitigations use this even when the device actually
// refreshes in a different order; that mismatch is exactly what the
// refresh-policy experiment of Section IV studies.
func (p Params) RefreshIntervalOf(row int) int { return row / p.RowsPerInterval() }

// ActCycleBudget returns how many mitigation clock cycles fit between two
// activations of the same bank (tRC at the interface frequency); 54 for the
// paper's DDR4 parameters.
func (p Params) ActCycleBudget() int { return int(p.TRCNs * p.IOFreqGHz) }

// RefCycleBudget returns how many mitigation clock cycles fit within a
// refresh command (tRFC at the interface frequency); 420 for the paper's
// DDR4 parameters.
func (p Params) RefCycleBudget() int { return int(p.TRFCNs * p.IOFreqGHz) }

package dram

import "testing"

func policies(p Params) []RefreshPolicy {
	return []RefreshPolicy{
		NewNeighborPolicy(p),
		NewRemappedPolicy(p, 8, 1),
		NewRandomPolicy(p, 1),
		NewMaskedCounterPolicy(p, 0b101),
	}
}

func TestAllPoliciesPartitionWindow(t *testing.T) {
	p := testParams()
	for _, pol := range policies(p) {
		for window := 0; window < 3; window++ {
			if err := PolicyPartitions(p, pol, window); err != nil {
				t.Errorf("%v", err)
			}
		}
	}
}

func TestNeighborPolicyIsContiguous(t *testing.T) {
	p := testParams()
	pol := NewNeighborPolicy(p)
	rows := pol.RowsFor(0, 3)
	for i, r := range rows {
		if r != 3*p.RowsPerInterval()+i {
			t.Fatalf("interval 3 rows = %v", rows)
		}
	}
}

func TestRemappedPolicyDiffersButPartitions(t *testing.T) {
	p := testParams()
	base := NewNeighborPolicy(p)
	rem := NewRemappedPolicy(p, 16, 42)
	diff := 0
	for i := 0; i < p.RefInt; i++ {
		b := append([]int(nil), base.RowsFor(0, i)...)
		r := rem.RowsFor(0, i)
		for j := range b {
			if b[j] != r[j] {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("remapped policy identical to neighbor policy")
	}
}

func TestRandomPolicyChangesAcrossWindows(t *testing.T) {
	p := testParams()
	pol := NewRandomPolicy(p, 7)
	w0 := append([]int(nil), pol.RowsFor(0, 0)...)
	w1 := pol.RowsFor(1, 0)
	same := true
	for i := range w0 {
		if w0[i] != w1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("random policy repeated the permutation across windows")
	}
}

func TestRandomPolicyDeterministicInSeed(t *testing.T) {
	p := testParams()
	a := NewRandomPolicy(p, 9)
	b := NewRandomPolicy(p, 9)
	ra := a.RowsFor(5, 10)
	rb := b.RowsFor(5, 10)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("same seed produced different refresh order")
		}
	}
}

func TestMaskedCounterPolicyXORs(t *testing.T) {
	p := testParams()
	pol := NewMaskedCounterPolicy(p, 1)
	// With mask 1, interval 0 refreshes block 1 and interval 1 block 0.
	r0 := append([]int(nil), pol.RowsFor(0, 0)...)
	if r0[0] != p.RowsPerInterval() {
		t.Fatalf("interval 0 starts at %d, want %d", r0[0], p.RowsPerInterval())
	}
	r1 := pol.RowsFor(0, 1)
	if r1[0] != 0 {
		t.Fatalf("interval 1 starts at %d, want 0", r1[0])
	}
}

func TestMaskedCounterPolicyMaskWraps(t *testing.T) {
	p := testParams()
	// A mask larger than RefInt must be reduced, not break the partition.
	pol := NewMaskedCounterPolicy(p, p.RefInt*3+5)
	if err := PolicyPartitions(p, pol, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyNames(t *testing.T) {
	p := testParams()
	want := map[string]bool{
		"neighbors": true, "neighbors-remapped": true,
		"random": true, "counter+mask": true,
	}
	for _, pol := range policies(p) {
		if !want[pol.Name()] {
			t.Errorf("unexpected policy name %q", pol.Name())
		}
	}
}

func TestPolicyPartitionsDetectsViolations(t *testing.T) {
	p := testParams()
	if err := PolicyPartitions(p, brokenPolicy{p}, 0); err == nil {
		t.Fatal("broken policy accepted")
	}
}

// brokenPolicy refreshes row 0 every interval.
type brokenPolicy struct{ p Params }

func (b brokenPolicy) Name() string { return "broken" }
func (b brokenPolicy) RowsFor(_, _ int) []int {
	rows := make([]int, b.p.RowsPerInterval())
	return rows
}

package memctrl

import (
	"testing"

	"tivapromi/internal/addr"
	"tivapromi/internal/dram"
	"tivapromi/internal/mitigation"
	"tivapromi/internal/mitigation/cra"
	"tivapromi/internal/workload"
)

func testParams() dram.Params {
	p := dram.ScaledParams()
	p.Banks = 2
	p.RowsPerBank = 4096
	p.RefInt = 256
	return p
}

func newCtl(t *testing.T, mit mitigation.Mitigator) *Controller {
	t.Helper()
	dev, err := dram.New(testParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(DefaultConfig(), dev, mit)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	dev, _ := dram.New(testParams(), nil)
	for _, cfg := range []Config{
		{RowHitNs: 0, RowMissNs: 45, PendingCap: 8},
		{RowHitNs: 15, RowMissNs: 0, PendingCap: 8},
		{RowHitNs: 15, RowMissNs: 45, PendingCap: 0},
	} {
		if _, err := New(cfg, dev, nil); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestRowBufferHitsAndMisses(t *testing.T) {
	c := newCtl(t, nil)
	c.AccessRow(0, 100, false) // miss (cold)
	c.AccessRow(0, 100, false) // hit
	c.AccessRow(0, 100, true)  // hit
	c.AccessRow(0, 200, false) // miss (conflict)
	c.AccessRow(1, 100, false) // miss (other bank cold)
	s := c.Stats()
	if s.RowMisses != 3 || s.RowHits != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/3", s.RowHits, s.RowMisses)
	}
	// Only misses activate.
	if got := c.Device().Stats().Activates; got != 3 {
		t.Fatalf("device activations = %d, want 3", got)
	}
	if c.OpenRow(0) != 200 || c.OpenRow(1) != 100 {
		t.Fatalf("open rows = %d/%d", c.OpenRow(0), c.OpenRow(1))
	}
}

func TestTimeAdvancesAndRefreshFires(t *testing.T) {
	c := newCtl(t, nil)
	p := testParams()
	// Row misses cost 45 ns; one refresh interval is 7800 ns, so the
	// first boundary fires during the 174th access.
	for i := 0; i < 200; i++ {
		c.AccessRow(0, i%2*100, false) // alternate rows: all misses
	}
	if c.Device().Interval() == 0 {
		t.Fatal("no refresh interval fired in 9 µs of traffic")
	}
	if c.TimeNs() < 200*45 {
		t.Fatal("clock did not advance by the service times")
	}
	_ = p
}

func TestRefreshClosesRows(t *testing.T) {
	c := newCtl(t, nil)
	c.AccessRow(0, 100, false)
	if c.OpenRow(0) != 100 {
		t.Fatal("setup failed")
	}
	// Push time across the boundary with row hits.
	for c.Device().Interval() == 0 {
		c.AccessRow(0, 100, false)
	}
	if c.OpenRow(0) != -1 {
		t.Fatal("refresh left a row open")
	}
}

func TestMitigationSeesActivationsNotHits(t *testing.T) {
	rec := &recorder{}
	c := newCtl(t, rec)
	c.AccessRow(0, 100, false)
	c.AccessRow(0, 100, false)
	c.AccessRow(0, 101, false)
	if rec.acts != 2 {
		t.Fatalf("mitigation observed %d acts, want 2 (row hits invisible)", rec.acts)
	}
}

func TestMitigationCommandsExecute(t *testing.T) {
	// CRA with threshold 10: the 10th activation of a row issues act_n.
	mit := cra.New(2, 4096, 10)
	c := newCtl(t, mit)
	for i := 0; i < 10; i++ {
		c.AccessRow(0, 100, false)
		c.AccessRow(0, 200, false) // force row conflicts
	}
	s := c.Stats()
	if s.ActN != 2 {
		t.Fatalf("ActN commands = %d, want 2 (both hammered rows)", s.ActN)
	}
	d := c.Device().Stats()
	if d.NeighborActs != 4 {
		t.Fatalf("neighbor activations = %d, want 4", d.NeighborActs)
	}
	if c.ExtraActivations() != 4 {
		t.Fatalf("ExtraActivations = %d", c.ExtraActivations())
	}
	// act_n precharges the bank.
	if c.OpenRow(0) != -1 {
		t.Fatal("maintenance command left row open")
	}
}

func TestRefreshIntervalCallsMitigation(t *testing.T) {
	rec := &recorder{}
	c := newCtl(t, rec)
	for c.Device().Interval() < 3 {
		c.AccessRow(0, 0, false)
	}
	if rec.refs != 3 {
		t.Fatalf("mitigation observed %d refresh intervals, want 3", rec.refs)
	}
}

func TestNewWindowNotification(t *testing.T) {
	rec := &recorder{}
	c := newCtl(t, rec)
	p := testParams()
	c.RunIntervals(p.RefInt+1, func() (int, int, bool) { return 0, 0, false })
	if rec.windows != 1 {
		t.Fatalf("windows = %d, want 1", rec.windows)
	}
}

func TestPendingBufferOverflowStalls(t *testing.T) {
	// A mitigation that floods commands: the buffer must not drop any.
	flood := &flooder{n: 20}
	dev, _ := dram.New(testParams(), nil)
	cfg := DefaultConfig()
	cfg.PendingCap = 4
	c, err := New(cfg, dev, flood)
	if err != nil {
		t.Fatal(err)
	}
	c.AccessRow(0, 100, false)
	s := c.Stats()
	if s.Overflows == 0 {
		t.Fatal("no overflow recorded")
	}
	if s.ActN != 20 {
		t.Fatalf("executed %d commands, want all 20", s.ActN)
	}
	if s.PendingPeak != 4 {
		t.Fatalf("pending peak = %d, want cap 4", s.PendingPeak)
	}
}

func TestAccessAddrDecodes(t *testing.T) {
	g := addr.Geometry{Channels: 1, Ranks: 1, Banks: 2, Rows: 4096, Cols: 128, BusBytes: 64}
	m, err := addr.NewMapper(g, addr.RowBankCol)
	if err != nil {
		t.Fatal(err)
	}
	c := newCtl(t, nil)
	pa := m.RowAddress(1, 300)
	c.AccessAddr(m, pa, false)
	if c.OpenRow(1) != 300 {
		t.Fatalf("decoded access opened row %d in bank 1", c.OpenRow(1))
	}
}

func TestAttackWithoutMitigationFlips(t *testing.T) {
	p := testParams()
	p.FlipThreshold = 2000 // keep the test fast
	dev, _ := dram.New(p, nil)
	c, _ := New(DefaultConfig(), dev, nil)
	att, err := workload.NewAttacker(workload.AttackerConfig{
		TargetBanks: []int{0}, RowsPerBank: p.RowsPerBank,
		MinAggressors: 2, MaxAggressors: 2, PlannedAccesses: 1 << 40, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		a := att.Next()
		c.AccessRow(a.Bank, a.Row, a.Write)
	}
	if len(dev.Flips()) == 0 {
		t.Fatal("unmitigated hammering produced no flips")
	}
}

func TestAttackWithCRADoesNotFlip(t *testing.T) {
	p := testParams()
	p.FlipThreshold = 2000
	dev, _ := dram.New(p, nil)
	c, _ := New(DefaultConfig(), dev, cra.New(p.Banks, p.RowsPerBank, 500))
	att, err := workload.NewAttacker(workload.AttackerConfig{
		TargetBanks: []int{0}, RowsPerBank: p.RowsPerBank,
		MinAggressors: 2, MaxAggressors: 2, PlannedAccesses: 1 << 40, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		a := att.Next()
		c.AccessRow(a.Bank, a.Row, a.Write)
	}
	if len(dev.Flips()) != 0 {
		t.Fatalf("CRA-protected system flipped %d rows", len(dev.Flips()))
	}
}

func TestClosedPagePolicy(t *testing.T) {
	dev, _ := dram.New(testParams(), nil)
	cfg := DefaultConfig()
	cfg.ClosedPage = true
	c, err := New(cfg, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Repeated accesses to one row: under closed page, every access is an
	// activation — a single hammered address suffices for an attack.
	for i := 0; i < 10; i++ {
		c.AccessRow(0, 100, false)
	}
	if got := dev.Stats().Activates; got != 10 {
		t.Fatalf("closed page produced %d activations from 10 accesses", got)
	}
	if c.Stats().RowHits != 0 {
		t.Fatal("closed page recorded row hits")
	}
}

// recorder is a Mitigator that counts callbacks.
type recorder struct {
	acts, refs, windows int
}

func (r *recorder) Name() string { return "recorder" }
func (r *recorder) OnActivate(_, _, _ int, cmds []mitigation.Command) []mitigation.Command {
	r.acts++
	return cmds
}
func (r *recorder) OnRefreshInterval(_ int, cmds []mitigation.Command) []mitigation.Command {
	r.refs++
	return cmds
}
func (r *recorder) OnNewWindow()           { r.windows++ }
func (r *recorder) Reset()                 { *r = recorder{} }
func (r *recorder) TableBytesPerBank() int { return 0 }

// flooder emits n ActN commands on every activation.
type flooder struct{ n int }

func (f *flooder) Name() string { return "flooder" }
func (f *flooder) OnActivate(bank, row, _ int, cmds []mitigation.Command) []mitigation.Command {
	for i := 0; i < f.n; i++ {
		cmds = append(cmds, mitigation.Command{Kind: mitigation.ActN, Bank: bank, Row: row})
	}
	return cmds
}
func (f *flooder) OnRefreshInterval(_ int, cmds []mitigation.Command) []mitigation.Command {
	return cmds
}
func (f *flooder) OnNewWindow()           {}
func (f *flooder) Reset()                 {}
func (f *flooder) TableBytesPerBank() int { return 0 }

package memctrl

import (
	"testing"

	"tivapromi/internal/dram"
	"tivapromi/internal/mitigation"
	"tivapromi/internal/mitigation/cra"
	"tivapromi/internal/workload"
)

func newSched(t *testing.T, mit mitigation.Mitigator) (*Scheduler, *dram.Device) {
	t.Helper()
	dev, err := dram.New(testParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(DDR42400(), dev, mit, 16)
	if err != nil {
		t.Fatal(err)
	}
	return s, dev
}

func TestTimingValidate(t *testing.T) {
	if err := DDR42400().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DDR42400()
	bad.TRC = bad.TRAS - 1
	if bad.Validate() == nil {
		t.Fatal("tRC < tRAS accepted")
	}
	bad = DDR42400()
	bad.TREF = bad.TRFC
	if bad.Validate() == nil {
		t.Fatal("tREFI <= tRFC accepted")
	}
	bad = DDR42400()
	bad.TRCD = 0
	if bad.Validate() == nil {
		t.Fatal("zero timing accepted")
	}
}

func TestSingleRequestTiming(t *testing.T) {
	s, dev := newSched(t, nil)
	s.Enqueue(0, 100, false)
	if err := s.Drain(10_000); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Served != 1 || st.RowMisses != 1 || st.RowHits() != 0 {
		t.Fatalf("stats %+v", st)
	}
	// Cold request: ACT at cycle 1-ish, column at +tRCD. Latency ≈ tRCD+1.
	if st.LatencyMax < int64(DDR42400().TRCD) || st.LatencyMax > int64(DDR42400().TRCD)+4 {
		t.Fatalf("latency %d, want ≈tRCD (%d)", st.LatencyMax, DDR42400().TRCD)
	}
	if dev.Stats().Activates != 1 {
		t.Fatal("device missed the activation")
	}
}

func TestRowHitsAreCheaper(t *testing.T) {
	s, _ := newSched(t, nil)
	// Same row back to back: one ACT, three column commands.
	for i := 0; i < 3; i++ {
		s.Enqueue(0, 100, false)
	}
	if err := s.Drain(10_000); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.RowMisses != 1 || st.RowHits() != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.RowHits(), st.RowMisses)
	}
}

func TestRowConflictPrecharges(t *testing.T) {
	s, _ := newSched(t, nil)
	s.Enqueue(0, 100, false)
	s.Enqueue(0, 200, false)
	if err := s.Drain(10_000); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.RowMisses != 2 {
		t.Fatalf("misses = %d, want 2 (conflict forced a PRE+ACT)", st.RowMisses)
	}
	// The second request had to wait out tRAS + tRP + tRCD at least.
	min := int64(DDR42400().TRAS + DDR42400().TRP + DDR42400().TRCD)
	if st.LatencyMax < min {
		t.Fatalf("conflict latency %d < structural minimum %d", st.LatencyMax, min)
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	s, _ := newSched(t, nil)
	// Open row 100, then queue a conflicting request followed by a row
	// hit: the hit must be served first (FR-FCFS reordering).
	s.Enqueue(0, 100, false)
	if err := s.Drain(10_000); err != nil {
		t.Fatal(err)
	}
	s.Enqueue(0, 200, false) // conflict (older)
	s.Enqueue(0, 100, false) // row hit (younger)
	for s.QueueLen() == 2 {
		s.Tick()
	}
	// The first serve must have been the younger row hit, leaving the
	// conflicting request at the queue head.
	if s.QueueLen() != 1 || s.queue[0].Row != 200 {
		t.Fatal("FR-FCFS did not reorder the row hit ahead of the conflict")
	}
	if err := s.Drain(100_000); err != nil {
		t.Fatal(err)
	}
}

func TestTFAWLimitsActivationBursts(t *testing.T) {
	s, _ := newSched(t, nil)
	// Five ACTs to five banks... testParams has 2 banks; alternate rows
	// in both banks to force many ACTs and verify the stall counter and
	// window pacing engage under an ACT-heavy pattern.
	for i := 0; i < 8; i++ {
		s.Enqueue(i%2, 100+100*i, false)
	}
	if err := s.Drain(100_000); err != nil {
		t.Fatal(err)
	}
	// With tRC 54 per bank and 2 banks, ACT pacing dominates; just
	// verify every request was served and the device agrees.
	if s.Stats().Served != 8 {
		t.Fatalf("served %d of 8", s.Stats().Served)
	}
}

func TestRefreshFiresOnSchedule(t *testing.T) {
	s, dev := newSched(t, nil)
	for dev.Interval() < 3 {
		if s.QueueLen() < 4 {
			s.Enqueue(0, 100, false)
		}
		s.Tick()
	}
	if s.Stats().Refreshes != 3 {
		t.Fatalf("refreshes = %d", s.Stats().Refreshes)
	}
	// Interval spacing equals tREFI.
	if got := s.Cycle(); got < 3*int64(DDR42400().TREF) || got > 3*int64(DDR42400().TREF)+int64(DDR42400().TRFC)+10 {
		t.Fatalf("3 refreshes at cycle %d, want ≈%d", got, 3*DDR42400().TREF)
	}
}

func TestMitigationPathThroughScheduler(t *testing.T) {
	mit := cra.New(2, 4096, 50)
	s, dev := newSched(t, mit)
	// Hammer two alternating rows; CRA triggers every 50 activations per
	// row and its act_n must execute via the maintenance path.
	for i := 0; i < 300; i++ {
		s.Enqueue(0, 100+100*(i&1), false)
		if err := s.Drain(1 << 20); err != nil {
			t.Fatal(err)
		}
	}
	if dev.Stats().NeighborActs == 0 {
		t.Fatal("mitigation commands never executed through the scheduler")
	}
	// Maintenance leaves the bank precharged: next same-row access is a
	// miss, not a hit — verified indirectly by the device disturbance
	// being reset on the victims.
	if dev.Disturbance(0, 99) > 100 {
		t.Fatal("act_n did not restore the victim charge")
	}
}

func TestEnqueueBounds(t *testing.T) {
	s, _ := newSched(t, nil)
	for i := 0; i < 16; i++ {
		if !s.Enqueue(0, i, false) {
			t.Fatal("queue rejected below capacity")
		}
	}
	if s.Enqueue(0, 99, false) {
		t.Fatal("queue accepted beyond capacity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range request accepted")
		}
	}()
	s2, _ := newSched(t, nil)
	s2.Enqueue(0, 1<<30, false)
}

func TestSchedulerMatchesFastPathActivationStats(t *testing.T) {
	// The validation experiment: the same access streams through the
	// cycle-accurate scheduler and the service-time Controller must
	// produce activation statistics of the same order — the fast path's
	// license. The per-seed ratio scatters widely (the FR-FCFS scheduler
	// batches row hits and stretches intervals differently per stream, so
	// single seeds land anywhere in ≈0.6–1.0), so the validation pins the
	// mean over several seeds rather than one lucky draw.
	p := testParams()
	mkStream := func(seed uint64) func() (int, int, bool) {
		gen := workload.SPECMix(p.Banks, p.RowsPerBank, seed)
		return func() (int, int, bool) {
			a := gen.Next()
			return a.Bank, a.Row, a.Write
		}
	}

	var sum float64
	const seeds = 6
	for seed := uint64(1); seed <= seeds; seed++ {
		devFast, _ := dram.New(p, nil)
		fast, err := New(DefaultConfig(), devFast, nil)
		if err != nil {
			t.Fatal(err)
		}
		fast.RunIntervals(64, mkStream(seed))

		devCyc, _ := dram.New(p, nil)
		cyc, err := NewScheduler(DDR42400(), devCyc, nil, 16)
		if err != nil {
			t.Fatal(err)
		}
		cyc.RunIntervals(64, mkStream(seed))

		fa := devFast.Stats().AvgActsPerInterval()
		ca := devCyc.Stats().AvgActsPerInterval()
		if fa == 0 || ca == 0 {
			t.Fatal("no activations")
		}
		sum += fa / ca
	}
	mean := sum / seeds
	if mean < 0.65 || mean > 1.35 {
		t.Fatalf("fast path vs cycle-accurate mean activation ratio %.2f over %d seeds, want [0.65, 1.35]", mean, seeds)
	}
}

func TestBankGroupSpacing(t *testing.T) {
	// ACTs within one bank group must be spaced by tRRD_L; across groups
	// the shorter tRRD_S applies. Measure the ACT issue gap for the two
	// cases directly. Banks 0 and 4 share a group (4 groups); banks 0
	// and 1 do not.
	gapFor := func(b2 int) int64 {
		p := testParams()
		p.Banks = 8
		dev, err := dram.New(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewScheduler(DDR42400(), dev, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		s.Enqueue(0, 100, false)
		s.Enqueue(b2, 100, false)
		var first, second int64
		for second == 0 {
			before := s.Stats().RowMisses
			s.Tick()
			if s.Stats().RowMisses > before {
				if first == 0 {
					first = s.Cycle()
				} else {
					second = s.Cycle()
				}
			}
		}
		if err := s.Drain(100_000); err != nil {
			t.Fatal(err)
		}
		return second - first
	}
	tm := DDR42400()
	sameGroup := gapFor(4) // 4 % 4 == 0 % 4
	crossGroup := gapFor(1)
	if sameGroup != int64(tm.TRRD) {
		t.Fatalf("same-group ACT gap %d, want tRRD_L %d", sameGroup, tm.TRRD)
	}
	if crossGroup != int64(tm.TRRDS) {
		t.Fatalf("cross-group ACT gap %d, want tRRD_S %d", crossGroup, tm.TRRDS)
	}
}

package memctrl

import (
	"fmt"

	"tivapromi/internal/dram"
	"tivapromi/internal/mitigation"
	"tivapromi/internal/obs"
)

// AccessesPerInterval derives how many serviced accesses fit in one
// refresh interval under the timing model: the interval length minus the
// refresh stall, divided by the row-miss service time (the dominant cost
// of the calibrated traffic, where most accesses activate). For the
// paper's DDR4 parameters this is (7800−350)/45 = 165 — exactly the
// tREFI/tRC activation ceiling (Params.MaxActsPerRI), which the result is
// additionally clamped to. The lane drivers use this count to place
// refresh boundaries by access index instead of by a global clock, which
// is what makes per-bank simulation independent between boundaries.
func AccessesPerInterval(p dram.Params) int {
	n := int((p.TRefIntNs - p.TRFCNs) / p.TRCNs)
	if p.MaxActsPerRI > 0 && n > p.MaxActsPerRI {
		n = p.MaxActsPerRI
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Lane is the per-bank slice of the memory controller: one bank's row
// buffer, Row-Hammer command queue, and mitigation instance, driven by
// that bank's share of a count-sliced access stream. A Lane owns a
// single-bank dram.Device and a mitigation sized for one bank, so its
// entire state evolves from only the accesses routed to it — the
// structural property that makes bank-sharded simulation deterministic:
// however the global stream is partitioned across goroutines, each lane
// sees the same accesses in the same order with the same boundary
// positions.
//
// Refresh boundaries fire lazily: the driver calls CatchUp(iv) before
// servicing an access belonging to global interval iv, and once more at
// the end of the run, so a lane that goes quiet for a few intervals fires
// its pending boundaries in order before its next access. A Lane is not
// safe for concurrent use; concurrency comes from running disjoint lanes
// on different goroutines.
type Lane struct {
	cfg Config
	dev *dram.Device
	mit mitigation.Mitigator // nil for an unprotected bank

	openRow int32
	fired   int   // refresh-interval boundaries fired so far
	ivInWin int32 // cached dev.IntervalInWindow(): avoids a modulo per activation
	refInt  int32

	pending []mitigation.Command
	delayed []mitigation.Command
	scratch []mitigation.Command
	stats   Stats
	hook    func(mitigation.Command)
	filter  func(mitigation.Command) Disposition
	tick    func()

	// obsAccesses is the value of stats.Accesses at the last sampled
	// metrics flush. The act fast path never touches the (shared,
	// atomic) obs registry; fireRefreshInterval flushes the delta once
	// per ~AccessesPerInterval accesses, keeping the hot loop at plain
	// local increments and the act path at 0 allocs with metrics on.
	obsAccesses uint64
}

// NewLane builds a lane over a single-bank device with the given
// mitigation (nil for none).
func NewLane(cfg Config, dev *dram.Device, mit mitigation.Mitigator) (*Lane, error) {
	if cfg.RowHitNs == 0 || cfg.RowMissNs == 0 || cfg.PendingCap <= 0 {
		return nil, fmt.Errorf("memctrl: invalid config %+v", cfg)
	}
	if b := dev.Params().TotalBanks(); b != 1 {
		return nil, fmt.Errorf("memctrl: lane device has %d banks, want 1", b)
	}
	return &Lane{cfg: cfg, dev: dev, mit: mit, openRow: -1,
		refInt: int32(dev.Params().RefInt)}, nil
}

// Device returns the lane's single-bank device.
func (l *Lane) Device() *dram.Device { return l.dev }

// Stats returns the lane's controller counters.
func (l *Lane) Stats() Stats { return l.stats }

// IntervalsFired returns how many refresh-interval boundaries the lane
// has fired.
func (l *Lane) IntervalsFired() int { return l.fired }

// SetCommandHook installs an observer called for every mitigation command
// the lane executes (false-positive classification).
func (l *Lane) SetCommandHook(fn func(mitigation.Command)) { l.hook = fn }

// SetCommandFilter installs a fault filter consulted for every mitigation
// command before it is buffered; semantics match Controller.
func (l *Lane) SetCommandFilter(fn func(mitigation.Command) Disposition) { l.filter = fn }

// SetAccessTick installs a callback invoked once before every serviced
// access (per-access fault-injector ticks).
func (l *Lane) SetAccessTick(fn func()) { l.tick = fn }

// Access services one read/write to the lane's bank. A row hit leaves the
// device untouched; a row miss activates the row, feeds the mitigation,
// and drains any buffered Row-Hammer commands.
//
// The row-hit case is split out so it inlines into the dispatch loops: a
// hit with no access-tick installed is two compares and two increments,
// no call. Everything else — including hits when a fault injector needs
// its per-access tick — takes the full path.
func (l *Lane) Access(row int32, write bool) {
	if l.openRow == row && l.tick == nil {
		l.stats.Accesses++
		l.stats.RowHits++
		return
	}
	l.accessFull(row, write)
}

func (l *Lane) accessFull(row int32, write bool) {
	_ = write // writes and reads have identical Row-Hammer behavior
	if l.tick != nil {
		l.tick()
	}
	l.stats.Accesses++
	if l.openRow == row {
		l.stats.RowHits++
		return
	}
	l.stats.RowMisses++
	if l.cfg.ClosedPage {
		l.openRow = -1 // auto-precharge
	} else {
		l.openRow = row
	}
	l.dev.Activate(0, int(row))
	if l.mit != nil {
		// Most activations trigger nothing: skip the queue machinery when
		// the mitigation returned no commands, and write the scratch slice
		// back only when it grew (a pointer store here would otherwise put
		// a GC write barrier on every activation).
		cmds := l.mit.OnActivate(0, int(row), int(l.ivInWin), l.scratch[:0])
		if len(cmds) != 0 {
			if cap(cmds) > cap(l.scratch) {
				l.scratch = cmds
			}
			l.enqueue(cmds)
			l.drain()
		}
	}
}

// CatchUp fires refresh-interval boundaries until the lane has fired
// `interval` of them. Drivers call it with the global interval index an
// access belongs to (before servicing it), and with the total interval
// count at the end of a run.
func (l *Lane) CatchUp(interval int) {
	for l.fired < interval {
		l.fireRefreshInterval()
	}
}

func (l *Lane) fireRefreshInterval() {
	// Promote fault-delayed commands first: they execute one interval
	// late, bypassing the filter so a command is delayed at most once.
	if len(l.delayed) > 0 {
		l.pending = append(l.pending, l.delayed...)
		l.delayed = l.delayed[:0]
		l.drain()
	}
	if l.mit != nil {
		l.scratch = l.mit.OnRefreshInterval(int(l.ivInWin), l.scratch[:0])
		l.enqueue(l.scratch)
		l.drain()
	}
	l.dev.AdvanceInterval()
	l.openRow = -1 // refresh precharges the bank
	l.fired++
	l.ivInWin++
	if l.ivInWin == l.refInt {
		l.ivInWin = 0
	}
	if l.mit != nil && l.ivInWin == 0 {
		l.mit.OnNewWindow()
	}
	if obs.MetricsEnabled() {
		l.FlushMetrics()
	}
}

// FlushMetrics pushes the lane's access count delta since the last
// flush into the process-wide registry. Called automatically at every
// refresh-interval boundary (two atomic ops per ~165 accesses) and by
// run teardown so the tail past the final boundary is not lost.
func (l *Lane) FlushMetrics() {
	if d := l.stats.Accesses - l.obsAccesses; d != 0 {
		obs.Accesses.Add(d)
		l.obsAccesses = l.stats.Accesses
	}
}

// enqueue buffers mitigation commands; on overflow the lane stalls and
// executes the command immediately (the wait handshake).
func (l *Lane) enqueue(cmds []mitigation.Command) {
	for _, cmd := range cmds {
		if l.filter != nil {
			switch l.filter(cmd) {
			case Drop:
				l.stats.DroppedCmds++
				continue
			case Delay:
				l.stats.DelayedCmds++
				l.delayed = append(l.delayed, cmd)
				continue
			}
		}
		if len(l.pending) >= l.cfg.PendingCap {
			l.stats.Overflows++
			l.execute(cmd)
			continue
		}
		l.pending = append(l.pending, cmd)
		if len(l.pending) > l.stats.PendingPeak {
			l.stats.PendingPeak = len(l.pending)
		}
	}
}

// drain issues buffered RH commands ("when wait is low").
func (l *Lane) drain() {
	for _, cmd := range l.pending {
		l.execute(cmd)
	}
	l.pending = l.pending[:0]
}

// execute performs one mitigation command on the device. Maintenance
// activations end with the bank precharged, so the next normal access
// reopens its row.
func (l *Lane) execute(cmd mitigation.Command) {
	if l.hook != nil {
		l.hook(cmd)
	}
	switch cmd.Kind {
	case mitigation.ActN:
		l.stats.ActN++
		l.dev.ActivateNeighbors(cmd.Bank, cmd.Row)
	case mitigation.ActNOne:
		l.stats.ActNOne++
		l.dev.ActivateNeighbor(cmd.Bank, cmd.Row, int(cmd.Side))
	case mitigation.RefreshRow:
		l.stats.RefreshRow++
		l.dev.RefreshRow(cmd.Bank, cmd.Row)
	default:
		panic(fmt.Sprintf("memctrl: unknown command kind %v", cmd.Kind))
	}
	l.openRow = -1
}

// ExtraActivations returns the mitigation-issued activations the lane's
// device observed.
func (l *Lane) ExtraActivations() uint64 {
	s := l.dev.Stats()
	return s.NeighborActs + s.DirectRefreshes
}

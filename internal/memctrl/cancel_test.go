package memctrl

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// countingSource fills every slot with the same benign access and counts
// Fill calls so tests can bound how much work ran after cancellation.
type countingSource struct {
	fills atomic.Int64
}

func (s *countingSource) Fill(buf []Access) int {
	s.fills.Add(1)
	for i := range buf {
		buf[i] = Access{Bank: 0, Row: int32(i % 64)}
	}
	return len(buf)
}

func TestRunBatchesCtxCompletesWithLiveContext(t *testing.T) {
	c := newCtl(t, nil)
	src := &countingSource{}
	if err := c.RunBatchesCtx(context.Background(), 3, src, 0); err != nil {
		t.Fatalf("uncanceled run returned %v", err)
	}
	if got := c.Device().Interval(); got != 3 {
		t.Fatalf("advanced %d intervals, want 3", got)
	}
	if src.fills.Load() == 0 {
		t.Fatal("source was never consulted")
	}
}

// TestRunBatchesCtxAlreadyCancelled pins the entry check: a dead context
// stops the run before any batch is pulled.
func TestRunBatchesCtxAlreadyCancelled(t *testing.T) {
	c := newCtl(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := &countingSource{}
	err := c.RunBatchesCtx(ctx, 1000, src, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if src.fills.Load() != 0 {
		t.Fatalf("cancelled run still pulled %d batches", src.fills.Load())
	}
	if c.Device().Interval() != 0 {
		t.Fatalf("cancelled run advanced %d intervals", c.Device().Interval())
	}
}

// TestRunBatchesCtxCancelMidRunStopsPromptly cancels from the source's
// own Fill callback: the run must stop at the next batch boundary — at
// most one more Fill — instead of grinding to the interval target.
func TestRunBatchesCtxCancelMidRunStopsPromptly(t *testing.T) {
	c := newCtl(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	src := &countingSource{}
	trip := &cancellingSource{inner: src, cancel: cancel, after: 2}
	err := c.RunBatchesCtx(ctx, 1<<30, trip, 8)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancel fires during Fill #2; the poll at the top of the next
	// iteration must observe it, so at most one further Fill can land.
	if n := src.fills.Load(); n > 3 {
		t.Fatalf("run kept pulling batches after cancel: %d fills", n)
	}
}

type cancellingSource struct {
	inner  AccessSource
	cancel context.CancelFunc
	after  int
	calls  int
}

func (s *cancellingSource) Fill(buf []Access) int {
	s.calls++
	if s.calls == s.after {
		s.cancel()
	}
	return s.inner.Fill(buf)
}

// TestRunBatchesCtxDeadline runs an effectively unbounded workload under
// a short deadline and requires a prompt DeadlineExceeded return.
func TestRunBatchesCtxDeadline(t *testing.T) {
	c := newCtl(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.RunBatchesCtx(ctx, 1<<30, &countingSource{}, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run overshot its deadline by %v", elapsed)
	}
}

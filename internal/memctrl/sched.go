package memctrl

import (
	"fmt"

	"tivapromi/internal/dram"
	"tivapromi/internal/mitigation"
)

// This file implements the cycle-accurate controller: an FR-FCFS
// scheduler over per-bank state machines with the JEDEC DDR4 core
// timings (tRCD, tRP, CL, tRAS, tRC, tRRD, tFAW) and all-bank refresh.
// The service-time Controller above is the simulator's fast path; the
// Scheduler exists to validate that the fast path's activation statistics
// are faithful (see the package tests and EXPERIMENTS.md) and to study
// request latency, which service times cannot express.

// Timing holds the DDR4 core timings in controller clock cycles.
type Timing struct {
	TRCD int // ACT to column command
	TRP  int // PRE to ACT
	CL   int // column command to data
	TRAS int // ACT to PRE
	TRC  int // ACT to ACT, same bank
	TRRD int // ACT to ACT, same bank group (tRRD_L)
	// TRRDS is ACT to ACT across bank groups (tRRD_S); 0 falls back to
	// TRRD (a device without bank groups).
	TRRDS int
	// BankGroups is the DDR4 bank-group count; 0 or 1 disables grouping.
	BankGroups int
	TFAW       int // rolling four-ACT window
	TREF       int // refresh interval (tREFI)
	TRFC       int // refresh cycle time
}

// DDR42400 returns DDR4-2400-flavored timings at the paper's 1.2 GHz
// controller clock (Table I: tRC 45 ns = 54 cycles, tREFI 7.8 µs,
// tRFC 350 ns).
func DDR42400() Timing {
	return Timing{
		TRCD:       17,
		TRP:        17,
		CL:         17,
		TRAS:       39,
		TRC:        54,
		TRRD:       6,
		TRRDS:      4,
		BankGroups: 4,
		TFAW:       26,
		TREF:       9360,
		TRFC:       420,
	}
}

// Validate reports inconsistent timings.
func (t Timing) Validate() error {
	switch {
	case t.TRCD <= 0 || t.TRP <= 0 || t.CL <= 0 || t.TRAS <= 0 || t.TRC <= 0:
		return fmt.Errorf("memctrl: non-positive core timing in %+v", t)
	case t.TRC < t.TRAS:
		return fmt.Errorf("memctrl: tRC (%d) < tRAS (%d)", t.TRC, t.TRAS)
	case t.TREF <= t.TRFC:
		return fmt.Errorf("memctrl: tREFI (%d) must exceed tRFC (%d)", t.TREF, t.TRFC)
	}
	return nil
}

// Request is one memory request for the scheduler.
type Request struct {
	Bank  int
	Row   int
	Write bool

	arrived int64
}

// SchedStats aggregates scheduler activity.
type SchedStats struct {
	Cycles    int64
	Served    uint64
	RowMisses uint64 // ACT commands issued
	Refreshes uint64
	// Latency accounting in cycles (arrival to column command issue).
	LatencyTotal int64
	LatencyMax   int64
	// FAWStalls counts cycles an ACT was ready but the four-activation
	// window blocked it.
	FAWStalls uint64
}

// AvgLatency returns the mean request latency in cycles.
func (s SchedStats) AvgLatency() float64 {
	if s.Served == 0 {
		return 0
	}
	return float64(s.LatencyTotal) / float64(s.Served)
}

// RowHits returns the served requests that did not need their own ACT
// (each ACT serves exactly one opener).
func (s SchedStats) RowHits() uint64 {
	if s.Served <= s.RowMisses {
		return 0
	}
	return s.Served - s.RowMisses
}

// bankState is one bank's state machine.
type bankState struct {
	openRow   int32 // -1 when precharged
	actReady  int64 // earliest cycle an ACT may issue (tRP/tRC)
	colReady  int64 // earliest cycle a column command may issue (tRCD)
	preReady  int64 // earliest cycle a PRE may issue (tRAS)
	busyUntil int64 // data/maintenance occupancy
}

// Scheduler is a cycle-accurate FR-FCFS DDR4 controller front.
// Not safe for concurrent use.
type Scheduler struct {
	timing Timing
	dev    *dram.Device
	mit    mitigation.Mitigator

	banks    []bankState
	queue    []Request
	queueCap int

	cycle       int64
	nextRef     int64
	actTimes    []int64 // recent ACT issue cycles for the tFAW window
	lastAct     int64   // for tRRD
	lastActBank int     // bank of the last ACT, for bank-group spacing

	pending []mitigation.Command
	scratch []mitigation.Command
	stats   SchedStats
}

// NewScheduler builds a cycle-accurate controller over dev with the given
// mitigation (nil for none) and a bounded request queue.
func NewScheduler(t Timing, dev *dram.Device, mit mitigation.Mitigator, queueCap int) (*Scheduler, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if queueCap <= 0 {
		return nil, fmt.Errorf("memctrl: queue capacity %d", queueCap)
	}
	s := &Scheduler{
		timing:   t,
		dev:      dev,
		mit:      mit,
		banks:    make([]bankState, dev.Params().TotalBanks()),
		queueCap: queueCap,
		nextRef:  int64(t.TREF),
		lastAct:  -1 << 40,
	}
	s.lastActBank = -1
	for b := range s.banks {
		s.banks[b].openRow = -1
	}
	return s, nil
}

// Stats returns the scheduler counters.
func (s *Scheduler) Stats() SchedStats { return s.stats }

// Cycle returns the controller clock.
func (s *Scheduler) Cycle() int64 { return s.cycle }

// QueueLen returns the number of queued requests.
func (s *Scheduler) QueueLen() int { return len(s.queue) }

// Enqueue adds a request; it reports false when the queue is full (the
// front-end must stall).
func (s *Scheduler) Enqueue(bank, row int, write bool) bool {
	if len(s.queue) >= s.queueCap {
		return false
	}
	if bank < 0 || bank >= len(s.banks) || row < 0 || row >= s.dev.Params().RowsPerBank {
		panic(fmt.Sprintf("memctrl: request out of range: bank %d row %d", bank, row))
	}
	s.queue = append(s.queue, Request{Bank: bank, Row: row, Write: write, arrived: s.cycle})
	return true
}

// Tick advances the controller one cycle, issuing at most one command
// (the single command bus of a DDR4 channel).
func (s *Scheduler) Tick() {
	s.cycle++
	// Refresh has absolute priority once due: wait for all banks to be
	// precharge-able, then refresh.
	if s.cycle >= s.nextRef {
		s.issueRefresh()
		return
	}
	// Drain buffered mitigation commands when a bank is free (the Fig. 1
	// interrupt logic sharing the command bus).
	if s.issueMaintenance() {
		return
	}
	// FR-FCFS: first ready column command (open row) in queue order...
	for i := range s.queue {
		r := &s.queue[i]
		b := &s.banks[r.Bank]
		if b.openRow == int32(r.Row) && s.cycle >= b.colReady && s.cycle >= b.busyUntil {
			s.serve(i)
			return
		}
	}
	// ...then the oldest request: ACT if precharged, else PRE the
	// conflicting row.
	for i := range s.queue {
		r := &s.queue[i]
		b := &s.banks[r.Bank]
		if b.openRow == int32(r.Row) {
			continue // waiting on tRCD; a younger row hit may fire next cycle
		}
		if b.openRow == -1 {
			if s.cycle >= b.actReady && s.canActivate(r.Bank) {
				s.issueACT(r.Bank, r.Row)
				return
			}
			if s.cycle >= b.actReady {
				s.stats.FAWStalls++
			}
			continue
		}
		if s.cycle >= b.preReady && s.cycle >= b.busyUntil {
			s.issuePRE(r.Bank)
			return
		}
	}
}

// canActivate enforces ACT-to-ACT spacing (tRRD_L within a bank group,
// tRRD_S across groups) and the four-ACT window (tFAW).
func (s *Scheduler) canActivate(bank int) bool {
	gap := int64(s.timing.TRRD)
	if s.timing.BankGroups > 1 && s.timing.TRRDS > 0 && s.lastActBank >= 0 {
		if bank%s.timing.BankGroups != s.lastActBank%s.timing.BankGroups {
			gap = int64(s.timing.TRRDS)
		}
	}
	if s.cycle-s.lastAct < gap {
		return false
	}
	if len(s.actTimes) >= 4 && s.cycle-s.actTimes[len(s.actTimes)-4] < int64(s.timing.TFAW) {
		return false
	}
	return true
}

// issueACT opens a row, feeding the device and the mitigation.
func (s *Scheduler) issueACT(bank, row int) {
	b := &s.banks[bank]
	b.openRow = int32(row)
	b.colReady = s.cycle + int64(s.timing.TRCD)
	b.preReady = s.cycle + int64(s.timing.TRAS)
	b.actReady = s.cycle + int64(s.timing.TRC)
	s.lastAct = s.cycle
	s.lastActBank = bank
	s.actTimes = append(s.actTimes, s.cycle)
	if len(s.actTimes) > 8 {
		s.actTimes = s.actTimes[len(s.actTimes)-8:]
	}
	s.stats.RowMisses++
	s.dev.Activate(bank, row)
	if s.mit != nil {
		s.scratch = s.mit.OnActivate(bank, row, s.dev.IntervalInWindow(), s.scratch[:0])
		s.pending = append(s.pending, s.scratch...)
	}
}

// issuePRE closes a bank's row.
func (s *Scheduler) issuePRE(bank int) {
	b := &s.banks[bank]
	b.openRow = -1
	b.actReady = maxI64(b.actReady, s.cycle+int64(s.timing.TRP))
}

// serve issues the column command for queue entry i and retires it.
func (s *Scheduler) serve(i int) {
	r := s.queue[i]
	b := &s.banks[r.Bank]
	b.busyUntil = s.cycle + int64(s.timing.CL)
	s.stats.Served++
	lat := s.cycle - r.arrived
	s.stats.LatencyTotal += lat
	if lat > s.stats.LatencyMax {
		s.stats.LatencyMax = lat
	}
	s.queue = append(s.queue[:i], s.queue[i+1:]...)
}

// issueMaintenance executes one buffered mitigation command if its bank
// is idle. Maintenance occupies the bank for a full tRC and leaves it
// precharged.
func (s *Scheduler) issueMaintenance() bool {
	for i, cmd := range s.pending {
		b := &s.banks[cmd.Bank]
		if s.cycle < b.actReady || s.cycle < b.busyUntil {
			continue
		}
		switch cmd.Kind {
		case mitigation.ActN:
			s.dev.ActivateNeighbors(cmd.Bank, cmd.Row)
		case mitigation.ActNOne:
			s.dev.ActivateNeighbor(cmd.Bank, cmd.Row, int(cmd.Side))
		case mitigation.RefreshRow:
			s.dev.RefreshRow(cmd.Bank, cmd.Row)
		}
		b.openRow = -1
		b.actReady = s.cycle + int64(s.timing.TRC)
		b.busyUntil = s.cycle + int64(s.timing.TRC)
		s.pending = append(s.pending[:i], s.pending[i+1:]...)
		return true
	}
	return false
}

// issueRefresh performs the all-bank auto-refresh protocol: the
// mitigation observes ref, its commands join the buffer, the device
// refreshes, and every bank is busy for tRFC.
func (s *Scheduler) issueRefresh() {
	if s.mit != nil {
		s.scratch = s.mit.OnRefreshInterval(s.dev.IntervalInWindow(), s.scratch[:0])
		s.pending = append(s.pending, s.scratch...)
	}
	s.dev.AdvanceInterval()
	s.stats.Refreshes++
	for b := range s.banks {
		s.banks[b].openRow = -1
		after := s.cycle + int64(s.timing.TRFC)
		s.banks[b].actReady = maxI64(s.banks[b].actReady, after)
		s.banks[b].busyUntil = maxI64(s.banks[b].busyUntil, after)
	}
	s.nextRef += int64(s.timing.TREF)
	if s.mit != nil && s.dev.IntervalInWindow() == 0 {
		s.mit.OnNewWindow()
	}
}

// Drain runs the clock until the queue and maintenance buffer are empty
// (bounded by a deadline to catch livelocks).
func (s *Scheduler) Drain(maxCycles int64) error {
	deadline := s.cycle + maxCycles
	for (len(s.queue) > 0 || len(s.pending) > 0) && s.cycle < deadline {
		s.Tick()
	}
	if len(s.queue) > 0 || len(s.pending) > 0 {
		return fmt.Errorf("memctrl: scheduler did not drain within %d cycles", maxCycles)
	}
	s.stats.Cycles = s.cycle
	return nil
}

// RunIntervals feeds requests from next() whenever the queue has room and
// ticks until n refresh intervals have elapsed.
func (s *Scheduler) RunIntervals(n int, next func() (bank, row int, write bool)) {
	target := s.dev.Interval() + n
	for s.dev.Interval() < target {
		for len(s.queue) < s.queueCap {
			bank, row, write := next()
			s.Enqueue(bank, row, write)
		}
		s.Tick()
	}
	s.stats.Cycles = s.cycle
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Package memctrl models the memory controller that TiVaPRoMi extends
// (Fig. 1): an open-page controller with per-bank row buffers, a time base
// that fires auto-refresh intervals, and the Row-Hammer interrupt path —
// mitigation commands are buffered while the controller is busy (the
// figure's wait signal) and issued through the same interrupt logic as
// refreshes.
//
// Timing is modeled at the service-time level: a row hit costs the CAS
// latency, a row miss the full activate cycle (tRC), and every refresh
// interval inserts tRFC. That is enough to reproduce the paper's traffic
// statistics (activations per refresh interval) without a cycle-accurate
// scheduler.
package memctrl

import (
	"context"
	"fmt"

	"tivapromi/internal/addr"
	"tivapromi/internal/dram"
	"tivapromi/internal/mitigation"
)

// Disposition is a command filter's verdict on one mitigation command,
// modeling faults on the maintenance-command path between controller and
// device.
type Disposition int

const (
	// Deliver executes the command normally.
	Deliver Disposition = iota
	// Drop discards the command: the neighbor refresh never happens (a
	// lost act_n on a marginal bus, or an arbiter that starves the
	// Row-Hammer interrupt path under load).
	Drop
	// Delay postpones the command to the next refresh-interval boundary —
	// one service-priority inversion late, the QPRAC imperfect-service
	// scenario.
	Delay
)

// Config sets the controller's timing model in nanoseconds.
type Config struct {
	RowHitNs  uint64 // service time when the row is already open
	RowMissNs uint64 // service time with an activation (tRC-dominated)
	// ClosedPage selects the auto-precharge row-buffer policy: every
	// access activates (no row hits). Closed-page systems hand a
	// Row-Hammer attacker free activations — even a single hammered
	// address activates on every access — which is why the open-page
	// default matters for the attack analysis.
	ClosedPage bool
	// PendingCap bounds the Row-Hammer command buffer of Fig. 1. The
	// buffer drains whenever the controller is free (after each access
	// and at every refresh boundary), so a small buffer suffices; an
	// overflow is counted, not dropped silently.
	PendingCap int
}

// DefaultConfig returns DDR4-flavored service times.
func DefaultConfig() Config {
	return Config{RowHitNs: 15, RowMissNs: 45, PendingCap: 8}
}

// DefaultBatchSize is the access-block size the simulation's lane drivers
// use when the caller passes batch <= 0: large enough to amortize the
// per-block context poll and generation-loop overhead, small enough that
// a canceled run stops promptly.
const DefaultBatchSize = 512

// Stats aggregates controller activity.
type Stats struct {
	Accesses  uint64
	RowHits   uint64
	RowMisses uint64
	// Mitigation command counts by kind.
	ActN       uint64
	ActNOne    uint64
	RefreshRow uint64
	// PendingPeak is the high-water mark of the RH buffer; Overflows
	// counts commands that found the buffer full and stalled the
	// controller (executed immediately with a stall, as the paper's wait
	// handshake implies).
	PendingPeak int
	Overflows   uint64
	// DroppedCmds and DelayedCmds count commands a fault filter discarded
	// or postponed (zero without a filter installed).
	DroppedCmds uint64
	DelayedCmds uint64
}

// Controller drives a dram.Device, optionally with a mitigation attached.
// It is not safe for concurrent use.
type Controller struct {
	cfg Config
	dev *dram.Device
	mit mitigation.Mitigator // nil for an unprotected system

	openRows []int32
	timeNs   uint64
	nextRef  uint64
	refStep  uint64
	trfc     uint64

	pending []mitigation.Command
	delayed []mitigation.Command
	scratch []mitigation.Command
	stats   Stats
	hook    func(mitigation.Command)
	filter  func(mitigation.Command) Disposition
}

// New builds a controller over dev with the given mitigation (nil for
// none).
func New(cfg Config, dev *dram.Device, mit mitigation.Mitigator) (*Controller, error) {
	if cfg.RowHitNs == 0 || cfg.RowMissNs == 0 || cfg.PendingCap <= 0 {
		return nil, fmt.Errorf("memctrl: invalid config %+v", cfg)
	}
	p := dev.Params()
	c := &Controller{
		cfg:      cfg,
		dev:      dev,
		mit:      mit,
		openRows: make([]int32, p.TotalBanks()),
		refStep:  uint64(p.TRefIntNs),
		trfc:     uint64(p.TRFCNs),
	}
	for b := range c.openRows {
		c.openRows[b] = -1
	}
	c.nextRef = c.refStep
	return c, nil
}

// Device returns the controlled device.
func (c *Controller) Device() *dram.Device { return c.dev }

// SetCommandHook installs an observer called for every mitigation command
// the controller executes. The experiment harness uses it to classify
// commands against attack ground truth (false-positive accounting).
func (c *Controller) SetCommandHook(fn func(mitigation.Command)) { c.hook = fn }

// SetCommandFilter installs a fault filter consulted for every mitigation
// command before it is buffered. Dropped commands never reach the device;
// delayed commands execute at the next refresh-interval boundary (once —
// a promoted command is not re-filtered, so a filter cannot starve the
// path forever). A nil filter delivers everything.
func (c *Controller) SetCommandFilter(fn func(mitigation.Command) Disposition) { c.filter = fn }

// Stats returns the controller counters.
func (c *Controller) Stats() Stats { return c.stats }

// TimeNs returns the controller clock.
func (c *Controller) TimeNs() uint64 { return c.timeNs }

// OpenRow returns the open row of a bank (-1 when precharged).
func (c *Controller) OpenRow(bank int) int { return int(c.openRows[bank]) }

// AccessRow services one read/write to (bank, row): a row hit costs
// RowHitNs; a row miss activates the row (feeding the mitigation) and
// costs RowMissNs. Refresh boundaries crossed by the advancing clock fire
// before the access completes.
func (c *Controller) AccessRow(bank, row int, write bool) {
	_ = write // writes and reads have identical Row-Hammer behavior
	c.stats.Accesses++
	if c.openRows[bank] == int32(row) {
		c.stats.RowHits++
		c.advance(c.cfg.RowHitNs)
		return
	}
	c.stats.RowMisses++
	if c.cfg.ClosedPage {
		c.openRows[bank] = -1 // auto-precharge
	} else {
		c.openRows[bank] = int32(row)
	}
	c.dev.Activate(bank, row)
	if c.mit != nil {
		c.scratch = c.mit.OnActivate(bank, row, c.dev.IntervalInWindow(), c.scratch[:0])
		c.enqueue(c.scratch)
	}
	c.advance(c.cfg.RowMissNs)
	c.drain()
}

// AccessAddr decodes a physical address with the mapper and services it.
func (c *Controller) AccessAddr(m *addr.Mapper, pa uint64, write bool) {
	coord := m.Decode(pa)
	c.AccessRow(coord.FlatBank(m.Geometry()), coord.Row, write)
}

// enqueue buffers mitigation commands; on overflow the controller stalls
// and executes the command immediately (the wait handshake).
func (c *Controller) enqueue(cmds []mitigation.Command) {
	for _, cmd := range cmds {
		if c.filter != nil {
			switch c.filter(cmd) {
			case Drop:
				c.stats.DroppedCmds++
				continue
			case Delay:
				c.stats.DelayedCmds++
				c.delayed = append(c.delayed, cmd)
				continue
			}
		}
		if len(c.pending) >= c.cfg.PendingCap {
			c.stats.Overflows++
			c.execute(cmd)
			continue
		}
		c.pending = append(c.pending, cmd)
		if len(c.pending) > c.stats.PendingPeak {
			c.stats.PendingPeak = len(c.pending)
		}
	}
}

// drain issues buffered RH commands ("when wait is low").
func (c *Controller) drain() {
	for _, cmd := range c.pending {
		c.execute(cmd)
	}
	c.pending = c.pending[:0]
}

// execute performs one mitigation command on the device. Maintenance
// activations end with the bank precharged, so the next normal access
// reopens its row.
func (c *Controller) execute(cmd mitigation.Command) {
	if c.hook != nil {
		c.hook(cmd)
	}
	switch cmd.Kind {
	case mitigation.ActN:
		c.stats.ActN++
		c.dev.ActivateNeighbors(cmd.Bank, cmd.Row)
	case mitigation.ActNOne:
		c.stats.ActNOne++
		c.dev.ActivateNeighbor(cmd.Bank, cmd.Row, int(cmd.Side))
	case mitigation.RefreshRow:
		c.stats.RefreshRow++
		c.dev.RefreshRow(cmd.Bank, cmd.Row)
	default:
		panic(fmt.Sprintf("memctrl: unknown command kind %v", cmd.Kind))
	}
	c.openRows[cmd.Bank] = -1
	c.advanceNoRefresh(c.cfg.RowMissNs)
}

// advance moves the clock, firing every refresh boundary it crosses.
func (c *Controller) advance(ns uint64) {
	c.timeNs += ns
	for c.timeNs >= c.nextRef {
		c.fireRefreshInterval()
	}
}

// advanceNoRefresh moves the clock without re-entering refresh handling
// (used while executing commands inside a refresh boundary).
func (c *Controller) advanceNoRefresh(ns uint64) {
	c.timeNs += ns
}

// fireRefreshInterval runs the end-of-interval protocol: the mitigation
// observes ref, its commands execute, the device refreshes, rows close,
// and a completed window resets window-scoped mitigation state.
func (c *Controller) fireRefreshInterval() {
	// Promote fault-delayed commands first: they execute one interval
	// late, bypassing the filter so a command is delayed at most once.
	if len(c.delayed) > 0 {
		c.pending = append(c.pending, c.delayed...)
		c.delayed = c.delayed[:0]
		c.drain()
	}
	if c.mit != nil {
		c.scratch = c.mit.OnRefreshInterval(c.dev.IntervalInWindow(), c.scratch[:0])
		c.enqueue(c.scratch)
		c.drain()
	}
	c.dev.AdvanceInterval()
	for b := range c.openRows {
		c.openRows[b] = -1 // refresh precharges all banks
	}
	c.timeNs += c.trfc
	c.nextRef += c.refStep
	if c.mit != nil && c.dev.IntervalInWindow() == 0 {
		c.mit.OnNewWindow()
	}
}

// RunIntervals drives the controller with accesses from next() until n
// refresh intervals have elapsed. next is called once per access.
func (c *Controller) RunIntervals(n int, next func() (bank, row int, write bool)) {
	target := c.dev.Interval() + n
	for c.dev.Interval() < target {
		bank, row, write := next()
		c.AccessRow(bank, row, write)
	}
}

// RunIntervalsCtx is RunIntervals with cooperative cancellation: the
// context is polled every 1024 accesses (cheap enough for the hot loop,
// fine-grained enough that a canceled seed sweep stops within
// microseconds of simulated progress). It returns ctx.Err() when the run
// was cut short, nil on normal completion.
func (c *Controller) RunIntervalsCtx(ctx context.Context, n int, next func() (bank, row int, write bool)) error {
	target := c.dev.Interval() + n
	for i := 0; c.dev.Interval() < target; i++ {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		bank, row, write := next()
		c.AccessRow(bank, row, write)
	}
	return nil
}

// ExtraActivations returns the total mitigation-issued activations the
// device observed (the numerator of the paper's activation overhead).
func (c *Controller) ExtraActivations() uint64 {
	s := c.dev.Stats()
	return s.NeighborActs + s.DirectRefreshes
}

package memctrl

import (
	"testing"

	"tivapromi/internal/dram"
	"tivapromi/internal/mitigation"
)

func laneParams() dram.Params {
	p := testParams()
	p.Banks = 1
	return p
}

func newLane(t *testing.T, mit mitigation.Mitigator) *Lane {
	t.Helper()
	dev, err := dram.New(laneParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLane(DefaultConfig(), dev, mit)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAccessesPerIntervalDerivation(t *testing.T) {
	// Paper DDR4 timing: (7800-350)/45 = 165, exactly the tREFI/tRC
	// ceiling the device enforces per bank. The scaled parameters share
	// the timing, so the count is scale-free.
	if got := AccessesPerInterval(dram.PaperParams()); got != 165 {
		t.Fatalf("paper AccessesPerInterval = %d, want 165", got)
	}
	if got, max := AccessesPerInterval(dram.ScaledParams()), dram.ScaledParams().MaxActsPerRI; got != max {
		t.Fatalf("scaled AccessesPerInterval = %d, want MaxActsPerRI %d", got, max)
	}
	// Degenerate timing still yields a positive count.
	p := dram.PaperParams()
	p.TRefIntNs = p.TRFCNs
	if got := AccessesPerInterval(p); got != 1 {
		t.Fatalf("degenerate AccessesPerInterval = %d, want 1", got)
	}
}

func TestLaneRejectsMultiBankDevice(t *testing.T) {
	dev, err := dram.New(testParams(), nil) // 2 banks
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLane(DefaultConfig(), dev, nil); err == nil {
		t.Fatal("lane accepted a multi-bank device")
	}
}

func TestLaneRowBufferTracking(t *testing.T) {
	l := newLane(t, nil)
	l.Access(5, false)
	l.Access(5, true) // hit: reads and writes share the row buffer
	l.Access(6, false)
	s := l.Stats()
	if s.Accesses != 3 || s.RowHits != 1 || s.RowMisses != 2 {
		t.Fatalf("stats = %+v, want 3 accesses, 1 hit, 2 misses", s)
	}
	if acts := l.Device().Stats().Activates; acts != 2 {
		t.Fatalf("device saw %d activations, want 2", acts)
	}
}

func TestLaneClosedPageActivatesEveryAccess(t *testing.T) {
	dev, err := dram.New(laneParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ClosedPage = true
	l, err := NewLane(cfg, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		l.Access(9, false)
	}
	if s := l.Stats(); s.RowHits != 0 || s.RowMisses != 4 {
		t.Fatalf("closed-page stats = %+v, want 0 hits, 4 misses", s)
	}
}

func TestLaneCatchUpFiresBoundariesLazily(t *testing.T) {
	r := &recorder{}
	l := newLane(t, r)
	l.Access(1, false)
	if r.refs != 0 {
		t.Fatalf("boundary fired without CatchUp: %d", r.refs)
	}
	l.CatchUp(3)
	if r.refs != 3 || l.IntervalsFired() != 3 {
		t.Fatalf("refs = %d, fired = %d, want 3", r.refs, l.IntervalsFired())
	}
	if iv := l.Device().Interval(); iv != 3 {
		t.Fatalf("device interval = %d, want 3", iv)
	}
	// CatchUp is idempotent at the same target.
	l.CatchUp(3)
	if r.refs != 3 {
		t.Fatalf("repeated CatchUp refired: %d", r.refs)
	}
}

func TestLaneRefreshClosesRow(t *testing.T) {
	l := newLane(t, nil)
	l.Access(7, false)
	l.CatchUp(1)
	l.Access(7, false) // row was precharged by the refresh: a miss again
	if s := l.Stats(); s.RowMisses != 2 || s.RowHits != 0 {
		t.Fatalf("stats = %+v, want 2 misses after refresh closed the row", s)
	}
}

func TestLaneNewWindowAfterFullWindow(t *testing.T) {
	r := &recorder{}
	l := newLane(t, r)
	refInt := laneParams().RefInt
	l.CatchUp(refInt)
	if r.windows != 1 {
		t.Fatalf("windows = %d after %d boundaries, want 1", r.windows, refInt)
	}
}

func TestLaneOverflowStalls(t *testing.T) {
	f := &flooder{n: DefaultConfig().PendingCap + 3}
	l := newLane(t, f)
	l.Access(10, false)
	s := l.Stats()
	if s.Overflows != 3 {
		t.Fatalf("overflows = %d, want 3", s.Overflows)
	}
	// Every command executed despite the overflow stall.
	if s.ActN != uint64(f.n) {
		t.Fatalf("ActN = %d, want %d", s.ActN, f.n)
	}
}

func TestLaneCommandFilter(t *testing.T) {
	f := &flooder{n: 1}
	l := newLane(t, f)
	mode := Drop
	l.SetCommandFilter(func(mitigation.Command) Disposition { return mode })
	l.Access(10, false)
	if s := l.Stats(); s.DroppedCmds != 1 || s.ActN != 0 {
		t.Fatalf("after drop: %+v", l.Stats())
	}
	mode = Delay
	l.Access(11, false)
	if s := l.Stats(); s.DelayedCmds != 1 || s.ActN != 0 {
		t.Fatalf("after delay: %+v", l.Stats())
	}
	// The delayed command executes at the next boundary, unfiltered.
	l.CatchUp(1)
	if s := l.Stats(); s.ActN != 1 {
		t.Fatalf("delayed command never executed: %+v", s)
	}
}

func TestLaneAccessTick(t *testing.T) {
	l := newLane(t, nil)
	ticks := 0
	l.SetAccessTick(func() { ticks++ })
	for i := 0; i < 5; i++ {
		l.Access(int32(i), false)
	}
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
}

func TestLaneCommandHookSeesCommands(t *testing.T) {
	f := &flooder{n: 2}
	l := newLane(t, f)
	var seen []mitigation.Command
	l.SetCommandHook(func(c mitigation.Command) { seen = append(seen, c) })
	l.Access(10, false)
	if len(seen) != 2 {
		t.Fatalf("hook saw %d commands, want 2", len(seen))
	}
}

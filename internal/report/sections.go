// Sections: the paper's evaluation as a registry of (spec builder,
// renderer) pairs. Every section's computation is declared as a
// campaign.Spec and executed by the campaign scheduler; rendering is a
// pure function of the resulting campaign.ResultSet, so tables come out
// byte-identical whatever the worker count or cell completion order —
// this file is the single table-assembly path for the whole evaluation.
package report

import (
	"fmt"
	"io"
	"os"

	"tivapromi/internal/campaign"
	"tivapromi/internal/dram"
	"tivapromi/internal/faults"
	"tivapromi/internal/fsm"
	"tivapromi/internal/hwmodel"
	"tivapromi/internal/mitigation"
	"tivapromi/internal/sim"
)

// Context carries everything a section renderer needs: the evaluation
// knobs, the executed campaign's results, and the output options.
type Context struct {
	Eval    campaign.Eval
	Results *campaign.ResultSet
	CSV     bool      // fig4: also print the scatter as CSV
	SVGPath string    // fig4: also write the scatter as an SVG file
	SVGSink io.Writer // fig4: also stream the SVG here (no file, no log line)
}

// SectionDef binds one evaluation section's name to its campaign spec
// builder and its renderer.
type SectionDef struct {
	Name   string
	Spec   func(campaign.Eval) campaign.Spec
	Render func(w io.Writer, rc *Context) error
}

// Sections returns every section of the evaluation in paper order —
// the registry behind `experiments all`.
func Sections() []SectionDef {
	return []SectionDef{
		{"table1", campaign.Table1Spec, renderTable1},
		{"table2", campaign.Table2Spec, renderTable2},
		{"table3", campaign.Table3Spec, renderTable3},
		{"fig4", campaign.Fig4Spec, renderFig4},
		{"flooding", campaign.FloodingSpec, renderFlooding},
		{"refreshpolicies", campaign.PoliciesSpec, renderPolicies},
		{"aggressors", campaign.AggressorsSpec, renderAggressors},
		{"ablation", campaign.AblationSpec, renderAblation},
		{"extensions", campaign.ExtensionsSpec, renderExtensions},
		{"latency", campaign.LatencySpec, renderLatency},
		{"thresholds", campaign.ThresholdsSpec, renderThresholds},
		{"faults", campaign.FaultsSpec, renderFaults},
	}
}

// Section returns one registered section by name.
func Section(name string) (SectionDef, bool) {
	for _, s := range Sections() {
		if s.Name == name {
			return s, true
		}
	}
	return SectionDef{}, false
}

// paperTarget describes the full-scale device to mitigation factories
// for storage accounting (table sizes are reported at paper scale no
// matter what scale the simulation ran at).
func paperTarget() mitigation.Target {
	p := dram.PaperParams()
	return mitigation.Target{
		Banks: p.TotalBanks(), RowsPerBank: p.RowsPerBank, RefInt: p.RefInt,
		FlipThreshold: p.FlipThreshold,
	}
}

func tableBytesAtPaperScale(technique string) (int, error) {
	f, err := mitigation.Lookup(technique)
	if err != nil {
		return 0, err
	}
	return f(paperTarget(), 1).TableBytesPerBank(), nil
}

// value fetches a probe cell's result pointer with its concrete type.
func value[T any](rc *Context, key string) (*T, error) {
	v, err := rc.Results.Value(key)
	if err != nil {
		return nil, err
	}
	p, ok := v.(*T)
	if !ok {
		return nil, fmt.Errorf("report: cell %q holds %T, not %T", key, v, p)
	}
	return p, nil
}

func renderTable1(w io.Writer, rc *Context) error {
	p := dram.PaperParams()
	t := NewTable("Table I — simulated system specification", "parameter", "value")
	t.Add("Work load", "SPEC-like mixed load (synthetic, see DESIGN.md)")
	t.Add("Number of cores", "4")
	t.Add("L1 / L2 cache size", "64 KB / 256 KB")
	t.Add("DDR4 refresh window", "64 ms")
	t.Add("DDR4 refresh interval", "7.8 us")
	t.Add("DDR4 activation to activation", fmt.Sprintf("%.0f ns", p.TRCNs))
	t.Add("DDR4 refresh time", fmt.Sprintf("%.0f ns", p.TRFCNs))
	t.Add("DDR4 frequency", fmt.Sprintf("%.1f GHz", p.IOFreqGHz))
	t.Add("Refresh intervals per window (RefInt)", fmt.Sprint(p.RefInt))
	t.Add("Rows per bank / per interval", fmt.Sprintf("%d / %d", p.RowsPerBank, p.RowsPerInterval()))
	t.Add("Bit flipping activation threshold", fmt.Sprint(p.FlipThreshold))
	t.Add("Pbase", "2^-23")
	t.Add("RefInt * Pbase", fmt.Sprintf("%.3g", float64(p.RefInt)/float64(1<<23)))
	t.Add("Cycle budget per act / ref", fmt.Sprintf("%d / %d", p.ActCycleBudget(), p.RefCycleBudget()))
	if err := t.Render(w); err != nil {
		return err
	}

	// Measured trace statistics from one unmitigated run at the selected
	// scale, the counterpart of the paper's "175 Million activations /
	// average 40 activations per refresh interval".
	r, err := value[sim.Result](rc, campaign.Table1TraceKey(rc.Eval))
	if err != nil {
		return err
	}
	m := NewTable("Measured trace statistics (this run)", "metric", "value")
	m.Add("Memory activations", fmt.Sprint(r.TotalActs))
	m.Add("Attacker share of activations", fmt.Sprintf("%.0f%%", 100*float64(r.AttackerActs)/float64(r.TotalActs)))
	m.Add("Avg activations per bank-interval", fmt.Sprintf("%.1f", r.AvgActsPerInterval))
	m.Add("Max activations per bank-interval", fmt.Sprint(r.MaxActsPerInterval))
	m.Add("Flips without mitigation", fmt.Sprint(r.Flips))
	return m.Render(w)
}

func renderTable2(w io.Writer, _ *Context) error {
	machines := []struct {
		name string
		m    *fsm.Machine
	}{
		{"CaPRoMi", fsm.Fig3("CaPRoMi", fsm.DefaultCounterConfig())},
		{"LoLiPRoMi", fsm.Fig2("LoLiPRoMi", fsm.LinearConfig{HistoryEntries: 32, OverlappedUpdate: true})},
		{"LoPRoMi", fsm.Fig2("LoPRoMi", fsm.LinearConfig{HistoryEntries: 32})},
		{"LiPRoMi", fsm.Fig2("LiPRoMi", fsm.LinearConfig{HistoryEntries: 32})},
	}
	p := dram.PaperParams()
	t := NewTable(
		fmt.Sprintf("Table II — FSM cycles per observed command (budgets: act %d, ref %d)",
			p.ActCycleBudget(), p.RefCycleBudget()),
		"command", "CaPRoMi", "LoLiPRoMi", "LoPRoMi", "LiPRoMi")
	rowAct := []string{"act"}
	rowRef := []string{"ref"}
	for _, mc := range machines {
		if err := mc.m.Validate(); err != nil {
			return err
		}
		act, _, err := mc.m.WorstCase("act")
		if err != nil {
			return err
		}
		ref, _, err := mc.m.WorstCase("ref")
		if err != nil {
			return err
		}
		if act > p.ActCycleBudget() || ref > p.RefCycleBudget() {
			return fmt.Errorf("%s violates the DDR4 cycle budget", mc.name)
		}
		rowAct = append(rowAct, fmt.Sprint(act))
		rowRef = append(rowRef, fmt.Sprint(ref))
	}
	t.Add(rowAct...)
	t.Add(rowRef...)
	return t.Render(w)
}

func renderTable3(w io.Writer, rc *Context) error {
	geo := hwmodel.PaperGeometry()
	model := hwmodel.DefaultCostModel()
	ddr4, ddr3 := hwmodel.DDR4Target(), hwmodel.DDR3Target()
	resources := map[string]hwmodel.Resources{}
	for _, r := range hwmodel.AllResources(geo) {
		resources[r.Name] = r
	}
	paraLUTs := model.Estimate(resources["PARA"], ddr4).LUTs
	paraLUTs3 := model.Estimate(resources["PARA"], ddr3).LUTs

	t := NewTable("Table III — comparison with state-of-the-art RH mitigation solutions",
		"technique", "LUTs DDR4 (rel)", "LUTs DDR3 (rel)", "vulnerable",
		"activation overhead", "FPR", "flips")
	for _, name := range sim.TechniqueNames() {
		sum, err := rc.Results.Summary(campaign.Table3SweepKey(name))
		if err != nil {
			return err
		}
		vuln, err := value[sim.VulnReport](rc, campaign.Table3VulnKey(rc.Eval, name))
		if err != nil {
			return err
		}
		e4 := model.Estimate(resources[name], ddr4)
		e3 := model.Estimate(resources[name], ddr3)
		t.Add(name,
			fmt.Sprintf("%d (%.1fx)", e4.LUTs, float64(e4.LUTs)/float64(paraLUTs)),
			fmt.Sprintf("%d (%.1fx)", e3.LUTs, float64(e3.LUTs)/float64(paraLUTs3)),
			YesNo(vuln.Vulnerable),
			PctErr(sum.Overhead.Mean(), sum.Overhead.StdDev()),
			Pct(sum.FPR.Mean()),
			fmt.Sprint(sum.TotalFlips))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "note: TWiCe and CRA at DDR3 scale exceed any practical controller budget,")
	fmt.Fprintln(w, "      reproducing the paper's conclusion that they cannot target the FPGA.")
	return nil
}

func renderFig4(w io.Writer, rc *Context) error {
	s := NewScatter("Fig. 4 — table size per bank vs activation overhead (both log scale)",
		"table size per bank [B]", "activation overhead [%]")
	for _, name := range sim.TechniqueNames() {
		sum, err := rc.Results.Summary(campaign.Fig4SweepKey(name))
		if err != nil {
			return err
		}
		bytes, err := tableBytesAtPaperScale(name)
		if err != nil {
			return err
		}
		s.Add(name, float64(bytes), sum.Overhead.Mean())
	}
	if err := s.Render(w); err != nil {
		return err
	}
	if rc.CSV {
		if err := s.WriteCSV(w); err != nil {
			return err
		}
	}
	if rc.SVGSink != nil {
		// The in-memory sink (the campaign server's figure endpoint)
		// deliberately adds no "wrote" line: the text report must stay
		// byte-identical with and without figure capture.
		if err := s.WriteSVG(rc.SVGSink); err != nil {
			return err
		}
	}
	if rc.SVGPath != "" {
		f, err := os.Create(rc.SVGPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := s.WriteSVG(f); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", rc.SVGPath)
	}
	return nil
}

func renderFlooding(w io.Writer, rc *Context) error {
	p := rc.Eval.Probe
	t := NewTable(
		fmt.Sprintf("Flooding attack — activations until first protection (paper scale, rate %d/interval, %d trials, safe bound %d)",
			p.MaxActsPerRI, rc.Eval.Trials, p.FlipThreshold/2),
		"technique", "median acts", "p90 acts", "unprotected trials", "all below safe bound")
	for _, name := range sim.TechniqueNames() {
		f, err := value[sim.FloodResult](rc, campaign.FloodKey(rc.Eval, name))
		if err != nil {
			return err
		}
		t.Add(f.Technique,
			fmt.Sprintf("%.0f", f.MedianActs),
			fmt.Sprintf("%.0f", f.P90Acts),
			fmt.Sprint(f.Unprotected),
			YesNo(f.AllSafe()))
	}
	return t.Render(w)
}

func renderPolicies(w io.Writer, rc *Context) error {
	t := NewTable("Refresh-address policies — TiVaPRoMi overhead under the four policies of §IV",
		"technique", "neighbors", "neighbors-remapped", "random", "counter+mask", "max spread", "flips")
	for _, name := range campaign.PolicyTechniques {
		row := []string{name}
		lo, hi := -1.0, -1.0
		flips := 0
		for _, pol := range sim.Policies() {
			sum, err := rc.Results.Summary(campaign.PolicySweepKey(name, pol))
			if err != nil {
				return err
			}
			m := sum.Overhead.Mean()
			row = append(row, Pct(m))
			if lo < 0 || m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
			flips += sum.TotalFlips
		}
		row = append(row, fmt.Sprintf("%.1f%%", 100*(hi-lo)/lo), fmt.Sprint(flips))
		t.Add(row...)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "note: TiVaPRoMi's decisions depend only on the observed act/ref stream and")
	fmt.Fprintln(w, "      its fr assumption, so the overhead is identical by construction; the")
	fmt.Fprintln(w, "      meaningful invariance is the flips column staying at zero even when the")
	fmt.Fprintln(w, "      device refreshes in a different order than the mitigation assumes.")
	return nil
}

func renderAggressors(w io.Writer, rc *Context) error {
	t := NewTable("Aggressor sweep — fixed aggressor count per targeted bank",
		"aggressors", "unmitigated flips", "LoLiPRoMi overhead", "LoLiPRoMi flips",
		"PARA overhead", "PARA flips")
	for _, k := range campaign.AggressorCounts {
		none, err := rc.Results.Summary(campaign.AggressorsSweepKey(k, ""))
		if err != nil {
			return err
		}
		loli, err := rc.Results.Summary(campaign.AggressorsSweepKey(k, "LoLiPRoMi"))
		if err != nil {
			return err
		}
		para, err := rc.Results.Summary(campaign.AggressorsSweepKey(k, "PARA"))
		if err != nil {
			return err
		}
		t.Add(fmt.Sprint(k),
			fmt.Sprint(none.TotalFlips),
			Pct(loli.Overhead.Mean()), fmt.Sprint(loli.TotalFlips),
			Pct(para.Overhead.Mean()), fmt.Sprint(para.TotalFlips))
	}
	return t.Render(w)
}

func renderAblation(w io.Writer, rc *Context) error {
	t := NewTable("Ablation — LoLiPRoMi history-table size (paper choice: 32 entries / 120 B)",
		"history table", "bytes/bank", "overhead", "FPR", "flips")
	for _, size := range campaign.HistorySizes {
		sum, err := rc.Results.Summary(campaign.AblationHistKey(size))
		if err != nil {
			return err
		}
		p := sim.AblationPointOf(fmt.Sprintf("%d entries", size), sum)
		p.TableBytes = sim.HistoryBytesAtPaperScale(size)
		t.Add(p.Label, Bytes(p.TableBytes),
			PctErr(p.OverheadMean, p.OverheadStd), Pct(p.FPRMean),
			fmt.Sprint(p.Flips))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	t = NewTable("Ablation — CaPRoMi counter-table size (paper choice: 64 entries)",
		"counter table", "bytes/bank", "overhead", "FPR", "flips")
	for _, size := range campaign.CounterSizes {
		sum, err := rc.Results.Summary(campaign.AblationCntKey(size))
		if err != nil {
			return err
		}
		p := sim.AblationPointOf(fmt.Sprintf("%d entries", size), sum)
		p.TableBytes = sim.CounterBytesAtPaperScale(size)
		t.Add(p.Label, Bytes(p.TableBytes),
			PctErr(p.OverheadMean, p.OverheadStd), Pct(p.FPRMean),
			fmt.Sprint(p.Flips))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	t = NewTable("Ablation — LoLiPRoMi base probability (paper choice: RefInt*Pbase ≈ 0.001, delta 0)",
		"Pbase scale", "overhead", "FPR", "flips", "flood median (acts)")
	for _, delta := range campaign.PbaseDeltas {
		sum, err := rc.Results.Summary(campaign.AblationPbaseKey(delta))
		if err != nil {
			return err
		}
		p := sim.AblationPointOf(fmt.Sprintf("Pbase x 2^%+d", -delta), sum)
		median, err := value[float64](rc, campaign.AblationPbaseFloodKey(rc.Eval, delta))
		if err != nil {
			return err
		}
		p.FloodMedian = *median
		t.Add(p.Label, PctErr(p.OverheadMean, p.OverheadStd),
			Pct(p.FPRMean), fmt.Sprint(p.Flips),
			fmt.Sprintf("%.0f", p.FloodMedian))
	}
	return t.Render(w)
}

func renderExtensions(w io.Writer, rc *Context) error {
	t := NewTable(
		"Extensions beyond the paper — CAT (adaptive tree, §II), TRR (commodity in-DRAM sampler), QuaPRoMi (quadratic weighting)",
		"technique", "table/bank", "overhead", "FPR", "flips",
		"flood survival", "decoy ratio", "saturation ratio", "vulnerable")
	for _, name := range campaign.ExtTechniques() {
		sum, err := rc.Results.Summary(campaign.ExtSweepKey(name))
		if err != nil {
			return err
		}
		rep, err := value[sim.ExtVulnReport](rc, campaign.ExtVulnKey(rc.Eval, name))
		if err != nil {
			return err
		}
		bytes, err := tableBytesAtPaperScale(name)
		if err != nil {
			return err
		}
		t.Add(name, Bytes(bytes),
			PctErr(sum.Overhead.Mean(), sum.Overhead.StdDev()),
			Pct(sum.FPR.Mean()), fmt.Sprint(sum.TotalFlips),
			fmt.Sprintf("%.2e", rep.FloodSurvival),
			fmt.Sprintf("%.2f", rep.DecoyRatio),
			fmt.Sprintf("%.2f", rep.SaturationRatio),
			YesNo(rep.Vulnerable))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "findings: CAT collapses when the attacker fills the tree before hammering")
	fmt.Fprintln(w, "          (the paper's §II critique, measured); QuaPRoMi's late quadratic ramp")
	fmt.Fprintln(w, "          saves activations but leaves a 61% flood-survival hole — why the")
	fmt.Fprintln(w, "          paper stops at logarithmic/linear; TRR degrades ~2x under hotter")
	fmt.Fprintln(w, "          decoy rows (the TRRespass direction).")
	return nil
}

func renderLatency(w io.Writer, rc *Context) error {
	t := NewTable(
		"Request latency under attack (cycle-accurate FR-FCFS scheduler, one window)",
		"technique", "avg latency (cycles)", "max latency", "row-hit rate", "extra activations")
	for _, name := range campaign.LatencyTechniques() {
		r, err := value[sim.LatencyResult](rc, campaign.LatencyKey(rc.Eval, name))
		if err != nil {
			return err
		}
		t.Add(r.Technique,
			fmt.Sprintf("%.1f", r.AvgLatency),
			fmt.Sprint(r.MaxLatency),
			fmt.Sprintf("%.1f%%", r.RowHitPct),
			fmt.Sprint(r.ExtraActs))
	}
	return t.Render(w)
}

func renderThresholds(w io.Writer, rc *Context) error {
	p := rc.Eval.Probe
	ths := rc.Eval.Thresholds
	pts := sim.ThresholdSweep(p, ths)
	headers := []string{"technique"}
	for i, th := range ths {
		h := fmt.Sprintf("%dK", th/1000)
		if i == 0 {
			h += " (paper)"
		}
		headers = append(headers, h)
	}
	t := NewTable(
		"Flip-threshold sweep — weight-aware flood survival (paper Pbase; counters re-provisioned)",
		headers...)
	bySurv := map[string]map[uint32]sim.ThresholdPoint{}
	for _, pt := range pts {
		if bySurv[pt.Technique] == nil {
			bySurv[pt.Technique] = map[uint32]sim.ThresholdPoint{}
		}
		bySurv[pt.Technique][pt.Threshold] = pt
	}
	cell := func(pt sim.ThresholdPoint) string {
		mark := ""
		if !pt.Safe {
			mark = " (!)"
		}
		return fmt.Sprintf("%.1e%s", pt.Survival, mark)
	}
	for _, name := range sim.TechniqueNames() {
		row := []string{name}
		for _, th := range ths {
			row = append(row, cell(bySurv[name][th]))
		}
		t.Add(row...)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "(!) marks survival above the Table III vulnerability limit: with the paper's")
	fmt.Fprintln(w, "    Pbase, every probabilistic technique — including TiVaPRoMi — needs")
	fmt.Fprintln(w, "    re-tuning below ≈70K-flip DRAM, while counter designs only re-provision.")
	return nil
}

func renderFaults(w io.Writer, rc *Context) error {
	sc := campaign.FaultSweepFor(rc.Eval)
	t := NewTable(
		"Graceful degradation — mitigations under injected hardware faults (mean per run)",
		"technique", "fault model", "rate", "flips", "overhead", "FPR",
		"injected", "dropped", "delayed", "errors")
	for _, c := range sc.Cells() {
		sum, errs, err := rc.Results.LossySummary(campaign.FaultKey(c))
		if err != nil {
			return err
		}
		p := sim.FaultPointOf(c.Technique, c.Model, c.Rate, sum, errs)
		rate := fmt.Sprintf("%.0e", p.Rate)
		if p.Model == faults.None {
			rate = "-"
		}
		t.Add(p.Technique, p.Model.String(),
			rate,
			fmt.Sprintf("%.1f", p.Flips),
			fmt.Sprintf("%.3f%%", p.OverheadPct),
			fmt.Sprintf("%.3f%%", p.FPRPct),
			fmt.Sprintf("%.1f", p.Injected),
			fmt.Sprintf("%.1f", p.Dropped),
			fmt.Sprintf("%.1f", p.Delayed),
			fmt.Sprint(p.Errors))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "reading: stuck-rng is the Loaded Dice non-selection case (probabilistic")
	fmt.Fprintln(w, "         protection silently stops; counters are immune); drop/delay-actn is")
	fmt.Fprintln(w, "         the QPRAC imperfect-service case; state-seu models SRAM upsets in")
	fmt.Fprintln(w, "         the mitigation tables; weak-cells lowers the effective threshold")
	fmt.Fprintln(w, "         under every technique equally.")
	return nil
}

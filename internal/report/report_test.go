package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("My Table", "name", "value")
	tb.Add("alpha", "1")
	tb.Add("beta") // short row padded
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"My Table", "name", "value", "alpha", "beta", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: both data rows start their second column at the same
	// offset.
	if strings.Index(lines[3], "1") < len("alpha") {
		t.Error("column alignment broken")
	}
}

func TestTableColumnsAligned(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Add("short", "x")
	tb.Add("a-much-longer-cell", "y")
	var sb strings.Builder
	tb.Render(&sb)
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	posX := strings.Index(lines[2], "x")
	posY := strings.Index(lines[3], "y")
	if posX != posY {
		t.Fatalf("second column misaligned: %d vs %d\n%s", posX, posY, sb.String())
	}
}

func TestScatterRender(t *testing.T) {
	s := NewScatter("Fig. 4", "bytes", "%")
	s.Add("PARA", 0, 0.1) // zero clamps onto the log axis
	s.Add("TWiCe", 3300, 0.0037)
	s.Add("LoLiPRoMi", 120, 0.014)
	var sb strings.Builder
	if err := s.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig. 4", "A = PARA", "B = TWiCe", "C = LoLiPRoMi", "log scale"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// All three markers must appear in the grid.
	grid := out[strings.Index(out, "+"):strings.LastIndex(out, "+")]
	for _, m := range []string{"A", "B", "C"} {
		if !strings.Contains(grid, m) {
			t.Errorf("marker %s missing from grid", m)
		}
	}
}

func TestScatterEmpty(t *testing.T) {
	s := NewScatter("empty", "x", "y")
	var sb strings.Builder
	if err := s.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Fatal("empty plot not reported")
	}
}

func TestScatterCollisionNudge(t *testing.T) {
	s := NewScatter("", "x", "y")
	s.Add("one", 100, 1)
	s.Add("two", 100, 1) // identical coordinates
	var sb strings.Builder
	if err := s.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatal("colliding points lost")
	}
}

func TestScatterCSV(t *testing.T) {
	s := NewScatter("", "x", "y")
	s.Add("p", 10, 0.5)
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "label,x,y\np,10,0.5\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.012345); got != "0.0123%" {
		t.Errorf("Pct = %q", got)
	}
	if got := PctErr(0.1, 0.0084); got != "(0.1000 ± 0.0084)%" {
		t.Errorf("PctErr = %q", got)
	}
	if got := Bytes(120); got != "120 B" {
		t.Errorf("Bytes(120) = %q", got)
	}
	if got := Bytes(3300); got != "3.2 KB" {
		t.Errorf("Bytes(3300) = %q", got)
	}
	if got := Bytes(6 << 20); got != "6.0 MB" {
		t.Errorf("Bytes(6M) = %q", got)
	}
	if YesNo(true) != "Yes" || YesNo(false) != "No" {
		t.Error("YesNo broken")
	}
}

func TestScatterSVG(t *testing.T) {
	s := NewScatter("Fig. 4", "bytes", "%")
	s.Add("PARA", 0, 0.1)
	s.Add("TWiCe", 3300, 0.0037)
	s.Add("Lo&Li<>", 120, 0.014) // label needing XML escaping
	var sb strings.Builder
	if err := s.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<svg", "</svg>", "circle", "Lo&amp;Li&lt;&gt;", "1e"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<circle") != 3 {
		t.Fatalf("want 3 markers, got %d", strings.Count(out, "<circle"))
	}
}

func TestScatterSVGEmpty(t *testing.T) {
	s := NewScatter("", "x", "y")
	var sb strings.Builder
	if err := s.WriteSVG(&sb); err == nil {
		t.Fatal("empty SVG plot accepted")
	}
}

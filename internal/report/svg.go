package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteSVG renders the scatter as a standalone SVG file with log-log
// axes, decade gridlines, and labeled points — a publication-style
// rendering of Fig. 4 without any plotting dependency.
func (s *Scatter) WriteSVG(w io.Writer) error {
	if len(s.Points) == 0 {
		return fmt.Errorf("report: no points to plot")
	}
	const (
		width   = 720.0
		height  = 480.0
		left    = 70.0
		right   = 30.0
		top     = 40.0
		bottom  = 60.0
		plotW   = width - left - right
		plotH   = height - top - bottom
		rMarker = 4.5
	)

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range s.Points {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	lx0 := math.Floor(math.Log10(minX))
	lx1 := math.Ceil(math.Log10(maxX))
	ly0 := math.Floor(math.Log10(minY))
	ly1 := math.Ceil(math.Log10(maxY))
	if lx1 == lx0 {
		lx1++
	}
	if ly1 == ly0 {
		ly1++
	}
	xPix := func(v float64) float64 {
		return left + (math.Log10(v)-lx0)/(lx1-lx0)*plotW
	}
	yPix := func(v float64) float64 {
		return top + plotH - (math.Log10(v)-ly0)/(ly1-ly0)*plotH
	}

	var b strings.Builder
	b.WriteString(fmt.Sprintf(`<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n",
		width, height, width, height))
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	b.WriteString(fmt.Sprintf(`<text x="%g" y="24" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n",
		width/2, escape(s.Title)))

	// Decade gridlines and tick labels.
	for d := lx0; d <= lx1; d++ {
		x := xPix(math.Pow(10, d))
		b.WriteString(fmt.Sprintf(`<line x1="%.1f" y1="%g" x2="%.1f" y2="%g" stroke="#ddd"/>`+"\n",
			x, top, x, top+plotH))
		b.WriteString(fmt.Sprintf(`<text x="%.1f" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">1e%d</text>`+"\n",
			x, top+plotH+16, int(d)))
	}
	for d := ly0; d <= ly1; d++ {
		y := yPix(math.Pow(10, d))
		b.WriteString(fmt.Sprintf(`<line x1="%g" y1="%.1f" x2="%g" y2="%.1f" stroke="#ddd"/>`+"\n",
			left, y, left+plotW, y))
		b.WriteString(fmt.Sprintf(`<text x="%g" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">1e%d</text>`+"\n",
			left-6, y+4, int(d)))
	}
	// Axes.
	b.WriteString(fmt.Sprintf(`<rect x="%g" y="%g" width="%g" height="%g" fill="none" stroke="#333"/>`+"\n",
		left, top, plotW, plotH))
	b.WriteString(fmt.Sprintf(`<text x="%g" y="%g" font-family="sans-serif" font-size="13" text-anchor="middle">%s</text>`+"\n",
		left+plotW/2, height-14, escape(s.XLabel)))
	b.WriteString(fmt.Sprintf(`<text x="16" y="%g" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		top+plotH/2, top+plotH/2, escape(s.YLabel)))

	// Points with labels; a small palette cycles by index.
	palette := []string{"#c0392b", "#2980b9", "#27ae60", "#8e44ad", "#d35400",
		"#16a085", "#7f8c8d", "#2c3e50", "#f39c12", "#006266", "#b71540"}
	for i, p := range s.Points {
		x, y := xPix(p.X), yPix(p.Y)
		color := palette[i%len(palette)]
		b.WriteString(fmt.Sprintf(`<circle cx="%.1f" cy="%.1f" r="%g" fill="%s"/>`+"\n",
			x, y, rMarker, color))
		// Nudge labels that would leave the plot area.
		lx := x + 7
		anchor := "start"
		if lx > left+plotW-60 {
			lx = x - 7
			anchor = "end"
		}
		b.WriteString(fmt.Sprintf(`<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" fill="%s" text-anchor="%s">%s</text>`+"\n",
			lx, y-6, color, anchor, escape(p.Label)))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
